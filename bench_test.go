// Package repro's root benchmark harness regenerates every table and
// figure of the paper under `go test -bench`, reporting the headline
// quantity of each artefact as a custom benchmark metric. Heavy
// whole-experiment benches run one experiment per iteration; use
// `-benchtime=1x` for a single regeneration pass.
package repro

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/blockchain"
	"repro/internal/coinhive"
	"repro/internal/cryptonight"
	"repro/internal/experiments"
	"repro/internal/fingerprint"
	"repro/internal/linkgen"
	"repro/internal/poolwatch"
	"repro/internal/stratum"
	"repro/internal/wasm"
	"repro/internal/webgen"
)

// ---------------------------------------------------------------------------
// One benchmark per paper artefact.
// ---------------------------------------------------------------------------

func BenchmarkFig2NoCoinScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig2(experiments.ScaleCI, 8)
		alexaShare := float64(res.Scans[0].Hits) / float64(res.Scans[0].Probed)
		b.ReportMetric(alexaShare*100, "alexa-hit-%")
	}
}

func BenchmarkTable1WasmSignatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		crawls := experiments.RunBrowserCrawls(experiments.ScaleCI, 8)
		t1 := experiments.Table1From(crawls)
		b.ReportMetric(float64(t1.Columns[0].TotalWasm), "alexa-wasm-sites")
	}
}

func BenchmarkTable2DetectionOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		crawls := experiments.RunBrowserCrawls(experiments.ScaleCI, 8)
		t2 := experiments.Table2From(crawls)
		b.ReportMetric(t2.Rows[0].MissedFrac*100, "alexa-missed-%")
	}
}

func BenchmarkTable3Categories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		crawls := experiments.RunBrowserCrawls(experiments.ScaleCI, 8)
		t3 := experiments.Table3From(crawls)
		b.ReportMetric(t3.Blocks[0].Categorized*100, "alexa-categorized-%")
	}
}

func BenchmarkFig3LinksPerToken(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig3(experiments.ScaleCI)
		b.ReportMetric(res.Top10Share*100, "top10-share-%")
	}
}

func BenchmarkFig4HashDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig4(experiments.ScaleCI)
		b.ReportMetric(res.PUnbiased1024*100, "p1024-unbiased-%")
	}
}

func BenchmarkTable4LinkResolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunResolve(experiments.ScaleCI, 8, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ResolvedTop), "links-resolved")
		b.ReportMetric(float64(res.HashesComputed), "hashes")
	}
}

func BenchmarkTable5LinkCategories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunResolve(experiments.ScaleCI, 0, 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ResolvedTail), "links-resolved")
		b.ReportMetric(res.Uncategorized*100, "uncategorized-%")
	}
}

func BenchmarkFig5BlockAttribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(int64(i)+1, 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MedianPerDay, "blocks/day-median")
		b.ReportMetric(res.AveragePerDay, "blocks/day-avg")
	}
}

func BenchmarkTable6MonthlyStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable6(int64(i)+1, 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Months[1].XMR, "june-XMR")
		b.ReportMetric(res.Months[1].HashRateMHs, "june-MH/s")
	}
}

func BenchmarkNetworkSizeEstimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNetworkSize(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.InputsPerBlock), "inputs/block")
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------------

// BenchmarkAblationSignatureDBCompleteness measures detection when the
// signature database only knows every 4th assembly version: the heuristic
// layer (features + backends) must carry the rest.
func BenchmarkAblationSignatureDBCompleteness(b *testing.B) {
	corpus := webgen.Generate(webgen.DefaultConfig(webgen.TLDAlexa, 40_000, 11))
	full := fingerprint.ReferenceDB()
	partial := fingerprint.PartialDB(4)
	for i := 0; i < b.N; i++ {
		detected := map[string]int{}
		for _, db := range map[string]*fingerprint.DB{"full": full, "partial": partial} {
			for _, s := range corpus.Sites {
				if s.Miner == nil {
					continue
				}
				art := webgen.Execute(s)
				m, err := wasm.Decode(art.Wasm[0])
				if err != nil {
					continue
				}
				if db.Classify(m, art.WSHosts).Miner {
					if db == full {
						detected["full"]++
					} else {
						detected["partial"]++
					}
				}
			}
		}
		if detected["full"] > 0 {
			b.ReportMetric(100*float64(detected["partial"])/float64(detected["full"]), "partial-recall-%")
		}
	}
}

// BenchmarkAblationEndpointCoverage quantifies the §4.2 requirement to poll
// every endpoint: with 2 of 32 endpoints, attribution recall collapses to
// roughly the covered backend fraction (1/16).
func BenchmarkAblationEndpointCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
		w, err := experiments.NewWorld(start, 50e6, 500e6, nil, int64(i)+7)
		if err != nil {
			b.Fatal(err)
		}
		fullW := poolwatch.New(poolwatch.Config{Source: w.Net, Chain: w.Chain})
		thinW := poolwatch.New(poolwatch.Config{Source: w.Net, Chain: w.Chain, Endpoints: 2})
		w.Net.Start()
		stopA := fullW.Run(w.Sim, time.Second)
		stopB := thinW.Run(w.Sim, time.Second)
		w.Sim.RunFor(24 * time.Hour)
		stopA()
		stopB()
		fullW.Sweep()
		thinW.Sweep()
		fa, ta := fullW.StatsSnapshot().Attributed, thinW.StatsSnapshot().Attributed
		if fa > 0 {
			b.ReportMetric(100*float64(ta)/float64(fa), "2-endpoint-recall-%")
		}
	}
}

// BenchmarkAblationScratchpadSweep shows the memory-hardness/throughput
// trade-off across CryptoNight scratchpad sizes (the property that makes
// the PoW browser-mineable in the first place).
func BenchmarkAblationScratchpadSweep(b *testing.B) {
	for _, v := range []cryptonight.Variant{
		{Name: "64k", ScratchpadSize: 1 << 16, Iterations: 1 << 12},
		{Name: "256k", ScratchpadSize: 1 << 18, Iterations: 1 << 14},
		{Name: "1m", ScratchpadSize: 1 << 20, Iterations: 1 << 16},
		cryptonight.Full,
	} {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			h, err := cryptonight.NewHasher(v)
			if err != nil {
				b.Fatal(err)
			}
			blob := make([]byte, 76)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Sum(blob)
			}
			b.ReportMetric(1e9/float64(b.Elapsed().Nanoseconds()/int64(b.N)), "H/s")
		})
	}
}

// BenchmarkAblationShareDifficulty sweeps the pool share difficulty: lower
// difficulties mean chattier clients but finer-grained credit (what link
// visitors get). Measured as client-side hashes needed per accepted share.
func BenchmarkAblationShareDifficulty(b *testing.B) {
	for _, diff := range []uint64{8, 64, 512} {
		name := map[uint64]string{8: "diff8", 64: "diff64", 512: "diff512"}[diff]
		b.Run(name, func(b *testing.B) {
			pool := newBenchPool(b, diff)
			h, err := cryptonight.GetHasher(cryptonight.Test)
			if err != nil {
				b.Fatal(err)
			}
			defer cryptonight.PutHasher(h)
			totalHashes := 0
			for i := 0; i < b.N; i++ {
				job := pool.Job(i%32, i, false)
				nonce, sum, hashes := grindShare(b, h, job)
				totalHashes += hashes
				if _, err := pool.SubmitShare("bench", job.JobID, nonce, sum, ""); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(totalHashes)/float64(b.N), "hashes/share")
		})
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot paths.
// ---------------------------------------------------------------------------

// premineBenchShares solves one share per live job so the submit benches
// measure pool-side verification only, not client-side nonce search. Jobs
// stay valid until the tip moves (pinned far above share difficulty here),
// so the same share bank can be resubmitted indefinitely.
type benchShare struct {
	jobID string
	nonce uint32
	sum   [32]byte
}

func premineBenchShares(b *testing.B, pool *coinhive.Pool, n int) []benchShare {
	b.Helper()
	h, err := cryptonight.GetHasher(pool.Chain().Params().PowVariant)
	if err != nil {
		b.Fatal(err)
	}
	defer cryptonight.PutHasher(h)
	shares := make([]benchShare, n)
	for i := range shares {
		job := pool.Job(i%pool.NumEndpoints(), i, false)
		nonce, sum, _ := grindShare(b, h, job)
		shares[i] = benchShare{jobID: job.JobID, nonce: nonce, sum: sum}
	}
	return shares
}

// BenchmarkSubmitShareSerial is the single-submitter reference point for
// BenchmarkSubmitShareParallel: one goroutine, one CryptoNight scratchpad.
func BenchmarkSubmitShareSerial(b *testing.B) {
	pool := newBenchPool(b, 64)
	shares := premineBenchShares(b, pool, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := shares[i%len(shares)]
		if _, err := pool.SubmitShare("bench", s.jobID, s.nonce, s.sum, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitShareParallel measures SubmitShare throughput with one
// submitter per GOMAXPROCS. Verification — the dominant cost — runs outside
// every pool lock on a per-goroutine scratchpad, so throughput scales with
// cores where the seed's single-mutex pool was pinned to one
// (run with -cpu 1,2,4,8 to see the scaling curve).
func BenchmarkSubmitShareParallel(b *testing.B) {
	pool := newBenchPool(b, 64)
	shares := premineBenchShares(b, pool, 32)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := shares[next.Add(1)%uint64(len(shares))]
			if _, err := pool.SubmitShare("bench", s.jobID, s.nonce, s.sum, ""); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMicroPoolJobIssue(b *testing.B) {
	pool := newBenchPool(b, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pool.Job(i%32, i, false)
	}
}

func BenchmarkMicroWatcherPollCycle(b *testing.B) {
	start := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	w, err := experiments.NewWorld(start, 5.5e6, 462e6, nil, 5)
	if err != nil {
		b.Fatal(err)
	}
	watcher := poolwatch.New(poolwatch.Config{Source: w.Net, Chain: w.Chain})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		watcher.PollAllEndpoints()
	}
}

func BenchmarkMicroLinkCorpus100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		linkgen.Generate(linkgen.Default(100_000))
	}
}

func BenchmarkMicroCorpusGenerate50k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		webgen.Generate(webgen.DefaultConfig(webgen.TLDOrg, 50_000, uint64(i)))
	}
}

func BenchmarkMicroCDF(b *testing.B) {
	vals := make([]float64, 100_000)
	for i := range vals {
		vals[i] = float64(i%1024) + 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		analysis.CDF(vals)
	}
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func newBenchPool(b *testing.B, shareDiff uint64) *coinhive.Pool {
	b.Helper()
	w, err := experiments.NewWorld(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC),
		5.5e6, 462e6, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := coinhive.NewPool(coinhive.PoolConfig{
		Chain:           w.Chain,
		Wallet:          newBenchWallet(),
		Clock:           w.Sim,
		ShareDifficulty: shareDiff,
	})
	if err != nil {
		b.Fatal(err)
	}
	return pool
}

func newBenchWallet() (a [32]byte) {
	copy(a[:], "bench-wallet-000000000000000000")
	return
}

// grindShare solves one pool job exactly as the web miner does: revert the
// blob obfuscation, splice nonces, hash until the compact target is met.
func grindShare(b *testing.B, h *cryptonight.Hasher, job stratum.Job) (uint32, [32]byte, int) {
	b.Helper()
	blob, err := stratum.DecodeBlob(job.Blob)
	if err != nil {
		b.Fatal(err)
	}
	stratum.ObfuscateBlob(blob)
	target, err := stratum.DecodeTarget(job.Target)
	if err != nil {
		b.Fatal(err)
	}
	hdr, _, _, err := blockchain.ParseHashingBlob(blob)
	if err != nil {
		b.Fatal(err)
	}
	n, sum, hashes, found := h.Grind(blob, hdr.NonceOffset(), target, 0, 1<<30)
	if !found {
		b.Fatal("no share in 2^30 nonces")
	}
	return n, sum, hashes
}
