GO ?= go

.PHONY: all build vet test test-short test-race lint check bench bench-diff bench-paper bench-submit load load-smoke load-hostile load-scale load-api load-federation

all: build vet test-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 verify: everything, including the slow experiment suites.
test: build
	$(GO) test ./...

# Fast pass: multi-minute simulations and zone-scale corpora are gated
# behind testing.Short().
test-short:
	$(GO) test -short ./...

# Race-detector pass over the concurrent pool core and its drivers
# (including the TCP stratum push fan-out, the loadgen swarm, the client
# session/dialect layer and the loadd front-end).
test-race:
	$(GO) test -race ./internal/coinhive/... ./internal/webminer/... ./internal/loadgen/... ./internal/session/... ./internal/stratum/... ./internal/ws/... ./cmd/loadd/...

# Project-specific static analysis (internal/lint via cmd/repolint):
# lockscope, hotpath, atomicfield, metricname and layering over every
# package. Zero findings or the target fails; waivers need a reasoned
# //lint:ignore. `repolint -json` emits machine-readable findings.
lint:
	$(GO) run ./cmd/repolint

# CI gate: static checks (including building cmd/bench and the other
# tools), the fast suite under the race detector, and the live-service
# load smoke.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) lint
	$(GO) test -short -race ./...
	$(MAKE) load-smoke
	$(MAKE) load-hostile
	$(MAKE) load-scale
	$(MAKE) load-api
	$(MAKE) load-federation

# Live-service gate (≈10s): both transports — 500 concurrent ws miner
# sessions, then 500 concurrent raw-TCP stratum sessions — against an
# in-process coinhived, zero protocol errors or the target fails.
load-smoke:
	$(GO) run ./cmd/loadd -smoke

# Abuse gate (≈15s): a steady baseline fixes honest accept p99, then the
# mixed-hostile population (80% honest vardiff-paced miners + duplicate
# submitters, stale flooders, difficulty gamers and a reconnect hammer)
# runs against a defended in-process target. Fails unless attackers are
# banned with zero duplicate credit, honest cadence converges to the
# vardiff goal ±25%, and honest p99 stays within 2× the baseline.
load-hostile:
	$(GO) run ./cmd/loadd -hostile-smoke

# Scaling gate (≈30s): tcp-scale at 1k then 10k sessions over in-memory
# conns (zero fds — the box's fd cap stops real sockets near 9k). Fails
# unless both tiers finish with zero protocol errors, 10k parked
# sessions hold far fewer than one goroutine each, job encodes stay
# O(tiers) per tip, and the hold-window fan-out p99 at 10k is within 2×
# the 1k fan-out baseline.
load-scale:
	$(GO) run ./cmd/loadd -scale-smoke

# Observability gate (≈15s): a "mixed" run fixes the no-archive submit
# p99 baseline, then api-readers — the same swarm shape plus 8 HTTP
# clients paging /api/v1 — runs against a file-backed archived target.
# Fails on any failed query (non-200, transport error, broken cursor),
# a query p99 over the responsiveness bound, silent archive instruments,
# or a submit p99 beyond the stall tripwire (4× the no-archive
# baseline, 100ms floor — loose by design: the readers are real CPU
# load, while a blocking archive would overshoot by orders of magnitude).
load-api:
	$(GO) run ./cmd/loadd -api-smoke

# Federation gate (≈15s): the federation scenario splits one swarm
# across three gossip-linked pool nodes (memconn mesh), kills one node
# mid-run and cold-replaces it with an empty share-chain that must
# catch-up-sync while new shares arrive. Fails on any protocol error,
# unconverged tips, lost credit (every accepted share's difficulty must
# reach the replicated books), a federation-queue drop, a replacement
# that never ran a sync round, or gossip propagation p99 over 1s.
load-federation:
	$(GO) run ./cmd/loadd -federation-smoke

# Full load-scenario catalogue (ws: steady/churn/storm/slow/malformed/
# smoke; tcp: tcp-steady/tcp-storm/tcp-smoke; both: mixed, the hostile
# set and api-readers with its query p50/p99 columns) at swarm
# scale, plus the 10k/25k/50k tcp-scale tiers; writes the trajectory
# point to BENCH_load.json, including the server-side job-push fan-out
# p99 for the server-clocked scenarios and the scaling-curve telemetry
# (goroutines at park, parked sessions, encodes and bytes per push).
load:
	$(GO) run ./cmd/loadd -scenario all -sessions 1000 -scale -out BENCH_load.json

# Core perf benchmarks (CryptoNight, Keccak, chain, simclock, pool, Fig5
# day); writes the machine-readable trajectory point to BENCH_core.json.
bench:
	$(GO) run ./cmd/bench -benchtime 1s -out BENCH_core.json

# Re-run the core benchmarks and print per-benchmark deltas against the
# committed BENCH_core.json without overwriting it.
bench-diff:
	$(GO) run ./cmd/bench -benchtime 1s -diff BENCH_core.json

# Paper artefacts as benchmarks; -benchtime=1x regenerates each once.
bench-paper:
	$(GO) test -bench . -benchtime=1x -run '^$$' .

# Share-verification scaling curve (the sharded pool's headline number).
bench-submit:
	$(GO) test -bench 'BenchmarkSubmitShare' -run '^$$' -cpu 1,2,4,8 .
