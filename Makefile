GO ?= go

.PHONY: all build vet test test-short test-race bench

all: build vet test-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 verify: everything, including the slow experiment suites.
test: build
	$(GO) test ./...

# Fast pass: multi-minute simulations and zone-scale corpora are gated
# behind testing.Short().
test-short:
	$(GO) test -short ./...

# Race-detector pass over the concurrent pool core and its drivers.
test-race:
	$(GO) test -race ./internal/coinhive/... ./internal/webminer/...

# Paper artefacts as benchmarks; -benchtime=1x regenerates each once.
bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' .

# Share-verification scaling curve (the sharded pool's headline number).
bench-submit:
	$(GO) test -bench 'BenchmarkSubmitShare' -run '^$$' -cpu 1,2,4,8 .
