package webgen

import (
	"sync"

	"repro/internal/fingerprint"
	"repro/internal/rulespace"
)

// binCache memoises the ~160 catalog binaries: synthesising a module takes
// far longer than serving it, and corpora reuse the same assemblies across
// thousands of sites — exactly like the real web did.
var binCache sync.Map // key string -> []byte

func cachedBinary(spec fingerprint.FamilySpec, version int) []byte {
	key := spec.Name + "#" + string(rune('0'+version%10)) + string(rune('a'+version/10))
	if v, ok := binCache.Load(key); ok {
		return v.([]byte)
	}
	bin := fingerprint.BinaryFor(spec, version)
	binCache.Store(key, bin)
	return bin
}

// Default population-category mix, loosely web-shaped.
var defaultSiteCats = []Weighted{
	{rulespace.CatBusiness, 0.16}, {rulespace.CatTech, 0.12},
	{rulespace.CatShopping, 0.10}, {rulespace.CatBlog, 0.09},
	{rulespace.CatEntMusic, 0.08}, {rulespace.CatEducation, 0.07},
	{rulespace.CatNews, 0.06}, {rulespace.CatGaming, 0.06},
	{rulespace.CatHealth, 0.05}, {rulespace.CatDynamic, 0.05},
	{rulespace.CatFinance, 0.04}, {rulespace.CatHosting, 0.04},
	{rulespace.CatPorn, 0.03}, {rulespace.CatSports, 0.03},
	{rulespace.CatTravel, 0.02},
}

// DefaultConfig returns the calibrated corpus configuration for a
// population, scaled to n sites. Calibration sources (see DESIGN.md):
// Figure 2 prevalence, Table 1 family mix, Table 2 overlap, Table 3
// category priors.
func DefaultConfig(tld TLD, n int, seed uint64) Config {
	cfg := Config{
		TLD:           tld,
		N:             n,
		Seed:          seed,
		SiteCats:      defaultSiteCats,
		DeadFamilyMix: deadFamilyMix,
		AdNetCats: []Weighted{ // cpmstar is a *gaming* ad network
			{rulespace.CatGaming, 0.75}, {rulespace.CatEntMusic, 0.15},
			{rulespace.CatTech, 0.10},
		},
		TimeoutRate: 0.02,
	}
	switch tld {
	case TLDAlexa:
		// 737 mining sites and 993 NoCoin hits per ~950K domains (Tab. 2);
		// 82% of Wasm miners invisible to NoCoin.
		cfg.MinerWasmRate = 737.0 / 950_000
		cfg.DeadMinerRate = 764.0 / 950_000 // NoCoin hits without Wasm, minus ad network
		cfg.AdNetworkRate = 100.0 / 950_000
		cfg.BenignWasmRate = (796.0 - 737.0) / 950_000
		cfg.DeadCats = []Weighted{ // Table 3, Alexa "NoCoin" column shape
			{rulespace.CatGaming, 0.16}, {rulespace.CatEducation, 0.09},
			{rulespace.CatShopping, 0.08}, {rulespace.CatPorn, 0.07},
			{rulespace.CatTech, 0.06}, {rulespace.CatBusiness, 0.05},
			{rulespace.CatEntMusic, 0.05}, {rulespace.CatBlog, 0.04},
		}
		cfg.TLSBrokenRate = 0.28
		cfg.OfficialLoaderFrac = 0.26 // yields ≈129/737 NoCoin-visible (family-gated)
		cfg.FamilyMix = []Weighted{   // Table 1, Alexa column
			{fingerprint.FamilyCoinhive, 311},
			{fingerprint.FamilySkencituer, 123},
			{fingerprint.FamilyCryptoloot, 103},
			{"UnknownWSS", 56},
			{fingerprint.FamilyNotgiven688, 46},
			{fingerprint.FamilyAuthedmine, 30},
			{fingerprint.FamilyWebStatiBid, 22},
			{fingerprint.FamilyCoinImp, 18},
			{fingerprint.FamilyWpMonero, 14},
			{fingerprint.FamilyDeepMiner, 14},
		}
		cfg.MinerCats = []Weighted{ // Table 3, Alexa "Signature" column
			{rulespace.CatPorn, 0.19}, {rulespace.CatTech, 0.08},
			{rulespace.CatFilesharing, 0.08}, {rulespace.CatEducation, 0.05},
			{rulespace.CatEntMusic, 0.05}, {rulespace.CatGaming, 0.04},
			{rulespace.CatBusiness, 0.04}, {rulespace.CatShopping, 0.03},
			{rulespace.CatDynamic, 0.03}, {rulespace.CatNews, 0.02},
		}
	case TLDOrg:
		// 1372 miners / 978 NoCoin hits per ~9M domains; 67% missed.
		cfg.MinerWasmRate = 1372.0 / 9_000_000
		cfg.DeadMinerRate = 468.0 / 9_000_000
		cfg.AdNetworkRate = 60.0 / 9_000_000
		cfg.BenignWasmRate = (1491.0 - 1372.0) / 9_000_000
		cfg.DeadCats = []Weighted{ // Table 3, .org "NoCoin" column shape
			{rulespace.CatGaming, 0.25}, {rulespace.CatBusiness, 0.08},
			{rulespace.CatEducation, 0.06}, {rulespace.CatPorn, 0.05},
			{rulespace.CatShopping, 0.04}, {rulespace.CatBlog, 0.04},
			{rulespace.CatHealth, 0.04}, {rulespace.CatTech, 0.03},
		}
		cfg.TLSBrokenRate = 0.52
		cfg.OfficialLoaderFrac = 0.465 // yields ≈450/1372 NoCoin-visible (family-gated)
		cfg.FamilyMix = []Weighted{    // Table 1, .org column
			{fingerprint.FamilyCoinhive, 711},
			{fingerprint.FamilyCryptoloot, 183},
			{fingerprint.FamilyWebStatiBid, 120},
			{fingerprint.FamilyFreecontent, 108},
			{fingerprint.FamilyNotgiven688, 92},
			{"UnknownWSS", 60},
			{fingerprint.FamilyAuthedmine, 40},
			{fingerprint.FamilySkencituer, 24},
			{fingerprint.FamilyWpMonero, 18},
			{fingerprint.FamilyMonerise, 16},
		}
		cfg.MinerCats = []Weighted{ // Table 3, .org "Signature" column
			{rulespace.CatReligion, 0.09}, {rulespace.CatBusiness, 0.08},
			{rulespace.CatEducation, 0.08}, {rulespace.CatHealth, 0.07},
			{rulespace.CatTech, 0.06}, {rulespace.CatBlog, 0.04},
			{rulespace.CatGaming, 0.03}, {rulespace.CatDynamic, 0.03},
			{rulespace.CatShopping, 0.02},
		}
	case TLDCom:
		// Fig. 2: ~6.7K NoCoin hits per 116M; coinhive-dominated.
		cfg.MinerWasmRate = 8_000.0 / 116_000_000
		cfg.DeadMinerRate = 6_600.0 / 116_000_000
		cfg.AdNetworkRate = 800.0 / 116_000_000
		cfg.BenignWasmRate = 700.0 / 116_000_000
		cfg.DeadCats = defaultSiteCats
		cfg.TLSBrokenRate = 0.30
		cfg.OfficialLoaderFrac = 0.30
		cfg.FamilyMix = comNetFamilyMix
		cfg.MinerCats = defaultSiteCats
	case TLDNet:
		cfg.MinerWasmRate = 800.0 / 12_000_000
		cfg.DeadMinerRate = 590.0 / 12_000_000
		cfg.AdNetworkRate = 80.0 / 12_000_000
		cfg.BenignWasmRate = 70.0 / 12_000_000
		cfg.DeadCats = defaultSiteCats
		cfg.TLSBrokenRate = 0.30
		cfg.OfficialLoaderFrac = 0.30
		cfg.FamilyMix = comNetFamilyMix
		cfg.MinerCats = defaultSiteCats
	}
	return cfg
}

// deadFamilyMix shapes Fig. 2's script-family bars: the stock-loader
// population is overwhelmingly coinhive.
var deadFamilyMix = []Weighted{
	{fingerprint.FamilyCoinhive, 0.85},
	{fingerprint.FamilyAuthedmine, 0.06},
	{fingerprint.FamilyWpMonero, 0.04},
	{fingerprint.FamilyCryptoloot, 0.03},
	{fingerprint.FamilyDeepMiner, 0.02},
}

var comNetFamilyMix = []Weighted{
	{fingerprint.FamilyCoinhive, 0.62},
	{fingerprint.FamilyAuthedmine, 0.07},
	{fingerprint.FamilyWpMonero, 0.06},
	{fingerprint.FamilyCryptoloot, 0.06},
	{fingerprint.FamilyCoinImp, 0.05},
	{"UnknownWSS", 0.05},
	{fingerprint.FamilyNotgiven688, 0.03},
	{fingerprint.FamilyWebStatiBid, 0.03},
	{fingerprint.FamilyDeepMiner, 0.02},
	{fingerprint.FamilyMonerise, 0.01},
}
