package webgen

import (
	"strings"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/wasm"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(TLDAlexa, 5000, 1)
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Sites) != 5000 || len(b.Sites) != 5000 {
		t.Fatalf("sizes %d/%d", len(a.Sites), len(b.Sites))
	}
	for i := range a.Sites {
		sa, sb := a.Sites[i], b.Sites[i]
		if sa.Domain != sb.Domain || (sa.Miner == nil) != (sb.Miner == nil) {
			t.Fatalf("site %d differs between identical generations", i)
		}
		if sa.Miner != nil && (sa.Miner.Family != sb.Miner.Family || sa.Miner.Version != sb.Miner.Version) {
			t.Fatalf("site %d miner differs", i)
		}
	}
	c := Generate(DefaultConfig(TLDAlexa, 5000, 2))
	diff := 0
	for i := range a.Sites {
		if (a.Sites[i].Miner == nil) != (c.Sites[i].Miner == nil) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical miner placement")
	}
}

func TestMinerRateApproximatesConfig(t *testing.T) {
	cfg := DefaultConfig(TLDAlexa, 400_000, 7)
	c := Generate(cfg)
	miners := 0
	for _, s := range c.Sites {
		if s.Miner != nil {
			miners++
		}
	}
	want := cfg.MinerWasmRate * float64(cfg.N)
	if float64(miners) < want*0.7 || float64(miners) > want*1.3 {
		t.Errorf("miners = %d, want ~%.0f", miners, want)
	}
}

func TestFamilyMixDominatedByCoinhive(t *testing.T) {
	if testing.Short() {
		t.Skip("zone-scale corpus statistics")
	}
	cfg := DefaultConfig(TLDOrg, 2_000_000, 3)
	cfg.MinerWasmRate = 0.001 // boost so the mix is statistically stable
	c := Generate(cfg)
	counts := map[string]int{}
	total := 0
	for _, s := range c.Sites {
		if s.Miner != nil {
			counts[s.Miner.Family]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no miners generated")
	}
	share := float64(counts[fingerprint.FamilyCoinhive]) / float64(total)
	if share < 0.45 || share > 0.60 {
		t.Errorf("coinhive share = %.2f, want ~0.52 (711/1372)", share)
	}
}

func TestStaticHTMLShape(t *testing.T) {
	cfg := DefaultConfig(TLDAlexa, 1, 1)
	site := &Site{
		Domain: "example-a.com", TLD: TLDAlexa, Rank: 1,
		Categories: []string{"Gaming"},
		Miner: &MinerDeployment{
			Family: fingerprint.FamilyCoinhive, Version: 0,
			Token: "tok-abc123", OfficialLoader: true,
		},
	}
	_ = cfg
	html := RenderStaticHTML(site)
	if !strings.Contains(html, "coinhive.min.js") {
		t.Error("static miner loader missing from HTML")
	}
	if !strings.Contains(html, "tok-abc123") {
		t.Error("site token missing from inline snippet")
	}
	// Self-hosted deployment must leave no miner trace in static HTML.
	site.Miner.OfficialLoader = false
	html = RenderStaticHTML(site)
	if strings.Contains(strings.ToLower(html), "coinhive") {
		t.Error("dynamic miner leaked into static HTML")
	}
}

func TestExecuteRevealsSelfHostedMiner(t *testing.T) {
	site := &Site{
		Domain: "hidden.org", TLD: TLDOrg, Rank: 9,
		Categories: []string{"Business"},
		Miner: &MinerDeployment{
			Family: fingerprint.FamilyCoinhive, Version: 1,
			Token: "tok-hidden", OfficialLoader: false,
		},
	}
	art := Execute(site)
	if !strings.Contains(art.FinalHTML, "__wk") {
		t.Error("executed HTML lacks the injected self-hosted loader")
	}
	if len(art.Wasm) != 1 || !wasm.IsWasm(art.Wasm[0]) {
		t.Fatalf("wasm dumps = %d", len(art.Wasm))
	}
	if len(art.WSHosts) != 1 || !strings.HasSuffix(art.WSHosts[0], "coinhive.com") {
		t.Errorf("ws hosts = %v", art.WSHosts)
	}
}

func TestMinerBinariesMatchSignatureDB(t *testing.T) {
	db := fingerprint.ReferenceDB()
	site := &Site{
		Domain: "x.org", Rank: 1, Categories: []string{"Tech"},
		Miner: &MinerDeployment{Family: fingerprint.FamilyCryptoloot, Version: 2, Token: "tok-zzzzzz"},
	}
	art := Execute(site)
	m, err := wasm.Decode(art.Wasm[0])
	if err != nil {
		t.Fatal(err)
	}
	v := db.Classify(m, art.WSHosts)
	if !v.Known || v.Family != fingerprint.FamilyCryptoloot {
		t.Errorf("verdict = %+v", v)
	}
}

func TestUnknownWSSBinaryEvadesSignatures(t *testing.T) {
	db := fingerprint.ReferenceDB()
	site := &Site{
		Domain: "rogue.org", Rank: 4, Categories: []string{"Tech"},
		Miner: &MinerDeployment{Family: "UnknownWSS", Version: 3, Token: "tok-rogue1"},
	}
	art := Execute(site)
	m, err := wasm.Decode(art.Wasm[0])
	if err != nil {
		t.Fatal(err)
	}
	v := db.Classify(m, art.WSHosts)
	if v.Known {
		t.Error("rogue assembly matched the signature DB")
	}
	if !v.Miner {
		t.Error("rogue assembly not detected as a miner heuristically")
	}
	if v.Family != fingerprint.FamilyUnknownWSS {
		t.Errorf("family = %q, want UnknownWSS", v.Family)
	}
	// Two different operators must have different signatures.
	site2 := &Site{
		Domain: "rogue2.org", Rank: 5, Categories: []string{"Tech"},
		Miner: &MinerDeployment{Family: "UnknownWSS", Version: 3, Token: "tok-zq9xk2"},
	}
	art2 := Execute(site2)
	m2, _ := wasm.Decode(art2.Wasm[0])
	if fingerprint.SignatureOf(m) == fingerprint.SignatureOf(m2) {
		t.Error("distinct rogue operators share a signature")
	}
}

func TestTruncationStillParses(t *testing.T) {
	site := Generate(DefaultConfig(TLDOrg, 1, 1)).Sites[0]
	html := RenderStaticHTML(site)
	if len(html) < 100 {
		t.Fatal("page too small to truncate meaningfully")
	}
	_ = html[:len(html)/2] // htmlx tolerance is covered in its own tests
}
