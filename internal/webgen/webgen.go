// Package webgen synthesises the web corpora the crawler measures: per-TLD
// domain populations with configurable miner prevalence, family mix,
// loader visibility (static script tag vs dynamically injected — the
// difference between what the NoCoin scan and the browser scan can see),
// ad-network false positives, category labels and page-load behaviour.
//
// The 2018 web the paper crawled is gone; these corpora are its stand-in.
// Defaults are calibrated so the pipeline reproduces the paper's observed
// rates (Fig. 2 prevalence, Table 1 family mix, Table 2 NoCoin miss rates,
// Table 3 categories); the crawler/browser/fingerprint code paths are
// independent of where the corpus came from.
package webgen

import (
	"fmt"

	"repro/internal/keccak"
	"repro/internal/rulespace"
)

// TLD identifies a crawl population.
type TLD string

// Populations studied by the paper.
const (
	TLDAlexa TLD = "alexa"
	TLDCom   TLD = "com"
	TLDNet   TLD = "net"
	TLDOrg   TLD = "org"
)

// MinerDeployment describes mining code on a site.
type MinerDeployment struct {
	Family  string
	Version int
	Token   string
	// OfficialLoader: the site embeds the service's stock <script> tag
	// (coinhive.min.js and friends) that block lists key on. The rest
	// self-host a renamed copy and inject it at runtime — invisible to
	// NoCoin even on the post-execution HTML, which is why the paper finds
	// 82%/67% of Wasm-confirmed miners missing from the list.
	OfficialLoader bool
	Throttle       float64 // fraction of CPU left idle by the miner
}

// WasmDeployment is benign WebAssembly on a site.
type WasmDeployment struct {
	Family  string
	Version int
}

// DeadDeployment is a miner script that never executes: the stock loader
// tag is in the HTML (so block lists flag it) but no Wasm is ever
// instantiated — parked sites, wrong tokens, disabled accounts. These are
// the bulk of the paper's "NoCoin hits without mining Wasm" population.
type DeadDeployment struct {
	Family string
	Token  string
}

// LoadProfile drives the browser's page-load heuristic.
type LoadProfile struct {
	HasLoadEvent bool
	LoadEventMs  int   // when the load event fires
	DOMChangeMs  []int // post-load DOM mutations (relative ms)
	TLSBroken    bool  // www.+TLS fetch fails; only http:// browser crawl works
}

// Site is one synthetic website.
type Site struct {
	Domain     string
	TLD        TLD
	Rank       int
	Categories []string
	Miner      *MinerDeployment
	DeadMiner  *DeadDeployment
	BenignWasm *WasmDeployment
	AdNetwork  string // "cpmstar" for the gaming ad network FP sites
	Load       LoadProfile
}

// Weighted is a generic weighted choice entry.
type Weighted struct {
	Key    string
	Weight float64
}

// Config parameterises corpus generation. All rates are fractions of N.
type Config struct {
	TLD  TLD
	N    int
	Seed uint64

	MinerWasmRate      float64 // sites that mine when executed
	OfficialLoaderFrac float64 // of miners, fraction using the stock loader tag
	DeadMinerRate      float64 // sites with a stock loader but no execution
	AdNetworkRate      float64 // cpmstar-carrying sites
	BenignWasmRate     float64
	TLSBrokenRate      float64
	TimeoutRate        float64 // sites that never fire a load event

	FamilyMix     []Weighted // miner family mix (may include "UnknownWSS")
	DeadFamilyMix []Weighted // dead-deployment script families
	SiteCats      []Weighted // general population categories
	MinerCats     []Weighted // category prior for miner sites
	DeadCats      []Weighted // category prior for dead-deployment sites
	AdNetCats     []Weighted // category prior for ad-network sites
}

// Corpus is a generated population.
type Corpus struct {
	Cfg   Config
	Sites []*Site
}

// rng is the deterministic per-site generator (xorshift64*).
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pick(w []Weighted) string {
	total := 0.0
	for _, e := range w {
		total += e.Weight
	}
	x := r.float() * total
	for _, e := range w {
		x -= e.Weight
		if x <= 0 {
			return e.Key
		}
	}
	return w[len(w)-1].Key
}

// Generate builds a deterministic corpus from cfg.
func Generate(cfg Config) *Corpus {
	c := &Corpus{Cfg: cfg, Sites: make([]*Site, 0, cfg.N)}
	for i := 0; i < cfg.N; i++ {
		domain := domainFor(cfg.TLD, i)
		h := keccak.Sum256([]byte(fmt.Sprintf("site:%d:%s", cfg.Seed, domain)))
		r := newRng(uint64(h[0]) | uint64(h[1])<<8 | uint64(h[2])<<16 | uint64(h[3])<<24 |
			uint64(h[4])<<32 | uint64(h[5])<<40 | uint64(h[6])<<48 | uint64(h[7])<<56)
		s := &Site{
			Domain: domain,
			TLD:    cfg.TLD,
			Rank:   i + 1,
		}
		roll := r.float()
		switch {
		case roll < cfg.MinerWasmRate:
			fam := r.pick(cfg.FamilyMix)
			s.Miner = &MinerDeployment{
				Family:         fam,
				Version:        r.intn(versionsOf(fam)),
				Token:          fmt.Sprintf("tok-%x", h[8:14]),
				OfficialLoader: r.float() < cfg.OfficialLoaderFrac,
				Throttle:       0.3 * r.float(),
			}
			s.Categories = []string{r.pick(cfg.MinerCats)}
		case roll < cfg.MinerWasmRate+cfg.DeadMinerRate:
			s.DeadMiner = &DeadDeployment{
				Family: r.pick(cfg.DeadFamilyMix),
				Token:  fmt.Sprintf("tok-%x", h[8:14]),
			}
			s.Categories = []string{r.pick(cfg.DeadCats)}
		case roll < cfg.MinerWasmRate+cfg.DeadMinerRate+cfg.AdNetworkRate:
			s.AdNetwork = "cpmstar"
			s.Categories = []string{r.pick(cfg.AdNetCats)}
		case roll < cfg.MinerWasmRate+cfg.DeadMinerRate+cfg.AdNetworkRate+cfg.BenignWasmRate:
			s.BenignWasm = &WasmDeployment{
				Family:  r.pick(benignFamilies),
				Version: r.intn(4),
			}
			s.Categories = []string{r.pick(cfg.SiteCats)}
		default:
			s.Categories = []string{r.pick(cfg.SiteCats)}
		}
		// Some sites carry a secondary category, as RuleSpace does.
		if r.float() < 0.2 {
			s.Categories = append(s.Categories, r.pick(cfg.SiteCats))
		}
		s.Load = LoadProfile{
			HasLoadEvent: r.float() >= cfg.TimeoutRate,
			LoadEventMs:  200 + r.intn(2800),
			TLSBroken:    r.float() < cfg.TLSBrokenRate,
		}
		for n := r.intn(3); n > 0; n-- {
			s.Load.DOMChangeMs = append(s.Load.DOMChangeMs, 100+r.intn(1500))
		}
		c.Sites = append(c.Sites, s)
	}
	return c
}

var benignFamilies = []Weighted{
	{Key: "game-engine", Weight: 0.4},
	{Key: "image-codec", Weight: 0.3},
	{Key: "math-kernel", Weight: 0.15},
	{Key: "crypto-lib", Weight: 0.15},
}

func domainFor(tld TLD, i int) string {
	switch tld {
	case TLDAlexa:
		return fmt.Sprintf("al%06d.com", i)
	case TLDCom:
		return fmt.Sprintf("cm%07d.com", i)
	case TLDNet:
		return fmt.Sprintf("nt%06d.net", i)
	default:
		return fmt.Sprintf("og%06d.org", i)
	}
}

// RegisterCategories loads the corpus ground truth into a RuleSpace engine
// under the corpus's population tag.
func (c *Corpus) RegisterCategories(e *rulespace.Engine) {
	for _, s := range c.Sites {
		e.Register(s.Domain, string(c.Cfg.TLD), s.Categories)
	}
}

func versionsOf(family string) int {
	if family == "UnknownWSS" {
		return 8
	}
	if spec, ok := familySpec(family); ok {
		return spec.versions
	}
	return 1
}
