package webgen

import (
	"fmt"
	"strings"

	"repro/internal/fingerprint"
	"repro/internal/wasm"
)

// loaderSpec is how a miner family appears in page source.
type loaderSpec struct {
	scriptURL string // external loader script
	inline    string // inline start snippet; %s is the site token
	versions  int
}

// familySpec returns the loader shape for a catalog family.
func familySpec(family string) (loaderSpec, bool) {
	spec, ok := fingerprint.SpecByName(family)
	if !ok {
		return loaderSpec{}, false
	}
	ls := loaderSpec{versions: spec.Versions}
	switch family {
	case fingerprint.FamilyCoinhive:
		ls.scriptURL = "https://coinhive.com/lib/coinhive.min.js"
		ls.inline = `var miner=new CoinHive.Anonymous('%s');miner.start();`
	case fingerprint.FamilyAuthedmine:
		ls.scriptURL = "https://authedmine.com/lib/authedmine.min.js"
		ls.inline = `var miner=new CoinHive.Anonymous('%s',{forceASMJS:false});miner.start();`
	case fingerprint.FamilyCryptoloot:
		ls.scriptURL = "https://crypto-loot.com/lib/miner.js"
		ls.inline = `var m=new CryptoLoot.Anonymous('%s');m.start();`
	case fingerprint.FamilyWpMonero:
		ls.scriptURL = "https://www.wp-monero-miner.com/js/wp-monero-miner.js"
		ls.inline = `wpMoneroMiner.start('%s');`
	case fingerprint.FamilyDeepMiner:
		ls.scriptURL = "https://deepminer.net/lib/deepminer.min.js"
		ls.inline = `var m=new deepMiner.Anonymous('%s');m.start();`
	default:
		// Families below the NoCoin radar ship self-hosted loaders with
		// unremarkable names — the reason block lists miss them even when
		// the tag is static.
		ls.scriptURL = fmt.Sprintf("/assets/js/%s-loader.js", shortName(family))
		ls.inline = `window.__wk&&window.__wk.init('%s');`
	}
	return ls, true
}

func shortName(family string) string {
	s := strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			return r
		}
		return -1
	}, strings.ToLower(family))
	if len(s) > 10 {
		s = s[:10]
	}
	return s
}

// RenderStaticHTML produces the landing page as the HTTP server would send
// it — what the zgrab-style fetcher downloads and the NoCoin list scans.
func RenderStaticHTML(s *Site) string {
	var b strings.Builder
	cat := "site"
	if len(s.Categories) > 0 {
		cat = s.Categories[0]
	}
	fmt.Fprintf(&b, "<!doctype html>\n<html><head>\n<title>%s — a %s website</title>\n", s.Domain, cat)
	b.WriteString(`<meta charset="utf-8">` + "\n")
	// Ordinary supporting scripts every site has.
	b.WriteString(`<script src="https://code.jquery.com/jquery-3.3.1.min.js"></script>` + "\n")
	b.WriteString(`<script>window.dataLayer=window.dataLayer||[];function gtag(){dataLayer.push(arguments);}</script>` + "\n")

	if s.DeadMiner != nil {
		// The stock loader is there for any list to match; nothing will
		// ever run it.
		if ls, ok := familySpec(s.DeadMiner.Family); ok {
			fmt.Fprintf(&b, "<script src=%q></script>\n", ls.scriptURL)
			fmt.Fprintf(&b, "<script>"+ls.inline+"</script>\n", s.DeadMiner.Token)
		}
	}
	if s.AdNetwork == "cpmstar" {
		b.WriteString(`<script src="https://cdn.cpmstar.com/cached/js/cpmstar.js"></script>` + "\n")
	}
	if s.Miner != nil && s.Miner.OfficialLoader {
		if ls, ok := familySpec(s.Miner.Family); ok {
			fmt.Fprintf(&b, "<script src=%q></script>\n", ls.scriptURL)
			fmt.Fprintf(&b, "<script>"+ls.inline+"</script>\n", s.Miner.Token)
		} else {
			fmt.Fprintf(&b, "<script src=\"/js/app.%x.js\"></script>\n", s.Rank)
		}
	}
	if s.Miner != nil && !s.Miner.OfficialLoader {
		// Self-hosted deployment: nothing list-matchable in the static
		// HTML, just an opaque application bundle that drops the renamed
		// miner at runtime.
		fmt.Fprintf(&b, "<script src=\"/js/main.%x.bundle.js\"></script>\n", s.Rank)
	}
	b.WriteString("</head><body>\n")
	fmt.Fprintf(&b, "<h1>Welcome to %s</h1>\n", s.Domain)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, "<p>Lorem ipsum %s content block %d for rank %d.</p>\n", cat, i, s.Rank)
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// ExecutedArtifacts is what running the page in a browser additionally
// surfaces: the final DOM, instantiated Wasm modules and dialled Websocket
// backends. The browser package drives this.
type ExecutedArtifacts struct {
	FinalHTML string
	Wasm      [][]byte
	WSHosts   []string
}

// Execute simulates script execution for a site: dynamic loaders inject
// their miner tags into the DOM, miners instantiate their Wasm payload and
// dial their pool backend.
func Execute(s *Site) ExecutedArtifacts {
	html := RenderStaticHTML(s)
	var art ExecutedArtifacts
	if s.Miner != nil {
		if !s.Miner.OfficialLoader {
			// Runtime injection of the *renamed, self-hosted* miner: the
			// final HTML gains a script tag, but one that matches no block
			// list rule. Only the Wasm dump betrays it.
			inject := fmt.Sprintf("<script src=\"/js/wk.%x.js\"></script><script>window.__wk&&window.__wk.init('%s');</script>",
				s.Rank, s.Miner.Token)
			html = strings.Replace(html, "</body>", inject+"</body>", 1)
		}
		art.Wasm = append(art.Wasm, minerBinary(s))
		art.WSHosts = append(art.WSHosts, backendHost(s))
	}
	if s.BenignWasm != nil {
		if spec, ok := fingerprint.SpecByName(s.BenignWasm.Family); ok {
			art.Wasm = append(art.Wasm, cachedBinary(spec, s.BenignWasm.Version%spec.Versions))
		}
	}
	art.FinalHTML = html
	return art
}

// minerBinary returns the Wasm payload a site's miner instantiates.
// UnknownWSS sites run an assembly that is *not* in anyone's signature
// database: a per-operator variant of a known kernel, mutated
// deterministically per token.
func minerBinary(s *Site) []byte {
	if s.Miner.Family == "UnknownWSS" {
		base, _ := fingerprint.SpecByName(fingerprint.FamilyCryptoloot)
		m, err := wasm.Decode(cachedBinary(base, s.Miner.Version%base.Versions))
		if err != nil {
			panic("webgen: reference binary does not decode: " + err.Error())
		}
		// Pad the first body with operator-specific NOPs: still a valid
		// module with miner-shaped features, but a signature nobody has.
		pad := make([]byte, 1+int(s.Miner.Token[4]%7))
		for i := range pad {
			pad[i] = 0x01 // nop
		}
		m.Codes[0].Body = append(pad, m.Codes[0].Body...)
		m.Names = nil // strip symbol hints too
		return wasm.Encode(m)
	}
	spec, ok := fingerprint.SpecByName(s.Miner.Family)
	if !ok {
		spec, _ = fingerprint.SpecByName(fingerprint.FamilyCoinhive)
	}
	return cachedBinary(spec, s.Miner.Version%spec.Versions)
}

// backendHost returns the Websocket endpoint a site's miner dials.
func backendHost(s *Site) string {
	if s.Miner.Family == "UnknownWSS" {
		return fmt.Sprintf("ws.pool-%s.io", s.Miner.Token[4:10])
	}
	spec, ok := fingerprint.SpecByName(s.Miner.Family)
	if !ok || spec.Backend == "" {
		return "ws.unknown.example"
	}
	return fmt.Sprintf("ws%03d.%s", s.Rank%32, spec.Backend)
}
