package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		var counts [n]atomic.Int32
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int32
	ForEach(50, 4, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > 4 {
		t.Errorf("peak concurrency %d exceeds 4 workers", p)
	}
}
