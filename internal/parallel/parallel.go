// Package parallel provides the bounded worker-pool primitive shared by
// the miner fleet and the experiment ensemble runners.
package parallel

import (
	"runtime"
	"sync"
)

// ForEach invokes fn(i) for every i in [0, n), running at most workers
// calls concurrently (workers < 1 means GOMAXPROCS). It returns once all
// calls have finished. Results travel through whatever fn captures; with
// one writer per index, no extra synchronisation is needed.
func ForEach(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)
	wg.Wait()
}
