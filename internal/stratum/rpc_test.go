package stratum

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRPCRequestRoundTrip(t *testing.T) {
	line, err := AppendRPCRequest(nil, 7, MethodLogin, LoginParams{
		Login: "site-key", Pass: "link:ab3", Agent: "test/1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if line[len(line)-1] != '\n' {
		t.Fatal("request line is not newline-terminated")
	}
	env, err := UnmarshalRPC(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	if !env.IsRequest() || env.IsNotification() {
		t.Fatalf("frame shape wrong: %+v", env)
	}
	if env.Method != MethodLogin || string(env.ID) != "7" {
		t.Errorf("method/id = %q/%s", env.Method, env.ID)
	}
	var lp LoginParams
	if err := env.DecodeParams(&lp); err != nil {
		t.Fatal(err)
	}
	if lp.Login != "site-key" || lp.Pass != "link:ab3" {
		t.Errorf("params round-trip = %+v", lp)
	}
}

func TestRPCNotifyAndResponseShapes(t *testing.T) {
	notify, err := AppendRPCNotify(nil, TypeJob, Job{JobID: "1-2-3", Blob: "aa", Target: "bb"})
	if err != nil {
		t.Fatal(err)
	}
	env, err := UnmarshalRPC(bytes.TrimSpace(notify))
	if err != nil {
		t.Fatal(err)
	}
	if !env.IsNotification() || env.IsRequest() {
		t.Fatalf("notification shape wrong: %+v", env)
	}

	res, err := AppendRPCResult(nil, json.RawMessage("42"), SubmitResult{Status: StatusOK, Hashes: 9})
	if err != nil {
		t.Fatal(err)
	}
	env, err = UnmarshalRPC(bytes.TrimSpace(res))
	if err != nil {
		t.Fatal(err)
	}
	if string(env.ID) != "42" || env.Error != nil {
		t.Fatalf("result envelope = %+v", env)
	}
	var sr SubmitResult
	if err := env.DecodeResult(&sr); err != nil || sr.Hashes != 9 {
		t.Fatalf("result decode = %+v (%v)", sr, err)
	}

	// Responses to unparseable ids echo JSON null, per JSON-RPC 2.0.
	errLine, err := AppendRPCError(nil, json.RawMessage("{broken"), RPCParseError, "bad message")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(errLine, []byte(`"id":null`)) {
		t.Errorf("error response did not null the bad id: %s", errLine)
	}
	env, err = UnmarshalRPC(bytes.TrimSpace(errLine))
	if err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != RPCParseError || env.Error.Message != "bad message" {
		t.Fatalf("error envelope = %+v", env)
	}
}

func TestReadRPCLineEnforcesMax(t *testing.T) {
	long := strings.Repeat("x", MaxRPCLine+1) + "\n"
	r := bufio.NewReaderSize(strings.NewReader(long), MaxRPCLine)
	if _, err := ReadRPCLine(r); err != ErrRPCLineTooLong {
		t.Fatalf("oversize line error = %v, want ErrRPCLineTooLong", err)
	}

	ok := `{"id":1,"method":"login"}` + "\n"
	r = bufio.NewReaderSize(strings.NewReader(ok), MaxRPCLine)
	line, err := ReadRPCLine(r)
	if err != nil || string(line) != strings.TrimSuffix(ok, "\n") {
		t.Fatalf("line = %q, err = %v", line, err)
	}
}

// FuzzRPC feeds arbitrary bytes through the line reader and envelope
// decoder, then re-marshals whatever decodes — the codec must never
// panic, and every decodable frame must survive a round trip.
func FuzzRPC(f *testing.F) {
	seed := [][]byte{
		[]byte(`{"id":1,"jsonrpc":"2.0","method":"login","params":{"login":"k","pass":"p"}}`),
		[]byte(`{"id":2,"method":"submit","params":{"id":"t","job_id":"0-1-2","nonce":"00ab00cd","result":"ff"}}`),
		[]byte(`{"id":3,"method":"keepalived","params":{"id":"t"}}`),
		[]byte(`{"jsonrpc":"2.0","method":"job","params":{"job_id":"1-1-1","blob":"aa","target":"bb"}}`),
		[]byte(`{"id":1,"result":{"id":"tok","job":{"job_id":"j"},"status":"OK","hashes":5}}`),
		[]byte(`{"id":1,"error":{"code":-3,"message":"stale job"}}`),
		[]byte(`{"id":null,"method":""}`),
		[]byte(`{definitely not json`),
		[]byte(``),
		[]byte(`[1,2,3]`),
		[]byte(`"just a string"`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := UnmarshalRPC(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-marshal, and params/results must be
		// decodable into their structs or fail cleanly — never panic.
		var lp LoginParams
		_ = env.DecodeParams(&lp)
		var sp SubmitParams
		_ = env.DecodeParams(&sp)
		var lr LoginResult
		_ = env.DecodeResult(&lr)
		var sr SubmitResult
		_ = env.DecodeResult(&sr)
		if env.Error != nil && env.Error.Message == "" && env.Error.Code == 0 {
			_ = env.Error // zero errors are representable; nothing to assert
		}
		if len(env.ID) > 0 {
			line, err := AppendRPCResult(nil, env.ID, SubmitResult{Status: StatusOK})
			if err != nil {
				t.Fatalf("re-marshal with echoed id %q: %v", env.ID, err)
			}
			if _, err := UnmarshalRPC(bytes.TrimSpace(line)); err != nil {
				t.Fatalf("round trip of %q: %v", line, err)
			}
		}
		if env.IsRequest() && env.IsNotification() {
			t.Fatal("frame cannot be both request and notification")
		}
	})
}
