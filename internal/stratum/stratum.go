// Package stratum defines the Coinhive-style pool protocol spoken between
// web miners and pool endpoints over WebSockets: JSON envelopes for
// auth/job/submit plus the job-blob obfuscation the paper discovered
// (§4.1: "Coinhive alters the block header contained in the PoW inputs
// before sending them to the users which the web miner reverts deep within
// its WebAssembly ... A simple XOR with a fixed value at a fixed offset").
package stratum

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// Message types exchanged over the socket.
const (
	TypeAuth            = "auth"
	TypeAuthed          = "authed"
	TypeJob             = "job"
	TypeSubmit          = "submit"
	TypeHashAccepted    = "hash_accepted"
	TypeBanned          = "banned"
	TypeError           = "error"
	TypeLinkResolved    = "link_resolved"
	TypeCaptchaVerified = "captcha_verified"
)

// LinkResolved is pushed once a short link's hash goal has been met; it
// reveals the destination the service was withholding.
type LinkResolved struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// CaptchaVerified is pushed once a proof-of-work captcha's hash goal has
// been met, carrying the one-time verification token the embedding site's
// backend redeems. Older servers delivered the token by reusing the
// link_resolved push (token in the URL field); clients keep decoding that
// form for one release.
type CaptchaVerified struct {
	ID    string `json:"id"`
	Token string `json:"token"`
}

// Envelope is the outer JSON frame: a type tag plus type-specific params.
type Envelope struct {
	Type   string          `json:"type"`
	Params json.RawMessage `json:"params"`
}

// Auth is sent by the miner immediately after connecting.
type Auth struct {
	SiteKey string `json:"site_key"`
	Type    string `json:"type"` // "anonymous" | "token" | "user"
	User    string `json:"user,omitempty"`
	Goal    int    `json:"goal,omitempty"` // shortlink hash goal, 0 otherwise
}

// Authed acknowledges authentication.
type Authed struct {
	Token  string `json:"token"`
	Hashes int64  `json:"hashes"` // hashes already credited (shortlink resume)
}

// Job carries one PoW input. Blob is the hex-encoded, *obfuscated* hashing
// blob; Target is the compact share target (hex, little-endian uint32).
type Job struct {
	JobID  string `json:"job_id"`
	Blob   string `json:"blob"`
	Target string `json:"target"`
}

// Submit reports a found share.
type Submit struct {
	Version int    `json:"version"`
	JobID   string `json:"job_id"`
	Nonce   string `json:"nonce"`  // 8 hex chars, little-endian
	Result  string `json:"result"` // hex CryptoNight hash
}

// HashAccepted credits accepted work.
type HashAccepted struct {
	Hashes int64 `json:"hashes"`
}

// Error carries a protocol error string.
type Error struct {
	Error string `json:"error"`
}

// Marshal wraps params into an Envelope and encodes it.
func Marshal(msgType string, params interface{}) ([]byte, error) {
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	return json.Marshal(Envelope{Type: msgType, Params: raw})
}

// Unmarshal decodes an envelope.
func Unmarshal(data []byte) (Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return Envelope{}, fmt.Errorf("stratum: bad envelope: %w", err)
	}
	return e, nil
}

// Decode decodes an envelope's params into out.
func (e Envelope) Decode(out interface{}) error {
	if err := json.Unmarshal(e.Params, out); err != nil {
		return fmt.Errorf("stratum: bad %s params: %w", e.Type, err)
	}
	return nil
}

// Obfuscation constants: an 8-byte key XORed at a fixed offset inside the
// blob (within the prev-hash field, so it garbles the chain pointer for
// anyone using the blob outside the official miner).
const ObfuscationOffset = 9

var obfuscationKey = [8]byte{0x63, 0x6E, 0x68, 0x76, 0x2E, 0x63, 0x6F, 0x21}

// ObfuscateBlob XORs the fixed key at the fixed offset, in place. The
// transform is an involution: applying it twice restores the original, so
// the web miner (and our non-web resolver) calls the same function to
// revert it.
//
//lint:hotpath
func ObfuscateBlob(blob []byte) {
	if len(blob) < ObfuscationOffset+len(obfuscationKey) {
		return // blob too short to carry the obfuscated window
	}
	for i, k := range obfuscationKey {
		blob[ObfuscationOffset+i] ^= k
	}
}

// EncodeBlob hex-encodes a blob for the wire.
func EncodeBlob(blob []byte) string { return hex.EncodeToString(blob) }

// DecodeBlob decodes a wire blob into a single right-sized allocation.
func DecodeBlob(s string) ([]byte, error) {
	return AppendDecodedBlob(make([]byte, 0, len(s)/2), s)
}

// Blob-decoding errors are static so the zero-alloc decode path stays
// allocation-free on rejection too (a flood of malformed blobs must not
// turn into a flood of error-formatting allocations).
var (
	ErrBlobOddLength = errors.New("stratum: bad blob hex: odd length")
	ErrBlobBadDigit  = errors.New("stratum: bad blob hex digit")
)

// AppendDecodedBlob decodes a wire blob into dst, reusing its capacity. The
// §4.2 watcher decodes hundreds of blobs per block interval; feeding a
// scratch buffer here keeps its polling loop allocation-free. Hand-rolled
// rather than encoding/hex.Decode because that takes a []byte source — the
// string conversion would reintroduce the per-poll allocation.
//
//lint:hotpath
func AppendDecodedBlob(dst []byte, s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, ErrBlobOddLength
	}
	for i := 0; i < len(s); i += 2 {
		hi := unhexTable[s[i]]
		lo := unhexTable[s[i+1]]
		// Valid digits decode to 0..15; 0xFF marks anything else, so a
		// single range check covers both characters.
		if hi|lo >= 0x10 {
			return nil, ErrBlobBadDigit
		}
		dst = append(dst, hi<<4|lo)
	}
	return dst, nil
}

// unhexTable maps hex digits to their values and everything else to 0xFF.
var unhexTable = func() (t [256]byte) {
	for i := range t {
		t[i] = 0xFF
	}
	for c := '0'; c <= '9'; c++ {
		t[c] = byte(c - '0')
	}
	for c := 'a'; c <= 'f'; c++ {
		t[c] = byte(c-'a') + 10
	}
	for c := 'A'; c <= 'F'; c++ {
		t[c] = byte(c-'A') + 10
	}
	return t
}()

// EncodeNonce formats a nonce for Submit.
func EncodeNonce(n uint32) string {
	var b [4]byte
	b[0] = byte(n)
	b[1] = byte(n >> 8)
	b[2] = byte(n >> 16)
	b[3] = byte(n >> 24)
	return hex.EncodeToString(b[:])
}

// Nonce/target parse errors are static so the per-submit decode paths
// stay allocation-free on rejection.
var (
	ErrBadNonce  = errors.New("stratum: bad nonce")
	ErrBadTarget = errors.New("stratum: bad target")
)

// DecodeNonce parses a Submit nonce.
//
//lint:hotpath
func DecodeNonce(s string) (uint32, error) {
	return decodeHexLE32(s, ErrBadNonce)
}

// EncodeTarget formats a compact target.
func EncodeTarget(t uint32) string {
	var b [4]byte
	b[0] = byte(t)
	b[1] = byte(t >> 8)
	b[2] = byte(t >> 16)
	b[3] = byte(t >> 24)
	return hex.EncodeToString(b[:])
}

// DecodeTarget parses a compact target.
//
//lint:hotpath
func DecodeTarget(s string) (uint32, error) {
	return decodeHexLE32(s, ErrBadTarget)
}

// decodeHexLE32 parses exactly eight hex digits as a little-endian uint32
// through the same lookup table the blob decoder uses — hex.DecodeString
// would allocate a 4-byte slice per call, which DecodeJob pays once per
// pushed job per session.
//
//lint:hotpath
func decodeHexLE32(s string, bad error) (uint32, error) {
	if len(s) != 8 {
		return 0, bad
	}
	var v uint32
	for i := 0; i < 8; i += 2 {
		hi := unhexTable[s[i]]
		lo := unhexTable[s[i+1]]
		if hi|lo >= 0x10 {
			return 0, bad
		}
		v |= uint32(hi<<4|lo) << (4 * uint(i))
	}
	return v, nil
}
