package stratum

import (
	"reflect"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

// FuzzUnmarshal feeds arbitrary bytes through the full server-side
// decode path: envelope, every params type, and the hex field decoders.
// The loadgen swarm's malformed-share scenario throws garbage at a live
// server; this is the same guarantee without a socket — no input may
// panic, only return errors.
func FuzzUnmarshal(f *testing.F) {
	seeds := []string{
		`{"type":"auth","params":{"site_key":"k","type":"anonymous"}}`,
		`{"type":"submit","params":{"version":7,"job_id":"3-1-5","nonce":"00ff00ff","result":"` + hex64() + `"}}`,
		`{"type":"job","params":{"job_id":"0-1-0","blob":"0700aa","target":"ffffff00"}}`,
		`{"type":"authed","params":{"token":"t","hashes":42}}`,
		`{"type":"hash_accepted","params":{"hashes":256}}`,
		`{"type":"link_resolved","params":{"id":"ab3","url":"https://example.com"}}`,
		`{"type":"error","params":{"error":"bad nonce"}}`,
		`{"type":"submit","params":{"nonce":"zzzz"}}`,   // bad hex
		`{"type":"submit","params":"not-an-object"}`,    // params type mismatch
		`{"type":"auth"}`,                               // missing params
		`{"type":123}`,                                  // type not a string
		`{`,                                             // truncated JSON
		"\x00\x01\x02",                                  // binary garbage
		`{"type":"job","params":{"blob":"0"}}`,          // odd-length hex
		`{"type":"submit","params":{"nonce":"00ff00"}}`, // short nonce
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Unmarshal(data)
		if err != nil {
			return
		}
		var auth Auth
		var authed Authed
		var job Job
		var submit Submit
		var ha HashAccepted
		var lr LinkResolved
		var e Error
		_ = env.Decode(&auth)
		_ = env.Decode(&authed)
		_ = env.Decode(&ha)
		_ = env.Decode(&lr)
		_ = env.Decode(&e)
		if env.Decode(&job) == nil {
			_, _ = DecodeBlob(job.Blob)
			_, _ = DecodeTarget(job.Target)
		}
		if env.Decode(&submit) == nil {
			_, _ = DecodeNonce(submit.Nonce)
			_, _ = DecodeBlob(submit.Result)
		}
	})
}

func hex64() string {
	s := ""
	for i := 0; i < 32; i++ {
		s += "ab"
	}
	return s
}

// TestEnvelopeRoundTripAllTypes is the dialect's wire-stability
// property: for every message type, Marshal → Unmarshal → Decode must
// reproduce the params exactly. testing/quick drives it with random
// field values.
func TestEnvelopeRoundTripAllTypes(t *testing.T) {
	roundTrip := func(t *testing.T, msgType string, in, out interface{}) bool {
		t.Helper()
		data, err := Marshal(msgType, in)
		if err != nil {
			t.Logf("Marshal(%s): %v", msgType, err)
			return false
		}
		env, err := Unmarshal(data)
		if err != nil || env.Type != msgType {
			t.Logf("Unmarshal(%s): type=%q err=%v", msgType, env.Type, err)
			return false
		}
		if err := env.Decode(out); err != nil {
			t.Logf("Decode(%s): %v", msgType, err)
			return false
		}
		// out is a pointer; compare what it points at to the input value.
		return reflect.DeepEqual(reflect.ValueOf(out).Elem().Interface(), in)
	}
	cfg := &quick.Config{MaxCount: 200}

	// encoding/json replaces invalid UTF-8 with U+FFFD, so the JSON
	// round-trip property only holds for valid strings — which is all the
	// dialect ever produces.
	valid := func(ss ...string) bool {
		for _, s := range ss {
			if !utf8.ValidString(s) {
				return true // vacuously pass; quick still drives valid cases
			}
		}
		return false
	}

	if err := quick.Check(func(siteKey, typ, user string, goal int) bool {
		if valid(siteKey, typ, user) {
			return true
		}
		in := Auth{SiteKey: siteKey, Type: typ, User: user, Goal: goal}
		return roundTrip(t, TypeAuth, in, &Auth{})
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(token string, hashes int64) bool {
		if valid(token) {
			return true
		}
		return roundTrip(t, TypeAuthed, Authed{Token: token, Hashes: hashes}, &Authed{})
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(blob []byte, target uint32, jobID string) bool {
		if valid(jobID) {
			return true
		}
		in := Job{JobID: jobID, Blob: EncodeBlob(blob), Target: EncodeTarget(target)}
		return roundTrip(t, TypeJob, in, &Job{})
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(jobID string, nonce uint32, result [32]byte) bool {
		if valid(jobID) {
			return true
		}
		in := Submit{Version: 7, JobID: jobID, Nonce: EncodeNonce(nonce), Result: EncodeBlob(result[:])}
		return roundTrip(t, TypeSubmit, in, &Submit{})
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(hashes int64) bool {
		return roundTrip(t, TypeHashAccepted, HashAccepted{Hashes: hashes}, &HashAccepted{})
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(id, url string) bool {
		if valid(id, url) {
			return true
		}
		return roundTrip(t, TypeLinkResolved, LinkResolved{ID: id, URL: url}, &LinkResolved{})
	}, cfg); err != nil {
		t.Error(err)
	}
}
