package stratum

import (
	"encoding/json"
	"testing"
)

// jobSamples covers the job shapes the pool actually mints: static tier,
// link tier, and a spread of vardiff tiers.
func jobSamples() []Job {
	blob := "0707c0a8f2e305a8a0" // representative hex; exact content irrelevant
	return []Job{
		{JobID: "3-17-2", Blob: blob, Target: "711b0d00"},
		{JobID: "3-17-2-L", Blob: blob, Target: "ffffff0f"},
		{JobID: "0-1-0-d16", Blob: blob, Target: "ffffff0f"},
		{JobID: "15-4294967295-7-d256", Blob: blob, Target: "711b0d00"},
		{JobID: "8-42-3-d1048576", Blob: blob, Target: "ff0f0000"},
	}
}

func TestAppendJobNotifyLineBitIdentical(t *testing.T) {
	for _, j := range jobSamples() {
		want, err := AppendRPCNotify(nil, "job", j)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendJobNotifyLine(nil, j)
		if string(got) != string(want) {
			t.Fatalf("job %s:\n got %q\nwant %q", j.JobID, got, want)
		}
	}
}

func TestAppendJobEnvelopeBitIdentical(t *testing.T) {
	for _, j := range jobSamples() {
		want, err := Marshal(TypeJob, j)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendJobEnvelope(nil, j)
		if string(got) != string(want) {
			t.Fatalf("job %s:\n got %q\nwant %q", j.JobID, got, want)
		}
	}
}

func TestAppendSubmitOKLineBitIdentical(t *testing.T) {
	ids := []json.RawMessage{nil, json.RawMessage(`1`), json.RawMessage(`987654321`),
		json.RawMessage(`"abc"`), json.RawMessage(`{bad`)}
	for _, id := range ids {
		for _, hashes := range []int64{0, 1, 256, 1 << 40} {
			want, err := AppendRPCResult(nil, id, SubmitResult{Status: StatusOK, Hashes: hashes})
			if err != nil {
				t.Fatal(err)
			}
			got := AppendSubmitOKLine(nil, id, hashes)
			if string(got) != string(want) {
				t.Fatalf("id %q hashes %d:\n got %q\nwant %q", id, hashes, got, want)
			}
		}
	}
}

func TestAppendKeepaliveOKLineBitIdentical(t *testing.T) {
	for _, id := range []json.RawMessage{nil, json.RawMessage(`7`), json.RawMessage(`"k"`)} {
		want, err := AppendRPCResult(nil, id, KeepaliveResult{Status: StatusKeepalive})
		if err != nil {
			t.Fatal(err)
		}
		got := AppendKeepaliveOKLine(nil, id)
		if string(got) != string(want) {
			t.Fatalf("id %q:\n got %q\nwant %q", id, got, want)
		}
	}
}

func TestAppendHashAcceptedEnvelopeBitIdentical(t *testing.T) {
	for _, hashes := range []int64{0, 16, 999999} {
		want, err := Marshal(TypeHashAccepted, HashAccepted{Hashes: hashes})
		if err != nil {
			t.Fatal(err)
		}
		got := AppendHashAcceptedEnvelope(nil, hashes)
		if string(got) != string(want) {
			t.Fatalf("hashes %d:\n got %q\nwant %q", hashes, got, want)
		}
	}
}

func TestRPCIDVerbatim(t *testing.T) {
	ok := []string{"1", "987654321", `"abc"`, "null", "true"}
	for _, s := range ok {
		if !RPCIDVerbatim(json.RawMessage(s)) {
			t.Errorf("RPCIDVerbatim(%q) = false, want true", s)
		}
	}
	// Declined ids must still marshal identically through the fallback
	// path — the check only gates which encoder runs.
	notOK := []string{`"a<b"`, `"a&b"`, "[1, 2]", " 1", `"日本"`}
	for _, s := range notOK {
		if RPCIDVerbatim(json.RawMessage(s)) {
			t.Errorf("RPCIDVerbatim(%q) = true, want false", s)
		}
	}
}

func TestAppendersAllocFree(t *testing.T) {
	j := jobSamples()[3]
	id := json.RawMessage(`987654321`)
	buf := make([]byte, 0, 1024)
	pin := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(100, f); n != 0 {
			t.Errorf("%s allocates %.1f/op, want 0", name, n)
		}
	}
	pin("AppendJobNotifyLine", func() { buf = AppendJobNotifyLine(buf[:0], j) })
	pin("AppendJobEnvelope", func() { buf = AppendJobEnvelope(buf[:0], j) })
	pin("AppendSubmitOKLine", func() { buf = AppendSubmitOKLine(buf[:0], id, 1<<40) })
	pin("AppendKeepaliveOKLine", func() { buf = AppendKeepaliveOKLine(buf[:0], id) })
	pin("AppendHashAcceptedEnvelope", func() { buf = AppendHashAcceptedEnvelope(buf[:0], 1<<40) })
}
