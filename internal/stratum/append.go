// Zero-allocation wire encoders for the messages on the steady-state
// serve path: job pushes (both dialects), submit acks and keepalive acks.
// Each appends the exact bytes the generic json.Marshal path produces —
// pinned bit-for-bit by tests — without the envelope/params double
// marshal, so the fan-out can encode one job once per vardiff tier and
// the per-submit reply path stays allocation-free.
//
// The hand-rolled encoders skip JSON string escaping: every field they
// write is pool-minted (job IDs are digits and -Ld suffixes, blobs and
// targets are hex, statuses are fixed words), none of which json.Marshal
// would escape either. Anything caller-controlled (the RPC id) goes
// through RPCIDVerbatim first; callers fall back to the marshal path when
// it declines.
package stratum

import (
	"encoding/json"
	"strconv"
)

// AppendJobNotifyLine appends the TCP dialect's unsolicited job push —
// the line AppendRPCNotify(dst, "job", j) builds — newline included.
//
//lint:hotpath
func AppendJobNotifyLine(dst []byte, j Job) []byte {
	dst = append(dst, `{"jsonrpc":"2.0","method":"job","params":`...)
	dst = AppendJobJSON(dst, j)
	dst = append(dst, '}')
	return append(dst, '\n')
}

// AppendJobEnvelope appends the ws dialect's job envelope — the bytes
// Marshal(TypeJob, j) builds (no trailing newline; the ws frame is the
// delimiter).
//
//lint:hotpath
func AppendJobEnvelope(dst []byte, j Job) []byte {
	dst = append(dst, `{"type":"job","params":`...)
	dst = AppendJobJSON(dst, j)
	return append(dst, '}')
}

// AppendJobJSON appends the Job object itself, field order matching the
// struct tags json.Marshal walks.
//
//lint:hotpath
func AppendJobJSON(dst []byte, j Job) []byte {
	dst = append(dst, `{"job_id":"`...)
	dst = append(dst, j.JobID...)
	dst = append(dst, `","blob":"`...)
	dst = append(dst, j.Blob...)
	dst = append(dst, `","target":"`...)
	dst = append(dst, j.Target...)
	return append(dst, `"}`...)
}

// AppendSubmitOKLine appends the TCP dialect's accepted-share response —
// AppendRPCResult(dst, id, SubmitResult{Status: "OK", Hashes: hashes}) —
// echoing id verbatim. The caller must have cleared id through
// RPCIDVerbatim.
//
//lint:hotpath
func AppendSubmitOKLine(dst []byte, id json.RawMessage, hashes int64) []byte {
	dst = append(dst, `{"id":`...)
	dst = appendEchoedID(dst, id)
	dst = append(dst, `,"jsonrpc":"2.0","result":{"status":"OK","hashes":`...)
	dst = strconv.AppendInt(dst, hashes, 10)
	dst = append(dst, `}}`...)
	return append(dst, '\n')
}

// AppendKeepaliveOKLine appends the TCP dialect's keepalive response —
// AppendRPCResult(dst, id, KeepaliveResult{Status: "KEEPALIVED"}). The
// caller must have cleared id through RPCIDVerbatim.
//
//lint:hotpath
func AppendKeepaliveOKLine(dst []byte, id json.RawMessage) []byte {
	dst = append(dst, `{"id":`...)
	dst = appendEchoedID(dst, id)
	dst = append(dst, `,"jsonrpc":"2.0","result":{"status":"KEEPALIVED"}}`...)
	return append(dst, '\n')
}

// AppendHashAcceptedEnvelope appends the ws dialect's accepted-share
// envelope — Marshal(TypeHashAccepted, HashAccepted{Hashes: hashes}).
//
//lint:hotpath
func AppendHashAcceptedEnvelope(dst []byte, hashes int64) []byte {
	dst = append(dst, `{"type":"hash_accepted","params":{"hashes":`...)
	dst = strconv.AppendInt(dst, hashes, 10)
	return append(dst, `}}`...)
}

// appendEchoedID appends the response id with normalizeID semantics:
// empty or invalid ids become JSON null, anything else is echoed as-is.
//
//lint:hotpath
func appendEchoedID(dst []byte, id json.RawMessage) []byte {
	if len(id) == 0 || !json.Valid(id) {
		return append(dst, `null`...)
	}
	return append(dst, id...)
}

// RPCIDVerbatim reports whether echoing id byte-for-byte matches what the
// json.Marshal response path would emit. Marshal compacts RawMessage
// (dropping whitespace outside strings) and HTML-escapes <, >, & and the
// U+2028/U+2029 pair inside strings; an id containing none of those — in
// practice every numeric or plain-token id a real miner sends — round-
// trips verbatim. Callers take the marshal path when this declines, so
// the check only needs to be sound, not tight.
//
//lint:hotpath
func RPCIDVerbatim(id json.RawMessage) bool {
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c >= 0x80 || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}
