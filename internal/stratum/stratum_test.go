package stratum

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	msg, err := Marshal(TypeJob, Job{JobID: "42", Blob: "00ff", Target: "ffff0000"})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Unmarshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != TypeJob {
		t.Errorf("type = %q", env.Type)
	}
	var j Job
	if err := env.Decode(&j); err != nil {
		t.Fatal(err)
	}
	if j.JobID != "42" || j.Blob != "00ff" || j.Target != "ffff0000" {
		t.Errorf("job = %+v", j)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("{nope")); err == nil {
		t.Error("garbage accepted")
	}
	env, err := Unmarshal([]byte(`{"type":"auth","params":{"site_key":7}}`))
	if err != nil {
		t.Fatal(err)
	}
	var a Auth
	if err := env.Decode(&a); err == nil {
		t.Error("type-mismatched params accepted")
	}
}

func TestObfuscationIsInvolution(t *testing.T) {
	f := func(blob []byte) bool {
		orig := append([]byte(nil), blob...)
		ObfuscateBlob(blob)
		ObfuscateBlob(blob)
		return bytes.Equal(orig, blob)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObfuscationAltersOnlyTheWindow(t *testing.T) {
	blob := make([]byte, 76)
	for i := range blob {
		blob[i] = byte(i)
	}
	orig := append([]byte(nil), blob...)
	ObfuscateBlob(blob)
	changed := 0
	for i := range blob {
		if blob[i] != orig[i] {
			changed++
			if i < ObfuscationOffset || i >= ObfuscationOffset+8 {
				t.Errorf("byte %d outside window changed", i)
			}
		}
	}
	if changed != 8 {
		t.Errorf("%d bytes changed, want 8", changed)
	}
}

func TestObfuscationSkipsShortBlobs(t *testing.T) {
	short := []byte{1, 2, 3}
	orig := append([]byte(nil), short...)
	ObfuscateBlob(short)
	if !bytes.Equal(short, orig) {
		t.Error("short blob was modified")
	}
}

func TestNonceAndTargetCodecs(t *testing.T) {
	f := func(n uint32) bool {
		got, err := DecodeNonce(EncodeNonce(n))
		return err == nil && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(n uint32) bool {
		got, err := DecodeTarget(EncodeTarget(n))
		return err == nil && got == n
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	if _, err := DecodeNonce("zz"); err == nil {
		t.Error("bad hex nonce accepted")
	}
	if _, err := DecodeNonce("001122"); err == nil {
		t.Error("short nonce accepted")
	}
	if _, err := DecodeTarget("00112233ff"); err == nil {
		t.Error("long target accepted")
	}
}

func TestBlobCodec(t *testing.T) {
	f := func(b []byte) bool {
		got, err := DecodeBlob(EncodeBlob(b))
		return err == nil && bytes.Equal(got, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := DecodeBlob("xyz"); err == nil {
		t.Error("bad hex blob accepted")
	}
}
