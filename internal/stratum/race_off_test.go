//go:build !race

package stratum

// raceEnabled reports whether the race detector is instrumenting this
// test binary; its instrumentation adds allocations to the JSON paths,
// so the measured pins get slack under -race.
const raceEnabled = false
