// JSON-RPC 2.0 framing for the raw-TCP stratum dialect — the protocol
// native Monero miners speak to pools (newline-delimited JSON, one object
// per line), which Coinhive bridged the browser dialect onto. Requests are
// login/submit/keepalived; the server answers each by id and pushes
// unsolicited notifications (job, link_resolved, captcha_verified) with no
// id at all — the dialect's server-clocked half.
package stratum

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
)

// RPC methods of the TCP dialect.
const (
	MethodLogin     = "login"
	MethodSubmit    = "submit"
	MethodKeepalive = "keepalived"
)

// Status strings carried in RPC results.
const (
	StatusOK        = "OK"
	StatusKeepalive = "KEEPALIVED"
)

// StaleJobMessage is the RPC error text for a share submitted against a
// job the chain tip has outrun. The ws dialect re-jobs silently; the TCP
// dialect names the condition so the miner knows the share was not merely
// invalid, then pushes fresh work.
const StaleJobMessage = "stale job"

// Abuse-containment error texts. The TCP codec canonicalises RPC errors
// into error envelopes carrying only the message, so these strings — not
// the codes — are what clients of either dialect key rejection handling
// on. Keep them stable.
const (
	// TooManyStaleMessage ends the stale-submit retry loop: after N
	// consecutive stale shares the server stops re-jobbing and names the
	// flood instead.
	TooManyStaleMessage = "too many stale"
	// BannedMessage rejects a login from (or drops a session of) an
	// identity whose banscore crossed the threshold.
	BannedMessage = "banned"
	// RateLimitedMessage rejects a login or submit that exceeded the
	// identity's token bucket.
	RateLimitedMessage = "rate limited"
	// DuplicateShareMessage rejects a share whose (job, nonce) was
	// already credited to the session or account.
	DuplicateShareMessage = "duplicate share"
)

// RPC error codes. Parse/method/params failures use the JSON-RPC 2.0
// reserved codes; dialect-level rejections use small negative codes.
const (
	RPCParseError    = -32700
	RPCUnknownMethod = -32601
	RPCInvalidParams = -32602
	RPCUnauthorized  = -1
	RPCRejected      = -2
	RPCStaleJob      = -3
	RPCTooManyStale  = -4
	RPCBanned        = -5
	RPCRateLimited   = -6
)

// MaxRPCLine bounds one newline-delimited frame. The largest legitimate
// message is a job push (~400 bytes of hex blob and envelope); anything
// near the cap is hostile or broken.
const MaxRPCLine = 8192

// RPCError is the error member of a response.
type RPCError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// RPCEnvelope is one line of the TCP dialect, covering all three frame
// shapes: request (ID+Method), response (ID+Result or ID+Error) and
// notification (Method, no ID). ID is kept raw so responses echo whatever
// the peer sent — the codec correlates, it does not interpret.
type RPCEnvelope struct {
	ID      json.RawMessage `json:"id,omitempty"`
	JSONRPC string          `json:"jsonrpc,omitempty"`
	Method  string          `json:"method,omitempty"`
	Params  json.RawMessage `json:"params,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *RPCError       `json:"error,omitempty"`
}

// IsRequest reports whether the envelope is a client request (has a
// method and an id).
func (e RPCEnvelope) IsRequest() bool { return e.Method != "" && len(e.ID) > 0 }

// IsNotification reports whether the envelope is a server push.
func (e RPCEnvelope) IsNotification() bool { return e.Method != "" && len(e.ID) == 0 }

// LoginParams is the login request body. Login carries the site key (the
// ws dialect's auth.site_key); Pass carries the ws dialect's user field,
// so "link:ID" / "captcha:ID" sessions work identically over TCP.
type LoginParams struct {
	Login string `json:"login"`
	Pass  string `json:"pass,omitempty"`
	Agent string `json:"agent,omitempty"`
}

// LoginResult acknowledges a login: the account token, the hashes already
// credited (the ws dialect's authed message) and the first job.
type LoginResult struct {
	ID     string `json:"id"`
	Job    Job    `json:"job"`
	Status string `json:"status"`
	Hashes int64  `json:"hashes"`
}

// SubmitParams reports a found share. ID echoes the login result's token.
type SubmitParams struct {
	ID     string `json:"id"`
	JobID  string `json:"job_id"`
	Nonce  string `json:"nonce"`
	Result string `json:"result"`
}

// SubmitResult acknowledges an accepted share, carrying the account's
// total credit like the ws dialect's hash_accepted.
type SubmitResult struct {
	Status string `json:"status"`
	Hashes int64  `json:"hashes"`
}

// KeepaliveResult acknowledges a keepalived request.
type KeepaliveResult struct {
	Status string `json:"status"`
}

// AppendRPCRequest appends one request line (trailing newline included).
func AppendRPCRequest(dst []byte, id int64, method string, params interface{}) ([]byte, error) {
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(RPCEnvelope{
		ID:      json.RawMessage(strconv.AppendInt(nil, id, 10)),
		JSONRPC: "2.0",
		Method:  method,
		Params:  raw,
	})
	if err != nil {
		return nil, err
	}
	return append(append(dst, line...), '\n'), nil
}

// AppendRPCNotify appends one server-push notification line.
func AppendRPCNotify(dst []byte, method string, params interface{}) ([]byte, error) {
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(RPCEnvelope{JSONRPC: "2.0", Method: method, Params: raw})
	if err != nil {
		return nil, err
	}
	return append(append(dst, line...), '\n'), nil
}

// AppendRPCResult appends one success-response line, echoing id verbatim.
func AppendRPCResult(dst []byte, id json.RawMessage, result interface{}) ([]byte, error) {
	raw, err := json.Marshal(result)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(RPCEnvelope{ID: normalizeID(id), JSONRPC: "2.0", Result: raw})
	if err != nil {
		return nil, err
	}
	return append(append(dst, line...), '\n'), nil
}

// AppendRPCError appends one error-response line, echoing id verbatim.
func AppendRPCError(dst []byte, id json.RawMessage, code int, msg string) ([]byte, error) {
	line, err := json.Marshal(RPCEnvelope{
		ID: normalizeID(id), JSONRPC: "2.0",
		Error: &RPCError{Code: code, Message: msg},
	})
	if err != nil {
		return nil, err
	}
	return append(append(dst, line...), '\n'), nil
}

// normalizeID substitutes the JSON null id for responses to frames that
// carried none (or an unparseable one), per JSON-RPC 2.0.
func normalizeID(id json.RawMessage) json.RawMessage {
	if len(id) == 0 || !json.Valid(id) {
		return json.RawMessage("null")
	}
	return id
}

// RPC line-read errors.
var (
	ErrRPCLineTooLong = errors.New("stratum: rpc line exceeds MaxRPCLine")
	ErrRPCBadJSON     = errors.New("stratum: rpc line is not valid JSON")
)

// ReadRPCLine reads one newline-delimited frame from r, enforcing
// MaxRPCLine. The reader must have been constructed with a buffer of at
// least MaxRPCLine bytes or oversize detection degrades to a short read.
func ReadRPCLine(r *bufio.Reader) ([]byte, error) {
	line, isPrefix, err := r.ReadLine()
	if isPrefix {
		return nil, ErrRPCLineTooLong
	}
	if err != nil {
		return nil, err
	}
	return line, nil
}

// UnmarshalRPC decodes one frame.
func UnmarshalRPC(line []byte) (RPCEnvelope, error) {
	var e RPCEnvelope
	if err := json.Unmarshal(line, &e); err != nil {
		return RPCEnvelope{}, fmt.Errorf("%w: %v", ErrRPCBadJSON, err)
	}
	return e, nil
}

// DecodeParams decodes an envelope's params into out.
func (e RPCEnvelope) DecodeParams(out interface{}) error {
	if len(e.Params) == 0 {
		return fmt.Errorf("stratum: rpc %s: missing params", e.Method)
	}
	if err := json.Unmarshal(e.Params, out); err != nil {
		return fmt.Errorf("stratum: rpc bad %s params: %w", e.Method, err)
	}
	return nil
}

// DecodeResult decodes a response's result into out.
func (e RPCEnvelope) DecodeResult(out interface{}) error {
	if len(e.Result) == 0 {
		return errors.New("stratum: rpc response has no result")
	}
	return json.Unmarshal(e.Result, out)
}
