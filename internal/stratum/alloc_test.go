package stratum

import (
	"strings"
	"testing"
)

// Allocation pins for the wire codec paths every share crosses. The
// bounds are measured upper bounds, not aspirations: a change that pushes
// a path over its pin is a regression the benchmarks would only catch
// later, if at all. The //lint:hotpath marks on the zero-alloc paths make
// the same property machine-checked at the source level.

func TestAppendDecodedBlobZeroAlloc(t *testing.T) {
	wire := strings.Repeat("ab", 76)
	dst := make([]byte, 0, 76)
	avg := testing.AllocsPerRun(500, func() {
		var err error
		dst, err = AppendDecodedBlob(dst[:0], wire)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("AppendDecodedBlob with scratch: %.1f allocs/op, want 0", avg)
	}
	// Rejection must be allocation-free too — static errors, no fmt.
	bad := strings.Repeat("zz", 76)
	avg = testing.AllocsPerRun(500, func() {
		if _, err := AppendDecodedBlob(dst[:0], bad); err == nil {
			t.Fatal("accepted bad hex")
		}
	})
	if avg != 0 {
		t.Errorf("AppendDecodedBlob rejection: %.1f allocs/op, want 0", avg)
	}
}

func TestObfuscateBlobZeroAlloc(t *testing.T) {
	blob := make([]byte, 76)
	avg := testing.AllocsPerRun(500, func() { ObfuscateBlob(blob) })
	if avg != 0 {
		t.Errorf("ObfuscateBlob: %.1f allocs/op, want 0", avg)
	}
}

func TestMarshalAllocsBounded(t *testing.T) {
	params := Submit{JobID: "7-3-1", Nonce: "deadbeef", Result: strings.Repeat("0", 64)}
	bound := 6.0
	if raceEnabled {
		bound += 3 // race instrumentation allocates inside encoding/json
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := Marshal(TypeSubmit, params); err != nil {
			t.Fatal(err)
		}
	})
	if avg > bound {
		t.Errorf("Marshal(submit): %.1f allocs/op, want <= %.0f", avg, bound)
	}
}

func TestUnmarshalAllocsBounded(t *testing.T) {
	line, err := Marshal(TypeSubmit, Submit{JobID: "7-3-1", Nonce: "deadbeef", Result: strings.Repeat("0", 64)})
	if err != nil {
		t.Fatal(err)
	}
	bound := 8.0
	if raceEnabled {
		bound += 3
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := Unmarshal(line); err != nil {
			t.Fatal(err)
		}
	})
	if avg > bound {
		t.Errorf("Unmarshal(submit): %.1f allocs/op, want <= %.0f", avg, bound)
	}
}

func TestAppendRPCAllocsBounded(t *testing.T) {
	bound := 6.0
	if raceEnabled {
		bound += 3
	}
	dst := make([]byte, 0, 512)
	login := LoginParams{Login: "worker", Pass: "x", Agent: "bench/1"}
	avg := testing.AllocsPerRun(500, func() {
		var err error
		dst, err = AppendRPCRequest(dst[:0], 42, MethodLogin, login)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg > bound {
		t.Errorf("AppendRPCRequest: %.1f allocs/op, want <= %.0f", avg, bound)
	}

	job := Job{JobID: "7-3-1", Blob: strings.Repeat("ab", 76), Target: "ffffff00"}
	avg = testing.AllocsPerRun(500, func() {
		var err error
		dst, err = AppendRPCNotify(dst[:0], TypeJob, job)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg > bound {
		t.Errorf("AppendRPCNotify: %.1f allocs/op, want <= %.0f", avg, bound)
	}
}
