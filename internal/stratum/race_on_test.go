//go:build race

package stratum

const raceEnabled = true
