// Package memconn is an in-memory net.Conn/net.Listener with TCP-like
// semantics: buffered, byte-oriented, full-duplex, deadline-aware, and
// backpressured (a writer blocks — honouring its write deadline — when
// the peer stops draining, exactly the stall a kernel socket buffer
// gives a slow TCP receiver).
//
// It exists for one reason: the 10k/25k/50k load tiers. A real socket
// pair costs two file descriptors, and the measurement box caps the
// process at 20k fds — so scale rows beyond ~9k sessions are impossible
// over loopback TCP no matter how cheap the server's sessions are.
// memconn carries the same bytes through the same codec stack with zero
// fds, so the scaling curve measures the serving stack, not the fd table.
//
// Conns also implement ArmReadWaker, the readiness hook netpark uses to
// park idle sessions without a blocked reader goroutine (real TCP conns
// get the same via epoll).
package memconn

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// bufMax bounds one direction's in-flight bytes (the "socket buffer").
// Big enough that a job push to thousands of parked sessions never
// stalls on an attentive peer, small enough that a stalled peer exerts
// real backpressure.
const bufMax = 256 << 10

// addr is the trivial net.Addr both ends report.
type addr struct{}

func (addr) Network() string { return "mem" }
func (addr) String() string  { return "memconn" }

// pipe is one direction of a connection: one writer (the peer conn) and
// one reader (the owning conn), a bounded buffer between them.
type pipe struct {
	mu     sync.Mutex
	rcond  sync.Cond
	wcond  sync.Cond
	buf    []byte
	head   int
	closed bool

	// Deadline timers are lazy: armed only when a read/write actually
	// blocks past its deadline's horizon, not on every Set*Deadline
	// call. The serve path sets a fresh deadline before every read and
	// write but almost never blocks (parked sessions wake with data
	// already buffered; push writes land in buffer space), so eager
	// timers would put one AfterFunc allocation on every push to every
	// session — the dominant cost of a 50k fan-out.
	rdl, wdl           time.Time
	rtimer, wtimer     *time.Timer
	rtimerDl, wtimerDl time.Time

	// waker is a one-shot readability callback (see Conn.ArmReadWaker).
	waker func()
}

func newPipe() *pipe {
	p := &pipe{}
	p.rcond.L = &p.mu
	p.wcond.L = &p.mu
	return p
}

// takeWakerLocked detaches the armed waker, if any, for firing after the
// lock is released — wakers may re-enter other locks (the parker's), so
// they never run under p.mu.
func (p *pipe) takeWakerLocked() func() {
	w := p.waker
	p.waker = nil
	return w
}

func (p *pipe) read(b []byte) (int, error) {
	//lint:ignore lockscope every loop exit unlocks; the analyzer cannot follow the cond-wait loop
	p.mu.Lock()
	for {
		if p.head < len(p.buf) {
			n := copy(b, p.buf[p.head:])
			p.head += n
			if p.head == len(p.buf) {
				p.buf = p.buf[:0]
				p.head = 0
			} else if p.head >= bufMax {
				p.buf = p.buf[:copy(p.buf, p.buf[p.head:])]
				p.head = 0
			}
			p.wcond.Broadcast()
			p.mu.Unlock()
			return n, nil
		}
		if p.closed {
			p.mu.Unlock()
			return 0, io.EOF
		}
		if !p.rdl.IsZero() {
			if !time.Now().Before(p.rdl) {
				p.mu.Unlock()
				return 0, os.ErrDeadlineExceeded
			}
			p.armReadTimerLocked()
		}
		p.rcond.Wait()
	}
}

// armReadTimerLocked ensures a wakeup fires at the current read deadline
// — called only from a read that is about to block (see the field docs).
func (p *pipe) armReadTimerLocked() {
	if p.rtimer != nil && p.rtimerDl.Equal(p.rdl) {
		return
	}
	if p.rtimer != nil {
		p.rtimer.Stop()
	}
	p.rtimerDl = p.rdl
	p.rtimer = time.AfterFunc(time.Until(p.rdl), func() {
		p.mu.Lock()
		p.rcond.Broadcast()
		p.mu.Unlock()
	})
}

// armWriteTimerLocked is armReadTimerLocked's write-side twin.
func (p *pipe) armWriteTimerLocked() {
	if p.wtimer != nil && p.wtimerDl.Equal(p.wdl) {
		return
	}
	if p.wtimer != nil {
		p.wtimer.Stop()
	}
	p.wtimerDl = p.wdl
	p.wtimer = time.AfterFunc(time.Until(p.wdl), func() {
		p.mu.Lock()
		p.wcond.Broadcast()
		p.mu.Unlock()
	})
}

func (p *pipe) write(b []byte) (int, error) {
	total := 0
	//lint:ignore lockscope every loop exit unlocks; the unlock-fire-relock waker dance is deliberate
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return total, io.ErrClosedPipe
		}
		if space := bufMax - (len(p.buf) - p.head); space > 0 {
			n := len(b)
			if n > space {
				n = space
			}
			if len(p.buf)+n > cap(p.buf) {
				// Grow geometrically with a 4KB floor, compacting past the
				// read head while we copy anyway. Plain append doubling from
				// zero reallocates on nearly every ~500-byte job push to a
				// parked peer — at fan-out scale that is one allocation (and
				// one GC-visible object) per push, the single largest cost
				// on the push path.
				live := len(p.buf) - p.head
				target := min(2*(live+n), bufMax)
				if target < 4096 {
					target = 4096
				}
				nb := make([]byte, live, target)
				copy(nb, p.buf[p.head:])
				p.buf, p.head = nb, 0
			}
			p.buf = append(p.buf, b[:n]...)
			b = b[n:]
			total += n
			p.rcond.Broadcast()
			wake := p.takeWakerLocked()
			if len(b) == 0 {
				p.mu.Unlock()
				if wake != nil {
					wake()
				}
				return total, nil
			}
			if wake != nil {
				// Fire outside the lock, then continue the partial write.
				p.mu.Unlock()
				wake()
				p.mu.Lock()
				continue
			}
		}
		if !p.wdl.IsZero() {
			if !time.Now().Before(p.wdl) {
				p.mu.Unlock()
				return total, os.ErrDeadlineExceeded
			}
			p.armWriteTimerLocked()
		}
		p.wcond.Wait()
	}
}

// close marks the pipe dead: the reader drains what is buffered then gets
// EOF, the writer fails immediately. Idempotent.
func (p *pipe) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.rcond.Broadcast()
	p.wcond.Broadcast()
	wake := p.takeWakerLocked()
	p.mu.Unlock()
	if wake != nil {
		wake()
	}
}

// setReadDeadline stores the deadline and wakes any blocked reader so it
// re-evaluates (a blocked reader re-arms its own timer; see the lazy
// timer fields). A stale armed timer fires a spurious broadcast at the
// old deadline, which the wait loops tolerate by design.
func (p *pipe) setReadDeadline(t time.Time) {
	p.mu.Lock()
	p.rdl = t
	p.rcond.Broadcast()
	p.mu.Unlock()
}

func (p *pipe) setWriteDeadline(t time.Time) {
	p.mu.Lock()
	p.wdl = t
	p.wcond.Broadcast()
	p.mu.Unlock()
}

// Conn is one end of an in-memory connection.
type Conn struct {
	rd *pipe // peer → us
	wr *pipe // us → peer
}

// Pipe returns a connected in-memory conn pair, like net.Pipe but
// buffered and deadline-complete.
func Pipe() (*Conn, *Conn) {
	a, b := newPipe(), newPipe()
	return &Conn{rd: a, wr: b}, &Conn{rd: b, wr: a}
}

func (c *Conn) Read(b []byte) (int, error)  { return c.rd.read(b) }
func (c *Conn) Write(b []byte) (int, error) { return c.wr.write(b) }

// Close tears both directions down: local and peer reads drain then EOF,
// writes on either side fail.
func (c *Conn) Close() error {
	c.wr.close()
	c.rd.close()
	return nil
}

func (c *Conn) LocalAddr() net.Addr  { return addr{} }
func (c *Conn) RemoteAddr() net.Addr { return addr{} }

func (c *Conn) SetDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	c.wr.setWriteDeadline(t)
	return nil
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	return nil
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wr.setWriteDeadline(t)
	return nil
}

// ArmReadWaker registers a one-shot callback that fires when the conn
// becomes readable (data arrives or the peer closes). If it is readable
// already, f fires before ArmReadWaker returns. The callback runs outside
// all memconn locks but must itself be non-blocking — it is called from
// the writer's goroutine. This is netpark's fd-less readiness source.
func (c *Conn) ArmReadWaker(f func()) {
	p := c.rd
	p.mu.Lock()
	if p.head < len(p.buf) || p.closed {
		p.mu.Unlock()
		f()
		return
	}
	p.waker = f
	p.mu.Unlock()
}

// DisarmReadWaker clears any armed waker (idempotent; racing an in-flight
// fire is fine — the waker side tolerates spurious wakes).
func (c *Conn) DisarmReadWaker() {
	p := c.rd
	p.mu.Lock()
	p.waker = nil
	p.mu.Unlock()
}

// Listener hands dialed conns to an accept loop, like a net.Listener
// with no port.
type Listener struct {
	queue  chan net.Conn
	stop   chan struct{}
	closed sync.Once
}

// Listen creates an in-memory listener.
func Listen() *Listener {
	return &Listener{
		queue: make(chan net.Conn, 1024),
		stop:  make(chan struct{}),
	}
}

// Dial connects a new session to the listener, returning the client end.
func (l *Listener) Dial() (net.Conn, error) {
	select {
	case <-l.stop:
		// Checked first: the select below picks randomly when the queue
		// has room AND the listener is closed.
		return nil, net.ErrClosed
	default:
	}
	client, server := Pipe()
	select {
	case l.queue <- server:
		return client, nil
	case <-l.stop:
		client.Close()
		return nil, net.ErrClosed
	}
}

// Accept returns the server end of the next dialed connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.queue:
		return c, nil
	case <-l.stop:
		return nil, net.ErrClosed
	}
}

// Close stops the listener; blocked Accept and Dial calls return
// net.ErrClosed.
func (l *Listener) Close() error {
	l.closed.Do(func() { close(l.stop) })
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return addr{} }
