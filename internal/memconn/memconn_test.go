package memconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	a, b := Pipe()
	msg := []byte("hello over memory\n")
	go func() {
		if _, err := a.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestCloseGivesEOFAfterDrain(t *testing.T) {
	a, b := Pipe()
	if _, err := a.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got := make([]byte, 4)
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatalf("buffered bytes should survive close: %v", err)
	}
	if _, err := b.Read(got); err != io.EOF {
		t.Fatalf("after drain: got %v want EOF", err)
	}
	if _, err := b.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer should fail")
	}
}

func TestReadDeadline(t *testing.T) {
	a, _ := Pipe()
	a.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := a.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v want deadline exceeded", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("deadline error must be a net.Error timeout, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline fired far too late")
	}
}

func TestWriteBackpressureAndDeadline(t *testing.T) {
	a, _ := Pipe()
	a.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
	big := make([]byte, bufMax+1)
	n, err := a.Write(big)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v want deadline exceeded", err)
	}
	if n != bufMax {
		t.Fatalf("wrote %d before stalling, want %d", n, bufMax)
	}
}

func TestWriteUnblocksWhenReaderDrains(t *testing.T) {
	a, b := Pipe()
	big := make([]byte, bufMax+4096)
	done := make(chan error, 1)
	go func() {
		_, err := a.Write(big)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the writer fill and stall
	if _, err := io.ReadAll(io.LimitReader(b, int64(len(big)))); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestArmReadWaker(t *testing.T) {
	a, b := Pipe()
	var fired atomic.Int32
	b.ArmReadWaker(func() { fired.Add(1) })
	if fired.Load() != 0 {
		t.Fatal("waker fired with nothing to read")
	}
	if _, err := a.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 1 {
		t.Fatal("waker did not fire on write")
	}
	if _, err := a.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 1 {
		t.Fatal("waker is not one-shot")
	}
	// Arming with data already buffered fires immediately.
	b.ArmReadWaker(func() { fired.Add(1) })
	if fired.Load() != 2 {
		t.Fatal("waker did not fire for already-buffered data")
	}
	// Close fires an armed waker.
	buf := make([]byte, 16)
	for i := 0; i < 2; i++ {
		if _, err := b.Read(buf); err != nil {
			t.Fatal(err)
		}
		if b.rd.head < len(b.rd.buf) {
			continue
		}
		break
	}
	b.ArmReadWaker(func() { fired.Add(1) })
	a.Close()
	if fired.Load() != 3 {
		t.Fatal("waker did not fire on peer close")
	}
}

func TestListener(t *testing.T) {
	l := Listen()
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Error(err)
		}
		c.Write(buf)
		c.Close()
	}()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	<-done
	l.Close()
	if _, err := l.Dial(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("dial after close: got %v", err)
	}
}
