// Package merkle implements the Monero transaction tree hash ("tree_hash",
// CryptoNote standard). The root of this tree is embedded in the block
// hashing blob, which is exactly what the paper's §4.2 block-attribution
// methodology compares: the Merkle root recovered from a pool's PoW input
// against the Merkle root of the transactions in the block that was actually
// mined on top of the referenced predecessor.
//
// The CryptoNote tree hash is not a plain padded binary tree: for leaf
// counts that are not powers of two, the 2*cnt-count leading hashes are
// carried verbatim into the first reduction round, where cnt is the largest
// power of two not exceeding count.
package merkle

import "repro/internal/keccak"

// Hash is a 32-byte node in the transaction tree.
type Hash = [32]byte

func hashPair(a, b Hash) Hash {
	var buf [64]byte
	copy(buf[:32], a[:])
	copy(buf[32:], b[:])
	return keccak.Sum256(buf[:])
}

// TreeHash computes the CryptoNote tree hash of the given leaf hashes.
// It panics on an empty input: a Monero block always contains at least the
// coinbase transaction.
func TreeHash(hashes []Hash) Hash {
	switch n := len(hashes); {
	case n == 0:
		panic("merkle: tree hash of zero leaves")
	case n == 1:
		return hashes[0]
	case n == 2:
		return hashPair(hashes[0], hashes[1])
	default:
		cnt := 1
		for cnt<<1 < n {
			cnt <<= 1
		}
		// cnt is now the largest power of two strictly less than n
		// (n > 2 here), matching the reference tree-hash.
		ints := make([]Hash, cnt)
		carried := 2*cnt - n
		copy(ints, hashes[:carried])
		for i, j := carried, carried; i < n; i, j = i+2, j+1 {
			ints[j] = hashPair(hashes[i], hashes[i+1])
		}
		for cnt > 2 {
			cnt >>= 1
			for i := 0; i < cnt; i++ {
				ints[i] = hashPair(ints[2*i], ints[2*i+1])
			}
		}
		return hashPair(ints[0], ints[1])
	}
}

// Branch returns the per-level sibling hashes proving that the leaf at
// position 0 (the coinbase transaction) is included in the tree. Monero uses
// coinbase branches for merge mining; we use them in tests as an
// independent witness that TreeHash composes correctly.
func Branch(hashes []Hash) []Hash {
	n := len(hashes)
	if n == 0 {
		panic("merkle: branch of zero leaves")
	}
	if n == 1 {
		return nil
	}
	if n == 2 {
		return []Hash{hashes[1]}
	}
	cnt := 1
	for cnt<<1 < n {
		cnt <<= 1
	}
	ints := make([]Hash, cnt)
	carried := 2*cnt - n
	copy(ints, hashes[:carried])
	for i, j := carried, carried; i < n; i, j = i+2, j+1 {
		ints[j] = hashPair(hashes[i], hashes[i+1])
	}
	var branch []Hash
	if carried == 0 {
		// n is a power of two: leaf 0 was already paired with leaf 1 in the
		// first reduction, so that sibling leads the branch.
		branch = append(branch, hashes[1])
	}
	// Leaf 0 stays at index 0 through every remaining reduction, so its
	// sibling at each level is ints[1]; collecting before each reduction
	// yields leaf-first order directly.
	for cnt > 1 {
		branch = append(branch, ints[1])
		cnt >>= 1
		for i := 0; i < cnt; i++ {
			ints[i] = hashPair(ints[2*i], ints[2*i+1])
		}
	}
	return branch
}

// FromBranch folds a coinbase hash through its branch, reproducing the root.
func FromBranch(leaf Hash, branch []Hash) Hash {
	h := leaf
	for _, s := range branch {
		h = hashPair(h, s)
	}
	return h
}
