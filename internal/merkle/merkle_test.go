package merkle

import (
	"testing"
	"testing/quick"

	"repro/internal/keccak"
)

func leaves(n int) []Hash {
	out := make([]Hash, n)
	for i := range out {
		out[i] = keccak.Sum256([]byte{byte(i), byte(i >> 8), 0x5a})
	}
	return out
}

func TestTreeHashSingleLeaf(t *testing.T) {
	h := leaves(1)
	if TreeHash(h) != h[0] {
		t.Error("single-leaf root must be the leaf itself")
	}
}

func TestTreeHashTwoLeaves(t *testing.T) {
	h := leaves(2)
	want := hashPair(h[0], h[1])
	if TreeHash(h) != want {
		t.Error("two-leaf root must be H(h0||h1)")
	}
}

func TestTreeHashThreeLeaves(t *testing.T) {
	// CryptoNote: cnt=2, carried=1 -> root = H(h0 || H(h1||h2)).
	h := leaves(3)
	want := hashPair(h[0], hashPair(h[1], h[2]))
	if TreeHash(h) != want {
		t.Error("three-leaf root mismatch with hand-computed CryptoNote shape")
	}
}

func TestTreeHashFourLeaves(t *testing.T) {
	h := leaves(4)
	want := hashPair(hashPair(h[0], h[1]), hashPair(h[2], h[3]))
	if TreeHash(h) != want {
		t.Error("four-leaf root mismatch")
	}
}

func TestTreeHashFiveLeaves(t *testing.T) {
	// n=5: cnt=4, carried=3: first round = [h0,h1,h2,H(h3||h4)].
	h := leaves(5)
	want := hashPair(hashPair(h[0], h[1]), hashPair(h[2], hashPair(h[3], h[4])))
	if TreeHash(h) != want {
		t.Error("five-leaf root mismatch")
	}
}

func TestTreeHashSensitivity(t *testing.T) {
	h := leaves(7)
	root := TreeHash(h)
	h2 := leaves(7)
	h2[3][0] ^= 1
	if TreeHash(h2) == root {
		t.Error("flipping one leaf bit did not change the root")
	}
	// Order matters.
	h3 := leaves(7)
	h3[0], h3[1] = h3[1], h3[0]
	if TreeHash(h3) == root {
		t.Error("swapping leaves did not change the root")
	}
}

func TestBranchReproducesRoot(t *testing.T) {
	for n := 1; n <= 33; n++ {
		h := leaves(n)
		root := TreeHash(h)
		br := Branch(h)
		if got := FromBranch(h[0], br); got != root {
			t.Fatalf("n=%d: FromBranch = %x, want %x", n, got[:4], root[:4])
		}
	}
}

func TestBranchLength(t *testing.T) {
	// Branch length is ceil(log2) of the reduced tree depth.
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 8: 3, 9: 3, 16: 4, 17: 4}
	for n, want := range cases {
		if got := len(Branch(leaves(n))); got != want {
			t.Errorf("n=%d: branch len = %d, want %d", n, got, want)
		}
	}
}

func TestQuickRootDeterministicAndInjectiveish(t *testing.T) {
	f := func(seed uint16, flip uint16) bool {
		n := int(seed%60) + 1
		h := leaves(n)
		r1 := TreeHash(h)
		r2 := TreeHash(h)
		if r1 != r2 {
			return false
		}
		// Mutate one leaf: root must change.
		h[int(flip)%n][int(flip)%32] ^= 0xff
		return TreeHash(h) != r1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TreeHash(nil) did not panic")
		}
	}()
	TreeHash(nil)
}

func BenchmarkTreeHash100(b *testing.B) {
	h := leaves(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TreeHash(h)
	}
}
