package loadgen

import (
	"fmt"
	"sort"
	"time"
)

// Transport selectors for Scenario.Transport.
const (
	// TransportWS is the browser dialect: stratum envelopes over ws
	// frames, strictly client-clocked. The zero value.
	TransportWS = ""
	// TransportTCP is the raw-TCP JSON-RPC stratum dialect native miners
	// use — server-clocked job pushes.
	TransportTCP = "tcp"
	// TransportMixed alternates the two dialects session by session
	// against one pool.
	TransportMixed = "mixed"
)

// Scenario is one load shape. The schedules are open-loop: arrivals
// follow the ramp regardless of how the service keeps up, the way
// short-link visitors arrived at cnhv.co pages whether or not the pool
// was fast — backlog is part of the measurement, not an error.
type Scenario struct {
	Name        string
	Description string

	// Transport picks the dialect(s): TransportWS, TransportTCP or
	// TransportMixed.
	Transport string
	// RefreshEvery, when >0, asks the driver to move the target's chain
	// tip on this cadence mid-run (via Config.Refresh) — the event that
	// makes the TCP dialect push jobs and both dialects field stale
	// shares.
	RefreshEvery time.Duration

	// Turns is the number of share-submission exchanges per session.
	Turns int
	// Ramp spreads session arrivals uniformly over this window.
	Ramp time.Duration
	// Think delays a session between turns (slow clients: the server
	// must hold the socket while the "visitor" reads the page).
	Think time.Duration
	// ChurnEvery, when >0, makes a session close properly and reconnect
	// after every ChurnEvery turns — the short-session churn of visitors
	// bouncing through links.
	ChurnEvery int
	// Storm, when set, abruptly severs every connection (no close
	// handshake, as if an endpoint died) once all sessions are parked,
	// then reconnects the whole swarm at once.
	Storm bool
	// Malformed, when set, interleaves protocol-violating submits (bad
	// hex, wrong lengths, unknown jobs, garbage JSON) with valid ones
	// and verifies the server answers each exactly as the dialect
	// specifies.
	Malformed bool
}

// scenarios is the named catalogue. Sessions/workers are sizing knobs on
// Config, not part of the shape.
var scenarios = map[string]Scenario{
	"steady": {
		Name:        "steady",
		Description: "uniform ramp-in, every session mines then parks",
		Turns:       3,
		Ramp:        2 * time.Second,
	},
	"churn": {
		Name:        "churn",
		Description: "sessions close and reconnect after every share",
		Turns:       3,
		Ramp:        2 * time.Second,
		ChurnEvery:  1,
	},
	"storm": {
		Name:        "storm",
		Description: "full swarm severed without handshake, then a reconnect storm",
		Turns:       2,
		Ramp:        1 * time.Second,
		Storm:       true,
	},
	"slow": {
		Name:        "slow",
		Description: "slow clients: long think time between shares, sockets held open",
		Turns:       2,
		Ramp:        1 * time.Second,
		Think:       750 * time.Millisecond,
	},
	"malformed": {
		Name:        "malformed",
		Description: "hostile clients: malformed shares interleaved with valid ones",
		Turns:       6,
		Ramp:        1 * time.Second,
		Malformed:   true,
	},
	"smoke": {
		Name:        "smoke",
		Description: "CI gate: fast ramp, two turns, park, assert zero protocol errors",
		Turns:       2,
		Ramp:        1500 * time.Millisecond,
	},
	"tcp-steady": {
		Name:         "tcp-steady",
		Description:  "steady over raw-TCP stratum, with tip refreshes driving job pushes",
		Transport:    TransportTCP,
		Turns:        3,
		Ramp:         2 * time.Second,
		RefreshEvery: 500 * time.Millisecond,
	},
	"tcp-storm": {
		Name:        "tcp-storm",
		Description: "full TCP swarm severed without handshake, then a reconnect storm",
		Transport:   TransportTCP,
		Turns:       2,
		Ramp:        1 * time.Second,
		Storm:       true,
	},
	"tcp-smoke": {
		Name:        "tcp-smoke",
		Description: "CI gate over raw-TCP stratum: fast ramp, two turns, park",
		Transport:   TransportTCP,
		Turns:       2,
		Ramp:        1500 * time.Millisecond,
	},
	"mixed": {
		Name:         "mixed",
		Description:  "ws and TCP sessions interleaved against one pool, tip refreshes on",
		Transport:    TransportMixed,
		Turns:        3,
		Ramp:         2 * time.Second,
		RefreshEvery: 500 * time.Millisecond,
	},
}

// TransportName names the scenario's dialect mix for reports.
func (s Scenario) TransportName() string {
	if s.Transport == TransportWS {
		return "ws"
	}
	return s.Transport
}

// ScenarioByName resolves a named scenario.
func ScenarioByName(name string) (Scenario, error) {
	s, ok := scenarios[name]
	if !ok {
		return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return s, nil
}

// ScenarioNames lists the catalogue in stable order.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
