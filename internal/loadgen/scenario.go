package loadgen

import (
	"fmt"
	"sort"
	"time"
)

// Transport selectors for Scenario.Transport.
const (
	// TransportWS is the browser dialect: stratum envelopes over ws
	// frames, strictly client-clocked. The zero value.
	TransportWS = ""
	// TransportTCP is the raw-TCP JSON-RPC stratum dialect native miners
	// use — server-clocked job pushes.
	TransportTCP = "tcp"
	// TransportMixed alternates the two dialects session by session
	// against one pool.
	TransportMixed = "mixed"
)

// Attack selectors for Scenario.Attack. Each names one hostile miner
// behaviour the defended pool must contain; AttackMix blends them into a
// mostly-honest population.
const (
	// AttackNone is the honest zero value.
	AttackNone = ""
	// AttackDup earns one legitimate credit, then replays the identical
	// (job, nonce) share forever — the CPU-burn/free-credit attack the
	// duplicate memos exist for.
	AttackDup = "dup-submit"
	// AttackStale keeps resubmitting a job the chain tip has outrun,
	// riding the stale re-job loop — bounded by the too-many-stale error.
	AttackStale = "stale-flood"
	// AttackDiff submits shares under forged job IDs claiming a
	// difficulty tier the session was never served — the credit-inflation
	// attack the served-tier check rejects.
	AttackDiff = "diff-game"
	// AttackHammer redials and logs in as fast as possible on one shared
	// site key, exhausting the identity's login bucket into a ban.
	AttackHammer = "reconnect-hammer"
	// AttackMix assigns ~80% of sessions honest vardiff-paced mining and
	// rotates the other 20% across the four attacker kinds.
	AttackMix = "mix"
)

// Scenario is one load shape. The schedules are open-loop: arrivals
// follow the ramp regardless of how the service keeps up, the way
// short-link visitors arrived at cnhv.co pages whether or not the pool
// was fast — backlog is part of the measurement, not an error.
type Scenario struct {
	Name        string
	Description string

	// Transport picks the dialect(s): TransportWS, TransportTCP or
	// TransportMixed.
	Transport string
	// RefreshEvery, when >0, asks the driver to move the target's chain
	// tip on this cadence mid-run (via Config.Refresh) — the event that
	// makes the TCP dialect push jobs and both dialects field stale
	// shares.
	RefreshEvery time.Duration

	// Turns is the number of share-submission exchanges per session.
	Turns int
	// Ramp spreads session arrivals uniformly over this window.
	Ramp time.Duration
	// Think delays a session between turns (slow clients: the server
	// must hold the socket while the "visitor" reads the page).
	Think time.Duration
	// ChurnEvery, when >0, makes a session close properly and reconnect
	// after every ChurnEvery turns — the short-session churn of visitors
	// bouncing through links.
	ChurnEvery int
	// Storm, when set, abruptly severs every connection (no close
	// handshake, as if an endpoint died) once all sessions are parked,
	// then reconnects the whole swarm at once.
	Storm bool
	// Malformed, when set, interleaves protocol-violating submits (bad
	// hex, wrong lengths, unknown jobs, garbage JSON) with valid ones
	// and verifies the server answers each exactly as the dialect
	// specifies.
	Malformed bool

	// Hold keeps the fully-ramped swarm parked for this long before the
	// drain, with tip refreshes still firing. This is where the scale
	// tiers actually measure fan-out: every refresh pushes one job to
	// the ENTIRE parked swarm, so the push p99 reflects the full tier,
	// not whatever fraction had connected when a refresh happened to
	// fire mid-ramp.
	Hold time.Duration

	// Mem routes the scenario's TCP sessions over in-memory conns
	// (Config.DialTCP, wired to the in-process target's memconn
	// listener) instead of loopback sockets. Same bytes, same codec
	// stack, zero file descriptors — the only way a 20k-fd box can
	// carry the 10k/25k/50k scale tiers.
	Mem bool

	// APIReaders, when >0, runs this many HTTP clients paging the
	// archived-history stats API (/api/v1) for the whole run — readers
	// and miners contend for the same service, which is exactly the
	// operating condition the stats API must stay responsive under.
	// Requires Config.HTTPURL.
	APIReaders int
	// Archived marks a scenario that must run against a target with the
	// event archive + stats API enabled (drivers boot or select such a
	// target; see InprocOptions.Archive).
	Archived bool

	// Federation marks the multi-node scenario: the driver boots a
	// 3-node federated cluster and routes through RunFederation instead
	// of the single-target swarm (the swarm machinery still drives each
	// node's sessions).
	Federation bool

	// Attack picks the hostile behaviour (Attack* constants). Non-honest
	// sessions verify the server's containment replies — an accepted
	// duplicate, for instance, is a protocol error.
	Attack string
	// Defended marks a scenario that must run against a target with the
	// vardiff + banscore defense layer enabled (drivers boot or select
	// such a target; see DefendedInprocOptions).
	Defended bool
	// SimHashrate, when >0, paces honest sessions like a miner of this
	// many hashes/second: the think time after each share is the served
	// difficulty divided by it, so accepted-share cadence is difficulty-
	// dependent and the vardiff retargeter has a real signal to steer.
	SimHashrate float64
}

// scenarios is the named catalogue. Sessions/workers are sizing knobs on
// Config, not part of the shape.
var scenarios = map[string]Scenario{
	"steady": {
		Name:        "steady",
		Description: "uniform ramp-in, every session mines then parks",
		Turns:       3,
		Ramp:        2 * time.Second,
	},
	"churn": {
		Name:        "churn",
		Description: "sessions close and reconnect after every share",
		Turns:       3,
		Ramp:        2 * time.Second,
		ChurnEvery:  1,
	},
	"storm": {
		Name:        "storm",
		Description: "full swarm severed without handshake, then a reconnect storm",
		Turns:       2,
		Ramp:        1 * time.Second,
		Storm:       true,
	},
	"slow": {
		Name:        "slow",
		Description: "slow clients: long think time between shares, sockets held open",
		Turns:       2,
		Ramp:        1 * time.Second,
		Think:       750 * time.Millisecond,
	},
	"malformed": {
		Name:        "malformed",
		Description: "hostile clients: malformed shares interleaved with valid ones",
		Turns:       6,
		Ramp:        1 * time.Second,
		Malformed:   true,
	},
	"smoke": {
		Name:        "smoke",
		Description: "CI gate: fast ramp, two turns, park, assert zero protocol errors",
		Turns:       2,
		Ramp:        1500 * time.Millisecond,
	},
	"tcp-steady": {
		Name:         "tcp-steady",
		Description:  "steady over raw-TCP stratum, with tip refreshes driving job pushes",
		Transport:    TransportTCP,
		Turns:        3,
		Ramp:         2 * time.Second,
		RefreshEvery: 500 * time.Millisecond,
	},
	"tcp-storm": {
		Name:        "tcp-storm",
		Description: "full TCP swarm severed without handshake, then a reconnect storm",
		Transport:   TransportTCP,
		Turns:       2,
		Ramp:        1 * time.Second,
		Storm:       true,
	},
	"tcp-scale": {
		Name: "tcp-scale",
		Description: "scaling-curve tier: tens of thousands of stratum sessions over in-memory conns, " +
			"one share each, then parked under 1Hz tip-refresh job pushes",
		Transport: TransportTCP,
		Mem:       true,
		Turns:     1,
		// Ramp is per-1000-sessions: Run stretches it linearly with the
		// swarm size, so arrival rate (not ramp length) is what stays
		// fixed across the 10k/25k/50k tiers.
		Ramp:         500 * time.Millisecond,
		RefreshEvery: time.Second,
		Hold:         3 * time.Second,
	},
	"tcp-smoke": {
		Name:        "tcp-smoke",
		Description: "CI gate over raw-TCP stratum: fast ramp, two turns, park",
		Transport:   TransportTCP,
		Turns:       2,
		Ramp:        1500 * time.Millisecond,
	},
	"mixed": {
		Name:         "mixed",
		Description:  "ws and TCP sessions interleaved against one pool, tip refreshes on",
		Transport:    TransportMixed,
		Turns:        3,
		Ramp:         2 * time.Second,
		RefreshEvery: 500 * time.Millisecond,
	},
	"api-readers": {
		Name: "api-readers",
		Description: "mixed mining swarm with concurrent HTTP clients paging the archived-history stats API, " +
			"tips moving; readers and miners contend for one service",
		Transport:    TransportMixed,
		Archived:     true,
		APIReaders:   8,
		Turns:        3,
		Ramp:         2 * time.Second,
		RefreshEvery: 500 * time.Millisecond,
		// The hold keeps the swarm parked while the readers continue
		// paging, so the query percentiles cover both the contended ramp
		// and the steady state.
		Hold: 2 * time.Second,
	},
	"dup-submit": {
		Name:        "dup-submit",
		Description: "attackers replay one credited share; the pool must reject every duplicate and ban the identity",
		Transport:   TransportMixed,
		Defended:    true,
		Attack:      AttackDup,
		Turns:       8,
		Ramp:        1 * time.Second,
	},
	"stale-flood": {
		Name:         "stale-flood",
		Description:  "attackers resubmit tip-outrun jobs forever; the stale retry loop must end in too-many-stale and a ban",
		Transport:    TransportMixed,
		Defended:     true,
		Attack:       AttackStale,
		Turns:        12,
		Ramp:         1 * time.Second,
		RefreshEvery: 300 * time.Millisecond,
		Think:        350 * time.Millisecond,
	},
	"diff-game": {
		Name:        "diff-game",
		Description: "attackers forge job IDs at unserved difficulty tiers; the served-tier check must reject and ban",
		Transport:   TransportMixed,
		Defended:    true,
		Attack:      AttackDiff,
		Turns:       8,
		Ramp:        1 * time.Second,
	},
	"reconnect-hammer": {
		Name:        "reconnect-hammer",
		Description: "attackers redial one shared identity as fast as possible; the login bucket must rate-limit into a ban",
		Transport:   TransportMixed,
		Defended:    true,
		Attack:      AttackHammer,
		Turns:       12,
		Ramp:        500 * time.Millisecond,
	},
	"federation": {
		Name: "federation",
		Description: "three federated pool nodes gossip one swarm's shares over memconn links; " +
			"one node is killed and cold-replaced mid-run; asserts converged tips and zero lost credit",
		Transport:  TransportTCP,
		Mem:        true,
		Federation: true,
		Turns:      2,
		Ramp:       1 * time.Second,
	},
	"mixed-hostile": {
		Name:         "mixed-hostile",
		Description:  "~80% honest vardiff-paced miners with all four attacker kinds interleaved, both dialects, tips moving",
		Transport:    TransportMixed,
		Defended:     true,
		Attack:       AttackMix,
		// 8 turns: honest sessions spend the first retarget window (4
		// accepts) at the starting difficulty and park with 4 accepts on
		// the converged tier — the sample the cadence acceptance bound
		// measures. More turns at the equilibrium think time would push
		// the run into the per-scenario deadline for no extra signal.
		Turns:        8,
		Ramp:         2 * time.Second,
		RefreshEvery: 400 * time.Millisecond,
		// 2 H/s: the swarm really grinds, so total client CPU is honest
		// sessions × hashrate × ~100µs/attempt — at catalogue scale
		// anything faster starves the service it is measuring.
		SimHashrate: 2,
	},
}

// TransportName names the scenario's dialect mix for reports.
func (s Scenario) TransportName() string {
	if s.Transport == TransportWS {
		return "ws"
	}
	if s.Mem {
		return s.Transport + "+mem"
	}
	return s.Transport
}

// ScenarioByName resolves a named scenario.
func ScenarioByName(name string) (Scenario, error) {
	s, ok := scenarios[name]
	if !ok {
		return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return s, nil
}

// ScenarioNames lists the catalogue in stable order.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
