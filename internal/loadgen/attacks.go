package loadgen

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/session"
	"repro/internal/stratum"
)

// This file is the hostile half of the swarm: sessions that behave like
// the abusive miners the pool's defense layer exists for, each verifying
// the exact containment reply the server tests pin. The attacks double as
// assertions — a duplicate share that comes back hash_accepted is a
// protocol error (the zero-duplicate-credit invariant), not a success.

// errContained marks a session the pool banned — the expected terminal
// state of every attacker. The step loop retires the session and counts
// it; it is never a protocol error.
var errContained = errors.New("loadgen: identity banned — session contained")

// attackKindFor assigns a session its behaviour under the scenario. A
// single-attack scenario makes every session hostile; AttackMix keeps
// 80% honest and rotates the rest across the four attacker kinds.
func attackKindFor(sc Scenario, idx int) string {
	if sc.Attack != AttackMix {
		return sc.Attack
	}
	if idx%5 != 4 {
		return AttackNone
	}
	kinds := [...]string{AttackDup, AttackStale, AttackDiff, AttackHammer}
	return kinds[(idx/5)%len(kinds)]
}

// contain retires a banned session: count it once, drop the transport,
// release its slot in the phase gate. Reached only through errContained
// (or a banned login), so the ban has already been verified as the named
// wire reply.
func (sw *Swarm) contain(s *minerSession) {
	if !s.bannedCounted {
		s.bannedCounted = true
		sw.banned.Inc()
	}
	sw.dropConn(s)
	s.dead = true
	s.turnsLeft = 0
	sw.gate.finish()
}

// thinkFor paces one session between turns. Honest sessions under a
// SimHashrate scenario think for difficulty/hashrate — the cadence signal
// vardiff steers on; the stale flooder waits out at least one tip refresh
// so its held job is actually dead; the other attackers push as fast as
// the scenario allows.
func (sw *Swarm) thinkFor(s *minerSession) time.Duration {
	sc := sw.cfg.Scenario
	switch s.attack {
	case AttackStale:
		d := sc.Think
		if floor := sc.RefreshEvery + 100*time.Millisecond; d < floor {
			d = floor
		}
		return d
	case AttackDup, AttackDiff:
		if sc.Think > 0 {
			return sc.Think
		}
		return 50 * time.Millisecond
	}
	if sc.SimHashrate > 0 {
		if d := jobDiff(s.job); d > 0 {
			return time.Duration(float64(d) / sc.SimHashrate * float64(time.Second))
		}
	}
	return sc.Think
}

// jobDiff recovers the share difficulty a job was served at from its
// compact target (the inverse of the pool's DifficultyForTarget).
func jobDiff(j session.Job) uint64 {
	if j.Target == 0 {
		return 0
	}
	return (1 << 32) / uint64(j.Target)
}

// noteAccept records one credited share for the session's cadence
// measurement at the difficulty it was submitted under. A difficulty
// change restarts the measurement, so the reported cadence is always
// over the session's longest-current tier — the converged figure the
// vardiff acceptance bound checks.
func (sw *Swarm) noteAccept(s *minerSession, diff uint64) {
	now := time.Now()
	if diff != s.cadDiff {
		s.cadDiff, s.cadN = diff, 0
	}
	s.cadN++
	if s.cadN == 1 {
		s.cadT0 = now
	}
	s.cadLast = now
}

// hammerStep is one reconnect-hammer cycle: dial, login, abort, as fast
// as the scenario allows — all sessions on one shared site key, so the
// identity's login bucket drains and its own rate-limit rejections score
// it into a ban. The hammer never keeps a connection, so it bypasses the
// generic connect path entirely.
func (sw *Swarm) hammerStep(s *minerSession) {
	if s.dead {
		return
	}
	err := sw.hammerOnce(s)
	if err == errContained {
		sw.contain(s)
		return
	}
	s.turnsLeft--
	if s.turnsLeft <= 0 {
		sw.gate.finish()
		return
	}
	sw.later(s, sw.cfg.Scenario.Think)
}

func (sw *Swarm) hammerOnce(s *minerSession) error {
	sess, err := session.Dial(s.url, stratum.Auth{SiteKey: s.siteKey, Type: "anonymous"})
	if err != nil {
		return sw.protoError(s, "hammer dial", err)
	}
	sess.Timeout = sw.cfg.Timeout
	_, _, err = sess.Login()
	_ = sess.Abort()
	switch {
	case err == nil:
		if s.connectedOnce {
			sw.reconnects.Inc()
		} else {
			sw.connects.Inc()
			s.connectedOnce = true
		}
		return nil
	case errors.Is(err, session.ErrBanned):
		return errContained
	case strings.Contains(err.Error(), stratum.RateLimitedMessage):
		// The named rejection the login bucket must produce; each one also
		// scores the identity toward its ban.
		sw.rateLimited.Inc()
		return nil
	default:
		return sw.protoError(s, "hammer login", err)
	}
}

// dupTurn is the duplicate submitter: the first turn earns one
// legitimate credit (via validTurn, which remembers the exact share) and
// every later turn replays that identical (job, nonce, result). The only
// acceptable outcomes are the named duplicate rejection, a rate limit,
// or the ban — a second hash_accepted for the same share is the
// invariant violation this attacker exists to detect.
func (sw *Swarm) dupTurn(s *minerSession) error {
	if !s.dupHave {
		if err := sw.validTurn(s); err != nil {
			return err
		}
		s.dupJobID, s.dupNonce, s.dupSum = s.lastOKJob, s.lastOKNonce, s.lastOKSum
		s.dupHave = true
		return nil
	}
	if err := s.sess.Submit(s.dupJobID, s.dupNonce, s.dupSum); err != nil {
		return sw.protoError(s, "dup submit write", err)
	}
	for {
		env, err := s.sess.ReadEnvelope()
		if err != nil {
			return sw.protoError(s, "read after dup submit", err)
		}
		switch env.Type {
		case stratum.TypeHashAccepted:
			sw.dupCredited.Inc()
			return sw.protoError(s, "duplicate share credited twice", nil)
		case stratum.TypeError:
			var e stratum.Error
			_ = env.Decode(&e)
			switch e.Error {
			case stratum.DuplicateShareMessage:
				sw.dupRejected.Inc()
				return nil
			case stratum.RateLimitedMessage:
				sw.rateLimited.Inc()
				return nil
			default:
				return sw.protoError(s, "dup submit rejection", fmt.Errorf("%s", e.Error))
			}
		case stratum.TypeBanned:
			return errContained
		case stratum.TypeJob:
			// A tip push (TCP) or a stale re-issue riding an earlier reply;
			// irrelevant to the replay, but adopt it so validTurn-style state
			// stays coherent if the session is ever reused.
			if err := sw.adoptJob(s, env); err != nil {
				return err
			}
		case stratum.MethodKeepalive:
		default:
			return sw.protoError(s, "unexpected reply to dup submit", fmt.Errorf("type %q", env.Type))
		}
	}
}

// staleTurn is the stale flooder: it pockets its login job, waits out a
// tip refresh (thinkFor guarantees one per turn), then resubmits the
// dead job forever with fresh nonces. The server re-jobs the first few —
// the dialect's honest-stale answer — then must cut the loop with the
// named too-many-stale error and, as the flood continues, the ban.
func (sw *Swarm) staleTurn(s *minerSession) error {
	if !s.heldSet {
		s.heldJob, s.heldSet = s.job, true
		return nil // wait a turn: the next tip refresh kills the held job
	}
	s.flNonce++
	var junk [32]byte // content irrelevant: staleness is ruled on first
	junk[0], junk[1] = byte(s.idx), byte(s.flNonce)
	if err := s.sess.Submit(s.heldJob.ID, s.flNonce, junk); err != nil {
		return sw.protoError(s, "stale-flood submit write", err)
	}
	sawStaleErr := false
	for {
		env, err := s.sess.ReadEnvelope()
		if err != nil {
			return sw.protoError(s, "read after stale-flood submit", err)
		}
		switch env.Type {
		case stratum.TypeJob:
			// The re-issue (ws: the whole reply; TCP: the notification after
			// the stale error). Deliberately NOT adopted as the held job —
			// ignoring fresh work is the attack.
			if !s.tcp || sawStaleErr {
				return nil
			}
			// A tip push that overtook the response; keep reading.
		case stratum.TypeError:
			var e stratum.Error
			_ = env.Decode(&e)
			switch e.Error {
			case stratum.StaleJobMessage:
				sawStaleErr = true // the replacement notification follows
			case stratum.TooManyStaleMessage:
				sw.staleFloodErrs.Inc()
				return nil // error-only: the retry loop is cut, no re-job
			case stratum.RateLimitedMessage:
				sw.rateLimited.Inc()
				return nil
			default:
				return sw.protoError(s, "stale-flood rejection", fmt.Errorf("%s", e.Error))
			}
		case stratum.TypeBanned:
			return errContained
		case stratum.MethodKeepalive:
		default:
			return sw.protoError(s, "unexpected reply to stale-flood submit", fmt.Errorf("type %q", env.Type))
		}
	}
}

// diffTurn is the difficulty gamer: every submit claims a job ID whose
// -dN tier the session was never served. The server must answer with the
// unknown-job re-job shape — indistinguishable on the wire from honest
// confusion, which is the point — while scoring the forgery toward a
// ban. A hash_accepted here means forged-tier credit landed: the
// credit-scaling invariant is broken.
func (sw *Swarm) diffTurn(s *minerSession) error {
	forged := forgeJobID(s.job.ID)
	if forged == "" {
		// No vardiff tier in the ID — target isn't serving per-session
		// difficulty, so there is nothing to game; behave honestly.
		return sw.validTurn(s)
	}
	s.flNonce++
	var junk [32]byte
	junk[0], junk[1] = 0xd1, byte(s.flNonce)
	if err := s.sess.Submit(forged, s.flNonce, junk); err != nil {
		return sw.protoError(s, "diff-game submit write", err)
	}
	sawStaleErr := false
	for {
		env, err := s.sess.ReadEnvelope()
		if err != nil {
			return sw.protoError(s, "read after diff-game submit", err)
		}
		switch env.Type {
		case stratum.TypeHashAccepted:
			return sw.protoError(s, "forged-difficulty share credited", nil)
		case stratum.TypeJob:
			// The re-job shape. Adopt it: the forger tracks real work so its
			// next forgery stays one tier off whatever it is actually served.
			if err := sw.adoptJob(s, env); err != nil {
				return err
			}
			if !s.tcp || sawStaleErr {
				return nil
			}
		case stratum.TypeError:
			var e stratum.Error
			_ = env.Decode(&e)
			switch e.Error {
			case stratum.StaleJobMessage:
				sawStaleErr = true // TCP renders the re-job shape as stale + notify
			case stratum.RateLimitedMessage:
				sw.rateLimited.Inc()
				return nil
			default:
				return sw.protoError(s, "diff-game rejection", fmt.Errorf("%s", e.Error))
			}
		case stratum.TypeBanned:
			return errContained
		case stratum.MethodKeepalive:
		default:
			return sw.protoError(s, "unexpected reply to diff-game submit", fmt.Errorf("type %q", env.Type))
		}
	}
}

// forgeJobID rewrites a vardiff job ID's -dN difficulty suffix to a tier
// the session was never served (2N+1: never the current tier, never the
// one-retarget-grace tier, and odd so it cannot collide with the ×2
// retarget ladder). Empty when the ID carries no tier.
func forgeJobID(id string) string {
	i := strings.LastIndex(id, "-d")
	if i < 0 {
		return ""
	}
	n, err := strconv.ParseUint(id[i+2:], 10, 64)
	if err != nil || n == 0 {
		return ""
	}
	return id[:i+2] + strconv.FormatUint(n*2+1, 10)
}
