package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cryptonight"
	"repro/internal/session"
)

// Oracle pre-grinds one valid nonce per distinct PoW input and replays
// it to every session holding that input. This is the trick that makes
// thousand-session swarms possible on one CPU: the pool hands out at
// most backends×slots distinct blobs per chain tip (the paper's "at most
// 128 different PoW inputs per block"), so the swarm pays the
// CryptoNight cost once per blob — every session after the first pays
// only protocol cost. The pool does not (and cannot, in this dialect)
// dedupe nonces across sessions, exactly like the real service, which
// had no defense against replayed shares within a job's lifetime.
type Oracle struct {
	variant   cryptonight.Variant
	maxHashes int

	mu      sync.Mutex
	entries map[string]*oracleEntry
	grinds  atomic.Uint64
}

type oracleEntry struct {
	once  sync.Once
	nonce uint32
	sum   [32]byte
	err   error
}

// NewOracle builds an oracle for the given PoW profile. maxHashes bounds
// the grind per distinct input (0 means 1<<16); at the low share
// difficulties a load target runs with, the expected cost is a handful
// of hashes.
func NewOracle(v cryptonight.Variant, maxHashes int) *Oracle {
	if maxHashes <= 0 {
		maxHashes = 1 << 16
	}
	return &Oracle{variant: v, maxHashes: maxHashes, entries: map[string]*oracleEntry{}}
}

// Solve returns a nonce/result pair meeting the job's share target,
// grinding it on first sight of the input and replaying it afterwards.
// Concurrent callers for the same input block on one grind, not N.
func (o *Oracle) Solve(job session.Job) (uint32, [32]byte, error) {
	// The wire strings identify the PoW input independent of the
	// refresh-scoped job ID, so re-issued jobs for the same template hit
	// the cache.
	key := job.WireBlob + "|" + job.WireTarget
	o.mu.Lock()
	e, ok := o.entries[key]
	if !ok {
		e = &oracleEntry{}
		o.entries[key] = e
	}
	o.mu.Unlock()
	e.once.Do(func() {
		h, err := cryptonight.GetHasher(o.variant)
		if err != nil {
			e.err = err
			return
		}
		defer cryptonight.PutHasher(h)
		nonce, sum, _, found := h.Grind(job.Blob, job.NonceOffset, job.Target, 0, o.maxHashes)
		if !found {
			e.err = fmt.Errorf("loadgen: no share within %d hashes for target %08x (share difficulty too high for load generation)",
				o.maxHashes, job.Target)
			return
		}
		e.nonce, e.sum = nonce, sum
		o.grinds.Add(1)
	})
	return e.nonce, e.sum, e.err
}

// Grinds reports how many distinct PoW inputs were actually ground.
func (o *Oracle) Grinds() uint64 { return o.grinds.Load() }
