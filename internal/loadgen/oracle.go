package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cryptonight"
	"repro/internal/session"
)

// Oracle pre-grinds valid nonces per distinct PoW input and replays them
// to every session holding that input. This is the trick that makes
// thousand-session swarms possible on one CPU: the pool hands out at
// most backends×slots distinct blobs per chain tip (the paper's "at most
// 128 different PoW inputs per block"), so the swarm pays the
// CryptoNight cost once per (input, sequence) — every session after the
// first pays only protocol cost.
//
// Solutions are sequence-indexed: SolveSeq(job, k) is the k-th distinct
// nonce for the input, ground lazily by continuing the nonce search past
// the previous solution. Honest sessions advance their own per-input
// sequence on every credited share, so no session ever resubmits a
// (job, nonce) pair the pool's duplicate memo has already seen — replaying
// one nonce is now exclusively the dup-submit attacker's job. Sessions on
// different accounts may share a sequence slot: the pool's memo is
// per-account, exactly like the real service's (absent) cross-account
// defense.
type Oracle struct {
	variant   cryptonight.Variant
	maxHashes int

	mu      sync.Mutex
	entries map[string]*oracleEntry
	useSeq  uint64 // LRU clock for eviction, under mu
	grinds  atomic.Uint64
}

// oracleMaxEntries bounds the grind table. Distinct PoW inputs are
// bounded by tips seen × backends × slots during a run; without a cap a
// long scale run under 1Hz tip refreshes grows the table forever. The
// grind is deterministic from nonce 0, so evicting a still-referenced
// input is safe — a session that comes back to it just pays the
// re-grind, it never changes which (nonce, result) a sequence maps to.
const oracleMaxEntries = 1024

type oracleSolution struct {
	nonce uint32
	sum   [32]byte
}

type oracleEntry struct {
	lastUse uint64 // LRU stamp, under Oracle.mu

	mu   sync.Mutex
	sols []oracleSolution
	next uint32 // nonce the next grind resumes from
	err  error
}

// NewOracle builds an oracle for the given PoW profile. maxHashes bounds
// the grind per solution (0 means 1<<16); at the low share difficulties a
// load target runs with, the expected cost is a handful of hashes.
func NewOracle(v cryptonight.Variant, maxHashes int) *Oracle {
	if maxHashes <= 0 {
		maxHashes = 1 << 16
	}
	return &Oracle{variant: v, maxHashes: maxHashes, entries: map[string]*oracleEntry{}}
}

// Solve returns the input's first solution — the replay every session
// used before sequences existed, kept for callers that want exactly one.
func (o *Oracle) Solve(job session.Job) (uint32, [32]byte, error) {
	return o.SolveSeq(job, 0)
}

// SolveSeq returns the seq-th distinct nonce/result pair meeting the
// job's share target, grinding forward lazily on first demand. The grind
// itself runs outside the entry lock (CryptoNight under a mutex would
// serialise every worker behind one hash); two workers racing to extend
// the same entry may duplicate a grind, and the loser's work is simply
// discarded — rare, bounded, and cheaper than holding the lock.
func (o *Oracle) SolveSeq(job session.Job, seq int) (uint32, [32]byte, error) {
	// The wire strings identify the PoW input independent of the
	// refresh-scoped job ID, so re-issued jobs for the same template hit
	// the cache.
	key := job.WireBlob + "|" + job.WireTarget
	o.mu.Lock()
	e, ok := o.entries[key]
	if !ok {
		if len(o.entries) >= oracleMaxEntries {
			o.evictOldestLocked()
		}
		e = &oracleEntry{}
		o.entries[key] = e
	}
	o.useSeq++
	e.lastUse = o.useSeq
	o.mu.Unlock()

	for {
		e.mu.Lock()
		if e.err != nil {
			err := e.err
			e.mu.Unlock()
			return 0, [32]byte{}, err
		}
		if seq < len(e.sols) {
			s := e.sols[seq]
			e.mu.Unlock()
			return s.nonce, s.sum, nil
		}
		start := e.next
		e.mu.Unlock()

		nonce, sum, err := o.grind(job, start)

		e.mu.Lock()
		if start == e.next { // we extend; a racing loser re-reads instead
			if err != nil {
				e.err = err
			} else {
				e.sols = append(e.sols, oracleSolution{nonce: nonce, sum: sum})
				e.next = nonce + 1
				o.grinds.Add(1)
			}
		}
		e.mu.Unlock()
	}
}

func (o *Oracle) grind(job session.Job, start uint32) (uint32, [32]byte, error) {
	h, err := cryptonight.GetHasher(o.variant)
	if err != nil {
		return 0, [32]byte{}, err
	}
	defer cryptonight.PutHasher(h)
	nonce, sum, _, found := h.Grind(job.Blob, job.NonceOffset, job.Target, start, o.maxHashes)
	if !found {
		return 0, [32]byte{}, fmt.Errorf("loadgen: no share within %d hashes from nonce %d for target %08x (share difficulty too high for load generation)",
			o.maxHashes, start, job.Target)
	}
	return nonce, sum, nil
}

// evictOldestLocked drops the least-recently-used entry. The scan is
// O(entries), paid only on an insert into a full table — once per
// distinct PoW input past the cap, never per share.
func (o *Oracle) evictOldestLocked() {
	var oldestKey string
	var oldest uint64
	first := true
	for k, e := range o.entries {
		if first || e.lastUse < oldest {
			first = false
			oldestKey, oldest = k, e.lastUse
		}
	}
	delete(o.entries, oldestKey)
}

// Grinds reports how many solutions were actually ground (cache misses).
func (o *Oracle) Grinds() uint64 { return o.grinds.Load() }
