package loadgen

import (
	"testing"
	"time"

	"repro/internal/cryptonight"
	"repro/internal/metrics"
	"repro/internal/session"
	"repro/internal/stratum"
)

// runScenarioAgainst drives a small swarm against the given in-process
// service and returns the run's trajectory point.
func runScenarioAgainst(t *testing.T, target *InprocTarget, reg *metrics.Registry, name string, sessions int) Result {
	t.Helper()
	sc, err := ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	// Compress the shapes so the full catalogue stays test-sized.
	sc.Ramp = 200 * time.Millisecond
	if sc.Think > 0 {
		sc.Think = 50 * time.Millisecond
	}
	if sc.RefreshEvery > 0 {
		sc.RefreshEvery = 150 * time.Millisecond
	}
	cfg := target.Config()
	cfg.Sessions = sessions
	cfg.Workers = 16
	cfg.Scenario = sc
	cfg.Variant = target.Pool.Chain().Params().PowVariant
	cfg.Registry = reg
	cfg.Deadline = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v (samples: %v)", name, err, res.ErrorSamples)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%s: %d protocol errors: %v", name, res.ProtocolErrors, res.ErrorSamples)
	}
	return res
}

// runScenario is runScenarioAgainst with a throwaway service.
func runScenario(t *testing.T, name string, sessions int) Result {
	t.Helper()
	reg := metrics.NewRegistry()
	target, err := StartInproc(2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	return runScenarioAgainst(t, target, reg, name, sessions)
}

func TestSteadyScenario(t *testing.T) {
	const n = 48
	res := runScenario(t, "steady", n)
	if res.PeakConcurrent != n || res.EndConcurrent != n {
		t.Errorf("concurrency peak/end = %d/%d, want %d", res.PeakConcurrent, res.EndConcurrent, n)
	}
	if want := uint64(n * 3); res.SharesOK != want {
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
	if res.Reconnects != 0 {
		t.Errorf("steady scenario reconnected %d times", res.Reconnects)
	}
	// The oracle is the point: solutions are shared across every session
	// that lands on the same PoW input. Since the duplicate-share memos
	// reject replayed nonces, each session needs a *distinct* solution
	// per share (sequence-indexed in the oracle), so the grind count is
	// bounded by shares-per-session × distinct inputs — and can never
	// exceed the accepted shares themselves (one grind per share worst
	// case, fewer whenever sessions overlap on an input).
	if res.OracleGrinds == 0 || res.OracleGrinds > uint64(n*3) {
		t.Errorf("OracleGrinds = %d, want within [1, %d]", res.OracleGrinds, n*3)
	}
	if res.OracleGrinds > res.SharesOK {
		t.Errorf("OracleGrinds = %d exceeds %d accepted shares — the oracle re-ground a replay", res.OracleGrinds, res.SharesOK)
	}
	if res.AcceptP99Ns <= 0 || res.AcceptMaxNs < res.AcceptP99Ns {
		t.Errorf("latency snapshot inconsistent: p99=%d max=%d", res.AcceptP99Ns, res.AcceptMaxNs)
	}
}

func TestChurnScenario(t *testing.T) {
	const n = 24
	reg := metrics.NewRegistry()
	target, err := StartInproc(2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	res := runScenarioAgainst(t, target, reg, "churn", n)
	// Every session closes and re-dials after each of its first two
	// turns (the final turn parks).
	if want := uint64(n * 2); res.Reconnects != want {
		t.Errorf("Reconnects = %d, want %d", res.Reconnects, want)
	}
	if want := uint64(n * 3); res.SharesOK != want {
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
	if got := target.Pool.StatsSnapshot().SharesStale; got != 0 {
		t.Errorf("SharesStale = %d before any tip move", got)
	}

	// Stale-share visibility: churn the tip under one more session and
	// submit its now-dead job — the server must silently re-job and the
	// engine must count it where operators can see it.
	sess, err := session.Dial(target.URL+"/proxy0", stratum.Auth{SiteKey: "churn-stale", Type: "anonymous"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.Timeout = 5 * time.Second
	_, job, err := sess.Login()
	if err != nil {
		t.Fatal(err)
	}
	h, err := cryptonight.GetHasher(target.Pool.Chain().Params().PowVariant)
	if err != nil {
		t.Fatal(err)
	}
	nonce, sum, _, found := h.Grind(job.Blob, job.NonceOffset, job.Target, 0, 1<<16)
	cryptonight.PutHasher(h)
	if !found {
		t.Fatal("no share at difficulty 2")
	}
	target.AdvanceTip()
	if err := sess.Submit(job.ID, nonce, sum); err != nil {
		t.Fatal(err)
	}
	env, err := sess.ReadEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != stratum.TypeJob {
		t.Fatalf("stale submit reply = %s, want silent job re-issue", env.Type)
	}
	if got := target.Pool.StatsSnapshot().SharesStale; got != 1 {
		t.Errorf("SharesStale = %d, want 1", got)
	}
}

func TestTCPSteadyScenario(t *testing.T) {
	const n = 32
	res := runScenario(t, "tcp-steady", n)
	if res.Transport != "tcp" {
		t.Fatalf("Transport = %q", res.Transport)
	}
	if res.PeakConcurrent != n || res.EndConcurrent != n {
		t.Errorf("concurrency peak/end = %d/%d, want %d", res.PeakConcurrent, res.EndConcurrent, n)
	}
	// Tip refreshes mid-run make some submits stale; the dialect re-jobs
	// them and every turn still lands its share.
	if want := uint64(n * 3); res.SharesOK != want {
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
	if res.TipRefreshes == 0 {
		t.Error("tcp-steady ran without a single tip refresh")
	}
}

func TestTCPStormScenario(t *testing.T) {
	const n = 24
	res := runScenario(t, "tcp-storm", n)
	if res.Reconnects != n {
		t.Errorf("Reconnects = %d, want %d", res.Reconnects, n)
	}
	if res.EndConcurrent != n {
		t.Errorf("EndConcurrent = %d, want %d (swarm must survive the storm)", res.EndConcurrent, n)
	}
	if want := uint64(n*2 + n); res.SharesOK != want {
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
}

// TestMixedScenario runs both dialects against one pool in one swarm:
// the cross-transport story under load, with tip refreshes pushing jobs
// to the TCP half and silently re-jobbing the ws half.
func TestMixedScenario(t *testing.T) {
	const n = 32
	reg := metrics.NewRegistry()
	target, err := StartInproc(2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	res := runScenarioAgainst(t, target, reg, "mixed", n)
	if res.Transport != "mixed" {
		t.Fatalf("Transport = %q", res.Transport)
	}
	if res.PeakConcurrent != n || res.EndConcurrent != n {
		t.Errorf("concurrency peak/end = %d/%d, want %d", res.PeakConcurrent, res.EndConcurrent, n)
	}
	if want := uint64(n * 3); res.SharesOK != want {
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
	// Both dialects really hit one accounting plane.
	if st := target.Pool.StatsSnapshot(); st.SharesOK != uint64(n*3) {
		t.Errorf("pool SharesOK = %d, want %d", st.SharesOK, n*3)
	}
}

func TestStormScenario(t *testing.T) {
	const n = 32
	res := runScenario(t, "storm", n)
	// Phase 1 parks all n, the storm severs them, and all n reconnect.
	if res.Reconnects != n {
		t.Errorf("Reconnects = %d, want %d", res.Reconnects, n)
	}
	if res.EndConcurrent != n {
		t.Errorf("EndConcurrent = %d, want %d (swarm must survive the storm)", res.EndConcurrent, n)
	}
	if want := uint64(n*2 + n); res.SharesOK != want { // 2 turns + 1 post-storm
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
}

func TestSlowScenario(t *testing.T) {
	const n = 16
	res := runScenario(t, "slow", n)
	if res.PeakConcurrent != n {
		t.Errorf("PeakConcurrent = %d, want %d (server must hold slow clients)", res.PeakConcurrent, n)
	}
	if want := uint64(n * 2); res.SharesOK != want {
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
}

func TestMalformedScenario(t *testing.T) {
	const n = 12
	res := runScenario(t, "malformed", n)
	// Six turns: three malformed (turnsLeft even), three valid. The
	// garbage-envelope kind forces a reconnect per hit; every malformed
	// exchange must land exactly as the dialect specifies — zero
	// protocol errors is asserted by runScenario.
	if want := uint64(n * 3); res.SharesOK != want {
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
	if want := uint64(n * 3); res.SharesRejected != want {
		t.Errorf("SharesRejected = %d, want %d", res.SharesRejected, want)
	}
	if res.Reconnects == 0 {
		t.Error("malformed scenario should force garbage-envelope reconnects")
	}
}

func TestOracleDedupesGrinds(t *testing.T) {
	// Two swarms' worth of sessions share one oracle per swarm; within a
	// swarm the distinct PoW inputs bound the grinds. This is implicitly
	// covered above; here pin the unknown-scenario error path too.
	if _, err := ScenarioByName("definitely-not-a-scenario"); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := NewSwarm(Config{URL: "ws://x"}); err == nil {
		t.Error("missing scenario accepted")
	}
	if _, err := NewSwarm(Config{Scenario: Scenario{Name: "steady"}}); err == nil {
		t.Error("missing URL accepted")
	}
}
