package loadgen

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// runScenario drives a small swarm against a fresh in-process service
// and returns the run's trajectory point.
func runScenario(t *testing.T, name string, sessions int) Result {
	t.Helper()
	reg := metrics.NewRegistry()
	target, err := StartInproc(2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	sc, err := ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	// Compress the shapes so the full catalogue stays test-sized.
	sc.Ramp = 200 * time.Millisecond
	if sc.Think > 0 {
		sc.Think = 50 * time.Millisecond
	}
	res, err := Run(Config{
		URL:      target.URL,
		Sessions: sessions,
		Workers:  16,
		Scenario: sc,
		Variant:  target.Pool.Chain().Params().PowVariant,
		Registry: reg,
		Deadline: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("%s: %v (samples: %v)", name, err, res.ErrorSamples)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%s: %d protocol errors: %v", name, res.ProtocolErrors, res.ErrorSamples)
	}
	return res
}

func TestSteadyScenario(t *testing.T) {
	const n = 48
	res := runScenario(t, "steady", n)
	if res.PeakConcurrent != n || res.EndConcurrent != n {
		t.Errorf("concurrency peak/end = %d/%d, want %d", res.PeakConcurrent, res.EndConcurrent, n)
	}
	if want := uint64(n * 3); res.SharesOK != want {
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
	if res.Reconnects != 0 {
		t.Errorf("steady scenario reconnected %d times", res.Reconnects)
	}
	// The oracle is the point: every session replays shares, so the
	// grind count is bounded by the distinct PoW inputs the pool can
	// hand out — at most one per (backend, slot) pair a session landed
	// on, never one per share.
	if res.OracleGrinds == 0 || res.OracleGrinds > uint64(n) {
		t.Errorf("OracleGrinds = %d, want within [1, %d]", res.OracleGrinds, n)
	}
	if res.OracleGrinds >= res.SharesOK {
		t.Errorf("OracleGrinds = %d not amortised over %d shares", res.OracleGrinds, res.SharesOK)
	}
	if res.AcceptP99Ns <= 0 || res.AcceptMaxNs < res.AcceptP99Ns {
		t.Errorf("latency snapshot inconsistent: p99=%d max=%d", res.AcceptP99Ns, res.AcceptMaxNs)
	}
}

func TestChurnScenario(t *testing.T) {
	const n = 24
	res := runScenario(t, "churn", n)
	// Every session closes and re-dials after each of its first two
	// turns (the final turn parks).
	if want := uint64(n * 2); res.Reconnects != want {
		t.Errorf("Reconnects = %d, want %d", res.Reconnects, want)
	}
	if want := uint64(n * 3); res.SharesOK != want {
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
}

func TestStormScenario(t *testing.T) {
	const n = 32
	res := runScenario(t, "storm", n)
	// Phase 1 parks all n, the storm severs them, and all n reconnect.
	if res.Reconnects != n {
		t.Errorf("Reconnects = %d, want %d", res.Reconnects, n)
	}
	if res.EndConcurrent != n {
		t.Errorf("EndConcurrent = %d, want %d (swarm must survive the storm)", res.EndConcurrent, n)
	}
	if want := uint64(n*2 + n); res.SharesOK != want { // 2 turns + 1 post-storm
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
}

func TestSlowScenario(t *testing.T) {
	const n = 16
	res := runScenario(t, "slow", n)
	if res.PeakConcurrent != n {
		t.Errorf("PeakConcurrent = %d, want %d (server must hold slow clients)", res.PeakConcurrent, n)
	}
	if want := uint64(n * 2); res.SharesOK != want {
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
}

func TestMalformedScenario(t *testing.T) {
	const n = 12
	res := runScenario(t, "malformed", n)
	// Six turns: three malformed (turnsLeft even), three valid. The
	// garbage-envelope kind forces a reconnect per hit; every malformed
	// exchange must land exactly as the dialect specifies — zero
	// protocol errors is asserted by runScenario.
	if want := uint64(n * 3); res.SharesOK != want {
		t.Errorf("SharesOK = %d, want %d", res.SharesOK, want)
	}
	if want := uint64(n * 3); res.SharesRejected != want {
		t.Errorf("SharesRejected = %d, want %d", res.SharesRejected, want)
	}
	if res.Reconnects == 0 {
		t.Error("malformed scenario should force garbage-envelope reconnects")
	}
}

func TestOracleDedupesGrinds(t *testing.T) {
	// Two swarms' worth of sessions share one oracle per swarm; within a
	// swarm the distinct PoW inputs bound the grinds. This is implicitly
	// covered above; here pin the unknown-scenario error path too.
	if _, err := ScenarioByName("definitely-not-a-scenario"); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := NewSwarm(Config{URL: "ws://x"}); err == nil {
		t.Error("missing scenario accepted")
	}
	if _, err := NewSwarm(Config{Scenario: Scenario{Name: "steady"}}); err == nil {
		t.Error("missing URL accepted")
	}
}
