package loadgen

// RunFederation is the multi-node load scenario: three federated pool
// nodes, each a full InprocTarget (ws + stratum fronts, own blockchain,
// own share-chain, own p2p identity), linked into a gossip mesh over
// memconn. One swarm's sessions are split across the nodes, so every
// node sees a disjoint slice of the share stream and the replicated
// books only converge if gossip, sync and the PPLNS share-chain all
// work. Mid-run, node C is killed — graceful drain, the way a real
// deploy rolls a node — and cold-replaced by a fresh process with an
// empty share-chain that must rebuild history through ranged sync while
// new shares keep arriving.
//
// The run asserts nothing itself; it measures, and the driver's gate
// (loadd -federation-smoke) pins the invariants: converged tips, zero
// lost credit, zero federation drops, a real catch-up sync on the
// replacement, and bounded gossip propagation.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/blockchain"
	"repro/internal/coinhive"
	"repro/internal/memconn"
	"repro/internal/metrics"
	"repro/internal/sharechain"
)

// fedLoadNode is one node of the federated cluster under load.
type fedLoadNode struct {
	target *InprocTarget
	reg    *metrics.Registry
	ln     *memconn.Listener // p2p gossip listener
}

// gossipProbe measures mint-to-ingest propagation latency. Mint hooks
// timestamp every entry a live node broadcasts; ingest hooks on the
// other nodes look the origin time up by entry ID. Reset clears the
// origin map at the cold-replacement boundary so the replacement's
// catch-up sync — which legitimately delivers hours-old entries — is
// excluded from the gossip percentiles.
type gossipProbe struct {
	mu    sync.Mutex
	times map[[32]byte]time.Time
	hist  *metrics.Histogram
}

func (p *gossipProbe) onMint(e *sharechain.Entry) {
	now := time.Now()
	p.mu.Lock()
	p.times[e.ID()] = now
	p.mu.Unlock()
}

func (p *gossipProbe) onIngest(e *sharechain.Entry, _ bool) {
	p.mu.Lock()
	t0, ok := p.times[e.ID()]
	p.mu.Unlock()
	if ok {
		p.hist.Observe(time.Since(t0))
	}
}

func (p *gossipProbe) reset() {
	p.mu.Lock()
	p.times = map[[32]byte]time.Time{}
	p.mu.Unlock()
}

// startFedLoadNode boots one federated target. The share-chain window
// and fee stay at their defaults — every node must agree on them, and
// defaults are the one tuning nobody can skew.
func startFedLoadNode(id uint64, shareDiff uint64, probe *gossipProbe) (*fedLoadNode, error) {
	reg := metrics.NewRegistry()
	fed, err := coinhive.NewFederation(coinhive.FederationConfig{
		Variant:     blockchain.SimParams().PowVariant,
		NodeID:      id,
		Registry:    reg,
		TipInterval: 25 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	fed.OnMint(probe.onMint)
	fed.OnIngest(probe.onIngest)
	target, err := StartInprocOpts(InprocOptions{
		ShareDifficulty: shareDiff,
		Registry:        reg,
		Federation:      fed,
	})
	if err != nil {
		fed.Close()
		return nil, err
	}
	ln := memconn.Listen()
	go fed.Serve(ln)
	return &fedLoadNode{target: target, reg: reg, ln: ln}, nil
}

func (n *fedLoadNode) chain() *sharechain.Chain { return n.target.Fed.Chain() }

// kill tears the node down the way a deploy would: miner fronts first,
// then the federation's graceful drain (InprocTarget.Close), then the
// gossip listener, so the peers' redial loops start missing.
func (n *fedLoadNode) kill() {
	n.target.Close()
	n.ln.Close()
}

// counterVal reads one counter by name through the snapshot surface (the
// registry's registration sites stay unique, per the metricname rule).
func counterVal(reg *metrics.Registry, name string) uint64 {
	for _, s := range reg.Snapshots() {
		if s.Kind == "counter" && s.Name == name {
			return s.Value
		}
	}
	return 0
}

// fedPhase drives one swarm slice against each live node concurrently
// and returns the sub-run results. tag namespaces the slice's site keys,
// so reruns against the same node never collide with the pool's
// duplicate memos.
func fedPhase(cfg Config, tag string, nodes []*fedLoadNode) ([]Result, error) {
	perNode := cfg.Sessions / 3
	if perNode < 1 {
		perNode = 1
	}
	results := make([]Result, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		sub := cfg
		sub.Scenario.Name = fmt.Sprintf("%s-%s-n%d", cfg.Scenario.Name, tag, i)
		sub.URL = n.target.URL
		sub.TCPAddr = n.target.TCPAddr
		sub.DialTCP = n.target.DialMem
		sub.HTTPURL = n.target.HTTPURL()
		sub.Sessions = perNode
		sub.Workers = 0 // auto-size per slice, not per nominal swarm
		sub.Registry = metrics.NewRegistry()
		wg.Add(1)
		go func(i int, sub Config) {
			defer wg.Done()
			results[i], errs[i] = Run(sub)
		}(i, sub)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("federation %s node %d: %w", tag, i, err)
		}
	}
	return results, nil
}

// fedConverged polls until every node's share-chain holds wantEntries
// entries under one common tip (and bit-identical credit books), or the
// deadline passes.
func fedConverged(nodes []*fedLoadNode, wantEntries int, deadline time.Time) bool {
	for {
		tips := map[[32]byte]bool{}
		ok := true
		for _, n := range nodes {
			tip, count := n.chain().Tip()
			if count != wantEntries {
				ok = false
				break
			}
			tips[tip] = true
		}
		if ok && len(tips) == 1 {
			// Same tip ⇒ same canonical sequence ⇒ same credit; the books
			// are still compared outright so a tip-hash bug cannot hide a
			// divergence.
			ref := nodes[0].chain().CreditSnapshot()
			same := true
			for _, n := range nodes[1:] {
				got := n.chain().CreditSnapshot()
				if len(got) != len(ref) {
					same = false
					break
				}
				for k, v := range ref {
					if got[k] != v {
						same = false
						break
					}
				}
			}
			if same {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// RunFederation executes the federation scenario: phase 1 splits the
// swarm across three linked nodes, phase 2 continues on two survivors
// after node C is killed, phase 3 splits across all three again once a
// cold replacement has rejoined. shareDiff is the per-share difficulty
// every node serves (vardiff stays off, so credit arithmetic is exact).
func RunFederation(cfg Config, shareDiff uint64) (Result, error) {
	if !cfg.Scenario.Federation {
		return Result{}, fmt.Errorf("loadgen: scenario %q is not a federation scenario", cfg.Scenario.Name)
	}
	cfg.fillDefaults()
	// The cluster is always built here, on SimParams chains; the oracle
	// must grind that profile whatever the caller's -variant says.
	cfg.Variant = blockchain.SimParams().PowVariant
	start := time.Now()
	deadline := start.Add(cfg.Deadline)

	probe := &gossipProbe{
		times: map[[32]byte]time.Time{},
		hist:  cfg.Registry.Histogram("load.gossip_ns"),
	}
	nodeA, err := startFedLoadNode(1, shareDiff, probe)
	if err != nil {
		return Result{}, err
	}
	defer nodeA.kill()
	nodeB, err := startFedLoadNode(2, shareDiff, probe)
	if err != nil {
		return Result{}, err
	}
	defer nodeB.kill()
	nodeC, err := startFedLoadNode(3, shareDiff, probe)
	if err != nil {
		return Result{}, err
	}

	// Mesh: A→B, A→C, B→C (the symmetric handshake makes each link
	// bidirectional). C's dialer indirects through a guarded listener
	// pointer, so the survivors' redial loops find the replacement
	// without new AddPeer calls — exactly how a node re-enters a real
	// deployment behind a stable address.
	var cMu sync.Mutex
	cLn := nodeC.ln
	dialC := func() (net.Conn, error) {
		cMu.Lock()
		ln := cLn
		cMu.Unlock()
		if ln == nil {
			return nil, errors.New("node c is down")
		}
		return ln.Dial()
	}
	lnB := nodeB.ln
	nodeA.target.Fed.AddPeer("b", func() (net.Conn, error) { return lnB.Dial() })
	nodeA.target.Fed.AddPeer("c", dialC)
	nodeB.target.Fed.AddPeer("c", dialC)

	var agg Result
	var totalShares uint64
	collect := func(rs []Result) {
		for _, r := range rs {
			agg.Sessions += r.Sessions
			agg.Workers += r.Workers
			agg.Connects += r.Connects
			agg.Reconnects += r.Reconnects
			agg.SharesOK += r.SharesOK
			agg.SharesRejected += r.SharesRejected
			agg.ProtocolErrors += r.ProtocolErrors
			agg.OracleGrinds += r.OracleGrinds
			agg.PeakConcurrent += r.PeakConcurrent
			if r.AcceptP50Ns > agg.AcceptP50Ns {
				agg.AcceptP50Ns = r.AcceptP50Ns
			}
			if r.AcceptP99Ns > agg.AcceptP99Ns {
				agg.AcceptP99Ns = r.AcceptP99Ns
			}
			if r.AcceptMaxNs > agg.AcceptMaxNs {
				agg.AcceptMaxNs = r.AcceptMaxNs
			}
			if r.ConnectP99Ns > agg.ConnectP99Ns {
				agg.ConnectP99Ns = r.ConnectP99Ns
			}
			agg.ErrorSamples = append(agg.ErrorSamples, r.ErrorSamples...)
			totalShares += r.SharesOK
		}
	}

	// Phase 1: disjoint slices across the full mesh.
	rs, err := fedPhase(cfg, "p1", []*fedLoadNode{nodeA, nodeB, nodeC})
	collect(rs)
	if err != nil {
		nodeC.kill()
		return agg, err
	}
	if !fedConverged([]*fedLoadNode{nodeA, nodeB, nodeC}, int(totalShares), deadline) {
		nodeC.kill()
		return agg, fmt.Errorf("federation: phase 1 did not converge on %d entries", totalShares)
	}

	// Kill C. Its accepted shares are already replicated (the converge
	// barrier above), and its graceful drain must not lose anything that
	// arrived since — both feed the lost-credit ledger.
	cMu.Lock()
	cLn = nil
	cMu.Unlock()
	cDrops := counterVal(nodeC.reg, "pool.federation_drops")
	nodeC.kill()

	// Phase 2: the survivors keep absorbing the stream.
	rs, err = fedPhase(cfg, "p2", []*fedLoadNode{nodeA, nodeB})
	collect(rs)
	if err != nil {
		return agg, err
	}
	if !fedConverged([]*fedLoadNode{nodeA, nodeB}, int(totalShares), deadline) {
		return agg, fmt.Errorf("federation: survivors did not converge on %d entries", totalShares)
	}

	// Cold replacement: same identity and address, empty share-chain.
	// The origin map resets first so the replacement's catch-up sync
	// (old entries, honest but not gossip) stays out of the propagation
	// percentiles.
	probe.reset()
	nodeC2, err := startFedLoadNode(3, shareDiff, probe)
	if err != nil {
		return agg, err
	}
	defer nodeC2.kill()
	cMu.Lock()
	cLn = nodeC2.ln
	cMu.Unlock()

	// Phase 3: full mesh again; the replacement serves miners while it
	// is still syncing history.
	rs, err = fedPhase(cfg, "p3", []*fedLoadNode{nodeA, nodeB, nodeC2})
	collect(rs)
	if err != nil {
		return agg, err
	}
	all := []*fedLoadNode{nodeA, nodeB, nodeC2}
	converged := fedConverged(all, int(totalShares), deadline)

	agg.Scenario = cfg.Scenario.Name
	agg.Transport = cfg.Scenario.TransportName()
	agg.DurationNs = int64(time.Since(start))
	if agg.DurationNs > 0 {
		agg.SharesPerSec = float64(agg.SharesOK) / time.Duration(agg.DurationNs).Seconds()
	}
	agg.FedNodes = 3
	agg.FedConverged = converged
	_, agg.FedEntries = nodeA.chain().Tip()

	// Zero lost credit: every accepted share, on every node, in every
	// phase — including everything the killed node took — must appear in
	// the converged books at its full difficulty.
	var chainCredit uint64
	for _, v := range nodeA.chain().CreditSnapshot() {
		chainCredit += v
	}
	if want := totalShares * shareDiff; chainCredit < want {
		agg.FedLostCredit = want - chainCredit
	}
	agg.FedDrops = cDrops
	agg.FedSyncRounds = counterVal(nodeC2.reg, "p2p.sync_rounds")
	for _, n := range all {
		agg.FedDrops += counterVal(n.reg, "pool.federation_drops")
		agg.FedReorgs += counterVal(n.reg, "pool.sharechain_reorgs")
	}
	g := probe.hist.Snapshot()
	agg.FedGossipP50Ns = int64(g.P50)
	agg.FedGossipP99Ns = int64(g.P99)
	return agg, nil
}
