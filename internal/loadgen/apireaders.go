package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// apiReaders is the HTTP-client population of an APIReaders scenario: N
// dashboard-like clients paging the archived-history stats API while the
// swarm mines against the same service. They measure what an operator's
// dashboard would see — query latency under miner contention — and
// verify the API stays well-formed (every page 200, cursors terminate).
type apiReaders struct {
	done chan struct{}
	wg   sync.WaitGroup
}

// startAPIReaders launches the scenario's reader goroutines (none when
// the scenario has no APIReaders). The returned handle's stop() is safe
// to call exactly once; readers also exit on Swarm.quit.
func (sw *Swarm) startAPIReaders() *apiReaders {
	r := &apiReaders{done: make(chan struct{})}
	n := sw.cfg.Scenario.APIReaders
	if n <= 0 {
		return r
	}
	base := strings.TrimSuffix(sw.cfg.HTTPURL, "/")
	client := &http.Client{Timeout: sw.cfg.Timeout}
	r.wg.Add(n)
	for i := 0; i < n; i++ {
		go sw.apiReader(r, client, base, i)
	}
	return r
}

// stop ends the readers and waits them out, so the query counters and
// percentiles are final when the caller snapshots the result.
func (r *apiReaders) stop() {
	close(r.done)
	r.wg.Wait()
}

// apiReader cycles through the endpoints a dashboard polls. The account
// series targets one of the swarm's own site keys, so its history fills
// as the run progresses.
func (sw *Swarm) apiReader(r *apiReaders, client *http.Client, base string, idx int) {
	defer r.wg.Done()
	acct := fmt.Sprintf("swarm-%s-%04d", sw.cfg.Scenario.Name, idx)
	paths := []string{
		"/api/v1/pool/series?limit=64",
		"/api/v1/top",
		"/api/v1/blocks",
		"/api/v1/bans",
		"/api/v1/accounts/" + acct + "/series?limit=64",
	}
	for seq := 0; ; seq++ {
		select {
		case <-r.done:
			return
		case <-sw.quit:
			return
		default:
		}
		sw.apiPage(client, base, paths[seq%len(paths)])
		// A dashboard's polling cadence, not a tight loop: the readers
		// must contend with the miners, not drown them.
		select {
		case <-r.done:
			return
		case <-sw.quit:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// apiPage issues one query and follows next_cursor to the end of the
// collection, counting and timing every page. Any non-200, transport
// failure or malformed body is an API error; a cursor chain that fails
// to terminate within the page cap is too (the API pages a bounded
// history, so an unbounded chain means a broken cursor).
func (sw *Swarm) apiPage(client *http.Client, base, path string) {
	cursor := ""
	for page := 0; page < 64; page++ {
		u := base + path
		if cursor != "" {
			sep := "?"
			if strings.Contains(path, "?") {
				sep = "&"
			}
			u += sep + "cursor=" + url.QueryEscape(cursor)
		}
		t0 := time.Now()
		resp, err := client.Get(u)
		if err != nil {
			sw.apiError(u, 0, err)
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		sw.apiNs.Observe(time.Since(t0))
		sw.apiQueries.Inc()
		if resp.StatusCode != http.StatusOK {
			sw.apiError(u, resp.StatusCode, nil)
			return
		}
		if err != nil {
			sw.apiError(u, resp.StatusCode, err)
			return
		}
		var next struct {
			NextCursor string `json:"next_cursor"`
		}
		if err := json.Unmarshal(body, &next); err != nil {
			sw.apiError(u, resp.StatusCode, err)
			return
		}
		if next.NextCursor == "" || next.NextCursor == cursor {
			return
		}
		cursor = next.NextCursor
	}
	sw.apiError(base+path, 0, fmt.Errorf("cursor chain did not terminate within 64 pages"))
}

// apiError counts a stats-API failure and keeps a sample for diagnosis.
func (sw *Swarm) apiError(url string, status int, err error) {
	sw.apiErrors.Inc()
	sw.errMu.Lock()
	if len(sw.errSamples) < 8 {
		sw.errSamples = append(sw.errSamples, fmt.Sprintf("api %s: status %d: %v", url, status, err))
	}
	sw.errMu.Unlock()
}
