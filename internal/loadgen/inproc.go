package loadgen

import (
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/blockchain"
	"repro/internal/coinhive"
	"repro/internal/memconn"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/statsapi"
)

// InprocTarget is a full coinhive service on ephemeral loopback ports —
// the self-contained target for `loadd -inproc` and the load-smoke CI
// gate. The swarm still crosses real TCP sockets and the real protocol
// stacks; "in-process" only means nobody has to start a daemon first.
// Both fronts — the ws endpoints and the raw-TCP stratum listener —
// drive one session engine, so accounting spans the dialects.
type InprocTarget struct {
	URL     string // ws://127.0.0.1:port
	TCPAddr string // host:port of the raw-TCP stratum listener
	Pool    *coinhive.Pool
	Handler *coinhive.Server
	Stratum *coinhive.StratumServer
	Fed     *coinhive.Federation // non-nil for federated targets
	srv     *http.Server
	sln     net.Listener
	mem     *memconn.Listener
	rec     *archive.Recorder
	tipSeq  uint32
}

// DialMem connects a stratum session over an in-memory conn — the same
// engine and codec stack as TCPAddr, zero file descriptors. It is the
// Config.DialTCP hook the Mem scenarios (the 10k/25k/50k scale tiers on
// a 20k-fd box) require.
func (t *InprocTarget) DialMem() (net.Conn, error) { return t.mem.Dial() }

// InprocOptions extends StartInproc for targets that need the vardiff /
// banscore defense layer (the hostile scenarios run against one).
type InprocOptions struct {
	ShareDifficulty uint64
	Registry        *metrics.Registry
	Vardiff         coinhive.VardiffConfig
	Ban             coinhive.BanConfig
	// Archive, when set, hangs an event recorder off the pool and mounts
	// the stats API on /api/v1 over the same store — the target the
	// Archived scenarios (and the loadd API gate) run against. Close
	// drains the recorder and closes the store.
	Archive archive.Store
	// Federation, when set, makes this target one node of a federated
	// cluster: accepted shares feed its share-chain and gossip to the
	// peers the caller links (see RunFederation). Close tears the peer
	// layer down gracefully after the miner fronts drain.
	Federation *coinhive.Federation
}

// DefendedInprocOptions is the canonical defended-target tuning the
// hostile scenarios (and the loadd hostile gate) run against:
//
//   - vardiff steers every ordinary session toward 12 accepted shares
//     per minute inside [1, 4096]. The tuning is capacity-driven: the
//     swarm's grind demand is honest sessions × SimHashrate hash
//     attempts per second regardless of difficulty (shares/s × diff is
//     invariant), each attempt costs ~100µs, and a 1-CPU CI box runs
//     the clients AND the service — at the catalogue's 1,000-session
//     scale only a couple of H/s per session fits, or the retargeter
//     measures scheduling backlog instead of miner cadence and hunts.
//     The starting difficulty is raised to at least 5 so an honest
//     session (SimHashrate 2) opens at 24/min — exactly 2× the goal,
//     outside the ±30% hysteresis band — and converges to the
//     equilibrium difficulty of 10 in one full-window retarget;
//   - one offense class scores 25 against a ban threshold of 100, so
//     four rejected abuses ban the identity (malformed frames score the
//     default 5: the conformance scenario's worst case stays well clear);
//   - the stale retry loop is cut after 4 consecutive stales;
//   - logins refill at 2/s (burst 6) so a reconnect hammer on one shared
//     key converts its own rejections into a ban within seconds, while
//     honest churn (a handful of logins per session) never trips it.
func DefendedInprocOptions(shareDiff uint64, reg *metrics.Registry) InprocOptions {
	if shareDiff < 5 {
		// Below 5 the pre-retarget burst (SimHashrate/diff shares per
		// second per session) outruns the box at catalogue scale before
		// the first window closes, so the retargeter measures scheduling
		// delay instead of miner cadence.
		shareDiff = 5
	}
	return InprocOptions{
		ShareDifficulty: shareDiff,
		Registry:        reg,
		Vardiff: coinhive.VardiffConfig{
			TargetSharesPerMin: 12,
			MinDifficulty:      1,
			MaxDifficulty:      4096,
		},
		Ban: coinhive.BanConfig{
			BanThreshold:    100,
			BanDuration:     time.Minute,
			DuplicateScore:  25,
			StaleFloodScore: 25,
			ForgedDiffScore: 25,
			RateLimitScore:  25,
			StaleFloodAfter: 4,
			LoginRatePerSec: 2,
			LoginBurst:      6,
		},
	}
}

// StartInproc boots a service whose share difficulty is tuned for load
// generation (a low difficulty keeps the oracle's one-time pre-grind to
// a handful of hashes per PoW input) and whose network difficulty floor
// is high enough that no replayed share ever wins a block mid-run.
func StartInproc(shareDiff uint64, reg *metrics.Registry) (*InprocTarget, error) {
	return StartInprocOpts(InprocOptions{ShareDifficulty: shareDiff, Registry: reg})
}

// StartInprocOpts is StartInproc with the defense layer configurable.
func StartInprocOpts(opts InprocOptions) (*InprocTarget, error) {
	params := blockchain.SimParams()
	params.MinDifficulty = 1 << 40
	chain, err := blockchain.NewChain(params, uint64(time.Now().Unix()),
		blockchain.AddressFromString("loadgen-genesis"))
	if err != nil {
		return nil, err
	}
	var rec *archive.Recorder
	if opts.Archive != nil {
		rec = archive.NewRecorder(opts.Archive, opts.Registry, 0)
	}
	pool, err := coinhive.NewPool(coinhive.PoolConfig{
		Chain:           chain,
		Wallet:          blockchain.AddressFromString("loadgen-wallet"),
		Clock:           simclock.Real(),
		ShareDifficulty: opts.ShareDifficulty,
		Metrics:         opts.Registry,
		Archive:         rec,
		Federation:      opts.Federation,
		Vardiff:         opts.Vardiff,
		Ban:             opts.Ban,
	})
	if err != nil {
		if rec != nil {
			rec.Close()
		}
		return nil, err
	}
	handler := coinhive.NewServer(pool)
	if opts.Archive != nil {
		handler.AttachAPI(statsapi.New(opts.Archive, opts.Registry, statsapi.Options{}))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if rec != nil {
			rec.Close()
		}
		return nil, err
	}
	// Both listeners are claimed before the stratum server exists: its
	// constructor spawns the push loop and subscribes to chain tip
	// events, so a listen failure after it would leak both.
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		if rec != nil {
			rec.Close()
		}
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	stratumSrv := coinhive.NewStratumServer(handler.Engine())
	go stratumSrv.Serve(sln)
	// The same stratum front also accepts fd-less in-memory sessions
	// (DialMem) — one engine, one accounting plane, two transports.
	mem := memconn.Listen()
	go stratumSrv.Serve(mem)

	return &InprocTarget{
		URL:     "ws://" + ln.Addr().String(),
		TCPAddr: sln.Addr().String(),
		Pool:    pool,
		Handler: handler,
		Stratum: stratumSrv,
		Fed:     opts.Federation,
		srv:     srv,
		sln:     sln,
		mem:     mem,
		rec:     rec,
	}, nil
}

// HTTPURL returns the plain-HTTP base (for /metrics, /api/stats).
func (t *InprocTarget) HTTPURL() string {
	return "http" + strings.TrimPrefix(t.URL, "ws")
}

// AdvanceTip lands one block, moving the chain tip: in-flight jobs go
// stale and the stratum front pushes fresh work to every TCP session.
// This is what a Config.Refresh hook should call for an in-process run.
func (t *InprocTarget) AdvanceTip() {
	n := atomic.AddUint32(&t.tipSeq, 1)
	_, _ = t.Pool.ProduceWinningBlock(uint64(time.Now().Unix()), int(n), n)
}

// Config returns a swarm config pre-wired to this target: both dialect
// addresses, the in-memory dial hook and the tip-refresh hook.
func (t *InprocTarget) Config() Config {
	return Config{
		URL:     t.URL,
		TCPAddr: t.TCPAddr,
		HTTPURL: t.HTTPURL(),
		DialTCP: t.DialMem,
		Refresh: t.AdvanceTip,
	}
}

// Close drains both fronts and stops the listeners. Stratum.Shutdown
// only closes the listener its last Serve registered, so the other two
// accept loops are released explicitly.
func (t *InprocTarget) Close() {
	t.Handler.Shutdown()
	t.Stratum.Shutdown()
	_ = t.sln.Close()
	_ = t.mem.Close()
	t.srv.Close()
	if t.Fed != nil {
		// After the miner fronts stop, no new shares can arrive; Close
		// drains the emit queue and flushes every peer's send queue before
		// dropping the links — gossip already accepted must still go out.
		_ = t.Fed.Close()
	}
	if t.rec != nil {
		// After the fronts are down no new events arrive; Close drains
		// the recorder queue and closes the archive store.
		t.rec.Close()
	}
}
