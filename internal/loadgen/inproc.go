package loadgen

import (
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/blockchain"
	"repro/internal/coinhive"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// InprocTarget is a full coinhive service on ephemeral loopback ports —
// the self-contained target for `loadd -inproc` and the load-smoke CI
// gate. The swarm still crosses real TCP sockets and the real protocol
// stacks; "in-process" only means nobody has to start a daemon first.
// Both fronts — the ws endpoints and the raw-TCP stratum listener —
// drive one session engine, so accounting spans the dialects.
type InprocTarget struct {
	URL     string // ws://127.0.0.1:port
	TCPAddr string // host:port of the raw-TCP stratum listener
	Pool    *coinhive.Pool
	Handler *coinhive.Server
	Stratum *coinhive.StratumServer
	srv     *http.Server
	tipSeq  uint32
}

// StartInproc boots a service whose share difficulty is tuned for load
// generation (a low difficulty keeps the oracle's one-time pre-grind to
// a handful of hashes per PoW input) and whose network difficulty floor
// is high enough that no replayed share ever wins a block mid-run.
func StartInproc(shareDiff uint64, reg *metrics.Registry) (*InprocTarget, error) {
	params := blockchain.SimParams()
	params.MinDifficulty = 1 << 40
	chain, err := blockchain.NewChain(params, uint64(time.Now().Unix()),
		blockchain.AddressFromString("loadgen-genesis"))
	if err != nil {
		return nil, err
	}
	pool, err := coinhive.NewPool(coinhive.PoolConfig{
		Chain:           chain,
		Wallet:          blockchain.AddressFromString("loadgen-wallet"),
		Clock:           simclock.Real(),
		ShareDifficulty: shareDiff,
		Metrics:         reg,
	})
	if err != nil {
		return nil, err
	}
	handler := coinhive.NewServer(pool)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	// Both listeners are claimed before the stratum server exists: its
	// constructor spawns the push loop and subscribes to chain tip
	// events, so a listen failure after it would leak both.
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	stratumSrv := coinhive.NewStratumServer(handler.Engine())
	go stratumSrv.Serve(sln)

	return &InprocTarget{
		URL:     "ws://" + ln.Addr().String(),
		TCPAddr: sln.Addr().String(),
		Pool:    pool,
		Handler: handler,
		Stratum: stratumSrv,
		srv:     srv,
	}, nil
}

// HTTPURL returns the plain-HTTP base (for /metrics, /api/stats).
func (t *InprocTarget) HTTPURL() string {
	return "http" + strings.TrimPrefix(t.URL, "ws")
}

// AdvanceTip lands one block, moving the chain tip: in-flight jobs go
// stale and the stratum front pushes fresh work to every TCP session.
// This is what a Config.Refresh hook should call for an in-process run.
func (t *InprocTarget) AdvanceTip() {
	n := atomic.AddUint32(&t.tipSeq, 1)
	_, _ = t.Pool.ProduceWinningBlock(uint64(time.Now().Unix()), int(n), n)
}

// Config returns a swarm config pre-wired to this target: both dialect
// addresses and the tip-refresh hook.
func (t *InprocTarget) Config() Config {
	return Config{
		URL:     t.URL,
		TCPAddr: t.TCPAddr,
		Refresh: t.AdvanceTip,
	}
}

// Close drains both fronts and stops the listeners.
func (t *InprocTarget) Close() {
	t.Handler.Shutdown()
	t.Stratum.Shutdown()
	t.srv.Close()
}
