package loadgen

import (
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/blockchain"
	"repro/internal/coinhive"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// InprocTarget is a full coinhive service on an ephemeral loopback port
// — the self-contained target for `loadd -inproc` and the load-smoke CI
// gate. The swarm still crosses real TCP sockets and the real ws+stratum
// stack; "in-process" only means nobody has to start a daemon first.
type InprocTarget struct {
	URL     string // ws://127.0.0.1:port
	Pool    *coinhive.Pool
	Handler *coinhive.Server
	srv     *http.Server
}

// StartInproc boots a service whose share difficulty is tuned for load
// generation (a low difficulty keeps the oracle's one-time pre-grind to
// a handful of hashes per PoW input) and whose network difficulty floor
// is high enough that no replayed share ever wins a block mid-run.
func StartInproc(shareDiff uint64, reg *metrics.Registry) (*InprocTarget, error) {
	params := blockchain.SimParams()
	params.MinDifficulty = 1 << 40
	chain, err := blockchain.NewChain(params, uint64(time.Now().Unix()),
		blockchain.AddressFromString("loadgen-genesis"))
	if err != nil {
		return nil, err
	}
	pool, err := coinhive.NewPool(coinhive.PoolConfig{
		Chain:           chain,
		Wallet:          blockchain.AddressFromString("loadgen-wallet"),
		Clock:           simclock.Real(),
		ShareDifficulty: shareDiff,
		Metrics:         reg,
	})
	if err != nil {
		return nil, err
	}
	handler := coinhive.NewServer(pool)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	return &InprocTarget{
		URL:     "ws://" + ln.Addr().String(),
		Pool:    pool,
		Handler: handler,
		srv:     srv,
	}, nil
}

// HTTPURL returns the plain-HTTP base (for /metrics, /api/stats).
func (t *InprocTarget) HTTPURL() string {
	return "http" + strings.TrimPrefix(t.URL, "ws")
}

// Close drains ws sessions with a close handshake and stops the server.
func (t *InprocTarget) Close() {
	t.Handler.Shutdown()
	t.srv.Close()
}
