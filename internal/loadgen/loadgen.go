// Package loadgen drives a live coinhive service with a swarm of
// protocol-faithful miner sessions — the measurement axis the paper's
// object demands: Coinhive at peak held hundreds of thousands of
// concurrent browser miners on ~32 WebSocket endpoints, so scale claims
// about the reproduction must come from a service under socket load,
// not from in-process benchmarks.
//
// Two design points make thousands of sessions viable on one CPU:
//
//   - Sessions are state machines multiplexed onto a small worker pool,
//     not goroutine-per-session. The ws dialect is strictly
//     client-clocked (the pool only ever speaks in response to a client
//     message), so a parked ws session never has unsolicited data to
//     read; the TCP stratum dialect is server-clocked, but its pushes
//     land in the parked session's kernel socket buffer and are drained
//     on its next turn — either way a parked session holds a file
//     descriptor and ~nothing else. Only the W sessions currently
//     mid-turn occupy a stack.
//
//   - Sessions replay shares from a pre-grinding Oracle instead of
//     mining, so the swarm pays protocol cost, not PoW cost (see
//     oracle.go).
package loadgen

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"time"

	"sync"
	"sync/atomic"

	"repro/internal/cryptonight"
	"repro/internal/metrics"
	"repro/internal/session"
	"repro/internal/stratum"
)

// Config sizes a swarm against one service.
type Config struct {
	// URL is the service base, e.g. ws://127.0.0.1:8080 — ws sessions
	// round-robin across its /proxy0…/proxyN-1 endpoints.
	URL string
	// TCPAddr is the raw-TCP stratum listener (host:port). Required by
	// scenarios whose Transport is "tcp" or "mixed".
	TCPAddr string
	// HTTPURL is the service's plain-HTTP base (http://host:port), where
	// /api/v1 lives. Required by scenarios with APIReaders.
	HTTPURL string
	// DialTCP, when set, replaces the address dial for TCP-dialect
	// sessions: the swarm runs each stratum session over the returned
	// conn instead of opening a socket to TCPAddr. The in-process
	// target wires its memconn listener here, which is what lets the
	// scale tiers exceed the box's file-descriptor budget. Only Mem
	// scenarios use it.
	DialTCP func() (net.Conn, error)
	// ParkedFn, when set, is sampled at the all-parked barrier and
	// reported as Result.ServerParked — drivers wire the stratum
	// front's Parked gauge so each row records how many sessions the
	// server was holding without a goroutine.
	ParkedFn func() int64
	// AtBarrier, when set, fires once at the all-parked barrier, before
	// the hold window opens. Drivers use it to re-scope server-side
	// measurement cursors so scale-row push percentiles cover only
	// full-swarm fan-outs — ramp-phase pushes land on a partial swarm
	// that is simultaneously burning CPU on login and share grinding,
	// which says nothing about steady-state fan-out cost.
	AtBarrier func()
	// Refresh, when set, is invoked on the scenario's RefreshEvery cadence
	// to move the target's chain tip mid-run — the event that makes the
	// TCP dialect push jobs and both dialects field stale shares. The
	// in-process target wires AdvanceTip here.
	Refresh func()
	// Endpoints is the /proxyN fan (default 32, the paper's topology).
	Endpoints int
	// Sessions is the swarm size.
	Sessions int
	// Workers is the goroutine pool executing session turns. Zero
	// auto-sizes from the swarm: max(128, Sessions/32) capped at 512 —
	// the knob that decouples session count from stack count, scaled so
	// a 50k swarm's connect phase is not serialised behind 128 stacks.
	Workers int
	// Scenario is the load shape.
	Scenario Scenario
	// Variant must match the pool chain's PoW profile.
	Variant cryptonight.Variant
	// Timeout bounds each socket read (default 10s).
	Timeout time.Duration
	// Deadline bounds the whole run (default 60s); exceeding it is an
	// error, not a hang.
	Deadline time.Duration
	// Registry receives the load.* instruments. Passing the target
	// pool's own registry gives one unified /metrics view; nil gets a
	// private one.
	Registry *metrics.Registry
	// OracleMaxHashes bounds the per-input pre-grind (see Oracle).
	OracleMaxHashes int
}

func (c *Config) fillDefaults() {
	if c.Endpoints == 0 {
		c.Endpoints = 32
	}
	if c.Sessions == 0 {
		c.Sessions = 64
	}
	if c.Workers == 0 {
		c.Workers = 128
		if w := c.Sessions / 32; w > c.Workers {
			c.Workers = w
		}
		if c.Workers > 512 {
			c.Workers = 512
		}
	}
	if c.Workers > c.Sessions {
		c.Workers = c.Sessions
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Deadline == 0 {
		c.Deadline = 60 * time.Second
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
}

// Result is one load run's trajectory point.
type Result struct {
	Scenario       string  `json:"scenario"`
	Transport      string  `json:"transport,omitempty"`
	Sessions       int     `json:"sessions"`
	Workers        int     `json:"workers"`
	PeakConcurrent int64   `json:"peak_concurrent"`
	EndConcurrent  int64   `json:"end_concurrent"` // live sessions at the all-parked barrier
	Connects       uint64  `json:"connects"`
	Reconnects     uint64  `json:"reconnects"`
	SharesOK       uint64  `json:"shares_ok"`
	SharesRejected uint64  `json:"shares_rejected"` // expected rejections (malformed scenario)
	ProtocolErrors uint64  `json:"protocol_errors"`
	OracleGrinds   uint64  `json:"oracle_grinds"`
	DurationNs     int64   `json:"duration_ns"`
	SharesPerSec   float64 `json:"shares_per_sec"`
	AcceptP50Ns    int64   `json:"accept_p50_ns"`
	AcceptP99Ns    int64   `json:"accept_p99_ns"`
	AcceptMaxNs    int64   `json:"accept_max_ns"`
	ConnectP99Ns   int64   `json:"connect_p99_ns"`

	// TipRefreshes counts the mid-run chain-tip moves this scenario
	// forced; JobPushes/PushP99Ns are the server-side job-push fan-out
	// numbers for this scenario alone (filled in by the driver, which
	// owns the target's registry and cursors its push histogram).
	// PushBytes and JobEncodes (also driver-filled, registry deltas)
	// make the encode-once claim checkable per row: bytes-on-the-wire
	// per push and distinct encodes per tip event. ServerParked is the
	// stratum front's parked-session count at the all-parked barrier.
	TipRefreshes uint64 `json:"tip_refreshes,omitempty"`
	JobPushes    uint64 `json:"job_pushes,omitempty"`
	PushP99Ns    int64  `json:"push_p99_ns,omitempty"`
	PushBytes    uint64 `json:"push_bytes,omitempty"`
	JobEncodes   uint64 `json:"job_encodes,omitempty"`
	ServerParked int64  `json:"server_parked,omitempty"`

	// GoroutinesAtPark samples runtime.NumGoroutine at the all-parked
	// barrier — the minimum of a few spaced samples, so an in-flight
	// push fan-out's transient drain goroutines don't inflate it. With
	// an in-process target it covers client and server together; the
	// scale gate's goroutines-per-parked-session bound is pinned on it.
	GoroutinesAtPark int `json:"goroutines_at_park,omitempty"`

	// Hostile-scenario outcomes, as observed on the client side of the
	// wire. DuplicateCredited is the zero-duplicate-credit invariant: any
	// non-zero value means the pool paid twice for one share (it is also
	// a counted protocol error).
	SessionsBanned     uint64 `json:"sessions_banned,omitempty"`
	RejectedDuplicate  uint64 `json:"rejected_duplicate,omitempty"`
	RejectedRateLimit  uint64 `json:"rejected_rate_limited,omitempty"`
	RejectedStaleFlood uint64 `json:"rejected_stale_flood,omitempty"`
	DuplicateCredited  uint64 `json:"duplicate_credited,omitempty"`

	// Vardiff convergence, over honest sessions of a SimHashrate-paced
	// scenario: the mean accepted-share cadence measured at each
	// session's final difficulty tier, the modal final tier, and how many
	// honest sessions had a measurable (≥2-accept) cadence.
	HonestSessions      int     `json:"honest_sessions,omitempty"`
	HonestCadencePerMin float64 `json:"honest_cadence_per_min,omitempty"`
	ConvergedDifficulty uint64  `json:"converged_difficulty,omitempty"`

	// Stats-API reader outcomes (APIReaders scenarios): pages fetched,
	// failures (non-200, transport error, malformed body or a cursor
	// chain that never terminates), and the client-observed per-page
	// latency percentiles.
	APIQueries    uint64 `json:"api_queries,omitempty"`
	APIErrors     uint64 `json:"api_errors,omitempty"`
	APIQueryP50Ns int64  `json:"api_query_p50_ns,omitempty"`
	APIQueryP99Ns int64  `json:"api_query_p99_ns,omitempty"`

	// Federation-scenario outcomes (RunFederation). FedLostCredit is the
	// headline invariant: expected total credit (every locally accepted
	// share × its difficulty, across all nodes and phases, including the
	// killed node's) minus the converged share-chain's credit sum — any
	// non-zero value means a share a pool accepted never reached the
	// replicated books. Gossip percentiles are mint-to-ingest propagation
	// latency measured across nodes with live links (catch-up sync
	// deliveries to the cold replacement are excluded by construction).
	FedNodes       int    `json:"fed_nodes,omitempty"`
	FedEntries     int    `json:"fed_entries,omitempty"`
	FedConverged   bool   `json:"fed_converged,omitempty"`
	FedLostCredit  uint64 `json:"fed_lost_credit,omitempty"`
	FedDrops       uint64 `json:"fed_drops,omitempty"`
	FedSyncRounds  uint64 `json:"fed_sync_rounds,omitempty"`
	FedReorgs      uint64 `json:"fed_reorgs,omitempty"`
	FedGossipP50Ns int64  `json:"fed_gossip_p50_ns,omitempty"`
	FedGossipP99Ns int64  `json:"fed_gossip_p99_ns,omitempty"`

	// Server-side defense counters for this scenario (filled in by the
	// driver from the defended target's registry, like JobPushes).
	SrvBans         uint64 `json:"srv_bans,omitempty"`
	SrvRetargets    uint64 `json:"srv_retargets,omitempty"`
	SrvSharesForged uint64 `json:"srv_shares_forged,omitempty"`
	SrvStaleFloods  uint64 `json:"srv_stale_floods,omitempty"`
	SrvDupShares    uint64 `json:"srv_shares_duplicate,omitempty"`
	SrvRateLimited  uint64 `json:"srv_rate_limited,omitempty"`
	SrvLoginsBanned uint64 `json:"srv_logins_banned,omitempty"`
	PoolDupShares   uint64 `json:"pool_shares_duplicate,omitempty"`

	// ErrorSamples holds the first few protocol-error descriptions, for
	// diagnosis when the zero-error assertion fails.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// minerSession is one session's state between turns. While parked it is
// exactly this struct plus a socket — no goroutine.
type minerSession struct {
	idx           int
	url           string
	tcp           bool // raw-TCP stratum dialect (server-clocked)
	siteKey       string
	sess          *session.Session
	job           session.Job
	turnsLeft     int
	sinceChurn    int
	malformedSeq  int
	dialAttempts  int
	connectedOnce bool
	dead          bool

	// attack is the session's hostile behaviour (Attack* constants; empty
	// = honest). bannedCounted dedupes the per-session ban count.
	attack        string
	bannedCounted bool

	// seqByJob advances the oracle solution sequence per PoW input, so an
	// honest session never resubmits a (job, nonce) the pool's duplicate
	// memo has seen. It survives reconnects — resubmitting after churn is
	// exactly what the account-level memo would catch.
	seqByJob map[string]int

	// credNonces remembers the nonces this session was credited for, per
	// PoW blob. The pool's duplicate memo keys on the tier-independent
	// blob identity, but the oracle sequences solutions per blob+target —
	// so after a vardiff retarget the new target's sequence restarts and
	// its first solutions can land on nonces already paid at the old tier
	// (the same hash is a solution at every tier it meets). An honest
	// miner never re-submits the same work, so validTurn skips those.
	credNonces map[string]map[uint32]struct{}

	// lastOK* remember the most recent credited share (validTurn fills
	// them); the duplicate submitter replays exactly this triple.
	lastOKJob   string
	lastOKNonce uint32
	lastOKSum   [32]byte

	// Duplicate-submit replay state.
	dupHave  bool
	dupJobID string
	dupNonce uint32
	dupSum   [32]byte

	// Stale-flood state: the tip-outrun job held for resubmission and a
	// nonce counter (also reused by the diff gamer for distinct nonces).
	heldJob session.Job
	heldSet bool
	flNonce uint32

	// Cadence measurement: credited shares at the current difficulty tier
	// (reset on every tier change — see noteAccept).
	cadDiff uint64
	cadN    int
	cadT0   time.Time
	cadLast time.Time
}

// phaseGate counts sessions down to an all-parked barrier.
type phaseGate struct {
	remaining atomic.Int64
	done      chan struct{}
}

func newGate(n int) *phaseGate {
	g := &phaseGate{done: make(chan struct{})}
	g.remaining.Store(int64(n))
	return g
}

func (g *phaseGate) finish() {
	if g.remaining.Add(-1) == 0 {
		close(g.done)
	}
}

// Swarm is one configured load run.
type Swarm struct {
	cfg    Config
	oracle *Oracle
	runq   chan *minerSession
	quit   chan struct{}
	gate   *phaseGate

	active     *metrics.Gauge
	connects   *metrics.Counter
	reconnects *metrics.Counter
	sharesOK   *metrics.Counter
	sharesRej  *metrics.Counter
	protoErrs  *metrics.Counter
	refreshes  *metrics.Counter
	acceptNs   *metrics.Histogram
	connectNs  *metrics.Histogram

	// Hostile-scenario instruments: containment outcomes as observed from
	// the client side of the wire.
	banned         *metrics.Counter // sessions that received the named ban
	dupRejected    *metrics.Counter // duplicate share rejections
	dupCredited    *metrics.Counter // duplicates the pool CREDITED — must stay zero
	rateLimited    *metrics.Counter // rate-limit rejections (login or submit)
	staleFloodErrs *metrics.Counter // too-many-stale errors

	// Stats-API reader instruments (APIReaders scenarios).
	apiQueries *metrics.Counter
	apiErrors  *metrics.Counter
	apiNs      *metrics.Histogram

	errMu      sync.Mutex
	errSamples []string

	// goroutinesAtPark and serverParked are sampled once, at the ramp
	// phase's all-parked barrier (see sampleGoroutines / Config.ParkedFn).
	goroutinesAtPark int
	serverParked     int64
}

// sampleGoroutines records the process goroutine count at the all-parked
// barrier. A tip refresh may be fanning out at that instant — its drain
// goroutines are transient per-write workers, not session costs — so the
// recorded value is the minimum over a short window, long enough to fall
// between two 1Hz refreshes.
func (sw *Swarm) sampleGoroutines() {
	minG := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		time.Sleep(60 * time.Millisecond)
		if g := runtime.NumGoroutine(); g < minG {
			minG = g
		}
	}
	sw.goroutinesAtPark = minG
}

// NewSwarm validates the config and wires the instruments.
func NewSwarm(cfg Config) (*Swarm, error) {
	cfg.fillDefaults()
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadgen: Config.URL is required")
	}
	if cfg.Scenario.Name == "" {
		return nil, fmt.Errorf("loadgen: Config.Scenario is required")
	}
	if t := cfg.Scenario.Transport; (t == TransportTCP || t == TransportMixed) && cfg.TCPAddr == "" && cfg.DialTCP == nil {
		return nil, fmt.Errorf("loadgen: scenario %q needs Config.TCPAddr (or Config.DialTCP)", cfg.Scenario.Name)
	}
	if cfg.Scenario.Mem && cfg.DialTCP == nil {
		return nil, fmt.Errorf("loadgen: scenario %q runs over in-memory conns and needs Config.DialTCP", cfg.Scenario.Name)
	}
	if cfg.Scenario.APIReaders > 0 && cfg.HTTPURL == "" {
		return nil, fmt.Errorf("loadgen: scenario %q pages the stats API and needs Config.HTTPURL", cfg.Scenario.Name)
	}
	reg := cfg.Registry
	return &Swarm{
		cfg:    cfg,
		oracle: NewOracle(cfg.Variant, cfg.OracleMaxHashes),
		// The queue holds every session plus slack, so enqueues from
		// workers and timers never block.
		runq:       make(chan *minerSession, cfg.Sessions+cfg.Workers),
		quit:       make(chan struct{}),
		active:     reg.Gauge("load.sessions"),
		connects:   reg.Counter("load.connects"),
		reconnects: reg.Counter("load.reconnects"),
		sharesOK:   reg.Counter("load.shares_ok"),
		sharesRej:  reg.Counter("load.shares_rejected"),
		protoErrs:  reg.Counter("load.proto_errors"),
		refreshes:  reg.Counter("load.tip_refreshes"),
		acceptNs:   reg.Histogram("load.accept_ns"),
		connectNs:  reg.Histogram("load.connect_ns"),

		banned:         reg.Counter("load.sessions_banned"),
		dupRejected:    reg.Counter("load.rejected_duplicate"),
		dupCredited:    reg.Counter("load.duplicate_credited"),
		rateLimited:    reg.Counter("load.rejected_rate_limited"),
		staleFloodErrs: reg.Counter("load.rejected_stale_flood"),

		apiQueries: reg.Counter("load.api_queries"),
		apiErrors:  reg.Counter("load.api_errors"),
		apiNs:      reg.Histogram("load.api_query_ns"),
	}, nil
}

// Run executes the scenario and returns its trajectory point.
func Run(cfg Config) (Result, error) {
	sw, err := NewSwarm(cfg)
	if err != nil {
		return Result{}, err
	}
	return sw.Run()
}

// Run drives arrivals, waits for the all-parked barrier, optionally
// runs the reconnect storm, then drains the swarm with proper close
// handshakes.
func (sw *Swarm) Run() (Result, error) {
	start := time.Now()
	deadline := time.After(sw.cfg.Deadline)
	sc := sw.cfg.Scenario

	for w := 0; w < sw.cfg.Workers; w++ {
		go sw.worker()
	}
	defer close(sw.quit)

	// Stats-API readers page /api/v1 for the whole run — through the
	// ramp, the turns and the hold — so the query percentiles reflect a
	// service that is simultaneously mining.
	readers := sw.startAPIReaders()

	// Mid-run tip refreshes: the chain event that makes the TCP dialect
	// push jobs and both dialects field stale shares.
	if sc.RefreshEvery > 0 && sw.cfg.Refresh != nil {
		go func() {
			tick := time.NewTicker(sc.RefreshEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					sw.cfg.Refresh()
					sw.refreshes.Inc()
				case <-sw.quit:
					return
				}
			}
		}()
	}

	sessions := make([]*minerSession, sw.cfg.Sessions)
	wsIdx := 0 // ws sessions get their own counter so they round-robin
	// every /proxyN endpoint even when mixed gives half the indices to TCP
	for i := range sessions {
		// Site keys are namespaced by scenario: bans on the defended
		// target outlive a run (that is the point of a ban), so a
		// catalogue driving several hostile scenarios at one service
		// must not have a later scenario inherit an earlier one's bans.
		s := &minerSession{
			idx:       i,
			siteKey:   fmt.Sprintf("swarm-%s-%04d", sc.Name, i),
			turnsLeft: sc.Turns,
			attack:    attackKindFor(sc, i),
			seqByJob:  map[string]int{},
		}
		if s.attack == AttackHammer {
			// Every hammer session shares one identity: the login bucket is
			// per site key, and draining it together IS the attack.
			s.siteKey = "swarm-" + sc.Name + "-hammer-shared"
		}
		// mixed alternates dialects session by session, so both hit one
		// pool (and one accounting plane) in the same run.
		if sc.Transport == TransportTCP || (sc.Transport == TransportMixed && i%2 == 1) {
			s.tcp = true
			s.url = "tcp://" + sw.cfg.TCPAddr
		} else {
			s.url = fmt.Sprintf("%s/proxy%d", strings.TrimSuffix(sw.cfg.URL, "/"), wsIdx%sw.cfg.Endpoints)
			wsIdx++
		}
		sessions[i] = s
	}

	// Phase 1: open-loop ramp-in. The catalogue's Ramp values are sized
	// for ~1k-session swarms; scale tiers stretch the window linearly so
	// the arrival RATE — the thing the service actually absorbs — stays
	// the catalogue's, however big the swarm.
	ramp := sc.Ramp
	if sw.cfg.Sessions > 1000 {
		ramp = sc.Ramp * time.Duration(sw.cfg.Sessions) / 1000
	}
	sw.gate = newGate(len(sessions))
	for i, s := range sessions {
		sw.later(s, time.Duration(i)*ramp/time.Duration(len(sessions)))
	}
	if err := sw.await(deadline, "ramp phase"); err != nil {
		return sw.result(start, sessions), err
	}
	sw.sampleGoroutines()
	if sw.cfg.ParkedFn != nil {
		sw.serverParked = sw.cfg.ParkedFn()
	}
	if sw.cfg.AtBarrier != nil {
		sw.cfg.AtBarrier()
	}
	if sc.Hold > 0 {
		// Measurement window: the whole swarm is parked, tip refreshes
		// keep firing, and every one fans a push out to every session.
		time.Sleep(sc.Hold)
	}

	if sc.Storm {
		// Sever every connection without a close handshake — an endpoint
		// death — then reconnect the whole swarm at once.
		alive := 0
		for _, s := range sessions {
			if s.dead {
				continue
			}
			if s.sess != nil {
				_ = s.sess.Abort()
				s.sess = nil
				sw.active.Dec()
			}
			s.turnsLeft = 1
			alive++
		}
		sw.gate = newGate(alive)
		for _, s := range sessions {
			if !s.dead {
				sw.enqueue(s)
			}
		}
		if err := sw.await(deadline, "storm phase"); err != nil {
			return sw.result(start, sessions), err
		}
	}

	// Readers stop before the result snapshot so the query counters and
	// percentiles are final for this row.
	readers.stop()
	res := sw.result(start, sessions)

	// Drain: proper close handshake on every surviving session.
	for _, s := range sessions {
		if s.sess != nil {
			_ = s.sess.Close()
			s.sess = nil
			sw.active.Dec()
		}
	}
	return res, nil
}

func (sw *Swarm) await(deadline <-chan time.Time, phase string) error {
	select {
	case <-sw.gate.done:
		return nil
	case <-deadline:
		return fmt.Errorf("loadgen: %s did not complete within %s (%d sessions still running)",
			phase, sw.cfg.Deadline, sw.gate.remaining.Load())
	}
}

func (sw *Swarm) result(start time.Time, sessions []*minerSession) Result {
	acc := sw.acceptNs.Snapshot()
	conn := sw.connectNs.Snapshot()
	dur := time.Since(start)
	r := Result{
		Scenario:       sw.cfg.Scenario.Name,
		Transport:      sw.cfg.Scenario.TransportName(),
		Sessions:       sw.cfg.Sessions,
		Workers:        sw.cfg.Workers,
		PeakConcurrent: sw.active.Peak(),
		EndConcurrent:  sw.active.Load(),
		Connects:       sw.connects.Load(),
		Reconnects:     sw.reconnects.Load(),
		SharesOK:       sw.sharesOK.Load(),
		SharesRejected: sw.sharesRej.Load(),
		ProtocolErrors: sw.protoErrs.Load(),
		OracleGrinds:   sw.oracle.Grinds(),
		DurationNs:     int64(dur),
		AcceptP50Ns:    int64(acc.P50),
		AcceptP99Ns:    int64(acc.P99),
		AcceptMaxNs:    int64(acc.Max),
		ConnectP99Ns:   int64(conn.P99),
		TipRefreshes:   sw.refreshes.Load(),

		GoroutinesAtPark: sw.goroutinesAtPark,
		ServerParked:     sw.serverParked,
	}
	if dur > 0 {
		r.SharesPerSec = float64(r.SharesOK) / dur.Seconds()
	}
	r.APIQueries = sw.apiQueries.Load()
	r.APIErrors = sw.apiErrors.Load()
	if r.APIQueries > 0 {
		api := sw.apiNs.Snapshot()
		r.APIQueryP50Ns = int64(api.P50)
		r.APIQueryP99Ns = int64(api.P99)
	}
	r.SessionsBanned = sw.banned.Load()
	r.RejectedDuplicate = sw.dupRejected.Load()
	r.RejectedRateLimit = sw.rateLimited.Load()
	r.RejectedStaleFlood = sw.staleFloodErrs.Load()
	r.DuplicateCredited = sw.dupCredited.Load()
	if sw.cfg.Scenario.Attack != AttackNone {
		// Vardiff convergence over the honest population: each session's
		// cadence is measured at its final difficulty tier (noteAccept
		// resets the window on every tier change), so the mean is the
		// steady-state shares/min vardiff converged the swarm to. The modal
		// final tier is reported alongside so the acceptance check can pin
		// both the cadence and the difficulty it was achieved at.
		var cadSum float64
		var cadN int
		tiers := map[uint64]int{}
		for _, s := range sessions {
			if s.attack != AttackNone {
				continue
			}
			r.HonestSessions++
			if s.cadN >= 2 {
				if span := s.cadLast.Sub(s.cadT0); span > 0 {
					cadSum += float64(s.cadN-1) / span.Minutes()
					cadN++
					tiers[s.cadDiff]++
				}
			}
		}
		if cadN > 0 {
			r.HonestCadencePerMin = cadSum / float64(cadN)
		}
		best := 0
		for tier, n := range tiers {
			if n > best {
				best, r.ConvergedDifficulty = n, tier
			}
		}
	}
	sw.errMu.Lock()
	r.ErrorSamples = append([]string(nil), sw.errSamples...)
	sw.errMu.Unlock()
	return r
}

func (sw *Swarm) worker() {
	for {
		select {
		case s := <-sw.runq:
			sw.step(s)
		case <-sw.quit:
			return
		}
	}
}

func (sw *Swarm) enqueue(s *minerSession) {
	select {
	case sw.runq <- s:
	case <-sw.quit:
	}
}

// later re-enqueues s after d — the timer stands in for the session's
// goroutine while it thinks.
func (sw *Swarm) later(s *minerSession, d time.Duration) {
	if d <= 0 {
		sw.enqueue(s)
		return
	}
	time.AfterFunc(d, func() { sw.enqueue(s) })
}

// protoError counts an unexpected protocol event and keeps the first few
// descriptions for diagnosis.
func (sw *Swarm) protoError(s *minerSession, context string, err error) error {
	sw.protoErrs.Inc()
	sw.errMu.Lock()
	if len(sw.errSamples) < 8 {
		sw.errSamples = append(sw.errSamples, fmt.Sprintf("session %d: %s: %v", s.idx, context, err))
	}
	sw.errMu.Unlock()
	if err == nil {
		return fmt.Errorf("%s", context)
	}
	return err
}

// step runs one session action on a worker: connect, one turn, or park.
func (sw *Swarm) step(s *minerSession) {
	if s.dead {
		return
	}
	if s.attack == AttackHammer {
		// The hammer never keeps a connection; it has its own cycle.
		sw.hammerStep(s)
		return
	}
	if s.sess == nil {
		if err := sw.connect(s); err != nil {
			if errors.Is(err, session.ErrBanned) {
				// The pool refused the login by name: the identity is
				// banned. For an attacker this is the expected terminal
				// state, not a connectivity failure.
				sw.contain(s)
				return
			}
			s.dialAttempts++
			if s.dialAttempts >= 3 {
				_ = sw.protoError(s, "connect failed permanently", err)
				s.dead = true
				sw.gate.finish()
				return
			}
			sw.later(s, 50*time.Millisecond)
			return
		}
		s.dialAttempts = 0
	}
	if s.turnsLeft <= 0 {
		sw.parkKeepalive(s)
		sw.gate.finish() // parked: holds its socket, no goroutine
		return
	}

	var err error
	switch {
	case sw.cfg.Scenario.Malformed && s.turnsLeft%2 == 0:
		err = sw.malformedTurn(s)
	case s.attack == AttackDup:
		err = sw.dupTurn(s)
	case s.attack == AttackStale:
		err = sw.staleTurn(s)
	case s.attack == AttackDiff:
		err = sw.diffTurn(s)
	default:
		err = sw.validTurn(s)
	}
	if err == errContained {
		sw.contain(s)
		return
	}
	if err != nil {
		// The turn already counted a protocol error — except stale
		// thrash, which is load (tips moving faster than the session's
		// turn cycle), not a dialect violation. Either way: recycle the
		// transport and retry the remaining turns on a fresh session.
		sw.dropConn(s)
		sw.later(s, 50*time.Millisecond)
		return
	}
	s.turnsLeft--
	if s.turnsLeft <= 0 {
		sw.parkKeepalive(s)
		sw.gate.finish()
		return
	}
	if ce := sw.cfg.Scenario.ChurnEvery; ce > 0 {
		s.sinceChurn++
		if s.sinceChurn >= ce {
			s.sinceChurn = 0
			sw.closeConn(s)
		}
	}
	sw.later(s, sw.thinkFor(s))
}

// parkKeepalive keeps a parked server-clocked session alive through a
// phase that outlasts the server's silence window: the dialect requires
// clients to ping every session.KeepaliveInterval, and a parked swarm
// session has no goroutine to do it — a timer chain stands in, writing
// only (the replies accumulate in the socket buffer, like any push to a
// parked session). The chain captures the session object and this
// phase's gate; once the phase completes, ownership of the miner state
// returns to Run (storm severs, drain closes) and the chain stops on
// its next tick — at worst one ping races the teardown, which the
// net.Conn tolerates.
func (sw *Swarm) parkKeepalive(s *minerSession) {
	if !s.tcp || s.sess == nil {
		return
	}
	sess, g := s.sess, sw.gate
	var ping func()
	ping = func() {
		select {
		case <-g.done:
			return
		case <-sw.quit:
			return
		default:
		}
		if sess.Keepalive() != nil {
			return // transport gone; the phase owner handles the rest
		}
		time.AfterFunc(session.KeepaliveInterval, ping)
	}
	time.AfterFunc(session.KeepaliveInterval, ping)
}

// connect dials, authenticates and receives the first job. A Mem
// scenario's TCP sessions go through Config.DialTCP (the fd-less
// in-memory transport of the scale tiers); everything else dials by URL
// over real sockets.
func (sw *Swarm) connect(s *minerSession) error {
	t0 := time.Now()
	auth := stratum.Auth{SiteKey: s.siteKey, Type: "anonymous"}
	var (
		sess *session.Session
		err  error
	)
	if s.tcp && sw.cfg.Scenario.Mem {
		var nc net.Conn
		if nc, err = sw.cfg.DialTCP(); err == nil {
			sess, err = session.DialConn(nc, auth)
		}
	} else {
		sess, err = session.Dial(s.url, auth)
	}
	if err != nil {
		return err
	}
	sess.Timeout = sw.cfg.Timeout
	_, job, err := sess.Login()
	if err != nil {
		_ = sess.Close()
		return err
	}
	sw.connectNs.Observe(time.Since(t0))
	s.sess, s.job = sess, job
	sw.active.Inc()
	if s.connectedOnce {
		sw.reconnects.Inc()
	} else {
		sw.connects.Inc()
		s.connectedOnce = true
	}
	return nil
}

// closeConn performs the proper closing handshake (churn, drain).
func (sw *Swarm) closeConn(s *minerSession) {
	if s.sess == nil {
		return
	}
	_ = s.sess.Close()
	s.sess = nil
	sw.active.Dec()
}

// dropConn tears the transport down abruptly (after an error; the
// session no longer trusts the stream state).
func (sw *Swarm) dropConn(s *minerSession) {
	if s.sess == nil {
		return
	}
	_ = s.sess.Abort()
	s.sess = nil
	sw.active.Dec()
}

// validTurn submits one oracle share. Over ws it expects hash_accepted
// followed by the next job; a job push without an accept means the
// submitted job went stale (chain tip moved) and the turn retries on the
// fresh work. Over TCP stratum the accept ends the turn (the dialect is
// server-clocked — fresh work arrives by push, drained here whenever it
// interleaves), and a stale submit is a named "stale job" error followed
// by a replacement job notification.
func (sw *Swarm) validTurn(s *minerSession) error {
	for attempt := 0; attempt < 3; attempt++ {
		// Solutions are sequence-indexed per PoW input: every credited
		// share advances the session's cursor, so honest replays never
		// collide with the pool's per-account duplicate memo. Nonces the
		// session was already credited for on this blob — at any tier —
		// are skipped: the memo is tier-independent, the oracle is not.
		inputKey := s.job.WireBlob + "|" + s.job.WireTarget
		blob := s.job.WireBlob
		var nonce uint32
		var sum [32]byte
		for {
			var err error
			nonce, sum, err = sw.oracle.SolveSeq(s.job, s.seqByJob[inputKey])
			if err != nil {
				return sw.protoError(s, "oracle", err)
			}
			if _, paid := s.credNonces[blob][nonce]; !paid {
				break
			}
			s.seqByJob[inputKey]++
		}
		submittedID, submittedDiff := s.job.ID, jobDiff(s.job)
		t0 := time.Now()
		if err := s.sess.Submit(submittedID, nonce, sum); err != nil {
			return sw.protoError(s, "submit write", err)
		}
		accepted := false
		stale := false
	read:
		for {
			env, err := s.sess.ReadEnvelope()
			if err != nil {
				return sw.protoError(s, "read after submit", err)
			}
			switch env.Type {
			case stratum.TypeHashAccepted:
				sw.acceptNs.Observe(time.Since(t0))
				sw.sharesOK.Inc()
				s.seqByJob[inputKey]++
				if s.credNonces == nil {
					s.credNonces = map[string]map[uint32]struct{}{}
				}
				if s.credNonces[blob] == nil {
					s.credNonces[blob] = map[uint32]struct{}{}
				}
				s.credNonces[blob][nonce] = struct{}{}
				s.lastOKJob, s.lastOKNonce, s.lastOKSum = submittedID, nonce, sum
				sw.noteAccept(s, submittedDiff)
				accepted = true
				if s.tcp {
					return nil // server-clocked: no trailing job
				}
			case stratum.TypeJob:
				if err := sw.adoptJob(s, env); err != nil {
					return err
				}
				if accepted {
					return nil
				}
				if !s.tcp || stale {
					break read // stale re-issue: retry against the fresh job
				}
				// TCP push that overtook the response: adopt, keep reading.
			case stratum.TypeError:
				var e stratum.Error
				_ = env.Decode(&e)
				if s.tcp && e.Error == stratum.StaleJobMessage {
					stale = true // the replacement job notification follows
					continue
				}
				return sw.protoError(s, "valid share rejected", fmt.Errorf("%s", e.Error))
			case stratum.TypeBanned:
				return errContained
			case stratum.MethodKeepalive:
				// Ack for a parked-phase keepalive, drained on this turn.
			default:
				return sw.protoError(s, "unexpected reply to valid share", fmt.Errorf("type %q", env.Type))
			}
		}
	}
	// Every attempt went stale: the tip is moving faster than this
	// session's turn cycle. That is backlog, not a protocol error — the
	// caller reconnects and retries the turn.
	return errStaleThrash
}

// errStaleThrash marks a turn starved by tip churn; it is retried, not
// counted against the dialect.
var errStaleThrash = errors.New("loadgen: job stayed stale across retries")

// expect reads the next envelope and requires the given type.
func (sw *Swarm) expect(s *minerSession, want string) (stratum.Envelope, error) {
	env, err := s.sess.ReadEnvelope()
	if err != nil {
		return env, sw.protoError(s, "read expecting "+want, err)
	}
	if env.Type != want {
		return env, sw.protoError(s, "expecting "+want, fmt.Errorf("got %q", env.Type))
	}
	return env, nil
}

// adoptJob decodes a job envelope into the session.
func (sw *Swarm) adoptJob(s *minerSession, env stratum.Envelope) error {
	var j stratum.Job
	if err := env.Decode(&j); err != nil {
		return sw.protoError(s, "job decode", err)
	}
	job, err := session.DecodeJob(j)
	if err != nil {
		return sw.protoError(s, "job decode", err)
	}
	s.job = job
	return nil
}

// malformedTurn sends one of five protocol violations and verifies the
// server's exact dialect response. The violations mirror what a hostile
// or broken web client can actually emit; the expected responses are
// pinned by the server tests, so a deviation here is a real regression
// on either side.
func (sw *Swarm) malformedTurn(s *minerSession) error {
	// Offset the rotation by session index so a swarm covers all five
	// kinds even when each session only gets a few malformed turns.
	kind := (s.idx + s.malformedSeq) % 5
	s.malformedSeq++
	goodResult := strings.Repeat("ab", 32)
	switch kind {
	case 0: // nonce not hex → error reply, session lives
		if err := s.sess.Send(stratum.TypeSubmit, stratum.Submit{
			Version: 7, JobID: s.job.ID, Nonce: "zz!!zz!!", Result: goodResult,
		}); err != nil {
			return sw.protoError(s, "malformed submit write", err)
		}
		if _, err := sw.expect(s, stratum.TypeError); err != nil {
			return err
		}
		sw.sharesRej.Inc()
	case 1: // result wrong length → error reply, session lives
		if err := s.sess.Send(stratum.TypeSubmit, stratum.Submit{
			Version: 7, JobID: s.job.ID, Nonce: stratum.EncodeNonce(1), Result: "abcd",
		}); err != nil {
			return sw.protoError(s, "malformed submit write", err)
		}
		if _, err := sw.expect(s, stratum.TypeError); err != nil {
			return err
		}
		sw.sharesRej.Inc()
	case 2: // unknown job → silent fresh job, no error
		if err := s.sess.Send(stratum.TypeSubmit, stratum.Submit{
			Version: 7, JobID: "9999-1-0", Nonce: stratum.EncodeNonce(1), Result: goodResult,
		}); err != nil {
			return sw.protoError(s, "malformed submit write", err)
		}
		env, err := sw.expect(s, stratum.TypeJob)
		if err != nil {
			return err
		}
		if err := sw.adoptJob(s, env); err != nil {
			return err
		}
		sw.sharesRej.Inc()
	case 3: // well-formed but wrong result → error, then fresh job
		for attempt := 0; ; attempt++ {
			if err := s.sess.Send(stratum.TypeSubmit, stratum.Submit{
				Version: 7, JobID: s.job.ID, Nonce: stratum.EncodeNonce(0xdeadbeef), Result: goodResult,
			}); err != nil {
				return sw.protoError(s, "malformed submit write", err)
			}
			env, err := s.sess.ReadEnvelope()
			if err != nil {
				return sw.protoError(s, "read after malformed submit", err)
			}
			// A lone job push (no error) means our job ID went stale
			// before the server could score the result — the same silent
			// re-issue validTurn handles. Retry against the fresh job.
			if env.Type == stratum.TypeJob {
				if err := sw.adoptJob(s, env); err != nil {
					return err
				}
				if attempt >= 2 {
					return sw.protoError(s, "job stayed stale across retries", nil)
				}
				continue
			}
			if env.Type != stratum.TypeError {
				return sw.protoError(s, "expecting error", fmt.Errorf("got %q", env.Type))
			}
			env, err = sw.expect(s, stratum.TypeJob)
			if err != nil {
				return err
			}
			if err := sw.adoptJob(s, env); err != nil {
				return err
			}
			sw.sharesRej.Inc()
			break
		}
	case 4: // garbage envelope → error, then the server hangs up
		if err := s.sess.SendRaw([]byte("{definitely not json")); err != nil {
			return sw.protoError(s, "garbage write", err)
		}
		if _, err := sw.expect(s, stratum.TypeError); err != nil {
			return err
		}
		if _, err := s.sess.ReadEnvelope(); err == nil {
			return sw.protoError(s, "server kept a session alive after a garbage envelope", nil)
		}
		// The hang-up is the expected outcome; reconnect without
		// counting an error.
		sw.closeConn(s)
		sw.sharesRej.Inc()
	}
	return nil
}
