package session

import (
	"bytes"
	"testing"

	"repro/internal/stratum"
)

// buildBlob assembles a minimal hashing blob: three header varints, the
// 32-byte prev hash, the 4-byte nonce and the 32-byte Merkle root.
func buildBlob(tsVarint []byte) []byte {
	blob := []byte{0x07, 0x00}
	blob = append(blob, tsVarint...)
	blob = append(blob, bytes.Repeat([]byte{0xAA}, 32)...) // prev
	blob = append(blob, 0, 0, 0, 0)                        // nonce
	blob = append(blob, bytes.Repeat([]byte{0xBB}, 32)...) // root
	return blob
}

func TestNonceOffset(t *testing.T) {
	// Single-byte timestamp varint: offset = 3 varints + 32.
	if off, err := NonceOffset(buildBlob([]byte{0x42})); err != nil || off != 35 {
		t.Fatalf("NonceOffset = %d, %v; want 35", off, err)
	}
	// Multi-byte timestamp varint shifts the offset.
	if off, err := NonceOffset(buildBlob([]byte{0x80, 0x80, 0x01})); err != nil || off != 37 {
		t.Fatalf("NonceOffset = %d, %v; want 37", off, err)
	}
	if _, err := NonceOffset([]byte{0x80, 0x80}); err == nil {
		t.Fatal("NonceOffset accepted a truncated blob")
	}
	if _, err := NonceOffset(buildBlob([]byte{0x42})[:40]); err == nil {
		t.Fatal("NonceOffset accepted a blob too short for nonce+root")
	}
}

func TestDecodeJobRevertsObfuscation(t *testing.T) {
	plain := buildBlob([]byte{0x42})
	wire := append([]byte(nil), plain...)
	stratum.ObfuscateBlob(wire) // what the pool puts on the wire
	j := stratum.Job{
		JobID:  "3-1-5",
		Blob:   stratum.EncodeBlob(wire),
		Target: stratum.EncodeTarget(0x00ffffff),
	}
	job, err := DecodeJob(j)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(job.Blob, plain) {
		t.Error("DecodeJob did not revert the blob obfuscation")
	}
	if job.Target != 0x00ffffff || job.NonceOffset != 35 || job.ID != "3-1-5" {
		t.Errorf("job = %+v", job)
	}
	if job.WireBlob != j.Blob || job.WireTarget != j.Target {
		t.Error("wire fields must carry the exact strings the pool sent")
	}
}

func TestDecodeJobRejectsBadWire(t *testing.T) {
	good := stratum.Job{Blob: stratum.EncodeBlob(buildBlob([]byte{1})), Target: "ffffff00"}
	for name, j := range map[string]stratum.Job{
		"odd blob hex":    {Blob: "abc", Target: good.Target},
		"bad target":      {Blob: good.Blob, Target: "zz"},
		"truncated blob":  {Blob: "0700", Target: good.Target},
		"non-hex in blob": {Blob: "zz" + good.Blob[2:], Target: good.Target},
	} {
		if _, err := DecodeJob(j); err == nil {
			t.Errorf("%s: DecodeJob accepted it", name)
		}
	}
}
