package session

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/stratum"
)

// tcpTransport is the raw-TCP JSON-RPC stratum dialect (see
// coinhive.StratumServer for the wire spec). The dialect is
// server-clocked — job notifications arrive unsolicited — and its
// request/response shapes differ from the browser dialect, so this codec
// re-expresses every server message as a canonical stratum envelope:
//
//	login result      → authed + job (two envelopes, queued)
//	submit result     → hash_accepted
//	keepalived result → keepalived
//	rpc error         → error
//	job / link_resolved / captcha_verified notifications → themselves
type tcpTransport struct {
	nc net.Conn
	br *bufio.Reader

	// wmu serialises writers: the session's own sends race the keepalive
	// ticker a long-grinding miner runs (see Session.Keepalive). It also
	// guards token, which the read side sets at login.
	wmu    sync.Mutex
	nextID int64
	// token is the login result's session token, echoed in every submit
	// and keepalive — this dialect's session identity.
	token string
	// pending holds synthesized envelopes not yet handed to the caller
	// (the login result expands to two).
	pending []stratum.Envelope
	wbuf    []byte
}

func dialTCP(addr string) (*tcpTransport, error) {
	nc, err := net.DialTimeout("tcp", addr, 30*time.Second)
	if err != nil {
		return nil, err
	}
	return newTCPTransport(nc), nil
}

func newTCPTransport(nc net.Conn) *tcpTransport {
	return &tcpTransport{
		nc: nc,
		br: bufio.NewReaderSize(nc, stratum.MaxRPCLine),
	}
}

func (t *tcpTransport) Send(msgType string, params interface{}, deadline time.Time) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.nextID++
	var err error
	t.wbuf = t.wbuf[:0]
	switch msgType {
	case stratum.TypeAuth:
		auth, ok := params.(stratum.Auth)
		if !ok {
			return fmt.Errorf("session: tcp auth params are %T, want stratum.Auth", params)
		}
		t.wbuf, err = stratum.AppendRPCRequest(t.wbuf, t.nextID, stratum.MethodLogin, stratum.LoginParams{
			Login: auth.SiteKey,
			Pass:  auth.User,
			Agent: "repro-session/1",
		})
	case stratum.TypeSubmit:
		sub, ok := params.(stratum.Submit)
		if !ok {
			return fmt.Errorf("session: tcp submit params are %T, want stratum.Submit", params)
		}
		t.wbuf, err = stratum.AppendRPCRequest(t.wbuf, t.nextID, stratum.MethodSubmit, stratum.SubmitParams{
			ID:     t.token,
			JobID:  sub.JobID,
			Nonce:  sub.Nonce,
			Result: sub.Result,
		})
	case stratum.MethodKeepalive:
		t.wbuf, err = stratum.AppendRPCRequest(t.wbuf, t.nextID, stratum.MethodKeepalive,
			map[string]string{"id": t.token})
	default:
		// No rpc mapping: send it as a request of that method so hostile
		// or future message types still cross the wire (the server answers
		// unknown methods with a proper rpc error).
		t.wbuf, err = stratum.AppendRPCRequest(t.wbuf, t.nextID, msgType, params)
	}
	if err != nil {
		return err
	}
	return t.writeLocked(deadline)
}

func (t *tcpTransport) SendRaw(data []byte, deadline time.Time) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.wbuf = append(t.wbuf[:0], data...)
	t.wbuf = append(t.wbuf, '\n')
	return t.writeLocked(deadline)
}

func (t *tcpTransport) writeLocked(deadline time.Time) error {
	if err := t.nc.SetWriteDeadline(deadline); err != nil {
		return err
	}
	_, err := t.nc.Write(t.wbuf)
	return err
}

// synth queues one canonical envelope built from a payload struct.
func (t *tcpTransport) synth(msgType string, payload interface{}) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	t.pending = append(t.pending, stratum.Envelope{Type: msgType, Params: raw})
	return nil
}

func (t *tcpTransport) ReadEnvelope(deadline time.Time) (stratum.Envelope, error) {
	for len(t.pending) == 0 {
		if err := t.readFrame(deadline); err != nil {
			return stratum.Envelope{}, err
		}
	}
	env := t.pending[0]
	t.pending = t.pending[:copy(t.pending, t.pending[1:])]
	return env, nil
}

// readFrame reads one rpc line and queues its canonical envelope(s).
func (t *tcpTransport) readFrame(deadline time.Time) error {
	if err := t.nc.SetReadDeadline(deadline); err != nil {
		return err
	}
	line, err := stratum.ReadRPCLine(t.br)
	if err != nil {
		return err
	}
	env, err := stratum.UnmarshalRPC(line)
	if err != nil {
		return fmt.Errorf("session: tcp frame: %w", err)
	}
	switch {
	case env.IsNotification():
		// Server pushes reuse the canonical type names as rpc methods.
		t.pending = append(t.pending, stratum.Envelope{Type: env.Method, Params: env.Params})
		return nil
	case env.Error != nil:
		if env.Error.Message == stratum.BannedMessage {
			// The ws dialect gives bans their own message type; mirror that
			// here so callers see one vocabulary for "stop reconnecting".
			return t.synth(stratum.TypeBanned, stratum.Error{Error: env.Error.Message})
		}
		return t.synth(stratum.TypeError, stratum.Error{Error: env.Error.Message})
	case len(env.Result) > 0:
		return t.decodeResult(env)
	default:
		return fmt.Errorf("session: tcp frame is neither response nor notification: %s", line)
	}
}

// decodeResult maps a success response onto the canonical vocabulary by
// shape: a result carrying a job is the login ack, one carrying only
// hashes is a submit ack, the KEEPALIVED status answers a keepalive.
func (t *tcpTransport) decodeResult(env stratum.RPCEnvelope) error {
	var probe struct {
		ID     string       `json:"id"`
		Job    *stratum.Job `json:"job"`
		Status string       `json:"status"`
		Hashes int64        `json:"hashes"`
	}
	if err := env.DecodeResult(&probe); err != nil {
		return fmt.Errorf("session: tcp result: %w", err)
	}
	switch {
	case probe.Job != nil:
		t.wmu.Lock()
		t.token = probe.ID
		t.wmu.Unlock()
		if err := t.synth(stratum.TypeAuthed, stratum.Authed{Token: probe.ID, Hashes: probe.Hashes}); err != nil {
			return err
		}
		return t.synth(stratum.TypeJob, *probe.Job)
	case probe.Status == stratum.StatusKeepalive:
		return t.synth(stratum.MethodKeepalive, stratum.KeepaliveResult{Status: probe.Status})
	default:
		return t.synth(stratum.TypeHashAccepted, stratum.HashAccepted{Hashes: probe.Hashes})
	}
}

// Buffered reports whether a frame is already decoded (pending) or
// sitting in the read buffer — anything the server flushed in the same
// write as a frame already consumed.
func (t *tcpTransport) Buffered() bool {
	return len(t.pending) > 0 || t.br.Buffered() > 0
}

func (t *tcpTransport) ServerClocked() bool { return true }

// Close ends the session. The dialect has no goodbye frame — liveness is
// the keepalive window — so closing the socket is the handshake.
func (t *tcpTransport) Close() error { return t.nc.Close() }

func (t *tcpTransport) Abort() error { return t.nc.Close() }
