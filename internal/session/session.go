// Package session implements the client half of the pool dialects — the
// dial + auth handshake and the job decode (hex, de-obfuscation, nonce
// offset recovery) every miner-side component repeats before it can do
// anything useful. It is shared by the webminer (which then grinds real
// nonces) and the loadgen swarm (which replays pre-ground ones); keeping
// the protocol plumbing in one place is what guarantees the two speak
// the identical dialects the server is tested against.
//
// Two dialects are supported behind one Session API, chosen by URL
// scheme: the ws+coinhive browser dialect (ws:// and wss://) and the
// newline-delimited JSON-RPC 2.0 TCP stratum dialect native miners use
// (tcp://). Whatever the wire form, a transport surfaces the server's
// messages as canonical stratum envelopes, so every consumer switches on
// one message vocabulary.
package session

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/stratum"
	"repro/internal/ws"
)

// Job is a decoded, de-obfuscated PoW input ready for nonce search.
// WireBlob and WireTarget keep the exact strings the pool sent: together
// they identify the PoW input independent of the (refresh-scoped) job ID,
// which is what the loadgen share oracle keys its cache on.
type Job struct {
	ID          string
	Blob        []byte
	Target      uint32
	NonceOffset int
	WireBlob    string
	WireTarget  string
}

// errTruncatedBlob is static so job decoding stays allocation-free on
// malformed input too.
var errTruncatedBlob = errors.New("session: truncated blob")

// ErrBanned reports that the pool banned this session's identity (the ws
// "banned" message / the TCP rpc error of the same text). Callers should
// stop reconnecting; the ban outlives the connection.
var ErrBanned = errors.New("session: banned by pool")

// DecodeJob decodes a wire job: hex decode, revert the fixed-offset XOR
// (the step the official miner hides "deep within its WebAssembly"), and
// recover the nonce offset from the header prefix.
//
//lint:hotpath
func DecodeJob(j stratum.Job) (Job, error) {
	blob, err := stratum.DecodeBlob(j.Blob)
	if err != nil {
		return Job{}, err
	}
	stratum.ObfuscateBlob(blob)
	target, err := stratum.DecodeTarget(j.Target)
	if err != nil {
		return Job{}, err
	}
	off, err := NonceOffset(blob)
	if err != nil {
		return Job{}, err
	}
	return Job{
		ID: j.JobID, Blob: blob, Target: target, NonceOffset: off,
		WireBlob: j.Blob, WireTarget: j.Target,
	}, nil
}

// NonceOffset returns the nonce position in a (de-obfuscated) hashing
// blob by skipping the three leading varints (major, minor, timestamp)
// and the 32-byte prev hash.
//
//lint:hotpath
func NonceOffset(blob []byte) (int, error) {
	off := 0
	for i := 0; i < 3; i++ {
		for {
			if off >= len(blob) {
				return 0, errTruncatedBlob
			}
			b := blob[off]
			off++
			if b&0x80 == 0 {
				break
			}
		}
	}
	off += 32 // prev hash
	if off+4+32 > len(blob) {
		return 0, errTruncatedBlob
	}
	return off, nil
}

// Transport is one dialect connection. Implementations translate between
// the dialect's wire form and the canonical stratum envelope vocabulary;
// they hold codec state only — session semantics live with the caller.
// The zero deadline means block forever.
type Transport interface {
	// Send encodes one client message. msgType is a stratum.Type*
	// constant; params its payload struct.
	Send(msgType string, params interface{}, deadline time.Time) error
	// SendRaw injects bytes as one dialect frame verbatim — the loadgen
	// malformed scenario's protocol-violation hook.
	SendRaw(data []byte, deadline time.Time) error
	// ReadEnvelope returns the next server message in canonical form.
	ReadEnvelope(deadline time.Time) (stratum.Envelope, error)
	// Buffered reports whether a ReadEnvelope would return without
	// touching the network — frames the server flushed together with
	// one already consumed (e.g. a resolution notification riding a
	// submit result) are drainable without risking a block.
	Buffered() bool
	// ServerClocked reports whether the dialect pushes work unsolicited
	// (TCP stratum) or only ever answers (ws).
	ServerClocked() bool
	// Close ends the session with whatever goodbye the dialect defines.
	Close() error
	// Abort tears the transport down abruptly, no handshake — how a
	// dying browser tab or severed endpoint looks from the server.
	Abort() error
}

// Session is one authenticated miner connection over either dialect.
type Session struct {
	// Transport is the dialect codec underneath; most callers never
	// touch it directly.
	Transport Transport
	// Timeout bounds each read and write; zero means block forever. A
	// load generator sets it so a stalled server surfaces as a counted
	// error instead of a stuck worker.
	Timeout time.Duration
}

// Dial connects to a pool endpoint and sends the auth message. The URL
// scheme picks the dialect: ws:// / wss:// for the browser dialect,
// tcp:// for raw JSON-RPC stratum. The server's replies are read by
// Login (or directly via ReadEnvelope) so callers can overlap dials.
func Dial(url string, auth stratum.Auth) (*Session, error) {
	var (
		t   Transport
		err error
	)
	if strings.HasPrefix(url, "tcp://") {
		t, err = dialTCP(strings.TrimPrefix(url, "tcp://"))
	} else {
		t, err = dialWS(url)
	}
	if err != nil {
		return nil, err
	}
	s := &Session{Transport: t}
	if err := s.Send(stratum.TypeAuth, auth); err != nil {
		_ = t.Abort()
		return nil, err
	}
	return s, nil
}

// DialConn starts a TCP-stratum session over an already-established
// net.Conn and sends the auth message, exactly as Dial("tcp://...")
// would. It exists for transports that are not dialed by address — the
// load generator's in-memory conns, which carry the 10k+ scale tiers a
// 20k-fd box cannot reach over real sockets.
func DialConn(nc net.Conn, auth stratum.Auth) (*Session, error) {
	t := newTCPTransport(nc)
	s := &Session{Transport: t}
	if err := s.Send(stratum.TypeAuth, auth); err != nil {
		_ = t.Abort()
		return nil, err
	}
	return s, nil
}

func (s *Session) deadline() time.Time {
	if s.Timeout > 0 {
		return time.Now().Add(s.Timeout)
	}
	return time.Time{}
}

// ServerClocked reports whether the dialect pushes jobs unsolicited —
// clients of such a dialect keep mining their current job after an
// accepted share instead of waiting for a reply job.
func (s *Session) ServerClocked() bool { return s.Transport.ServerClocked() }

// Send marshals params into one dialect frame, applying the session
// timeout to the write when one is set.
func (s *Session) Send(msgType string, params interface{}) error {
	return s.Transport.Send(msgType, params, s.deadline())
}

// SendRaw writes data as one dialect frame verbatim.
func (s *Session) SendRaw(data []byte) error {
	return s.Transport.SendRaw(data, s.deadline())
}

// KeepaliveInterval is the cadence at which clients of a server-clocked
// dialect ping during long silences (webminer's grind ticker uses it).
// A server's silence window must comfortably exceed it — the default
// StratumServer window of 90s gives three missed pings of margin.
const KeepaliveInterval = 30 * time.Second

// Keepalive pings a server-clocked pool so its silence window never
// fires while the client is busy (e.g. a long nonce grind); it is a
// no-op for dialects whose server expects no unsolicited client
// traffic. Safe to call from a ticker goroutine concurrent with the
// session's own sends.
func (s *Session) Keepalive() error {
	if !s.Transport.ServerClocked() {
		return nil
	}
	return s.Send(stratum.MethodKeepalive, nil)
}

// Submit reports a found (or replayed) share for the given job.
func (s *Session) Submit(jobID string, nonce uint32, result [32]byte) error {
	return s.Send(stratum.TypeSubmit, stratum.Submit{
		Version: 7, JobID: jobID,
		Nonce:  stratum.EncodeNonce(nonce),
		Result: stratum.EncodeBlob(result[:]),
	})
}

// ReadEnvelope reads the next message in canonical envelope form,
// applying the session timeout when one is set.
func (s *Session) ReadEnvelope() (stratum.Envelope, error) {
	return s.Transport.ReadEnvelope(s.deadline())
}

// Buffered reports whether a ReadEnvelope would return without blocking
// on the network.
func (s *Session) Buffered() bool { return s.Transport.Buffered() }

// Login completes the handshake after Dial: it expects authed followed
// by the first job (exactly what both dialects deliver) and returns
// both. A pool-side rejection surfaces as an error carrying the server's
// text.
func (s *Session) Login() (stratum.Authed, Job, error) {
	var authed stratum.Authed
	gotAuthed := false
	for {
		env, err := s.ReadEnvelope()
		if err != nil {
			return authed, Job{}, err
		}
		switch env.Type {
		case stratum.TypeAuthed:
			if err := env.Decode(&authed); err != nil {
				return authed, Job{}, err
			}
			gotAuthed = true
		case stratum.TypeJob:
			if !gotAuthed {
				return authed, Job{}, errors.New("session: job before authed")
			}
			var j stratum.Job
			if err := env.Decode(&j); err != nil {
				return authed, Job{}, err
			}
			job, err := DecodeJob(j)
			return authed, job, err
		case stratum.TypeBanned:
			return authed, Job{}, ErrBanned
		case stratum.TypeError:
			var e stratum.Error
			_ = env.Decode(&e)
			return authed, Job{}, fmt.Errorf("session: pool rejected login: %s", e.Error)
		default:
			return authed, Job{}, fmt.Errorf("session: unexpected %s during login", env.Type)
		}
	}
}

// Close performs the dialect's closing handshake.
func (s *Session) Close() error { return s.Transport.Close() }

// Abort tears the connection down abruptly, no handshake.
func (s *Session) Abort() error { return s.Transport.Abort() }

// wsTransport is the browser dialect: stratum envelopes in ws text
// frames, client-clocked. The canonical vocabulary IS this dialect's
// wire form, so the codec is nearly free.
type wsTransport struct {
	conn *ws.Conn
}

func dialWS(url string) (*wsTransport, error) {
	conn, err := ws.Dial(url, nil)
	if err != nil {
		return nil, err
	}
	return &wsTransport{conn: conn}, nil
}

func (t *wsTransport) Send(msgType string, params interface{}, deadline time.Time) error {
	data, err := stratum.Marshal(msgType, params)
	if err != nil {
		return err
	}
	return t.SendRaw(data, deadline)
}

func (t *wsTransport) SendRaw(data []byte, deadline time.Time) error {
	if err := t.conn.SetWriteDeadline(deadline); err != nil {
		return err
	}
	return t.conn.WriteMessage(ws.OpText, data)
}

func (t *wsTransport) ReadEnvelope(deadline time.Time) (stratum.Envelope, error) {
	if err := t.conn.SetReadDeadline(deadline); err != nil {
		return stratum.Envelope{}, err
	}
	_, data, err := t.conn.ReadMessage()
	if err != nil {
		return stratum.Envelope{}, err
	}
	return stratum.Unmarshal(data)
}

// Buffered is always false for ws: the dialect is client-clocked, so a
// caller never needs to opportunistically drain it.
func (t *wsTransport) Buffered() bool { return false }

func (t *wsTransport) ServerClocked() bool { return false }

func (t *wsTransport) Close() error { return t.conn.Close() }

func (t *wsTransport) Abort() error { return t.conn.NetConn().Close() }
