// Package session implements the client half of the pool dialect — the
// dial + auth handshake and the job decode (hex, de-obfuscation, nonce
// offset recovery) every miner-side component repeats before it can do
// anything useful. It is shared by the webminer (which then grinds real
// nonces) and the loadgen swarm (which replays pre-ground ones); keeping
// the protocol plumbing in one place is what guarantees the two speak
// the identical dialect the server is tested against.
package session

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/stratum"
	"repro/internal/ws"
)

// Job is a decoded, de-obfuscated PoW input ready for nonce search.
// WireBlob and WireTarget keep the exact strings the pool sent: together
// they identify the PoW input independent of the (refresh-scoped) job ID,
// which is what the loadgen share oracle keys its cache on.
type Job struct {
	ID          string
	Blob        []byte
	Target      uint32
	NonceOffset int
	WireBlob    string
	WireTarget  string
}

// DecodeJob decodes a wire job: hex decode, revert the fixed-offset XOR
// (the step the official miner hides "deep within its WebAssembly"), and
// recover the nonce offset from the header prefix.
func DecodeJob(j stratum.Job) (Job, error) {
	blob, err := stratum.DecodeBlob(j.Blob)
	if err != nil {
		return Job{}, err
	}
	stratum.ObfuscateBlob(blob)
	target, err := stratum.DecodeTarget(j.Target)
	if err != nil {
		return Job{}, err
	}
	off, err := NonceOffset(blob)
	if err != nil {
		return Job{}, err
	}
	return Job{
		ID: j.JobID, Blob: blob, Target: target, NonceOffset: off,
		WireBlob: j.Blob, WireTarget: j.Target,
	}, nil
}

// NonceOffset returns the nonce position in a (de-obfuscated) hashing
// blob by skipping the three leading varints (major, minor, timestamp)
// and the 32-byte prev hash.
func NonceOffset(blob []byte) (int, error) {
	off := 0
	for i := 0; i < 3; i++ {
		for {
			if off >= len(blob) {
				return 0, errors.New("session: truncated blob")
			}
			b := blob[off]
			off++
			if b&0x80 == 0 {
				break
			}
		}
	}
	off += 32 // prev hash
	if off+4+32 > len(blob) {
		return 0, errors.New("session: truncated blob")
	}
	return off, nil
}

// Session is one authenticated miner connection.
type Session struct {
	Conn *ws.Conn
	// Timeout bounds each read; zero means block forever. A load
	// generator sets it so a stalled server surfaces as a counted error
	// instead of a stuck worker.
	Timeout time.Duration
}

// Dial connects to a pool endpoint and sends the auth message. The
// server's authed/job replies are read by Login (or directly via
// ReadEnvelope) so callers can overlap dials.
func Dial(url string, auth stratum.Auth) (*Session, error) {
	conn, err := ws.Dial(url, nil)
	if err != nil {
		return nil, err
	}
	s := &Session{Conn: conn}
	if err := s.Send(stratum.TypeAuth, auth); err != nil {
		conn.Close()
		return nil, err
	}
	return s, nil
}

// Send marshals params into an envelope and writes it as one text frame,
// applying the session timeout to the write when one is set.
func (s *Session) Send(msgType string, params interface{}) error {
	data, err := stratum.Marshal(msgType, params)
	if err != nil {
		return err
	}
	if s.Timeout > 0 {
		if err := s.Conn.SetWriteDeadline(time.Now().Add(s.Timeout)); err != nil {
			return err
		}
	}
	return s.Conn.WriteMessage(ws.OpText, data)
}

// Submit reports a found (or replayed) share for the given job.
func (s *Session) Submit(jobID string, nonce uint32, result [32]byte) error {
	return s.Send(stratum.TypeSubmit, stratum.Submit{
		Version: 7, JobID: jobID,
		Nonce:  stratum.EncodeNonce(nonce),
		Result: stratum.EncodeBlob(result[:]),
	})
}

// ReadEnvelope reads the next message and decodes the outer envelope,
// applying the session timeout when one is set.
func (s *Session) ReadEnvelope() (stratum.Envelope, error) {
	if s.Timeout > 0 {
		if err := s.Conn.SetReadDeadline(time.Now().Add(s.Timeout)); err != nil {
			return stratum.Envelope{}, err
		}
	}
	_, data, err := s.Conn.ReadMessage()
	if err != nil {
		return stratum.Envelope{}, err
	}
	return stratum.Unmarshal(data)
}

// Login completes the handshake after Dial: it expects authed followed
// by the first job (exactly what the pool sends) and returns both. A
// pool-side rejection surfaces as an error carrying the server's text.
func (s *Session) Login() (stratum.Authed, Job, error) {
	var authed stratum.Authed
	gotAuthed := false
	for {
		env, err := s.ReadEnvelope()
		if err != nil {
			return authed, Job{}, err
		}
		switch env.Type {
		case stratum.TypeAuthed:
			if err := env.Decode(&authed); err != nil {
				return authed, Job{}, err
			}
			gotAuthed = true
		case stratum.TypeJob:
			if !gotAuthed {
				return authed, Job{}, errors.New("session: job before authed")
			}
			var j stratum.Job
			if err := env.Decode(&j); err != nil {
				return authed, Job{}, err
			}
			job, err := DecodeJob(j)
			return authed, job, err
		case stratum.TypeError:
			var e stratum.Error
			_ = env.Decode(&e)
			return authed, Job{}, fmt.Errorf("session: pool rejected login: %s", e.Error)
		default:
			return authed, Job{}, fmt.Errorf("session: unexpected %s during login", env.Type)
		}
	}
}

// Close performs the closing handshake.
func (s *Session) Close() error { return s.Conn.Close() }
