package session

import (
	"testing"

	"repro/internal/stratum"
)

// Allocation pins for the per-job decode path: every pushed job crosses
// DecodeJob in each of thousands of concurrent sessions, so its cost is
// part of the swarm's steady-state footprint.

func TestDecodeJobAllocsBounded(t *testing.T) {
	wire := append([]byte(nil), buildBlob([]byte{0x42})...)
	stratum.ObfuscateBlob(wire)
	j := stratum.Job{
		JobID:  "7-3-1",
		Blob:   stratum.EncodeBlob(wire),
		Target: stratum.EncodeTarget(0x00ffffff),
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := DecodeJob(j); err != nil {
			t.Fatal(err)
		}
	})
	// Exactly the returned blob, which the caller owns; everything else
	// (target decode, nonce-offset scan, the Job value) stays on the stack.
	if avg > 1 {
		t.Errorf("DecodeJob: %.1f allocs/op, want <= 1", avg)
	}
}

func TestNonceOffsetZeroAlloc(t *testing.T) {
	blob := buildBlob([]byte{0x80, 0x80, 0x01})
	avg := testing.AllocsPerRun(500, func() {
		if _, err := NonceOffset(blob); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("NonceOffset: %.1f allocs/op, want 0", avg)
	}
	// Rejection is a static error: no allocation on malformed blobs either.
	avg = testing.AllocsPerRun(500, func() {
		if _, err := NonceOffset(blob[:4]); err == nil {
			t.Fatal("accepted truncated blob")
		}
	})
	if avg != 0 {
		t.Errorf("NonceOffset rejection: %.1f allocs/op, want 0", avg)
	}
}
