package core

import (
	"testing"
	"time"

	"repro/internal/blockchain"
	"repro/internal/coinhive"
	"repro/internal/fingerprint"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/webgen"
)

func TestDetectorOnSyntheticPages(t *testing.T) {
	d := NewDetector()

	// A stock-loader coinhive page: both methods fire.
	official := &webgen.Site{
		Domain: "a.org", Rank: 1, Categories: []string{"Gaming"},
		Miner: &webgen.MinerDeployment{
			Family: fingerprint.FamilyCoinhive, Version: 0,
			Token: "tok-aaaaaa", OfficialLoader: true,
		},
	}
	art := webgen.Execute(official)
	det := d.Inspect(PageObservation{FinalHTML: art.FinalHTML, Wasm: art.Wasm, WSHosts: art.WSHosts})
	if !det.BlockListHit || !det.MinerWasm || det.Family != fingerprint.FamilyCoinhive {
		t.Errorf("official loader: %+v", det)
	}
	if det.MissedByBlockList {
		t.Error("official loader marked as missed")
	}

	// A self-hosted deployment: only the Wasm method fires.
	hidden := &webgen.Site{
		Domain: "b.org", Rank: 2, Categories: []string{"Business"},
		Miner: &webgen.MinerDeployment{
			Family: fingerprint.FamilySkencituer, Version: 1,
			Token: "tok-bbbbbb", OfficialLoader: false,
		},
	}
	art = webgen.Execute(hidden)
	det = d.Inspect(PageObservation{FinalHTML: art.FinalHTML, Wasm: art.Wasm, WSHosts: art.WSHosts})
	if det.BlockListHit {
		t.Error("self-hosted loader matched the block list")
	}
	if !det.MinerWasm || !det.MissedByBlockList {
		t.Errorf("self-hosted: %+v", det)
	}

	// A plain page: nothing fires.
	plain := &webgen.Site{Domain: "c.org", Rank: 3, Categories: []string{"News"}}
	art = webgen.Execute(plain)
	det = d.Inspect(PageObservation{FinalHTML: art.FinalHTML})
	if det.BlockListHit || det.MinerWasm {
		t.Errorf("plain page: %+v", det)
	}
}

func TestAttributorEndToEnd(t *testing.T) {
	sim := simclock.New(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC))
	params := blockchain.SimParams()
	params.MinDifficulty = uint64(500e6 * 120)
	chain, err := blockchain.NewChain(params, uint64(sim.Now().Unix()), blockchain.AddressFromString("g"))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := coinhive.NewPool(coinhive.PoolConfig{
		Chain: chain, Wallet: blockchain.AddressFromString("coinhive"), Clock: sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := simnet.Bootstrap(chain, sim); err != nil {
		t.Fatal(err)
	}
	net, err := simnet.New(simnet.Config{
		Sim: sim, Chain: chain, Pool: pool,
		PoolHashRate: 100e6, NetworkHashRate: 500e6, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAttributor(net, chain, pool.NumEndpoints())
	net.Start()
	lastTip := chain.TipID()
	stop := sim.Every(time.Second, func() {
		if tip := chain.TipID(); tip != lastTip {
			lastTip = tip
			a.Collect()
		}
	})
	sim.RunFor(6 * time.Hour)
	stop()

	got := a.Attributed()
	want := pool.FoundBlocks()
	if len(want) == 0 {
		t.Fatal("pool mined nothing in six hours at 20% share")
	}
	if len(got) < len(want)*9/10 {
		t.Errorf("attributed %d of %d", len(got), len(want))
	}
	wallet := blockchain.AddressFromString("coinhive")
	for _, ab := range got {
		if b := chain.BlockByHeight(ab.Height); b == nil || b.Coinbase.To != wallet {
			t.Fatalf("false positive at height %d", ab.Height)
		}
	}
}
