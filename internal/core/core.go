// Package core exposes the paper's two primary contributions behind a
// compact API, assembled from the substrate packages:
//
//   - Detector — the §3.2 WebAssembly fingerprinting method, combined with
//     the NoCoin block-list baseline it is evaluated against. One call
//     classifies a visited page both ways.
//   - Attributor — the §4.2 blockchain-association method: feed it the PoW
//     inputs collected from a pool's endpoints and it proves which chain
//     blocks that pool mined.
//
// Downstream users who only want "detect miners on this page" or "tell me
// which blocks are this pool's" start here; the internal packages remain
// available for finer control.
package core

import (
	"repro/internal/blockchain"
	"repro/internal/fingerprint"
	"repro/internal/htmlx"
	"repro/internal/nocoin"
	"repro/internal/poolwatch"
	"repro/internal/wasm"
)

// PageObservation is everything the instrumented browser hands the
// detector about one visit: the post-execution HTML, every instantiated
// WebAssembly module, and the Websocket endpoints the page dialled.
type PageObservation struct {
	FinalHTML string
	Wasm      [][]byte
	WSHosts   []string
}

// Detection is the combined verdict for a page.
type Detection struct {
	// BlockListHit reports whether the NoCoin list flags the page.
	BlockListHit bool
	// MinerWasm reports whether any Wasm module is mining code.
	MinerWasm bool
	// Family attributes the miner ("" when MinerWasm is false).
	Family string
	// KnownSignature is true on an exact signature-database hit.
	KnownSignature bool
	// MissedByBlockList marks the paper's headline case: a Wasm-confirmed
	// miner the block list does not flag.
	MissedByBlockList bool
}

// Detector bundles the Wasm signature database with a filter list.
type Detector struct {
	DB   *fingerprint.DB
	List *nocoin.List
}

// NewDetector returns a Detector with the reference signature database and
// the bundled NoCoin-equivalent list.
func NewDetector() *Detector {
	return &Detector{DB: fingerprint.ReferenceDB(), List: nocoin.Bundled()}
}

// Inspect classifies one page observation.
func (d *Detector) Inspect(obs PageObservation) Detection {
	var det Detection
	scripts := htmlx.ExtractScripts(obs.FinalHTML)
	refs := make([]nocoin.ScriptRef, len(scripts))
	for i, s := range scripts {
		refs[i] = nocoin.ScriptRef{Src: s.Src, Inline: s.Inline}
	}
	det.BlockListHit = len(d.List.MatchScripts(refs)) > 0
	for _, bin := range obs.Wasm {
		m, err := wasm.Decode(bin)
		if err != nil {
			continue
		}
		v := d.DB.Classify(m, obs.WSHosts)
		if v.Miner {
			det.MinerWasm = true
			det.Family = v.Family
			det.KnownSignature = v.Known
		}
	}
	det.MissedByBlockList = det.MinerWasm && !det.BlockListHit
	return det
}

// Attributor wraps the §4.2 watcher for callers that already have a job
// source and a chain view.
type Attributor struct {
	Watcher *poolwatch.Watcher
}

// NewAttributor builds an attributor polling all the given endpoints.
func NewAttributor(source poolwatch.JobSource, chain *blockchain.Chain, endpoints int) *Attributor {
	return &Attributor{Watcher: poolwatch.New(poolwatch.Config{
		Source: source, Chain: chain, Endpoints: endpoints,
	})}
}

// Collect performs one full polling pass over the pool's endpoints and
// resolves any clusters whose successor block has since appeared (without
// the interleaved sweep, long collections would overflow the bounded
// pending-cluster window and drop attributions).
func (a *Attributor) Collect() {
	a.Watcher.PollAllEndpoints()
	a.Watcher.Sweep()
}

// Attributed resolves collected inputs against the chain and returns the
// blocks proven to belong to the observed pool.
func (a *Attributor) Attributed() []poolwatch.AttributedBlock {
	a.Watcher.Sweep()
	return a.Watcher.Attributed()
}
