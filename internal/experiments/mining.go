package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/blockchain"
	"repro/internal/parallel"
	"repro/internal/poolwatch"
)

// ---------------------------------------------------------------------------
// Figure 5 — Coinhive-mined blocks over four weeks.
// ---------------------------------------------------------------------------

// Fig5Result is the hour-of-day × day block matrix plus daily statistics.
type Fig5Result struct {
	Days          []string
	Matrix        [][24]int
	DailyTotals   []int
	MedianPerDay  float64
	AveragePerDay float64
	OutageDays    []string
	Attributed    int
	PoolTruth     int // pool-side ground truth (not observable in the paper)
}

// RunFig5 runs the §4.2 watcher for four virtual weeks (26 Apr – 24 May
// 2018) against the simulated network with the paper's temporal structure.
func RunFig5(seed int64, tick time.Duration) (Fig5Result, error) {
	var res Fig5Result
	start := time.Date(2018, 4, 26, 0, 0, 0, 0, time.UTC)
	// Lead time covers the difficulty bootstrap so day 1 starts clean.
	w, err := NewWorld(start.Add(-3*time.Hour), PoolHashRate, NetworkHashRate, CoinhiveActivity, seed)
	if err != nil {
		return res, err
	}
	watcher := poolwatch.New(poolwatch.Config{Source: w.Net, Chain: w.Chain})
	w.Net.Start()
	stop := watcher.Run(w.Sim, tick)
	w.Sim.RunUntil(start)

	const days = 28
	for d := 0; d < days; d++ {
		w.Sim.RunFor(24 * time.Hour)
	}
	stop()
	watcher.Sweep()

	attributed := watcher.Attributed()
	res.Attributed = len(attributed)
	res.PoolTruth = len(w.Pool.FoundBlocks())
	res.Days = make([]string, days)
	res.Matrix = make([][24]int, days)
	res.DailyTotals = make([]int, days)
	for d := 0; d < days; d++ {
		res.Days[d] = start.AddDate(0, 0, d).Format("02.01.06")
	}
	for _, ab := range attributed {
		t := time.Unix(int64(ab.Timestamp), 0).UTC()
		d := int(t.Sub(start).Hours() / 24)
		if d < 0 || d >= days {
			continue
		}
		res.Matrix[d][t.Hour()]++
		res.DailyTotals[d]++
	}
	var daily []float64
	for d, n := range res.DailyTotals {
		daily = append(daily, float64(n))
		if n == 0 {
			res.OutageDays = append(res.OutageDays, res.Days[d])
		}
	}
	res.MedianPerDay = analysis.Median(daily)
	res.AveragePerDay = analysis.Mean(daily)
	return res, nil
}

// RunFig5Ensemble runs independent Figure-5 observation campaigns — one
// fully isolated world per seed — on a bounded worker pool. Each world has
// its own clock, chain, pool and watcher, so the runs parallelise
// perfectly; the ensemble quantifies the seed-to-seed variance of the
// stochastic block-arrival process behind the paper's single four-week
// observation.
func RunFig5Ensemble(seeds []int64, tick time.Duration, workers int) ([]Fig5Result, error) {
	results := make([]Fig5Result, len(seeds))
	errs := make([]error, len(seeds))
	parallel.ForEach(len(seeds), workers, func(i int) {
		results[i], errs[i] = RunFig5(seeds[i], tick)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Render prints the Figure 5 heat map.
func (r Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5 — blocks mined by the pool, hour-of-day × day\n")
	b.WriteString(analysis.Heatmap(r.Days, r.Matrix))
	fmt.Fprintf(&b, "median %.1f blocks/day, average %.1f (paper: 8.5 / 9.0)\n",
		r.MedianPerDay, r.AveragePerDay)
	fmt.Fprintf(&b, "attributed %d of %d pool blocks (lower bound, as in the paper)\n",
		r.Attributed, r.PoolTruth)
	if len(r.OutageDays) > 0 {
		fmt.Fprintf(&b, "zero-block days (service disruption): %s\n", strings.Join(r.OutageDays, ", "))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 6 — monthly mining statistics.
// ---------------------------------------------------------------------------

// MonthStats is one Table 6 row.
type MonthStats struct {
	Month        string
	MedianPerDay float64
	AvgPerDay    float64
	HashRateMHs  float64
	XMR          float64
	ShareOfChain float64
}

// Table6Result is the three-month summary.
type Table6Result struct {
	Months []MonthStats
}

// RunTable6 watches the pool over May–July 2018 and derives the monthly
// block counts, implied hash rate and earned XMR.
func RunTable6(seed int64, tick time.Duration) (Table6Result, error) {
	var res Table6Result
	start := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2018, 8, 1, 0, 0, 0, 0, time.UTC)
	w, err := NewWorld(start.Add(-3*time.Hour), PoolHashRate, NetworkHashRate, CoinhiveActivity, seed)
	if err != nil {
		return res, err
	}
	watcher := poolwatch.New(poolwatch.Config{Source: w.Net, Chain: w.Chain})
	w.Net.Start()
	stop := watcher.Run(w.Sim, tick)
	w.Sim.RunUntil(start)
	heightAtStart := w.Chain.Height()
	w.Sim.RunUntil(end)
	stop()
	watcher.Sweep()

	attributed := watcher.Attributed()
	type agg struct {
		daily       map[int]int
		rewards     uint64
		days        int
		chainBlocks float64
	}
	months := map[string]*agg{}
	order := []string{"May", "June", "July"}
	daysIn := map[string]int{"May": 31, "June": 30, "July": 31}
	for _, m := range order {
		months[m] = &agg{daily: map[int]int{}, days: daysIn[m]}
	}
	for _, ab := range attributed {
		t := time.Unix(int64(ab.Timestamp), 0).UTC()
		name := t.Month().String()
		a, ok := months[name]
		if !ok {
			continue
		}
		a.daily[t.Day()]++
		a.rewards += ab.Reward
	}
	// Per-month chain-wide totals for the share column.
	for _, b := range w.Chain.Blocks(heightAtStart+1, w.Chain.Height()+1) {
		t := time.Unix(int64(b.Timestamp), 0).UTC()
		if a, ok := months[t.Month().String()]; ok {
			a.chainBlocks++
		}
	}
	// Hash rate from the difficulty, as the paper derives it: network rate
	// = difficulty / target; pool rate = share × network rate.
	medianDiff := float64(w.Chain.NextDifficulty())
	networkRate := medianDiff / 120
	for _, m := range order {
		a := months[m]
		var daily []float64
		for d := 1; d <= a.days; d++ {
			daily = append(daily, float64(a.daily[d]))
		}
		blocks := 0.0
		for _, v := range daily {
			blocks += v
		}
		share := 0.0
		if a.chainBlocks > 0 {
			share = blocks / a.chainBlocks
		}
		res.Months = append(res.Months, MonthStats{
			Month:        m,
			MedianPerDay: analysis.Median(daily),
			AvgPerDay:    analysis.Mean(daily),
			HashRateMHs:  share * networkRate / 1e6,
			XMR:          float64(a.rewards) / blockchain.AtomicPerXMR,
			ShareOfChain: share,
		})
	}
	return res, nil
}

// Render prints Table 6.
func (r Table6Result) Render() string {
	rows := [][]string{}
	for _, m := range r.Months {
		rows = append(rows, []string{
			m.Month,
			fmt.Sprintf("%.1f", m.MedianPerDay),
			fmt.Sprintf("%.1f", m.AvgPerDay),
			fmt.Sprintf("%.1f", m.HashRateMHs),
			fmt.Sprintf("%.0f", m.XMR),
			fmt.Sprintf("%.2f%%", m.ShareOfChain*100),
		})
	}
	return "Table 6 — monthly mining statistics\n" +
		analysis.Table([]string{"month", "med [blocks/day]", "avg [blocks/day]", "hashrate [MH/s]", "currency [XMR]", "chain share"}, rows)
}

// ---------------------------------------------------------------------------
// §4.2 network-size estimate.
// ---------------------------------------------------------------------------

// NetworkSizeResult covers the in-text §4.2 numbers.
type NetworkSizeResult struct {
	Endpoints        int
	InputsPerPoll    int // distinct PoW inputs seen on one endpoint
	InputsPerBlock   int // distinct PoW inputs across all endpoints
	ImpliedPoolMHs   float64
	UsersAt20Hs      float64
	UsersAt100Hs     float64
	DifficultyMedian float64
}

// RunNetworkSize measures the endpoint topology and derives the
// constantly-mining-user bounds.
func RunNetworkSize(seed int64) (NetworkSizeResult, error) {
	var res NetworkSizeResult
	start := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	w, err := NewWorld(start, PoolHashRate, NetworkHashRate, nil, seed)
	if err != nil {
		return res, err
	}
	full := poolwatch.New(poolwatch.Config{Source: w.Net, Chain: w.Chain})
	one := poolwatch.New(poolwatch.Config{Source: w.Net, Chain: w.Chain, Endpoints: 1, SlotsPerEndpoint: 32})
	w.Net.Start()
	stopA := full.Run(w.Sim, time.Second)
	stopB := one.Run(w.Sim, time.Second)
	w.Sim.RunFor(6 * time.Hour)
	stopA()
	stopB()

	res.Endpoints = w.Pool.NumEndpoints()
	res.InputsPerBlock = full.StatsSnapshot().MaxInputsPerPrev
	res.InputsPerPoll = one.StatsSnapshot().MaxInputsPerPrev
	res.DifficultyMedian = float64(w.Chain.NextDifficulty())
	networkRate := res.DifficultyMedian / 120
	share := PoolHashRate / NetworkHashRate
	res.ImpliedPoolMHs = share * networkRate / 1e6
	res.UsersAt20Hs = res.ImpliedPoolMHs * 1e6 / 20
	res.UsersAt100Hs = res.ImpliedPoolMHs * 1e6 / 100
	return res, nil
}

// Render prints the §4.2 topology and user-bound numbers.
func (r NetworkSizeResult) Render() string {
	var b strings.Builder
	b.WriteString("§4.2 — network size estimation\n")
	fmt.Fprintf(&b, "pool endpoints: %d (paper: 32)\n", r.Endpoints)
	fmt.Fprintf(&b, "distinct PoW inputs, single endpoint: %d (paper: ≤8)\n", r.InputsPerPoll)
	fmt.Fprintf(&b, "distinct PoW inputs, all endpoints:   %d (paper: ≤128)\n", r.InputsPerBlock)
	fmt.Fprintf(&b, "median difficulty: %.3g (paper: 55.4G)\n", r.DifficultyMedian)
	fmt.Fprintf(&b, "implied pool rate: %.1f MH/s (paper: 5.5)\n", r.ImpliedPoolMHs)
	fmt.Fprintf(&b, "constantly mining users: %.0fK @20 H/s … %.0fK @100 H/s (paper: 292K…58K)\n",
		r.UsersAt20Hs/1000, r.UsersAt100Hs/1000)
	return b.String()
}
