package experiments

import (
	"fmt"
	"strings"

	"repro/internal/blockchain"
)

// The paper's closing economics (§4.2 takeaway and §6): Coinhive turns over
// "Moneros worth 150,000 USD per month" at 120 USD/XMR, yet "it remains
// questionable whether mining is a feasible ad alternative" — a question
// this runner quantifies per visitor-hour, the unit ad revenue is priced in.

// EconomicsInput parameterises the revenue model.
type EconomicsInput struct {
	// VisitorHashRate is one browser's rate (paper: 20–100 H/s).
	VisitorHashRate float64
	// NetworkHashRate and BlockReward describe the chain (462 MH/s, ~4.7 XMR).
	NetworkHashRate float64
	BlockRewardXMR  float64
	// XMRUSD is the exchange rate (paper: 120 USD at writing, 400 peak).
	XMRUSD float64
	// PoolFee is the service cut (Coinhive: 0.30).
	PoolFee float64
	// AdRPMUSD is the comparison point: ad revenue per 1000 impressions.
	AdRPMUSD float64
	// PageViewMinutes is the average time a visitor mines per impression.
	PageViewMinutes float64
}

// PaperEconomics returns the paper-era constants.
func PaperEconomics() EconomicsInput {
	return EconomicsInput{
		VisitorHashRate: 20,
		NetworkHashRate: NetworkHashRate,
		BlockRewardXMR:  4.7,
		XMRUSD:          120,
		PoolFee:         0.30,
		AdRPMUSD:        2.0, // a typical display-ad RPM of the era
		PageViewMinutes: 3,
	}
}

// EconomicsResult is the derived revenue comparison.
type EconomicsResult struct {
	Input EconomicsInput
	// USDPerVisitorHour is the site owner's take for one visitor mining
	// for one hour.
	USDPerVisitorHour float64
	// USDPer1000Views is the mining equivalent of ad RPM.
	USDPer1000Views float64
	// AdvantageRatio is mining revenue over ad revenue (>1: mining wins).
	AdvantageRatio float64
	// PoolMonthlyUSD reproduces the paper's "150,000 USD per month" for the
	// whole service at the measured 5.5 MH/s.
	PoolMonthlyUSD float64
}

// RunEconomics evaluates the model.
func RunEconomics(in EconomicsInput) EconomicsResult {
	blocksPerSecond := 1.0 / 120
	networkXMRPerSecond := blocksPerSecond * in.BlockRewardXMR
	// A visitor's expected share of emission is proportional to their share
	// of the network hash rate.
	visitorXMRPerHour := networkXMRPerSecond * 3600 * in.VisitorHashRate / in.NetworkHashRate
	ownerUSDPerHour := visitorXMRPerHour * in.XMRUSD * (1 - in.PoolFee)
	usdPer1000 := ownerUSDPerHour * in.PageViewMinutes / 60 * 1000

	poolXMRPerMonth := networkXMRPerSecond * 86400 * 30 * (PoolHashRate / in.NetworkHashRate)
	res := EconomicsResult{
		Input:             in,
		USDPerVisitorHour: ownerUSDPerHour,
		USDPer1000Views:   usdPer1000,
		PoolMonthlyUSD:    poolXMRPerMonth * in.XMRUSD,
	}
	if in.AdRPMUSD > 0 {
		res.AdvantageRatio = usdPer1000 / in.AdRPMUSD
	}
	return res
}

// Render prints the comparison.
func (r EconomicsResult) Render() string {
	var b strings.Builder
	b.WriteString("§4.2/§6 — mining-vs-ads economics\n")
	fmt.Fprintf(&b, "visitor at %.0f H/s of a %.0f MH/s network, %.2f XMR blocks, %.0f USD/XMR\n",
		r.Input.VisitorHashRate, r.Input.NetworkHashRate/1e6, r.Input.BlockRewardXMR, r.Input.XMRUSD)
	fmt.Fprintf(&b, "site owner earns %.6f USD per visitor-hour (after the %.0f%% pool fee)\n",
		r.USDPerVisitorHour, r.Input.PoolFee*100)
	fmt.Fprintf(&b, "at %.0f-minute page views: %.4f USD per 1000 impressions vs %.2f USD ad RPM\n",
		r.Input.PageViewMinutes, r.USDPer1000Views, r.Input.AdRPMUSD)
	fmt.Fprintf(&b, "mining/ads advantage ratio: %.3f (the paper's scepticism quantified)\n", r.AdvantageRatio)
	fmt.Fprintf(&b, "whole-service turnover at 5.5 MH/s: %.0f USD/month (paper: ~150,000)\n", r.PoolMonthlyUSD)
	return b.String()
}

// MonthlyUSD converts a Table 6 XMR figure at the paper's exchange rate.
func MonthlyUSD(xmr float64) float64 { return xmr * 120 }

// AtomicToXMR converts atomic units.
func AtomicToXMR(a uint64) float64 { return float64(a) / blockchain.AtomicPerXMR }
