package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/browser"
	"repro/internal/crawler"
	"repro/internal/fingerprint"
	"repro/internal/nocoin"
	"repro/internal/rulespace"
	"repro/internal/webgen"
)

// ---------------------------------------------------------------------------
// Figure 2 — NoCoin-detected miners across the TLD populations.
// ---------------------------------------------------------------------------

// Fig2Scan is one (population, scan date) bar of Figure 2.
type Fig2Scan struct {
	TLD          webgen.TLD
	ScanLabel    string
	Probed       int
	Hits         int
	ZoneHits     float64 // extrapolated to real zone size
	FamilyShares map[string]float64
}

// Fig2Result aggregates all bars.
type Fig2Result struct {
	Scans []Fig2Scan
}

// RunFig2 performs the §3.1 static TLS scan over every population, twice
// (the paper scanned each zone on two dates; we use two corpus seeds).
func RunFig2(scale Scale, workers int) Fig2Result {
	var res Fig2Result
	list := nocoin.Bundled()
	sizes := scale.corpusSizes()
	for _, tld := range []webgen.TLD{webgen.TLDAlexa, webgen.TLDCom, webgen.TLDNet, webgen.TLDOrg} {
		for scan, seed := range []uint64{20180111, 20180503} {
			corpus := webgen.Generate(webgen.DefaultConfig(tld, sizes[tld], seed))
			rep := crawler.Scan(corpus, crawler.NewCorpusFetcher(corpus), list, workers)
			shares := map[string]float64{}
			for fam, n := range rep.FamilyCounts {
				shares[fam] = float64(n) / float64(len(rep.Hits))
			}
			res.Scans = append(res.Scans, Fig2Scan{
				TLD:          tld,
				ScanLabel:    fmt.Sprintf("scan-%d", scan+1),
				Probed:       rep.Total,
				Hits:         len(rep.Hits),
				ZoneHits:     float64(len(rep.Hits)) * scale.ExtrapolationFactor(tld),
				FamilyShares: shares,
			})
		}
	}
	return res
}

// Render prints the Figure 2 data as a table.
func (r Fig2Result) Render() string {
	rows := make([][]string, 0, len(r.Scans))
	for _, s := range r.Scans {
		order := analysis.RankDescending(toCounts(s.FamilyShares))
		var fams []string
		for i, e := range order {
			if i >= 5 {
				break
			}
			fams = append(fams, fmt.Sprintf("%s %.0f%%", e.Key, s.FamilyShares[e.Key]*100))
		}
		rows = append(rows, []string{
			string(s.TLD), s.ScanLabel,
			fmt.Sprintf("%d", s.Probed),
			fmt.Sprintf("%d", s.Hits),
			fmt.Sprintf("%.0f", s.ZoneHits),
			fmt.Sprintf("%.4f%%", 100*float64(s.Hits)/float64(s.Probed)),
			strings.Join(fams, ", "),
		})
	}
	return "Figure 2 — NoCoin detected miners per population\n" +
		analysis.Table([]string{"pop", "scan", "probed", "hits", "zone-extrapolated", "share", "top families"}, rows)
}

func toCounts(shares map[string]float64) map[string]int {
	out := map[string]int{}
	for k, v := range shares {
		out[k] = int(v * 1e6)
	}
	return out
}

// ---------------------------------------------------------------------------
// Tables 1–3 — the instrumented browser crawl of Alexa and .org.
// ---------------------------------------------------------------------------

// CrawlOutcome bundles the Chrome-style crawl of one population along with
// the category engine set up for it.
type CrawlOutcome struct {
	TLD    webgen.TLD
	Report browser.Report
	Corpus *webgen.Corpus
	Engine *rulespace.Engine
}

// RunBrowserCrawls executes the §3.2 measurement for Alexa and .org.
func RunBrowserCrawls(scale Scale, workers int) []CrawlOutcome {
	db := fingerprint.ReferenceDB()
	list := nocoin.Bundled()
	sizes := scale.corpusSizes()
	var out []CrawlOutcome
	for _, tld := range []webgen.TLD{webgen.TLDAlexa, webgen.TLDOrg} {
		corpus := webgen.Generate(webgen.DefaultConfig(tld, sizes[tld], 20180501))
		engine := rulespace.NewEngine()
		corpus.RegisterCategories(engine)
		// Table 3's "Categorized" row: RuleSpace covered far more Alexa
		// domains than .org domains.
		engine.SetCoverage(string(webgen.TLDAlexa), 0.77)
		engine.SetCoverage(string(webgen.TLDOrg), 0.48)
		rep := browser.Crawl(corpus, db, list, workers)
		out = append(out, CrawlOutcome{TLD: tld, Report: rep, Corpus: corpus, Engine: engine})
	}
	return out
}

// Table1Result is the top-signature table.
type Table1Result struct {
	Columns []Table1Column
}

// Table1Column is one population's ranking.
type Table1Column struct {
	TLD       webgen.TLD
	Top       []analysis.RankEntry
	TotalWasm int
	MinerWasm int
	MinerFrac float64
}

// Table1From reduces crawl outcomes to Table 1.
func Table1From(crawls []CrawlOutcome) Table1Result {
	var res Table1Result
	for _, c := range crawls {
		ranked := analysis.RankDescending(c.Report.FamilyCounts)
		col := Table1Column{
			TLD:       c.TLD,
			Top:       ranked,
			TotalWasm: c.Report.WasmSites,
			MinerWasm: c.Report.MinerSites,
		}
		if c.Report.WasmSites > 0 {
			col.MinerFrac = float64(c.Report.MinerSites) / float64(c.Report.WasmSites)
		}
		res.Columns = append(res.Columns, col)
	}
	return res
}

// Render prints Table 1.
func (r Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1 — Top WebAssembly signatures\n")
	for _, col := range r.Columns {
		rows := [][]string{}
		for i, e := range col.Top {
			if i >= 5 {
				break
			}
			rows = append(rows, []string{fmt.Sprintf("%d", i+1), e.Key, fmt.Sprintf("%d", e.Count)})
		}
		rows = append(rows, []string{"", "Total WebAssembly", fmt.Sprintf("%d", col.TotalWasm)})
		rows = append(rows, []string{"", "miner fraction", fmt.Sprintf("%.0f%%", col.MinerFrac*100)})
		fmt.Fprintf(&b, "\n[%s]\n%s", col.TLD,
			analysis.Table([]string{"#", "classification", "count"}, rows))
	}
	return b.String()
}

// Table2Result compares NoCoin and the Wasm signatures on the same crawl.
type Table2Result struct {
	Rows []Table2Row
}

// Table2Row is one population's comparison.
type Table2Row struct {
	TLD        webgen.TLD
	NoCoinHits int
	HavingWasm int
	WasmHits   int
	Blocked    int
	Missed     int
	MissedFrac float64
}

// Table2From reduces crawl outcomes to Table 2.
func Table2From(crawls []CrawlOutcome) Table2Result {
	var res Table2Result
	for _, c := range crawls {
		r := c.Report
		res.Rows = append(res.Rows, Table2Row{
			TLD:        c.TLD,
			NoCoinHits: r.NoCoinHits,
			HavingWasm: r.NoCoinHitsWithMinerWasm,
			WasmHits:   r.MinerSites,
			Blocked:    r.MinersBlockedByNoCoin,
			Missed:     r.MinersMissedByNoCoin,
			MissedFrac: r.MissRate(),
		})
	}
	return res
}

// Render prints Table 2.
func (r Table2Result) Render() string {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.TLD),
			fmt.Sprintf("%d", row.NoCoinHits),
			fmt.Sprintf("%d", row.HavingWasm),
			fmt.Sprintf("%d", row.WasmHits),
			fmt.Sprintf("%d", row.Blocked),
			fmt.Sprintf("%d (%.0f%%)", row.Missed, row.MissedFrac*100),
		})
	}
	return "Table 2 — NoCoin vs Wasm-signature detection (post-execution HTML)\n" +
		analysis.Table([]string{"pop", "NoCoin hits", "having Wasm miner", "Wasm hits", "blocked by NoCoin", "missed by NoCoin"}, rows)
}

// Table3Result holds the category rankings.
type Table3Result struct {
	Blocks []Table3Block
}

// Table3Block is one (population, detector) category ranking.
type Table3Block struct {
	TLD         webgen.TLD
	Detector    string // "NoCoin" or "Signature"
	Top         []analysis.RankEntry
	Categorized float64 // fraction of sites RuleSpace could classify
}

// Table3From categorises the detected site sets.
func Table3From(crawls []CrawlOutcome) Table3Result {
	var res Table3Result
	for _, c := range crawls {
		for _, detector := range []string{"NoCoin", "Signature"} {
			counts := map[string]int{}
			total, classified := 0, 0
			for _, v := range c.Report.Verdicts {
				if detector == "NoCoin" && !v.NoCoinHit {
					continue
				}
				if detector == "Signature" && !v.MinerWasm {
					continue
				}
				total++
				cats, ok := c.Engine.Classify(v.Domain)
				if !ok {
					continue
				}
				classified++
				for _, cat := range cats {
					counts[cat]++
				}
			}
			blk := Table3Block{TLD: c.TLD, Detector: detector, Top: analysis.RankDescending(counts)}
			if total > 0 {
				blk.Categorized = float64(classified) / float64(total)
			}
			res.Blocks = append(res.Blocks, blk)
		}
	}
	return res
}

// Render prints Table 3.
func (r Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3 — Top categories (RuleSpace-equivalent engine)\n")
	for _, blk := range r.Blocks {
		rows := [][]string{}
		shareTotal := 0
		for _, e := range blk.Top {
			shareTotal += e.Count
		}
		for i, e := range blk.Top {
			if i >= 5 {
				break
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", i+1), e.Key,
				fmt.Sprintf("%.0f%%", 100*float64(e.Count)/float64(max(1, shareTotal))),
			})
		}
		rows = append(rows, []string{"", "Categorized", fmt.Sprintf("%.0f%%", blk.Categorized*100)})
		fmt.Fprintf(&b, "\n[%s / %s]\n%s", blk.TLD, blk.Detector,
			analysis.Table([]string{"#", "category", "share"}, rows))
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
