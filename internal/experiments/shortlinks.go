package experiments

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/blockchain"
	"repro/internal/coinhive"
	"repro/internal/cryptonight"
	"repro/internal/linkgen"
	"repro/internal/rulespace"
	"repro/internal/simclock"
	"repro/internal/webminer"
)

// linkCorpusSize returns the enumerated link-space size per scale.
func (s Scale) linkCorpusSize() int {
	if s == ScalePaper {
		return linkgen.PaperTotalLinks
	}
	return 200_000
}

// ---------------------------------------------------------------------------
// Figure 3 — links per token.
// ---------------------------------------------------------------------------

// Fig3Result captures the links-per-token distribution.
type Fig3Result struct {
	TotalLinks  int
	TotalTokens int
	Ranked      []analysis.RankEntry // token -> link count, descending
	Top1Share   float64
	Top10Share  float64
}

// RunFig3 enumerates the link space and ranks creators.
func RunFig3(scale Scale) Fig3Result { return RunFig3Links(scale.linkCorpusSize()) }

// RunFig3Links is RunFig3 over a custom link-space size.
func RunFig3Links(n int) Fig3Result {
	specs := linkgen.Generate(linkgen.Default(n))
	counts := map[string]int{}
	for _, s := range specs {
		counts[s.Token]++
	}
	ranked := analysis.RankDescending(counts)
	return Fig3Result{
		TotalLinks:  len(specs),
		TotalTokens: len(ranked),
		Ranked:      ranked,
		Top1Share:   analysis.TopShare(ranked, 1),
		Top10Share:  analysis.TopShare(ranked, 10),
	}
}

// Render prints the Figure 3 summary and the head of the rank curve.
func (r Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — links per token\n")
	fmt.Fprintf(&b, "total links %d across %d tokens\n", r.TotalLinks, r.TotalTokens)
	fmt.Fprintf(&b, "top-1 user owns %.1f%% of links (paper: ~33%%)\n", r.Top1Share*100)
	fmt.Fprintf(&b, "top-10 users own %.1f%% of links (paper: ~85%%)\n", r.Top10Share*100)
	rows := [][]string{}
	for i, e := range r.Ranked {
		if i >= 10 {
			break
		}
		rows = append(rows, []string{fmt.Sprintf("%d", i+1), e.Key, fmt.Sprintf("%d", e.Count)})
	}
	b.WriteString(analysis.Table([]string{"rank", "token", "links"}, rows))
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 4 — required hashes per link.
// ---------------------------------------------------------------------------

// Fig4Result captures both CDFs of Figure 4.
type Fig4Result struct {
	Histogram      []analysis.LogBin
	AllCDF         []analysis.CDFPoint
	UnbiasedCDF    []analysis.CDFPoint
	PAll1024       float64
	PUnbiased1024  float64
	InfeasibleLnks int
}

// RunFig4 computes the hash-price distribution, biased and user-bias-free.
func RunFig4(scale Scale) Fig4Result { return RunFig4Links(scale.linkCorpusSize()) }

// RunFig4Links is RunFig4 over a custom link-space size.
func RunFig4Links(n int) Fig4Result {
	specs := linkgen.Generate(linkgen.Default(n))
	var all []float64
	var allU64 []uint64
	seen := map[string]map[uint64]bool{}
	var unbiased []float64
	infeasible := 0
	for _, s := range specs {
		if s.Hashes == linkgen.InfeasibleHashes {
			infeasible++
			continue
		}
		all = append(all, float64(s.Hashes))
		allU64 = append(allU64, s.Hashes)
		m := seen[s.Token]
		if m == nil {
			m = map[uint64]bool{}
			seen[s.Token] = m
		}
		if !m[s.Hashes] {
			m[s.Hashes] = true
			unbiased = append(unbiased, float64(s.Hashes))
		}
	}
	allCDF := analysis.CDF(all)
	unbCDF := analysis.CDF(unbiased)
	return Fig4Result{
		Histogram:      analysis.LogHistogram(allU64),
		AllCDF:         allCDF,
		UnbiasedCDF:    unbCDF,
		PAll1024:       analysis.PAt(allCDF, 1024),
		PUnbiased1024:  analysis.PAt(unbCDF, 1024),
		InfeasibleLnks: infeasible,
	}
}

// Render prints the Figure 4 series with the duration-at-20 H/s top axis.
func (r Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4 — required hashes per link (duration @20 H/s)\n")
	rows := [][]string{}
	for _, bin := range r.Histogram {
		if bin.Count == 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("2^%d", log2(bin.Lo)),
			analysis.Duration20Hs(float64(bin.Lo)),
			fmt.Sprintf("%d", bin.Count),
		})
	}
	b.WriteString(analysis.Table([]string{"hashes", "@20H/s", "links"}, rows))
	fmt.Fprintf(&b, "P[hashes ≤ 1024] all links:       %.2f (paper: majority <51s)\n", r.PAll1024)
	fmt.Fprintf(&b, "P[hashes ≤ 1024] user-bias freed: %.2f (paper: >2/3)\n", r.PUnbiased1024)
	fmt.Fprintf(&b, "links priced at 10^19 hashes (never resolvable): %d\n", r.InfeasibleLnks)
	return b.String()
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// ---------------------------------------------------------------------------
// Tables 4 & 5 — resolving links with the non-browser miner.
// ---------------------------------------------------------------------------

// ResolveResult covers both destination tables.
type ResolveResult struct {
	SampledTop     int
	ResolvedTop    int
	TopDomains     []analysis.RankEntry // Table 4
	SampledTail    int
	ResolvedTail   int
	TailCategories []analysis.RankEntry // Table 5
	Uncategorized  float64
	HashesComputed int64
}

// RunResolve spins up a live Coinhive clone, creates the link corpus
// against it, and resolves samples by actually mining — the paper's "we
// replicate the working principle of the web miner in a non-web
// implementation" (their run took 61.5M hashes / two days; ours scales the
// hash prices down by HashScale and uses the reduced PoW profile so the
// same pipeline finishes in seconds).
func RunResolve(scale Scale, perUserSample, tailSample int) (ResolveResult, error) {
	var res ResolveResult

	// A live service: chain (difficulty pinned high so shares never mint
	// blocks), pool, HTTP front.
	params := blockchain.SimParams()
	params.MinDifficulty = 1 << 40
	chain, err := blockchain.NewChain(params, 1_525_000_000, blockchain.AddressFromString("genesis"))
	if err != nil {
		return res, err
	}
	pool, err := coinhive.NewPool(coinhive.PoolConfig{
		Chain:               chain,
		Wallet:              blockchain.AddressFromString("coinhive-wallet"),
		Clock:               simclock.New(time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)),
		LinkShareDifficulty: 8,
	})
	if err != nil {
		return res, err
	}
	srv := httptest.NewServer(coinhive.NewServer(pool))
	defer srv.Close()

	cfg := linkgen.Default(scale.linkCorpusSize() / 10)
	cfg.HashScale = 64 // hash-budget scaling, documented in DESIGN.md
	specs := linkgen.Generate(cfg)
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = pool.Links().Create(s.Token, s.URL, s.Hashes)
	}

	engine := rulespace.NewEngine()
	linkgen.RegisterTailDestinations(engine)
	engine.SetCoverage("external", 0.66) // "for roughly 1/3 of the URLs RuleSpace has no classification"

	wsBase := "ws" + strings.TrimPrefix(srv.URL, "http")

	// Sampling happens up front; resolution — the mining — then runs as one
	// concurrent fleet over the pool's endpoints, exactly the shape of the
	// paper's parallel resolver. Links priced at InfeasibleHashes count as
	// sampled but are never mined (several billion years; the paper skipped
	// them too).
	const (
		kindTop = iota
		kindTail
	)
	type sample struct {
		idx  int // index into specs
		kind int
	}
	var samples []sample

	// Table 4: sample links of the top 10 users.
	perUser := map[string][]int{}
	for i, s := range specs {
		if strings.HasPrefix(s.Token, "heavy-") {
			perUser[s.Token] = append(perUser[s.Token], i)
		}
	}
	users := make([]string, 0, len(perUser))
	for u := range perUser {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		idxs := perUser[u]
		for k := 0; k < perUserSample && k < len(idxs); k++ {
			res.SampledTop++
			samples = append(samples, sample{idx: idxs[k*len(idxs)/perUserSample], kind: kindTop})
		}
	}

	// Table 5: the unbiased (per-user deduplicated) tail below 10K hashes.
	taken := 0
	seen := map[string]map[uint64]bool{}
	for i, s := range specs {
		if taken >= tailSample {
			break
		}
		if strings.HasPrefix(s.Token, "heavy-") || s.Hashes >= 10_000/cfg.HashScale+1 {
			continue
		}
		m := seen[s.Token]
		if m == nil {
			m = map[uint64]bool{}
			seen[s.Token] = m
		}
		if m[s.Hashes] {
			continue // user-bias removal
		}
		m[s.Hashes] = true
		taken++
		res.SampledTail++
		samples = append(samples, sample{idx: i, kind: kindTail})
	}

	var tasks []webminer.Task
	var minable []sample
	for _, sm := range samples {
		spec := specs[sm.idx]
		if spec.Hashes == linkgen.InfeasibleHashes {
			continue
		}
		minable = append(minable, sm)
		tasks = append(tasks, webminer.Task{
			URL:     wsBase + "/proxy" + fmt.Sprintf("%d", sm.idx%pool.NumEndpoints()),
			SiteKey: spec.Token,
			LinkID:  ids[sm.idx],
		})
	}
	fleet := &webminer.Fleet{Variant: cryptonight.Test}
	outcomes := fleet.Run(tasks)

	domainCounts := map[string]int{}
	catCounts := map[string]int{}
	classified := 0
	for i, out := range outcomes {
		res.HashesComputed += out.Result.HashesComputed
		if out.Err != nil || out.Result.ResolvedURL == "" {
			continue
		}
		url := out.Result.ResolvedURL
		switch minable[i].kind {
		case kindTop:
			res.ResolvedTop++
			domainCounts[hostOf(url)]++
		case kindTail:
			res.ResolvedTail++
			cats, ok := engine.Classify(url)
			if !ok {
				continue
			}
			classified++
			for _, c := range cats {
				catCounts[c]++
			}
		}
	}
	res.TopDomains = analysis.RankDescending(domainCounts)
	res.TailCategories = analysis.RankDescending(catCounts)
	if res.ResolvedTail > 0 {
		res.Uncategorized = 1 - float64(classified)/float64(res.ResolvedTail)
	}
	return res, nil
}

func hostOf(u string) string {
	s := strings.TrimPrefix(u, "https://")
	s = strings.TrimPrefix(s, "http://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// Render prints Tables 4 and 5.
func (r ResolveResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tables 4 & 5 — link destinations (resolved by mining; %d hashes computed)\n", r.HashesComputed)
	fmt.Fprintf(&b, "\n[Table 4] top-10 users: %d/%d links resolved\n", r.ResolvedTop, r.SampledTop)
	rows := [][]string{}
	for i, e := range r.TopDomains {
		if i >= 10 {
			break
		}
		rows = append(rows, []string{e.Key, fmt.Sprintf("%.1f%%", 100*float64(e.Count)/float64(max(1, r.ResolvedTop)))})
	}
	b.WriteString(analysis.Table([]string{"domain", "freq"}, rows))
	fmt.Fprintf(&b, "\n[Table 5] unbiased tail: %d/%d resolved, %.0f%% uncategorized\n",
		r.ResolvedTail, r.SampledTail, r.Uncategorized*100)
	rows = rows[:0]
	for i, e := range r.TailCategories {
		if i >= 10 {
			break
		}
		rows = append(rows, []string{e.Key, fmt.Sprintf("%d", e.Count)})
	}
	b.WriteString(analysis.Table([]string{"category", "count"}, rows))
	return b.String()
}
