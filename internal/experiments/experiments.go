// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Run* function returns a structured result with a
// Render method producing the paper-style text artefact; cmd/experiments
// runs them all and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"time"

	"repro/internal/blockchain"
	"repro/internal/coinhive"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/webgen"
)

// Scale selects corpus sizes and observation windows.
type Scale int

// Scales.
const (
	// ScaleCI is sized for test suites (seconds).
	ScaleCI Scale = iota
	// ScalePaper runs populations and durations proportional to the paper
	// (minutes).
	ScalePaper
)

// corpusSizes returns per-TLD corpus sizes. The paper's absolute zone
// sizes (116M .com) are infeasible to simulate site-by-site; populations
// are scaled down uniformly and results report both raw counts and
// zone-extrapolated counts.
func (s Scale) corpusSizes() map[webgen.TLD]int {
	if s == ScalePaper {
		return map[webgen.TLD]int{
			webgen.TLDAlexa: 950_000,
			webgen.TLDCom:   2_000_000,
			webgen.TLDNet:   1_000_000,
			webgen.TLDOrg:   2_000_000,
		}
	}
	return map[webgen.TLD]int{
		webgen.TLDAlexa: 120_000,
		webgen.TLDCom:   150_000,
		webgen.TLDNet:   80_000,
		webgen.TLDOrg:   150_000,
	}
}

// zoneSizes are the real populations the paper probed.
var zoneSizes = map[webgen.TLD]float64{
	webgen.TLDAlexa: 950_000,
	webgen.TLDCom:   116_000_000,
	webgen.TLDNet:   12_000_000,
	webgen.TLDOrg:   9_000_000,
}

// ExtrapolationFactor converts a scaled-corpus count to a zone-level count.
func (s Scale) ExtrapolationFactor(tld webgen.TLD) float64 {
	return zoneSizes[tld] / float64(s.corpusSizes()[tld])
}

// World bundles the §4 simulation stack: virtual clock, chain, pool and
// surrounding network.
type World struct {
	Sim   *simclock.Sim
	Chain *blockchain.Chain
	Pool  *coinhive.Pool
	Net   *simnet.Network
}

// Paper-calibrated network constants (§4.2): median difficulty 55.4G at
// the 120 s block target → 462 MH/s network rate; Coinhive ~5.5 MH/s.
const (
	NetworkHashRate = 462e6
	PoolHashRate    = 5.5e6
	// EmissionPreload fixes the block reward in the ~4.7 XMR regime of
	// mid-2018 (Table 6's 1215–1293 XMR/month at 9-10 blocks/day).
	EmissionPreload = 15_980_000 * blockchain.AtomicPerXMR
)

// NewWorld builds a bootstrapped simulation starting at start.
func NewWorld(start time.Time, poolRate, netRate float64, activity func(time.Time) float64, seed int64) (*World, error) {
	sim := simclock.New(start)
	params := blockchain.SimParams()
	params.MinDifficulty = uint64(netRate * 120)
	chain, err := blockchain.NewChain(params, uint64(sim.Now().Unix()), blockchain.AddressFromString("genesis"))
	if err != nil {
		return nil, err
	}
	chain.PreloadEmission(EmissionPreload)
	pool, err := coinhive.NewPool(coinhive.PoolConfig{
		Chain:  chain,
		Wallet: blockchain.AddressFromString("coinhive-wallet"),
		Clock:  sim,
	})
	if err != nil {
		return nil, err
	}
	if err := simnet.Bootstrap(chain, sim); err != nil {
		return nil, err
	}
	net, err := simnet.New(simnet.Config{
		Sim: sim, Chain: chain, Pool: pool,
		PoolHashRate: poolRate, NetworkHashRate: netRate,
		PoolActivity: activity, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &World{Sim: sim, Chain: chain, Pool: pool, Net: net}, nil
}

// CoinhiveActivity reproduces the temporal structure of Figure 5: a flat
// diurnal baseline (global audience), holiday boosts (30 Apr before Labor
// Day, 10 May Ascension, 21/22 May Pentecost), and the 6–7 May service
// disruption. In June the userbase grows slightly (Table 6's 10 blocks/day
// median).
func CoinhiveActivity(t time.Time) float64 {
	// Branch on numeric date components: this runs for every poll and every
	// block arrival, and a time.Format here once dominated the simulation's
	// allocation profile.
	d := t.UTC()
	year, month, day := d.Date()
	if year == 2018 {
		switch {
		case month == time.April && day == 30,
			month == time.May && (day == 10 || day == 21 || day == 22):
			return 1.5 // public holidays: more browsers open
		case month == time.May && day == 6:
			return 0 // service disruption
		case month == time.May && day == 7:
			if d.Hour() < 12 {
				return 0 // disruption tail
			}
			return 1
		}
	}
	if month == time.June {
		return 1.12
	}
	return 1.0
}
