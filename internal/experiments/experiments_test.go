package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/blockchain"
	"repro/internal/fingerprint"
	"repro/internal/rulespace"
	"repro/internal/webgen"
)

func TestFig2ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("8 zone-scale scans")
	}
	res := RunFig2(ScaleCI, 8)
	if len(res.Scans) != 8 { // 4 populations × 2 scan dates
		t.Fatalf("scans = %d", len(res.Scans))
	}
	for _, s := range res.Scans {
		if s.TLD != webgen.TLDAlexa {
			continue
		}
		share := float64(s.Hits) / float64(s.Probed)
		// Paper: Alexa has the largest share, ~0.07%.
		if share < 0.0004 || share > 0.0012 {
			t.Errorf("%s %s: share = %.5f, want ~0.0007", s.TLD, s.ScanLabel, share)
		}
		if s.FamilyShares["coinhive"] < 0.5 {
			t.Errorf("%s %s: coinhive share %.2f, want dominant (paper >75%%)",
				s.TLD, s.ScanLabel, s.FamilyShares["coinhive"])
		}
	}
	if !strings.Contains(res.Render(), "coinhive") {
		t.Error("render lacks family shares")
	}
}

func TestBrowserCrawlTables(t *testing.T) {
	if testing.Short() {
		t.Skip("two instrumented-browser crawls")
	}
	crawls := RunBrowserCrawls(ScaleCI, 8)
	if len(crawls) != 2 {
		t.Fatalf("crawls = %d", len(crawls))
	}

	t1 := Table1From(crawls)
	for _, col := range t1.Columns {
		if len(col.Top) == 0 || col.Top[0].Key != fingerprint.FamilyCoinhive {
			t.Errorf("[%s] top family = %+v, want coinhive", col.TLD, col.Top[:1])
		}
		// Paper: ~96% Alexa / ~92% .org of Wasm sites are miners.
		if col.MinerFrac < 0.80 {
			t.Errorf("[%s] miner fraction = %.2f, want > 0.80", col.TLD, col.MinerFrac)
		}
	}

	t2 := Table2From(crawls)
	for _, row := range t2.Rows {
		// Identities that must hold exactly.
		if row.Blocked+row.Missed != row.WasmHits {
			t.Errorf("[%s] blocked+missed != wasm hits", row.TLD)
		}
		if row.HavingWasm != row.Blocked {
			t.Errorf("[%s] NoCoin∩Wasm %d != blocked %d", row.TLD, row.HavingWasm, row.Blocked)
		}
		// Paper: 82% (Alexa) and 67% (.org) missed. CI-scale corpora carry
		// sampling noise; require the qualitative conclusion.
		lo, hi := 0.70, 0.95
		if row.TLD == webgen.TLDOrg {
			lo, hi = 0.50, 0.85
		}
		if row.MissedFrac < lo || row.MissedFrac > hi {
			t.Errorf("[%s] missed = %.2f, want in [%.2f, %.2f]", row.TLD, row.MissedFrac, lo, hi)
		}
		if row.NoCoinHits <= row.HavingWasm {
			t.Errorf("[%s] no NoCoin-only population (false positives missing)", row.TLD)
		}
	}

	t3 := Table3From(crawls)
	if len(t3.Blocks) != 4 {
		t.Fatalf("table3 blocks = %d", len(t3.Blocks))
	}
	for _, blk := range t3.Blocks {
		if len(blk.Top) == 0 {
			t.Errorf("[%s/%s] no categories", blk.TLD, blk.Detector)
			continue
		}
		switch {
		case blk.TLD == webgen.TLDAlexa && blk.Detector == "Signature":
			if blk.Top[0].Key != rulespace.CatPorn {
				t.Errorf("alexa/signature top = %s, want Pornography", blk.Top[0].Key)
			}
		case blk.TLD == webgen.TLDAlexa && blk.Detector == "NoCoin":
			if blk.Top[0].Key != rulespace.CatGaming {
				t.Errorf("alexa/nocoin top = %s, want Gaming", blk.Top[0].Key)
			}
		case blk.Detector == "NoCoin":
			// The .org NoCoin population is tiny at CI scale (~16 sites);
			// require only that Gaming ranks among the leaders.
			found := false
			for i, e := range blk.Top {
				if i < 5 && e.Key == rulespace.CatGaming {
					found = true
				}
			}
			if !found {
				t.Errorf("[%s]/nocoin top5 lacks Gaming: %+v", blk.TLD, blk.Top)
			}
		}
		// Coverage gap: .org categorisation must trail Alexa.
		if blk.TLD == webgen.TLDOrg && blk.Categorized > 0.65 {
			t.Errorf("org categorized = %.2f, want < 0.65 (paper: 42-54%%)", blk.Categorized)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	res := RunFig3(ScaleCI)
	if res.Top1Share < 0.28 || res.Top1Share > 0.38 {
		t.Errorf("top1 = %.3f, want ~1/3", res.Top1Share)
	}
	if res.Top10Share < 0.80 || res.Top10Share > 0.90 {
		t.Errorf("top10 = %.3f, want ~0.85", res.Top10Share)
	}
	if res.TotalTokens < 1000 {
		t.Errorf("tokens = %d, want a long tail", res.TotalTokens)
	}
}

func TestFig4Shape(t *testing.T) {
	res := RunFig4(ScaleCI)
	if res.PAll1024 < 0.55 {
		t.Errorf("P[≤1024] all = %.2f, want majority", res.PAll1024)
	}
	if res.PUnbiased1024 < 0.60 {
		t.Errorf("P[≤1024] unbiased = %.2f, want > 2/3-ish", res.PUnbiased1024)
	}
	// The heavy-user bias must be visible: the biased CDF sits above the
	// unbiased one at the 512 spike.
	if res.InfeasibleLnks == 0 {
		t.Error("no infeasible links")
	}
	if !strings.Contains(res.Render(), "Gyr") && !strings.Contains(res.Render(), "yr") {
		t.Log(res.Render())
	}
}

func TestResolveSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("mines a fleet of links end to end")
	}
	res, err := RunResolve(ScaleCI, 6, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResolvedTop < res.SampledTop*8/10 {
		t.Errorf("top resolution rate %d/%d", res.ResolvedTop, res.SampledTop)
	}
	// youtu.be must appear among the destinations (Table 4's top row).
	foundYoutube := false
	for _, e := range res.TopDomains {
		if e.Key == "youtu.be" {
			foundYoutube = true
		}
	}
	if !foundYoutube {
		t.Errorf("youtu.be missing from top destinations: %+v", res.TopDomains)
	}
	if res.ResolvedTail == 0 || len(res.TailCategories) == 0 {
		t.Error("tail resolution produced no categories")
	}
	if res.HashesComputed == 0 {
		t.Error("resolution did not hash — the mining path was bypassed")
	}
}

func TestNetworkSizeTopology(t *testing.T) {
	res, err := RunNetworkSize(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Endpoints != 32 || res.InputsPerPoll != 8 || res.InputsPerBlock != 128 {
		t.Errorf("topology = %d endpoints / %d per-endpoint / %d per-block, want 32/8/128",
			res.Endpoints, res.InputsPerPoll, res.InputsPerBlock)
	}
	if res.ImpliedPoolMHs < 4.5 || res.ImpliedPoolMHs > 6.5 {
		t.Errorf("pool rate = %.2f MH/s, want ~5.5", res.ImpliedPoolMHs)
	}
	if res.UsersAt20Hs < 200_000 || res.UsersAt100Hs > 80_000 {
		t.Errorf("user bounds = %.0f / %.0f, want ~292K / ~58K", res.UsersAt20Hs, res.UsersAt100Hs)
	}
}

func TestFig5FourWeeks(t *testing.T) {
	if testing.Short() {
		t.Skip("four virtual weeks of polling")
	}
	res, err := RunFig5(1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.MedianPerDay < 6.5 || res.MedianPerDay > 11 {
		t.Errorf("median = %.1f blocks/day, want ~8.5", res.MedianPerDay)
	}
	// The 6 May disruption must show as a zero-block day.
	foundOutage := false
	for _, d := range res.OutageDays {
		if d == "06.05.18" {
			foundOutage = true
		}
	}
	if !foundOutage {
		t.Errorf("outage days = %v, want 06.05.18 included", res.OutageDays)
	}
	// Attribution is a tight lower bound on the pool's real production.
	if res.Attributed < res.PoolTruth*9/10 {
		t.Errorf("attributed %d of %d", res.Attributed, res.PoolTruth)
	}
	// Holiday boosts: 30 Apr (index 4) should exceed the 28-day median.
	if float64(res.DailyTotals[4]) < res.MedianPerDay {
		t.Logf("note: 30 Apr total %d not above median %.1f (stochastic)", res.DailyTotals[4], res.MedianPerDay)
	}
}

func TestFig5EnsembleMatchesSingleRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("two four-week campaigns")
	}
	// A coarse 15 s poll tick keeps the two campaigns cheap; at the 120 s
	// block target the watcher still samples every tip several times.
	seeds := []int64{1, 5}
	results, err := RunFig5Ensemble(seeds, 15*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(seeds) {
		t.Fatalf("results = %d, want %d", len(results), len(seeds))
	}
	for i, r := range results {
		if r.MedianPerDay < 5 || r.MedianPerDay > 13 {
			t.Errorf("seed %d: median = %.1f blocks/day, want ~8.5", seeds[i], r.MedianPerDay)
		}
		if r.Attributed < r.PoolTruth*8/10 {
			t.Errorf("seed %d: attributed %d of %d", seeds[i], r.Attributed, r.PoolTruth)
		}
	}
	// Different seeds must produce genuinely different campaigns.
	if results[0].DailyTotals[0] == results[1].DailyTotals[0] &&
		results[0].DailyTotals[10] == results[1].DailyTotals[10] &&
		results[0].DailyTotals[20] == results[1].DailyTotals[20] {
		t.Error("ensemble runs look identical; worlds may share state")
	}
}

func TestCoinhiveActivityShape(t *testing.T) {
	if CoinhiveActivity(time.Date(2018, 5, 6, 10, 0, 0, 0, time.UTC)) != 0 {
		t.Error("May 6 outage missing")
	}
	if CoinhiveActivity(time.Date(2018, 5, 7, 3, 0, 0, 0, time.UTC)) != 0 {
		t.Error("May 7 morning outage missing")
	}
	if CoinhiveActivity(time.Date(2018, 5, 7, 18, 0, 0, 0, time.UTC)) != 1 {
		t.Error("May 7 evening should be back up")
	}
	if CoinhiveActivity(time.Date(2018, 4, 30, 12, 0, 0, 0, time.UTC)) <= 1 {
		t.Error("Labor Day eve boost missing")
	}
	if CoinhiveActivity(time.Date(2018, 6, 15, 12, 0, 0, 0, time.UTC)) <= 1 {
		t.Error("June growth missing")
	}
}

func TestScaleExtrapolation(t *testing.T) {
	f := ScaleCI.ExtrapolationFactor(webgen.TLDCom)
	if f < 100 { // 116M over a CI corpus must scale up heavily
		t.Errorf("com extrapolation = %.0f", f)
	}
	if p := ScalePaper.ExtrapolationFactor(webgen.TLDAlexa); p != 1 {
		t.Errorf("paper-scale alexa extrapolation = %.2f, want 1", p)
	}
}

func TestEconomicsModel(t *testing.T) {
	res := RunEconomics(PaperEconomics())
	// The paper's headline: the whole service turns over ~150K USD/month.
	if res.PoolMonthlyUSD < 100_000 || res.PoolMonthlyUSD > 220_000 {
		t.Errorf("pool monthly = %.0f USD, want ~150K", res.PoolMonthlyUSD)
	}
	// And the scepticism: per-impression mining revenue is far below ad RPM
	// at laptop hash rates (the "huge hurdle" of §6).
	if res.AdvantageRatio >= 1 {
		t.Errorf("advantage ratio = %.3f; the paper's conclusion implies << 1", res.AdvantageRatio)
	}
	if res.USDPerVisitorHour <= 0 {
		t.Error("visitor-hour revenue must be positive")
	}
	// Sanity: more hash power, more revenue, linearly.
	in := PaperEconomics()
	in.VisitorHashRate = 100
	res100 := RunEconomics(in)
	ratio := res100.USDPerVisitorHour / res.USDPerVisitorHour
	if ratio < 4.9 || ratio > 5.1 {
		t.Errorf("revenue not linear in hash rate: ×%.2f for ×5 rate", ratio)
	}
}

func TestAtomicConversions(t *testing.T) {
	if got := AtomicToXMR(blockchain.AtomicPerXMR); got != 1 {
		t.Errorf("1 XMR = %v", got)
	}
	if got := MonthlyUSD(1250); got != 150_000 {
		t.Errorf("1250 XMR = %v USD, want 150000", got)
	}
}
