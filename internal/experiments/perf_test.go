package experiments_test

import (
	"testing"

	"repro/internal/benchcore"
)

// BenchmarkFig5Day runs one simulated day of the Figure 5 observation
// campaign — network, pool, and watcher — per iteration. It is the
// end-to-end number the hash-core and event-loop optimisations target, and
// is cheap enough to stay -short-safe. The body lives in
// internal/benchcore, shared with cmd/bench / BENCH_core.json.
func BenchmarkFig5Day(b *testing.B) { benchcore.Fig5Day(b) }
