package fingerprint

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strings"
	"sync"

	"repro/internal/wasm"
)

// Signature identifies a Wasm assembly: SHA-256 over the module's function
// bodies "combining (in a strict order) and then hashing the contained
// functions" (§3.2). Only code bodies enter the hash, so cosmetic
// differences in names, exports or data segments do not split signatures —
// but any reordering or change of a single function body does.
type Signature [32]byte

// SignatureOf computes the signature of a decoded module.
func SignatureOf(m *wasm.Module) Signature {
	h := sha256.New()
	var lenBuf [8]byte
	for _, c := range m.Codes {
		// Length-prefix each body so (A,BC) never collides with (AB,C).
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(c.Body)))
		h.Write(lenBuf[:])
		h.Write(c.Body)
	}
	var sig Signature
	copy(sig[:], h.Sum(nil))
	return sig
}

// Entry is one assembly in the signature database.
type Entry struct {
	Sig     Signature
	Family  string
	Version int
	Miner   bool
}

// Verdict is the classification result for one captured module.
type Verdict struct {
	Miner    bool
	Family   string
	Known    bool // exact signature hit
	Features wasm.Features
}

// DB is the signature database plus the heuristics used when no signature
// matches. It is safe for concurrent lookups.
type DB struct {
	mu      sync.RWMutex
	entries map[Signature]Entry
	// backends maps a pool endpoint domain suffix to a family name, used to
	// attribute unknown miners by their Websocket backend.
	backends map[string]string
	// hints maps a function-name fragment to a family; hintList holds the
	// same fragments sorted longest-first (ties lexicographic), the order
	// the attribution scan probes them in. Longest-first means the scan can
	// stop at the first hit per document and prune the whole tail once any
	// match bounds the remaining fragments.
	hints    map[string]string
	hintList []hintEntry
}

// hintEntry is one (fragment, family) pair of the sorted hint scan list.
type hintEntry struct {
	frag   string
	family string
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		entries:  map[Signature]Entry{},
		backends: map[string]string{},
		hints:    map[string]string{},
	}
}

// Register adds an assembly to the database.
func (db *DB) Register(e Entry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries[e.Sig] = e
}

// RegisterBackend associates a Websocket backend domain with a family.
func (db *DB) RegisterBackend(domain, family string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.backends[strings.ToLower(domain)] = family
}

// RegisterHint associates a function-name fragment with a family. The
// first registration for a fragment wins; catalog order thus encodes
// attribution priority for shared symbols (Coinhive and its consent-asking
// Authedmine variant ship the same hash kernel symbol).
func (db *DB) RegisterHint(fragment, family string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	frag := strings.ToLower(fragment)
	if _, taken := db.hints[frag]; taken {
		return
	}
	db.hints[frag] = family
	// Insert in scan order: longest fragment first, ties lexicographic.
	i := sort.Search(len(db.hintList), func(i int) bool {
		e := db.hintList[i]
		if len(e.frag) != len(frag) {
			return len(e.frag) < len(frag)
		}
		return e.frag >= frag
	})
	db.hintList = append(db.hintList, hintEntry{})
	copy(db.hintList[i+1:], db.hintList[i:])
	db.hintList[i] = hintEntry{frag: frag, family: family}
}

// Len reports the number of registered assemblies.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Lookup returns the entry for an exact signature match.
func (db *DB) Lookup(sig Signature) (Entry, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.entries[sig]
	return e, ok
}

// Heuristic thresholds, chosen to separate hash-function bodies from the
// benign corpus (see TestHeuristicSeparation). A hash kernel's XOR density
// per *instruction* is lower than per *operation* because every ALU op is
// bracketed by local.get/local.set traffic; the thresholds account for that
// ~3.5× dilution.
const (
	minMixRatio  = 0.07  // XOR/shift/rotate fraction of all instructions
	minMemRatio  = 0.025 // loads+stores fraction of all instructions
	minerMinOps  = 500   // total instructions
	minerMinPage = 4     // linear memory pages (scratchpad evidence)
)

// Classify decides whether a module is a miner and attributes a family.
// wsHosts lists the Websocket endpoints the embedding page dialled while
// the module ran (from the browser instrumentation); it may be nil.
func (db *DB) Classify(m *wasm.Module, wsHosts []string) Verdict {
	feats, err := wasm.ExtractFeatures(m)
	if err != nil {
		return Verdict{Family: FamilyBenign}
	}
	v := Verdict{Features: feats}

	if e, ok := db.Lookup(SignatureOf(m)); ok {
		v.Known = true
		v.Miner = e.Miner
		v.Family = e.Family
		if !e.Miner {
			v.Family = FamilyBenign
		}
		return v
	}

	// Heuristic: hash kernels are XOR/shift-dense, touch memory a lot and
	// need a scratchpad-sized linear memory.
	looksMiner := feats.MixRatio() >= minMixRatio &&
		feats.MemoryRatio() >= minMemRatio &&
		feats.Ops >= minerMinOps &&
		feats.Pages >= minerMinPage
	if !looksMiner {
		v.Family = FamilyBenign
		return v
	}
	v.Miner = true

	// Attribute the family. The Websocket backend is checked first — the
	// paper's strongest distinguishing feature — and function-name hints
	// second. Hint matching picks the longest matching fragment so that a
	// specific symbol beats a generic substring deterministically.
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, host := range wsHosts {
		low := strings.ToLower(host)
		for dom, fam := range db.backends {
			if low == dom || strings.HasSuffix(low, "."+dom) {
				v.Family = fam
				return v
			}
		}
	}
	// Each name is lowercased exactly once and scanned against the
	// longest-first hint list: fragments no longer than the best match so
	// far cannot improve it (prune the tail), fragments longer than the
	// name cannot occur in it (skip), and the first hit per name is by
	// construction its longest, so the scan stops there.
	bestLen := 0
	for _, name := range m.Names {
		low := strings.ToLower(name)
		for _, he := range db.hintList {
			if len(he.frag) <= bestLen {
				break
			}
			if len(he.frag) > len(low) {
				continue
			}
			if strings.Contains(low, he.frag) {
				bestLen = len(he.frag)
				v.Family = he.family
				break
			}
		}
	}
	if bestLen > 0 {
		return v
	}
	// Unattributed miners are labelled by their transport, as in Table 1.
	v.Family = FamilyUnknownWSS
	return v
}

// ReferenceDB builds the full ~160-assembly database from the catalog,
// including backend and name-hint tables. The Fig. 2/Table 1 experiments
// use this as "our Miner Wasm signature database".
func ReferenceDB() *DB {
	db := NewDB()
	for _, spec := range Catalog() {
		for v := 0; v < spec.Versions; v++ {
			db.Register(Entry{
				Sig:     SignatureOf(ModuleFor(spec, v)),
				Family:  spec.Name,
				Version: v,
				Miner:   spec.Miner,
			})
		}
		if spec.Backend != "" {
			db.RegisterBackend(spec.Backend, spec.Name)
		}
		if spec.NameHint != "" && spec.Miner {
			db.RegisterHint(spec.NameHint, spec.Name)
		}
	}
	return db
}

// PartialDB builds a database that knows only every skipEvery-th version of
// each family. The Table 2-style ablation uses it to measure how much the
// heuristic layer recovers when the signature corpus is incomplete.
func PartialDB(skipEvery int) *DB {
	db := NewDB()
	for _, spec := range Catalog() {
		for v := 0; v < spec.Versions; v++ {
			if skipEvery > 1 && v%skipEvery != 0 {
				continue
			}
			db.Register(Entry{
				Sig:     SignatureOf(ModuleFor(spec, v)),
				Family:  spec.Name,
				Version: v,
				Miner:   spec.Miner,
			})
		}
		if spec.Backend != "" {
			db.RegisterBackend(spec.Backend, spec.Name)
		}
		if spec.NameHint != "" && spec.Miner {
			db.RegisterHint(spec.NameHint, spec.Name)
		}
	}
	return db
}

// TopFamilies tallies verdicts by family and returns (family, count) pairs
// sorted descending — the shape of the paper's Table 1.
func TopFamilies(verdicts []Verdict) []FamilyCount {
	counts := map[string]int{}
	for _, v := range verdicts {
		if v.Miner {
			counts[v.Family]++
		}
	}
	out := make([]FamilyCount, 0, len(counts))
	for f, c := range counts {
		out = append(out, FamilyCount{Family: f, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Family < out[j].Family
	})
	return out
}

// FamilyCount is one Table 1 row.
type FamilyCount struct {
	Family string
	Count  int
}
