package fingerprint

import (
	"fmt"
	"testing"

	"repro/internal/wasm"
)

func TestSignatureStableAcrossCosmeticChanges(t *testing.T) {
	spec, _ := SpecByName(FamilyCoinhive)
	m1 := ModuleFor(spec, 0)
	m2 := ModuleFor(spec, 0)
	if SignatureOf(m1) != SignatureOf(m2) {
		t.Fatal("same assembly, different signature")
	}
	// Renaming functions or exports must not change the signature: only
	// function bodies are hashed.
	m2.Names = map[uint32]string{3: "totally_not_a_miner"}
	m2.Exports = []wasm.Export{{Name: "decoy", Kind: wasm.ExtFunc, Index: 1}}
	if SignatureOf(m1) != SignatureOf(m2) {
		t.Error("cosmetic rename changed the signature")
	}
}

func TestSignatureSensitiveToBodies(t *testing.T) {
	spec, _ := SpecByName(FamilyCoinhive)
	m1 := ModuleFor(spec, 0)
	m2 := ModuleFor(spec, 0)
	// Flip one instruction byte in one body.
	m2.Codes[2].Body[10] ^= 0x01
	if SignatureOf(m1) == SignatureOf(m2) {
		t.Error("body mutation kept the signature")
	}
	// Reordering functions must change the signature (strict order).
	m3 := ModuleFor(spec, 0)
	m3.Codes[0], m3.Codes[1] = m3.Codes[1], m3.Codes[0]
	if SignatureOf(m1) == SignatureOf(m3) {
		t.Error("function reorder kept the signature")
	}
}

func TestSignatureLengthPrefixPreventsSplicing(t *testing.T) {
	// Two modules whose concatenated bodies are equal but split differently
	// must not collide.
	a := &wasm.Module{Codes: []wasm.Code{{Body: []byte{1, 2}}, {Body: []byte{3}}}}
	b := &wasm.Module{Codes: []wasm.Code{{Body: []byte{1}}, {Body: []byte{2, 3}}}}
	if SignatureOf(a) == SignatureOf(b) {
		t.Error("splice collision")
	}
}

func TestCatalogSize(t *testing.T) {
	total := 0
	miners := 0
	for _, f := range Catalog() {
		total += f.Versions
		if f.Miner {
			miners += f.Versions
		}
	}
	// The paper: "a database of ~160 different assemblies"; most are miners.
	if total < 150 || total > 175 {
		t.Errorf("catalog holds %d assemblies, want ~160", total)
	}
	if frac := float64(miners) / float64(total); frac < 0.85 {
		t.Errorf("miner fraction %.2f too low (paper: ~96%% of Wasm are miners)", frac)
	}
}

func TestReferenceDBCoversCatalog(t *testing.T) {
	db := ReferenceDB()
	want := 0
	for _, f := range Catalog() {
		want += f.Versions
	}
	if db.Len() != want {
		t.Errorf("db has %d entries, want %d", db.Len(), want)
	}
	// Every catalog module must hit exactly, with the right family.
	for _, spec := range Catalog() {
		for v := 0; v < spec.Versions; v++ {
			e, ok := db.Lookup(SignatureOf(ModuleFor(spec, v)))
			if !ok {
				t.Fatalf("%s v%d not found", spec.Name, v)
			}
			if e.Family != spec.Name || e.Miner != spec.Miner {
				t.Errorf("%s v%d: entry %+v", spec.Name, v, e)
			}
		}
	}
}

func TestClassifyExactHit(t *testing.T) {
	db := ReferenceDB()
	spec, _ := SpecByName(FamilyCryptoloot)
	v := db.Classify(ModuleFor(spec, 3), nil)
	if !v.Known || !v.Miner || v.Family != FamilyCryptoloot {
		t.Errorf("verdict = %+v", v)
	}
}

func TestClassifyBenignExactHit(t *testing.T) {
	db := ReferenceDB()
	spec, _ := SpecByName("image-codec")
	v := db.Classify(ModuleFor(spec, 0), nil)
	if v.Miner || v.Family != FamilyBenign {
		t.Errorf("verdict = %+v", v)
	}
}

func TestClassifyUnknownMinerByNameHint(t *testing.T) {
	db := ReferenceDB()
	spec, _ := SpecByName(FamilyCoinhive)
	m := ModuleFor(spec, 0)
	m.Codes[0].Body[5] ^= 0xFF // break the signature
	m.Names = map[uint32]string{1: "__Z16cryptonight_hashPKc"}
	v := db.Classify(m, nil)
	if v.Known {
		t.Error("mutated module matched exactly")
	}
	if !v.Miner || v.Family != FamilyCoinhive {
		t.Errorf("verdict = %+v, want heuristic coinhive", v)
	}
}

func TestClassifyUnknownMinerByBackend(t *testing.T) {
	db := ReferenceDB()
	spec, _ := SpecByName(FamilySkencituer) // no name hint
	m := ModuleFor(spec, 0)
	m.Codes[0].Body[5] ^= 0xFF
	m.Names = nil
	v := db.Classify(m, []string{"ws005.skencituer.com"})
	if !v.Miner || v.Family != FamilySkencituer {
		t.Errorf("verdict = %+v, want backend-attributed skencituer", v)
	}
}

func TestClassifyUnknownMinerFallsBackToUnknownWSS(t *testing.T) {
	db := ReferenceDB()
	spec, _ := SpecByName(FamilySkencituer)
	m := ModuleFor(spec, 0)
	m.Codes[0].Body[5] ^= 0xFF
	m.Names = nil
	v := db.Classify(m, []string{"ws.never-seen-pool.io"})
	if !v.Miner || v.Family != FamilyUnknownWSS {
		t.Errorf("verdict = %+v, want UnknownWSS", v)
	}
}

func TestHeuristicSeparation(t *testing.T) {
	// With an *empty* signature DB, the pure heuristic must still separate
	// every miner family from every benign family in the catalog.
	db := NewDB()
	for _, spec := range Catalog() {
		for v := 0; v < spec.Versions; v++ {
			verdict := db.Classify(ModuleFor(spec, v), nil)
			if verdict.Miner != spec.Miner {
				t.Errorf("%s v%d: heuristic says miner=%v, want %v (mix=%.3f mem=%.3f ops=%d pages=%d)",
					spec.Name, v, verdict.Miner, spec.Miner,
					verdict.Features.MixRatio(), verdict.Features.MemoryRatio(),
					verdict.Features.Ops, verdict.Features.Pages)
			}
		}
	}
}

func TestPartialDBStillClassifiesViaHeuristics(t *testing.T) {
	db := PartialDB(4) // knows every 4th version only
	spec, _ := SpecByName(FamilyCoinhive)
	known, heuristic := 0, 0
	for v := 0; v < spec.Versions; v++ {
		verdict := db.Classify(ModuleFor(spec, v), []string{"ws1.coinhive.com"})
		if !verdict.Miner {
			t.Fatalf("v%d not detected at all", v)
		}
		if verdict.Known {
			known++
		} else {
			heuristic++
		}
		if verdict.Family != FamilyCoinhive {
			t.Errorf("v%d attributed to %s", v, verdict.Family)
		}
	}
	if known == 0 || heuristic == 0 {
		t.Errorf("expected a mix of exact and heuristic hits, got %d/%d", known, heuristic)
	}
}

func TestTopFamiliesOrdering(t *testing.T) {
	verdicts := []Verdict{
		{Miner: true, Family: "coinhive"},
		{Miner: true, Family: "coinhive"},
		{Miner: true, Family: "cryptoloot"},
		{Miner: false, Family: "benign"},
	}
	top := TopFamilies(verdicts)
	if len(top) != 2 || top[0].Family != "coinhive" || top[0].Count != 2 {
		t.Errorf("top = %+v", top)
	}
}

func BenchmarkSignatureOf(b *testing.B) {
	spec, _ := SpecByName(FamilyCoinhive)
	m := ModuleFor(spec, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SignatureOf(m)
	}
}

func BenchmarkClassifyExact(b *testing.B) {
	db := ReferenceDB()
	spec, _ := SpecByName(FamilyCoinhive)
	m := ModuleFor(spec, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Classify(m, nil)
	}
}

func TestHintScanLongestFragmentWins(t *testing.T) {
	db := NewDB()
	db.RegisterHint("cn_hash", "short-family")
	db.RegisterHint("cryptonight_hash", "long-family")
	spec, _ := SpecByName(FamilyCoinhive)
	m := ModuleFor(spec, 0)
	m.Codes[0].Body[5] ^= 0xFF // break the signature: force the heuristic path
	// The name contains both fragments; the longer one must win.
	m.Names = map[uint32]string{1: "__Z16cryptonight_hashPKc"}
	if v := db.Classify(m, nil); !v.Miner || v.Family != "long-family" {
		t.Errorf("verdict = %+v, want long-family via longest hint", v)
	}
}

func TestHintScanEqualLengthTieIsDeterministic(t *testing.T) {
	// Equal-length fragments are probed in lexicographic order, so ties
	// resolve the same way on every run (the map-iteration scan they
	// replace picked a random winner).
	for trial := 0; trial < 8; trial++ {
		db := NewDB()
		db.RegisterHint("zzhash", "family-z")
		db.RegisterHint("aahash", "family-a")
		spec, _ := SpecByName(FamilyCoinhive)
		m := ModuleFor(spec, 0)
		m.Codes[0].Body[5] ^= 0xFF
		m.Names = map[uint32]string{1: "mix_zzhash_aahash"}
		if v := db.Classify(m, nil); v.Family != "family-a" {
			t.Fatalf("trial %d: tie resolved to %q, want family-a", trial, v.Family)
		}
	}
}

// BenchmarkClassifyHintAttribution measures the heuristic hint scan with a
// realistically padded fragment table: one catalog hint matches, 200
// synthetic shorter fragments must not be probed once the match bounds
// the scan.
func BenchmarkClassifyHintAttribution(b *testing.B) {
	db := ReferenceDB()
	for i := 0; i < 200; i++ {
		db.RegisterHint(fmt.Sprintf("sfrag%03d", i), "synthetic")
	}
	spec, _ := SpecByName(FamilyCoinhive)
	m := ModuleFor(spec, 0)
	m.Codes[0].Body[5] ^= 0xFF
	m.Names = map[uint32]string{
		1: "__Z16cryptonight_hashPKc",
		2: "memcpy", 3: "stackAlloc", 4: "dynCall_viiii",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Classify(m, nil)
	}
}
