// Package fingerprint implements the paper's WebAssembly fingerprinting
// method (§3.2): a database of signatures built by hashing a module's
// function bodies in strict order with SHA-256, complemented by feature
// heuristics (XOR/shift/load counts, function-name hints, Websocket
// backends) that classify assemblies the database has never seen.
package fingerprint

import (
	"fmt"

	"repro/internal/wasm"
)

// Family names follow the labels the paper reports in Table 1. The special
// classes UnknownWSS and Benign are produced by the classifier, not by the
// catalog.
const (
	FamilyCoinhive    = "coinhive"
	FamilyAuthedmine  = "authedmine"
	FamilyCryptoloot  = "cryptoloot"
	FamilySkencituer  = "skencituer"
	FamilyNotgiven688 = "notgiven688"
	FamilyWebStatiBid = "web.stati.bid"
	FamilyFreecontent = "freecontent.date"
	FamilyWpMonero    = "wp-monero-miner"
	FamilyDeepMiner   = "deepminer"
	FamilyJSMiner     = "jsminer"
	FamilyCoinImp     = "coinimp"
	FamilyMonerise    = "monerise"
	FamilyWebmine     = "webmine.cz"
	FamilyUnknownWSS  = "UnknownWSS"
	FamilyBenign      = "benign"
)

// FamilySpec describes how a miner (or benign) family's assemblies are
// synthesised: instruction-mix weights, scratchpad size, exported symbols
// and the Websocket backend the embedding script dials.
type FamilySpec struct {
	Name     string
	Miner    bool
	Versions int    // distinct assemblies observed for this family
	Backend  string // characteristic pool endpoint domain ("" if none)
	// NameHint is a function name present in some versions' name sections
	// ("function name hinting at the hash function itself", §3.2).
	NameHint  string
	baseSeed  uint64
	xorWeight float64
	memWeight float64
	pages     uint32
	funcs     int
	bodyOps   int
}

// Catalog returns the reference corpus: ~160 distinct assemblies across
// miner families dominated by Coinhive, mirroring the database the authors
// assembled by manual inspection, plus benign Wasm families (games, codecs,
// math kernels) that a naive "all Wasm is mining" rule would misclassify.
func Catalog() []FamilySpec {
	return []FamilySpec{
		{Name: FamilyCoinhive, Miner: true, Versions: 34, Backend: "coinhive.com",
			NameHint: "cryptonight_hash", baseSeed: 0xC01, xorWeight: 0.44, memWeight: 0.28, pages: 36, funcs: 12, bodyOps: 600},
		{Name: FamilyAuthedmine, Miner: true, Versions: 8, Backend: "authedmine.com",
			NameHint: "cryptonight_hash", baseSeed: 0xA07, xorWeight: 0.44, memWeight: 0.28, pages: 36, funcs: 12, bodyOps: 600},
		{Name: FamilyCryptoloot, Miner: true, Versions: 22, Backend: "crypto-loot.com",
			NameHint: "cn_slow_hash", baseSeed: 0xC10, xorWeight: 0.41, memWeight: 0.30, pages: 34, funcs: 10, bodyOps: 550},
		{Name: FamilySkencituer, Miner: true, Versions: 9, Backend: "skencituer.com",
			NameHint: "", baseSeed: 0x5CE, xorWeight: 0.39, memWeight: 0.33, pages: 33, funcs: 9, bodyOps: 500},
		{Name: FamilyNotgiven688, Miner: true, Versions: 9, Backend: "notgiven688.host",
			NameHint: "", baseSeed: 0x688, xorWeight: 0.37, memWeight: 0.31, pages: 33, funcs: 8, bodyOps: 450},
		{Name: FamilyWebStatiBid, Miner: true, Versions: 11, Backend: "web.stati.bid",
			NameHint: "cn_hash", baseSeed: 0xB1D, xorWeight: 0.42, memWeight: 0.27, pages: 34, funcs: 11, bodyOps: 520},
		{Name: FamilyFreecontent, Miner: true, Versions: 11, Backend: "freecontent.date",
			NameHint: "", baseSeed: 0xFCD, xorWeight: 0.40, memWeight: 0.29, pages: 34, funcs: 10, bodyOps: 520},
		{Name: FamilyWpMonero, Miner: true, Versions: 8, Backend: "wp-monero-miner.com",
			NameHint: "cryptonight", baseSeed: 0x3B0, xorWeight: 0.43, memWeight: 0.26, pages: 36, funcs: 12, bodyOps: 580},
		{Name: FamilyDeepMiner, Miner: true, Versions: 7, Backend: "deepminer.net",
			NameHint: "cryptonight", baseSeed: 0xDEE, xorWeight: 0.42, memWeight: 0.28, pages: 35, funcs: 10, bodyOps: 540},
		{Name: FamilyJSMiner, Miner: true, Versions: 4, Backend: "jsminer.example",
			NameHint: "sha256_block", baseSeed: 0x751, xorWeight: 0.48, memWeight: 0.12, pages: 4, funcs: 6, bodyOps: 400},
		{Name: FamilyCoinImp, Miner: true, Versions: 8, Backend: "coinimp.com",
			NameHint: "cn_slow_hash", baseSeed: 0xC1A, xorWeight: 0.41, memWeight: 0.29, pages: 34, funcs: 10, bodyOps: 520},
		{Name: FamilyMonerise, Miner: true, Versions: 6, Backend: "monerise.com",
			NameHint: "", baseSeed: 0x40E, xorWeight: 0.40, memWeight: 0.30, pages: 34, funcs: 9, bodyOps: 500},
		{Name: FamilyWebmine, Miner: true, Versions: 6, Backend: "webmine.cz",
			NameHint: "cryptonight", baseSeed: 0x3BC, xorWeight: 0.41, memWeight: 0.28, pages: 34, funcs: 9, bodyOps: 500},
		// Benign Wasm: the ~4% of captured assemblies that are not miners.
		{Name: "game-engine", Miner: false, Versions: 6, baseSeed: 0x6A5, xorWeight: 0.03, memWeight: 0.22, pages: 16, funcs: 14, bodyOps: 700},
		{Name: "image-codec", Miner: false, Versions: 5, baseSeed: 0x1C0, xorWeight: 0.06, memWeight: 0.35, pages: 8, funcs: 10, bodyOps: 600},
		{Name: "math-kernel", Miner: false, Versions: 4, baseSeed: 0x3A7, xorWeight: 0.02, memWeight: 0.12, pages: 2, funcs: 8, bodyOps: 500},
		{Name: "crypto-lib", Miner: false, Versions: 4, baseSeed: 0xC4B, xorWeight: 0.30, memWeight: 0.08, pages: 2, funcs: 6, bodyOps: 450},
	}
}

// SpecByName returns the catalog entry for a family name.
func SpecByName(name string) (FamilySpec, bool) {
	for _, f := range Catalog() {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySpec{}, false
}

// ModuleFor synthesises version v of the given family. The same
// (family, version) pair always yields byte-identical binaries, which is
// what lets a signature database built from one crawl recognise the same
// assembly on thousands of other sites.
func ModuleFor(spec FamilySpec, version int) *wasm.Module {
	if version < 0 || version >= spec.Versions {
		panic(fmt.Sprintf("fingerprint: family %s has no version %d", spec.Name, version))
	}
	names := map[uint32]string{}
	if spec.NameHint != "" && version%2 == 0 { // only some versions keep names
		names[1] = spec.NameHint
	}
	var imports []wasm.Import
	if spec.Miner {
		imports = append(imports,
			wasm.Import{Module: "env", Name: "_emscripten_memcpy_big", Kind: wasm.ExtFunc, Type: 0})
	}
	exports := []string{"_" + exportName(spec), "_malloc"}
	return wasm.Synthesize(wasm.SynthSpec{
		Seed:      spec.baseSeed*1_000_003 + uint64(version)*7919,
		Funcs:     spec.funcs,
		BodyOps:   spec.bodyOps + version*13, // versions differ structurally
		XorWeight: spec.xorWeight,
		MemWeight: spec.memWeight,
		Pages:     spec.pages,
		Names:     names,
		Imports:   imports,
		Exports:   exports,
	})
}

func exportName(spec FamilySpec) string {
	if spec.NameHint != "" {
		return spec.NameHint
	}
	if spec.Miner {
		return "hash"
	}
	return "run"
}

// BinaryFor is ModuleFor followed by encoding.
func BinaryFor(spec FamilySpec, version int) []byte {
	return wasm.Encode(ModuleFor(spec, version))
}
