package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// LayerRule is one entry of the import-graph rule table. Allow, when
// non-nil, is the complete set of module-internal imports the package may
// have (direct); Deny lists packages it must not reach even transitively
// through other module packages.
type LayerRule struct {
	Pkg    string   // import path the rule applies to
	Allow  []string // exhaustive allowlist of module-internal direct imports (nil = unconstrained)
	Deny   []string // module-internal packages that must be unreachable
	Reason string
}

// DefaultLayerRules is the repo's architecture, as decided across PRs
// 1–5. The load-bearing seam is PR 5's SessionTransport split: dialect
// and client plumbing (session, stratum, ws) must stay ignorant of the
// pool engine, and the engine must not grow dependencies on clients.
var DefaultLayerRules = []LayerRule{
	{
		Pkg: "repro/internal/stratum", Allow: []string{},
		Deny:   []string{"repro/internal/coinhive"},
		Reason: "stratum is the pure wire vocabulary both sides compile against",
	},
	{
		Pkg: "repro/internal/ws", Allow: []string{},
		Deny:   []string{"repro/internal/coinhive"},
		Reason: "ws is a generic RFC6455 codec with no knowledge of the pool",
	},
	{
		Pkg: "repro/internal/session",
		Allow:  []string{"repro/internal/stratum", "repro/internal/ws"},
		Deny:   []string{"repro/internal/coinhive"},
		Reason: "the client dial/login/decode layer speaks dialects, never the engine",
	},
	{
		Pkg: "repro/internal/metrics", Allow: []string{},
		Reason: "the measurement plane depends on nothing it might measure",
	},
	{
		Pkg: "repro/internal/memconn", Allow: []string{},
		Reason: "the in-memory transport is a leaf: a net.Conn stand-in with no protocol knowledge",
	},
	{
		Pkg: "repro/internal/netpark", Allow: []string{},
		Reason: "the conn parker sees readiness sources (epoll, ArmReadWaker) through local interfaces only",
	},
	{
		Pkg: "repro/internal/keccak", Allow: []string{},
		Reason: "the hash core is a leaf",
	},
	{
		Pkg:    "repro/internal/cryptonight",
		Allow:  []string{"repro/internal/keccak"},
		Reason: "the PoW core depends only on its hash primitive",
	},
	{
		Pkg:    "repro/internal/coinhive",
		Deny:   []string{"repro/internal/session", "repro/internal/loadgen", "repro/internal/webminer"},
		Reason: "the service core must not depend on its own clients or load harness",
	},
	{
		Pkg:    "repro/internal/archive",
		Allow:  []string{"repro/internal/metrics"},
		Deny:   []string{"repro/internal/coinhive"},
		Reason: "the archive is a passive sink: events flow in via the pool's hook, never by reaching back",
	},
	{
		Pkg:    "repro/internal/sharechain",
		Allow:  []string{"repro/internal/blockchain", "repro/internal/metrics"},
		Deny:   []string{"repro/internal/coinhive", "repro/internal/ws", "repro/internal/stratum"},
		Reason: "the share-chain is a passive deterministic data structure: PoW verification is injected, service layers stay out of reach",
	},
	{
		Pkg:    "repro/internal/p2p",
		Allow:  []string{"repro/internal/sharechain", "repro/internal/metrics", "repro/internal/memconn"},
		Deny:   []string{"repro/internal/coinhive", "repro/internal/ws", "repro/internal/stratum"},
		Reason: "the peer layer moves share-chain entries over net.Conns; it must not know the pool engine or the miner-facing protocols",
	},
	{
		Pkg:    "repro/internal/statsapi",
		Allow:  []string{"repro/internal/archive", "repro/internal/metrics"},
		Deny:   []string{"repro/internal/coinhive"},
		Reason: "the stats API serves archived history only; live pool state stays behind /api/stats",
	},
}

// Layering checks the import-graph rule table over every module package.
func Layering() *Analyzer { return LayeringWith(DefaultLayerRules) }

// LayeringWith builds the layering analyzer over a specific rule table
// (the fixture self-test injects one scoped to the fixture package).
func LayeringWith(rules []LayerRule) *Analyzer {
	return &Analyzer{
		Name: "layering",
		Doc:  "package imports must respect the architecture rule table",
		Run:  func(prog *Program) []Finding { return runLayering(prog, rules) },
	}
}

func runLayering(prog *Program, rules []LayerRule) []Finding {
	// Direct module-internal import graph over the loaded packages.
	moduleOf := func(path string) string {
		if i := strings.Index(path, "/"); i > 0 {
			return path[:i]
		}
		return path
	}
	inModule := map[string]bool{}
	for _, pkg := range prog.Packages {
		inModule[pkg.Path] = true
	}
	graph := map[string][]string{}
	for _, pkg := range prog.Packages {
		mod := moduleOf(pkg.Path)
		for _, file := range pkg.Files {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if moduleOf(path) == mod {
					graph[pkg.Path] = append(graph[pkg.Path], path)
				}
			}
		}
	}
	reaches := func(from, target string) []string { return findPath(graph, from, target) }

	byPath := map[string]*Package{}
	for _, pkg := range prog.Packages {
		byPath[pkg.Path] = pkg
	}

	var out []Finding
	for _, rule := range rules {
		pkg, loaded := byPath[rule.Pkg]
		if !loaded {
			continue
		}
		allowed := map[string]bool{}
		for _, a := range rule.Allow {
			allowed[a] = true
		}
		mod := moduleOf(pkg.Path)
		for _, file := range pkg.Files {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || moduleOf(path) != mod {
					continue
				}
				if rule.Allow != nil && !allowed[path] {
					out = append(out, findingAt(prog, imp, rule,
						"%s may not import %s (allowed: %s)", rule.Pkg, path, allowList(rule.Allow)))
					continue
				}
				for _, denied := range rule.Deny {
					if chain := reaches(path, denied); chain != nil {
						via := ""
						if len(chain) > 1 {
							via = " (via " + strings.Join(chain[:len(chain)-1], " -> ") + ")"
						}
						out = append(out, findingAt(prog, imp, rule,
							"%s must not reach %s, but imports %s%s", rule.Pkg, denied, path, via))
					}
				}
			}
		}
	}
	return out
}

func findingAt(prog *Program, imp *ast.ImportSpec, rule LayerRule, format string, args ...interface{}) Finding {
	f := finding("layering", prog.Fset.Position(imp.Pos()), format, args...)
	if rule.Reason != "" {
		f.Message += " — " + rule.Reason
	}
	return f
}

func allowList(allow []string) string {
	if len(allow) == 0 {
		return "none"
	}
	return strings.Join(allow, ", ")
}

// findPath returns the import chain from from to target ([from ... target])
// or nil; from == target is the 1-element chain.
func findPath(graph map[string][]string, from, target string) []string {
	if from == target {
		return []string{target}
	}
	seen := map[string]bool{from: true}
	type node struct {
		path string
		prev *node
	}
	queue := []*node{{path: from}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, next := range graph[n.path] {
			if seen[next] {
				continue
			}
			seen[next] = true
			nn := &node{path: next, prev: n}
			if next == target {
				var chain []string
				for m := nn; m != nil; m = m.prev {
					chain = append([]string{m.path}, chain...)
				}
				return chain
			}
			queue = append(queue, nn)
		}
	}
	return nil
}
