package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	Path  string // import path ("repro/internal/coinhive")
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the analysis unit: every repo package, fully type-checked,
// over one shared FileSet (so types.Object identities are comparable
// across packages).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	loader *Loader
}

// DepPackage resolves a dependency package (stdlib or repo) by import
// path, for analyzers that need foreign types — e.g. net.Conn. Returns
// nil if the path was never loaded and cannot be.
func (p *Program) DepPackage(path string) *types.Package {
	tp, err := p.loader.importPath(path)
	if err != nil {
		return nil
	}
	return tp
}

// Loader loads and type-checks packages from source using only the
// standard library: repo-internal import paths resolve through go.mod's
// module line to directories under the module root, everything else to
// GOROOT/src. Cgo is disabled so go/build selects the pure-Go file set —
// the same closure `CGO_ENABLED=0 go build` compiles. Dependencies are
// type-checked without function bodies (API only); packages under
// analysis get full bodies plus a populated types.Info.
type Loader struct {
	Fset *token.FileSet

	ctx        build.Context
	moduleDir  string
	modulePath string

	full map[string]*Package        // repo packages: parsed with comments + Info
	deps map[string]*types.Package  // dependency packages: API only
	busy map[string]bool            // import-cycle guard
}

// NewLoader builds a loader for the module rooted at moduleDir (the
// directory holding go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := modulePathOf(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.CgoEnabled = false
	ctx.Dir = moduleDir
	return &Loader{
		Fset:       token.NewFileSet(),
		ctx:        ctx,
		moduleDir:  moduleDir,
		modulePath: modPath,
		full:       map[string]*Package{},
		deps:       map[string]*types.Package{},
		busy:       map[string]bool{},
	}, nil
}

// modulePathOf extracts the module path from a go.mod file.
func modulePathOf(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadModule discovers every buildable package under the module root
// (skipping testdata, vendor and dot-directories), loads each fully and
// returns the Program. Test files are not part of the analysis unit.
func (l *Loader) LoadModule() (*Program, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	prog := &Program{Fset: l.Fset, loader: l}
	for _, dir := range dirs {
		bp, err := l.ctx.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("lint: %s: %v", dir, err)
		}
		if len(bp.GoFiles) == 0 {
			continue
		}
		rel, err := filepath.Rel(l.moduleDir, dir)
		if err != nil {
			return nil, err
		}
		ipath := l.modulePath
		if rel != "." {
			ipath = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadFull(ipath, dir, bp.GoFiles)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// LoadDir loads one directory as a full package under the given import
// path — the fixture-loading entry point for analyzer self-tests, where
// the path is fake ("fix/lockscope") and the files live under testdata.
func (l *Loader) LoadDir(dir, asPath string) (*Program, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %v", dir, err)
	}
	pkg, err := l.loadFull(asPath, dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	return &Program{Fset: l.Fset, Packages: []*Package{pkg}, loader: l}, nil
}

// loadFull parses (with comments) and fully type-checks one package,
// memoizing it so repo packages that import each other share one
// types.Package — object identities stay comparable program-wide.
func (l *Loader) loadFull(ipath, dir string, goFiles []string) (*Package, error) {
	if pkg, ok := l.full[ipath]; ok {
		return pkg, nil
	}
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var tcErrs []error
	cfg := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) { return l.importPath(path) }),
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	tpkg, _ := cfg.Check(ipath, l.Fset, files, info)
	if len(tcErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s: %v", ipath, tcErrs[0])
	}
	pkg := &Package{Path: ipath, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.full[ipath] = pkg
	return pkg, nil
}

// importPath resolves one import: repo paths load fully (shared with the
// analysis), stdlib paths load API-only from GOROOT/src.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	// Anything already loaded fully wins — this is how fixture packages
	// (loaded under fake paths) resolve imports of one another.
	if pkg, ok := l.full[path]; ok {
		return pkg.Types, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		if pkg, ok := l.full[path]; ok {
			return pkg.Types, nil
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		dir := filepath.Join(l.moduleDir, filepath.FromSlash(rel))
		bp, err := l.ctx.ImportDir(dir, 0)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadFull(path, dir, bp.GoFiles)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.importDep(path)
}

// importDep type-checks a non-module package (stdlib) from GOROOT/src,
// bodies ignored, memoized.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if tp, ok := l.deps[path]; ok {
		return tp, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	// Stdlib first; golang.org/x/* dependencies of the stdlib live under
	// GOROOT/src/vendor.
	dir := filepath.Join(runtime.GOROOT(), "src", filepath.FromSlash(path))
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		vdir := filepath.Join(runtime.GOROOT(), "src", "vendor", filepath.FromSlash(path))
		if vbp, verr := l.ctx.ImportDir(vdir, 0); verr == nil {
			dir, bp, err = vdir, vbp, nil
		}
	}
	if err != nil {
		return nil, fmt.Errorf("lint: resolve %q: %v", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var tcErrs []error
	cfg := types.Config{
		IgnoreFuncBodies: true,
		Importer:         importerFunc(func(p string) (*types.Package, error) { return l.importPath(p) }),
		Error:            func(err error) { tcErrs = append(tcErrs, err) },
	}
	tpkg, _ := cfg.Check(path, l.Fset, files, nil)
	if len(tcErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors importing %s: %v", path, tcErrs[0])
	}
	l.deps[path] = tpkg
	return tpkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
