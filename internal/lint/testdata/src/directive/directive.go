// Fixture for the waiver machinery itself: a reasonless directive and an
// unknown-analyzer directive are findings, and neither suppresses the
// violation it sits on.
package directive

import "fmt"

// hot exercises broken waivers.
//
//lint:hotpath
func hot(n int) string {
	// want-below "has no reason"
	//lint:ignore hotpath
	a := fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates"
	// want-below "malformed ignore directive"
	//lint:ignore nosuchanalyzer because reasons
	b := fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates"
	return a + b // want "string concatenation allocates"
}
