// Leaf package of the layering fixture.
package a

const A = 1
