// Package b violates its injected allowlist (which permits nothing).
package b

import "fix/a" // want "fix/b may not import fix/a"

const B = a.A + 1
