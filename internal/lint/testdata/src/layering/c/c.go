// Package c imports only what its allowlist permits, but reaches the
// denied package a transitively through b.
package c

import "fix/b" // want "fix/c must not reach fix/a"

const C = b.B + 1
