// Fixture for the hotpath analyzer: the marked function must be flagged
// construct by construct, the unmarked twin must stay silent.
package hotpath

import "fmt"

// hot is on the per-share path.
//
//lint:hotpath
func hot(user string, n int) string {
	s := fmt.Sprintf("%s:%d", user, n) // want "fmt.Sprintf allocates"
	s += "!"                           // want "string .= allocates"
	b := make([]byte, 8)               // want "make allocates"
	_ = b
	c := []byte(user) // want "string -> ..byte conversion allocates"
	_ = c
	f := func() int { return n } // want "closure allocates"
	_ = f
	ids := []int{n} // want "slice literal allocates"
	_ = ids
	return s
}

// hotWaived carries a reasoned waiver for its one cold sub-path.
//
//lint:hotpath
func hotWaived(n int) string {
	if n < 0 {
		//lint:ignore hotpath error path, never taken per accepted share
		return fmt.Sprintf("bad %d", n)
	}
	return "ok"
}

// cold does all the same things with no mark; none of it is flagged.
func cold(user string, n int) string {
	s := fmt.Sprintf("%s:%d", user, n)
	return s + string(make([]byte, n))
}
