// Fixture for the metricname analyzer: one well-formed registration, then
// the three failure modes — off-convention name, runtime-computed name,
// and a second registration site for an existing name.
package metricname

import "repro/internal/metrics"

type plumbing struct {
	ok *metrics.Counter
}

func wire(reg *metrics.Registry, user string) *plumbing {
	p := &plumbing{ok: reg.Counter("pool.fixture_ok")}
	reg.Counter("sessions_total")  // want "does not match"
	reg.Gauge("pool." + user)      // want "dynamic metric name"
	reg.Counter("pool.fixture_ok") // want "also registered at"
	reg.Histogram("load.fixture_latency_ns")
	return p
}
