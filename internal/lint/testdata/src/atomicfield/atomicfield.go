// Fixture for the atomicfield analyzer: shares is accessed through
// sync/atomic in record(), so the plain read in snapshot() races; blocks is
// never touched atomically and stays fair game for plain access.
package atomicfield

import "sync/atomic"

type counters struct {
	shares uint64
	blocks uint64
}

func (c *counters) record() {
	atomic.AddUint64(&c.shares, 1)
	c.blocks++
}

func (c *counters) snapshot() uint64 {
	return c.shares // want "plain access to atomicfield.shares"
}

func (c *counters) reset() {
	c.shares = 0 // want "plain access to atomicfield.shares"
	atomic.StoreUint64(&c.shares, 0)
	c.blocks = 0
}
