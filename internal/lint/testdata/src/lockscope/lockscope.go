// Fixture for the lockscope analyzer: each `// want` comment is a regexp
// the self-test expects a finding on that line to match; lines without one
// must stay silent.
package lockscope

import (
	"net"
	"sync"
	"time"

	"repro/internal/cryptonight"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// hashUnderLock is the PR 1 bug shape: CryptoNight verification inside the
// lock every tip reader contends on.
func (g *guarded) hashUnderLock(blob []byte) [32]byte {
	g.mu.Lock()
	defer g.mu.Unlock()
	return cryptonight.Sum(blob, cryptonight.Test) // want "cryptonight.Sum .* while g.mu is locked"
}

// sleepUnderRead parks every writer behind a sleeping reader.
func (g *guarded) sleepUnderRead() {
	g.rw.RLock()
	time.Sleep(time.Millisecond) // want "time.Sleep while g.rw is locked"
	g.rw.RUnlock()
}

// leakOnEarlyReturn forgets the unlock on one path.
func (g *guarded) leakOnEarlyReturn(cond bool) {
	g.mu.Lock()
	if cond {
		return // want "return while g.mu is locked"
	}
	g.mu.Unlock()
}

// leakAlways never releases at all.
func (g *guarded) leakAlways() {
	g.mu.Lock() // want "is not released on every path"
	g.n++
}

// sendUnderLock blocks on a channel with the lock held.
func (g *guarded) sendUnderLock(ch chan int) {
	g.mu.Lock()
	ch <- g.n // want "channel send while g.mu is locked"
	g.mu.Unlock()
}

// writeUnderLock does socket I/O with the lock held.
func (g *guarded) writeUnderLock(nc net.Conn, buf []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, err := nc.Write(buf) // want "net.Conn.Write .* while g.mu is locked"
	return err
}

// verifyOutsideLock is the approved shape: snapshot under the lock, hash
// outside it. No findings.
func (g *guarded) verifyOutsideLock(blob []byte) [32]byte {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	_ = n
	return cryptonight.Sum(blob, cryptonight.Test)
}

// branchesBalanced releases on every path, including the early return,
// without a defer. No findings.
func (g *guarded) branchesBalanced(cond bool) int {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return 0
	}
	n := g.n
	g.mu.Unlock()
	return n
}

// waived demonstrates that an explicit, reasoned waiver suppresses the
// finding the line would otherwise raise.
func (g *guarded) waived() {
	g.mu.Lock()
	defer g.mu.Unlock()
	//lint:ignore lockscope fixture proves reasoned waivers suppress findings
	time.Sleep(time.Nanosecond)
}
