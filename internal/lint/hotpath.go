package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathDirective marks a function whose body must stay free of obvious
// allocation sites. PRs 2–3 pinned the keccak/cryptonight/metrics paths
// at 0 allocs with AllocsPerRun tests; the marks make the *reason* those
// tests pass machine-checked at the source level, so a stray fmt.Sprintf
// or closure fails `make lint` before it fails a benchmark.
const HotpathDirective = "//lint:hotpath"

// Hotpath flags, inside functions whose doc comment carries
// //lint:hotpath: fmt.* calls, string concatenation, closures, map and
// slice composite literals, &composite literals, new/make, and
// string<->[]byte conversions.
func Hotpath() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "//lint:hotpath functions must not contain obvious allocation sites",
		Run:  runHotpath,
	}
}

func runHotpath(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !docHasDirective(fn.Doc, HotpathDirective) {
					continue
				}
				out = append(out, checkHotBody(prog, pkg, fn)...)
			}
		}
	}
	return out
}

func checkHotBody(prog *Program, pkg *Package, fn *ast.FuncDecl) []Finding {
	var out []Finding
	report := func(pos token.Pos, format string, args ...interface{}) {
		out = append(out, finding("hotpath", prog.Fset.Position(pos),
			"hot function %s: "+format, append([]interface{}{fn.Name.Name}, args...)...))
	}
	info := pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if ident, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := info.Uses[ident].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
						report(n.Pos(), "fmt.%s allocates (reflection + boxing)", sel.Sel.Name)
					}
				}
			}
			if ident, ok := n.Fun.(*ast.Ident); ok {
				switch ident.Name {
				case "make", "new":
					if _, isBuiltin := info.Uses[ident].(*types.Builtin); isBuiltin {
						report(n.Pos(), "%s allocates", ident.Name)
					}
				}
			}
			if conv, bad := stringByteConversion(info, n); bad {
				report(n.Pos(), "%s conversion allocates a copy", conv)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string += allocates")
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates")
				return false
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					report(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "closure allocates (captured variables escape)")
			return false
		case *ast.GoStmt:
			report(n.Pos(), "goroutine launch on a hot path")
		}
		return true
	})
	return out
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && (basic.Kind() == types.Byte || basic.Kind() == types.Rune)
}

// stringByteConversion detects string([]byte) / []byte(string) style
// conversions, each of which copies.
func stringByteConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return "", false
	}
	dst := tv.Type
	src := info.TypeOf(call.Args[0])
	switch {
	case isStringType(dst) && isByteSlice(src):
		return "[]byte -> string", true
	case isByteSlice(dst) && isStringType(src):
		return "string -> []byte", true
	}
	return "", false
}
