// Package lint is the repo's project-specific static-analysis suite: a
// small framework (stdlib only — go/parser, go/ast, go/types with a
// source importer) plus the analyzers that machine-check the invariants
// the concurrent pool core's correctness rests on. The rules were each
// motivated by a real PR and are documented in DESIGN.md ("Enforced
// invariants"); `make lint` (cmd/repolint) runs them over every package
// and `make check` gates on a clean run.
//
// Findings are suppressable only with an explicit, reasoned waiver:
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. A directive
// without a reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one pass over the program. Run inspects every package it
// cares about and returns raw findings; the driver applies the ignore
// directives afterwards, so analyzers never see suppression logic.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Lockscope(),
		Hotpath(),
		Atomicfield(),
		Metricname(),
		Layering(),
	}
}

// Run executes the given analyzers over prog, applies the //lint:ignore
// directives and returns the surviving findings sorted by position.
// Malformed directives (unknown analyzer name or missing reason) are
// reported as findings of the pseudo-analyzer "lint".
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	known := map[string]bool{"lint": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ignores, bad := collectIgnores(prog, known)

	var out []Finding
	out = append(out, bad...)
	for _, a := range analyzers {
		for _, f := range a.Run(prog) {
			if !ignores.covers(a.Name, f.Pos) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// ignoreSet records, per file and analyzer, the source lines a
// //lint:ignore directive covers (its own line and the next line, so the
// directive can ride above or at the end of the offending statement).
type ignoreSet map[string]map[int]bool // "file\x00analyzer" -> lines

func (s ignoreSet) add(file, analyzer string, line int) {
	key := file + "\x00" + analyzer
	if s[key] == nil {
		s[key] = map[int]bool{}
	}
	s[key][line] = true
	s[key][line+1] = true
}

func (s ignoreSet) covers(analyzer string, pos token.Position) bool {
	if lines, ok := s[pos.Filename+"\x00"+analyzer]; ok && lines[pos.Line] {
		return true
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectIgnores scans every comment in the program's packages for ignore
// directives. Each must name a known analyzer and carry a non-empty
// reason — an unexplained waiver defeats the point of machine-checking.
func collectIgnores(prog *Program, known map[string]bool) (ignoreSet, []Finding) {
	set := ignoreSet{}
	var bad []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					pos := prog.Fset.Position(c.Pos())
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // some other //lint:ignoreX token
					}
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0 || !known[fields[0]]:
						bad = append(bad, finding("lint", pos,
							"malformed ignore directive: want //lint:ignore <analyzer> <reason>"))
					case len(fields) < 2:
						bad = append(bad, finding("lint", pos,
							"ignore directive for %q has no reason; waivers must say why", fields[0]))
					default:
						set.add(pos.Filename, fields[0], pos.Line)
					}
				}
			}
		}
	}
	return set, bad
}

func finding(analyzer string, pos token.Position, format string, args ...interface{}) Finding {
	return Finding{
		Analyzer: analyzer,
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// docHasDirective reports whether a function's doc comment (or a line
// comment group directly above it) carries the given //lint:* directive.
func docHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// exprString renders a simple expression (identifiers and selectors) the
// way it appears in source — good enough to key held locks by.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("%T", e)
	}
}
