package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// Metricname polices the metrics registry PR 4 introduced. Instrument
// names must be compile-time constants — a name computed at runtime (per
// session, per job, per token…) explodes registry cardinality, which is
// exactly the failure mode that makes "zero-cost telemetry" stop being
// zero-cost. Names must follow the dotted lower_snake convention under a
// known top-level namespace, and each name may be registered from only
// one call site: two sites sharing a name silently merge two meanings
// into one time series (sharing an instrument across components is done
// by passing the instrument, not by name collision).
func Metricname() *Analyzer {
	return &Analyzer{
		Name: "metricname",
		Doc:  "metric names are literal, namespaced, lower_snake, and registered at one site",
		Run:  runMetricname,
	}
}

// metricNameRE matches "pool.shares_ok", "server.submit_ns", etc.
var metricNameRE = regexp.MustCompile(`^(pool|server|stratum|load|p2p)(\.[a-z0-9_]+)+$`)

var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func runMetricname(prog *Program) []Finding {
	var out []Finding
	firstSite := map[string]ast.Node{}
	for _, pkg := range prog.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				method, isReg := registryCall(info, call)
				if !isReg {
					return true
				}
				tv := info.Types[call.Args[0]]
				if tv.Value == nil || tv.Value.Kind() != constant.String {
					out = append(out, finding("metricname", prog.Fset.Position(call.Args[0].Pos()),
						"dynamic metric name in Registry.%s — names must be compile-time string constants (cardinality is fixed at build time)",
						method))
					return true
				}
				name := constant.StringVal(tv.Value)
				if !metricNameRE.MatchString(name) {
					out = append(out, finding("metricname", prog.Fset.Position(call.Args[0].Pos()),
						"metric name %q does not match <namespace>.<lower_snake> with namespace in {pool, server, stratum, load, p2p}",
						name))
					return true
				}
				if prev, dup := firstSite[name]; dup {
					out = append(out, finding("metricname", prog.Fset.Position(call.Args[0].Pos()),
						"metric %q is also registered at %s — register at one site and share the instrument",
						name, prog.Fset.Position(prev.Pos())))
				} else {
					firstSite[name] = call
				}
				return true
			})
		}
	}
	return out
}

// registryCall reports whether call is metrics.Registry.Counter/Gauge/
// Histogram, by receiver type.
func registryCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/metrics") {
		return "", false
	}
	return sel.Sel.Name, true
}
