package lint

import (
	"go/ast"
	"go/types"
)

// Atomicfield enforces the all-or-nothing rule for sync/atomic: once any
// code accesses a struct field through the sync/atomic functions
// (atomic.AddUint64(&s.f, …)), every other access anywhere in the repo
// must also go through sync/atomic — a plain read races with the atomic
// writers, and the race detector only catches it on the schedules the
// tests happen to exercise. (Fields of type atomic.Uint64 etc. are safe
// by construction and outside this analyzer's scope.)
func Atomicfield() *Analyzer {
	return &Analyzer{
		Name: "atomicfield",
		Doc:  "a field accessed via sync/atomic may never be plainly read or written",
		Run:  runAtomicfield,
	}
}

func runAtomicfield(prog *Program) []Finding {
	// Pass 1: collect every field that is the &-target of a sync/atomic
	// call, and the exact selector nodes inside those calls (exempt from
	// pass 2). Object identity is program-wide because all packages are
	// type-checked through one loader.
	atomicFields := map[*types.Var]ast.Node{} // field -> first atomic site
	exempt := map[ast.Expr]bool{}
	for _, pkg := range prog.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isSyncAtomicCall(info, call) || len(call.Args) == 0 {
					return true
				}
				unary, ok := call.Args[0].(*ast.UnaryExpr)
				if !ok {
					return true
				}
				if fld := fieldOf(info, unary.X); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = call
					}
					exempt[unary.X] = true
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other access to those fields is a plain (racy) access.
	var out []Finding
	for _, pkg := range prog.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || exempt[sel] {
					return true
				}
				fld := fieldOf(info, sel)
				if fld == nil {
					return true
				}
				if site, isAtomic := atomicFields[fld]; isAtomic {
					out = append(out, finding("atomicfield", prog.Fset.Position(sel.Pos()),
						"plain access to %s.%s, which is accessed atomically at %s — use sync/atomic here too",
						fld.Pkg().Name(), fld.Name(), prog.Fset.Position(site.Pos())))
				}
				return true
			})
		}
	}
	return out
}

// isSyncAtomicCall reports whether call is atomic.AddXxx/LoadXxx/etc.
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[ident].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// fieldOf resolves expr to a struct field object, or nil.
func fieldOf(info *types.Info, expr ast.Expr) *types.Var {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
		if v, ok := selection.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}
