package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture self-tests load each testdata/src fixture under a fake
// "fix/..." import path and push it through the real driver (Run), so the
// //lint:ignore machinery is exercised alongside the analyzers.
// Expectations ride in the fixture source as trailing
//
//	// want "regexp"
//
// comments matched against findings on that line, or
//
//	// want-below "regexp"
//
// for findings on the following line (needed when the offending line is
// itself a //lint: directive and cannot carry a second comment).

func TestLockscopeFixture(t *testing.T)   { runFixture(t, []string{"lockscope"}, All()) }
func TestHotpathFixture(t *testing.T)     { runFixture(t, []string{"hotpath"}, All()) }
func TestAtomicfieldFixture(t *testing.T) { runFixture(t, []string{"atomicfield"}, All()) }
func TestMetricnameFixture(t *testing.T)  { runFixture(t, []string{"metricname"}, All()) }
func TestDirectiveFixture(t *testing.T)   { runFixture(t, []string{"directive"}, All()) }

func TestLayeringFixture(t *testing.T) {
	rules := []LayerRule{
		{Pkg: "fix/b", Allow: []string{}, Reason: "b is a leaf by decree"},
		{Pkg: "fix/c", Allow: []string{"fix/b"}, Deny: []string{"fix/a"}, Reason: "c must not reach a"},
	}
	runFixture(t, []string{"layering/a", "layering/b", "layering/c"},
		[]*Analyzer{LayeringWith(rules)})
}

// TestRepoIsClean is `make lint` as a unit test: the whole module must
// stay free of findings, so a re-introduced violation fails plain
// `go test ./...` too, not just the lint tier.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; covered by make lint")
	}
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	prog, err := loader.LoadModule()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, f := range Run(prog, All()) {
		t.Errorf("finding: %s", f)
	}
}

var (
	wantRE      = regexp.MustCompile(`// want "([^"]+)"`)
	wantBelowRE = regexp.MustCompile(`// want-below "([^"]+)"`)
)

type wantExpect struct {
	re      *regexp.Regexp
	matched bool
}

func runFixture(t *testing.T, dirs []string, analyzers []*Analyzer) {
	t.Helper()
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	prog := &Program{Fset: loader.Fset, loader: loader}
	for _, d := range dirs {
		sub, err := loader.LoadDir(filepath.Join("testdata", "src", d), "fix/"+filepath.Base(d))
		if err != nil {
			t.Fatalf("load fixture %s: %v", d, err)
		}
		prog.Packages = append(prog.Packages, sub.Packages...)
	}

	wants := map[string][]*wantExpect{} // "file.go:line" -> expectations
	for _, d := range dirs {
		dir := filepath.Join("testdata", "src", d)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
					key := fmt.Sprintf("%s:%d", e.Name(), i+1)
					wants[key] = append(wants[key], &wantExpect{re: regexp.MustCompile(m[1])})
				}
				for _, m := range wantBelowRE.FindAllStringSubmatch(line, -1) {
					key := fmt.Sprintf("%s:%d", e.Name(), i+2)
					wants[key] = append(wants[key], &wantExpect{re: regexp.MustCompile(m[1])})
				}
			}
		}
	}

	for _, f := range Run(prog, analyzers) {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.File), f.Line)
		var hit *wantExpect
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected finding at %s: [%s] %s", key, f.Analyzer, f.Message)
			continue
		}
		hit.matched = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing finding at %s matching %q", key, w.re)
			}
		}
	}
}
