package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockscope enforces the discipline PR 1 built the sharded pool around:
// CryptoNight work (hashing, grinding, hasher checkout) and blocking
// operations (channel sends/receives, time.Sleep, network reads/writes)
// must never run while a sync.Mutex or sync.RWMutex is held, and every
// Lock()/RLock() must be released on all return paths of the function
// that took it.
//
// The analysis is intra-procedural and keys held locks by their receiver
// expression text; a lock handed across a function boundary (the
// *Locked-suffix helper convention) is the caller's responsibility and
// stays visible at the caller's call site.
func Lockscope() *Analyzer {
	return &Analyzer{
		Name: "lockscope",
		Doc:  "no CryptoNight or blocking ops under a mutex; every Lock has an Unlock on all return paths",
		Run:  runLockscope,
	}
}

// lockInfo is one held mutex: the expression it was locked through, the
// flavor, and whether a defer already guarantees release at exit.
type lockInfo struct {
	key      string
	rlock    bool
	pos      token.Pos
	deferred bool
}

type lockScanner struct {
	prog     *Program
	pkg      *Package
	netConn  *types.Interface
	findings []Finding
	reported map[token.Pos]bool
}

func runLockscope(prog *Program) []Finding {
	sc := &lockScanner{prog: prog, reported: map[token.Pos]bool{}}
	if netPkg := prog.DepPackage("net"); netPkg != nil {
		if obj := netPkg.Scope().Lookup("Conn"); obj != nil {
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				sc.netConn = iface
			}
		}
	}
	for _, pkg := range prog.Packages {
		sc.pkg = pkg
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				held, _ := sc.scanBlock(fn.Body.List, nil)
				for _, l := range held {
					if !l.deferred {
						sc.report(l.pos, "%s.Lock() is not released on every path through %s",
							l.key, fn.Name.Name)
					}
				}
			}
		}
	}
	return sc.findings
}

func (sc *lockScanner) report(pos token.Pos, format string, args ...interface{}) {
	if sc.reported[pos] {
		return
	}
	sc.reported[pos] = true
	sc.findings = append(sc.findings, finding("lockscope", sc.prog.Fset.Position(pos), format, args...))
}

// scanBlock walks one statement list in source order, threading the set
// of held locks through and recursing into control flow with branch-local
// copies. It returns the lock state after the list and whether the list
// always terminates (ends in return).
func (sc *lockScanner) scanBlock(stmts []ast.Stmt, held []lockInfo) ([]lockInfo, bool) {
	for _, stmt := range stmts {
		var terminated bool
		held, terminated = sc.scanStmt(stmt, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func copyLocks(held []lockInfo) []lockInfo {
	return append([]lockInfo(nil), held...)
}

// mergeLocks unions the lock states reachable after a branch point: a
// lock held on any incoming path counts as held, so later banned calls
// are still flagged.
func mergeLocks(states [][]lockInfo) []lockInfo {
	var out []lockInfo
	seen := map[string]bool{}
	for _, st := range states {
		for _, l := range st {
			k := l.key
			if l.rlock {
				k += "\x00r"
			}
			if !seen[k] {
				seen[k] = true
				out = append(out, l)
			}
		}
	}
	return out
}

func (sc *lockScanner) scanStmt(stmt ast.Stmt, held []lockInfo) ([]lockInfo, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, isLock := sc.lockOp(call); isLock {
				switch op {
				case "Lock", "RLock":
					held = append(held, lockInfo{key: key, rlock: op == "RLock", pos: call.Pos()})
				case "Unlock", "RUnlock":
					held = sc.release(held, key, op == "RUnlock")
				}
				return held, false
			}
		}
		sc.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if key, op, isLock := sc.lockOp(s.Call); isLock && (op == "Unlock" || op == "RUnlock") {
			for i := range held {
				if held[i].key == key && held[i].rlock == (op == "RUnlock") && !held[i].deferred {
					held[i].deferred = true
					break
				}
			}
			return held, false
		}
		for _, arg := range s.Call.Args {
			sc.checkExpr(arg, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			sc.checkExpr(r, held)
		}
		for _, l := range held {
			if !l.deferred {
				sc.report(s.Pos(), "return while %s is locked (taken at %s) with no deferred unlock",
					l.key, sc.prog.Fset.Position(l.pos))
			}
		}
		return held, true
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			sc.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			sc.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			sc.report(s.Pos(), "channel send while %s is locked", heldNames(held))
		}
		sc.checkExpr(s.Value, held)
	case *ast.IncDecStmt:
		sc.checkExpr(s.X, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = sc.scanStmt(s.Init, held)
		}
		sc.checkExpr(s.Cond, held)
		thenPost, thenTerm := sc.scanBlock(s.Body.List, copyLocks(held))
		var states [][]lockInfo
		if !thenTerm {
			states = append(states, thenPost)
		}
		if s.Else != nil {
			elsePost, elseTerm := sc.scanStmt(s.Else, copyLocks(held))
			if !elseTerm {
				states = append(states, elsePost)
			}
			if thenTerm && elseTerm {
				return held, true
			}
		} else {
			states = append(states, held)
		}
		if len(states) == 0 {
			return held, true
		}
		return mergeLocks(states), false
	case *ast.BlockStmt:
		return sc.scanBlock(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = sc.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			sc.checkExpr(s.Cond, held)
		}
		bodyPost, _ := sc.scanBlock(s.Body.List, copyLocks(held))
		sc.checkLoopBalance(s.Pos(), held, bodyPost)
		return held, false
	case *ast.RangeStmt:
		sc.checkExpr(s.X, held)
		bodyPost, _ := sc.scanBlock(s.Body.List, copyLocks(held))
		sc.checkLoopBalance(s.Pos(), held, bodyPost)
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = sc.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			sc.checkExpr(s.Tag, held)
		}
		return sc.scanClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		return sc.scanClauses(s.Body, held)
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			sc.report(s.Pos(), "blocking select while %s is locked", heldNames(held))
		}
		var states [][]lockInfo
		allTerm := true
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			post, term := sc.scanBlock(cc.Body, copyLocks(held))
			if !term {
				allTerm = false
				states = append(states, post)
			}
		}
		if allTerm && len(s.Body.List) > 0 {
			return held, true
		}
		states = append(states, held)
		return mergeLocks(states), false
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			sc.checkExpr(arg, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sc.scanBlock(fl.Body.List, nil)
		}
	case *ast.LabeledStmt:
		return sc.scanStmt(s.Stmt, held)
	}
	return held, false
}

// scanClauses handles switch/type-switch bodies: each case runs with a
// branch-local copy; the post-state is the union of non-terminating
// cases plus fallthrough past the switch.
func (sc *lockScanner) scanClauses(body *ast.BlockStmt, held []lockInfo) ([]lockInfo, bool) {
	states := [][]lockInfo{held}
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			sc.checkExpr(e, held)
		}
		post, term := sc.scanBlock(cc.Body, copyLocks(held))
		if !term {
			states = append(states, post)
		}
	}
	return mergeLocks(states), false
}

// checkLoopBalance flags loop bodies whose lock state does not return to
// the loop-entry state — a per-iteration leak (or a release of a lock the
// loop does not own).
func (sc *lockScanner) checkLoopBalance(pos token.Pos, entry, bodyPost []lockInfo) {
	if len(bodyPost) != len(entry) {
		sc.report(pos, "loop body changes held-lock count (%d entering, %d after one iteration)",
			len(entry), len(bodyPost))
	}
}

func heldNames(held []lockInfo) string {
	names := make([]string, len(held))
	for i, l := range held {
		names[i] = l.key
	}
	return strings.Join(names, ", ")
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// release pops the most recent matching lock.
func (sc *lockScanner) release(held []lockInfo, key string, rlock bool) []lockInfo {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].key == key && held[i].rlock == rlock {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// lockOp reports whether call is (R)Lock/(R)Unlock on a sync.Mutex or
// sync.RWMutex, returning the receiver expression key and the method.
func (sc *lockScanner) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	selection, found := sc.pkg.Info.Selections[sel]
	if !found {
		return "", "", false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

// checkExpr flags banned operations inside an expression evaluated while
// locks are held, and scans function literals with a fresh (empty) lock
// state since their bodies run elsewhere.
func (sc *lockScanner) checkExpr(expr ast.Expr, held []lockInfo) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sc.scanBlock(n.Body.List, nil)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				sc.report(n.Pos(), "channel receive while %s is locked", heldNames(held))
			}
		case *ast.CallExpr:
			if len(held) > 0 {
				if msg := sc.bannedCall(n); msg != "" {
					sc.report(n.Pos(), "%s while %s is locked", msg, heldNames(held))
				}
			}
		}
		return true
	})
}

// cryptonightHeavy is the set of package-level cryptonight entry points
// (and Hasher methods) that do scratchpad-scale work.
var cryptonightHeavyFuncs = map[string]bool{"Sum": true, "GetHasher": true, "NewHasher": true}
var cryptonightHeavyMethods = map[string]bool{"Sum": true, "Grind": true, "GrindStride": true}

// blockingConnMethods are the methods that can block on a peer when the
// receiver is a net.Conn (or the repo's ws.Conn).
var blockingConnMethods = map[string]bool{"Read": true, "Write": true, "ReadMessage": true, "WriteMessage": true, "ReadFrom": true, "WriteTo": true}

// bannedCall classifies a call made under a lock; "" means allowed.
func (sc *lockScanner) bannedCall(call *ast.CallExpr) string {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return ""
	}
	// Package-qualified function: cryptonight.* / time.Sleep.
	if ident, isIdent := sel.X.(*ast.Ident); isIdent {
		if pn, isPkg := sc.pkg.Info.Uses[ident].(*types.PkgName); isPkg {
			path := pn.Imported().Path()
			switch {
			case strings.HasSuffix(path, "internal/cryptonight") && cryptonightHeavyFuncs[sel.Sel.Name]:
				return "cryptonight." + sel.Sel.Name + " (share verification)"
			case path == "time" && sel.Sel.Name == "Sleep":
				return "time.Sleep"
			}
			return ""
		}
	}
	// Method call: Hasher heavy methods, or blocking conn I/O.
	selection, found := sc.pkg.Info.Selections[sel]
	if !found {
		return ""
	}
	recv := selection.Recv()
	elem := recv
	if ptr, isPtr := elem.(*types.Pointer); isPtr {
		elem = ptr.Elem()
	}
	if named, isNamed := elem.(*types.Named); isNamed {
		obj := named.Obj()
		if obj.Pkg() != nil {
			path := obj.Pkg().Path()
			if strings.HasSuffix(path, "internal/cryptonight") && obj.Name() == "Hasher" && cryptonightHeavyMethods[sel.Sel.Name] {
				return "Hasher." + sel.Sel.Name
			}
			if strings.HasSuffix(path, "internal/ws") && obj.Name() == "Conn" && blockingConnMethods[sel.Sel.Name] {
				return "ws.Conn." + sel.Sel.Name + " (blocking socket I/O)"
			}
		}
	}
	if sc.netConn != nil && blockingConnMethods[sel.Sel.Name] && types.Implements(recv, sc.netConn) {
		return "net.Conn." + sel.Sel.Name + " (blocking socket I/O)"
	}
	return ""
}
