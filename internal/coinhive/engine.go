package coinhive

import (
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/stratum"
)

// This file is the miner-session engine: every dialect-independent rule of
// the pool's session protocol — auth, link/captcha attachment, share
// scoring, stale-tip re-jobs, session metrics — lives here exactly once,
// as a state machine of decoded Commands in and Events out. Transports
// (the ws+coinhive dialect in server.go, the raw-TCP JSON-RPC dialect in
// stratumtcp.go) are thin codecs: they parse wire frames into Commands,
// render Events back into their dialect, and never touch the Pool.

// CmdKind classifies a decoded client message.
type CmdKind uint8

const (
	// CmdOpen is the authentication request (ws auth / rpc login).
	CmdOpen CmdKind = iota
	// CmdSubmit is a fully decoded share submission.
	CmdSubmit
	// CmdKeepalive is a liveness ping (TCP dialect only).
	CmdKeepalive
	// CmdGarbage is a frame the codec could not parse at all.
	CmdGarbage
	// CmdBadParams is a recognised message with undecodable or malformed
	// parameters; Reply carries the dialect error text.
	CmdBadParams
	// CmdUnknown is a well-formed message of a type/method the dialect
	// does not define; Name carries it.
	CmdUnknown
)

// Command is one decoded client message handed to the engine.
type Command struct {
	Kind   CmdKind
	Auth   stratum.Auth // CmdOpen
	JobID  string       // CmdSubmit
	Nonce  uint32       // CmdSubmit
	Result [32]byte     // CmdSubmit
	Reply  string       // CmdBadParams: dialect error text
	Name   string       // CmdUnknown: offending type/method

	// Tag is transport correlation state (the JSON-RPC id) threaded
	// through to Deliver untouched; the ws dialect leaves it nil.
	Tag interface{}
}

// EventKind classifies an engine reply.
type EventKind uint8

const (
	// EvAuthed acknowledges authentication.
	EvAuthed EventKind = iota
	// EvJob hands out a PoW input.
	EvJob
	// EvAccepted credits an accepted share.
	EvAccepted
	// EvLinkResolved reveals a short link's destination.
	EvLinkResolved
	// EvCaptchaVerified hands a solved captcha its one-time token.
	EvCaptchaVerified
	// EvKeepalive acknowledges a CmdKeepalive.
	EvKeepalive
	// EvError reports a protocol error; Fatal means the session must end
	// after the event is delivered.
	EvError
)

// Event is one engine-produced reply the transport must deliver, in order.
type Event struct {
	Kind     EventKind
	Authed   stratum.Authed          // EvAuthed
	Job      stratum.Job             // EvJob
	Wire     *JobWire                // EvJob: pre-encoded wire forms of Job (never nil for EvJob)
	Stale    bool                    // EvJob: re-issued because the submitted job went stale
	Retarget bool                    // EvJob: difficulty retarget — server-clocked dialects must push it
	Accepted stratum.HashAccepted    // EvAccepted
	Link     stratum.LinkResolved    // EvLinkResolved
	Captcha  stratum.CaptchaVerified // EvCaptchaVerified
	Err      string                  // EvError
	Fatal    bool                    // EvError: drop the session after delivering
	// Code is the dialect-independent rejection code (a stratum.RPC*
	// constant) for EvError; 0 means the transport derives one from the
	// command kind as before.
	Code int
	// Banned marks an EvError caused by the peer's identity being banned;
	// the ws dialect renders it as its own "banned" message type.
	Banned bool
}

// SessionTransport is the server side of one dialect connection: a codec
// that parses the peer's frames into Commands and renders Events back.
// ReadCommand returns an error only for transport-level death (EOF, close
// handshake, read timeout); parse failures are themselves Commands so the
// engine applies one set of rules to them. Deliver receives the session
// (for dialect state such as push registration) and the command the
// events answer (for correlation). ServerClocked reports whether the
// dialect delivers fresh work by unsolicited push — for such dialects
// the engine omits the routine job that follows every submit in the
// client-clocked protocol (a stale re-job is still emitted: the client's
// current job just died).
type SessionTransport interface {
	ReadCommand() (Command, error)
	Deliver(ms *MinerSession, cmd Command, evs []Event) error
	ServerClocked() bool
}

// Engine owns the dialect-independent half of the session protocol and
// its instruments. Both network fronts (ws Server, TCP StratumServer)
// drive one engine, so session metrics and share accounting aggregate
// across transports.
type Engine struct {
	pool    *Pool
	connSeq uint64

	// clock drives vardiff and banscore timestamps; it is the pool's
	// clock, so simulated services stay deterministic.
	clock   simclock.Clock
	vardiff VardiffConfig
	ban     BanConfig
	// abuse is the striped per-identity banscore/rate-limit table; nil
	// when the defense layer is disabled.
	abuse *abuseTable

	sessions      *metrics.Gauge   // live miner sessions across all transports
	sessionsTotal *metrics.Counter // sessions ever accepted
	authReject    *metrics.Counter // sessions dropped during auth
	jobsSent      *metrics.Counter // job messages handed out (replies + pushes)
	submitNs      *metrics.Histogram

	retargets    *metrics.Counter // vardiff retargets applied
	bans         *metrics.Counter // bans issued
	loginsBanned *metrics.Counter // logins rejected because the identity is banned
	rateLimited  *metrics.Counter // logins/submits rejected by the rate limiter
	dupShares    *metrics.Counter // submits rejected by the per-session duplicate memo
	staleFloods  *metrics.Counter // too-many-stale errors issued
	forgedDiffs  *metrics.Counter // submits at a difficulty tier never served
}

// NewEngine wires an engine over a pool, registering the server.*
// instruments in the pool's metrics registry. Instruments are registered
// by name, so engines sharing a registry share instruments.
func NewEngine(p *Pool) *Engine {
	reg := p.Metrics()
	e := &Engine{
		pool:          p,
		clock:         p.Clock(),
		vardiff:       p.Vardiff(),
		ban:           p.Ban(),
		sessions:      reg.Gauge("server.sessions"),
		sessionsTotal: reg.Counter("server.sessions_total"),
		authReject:    reg.Counter("server.auth_reject"),
		jobsSent:      reg.Counter("server.jobs_sent"),
		submitNs:      reg.Histogram("server.submit_ns"),
		retargets:     reg.Counter("server.retargets"),
		bans:          reg.Counter("server.bans"),
		loginsBanned:  reg.Counter("server.logins_banned"),
		rateLimited:   reg.Counter("server.rate_limited"),
		dupShares:     reg.Counter("server.shares_duplicate"),
		staleFloods:   reg.Counter("server.stale_flood"),
		forgedDiffs:   reg.Counter("server.shares_forged"),
	}
	if e.ban.Enabled() {
		e.abuse = newAbuseTable(e.ban)
	}
	return e
}

// AbuseState snapshots an identity's decayed banscore and ban deadline
// (zeroes when the defense layer is off or the identity is unknown). The
// cross-transport tests assert dialect-independence with it.
func (e *Engine) AbuseState(key string) (score float64, bannedUntil time.Time) {
	if e.abuse == nil {
		return 0, time.Time{}
	}
	s, untilNs := e.abuse.state(key, e.clock.Now().UnixNano())
	if untilNs != 0 {
		bannedUntil = time.Unix(0, untilNs)
	}
	return s, bannedUntil
}

// Pool exposes the pool the engine fronts.
func (e *Engine) Pool() *Pool { return e.pool }

// NewSession opens one miner session on the given endpoint. The rotation
// slot comes from a cross-transport sequence, so TCP and ws sessions
// interleave over a backend's templates exactly as two ws endpoints do.
func (e *Engine) NewSession(endpoint int) *MinerSession {
	e.sessionsTotal.Inc()
	e.sessions.Inc()
	return &MinerSession{
		eng:      e,
		endpoint: endpoint,
		slot:     int(atomic.AddUint64(&e.connSeq, 1)),
	}
}

// BindSession opens a session bound to a transport: NewSession plus the
// transport-derived state (clocking, peer host). Transports that park
// connections between commands use it with StepDeliver to run the same
// protocol without a dedicated loop goroutine.
func (e *Engine) BindSession(endpoint int, t SessionTransport) *MinerSession {
	ms := e.NewSession(endpoint)
	ms.serverClocked = t.ServerClocked()
	// Transports that know their peer's address expose it for per-host
	// banning; the interface is optional so codec fakes stay three methods.
	if rh, ok := t.(interface{ RemoteHost() string }); ok {
		ms.remote = rh.RemoteHost()
	}
	return ms
}

// StepDeliver advances a session by one decoded command and delivers the
// replies. It reports whether the session is over (delivery failed, or a
// fatal error event was produced); the caller then owns closing ms.
func (e *Engine) StepDeliver(ms *MinerSession, t SessionTransport, cmd Command) (done bool) {
	evs := ms.Step(cmd)
	if t.Deliver(ms, cmd, evs) != nil {
		return true
	}
	for i := range evs {
		if evs[i].Kind == EvError && evs[i].Fatal {
			return true
		}
	}
	return false
}

// ServeSession runs one session to completion: decode, step, deliver,
// until the transport dies or the engine declares the session over. This
// loop is the whole serve path of every goroutine-per-conn dialect.
func (e *Engine) ServeSession(endpoint int, t SessionTransport) {
	ms := e.BindSession(endpoint, t)
	defer ms.Close()
	for {
		cmd, err := t.ReadCommand()
		if err != nil {
			return
		}
		if e.StepDeliver(ms, t, cmd) {
			return
		}
	}
}

// MinerSession is one miner's protocol state, independent of transport.
// Step is called from a single goroutine (the transport's reader);
// Authed/CurrentJob may be called concurrently (the TCP push fan-out).
type MinerSession struct {
	eng      *Engine
	endpoint int
	slot     int
	// serverClocked mirrors the transport: such sessions get fresh work
	// by push, so no routine job rides behind an accepted submit.
	serverClocked bool

	authed    atomic.Bool
	siteKey   string
	linkID    string
	captchaID string
	lowDiff   bool
	closed    bool

	// remote is the transport's peer host (empty when unknown); used only
	// for optional per-host banning.
	remote string

	// Vardiff state. curDiff is the difficulty currently served: 0 means
	// the session is on the static tier (vardiff off, or a link/captcha
	// session). Atomic because CurrentJob reads it from the TCP push
	// fan-out goroutine; the rest is Step-goroutine only.
	curDiff      atomic.Uint64
	prevDiff     uint64 // one retarget of grace for in-flight shares
	vdWin        vardiffWindow
	lastAcceptNs int64

	// Defense state: consecutive stale submissions since the last accept,
	// and the session-local memo of accepted share keys.
	staleRun int
	dupMemo  shareMemo

	evs []Event // reused reply buffer; valid until the next Step
}

// Authed reports whether the session has completed authentication. Safe
// for concurrent use — the TCP fan-out uses it to skip pre-login conns.
func (ms *MinerSession) Authed() bool { return ms.authed.Load() }

// Close releases the session's slot in the live-session gauge. Idempotent.
func (ms *MinerSession) Close() {
	if ms.closed {
		return
	}
	ms.closed = true
	ms.eng.sessions.Dec()
}

// CurrentJob mints the session's current PoW input — what a server-clocked
// transport pushes when the chain tip moves. Safe for concurrent use with
// Step once the session is authed (curDiff is the one retarget-mutated
// field it reads, and it is atomic).
func (ms *MinerSession) CurrentJob() stratum.Job {
	return ms.CurrentWire().Job
}

// CurrentWire is CurrentJob's encode-once form: the fan-out pushes the
// returned wire bytes to every session on the same tier without
// re-marshaling. Same concurrency contract as CurrentJob.
func (ms *MinerSession) CurrentWire() *JobWire {
	ms.eng.jobsSent.Inc()
	return ms.mintWire()
}

func (ms *MinerSession) mintWire() *JobWire {
	if d := ms.curDiff.Load(); d != 0 {
		return ms.eng.pool.jobWire(ms.endpoint, ms.slot, d, false)
	}
	return ms.eng.pool.jobWire(ms.endpoint, ms.slot, 0, ms.lowDiff)
}

func (ms *MinerSession) emit(ev Event) {
	ms.evs = append(ms.evs, ev)
}

func (ms *MinerSession) emitJob(stale bool) {
	ms.emitJobRetarget(stale, false)
}

func (ms *MinerSession) emitJobRetarget(stale, retarget bool) {
	ms.eng.jobsSent.Inc()
	w := ms.mintWire()
	ms.emit(Event{
		Kind:     EvJob,
		Job:      w.Job,
		Wire:     w,
		Stale:    stale,
		Retarget: retarget,
	})
}

func (ms *MinerSession) emitError(msg string, fatal bool) {
	ms.emit(Event{Kind: EvError, Err: msg, Fatal: fatal})
}

// offend scores one abuse point total against the session's identity (and,
// when configured, its remote host). It returns true when the offense
// crossed the ban threshold — a fatal banned event has then been emitted
// and the caller must stop producing replies for this command.
func (ms *MinerSession) offend(pts float64, nowNs int64) bool {
	e := ms.eng
	if e.abuse == nil || pts <= 0 {
		return false
	}
	banned, newly := e.abuse.bump(ms.siteKey, pts, nowNs)
	if e.ban.BanByRemoteHost && ms.remote != "" {
		b2, n2 := e.abuse.bump("ip:"+ms.remote, pts, nowNs)
		banned = banned || b2
		newly = newly || n2
	}
	if !banned {
		return false
	}
	if newly {
		e.bans.Inc()
		e.pool.archiveEvent(archive.Event{
			TimeNs: nowNs,
			Kind:   archive.KindBan,
			Actor:  ms.siteKey,
		})
	}
	ms.emit(Event{
		Kind: EvError, Err: stratum.BannedMessage,
		Fatal: true, Banned: true, Code: stratum.RPCBanned,
	})
	return true
}

// Step advances the state machine by one client message and returns the
// replies to deliver, in order. The returned slice is reused by the next
// Step.
func (ms *MinerSession) Step(cmd Command) []Event {
	ms.evs = ms.evs[:0]
	if !ms.authed.Load() {
		// The one legal first message is authentication; anything else —
		// including frames the codec could not parse — is turned away
		// exactly as the original dialect did.
		if cmd.Kind != CmdOpen {
			ms.eng.authReject.Inc()
			ms.emitError("expected auth", true)
			return ms.evs
		}
		return ms.open(cmd.Auth)
	}
	switch cmd.Kind {
	case CmdOpen:
		ms.emitError("unexpected "+stratum.TypeAuth, false)
	case CmdSubmit:
		ms.submit(cmd)
	case CmdKeepalive:
		ms.emit(Event{Kind: EvKeepalive})
		// The keepalive is the one clock a server-clocked dialect gives a
		// silent session: evaluate the idle downstep on it, so a session
		// whose difficulty outgrew its hashrate (or a sandbagger gone
		// quiet) descends back toward the goal cadence.
		if ms.curDiff.Load() != 0 {
			if _, ok := ms.vardiffIdle(ms.eng.clock.Now().UnixNano()); ok {
				ms.emitJobRetarget(false, true)
			}
		}
	case CmdGarbage:
		// Fatal either way; scoring it means a reconnect-and-garbage loop
		// still accumulates toward a ban.
		if ms.offend(ms.eng.ban.MalformedScore, ms.abuseNowNs()) {
			return ms.evs
		}
		ms.emitError("bad message", true)
	case CmdBadParams:
		if ms.offend(ms.eng.ban.MalformedScore, ms.abuseNowNs()) {
			return ms.evs
		}
		ms.emitError(cmd.Reply, false)
	case CmdUnknown:
		if ms.offend(ms.eng.ban.MalformedScore, ms.abuseNowNs()) {
			return ms.evs
		}
		ms.emitError("unexpected "+cmd.Name, false)
	}
	return ms.evs
}

// abuseNowNs reads the clock only when the defense layer will use it.
func (ms *MinerSession) abuseNowNs() int64 {
	if ms.eng.abuse == nil {
		return 0
	}
	return ms.eng.clock.Now().UnixNano()
}

// open authenticates the session: validate the site key, resolve link or
// captcha attachment, and hand out the account ack plus the first job.
func (ms *MinerSession) open(auth stratum.Auth) []Event {
	p := ms.eng.pool
	e := ms.eng
	if auth.SiteKey == "" {
		e.authReject.Inc()
		ms.emitError("invalid site key", true)
		return ms.evs
	}
	ms.siteKey = auth.SiteKey
	if e.abuse != nil {
		nowNs := e.clock.Now().UnixNano()
		// Ban check before anything else: a banned identity gets the named
		// rejection, cheaply, whatever else it sends.
		if e.abuse.isBanned(auth.SiteKey, nowNs) ||
			(e.ban.BanByRemoteHost && ms.remote != "" && e.abuse.isBanned("ip:"+ms.remote, nowNs)) {
			e.authReject.Inc()
			e.loginsBanned.Inc()
			ms.emit(Event{
				Kind: EvError, Err: stratum.BannedMessage,
				Fatal: true, Banned: true, Code: stratum.RPCBanned,
			})
			return ms.evs
		}
		if !e.abuse.allowLogin(auth.SiteKey, nowNs) {
			e.authReject.Inc()
			e.rateLimited.Inc()
			// The trip itself is an offense: a reconnect hammer burning
			// login tokens converts its own rejections into a ban.
			if ms.offend(e.ban.RateLimitScore, nowNs) {
				return ms.evs
			}
			ms.emit(Event{
				Kind: EvError, Err: stratum.RateLimitedMessage,
				Fatal: true, Code: stratum.RPCRateLimited,
			})
			return ms.evs
		}
	}
	switch {
	case strings.HasPrefix(auth.User, "link:"):
		ms.linkID = strings.TrimPrefix(auth.User, "link:")
		if _, err := p.Links().Get(ms.linkID); err != nil {
			ms.eng.authReject.Inc()
			ms.emitError("unknown link", true)
			return ms.evs
		}
	case strings.HasPrefix(auth.User, "captcha:"):
		ms.captchaID = strings.TrimPrefix(auth.User, "captcha:")
		if _, err := p.Captchas().Credit(ms.captchaID, 0); err != nil {
			ms.eng.authReject.Inc()
			ms.emitError("unknown captcha", true)
			return ms.evs
		}
	}
	ms.lowDiff = ms.linkID != "" || ms.captchaID != ""
	// Vardiff applies to ordinary sessions only: link/captcha sessions
	// mine toward fixed hash goals at the dedicated low tier, so
	// retargeting them would change goal semantics mid-visit.
	if e.vardiff.Enabled() && !ms.lowDiff {
		ms.curDiff.Store(e.vardiff.clampDiff(p.ShareDifficulty(false)))
		ms.vdWin.init(e.vardiff.WindowShares)
		ms.lastAcceptNs = e.clock.Now().UnixNano()
	}
	acct := p.Authorize(auth.SiteKey)
	ms.emit(Event{Kind: EvAuthed, Authed: stratum.Authed{
		Token: acct.Token, Hashes: int64(acct.TotalHashes),
	}})
	ms.emitJob(false)
	ms.authed.Store(true)
	return ms.evs
}

// submit scores one decoded share and emits the dialect-independent
// outcome: credit (plus link/captcha progress), a named rejection, or a
// silent stale re-job. The defense screens — rate limit, duplicate memo,
// served-tier check — run before the pool call, so every abusive shape is
// rejected without the CryptoNight verify it is trying to make us burn.
func (ms *MinerSession) submit(cmd Command) {
	p := ms.eng.pool
	e := ms.eng
	// Parse once: the duplicate memo keys on the tier-independent job
	// identity (backend/generation/slot — the -d<N> and -L suffixes name
	// the same PoW blob, so one nonce must dedupe across tiers), and the
	// served-tier check needs the difficulty the ID claims.
	jb, jseq, jslot, _, jdiff, jok := parseJobID(cmd.JobID)
	var memoKey uint64
	if jok {
		memoKey = shareMemoKey(jb, jseq, jslot, cmd.Nonce)
	}
	if e.abuse != nil {
		nowNs := e.clock.Now().UnixNano()
		if !e.abuse.allowSubmit(ms.siteKey, nowNs) {
			e.rateLimited.Inc()
			if ms.offend(e.ban.RateLimitScore, nowNs) {
				return
			}
			ms.emit(Event{
				Kind: EvError, Err: stratum.RateLimitedMessage,
				Code: stratum.RPCRateLimited,
			})
			return
		}
		// Session-local duplicate memo: replays of a share this session
		// was already paid for are named and scored. (The per-account memo
		// in SubmitShare remains the authoritative net — it survives
		// reconnects and covers direct-API callers.)
		if jok && ms.dupMemo.has(memoKey) {
			e.dupShares.Inc()
			// Session-memo rejections never reach SubmitShare, so they are
			// archived here; account-memo rejections are archived by the
			// pool. Each duplicate takes exactly one of the two paths.
			p.archiveShare(archive.KindShareDuplicate, ms.siteKey, cmd.JobID, cmd.Nonce, 0, 0)
			if ms.offend(e.ban.DuplicateScore, nowNs) {
				return
			}
			ms.emitError(stratum.DuplicateShareMessage, false)
			return
		}
	}
	// Served-tier check: a vardiff session may only submit the difficulty
	// it is being served (or the one just before it — one retarget of
	// grace for in-flight shares). Anything else is a diff gamer forging
	// cheap targets; answer with the unknown-job re-job shape, scored,
	// without parsing further or verifying.
	if d := ms.curDiff.Load(); d != 0 {
		if jok && jdiff != d && (jdiff == 0 || jdiff != ms.prevDiff) {
			e.forgedDiffs.Inc()
			if ms.offend(e.ban.ForgedDiffScore, ms.abuseNowNs()) {
				return
			}
			ms.emitJob(true)
			return
		}
	}
	verifyStart := time.Now()
	out, err := p.SubmitShare(ms.siteKey, cmd.JobID, cmd.Nonce, cmd.Result, ms.linkID)
	ms.eng.submitNs.Observe(time.Since(verifyStart))
	stale := false
	retargeted := false
	switch err {
	case nil:
		ms.staleRun = 0
		if e.abuse != nil && jok {
			ms.sessionMemoAdd(memoKey)
		}
		ms.emit(Event{Kind: EvAccepted, Accepted: stratum.HashAccepted{Hashes: int64(out.Credited)}})
		if ms.linkID != "" {
			if url, derr := p.Links().Destination(ms.linkID); derr == nil {
				ms.emit(Event{Kind: EvLinkResolved, Link: stratum.LinkResolved{ID: ms.linkID, URL: url}})
			}
		}
		if ms.captchaID != "" {
			cap, cerr := p.Captchas().Credit(ms.captchaID, out.Diff)
			if cerr == nil && cap.Solved() {
				ms.emit(Event{Kind: EvCaptchaVerified, Captcha: stratum.CaptchaVerified{
					ID: ms.captchaID, Token: cap.Token,
				}})
			}
		}
		if d := ms.curDiff.Load(); d != 0 {
			// A share at the served tier proves the miner has moved on to
			// the new target, so the previous-tier grace is over: leaving
			// prevDiff open would keep the old, possibly cheaper tier
			// submittable for the rest of the retarget interval.
			if jdiff == d {
				ms.prevDiff = 0
			}
			_, retargeted = ms.vardiffAccept(e.clock.Now().UnixNano())
		}
	case ErrStaleJob, ErrUnknownJob:
		// ErrStaleJob is honest work against a job the chain has outrun;
		// ErrUnknownJob a never-issued identifier. Both are answered with a
		// re-job (the transport decides whether its dialect names the
		// condition (TCP) or stays silent (ws)), but only genuine tip churn
		// counts toward pool.shares_stale. Both count toward the same
		// consecutive-run bound: a client that keeps submitting dead or
		// bogus identifiers stops earning re-jobs and gets the named flood
		// error instead — neither tip churn nor an ID-forging flood can be
		// ridden into unbounded free re-jobs.
		if err == ErrStaleJob {
			p.sharesStale.Inc()
		}
		ms.staleRun++
		if e.ban.Enabled() && ms.staleRun > e.ban.StaleFloodAfter {
			e.staleFloods.Inc()
			if ms.offend(e.ban.StaleFloodScore, ms.abuseNowNs()) {
				return
			}
			ms.emit(Event{
				Kind: EvError, Err: stratum.TooManyStaleMessage,
				Code: stratum.RPCTooManyStale,
			})
			return
		}
		stale = true
	case ErrDuplicateShare:
		// The account-level memo caught a replay the session memo could
		// not see (e.g. resubmitted across a reconnect). Same reply and
		// score as the session-level hit; no fresh work for replays.
		if ms.offend(e.ban.DuplicateScore, ms.abuseNowNs()) {
			return
		}
		ms.emitError(stratum.DuplicateShareMessage, false)
		return
	default:
		ms.emitError(err.Error(), false)
	}
	// The client-clocked dialect re-jobs after every submit; a
	// server-clocked one only when the submitted job died (its routine
	// fresh work arrives by push, so minting a job here would be wasted
	// shard work and an overcount of jobs actually handed out) — or when a
	// retarget must reach the miner mid-session.
	if stale || !ms.serverClocked {
		ms.emitJobRetarget(stale, retargeted)
	} else if retargeted {
		ms.emitJobRetarget(false, true)
	}
}

// sessionMemoAdd records an accepted share key in the session-local ring,
// sized lazily to the pool's memo depth (bounded at 64 — the session memo
// is a fast path; the account memo is the authoritative one).
func (ms *MinerSession) sessionMemoAdd(key uint64) {
	if ms.dupMemo.keys == nil {
		size := ms.eng.pool.cfg.ShareMemoSize
		if size <= 0 || size > 64 {
			size = 64
		}
		ms.dupMemo.keys = make([]uint64, size)
	}
	ms.dupMemo.insert(key)
}

// submitCommand decodes the wire-level share fields shared by every
// dialect's submit message into a Command, so the validation rules (and
// their reply texts) exist once regardless of codec.
func submitCommand(jobID, nonceHex, resultHex string) Command {
	nonce, err := stratum.DecodeNonce(nonceHex)
	if err != nil {
		return Command{Kind: CmdBadParams, Reply: "bad nonce"}
	}
	resBytes, err := stratum.DecodeBlob(resultHex)
	if err != nil || len(resBytes) != 32 {
		return Command{Kind: CmdBadParams, Reply: "bad result"}
	}
	cmd := Command{Kind: CmdSubmit, JobID: jobID, Nonce: nonce}
	copy(cmd.Result[:], resBytes)
	return cmd
}
