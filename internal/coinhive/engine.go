package coinhive

import (
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/stratum"
)

// This file is the miner-session engine: every dialect-independent rule of
// the pool's session protocol — auth, link/captcha attachment, share
// scoring, stale-tip re-jobs, session metrics — lives here exactly once,
// as a state machine of decoded Commands in and Events out. Transports
// (the ws+coinhive dialect in server.go, the raw-TCP JSON-RPC dialect in
// stratumtcp.go) are thin codecs: they parse wire frames into Commands,
// render Events back into their dialect, and never touch the Pool.

// CmdKind classifies a decoded client message.
type CmdKind uint8

const (
	// CmdOpen is the authentication request (ws auth / rpc login).
	CmdOpen CmdKind = iota
	// CmdSubmit is a fully decoded share submission.
	CmdSubmit
	// CmdKeepalive is a liveness ping (TCP dialect only).
	CmdKeepalive
	// CmdGarbage is a frame the codec could not parse at all.
	CmdGarbage
	// CmdBadParams is a recognised message with undecodable or malformed
	// parameters; Reply carries the dialect error text.
	CmdBadParams
	// CmdUnknown is a well-formed message of a type/method the dialect
	// does not define; Name carries it.
	CmdUnknown
)

// Command is one decoded client message handed to the engine.
type Command struct {
	Kind   CmdKind
	Auth   stratum.Auth // CmdOpen
	JobID  string       // CmdSubmit
	Nonce  uint32       // CmdSubmit
	Result [32]byte     // CmdSubmit
	Reply  string       // CmdBadParams: dialect error text
	Name   string       // CmdUnknown: offending type/method

	// Tag is transport correlation state (the JSON-RPC id) threaded
	// through to Deliver untouched; the ws dialect leaves it nil.
	Tag interface{}
}

// EventKind classifies an engine reply.
type EventKind uint8

const (
	// EvAuthed acknowledges authentication.
	EvAuthed EventKind = iota
	// EvJob hands out a PoW input.
	EvJob
	// EvAccepted credits an accepted share.
	EvAccepted
	// EvLinkResolved reveals a short link's destination.
	EvLinkResolved
	// EvCaptchaVerified hands a solved captcha its one-time token.
	EvCaptchaVerified
	// EvKeepalive acknowledges a CmdKeepalive.
	EvKeepalive
	// EvError reports a protocol error; Fatal means the session must end
	// after the event is delivered.
	EvError
)

// Event is one engine-produced reply the transport must deliver, in order.
type Event struct {
	Kind     EventKind
	Authed   stratum.Authed          // EvAuthed
	Job      stratum.Job             // EvJob
	Stale    bool                    // EvJob: re-issued because the submitted job went stale
	Accepted stratum.HashAccepted    // EvAccepted
	Link     stratum.LinkResolved    // EvLinkResolved
	Captcha  stratum.CaptchaVerified // EvCaptchaVerified
	Err      string                  // EvError
	Fatal    bool                    // EvError: drop the session after delivering
}

// SessionTransport is the server side of one dialect connection: a codec
// that parses the peer's frames into Commands and renders Events back.
// ReadCommand returns an error only for transport-level death (EOF, close
// handshake, read timeout); parse failures are themselves Commands so the
// engine applies one set of rules to them. Deliver receives the session
// (for dialect state such as push registration) and the command the
// events answer (for correlation). ServerClocked reports whether the
// dialect delivers fresh work by unsolicited push — for such dialects
// the engine omits the routine job that follows every submit in the
// client-clocked protocol (a stale re-job is still emitted: the client's
// current job just died).
type SessionTransport interface {
	ReadCommand() (Command, error)
	Deliver(ms *MinerSession, cmd Command, evs []Event) error
	ServerClocked() bool
}

// Engine owns the dialect-independent half of the session protocol and
// its instruments. Both network fronts (ws Server, TCP StratumServer)
// drive one engine, so session metrics and share accounting aggregate
// across transports.
type Engine struct {
	pool    *Pool
	connSeq uint64

	sessions      *metrics.Gauge   // live miner sessions across all transports
	sessionsTotal *metrics.Counter // sessions ever accepted
	authReject    *metrics.Counter // sessions dropped during auth
	jobsSent      *metrics.Counter // job messages handed out (replies + pushes)
	submitNs      *metrics.Histogram
}

// NewEngine wires an engine over a pool, registering the server.*
// instruments in the pool's metrics registry. Instruments are registered
// by name, so engines sharing a registry share instruments.
func NewEngine(p *Pool) *Engine {
	reg := p.Metrics()
	return &Engine{
		pool:          p,
		sessions:      reg.Gauge("server.sessions"),
		sessionsTotal: reg.Counter("server.sessions_total"),
		authReject:    reg.Counter("server.auth_reject"),
		jobsSent:      reg.Counter("server.jobs_sent"),
		submitNs:      reg.Histogram("server.submit_ns"),
	}
}

// Pool exposes the pool the engine fronts.
func (e *Engine) Pool() *Pool { return e.pool }

// NewSession opens one miner session on the given endpoint. The rotation
// slot comes from a cross-transport sequence, so TCP and ws sessions
// interleave over a backend's templates exactly as two ws endpoints do.
func (e *Engine) NewSession(endpoint int) *MinerSession {
	e.sessionsTotal.Inc()
	e.sessions.Inc()
	return &MinerSession{
		eng:      e,
		endpoint: endpoint,
		slot:     int(atomic.AddUint64(&e.connSeq, 1)),
	}
}

// ServeSession runs one session to completion: decode, step, deliver,
// until the transport dies or the engine declares the session over. This
// loop is the whole serve path of every dialect.
func (e *Engine) ServeSession(endpoint int, t SessionTransport) {
	ms := e.NewSession(endpoint)
	ms.serverClocked = t.ServerClocked()
	defer ms.Close()
	for {
		cmd, err := t.ReadCommand()
		if err != nil {
			return
		}
		evs := ms.Step(cmd)
		if t.Deliver(ms, cmd, evs) != nil {
			return
		}
		for i := range evs {
			if evs[i].Kind == EvError && evs[i].Fatal {
				return
			}
		}
	}
}

// MinerSession is one miner's protocol state, independent of transport.
// Step is called from a single goroutine (the transport's reader);
// Authed/CurrentJob may be called concurrently (the TCP push fan-out).
type MinerSession struct {
	eng      *Engine
	endpoint int
	slot     int
	// serverClocked mirrors the transport: such sessions get fresh work
	// by push, so no routine job rides behind an accepted submit.
	serverClocked bool

	authed    atomic.Bool
	siteKey   string
	linkID    string
	captchaID string
	lowDiff   bool
	closed    bool

	evs []Event // reused reply buffer; valid until the next Step
}

// Authed reports whether the session has completed authentication. Safe
// for concurrent use — the TCP fan-out uses it to skip pre-login conns.
func (ms *MinerSession) Authed() bool { return ms.authed.Load() }

// Close releases the session's slot in the live-session gauge. Idempotent.
func (ms *MinerSession) Close() {
	if ms.closed {
		return
	}
	ms.closed = true
	ms.eng.sessions.Dec()
}

// CurrentJob mints the session's current PoW input — what a server-clocked
// transport pushes when the chain tip moves. Safe for concurrent use with
// Step once the session is authed.
func (ms *MinerSession) CurrentJob() stratum.Job {
	ms.eng.jobsSent.Inc()
	return ms.eng.pool.Job(ms.endpoint, ms.slot, ms.lowDiff)
}

func (ms *MinerSession) emit(ev Event) {
	ms.evs = append(ms.evs, ev)
}

func (ms *MinerSession) emitJob(stale bool) {
	ms.eng.jobsSent.Inc()
	ms.emit(Event{
		Kind:  EvJob,
		Job:   ms.eng.pool.Job(ms.endpoint, ms.slot, ms.lowDiff),
		Stale: stale,
	})
}

func (ms *MinerSession) emitError(msg string, fatal bool) {
	ms.emit(Event{Kind: EvError, Err: msg, Fatal: fatal})
}

// Step advances the state machine by one client message and returns the
// replies to deliver, in order. The returned slice is reused by the next
// Step.
func (ms *MinerSession) Step(cmd Command) []Event {
	ms.evs = ms.evs[:0]
	if !ms.authed.Load() {
		// The one legal first message is authentication; anything else —
		// including frames the codec could not parse — is turned away
		// exactly as the original dialect did.
		if cmd.Kind != CmdOpen {
			ms.eng.authReject.Inc()
			ms.emitError("expected auth", true)
			return ms.evs
		}
		return ms.open(cmd.Auth)
	}
	switch cmd.Kind {
	case CmdOpen:
		ms.emitError("unexpected "+stratum.TypeAuth, false)
	case CmdSubmit:
		ms.submit(cmd)
	case CmdKeepalive:
		ms.emit(Event{Kind: EvKeepalive})
	case CmdGarbage:
		ms.emitError("bad message", true)
	case CmdBadParams:
		ms.emitError(cmd.Reply, false)
	case CmdUnknown:
		ms.emitError("unexpected "+cmd.Name, false)
	}
	return ms.evs
}

// open authenticates the session: validate the site key, resolve link or
// captcha attachment, and hand out the account ack plus the first job.
func (ms *MinerSession) open(auth stratum.Auth) []Event {
	p := ms.eng.pool
	if auth.SiteKey == "" {
		ms.eng.authReject.Inc()
		ms.emitError("invalid site key", true)
		return ms.evs
	}
	switch {
	case strings.HasPrefix(auth.User, "link:"):
		ms.linkID = strings.TrimPrefix(auth.User, "link:")
		if _, err := p.Links().Get(ms.linkID); err != nil {
			ms.eng.authReject.Inc()
			ms.emitError("unknown link", true)
			return ms.evs
		}
	case strings.HasPrefix(auth.User, "captcha:"):
		ms.captchaID = strings.TrimPrefix(auth.User, "captcha:")
		if _, err := p.Captchas().Credit(ms.captchaID, 0); err != nil {
			ms.eng.authReject.Inc()
			ms.emitError("unknown captcha", true)
			return ms.evs
		}
	}
	ms.lowDiff = ms.linkID != "" || ms.captchaID != ""
	ms.siteKey = auth.SiteKey
	acct := p.Authorize(auth.SiteKey)
	ms.emit(Event{Kind: EvAuthed, Authed: stratum.Authed{
		Token: acct.Token, Hashes: int64(acct.TotalHashes),
	}})
	ms.emitJob(false)
	ms.authed.Store(true)
	return ms.evs
}

// submit scores one decoded share and emits the dialect-independent
// outcome: credit (plus link/captcha progress), a named rejection, or a
// silent stale re-job.
func (ms *MinerSession) submit(cmd Command) {
	p := ms.eng.pool
	verifyStart := time.Now()
	out, err := p.SubmitShare(ms.siteKey, cmd.JobID, cmd.Nonce, cmd.Result, ms.linkID)
	ms.eng.submitNs.Observe(time.Since(verifyStart))
	stale := false
	switch err {
	case nil:
		ms.emit(Event{Kind: EvAccepted, Accepted: stratum.HashAccepted{Hashes: int64(out.Credited)}})
		if ms.linkID != "" {
			if url, derr := p.Links().Destination(ms.linkID); derr == nil {
				ms.emit(Event{Kind: EvLinkResolved, Link: stratum.LinkResolved{ID: ms.linkID, URL: url}})
			}
		}
		if ms.captchaID != "" {
			cap, cerr := p.Captchas().Credit(ms.captchaID, out.Diff)
			if cerr == nil && cap.Solved() {
				ms.emit(Event{Kind: EvCaptchaVerified, Captcha: stratum.CaptchaVerified{
					ID: ms.captchaID, Token: cap.Token,
				}})
			}
		}
	case ErrStaleJob:
		// Stale tip: the share was honest work against a job the chain has
		// outrun. Count it and hand out fresh work; the transport decides
		// whether its dialect names the condition (TCP) or stays silent (ws).
		p.sharesStale.Inc()
		stale = true
	case ErrUnknownJob:
		// Never-issued identifier. The wire answer is the same re-job the
		// original dialect gave (pinned by the conformance scenarios), but
		// it is not tip churn, so pool.shares_stale stays untouched.
		stale = true
	default:
		ms.emitError(err.Error(), false)
	}
	// The client-clocked dialect re-jobs after every submit; a
	// server-clocked one only when the submitted job died (its routine
	// fresh work arrives by push, so minting a job here would be wasted
	// shard work and an overcount of jobs actually handed out).
	if stale || !ms.serverClocked {
		ms.emitJob(stale)
	}
}

// submitCommand decodes the wire-level share fields shared by every
// dialect's submit message into a Command, so the validation rules (and
// their reply texts) exist once regardless of codec.
func submitCommand(jobID, nonceHex, resultHex string) Command {
	nonce, err := stratum.DecodeNonce(nonceHex)
	if err != nil {
		return Command{Kind: CmdBadParams, Reply: "bad nonce"}
	}
	resBytes, err := stratum.DecodeBlob(resultHex)
	if err != nil || len(resBytes) != 32 {
		return Command{Kind: CmdBadParams, Reply: "bad result"}
	}
	cmd := Command{Kind: CmdSubmit, JobID: jobID, Nonce: nonce}
	copy(cmd.Result[:], resBytes)
	return cmd
}
