package coinhive

import "testing"

// TestPoolDuplicateShareRejected pins the pool-layer dedupe beneath the
// engine's session memo: the same (job, nonce) can never credit the same
// account twice, whatever session or transport it arrives through.
func TestPoolDuplicateShareRejected(t *testing.T) {
	pool := newTestPool(t, 16)
	j := pool.Job(0, 0, false)
	nonce, sum := mineShare(t, pool, j)

	if _, err := pool.SubmitShare("dup-site", j.JobID, nonce, sum, ""); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// The replay is rejected by name and credits nothing.
	if _, err := pool.SubmitShare("dup-site", j.JobID, nonce, sum, ""); err != ErrDuplicateShare {
		t.Fatalf("replay: err = %v, want ErrDuplicateShare", err)
	}
	st := pool.StatsSnapshot()
	if st.SharesOK != 1 || st.SharesDuplicate != 1 {
		t.Errorf("SharesOK=%d SharesDuplicate=%d, want 1,1", st.SharesOK, st.SharesDuplicate)
	}
	if a, ok := pool.AccountSnapshot("dup-site"); !ok || a.TotalHashes != 16 {
		t.Errorf("account credit = %d, want 16 (one share at difficulty 16)", a.TotalHashes)
	}

	// The memo is per-account, mirroring the subject service's (absent)
	// cross-account defense: another account may submit the same share.
	if _, err := pool.SubmitShare("other-site", j.JobID, nonce, sum, ""); err != nil {
		t.Errorf("cross-account share rejected: %v", err)
	}

	// A distinct nonce on the same job still credits the first account.
	nonce2, sum2 := mineShare(t, pool, j, nonce+1)
	if _, err := pool.SubmitShare("dup-site", j.JobID, nonce2, sum2, ""); err != nil {
		t.Errorf("fresh nonce rejected: %v", err)
	}
	if a, _ := pool.AccountSnapshot("dup-site"); a.TotalHashes != 32 {
		t.Errorf("credit after fresh nonce = %d, want 32", a.TotalHashes)
	}
}

// TestPoolDuplicateAcrossTiersRejected pins the tier-independence of the
// dedupe key: a retargeted job ID names the same PoW blob as its static
// and other-tier siblings, so one nonce is credited once — never once per
// difficulty tier. Keying the memo on the full ID string would let a
// miner straddling a retarget resubmit the same hash under the old- and
// new-tier IDs for double credit.
func TestPoolDuplicateAcrossTiersRejected(t *testing.T) {
	pool := newTestPool(t, 16, func(c *PoolConfig) {
		c.Vardiff = VardiffConfig{TargetSharesPerMin: 240, MinDifficulty: 1, MaxDifficulty: 4096}
	})
	jLow := pool.JobAt(0, 0, 4)
	jHigh := pool.JobAt(0, 0, 32)
	jStatic := pool.Job(0, 0, false)
	// One hash ground against the hardest tier meets every lower target.
	nonce, sum := mineShare(t, pool, jHigh)

	if out, err := pool.SubmitShare("tier-site", jLow.JobID, nonce, sum, ""); err != nil || out.Diff != 4 {
		t.Fatalf("low-tier submit: diff=%d err=%v, want 4,nil", out.Diff, err)
	}
	// The same nonce under any sibling tier's ID is the same work.
	if _, err := pool.SubmitShare("tier-site", jHigh.JobID, nonce, sum, ""); err != ErrDuplicateShare {
		t.Errorf("high-tier replay: err = %v, want ErrDuplicateShare", err)
	}
	if _, err := pool.SubmitShare("tier-site", jStatic.JobID, nonce, sum, ""); err != ErrDuplicateShare {
		t.Errorf("static-tier replay: err = %v, want ErrDuplicateShare", err)
	}
	if a, _ := pool.AccountSnapshot("tier-site"); a.TotalHashes != 4 {
		t.Errorf("credit = %d, want 4 (the one tier actually paid)", a.TotalHashes)
	}
	if st := pool.StatsSnapshot(); st.SharesOK != 1 || st.SharesDuplicate != 2 {
		t.Errorf("SharesOK=%d SharesDuplicate=%d, want 1,2", st.SharesOK, st.SharesDuplicate)
	}
}

// TestPoolShareMemoRingEviction pins the memo's bounded-memory contract:
// it remembers only the most recent ShareMemoSize shares per account, so
// an ancient share replays successfully (the window is an abuse bound,
// not a ledger) while anything inside the window stays rejected.
func TestPoolShareMemoRingEviction(t *testing.T) {
	pool := newTestPool(t, 16, func(c *PoolConfig) { c.ShareMemoSize = 4 })
	j := pool.Job(0, 0, false)

	shares := make([]struct {
		nonce uint32
		sum   [32]byte
	}, 6)
	next := uint32(0)
	for i := range shares {
		shares[i].nonce, shares[i].sum = mineShare(t, pool, j, next)
		next = shares[i].nonce + 1
		if _, err := pool.SubmitShare("ring-site", j.JobID, shares[i].nonce, shares[i].sum, ""); err != nil {
			t.Fatalf("share %d: %v", i, err)
		}
	}
	// Shares 2..5 occupy the 4-slot ring; share 0 has been evicted.
	if _, err := pool.SubmitShare("ring-site", j.JobID, shares[5].nonce, shares[5].sum, ""); err != ErrDuplicateShare {
		t.Errorf("in-window replay: err = %v, want ErrDuplicateShare", err)
	}
	if _, err := pool.SubmitShare("ring-site", j.JobID, shares[0].nonce, shares[0].sum, ""); err != nil {
		t.Errorf("evicted share replay: err = %v, want credit (outside the memo window)", err)
	}
}
