package coinhive

import (
	"errors"
	"fmt"
	"sync"
)

// Short links live at https://cnhv.co/[a-z0-9]{1,4} and are assigned
// increasing IDs (§4.1), "which enables one to enumerate the link address
// space" — the property the paper's scrape exploits and our enumerator
// reproduces. IDs count in base 36 with digit alphabet 0-9a-z, shortest
// representation first: 0..z, 10..zz, ...

const base36 = "0123456789abcdefghijklmnopqrstuvwxyz"

// IDForIndex converts a zero-based creation index to its short-link ID.
func IDForIndex(i uint64) string {
	n := i
	var buf [8]byte
	pos := len(buf)
	for {
		pos--
		buf[pos] = base36[n%36]
		n /= 36
		if n == 0 {
			break
		}
		n-- // shorter strings precede longer ones ("z" then "10")
	}
	return string(buf[pos:])
}

// IndexForID is the inverse of IDForIndex: index = offset(len) + value,
// where offset(L) = 36 + 36² + … + 36^(L−1) counts all shorter IDs and
// value is the plain base-36 reading of the string.
func IndexForID(id string) (uint64, error) {
	if id == "" || len(id) > 8 {
		return 0, fmt.Errorf("coinhive: bad link id %q", id)
	}
	var value uint64
	for i := 0; i < len(id); i++ {
		c := id[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'z':
			d = uint64(c-'a') + 10
		default:
			return 0, fmt.Errorf("coinhive: bad link id %q", id)
		}
		value = value*36 + d
	}
	var offset uint64
	pow := uint64(36)
	for k := 1; k < len(id); k++ {
		offset += pow
		pow *= 36
	}
	return offset + value, nil
}

// Link is one short link.
type Link struct {
	ID       string
	Token    string // creator's site key; mined hashes are credited to it
	URL      string // withheld destination
	Required uint64 // hashes the visitor must compute
	Done     uint64 // hashes credited so far
}

// Resolved reports whether the hash goal has been met.
func (l Link) Resolved() bool { return l.Done >= l.Required }

// ErrNoSuchLink is returned for IDs outside the created space.
var ErrNoSuchLink = errors.New("coinhive: no such short link")

// LinkStore holds the short-link address space.
type LinkStore struct {
	mu    sync.RWMutex
	links []*Link // index == creation order; ID == IDForIndex(index)
	byID  map[string]*Link
}

// NewLinkStore returns an empty store.
func NewLinkStore() *LinkStore {
	return &LinkStore{byID: map[string]*Link{}}
}

// Create registers a new link and returns its ID.
func (s *LinkStore) Create(token, url string, requiredHashes uint64) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := IDForIndex(uint64(len(s.links)))
	l := &Link{ID: id, Token: token, URL: url, Required: requiredHashes}
	s.links = append(s.links, l)
	s.byID[id] = l
	return id
}

// Get returns a snapshot of the link with the given ID.
func (s *LinkStore) Get(id string) (Link, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.byID[id]
	if !ok {
		return Link{}, ErrNoSuchLink
	}
	return *l, nil
}

// Credit adds hashes toward a link's goal, returning the updated snapshot.
func (s *LinkStore) Credit(id string, hashes uint64) (Link, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.byID[id]
	if !ok {
		return Link{}, ErrNoSuchLink
	}
	l.Done += hashes
	return *l, nil
}

// Destination reveals the URL only once the goal is met — before that the
// visitor sees nothing but the progress bar.
func (s *LinkStore) Destination(id string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.byID[id]
	if !ok {
		return "", ErrNoSuchLink
	}
	if !l.Resolved() {
		return "", fmt.Errorf("coinhive: link %s not yet resolved (%d/%d hashes)", id, l.Done, l.Required)
	}
	return l.URL, nil
}

// Len returns the number of created links.
func (s *LinkStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.links)
}

// Snapshot returns copies of all links in creation order.
func (s *LinkStore) Snapshot() []Link {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Link, len(s.links))
	for i, l := range s.links {
		out[i] = *l
	}
	return out
}
