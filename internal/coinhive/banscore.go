package coinhive

import (
	"sync"
	"time"
)

// This file is the abuse-containment layer: a striped table of per-identity
// abuse state — a decaying banscore, a ban deadline, and two token buckets
// (logins, submits) — keyed by site key and, optionally, remote host. The
// engine scores offenses (duplicate shares, stale floods, malformed bursts,
// forged difficulties, rate-limit trips) into it; crossing the threshold
// bans the identity for BanDuration, which rejects logins and drops the
// offending session with a named error.
//
// Identity is keyed on the account (site key), not the connection, so a
// reconnect never resets an attacker's score — the reconnect-hammer
// scenario is contained by exactly this. Everything under the stripe locks
// is O(1) arithmetic on one entry: no hashing, no blocking, no iteration
// on the hot path (the lockscope analyzer enforces the first two).

// BanConfig tunes the defense layer. The zero value disables it
// (BanThreshold == 0).
type BanConfig struct {
	// BanThreshold is the banscore at which an identity is banned.
	// 0 disables the entire defense layer.
	BanThreshold float64
	// DecayPerSec is the banscore's linear decay (points/second,
	// default 1): an identity that stops offending is forgiven at this
	// rate, so sparse honest mistakes never accumulate to a ban.
	DecayPerSec float64
	// BanDuration is how long a ban lasts (default 10m).
	BanDuration time.Duration

	// Per-offense scores (defaults in parentheses).
	DuplicateScore  float64 // resubmitted (job, nonce) (10)
	StaleFloodScore float64 // consecutive stales past StaleFloodAfter (10)
	MalformedScore  float64 // garbage frame / bad params / unknown type (5)
	ForgedDiffScore float64 // job ID at a difficulty never served (10)
	RateLimitScore  float64 // login or submit bucket exhausted (10)

	// StaleFloodAfter is the consecutive-stale bound: after this many
	// stale shares with no accept between them the session stops getting
	// re-jobs and earns {-4, "too many stale"} instead (default 8).
	StaleFloodAfter int

	// Login/submit token buckets, per identity. Rates are tokens/second;
	// bursts the bucket capacity (and initial fill). Defaults: logins
	// 5/s burst 10, submits 20/s burst 40.
	LoginRatePerSec  float64
	LoginBurst       float64
	SubmitRatePerSec float64
	SubmitBurst      float64

	// BanByRemoteHost additionally keys scores and bans on the peer's
	// remote host ("ip:<host>"), so an attacker rotating site keys from
	// one address is still contained. Off by default: NAT'd browser
	// populations (the paper's subject audience) share addresses, and
	// single-host load generation would self-ban.
	BanByRemoteHost bool
}

// Enabled reports whether the defense layer is configured on.
func (c BanConfig) Enabled() bool { return c.BanThreshold > 0 }

func (c *BanConfig) fillDefaults() {
	if !c.Enabled() {
		return
	}
	if c.DecayPerSec == 0 {
		c.DecayPerSec = 1
	}
	if c.BanDuration == 0 {
		c.BanDuration = 10 * time.Minute
	}
	if c.DuplicateScore == 0 {
		c.DuplicateScore = 10
	}
	if c.StaleFloodScore == 0 {
		c.StaleFloodScore = 10
	}
	if c.MalformedScore == 0 {
		c.MalformedScore = 5
	}
	if c.ForgedDiffScore == 0 {
		c.ForgedDiffScore = 10
	}
	if c.RateLimitScore == 0 {
		c.RateLimitScore = 10
	}
	if c.StaleFloodAfter == 0 {
		c.StaleFloodAfter = 8
	}
	if c.LoginRatePerSec == 0 {
		c.LoginRatePerSec = 5
	}
	if c.LoginBurst == 0 {
		c.LoginBurst = 10
	}
	if c.SubmitRatePerSec == 0 {
		c.SubmitRatePerSec = 20
	}
	if c.SubmitBurst == 0 {
		c.SubmitBurst = 40
	}
}

// abuseShardCount stripes the table; identities hash onto stripes so
// concurrent submitters for different accounts rarely contend.
const abuseShardCount = 16

// abuseShardCap bounds one stripe's population; reaching it evicts
// idle, unbanned entries (see evictLocked) so a key-rotating attacker
// cannot grow the table without bound.
const abuseShardCap = 8192

// abuseEntry is one identity's abuse state. All times are unixnanos from
// the engine's clock.
type abuseEntry struct {
	score         float64
	scoreAtNs     int64 // last decay application
	bannedUntilNs int64

	loginTokens  float64
	loginAtNs    int64 // 0 = bucket not yet initialised (starts full)
	submitTokens float64
	submitAtNs   int64

	touchedNs int64 // last activity, for eviction
}

type abuseShard struct {
	mu sync.Mutex
	m  map[string]*abuseEntry
	// decayPerSec mirrors BanConfig.DecayPerSec so the eviction pass can
	// decay scores without reaching back to the table's config.
	decayPerSec float64
}

// abuseTable is the striped identity table.
type abuseTable struct {
	cfg    BanConfig
	shards [abuseShardCount]abuseShard
}

func newAbuseTable(cfg BanConfig) *abuseTable {
	t := &abuseTable{cfg: cfg}
	for i := range t.shards {
		t.shards[i].m = map[string]*abuseEntry{}
		t.shards[i].decayPerSec = cfg.DecayPerSec
	}
	return t
}

// shardFor maps an identity to its stripe (FNV-1a, like stripeFor).
func (t *abuseTable) shardFor(key string) *abuseShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &t.shards[h%abuseShardCount]
}

// entryLocked fetches-or-creates the entry; the caller holds sh.mu.
func (sh *abuseShard) entryLocked(key string, nowNs int64) *abuseEntry {
	e, ok := sh.m[key]
	if !ok {
		if len(sh.m) >= abuseShardCap {
			sh.evictLocked(nowNs)
		}
		e = &abuseEntry{scoreAtNs: nowNs}
		sh.m[key] = e
	}
	e.touchedNs = nowNs
	return e
}

// evictLocked drops entries idle for over ten minutes that are neither
// banned nor carrying score — the only state worth keeping. The score is
// decayed before the test: stored scores are only refreshed on bumps, so
// an identity that offended once and went idle would otherwise hold a
// stale positive score forever and never be evictable — a site-key
// rotator could then grow the stripe past abuseShardCap without bound.
// Runs only when a stripe hits abuseShardCap, so the map iteration is off
// every per-share path.
func (sh *abuseShard) evictLocked(nowNs int64) {
	const idleNs = int64(10 * time.Minute)
	for k, e := range sh.m {
		if e.bannedUntilNs > nowNs || nowNs-e.touchedNs <= idleNs {
			continue
		}
		e.decayLocked(nowNs, sh.decayPerSec)
		if e.score <= 0 {
			delete(sh.m, k)
		}
	}
}

// decayLocked applies the linear score decay up to nowNs.
func (e *abuseEntry) decayLocked(nowNs int64, perSec float64) {
	dt := float64(nowNs-e.scoreAtNs) / float64(time.Second)
	if dt > 0 {
		e.score -= dt * perSec
		if e.score < 0 {
			e.score = 0
		}
		e.scoreAtNs = nowNs
	}
}

// refillLocked advances one token bucket. A zero atNs means first touch:
// the bucket starts full (burst), so honest reconnect churn inside the
// burst is never throttled.
func refillLocked(tokens *float64, atNs *int64, nowNs int64, rate, burst float64) {
	if *atNs == 0 {
		*tokens = burst
		*atNs = nowNs
		return
	}
	dt := float64(nowNs-*atNs) / float64(time.Second)
	if dt > 0 {
		*tokens += dt * rate
		if *tokens > burst {
			*tokens = burst
		}
		*atNs = nowNs
	}
}

// bump scores one offense against key. banned reports whether the
// identity is banned after the bump; newly whether this bump issued the
// ban (the transition the server.bans counter counts).
func (t *abuseTable) bump(key string, pts float64, nowNs int64) (banned, newly bool) {
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entryLocked(key, nowNs)
	if e.bannedUntilNs > nowNs {
		return true, false
	}
	e.decayLocked(nowNs, t.cfg.DecayPerSec)
	e.score += pts
	if e.score >= t.cfg.BanThreshold {
		e.bannedUntilNs = nowNs + int64(t.cfg.BanDuration)
		e.score = 0 // the ban consumed the score; expiry starts clean
		return true, true
	}
	return false, false
}

// isBanned reports whether key is currently banned.
func (t *abuseTable) isBanned(key string, nowNs int64) bool {
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[key]
	return ok && e.bannedUntilNs > nowNs
}

// allowLogin spends one login token for key.
func (t *abuseTable) allowLogin(key string, nowNs int64) bool {
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entryLocked(key, nowNs)
	refillLocked(&e.loginTokens, &e.loginAtNs, nowNs, t.cfg.LoginRatePerSec, t.cfg.LoginBurst)
	if e.loginTokens < 1 {
		return false
	}
	e.loginTokens--
	return true
}

// allowSubmit spends one submit token for key.
func (t *abuseTable) allowSubmit(key string, nowNs int64) bool {
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entryLocked(key, nowNs)
	refillLocked(&e.submitTokens, &e.submitAtNs, nowNs, t.cfg.SubmitRatePerSec, t.cfg.SubmitBurst)
	if e.submitTokens < 1 {
		return false
	}
	e.submitTokens--
	return true
}

// state snapshots one identity's decayed score and ban deadline — the
// cross-transport tests compare these across dialects.
func (t *abuseTable) state(key string, nowNs int64) (score float64, bannedUntilNs int64) {
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[key]
	if !ok {
		return 0, 0
	}
	e.decayLocked(nowNs, t.cfg.DecayPerSec)
	return e.score, e.bannedUntilNs
}
