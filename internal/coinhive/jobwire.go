package coinhive

import (
	"repro/internal/cryptonight"
	"repro/internal/stratum"
	"repro/internal/ws"
)

// JobWire is one job notification encoded once for every transport: the
// decoded Job (for correlation and tests), the TCP dialect's complete
// notify line, and the ws dialect's complete pre-built text frame (the
// header is included — payload length is fixed per tier, so nothing about
// the frame is per-session). A JobWire is immutable after construction
// and shared by reference: a tip event encodes each (backend, slot, tier)
// combination exactly once, however many thousand sessions the fan-out
// then hands the same bytes to.
type JobWire struct {
	Job     stratum.Job
	TCPLine []byte // JSON-RPC job notification, trailing newline included
	WSFrame []byte // complete unmasked ws text frame
}

// newJobWire encodes both wire forms of one job. Every call is a cache
// miss somewhere — pool.job_encodes against server.jobs_sent is the
// bytes-marshaled-per-push telemetry proving the fan-out encodes once.
func (p *Pool) newJobWire(j stratum.Job) *JobWire {
	p.jobEncodes.Inc()
	w := &JobWire{Job: j}
	w.TCPLine = stratum.AppendJobNotifyLine(make([]byte, 0, len(j.Blob)+len(j.JobID)+96), j)
	payload := stratum.AppendJobEnvelope(make([]byte, 0, len(j.Blob)+len(j.JobID)+64), j)
	w.WSFrame = ws.AppendServerFrame(make([]byte, 0, len(payload)+4), ws.OpText, payload)
	return w
}

// jobWire returns the current pre-encoded job for an endpoint/slot at the
// given tier (diff 0 + forLink=false is the static tier). Wires are
// minted lazily under the shard lock and cached until the next refresh;
// refreshes replace the cache slices wholesale, so a wire handed to an
// in-flight event stays valid (and merely stale) after the tip moves.
func (p *Pool) jobWire(endpoint, slot int, diff uint64, forLink bool) *JobWire {
	b := p.BackendOfEndpoint(endpoint)
	sh := p.backends[b]
	s := ((slot % p.cfg.TemplatesPerBackend) + p.cfg.TemplatesPerBackend) % p.cfg.TemplatesPerBackend
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if tip := p.cfg.Chain.TipID(); sh.tip != tip {
		p.refreshShardLocked(sh, b, tip)
	}
	switch {
	case forLink:
		if sh.wireLink[s] == nil {
			if sh.linkJobIDs[s] == "" {
				sh.linkJobIDs[s] = makeJobID(b, sh.refreshSeq, s, true, 0)
			}
			sh.wireLink[s] = p.newJobWire(stratum.Job{
				JobID: sh.linkJobIDs[s], Blob: sh.jobBlobHex[s], Target: p.linkTargetHex,
			})
		}
		return sh.wireLink[s]
	case diff != 0:
		tier := sh.wireDiff[diff]
		if tier == nil {
			if sh.wireDiff == nil {
				sh.wireDiff = map[uint64][]*JobWire{}
			}
			tier = make([]*JobWire, p.cfg.TemplatesPerBackend)
			sh.wireDiff[diff] = tier
		}
		if tier[s] == nil {
			tier[s] = p.newJobWire(stratum.Job{
				JobID:  makeJobID(b, sh.refreshSeq, s, false, diff),
				Blob:   sh.jobBlobHex[s],
				Target: stratum.EncodeTarget(cryptonight.DifficultyForTarget(diff)),
			})
		}
		return tier[s]
	default:
		if sh.wireStatic[s] == nil {
			sh.wireStatic[s] = p.newJobWire(stratum.Job{
				JobID: sh.jobIDs[s], Blob: sh.jobBlobHex[s], Target: p.targetHex,
			})
		}
		return sh.wireStatic[s]
	}
}
