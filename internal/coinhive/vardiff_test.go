package coinhive

import (
	"math"
	"testing"
	"time"
)

// testVardiff is the canonical tuning the retarget tables run against:
// goal 240 shares/min, ±30% hysteresis, step cap ×/÷8, clamp [1, 4096].
func testVardiff() VardiffConfig {
	c := VardiffConfig{
		TargetSharesPerMin: 240,
		MinDifficulty:      1,
		MaxDifficulty:      4096,
	}
	c.fillDefaults(2)
	return c
}

func TestVardiffRetargetTable(t *testing.T) {
	c := testVardiff()
	cases := []struct {
		name     string
		cur      uint64
		observed float64 // accepted shares/min
		want     uint64
		fired    bool
	}{
		// A fast miner ramps up: cadence n× the goal means the difficulty
		// that would have hit the goal is n× the current one.
		{"ramp up 2x", 8, 480, 16, true},
		{"ramp up 4x", 2, 960, 8, true},
		// A sandbagging (or genuinely slow) session steps down.
		{"sandbag down 2x", 64, 120, 32, true},
		{"sandbag down 4x", 64, 60, 16, true},
		// The step cap damps violent swings to ×/÷8 per retarget.
		{"step cap up", 4, 240 * 100, 32, true},
		{"step cap down", 4096, 1, 512, true},
		// A zero-span window reads as +Inf cadence; the cap must turn
		// that into the max upward step, not NaN/overflow.
		{"infinite cadence capped", 4, math.Inf(1), 32, true},
		// Clamping: the ideal lands outside [Min, Max].
		{"clamp at max", 1024, 240 * 8, 4096, true},
		{"clamp at min", 2, 40, 1, true},
		// Hysteresis: within ±30% of the goal is jitter, not signal.
		{"dead band low edge", 100, 240 * 0.70, 100, false},
		{"dead band high edge", 100, 240 * 1.30, 100, false},
		{"dead band exact", 100, 240, 100, false},
		// Just outside the band the retarget fires.
		{"just below band", 100, 240 * 0.69, 69, true},
		{"just above band", 100, 240 * 1.31, 131, true},
		// Already pinned at a clamp edge: no-op retargets report false so
		// the session is not spammed with identical jobs.
		{"pinned at min", 1, 60, 1, false},
		{"pinned at max", 4096, 240 * 10, 4096, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, fired := c.retarget(tc.cur, tc.observed)
			if got != tc.want || fired != tc.fired {
				t.Errorf("retarget(%d, %.1f) = (%d, %v), want (%d, %v)",
					tc.cur, tc.observed, got, fired, tc.want, tc.fired)
			}
		})
	}
}

func TestVardiffWindowCadence(t *testing.T) {
	var w vardiffWindow
	w.init(4)
	base := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	sec := int64(time.Second)

	// Four accepts one second apart: 3 intervals over 3s = 60/min.
	for i := int64(0); i < 4; i++ {
		w.add(base + i*sec)
	}
	if got := w.perMin(); math.Abs(got-60) > 1e-9 {
		t.Errorf("perMin = %v, want 60", got)
	}

	// The ring keeps only the newest WindowShares samples: two more
	// accepts evict the two oldest, and the cadence is measured over the
	// surviving span (2s..5s: 3 intervals over 3s).
	w.add(base + 4*sec)
	w.add(base + 5*sec)
	if w.n != 4 {
		t.Fatalf("window n = %d, want 4 (ring must saturate)", w.n)
	}
	if got := w.perMin(); math.Abs(got-60) > 1e-9 {
		t.Errorf("perMin after wrap = %v, want 60", got)
	}

	// A zero span (replay burst / frozen clock) is +Inf, never NaN.
	w.reset()
	for i := 0; i < 4; i++ {
		w.add(base)
	}
	if got := w.perMin(); !math.IsInf(got, 1) {
		t.Errorf("perMin over zero span = %v, want +Inf", got)
	}

	// reset empties the window without reallocating.
	w.reset()
	if w.n != 0 || w.head != 0 {
		t.Errorf("after reset: n=%d head=%d, want 0,0", w.n, w.head)
	}
}

func TestVardiffDefaults(t *testing.T) {
	var c VardiffConfig
	if c.Enabled() {
		t.Fatal("zero config must be disabled")
	}
	c.TargetSharesPerMin = 240
	c.fillDefaults(256)
	if c.MinDifficulty != 1 || c.MaxDifficulty != 256<<12 {
		t.Errorf("clamp defaults = [%d, %d], want [1, %d]", c.MinDifficulty, c.MaxDifficulty, 256<<12)
	}
	if c.WindowShares != 8 || c.MinWindowShares != 4 || c.HysteresisPct != 30 || c.MaxStepFactor != 8 {
		t.Errorf("window defaults = %+v", c)
	}

	// A huge ShareDifficulty must not overflow the MaxDifficulty shift.
	big := VardiffConfig{TargetSharesPerMin: 240}
	big.fillDefaults(1 << 60)
	if big.MaxDifficulty < 1<<60 {
		t.Errorf("MaxDifficulty overflowed to %d", big.MaxDifficulty)
	}

	// Explicit one-sample windows are clamped to 2: perMin measures the
	// oldest→newest span, and a single-sample window has zero span — +Inf
	// cadence, a maximum upward retarget on every accepted share.
	tiny := VardiffConfig{TargetSharesPerMin: 240, WindowShares: 1, MinWindowShares: 1}
	tiny.fillDefaults(256)
	if tiny.WindowShares != 2 || tiny.MinWindowShares != 2 {
		t.Errorf("one-sample clamp = (%d, %d), want (2, 2)", tiny.WindowShares, tiny.MinWindowShares)
	}
}
