// Package coinhive re-implements the observable behaviour of the Coinhive
// service the paper dissects in §4: a Monero mining pool fronted by 32
// WebSocket endpoints backed by 16 backend systems (each rotating 8 PoW
// inputs, hence the paper's "at most 128 different PoW inputs per block"),
// per-token share accounting with a 70/30 revenue split, the cnhv.co
// short-link forwarding service, and the script/Wasm assets embedded by
// customer websites.
package coinhive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/blockchain"
	"repro/internal/cryptonight"
	"repro/internal/simclock"
	"repro/internal/stratum"
)

// Topology constants observed by the paper.
const (
	DefaultNumBackends         = 16
	DefaultTemplatesPerBackend = 8
	DefaultEndpointsPerBackend = 2
)

// PoolConfig configures a Pool.
type PoolConfig struct {
	Chain               *blockchain.Chain
	Wallet              blockchain.Address
	Clock               simclock.Clock
	NumBackends         int
	TemplatesPerBackend int
	EndpointsPerBackend int
	// ShareDifficulty is the per-share difficulty for ordinary miners;
	// LinkShareDifficulty the (lower) one for short-link visitors.
	ShareDifficulty     uint64
	LinkShareDifficulty uint64
	// FeePercent is the pool's cut (Coinhive: 30).
	FeePercent int
}

func (c *PoolConfig) fillDefaults() {
	if c.NumBackends == 0 {
		c.NumBackends = DefaultNumBackends
	}
	if c.TemplatesPerBackend == 0 {
		c.TemplatesPerBackend = DefaultTemplatesPerBackend
	}
	if c.EndpointsPerBackend == 0 {
		c.EndpointsPerBackend = DefaultEndpointsPerBackend
	}
	if c.ShareDifficulty == 0 {
		c.ShareDifficulty = 256
	}
	if c.LinkShareDifficulty == 0 {
		c.LinkShareDifficulty = 16
	}
	if c.FeePercent == 0 {
		c.FeePercent = 30
	}
	if c.Clock == nil {
		c.Clock = simclock.Real()
	}
}

// Account tracks one site key (the paper treats tokens and users as
// synonymous).
type Account struct {
	Token         string
	TotalHashes   uint64 // credited hash count over all time
	BalanceAtomic uint64
	PaidAtomic    uint64
}

// FoundBlock records a block the pool mined.
type FoundBlock struct {
	Height    uint64
	Timestamp uint64
	Backend   int
	Reward    uint64
}

// Errors returned by SubmitShare.
var (
	ErrUnknownJob   = errors.New("coinhive: unknown or stale job")
	ErrBadShare     = errors.New("coinhive: share hash does not verify")
	ErrLowShare     = errors.New("coinhive: share above target")
	ErrUnknownToken = errors.New("coinhive: unknown site key")
)

type jobRef struct {
	backend  int
	slot     int
	tip      [32]byte
	linkDiff bool
}

// Pool is the in-process pool core. The network front (Server) and the
// simulation driver both operate through it.
type Pool struct {
	cfg PoolConfig

	mu          sync.Mutex
	hasher      *cryptonight.Hasher
	templates   [][]*blockchain.Block // [backend][slot]
	blobs       [][][]byte            // cached hashing blobs per template
	jobBlobHex  [][]string            // cached obfuscated wire blobs
	tip         [32]byte
	jobSeq      uint64
	jobs        map[string]jobRef
	accounts    map[string]*Account
	roundHashes map[string]uint64 // hashes credited since the last found block
	links       *LinkStore
	captchas    *CaptchaService
	found       []FoundBlock
	keptAtomic  uint64 // pool's 30% cut, cumulative
	paidAtomic  uint64 // users' 70%, cumulative
	sharesOK    uint64
	sharesBad   uint64
}

// NewPool builds a pool over an existing chain.
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg.fillDefaults()
	if cfg.Chain == nil {
		return nil, errors.New("coinhive: PoolConfig.Chain is required")
	}
	h, err := cryptonight.NewHasher(cfg.Chain.Params().PowVariant)
	if err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:         cfg,
		hasher:      h,
		jobs:        map[string]jobRef{},
		accounts:    map[string]*Account{},
		roundHashes: map[string]uint64{},
		links:       NewLinkStore(),
		captchas:    NewCaptchaService(cfg.Wallet[:16]),
	}
	p.mu.Lock()
	p.refreshTemplatesLocked()
	p.mu.Unlock()
	return p, nil
}

// Links exposes the short-link store.
func (p *Pool) Links() *LinkStore { return p.links }

// Captchas exposes the proof-of-work captcha service.
func (p *Pool) Captchas() *CaptchaService { return p.captchas }

// ShareDifficulty reports the hash credit per accepted share for the given
// session kind; the network front uses it to credit captchas.
func (p *Pool) ShareDifficulty(lowDiff bool) uint64 {
	if lowDiff {
		return p.cfg.LinkShareDifficulty
	}
	return p.cfg.ShareDifficulty
}

// Chain exposes the underlying chain.
func (p *Pool) Chain() *blockchain.Chain { return p.cfg.Chain }

// NumEndpoints returns the number of public WebSocket endpoints.
func (p *Pool) NumEndpoints() int { return p.cfg.NumBackends * p.cfg.EndpointsPerBackend }

// BackendOfEndpoint maps a public endpoint index to its backend system:
// two endpoints share one backend, as the paper infers ("this suggests
// that there are two endpoints per backend system").
func (p *Pool) BackendOfEndpoint(endpoint int) int {
	return endpoint % p.cfg.NumBackends
}

// refreshTemplatesLocked rebuilds the per-backend PoW inputs on a new tip.
func (p *Pool) refreshTemplatesLocked() {
	tip := p.cfg.Chain.TipID()
	p.tip = tip
	ts := uint64(p.cfg.Clock.Now().Unix())
	p.templates = make([][]*blockchain.Block, p.cfg.NumBackends)
	p.blobs = make([][][]byte, p.cfg.NumBackends)
	p.jobBlobHex = make([][]string, p.cfg.NumBackends)
	// Jobs issued against the previous tip can never verify again; drop
	// them rather than letting the map grow for the chain's lifetime.
	p.jobs = map[string]jobRef{}
	for b := range p.templates {
		p.templates[b] = make([]*blockchain.Block, p.cfg.TemplatesPerBackend)
		p.blobs[b] = make([][]byte, p.cfg.TemplatesPerBackend)
		p.jobBlobHex[b] = make([]string, p.cfg.TemplatesPerBackend)
		for s := range p.templates[b] {
			extra := make([]byte, 8)
			extra[0] = 0xC4 // pool tag
			extra[1] = byte(b)
			extra[2] = byte(s)
			binary.LittleEndian.PutUint32(extra[4:], uint32(p.jobSeq))
			tmpl := p.cfg.Chain.NewTemplate(ts, p.cfg.Wallet, extra, nil)
			p.templates[b][s] = tmpl
			// The blob (and its embedded Merkle root) is fixed for the
			// template's lifetime; caching it keeps the watcher's polling
			// loop off the Keccak hot path.
			blob := tmpl.HashingBlob()
			p.blobs[b][s] = blob
			wire := append([]byte(nil), blob...)
			stratum.ObfuscateBlob(wire)
			p.jobBlobHex[b][s] = stratum.EncodeBlob(wire)
		}
	}
}

// RefreshIfStale rebuilds templates when the chain tip moved (called by the
// simulation after background miners extend the chain).
func (p *Pool) RefreshIfStale() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tip != p.cfg.Chain.TipID() {
		p.refreshTemplatesLocked()
	}
}

// Authorize registers (or fetches) the account for a site key.
func (p *Pool) Authorize(token string) *Account {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accountLocked(token)
}

func (p *Pool) accountLocked(token string) *Account {
	a, ok := p.accounts[token]
	if !ok {
		a = &Account{Token: token}
		p.accounts[token] = a
	}
	return a
}

// Job hands out the current PoW input for an endpoint and connection slot —
// obfuscated, exactly as Coinhive serves it. slot selects one of the
// backend's rotating templates, so polling one endpoint reveals at most
// TemplatesPerBackend distinct inputs per block (the paper measured 8).
func (p *Pool) Job(endpoint, slot int, forLink bool) stratum.Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tip != p.cfg.Chain.TipID() {
		p.refreshTemplatesLocked()
	}
	b := p.BackendOfEndpoint(endpoint)
	s := ((slot % p.cfg.TemplatesPerBackend) + p.cfg.TemplatesPerBackend) % p.cfg.TemplatesPerBackend
	p.jobSeq++
	id := strconv.FormatUint(p.jobSeq, 10)
	p.jobs[id] = jobRef{backend: b, slot: s, tip: p.tip, linkDiff: forLink}
	diff := p.cfg.ShareDifficulty
	if forLink {
		diff = p.cfg.LinkShareDifficulty
	}
	return stratum.Job{
		JobID:  id,
		Blob:   p.jobBlobHex[b][s],
		Target: stratum.EncodeTarget(cryptonight.DifficultyForTarget(diff)),
	}
}

// shareDiffOf returns the hash credit for a job.
func (p *Pool) shareDiffOf(ref jobRef) uint64 {
	if ref.linkDiff {
		return p.cfg.LinkShareDifficulty
	}
	return p.cfg.ShareDifficulty
}

// SubmitShare verifies a miner's share. linkID, when non-empty, credits a
// short link's hash goal instead of only the account. It returns the block
// the share completed, if any (already appended to the chain and paid out).
func (p *Pool) SubmitShare(token, jobID string, nonce uint32, result [32]byte, linkID string) (*blockchain.Block, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	ref, ok := p.jobs[jobID]
	if !ok || ref.tip != p.cfg.Chain.TipID() {
		p.sharesBad++
		return nil, ErrUnknownJob
	}
	tmpl := p.templates[ref.backend][ref.slot]
	blob := tmpl.HashingBlob()
	blockchain.SpliceNonce(blob, tmpl.NonceOffset(), nonce)
	got := p.hasher.Sum(blob)
	if got != result {
		p.sharesBad++
		return nil, ErrBadShare
	}
	diff := p.shareDiffOf(ref)
	if !cryptonight.CheckCompactTarget(result, cryptonight.DifficultyForTarget(diff)) {
		p.sharesBad++
		return nil, ErrLowShare
	}
	p.sharesOK++
	acct := p.accountLocked(token)
	acct.TotalHashes += diff
	p.roundHashes[token] += diff
	if linkID != "" {
		p.links.Credit(linkID, diff)
	}

	// Did the share also satisfy the network difficulty?
	if !cryptonight.CheckDifficulty(result, p.cfg.Chain.NextDifficulty()) {
		return nil, nil
	}
	won := &blockchain.Block{Header: tmpl.Header, Coinbase: tmpl.Coinbase, TxHashes: tmpl.TxHashes}
	won.Nonce = nonce
	if err := p.cfg.Chain.Append(won); err != nil {
		return nil, fmt.Errorf("coinhive: chain rejected our block: %w", err)
	}
	p.settleBlockLocked(won, ref.backend)
	p.refreshTemplatesLocked()
	return won, nil
}

// ProduceWinningBlock is the simulation fast path: the discrete-event
// network decided the pool's aggregate hash power found the next block, so
// one of the current templates is promoted to a real block (bypassing PoW
// verification — see blockchain.AppendUnchecked) and settled. backend and
// nonce are chosen by the caller's randomness; the winning template slot is
// derived from the nonce so all 128 live PoW inputs are possible winners.
func (p *Pool) ProduceWinningBlock(ts uint64, backend int, nonce uint32) (*blockchain.Block, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tip != p.cfg.Chain.TipID() {
		p.refreshTemplatesLocked()
	}
	b := ((backend % p.cfg.NumBackends) + p.cfg.NumBackends) % p.cfg.NumBackends
	tmpl := p.templates[b][int(nonce)%p.cfg.TemplatesPerBackend]
	won := &blockchain.Block{Header: tmpl.Header, Coinbase: tmpl.Coinbase, TxHashes: tmpl.TxHashes}
	if ts > won.Timestamp {
		won.Timestamp = ts
	}
	won.Nonce = nonce
	if err := p.cfg.Chain.AppendUnchecked(won); err != nil {
		return nil, err
	}
	p.settleBlockLocked(won, b)
	p.refreshTemplatesLocked()
	return won, nil
}

// settleBlockLocked distributes a found block's reward: FeePercent stays
// with the pool, the rest is split across accounts in proportion to the
// hashes they contributed this round.
func (p *Pool) settleBlockLocked(b *blockchain.Block, backend int) {
	reward := b.Coinbase.Amount
	// Users receive floor(reward × (100−fee)%); rounding dust favours the
	// pool, as any self-respecting fee schedule would.
	userPart := reward * uint64(100-p.cfg.FeePercent) / 100
	var total uint64
	for _, h := range p.roundHashes {
		total += h
	}
	distributed := uint64(0)
	if total > 0 {
		for token, h := range p.roundHashes {
			cut := userPart * h / total
			p.accounts[token].BalanceAtomic += cut
			distributed += cut
		}
	}
	// Rounding dust (and the whole user part, when nobody contributed
	// shares this round) stays with the pool.
	p.keptAtomic += reward - distributed
	p.paidAtomic += distributed
	p.roundHashes = map[string]uint64{}
	height := p.cfg.Chain.Height()
	p.found = append(p.found, FoundBlock{
		Height: height, Timestamp: b.Timestamp, Backend: backend, Reward: reward,
	})
}

// Stats is a snapshot of pool economics.
type Stats struct {
	BlocksFound   int
	SharesOK      uint64
	SharesBad     uint64
	PaidAtomic    uint64
	KeptAtomic    uint64
	TotalAccounts int
}

// StatsSnapshot returns current counters.
func (p *Pool) StatsSnapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		BlocksFound:   len(p.found),
		SharesOK:      p.sharesOK,
		SharesBad:     p.sharesBad,
		PaidAtomic:    p.paidAtomic,
		KeptAtomic:    p.keptAtomic,
		TotalAccounts: len(p.accounts),
	}
}

// FoundBlocks returns the record of every block the pool mined.
func (p *Pool) FoundBlocks() []FoundBlock {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]FoundBlock(nil), p.found...)
}

// AccountSnapshot returns a copy of the account for token, if present.
func (p *Pool) AccountSnapshot(token string) (Account, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.accounts[token]
	if !ok {
		return Account{}, false
	}
	return *a, true
}
