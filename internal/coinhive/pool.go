// Package coinhive re-implements the observable behaviour of the Coinhive
// service the paper dissects in §4: a Monero mining pool fronted by 32
// WebSocket endpoints backed by 16 backend systems (each rotating 8 PoW
// inputs, hence the paper's "at most 128 different PoW inputs per block"),
// per-token share accounting with a 70/30 revenue split, the cnhv.co
// short-link forwarding service, and the script/Wasm assets embedded by
// customer websites.
//
// The pool core is sharded along the topology the paper observed: each of
// the 16 backend systems owns its template/job state behind its own lock,
// account credit is striped across independent locks, and CryptoNight
// share verification — by far the most expensive operation — runs outside
// every lock, so N concurrent submitters verify on N cores.
package coinhive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/archive"
	"repro/internal/blockchain"
	"repro/internal/cryptonight"
	"repro/internal/metrics"
	"repro/internal/sharechain"
	"repro/internal/simclock"
	"repro/internal/stratum"
)

// Topology constants observed by the paper.
const (
	DefaultNumBackends         = 16
	DefaultTemplatesPerBackend = 8
	DefaultEndpointsPerBackend = 2
)

// accountStripeCount is the number of independent account locks. Tokens are
// hashed onto stripes, so submitters for different site keys rarely contend.
const accountStripeCount = 64

// PoolConfig configures a Pool.
type PoolConfig struct {
	Chain               *blockchain.Chain
	Wallet              blockchain.Address
	Clock               simclock.Clock
	NumBackends         int
	TemplatesPerBackend int
	EndpointsPerBackend int
	// ShareDifficulty is the per-share difficulty for ordinary miners;
	// LinkShareDifficulty the (lower) one for short-link visitors.
	ShareDifficulty     uint64
	LinkShareDifficulty uint64
	// FeePercent is the pool's cut (Coinhive: 30).
	FeePercent int
	// Metrics receives the pool's instruments (pool.* names). Nil gets a
	// private registry, so instrumentation is always wired; the Server
	// shares this registry for its server.* instruments and /metrics.
	Metrics *metrics.Registry
	// Vardiff configures per-session difficulty retargeting (vardiff.go);
	// the zero value keeps the static ShareDifficulty for every session.
	// It lives in the pool config because the pool must honour the job
	// IDs the engine mints at retargeted tiers.
	Vardiff VardiffConfig
	// Ban configures the banscore/rate-limit defense layer (banscore.go);
	// the zero value disables it. Enforced by the engine, configured here
	// so one config describes the whole service.
	Ban BanConfig
	// ShareMemoSize is the per-account duplicate-share memo depth: the
	// last N accepted (job, nonce) pairs per account are remembered and
	// resubmissions rejected with ErrDuplicateShare. 0 means the default
	// (128); negative disables the memo (benchmarks and tests that replay
	// premined shares by design).
	ShareMemoSize int
	// Archive, when non-nil, receives an archive.Event for every
	// observable pool action: share outcomes, retargets, bans, chain
	// appends, found blocks and payouts. The hook is non-blocking by
	// construction (Recorder drops and counts when its queue is full),
	// so a slow archive can never stall the submit path.
	Archive *archive.Recorder
	// Federation, when non-nil, makes this pool one node of a federated
	// multi-node deployment: accepted shares are handed to the share-chain
	// and gossiped to peers through the same non-blocking pattern the
	// Archive hook uses, and found-block settlement switches from the
	// local round tallies to the share-chain's PPLNS window, so converged
	// nodes compute bit-identical payout vectors. Construct with
	// NewFederation and wire links before traffic arrives.
	Federation *Federation
}

func (c *PoolConfig) fillDefaults() {
	if c.NumBackends == 0 {
		c.NumBackends = DefaultNumBackends
	}
	if c.TemplatesPerBackend == 0 {
		c.TemplatesPerBackend = DefaultTemplatesPerBackend
	}
	if c.EndpointsPerBackend == 0 {
		c.EndpointsPerBackend = DefaultEndpointsPerBackend
	}
	if c.ShareDifficulty == 0 {
		c.ShareDifficulty = 256
	}
	if c.LinkShareDifficulty == 0 {
		c.LinkShareDifficulty = 16
	}
	if c.FeePercent == 0 {
		c.FeePercent = 30
	}
	if c.Clock == nil {
		c.Clock = simclock.Real()
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.ShareMemoSize == 0 {
		c.ShareMemoSize = 128
	}
	c.Vardiff.fillDefaults(c.ShareDifficulty)
	c.Ban.fillDefaults()
}

// Account tracks one site key (the paper treats tokens and users as
// synonymous).
type Account struct {
	Token         string
	TotalHashes   uint64 // credited hash count over all time
	BalanceAtomic uint64
	PaidAtomic    uint64
}

// FoundBlock records a block the pool mined.
type FoundBlock struct {
	Height    uint64
	Timestamp uint64
	Backend   int
	Reward    uint64
}

// Errors returned by SubmitShare. ErrStaleJob marks honest work the
// chain outran — a job this pool really minted, submitted after a tip
// move or template refresh; ErrUnknownJob marks identifiers the pool
// never issued (malformed, forged, or self-upgraded to the link tier).
// The session engine re-jobs both the same way, but only stale ones
// count toward pool.shares_stale.
var (
	ErrUnknownJob   = errors.New("coinhive: unknown job")
	ErrStaleJob     = errors.New("coinhive: job from a previous chain tip")
	ErrBadShare     = errors.New("coinhive: share hash does not verify")
	ErrLowShare     = errors.New("coinhive: share above target")
	ErrUnknownToken = errors.New("coinhive: unknown site key")
	// ErrDuplicateShare rejects a (job, nonce) pair the account was
	// already credited for — the pool-layer dedupe beneath the engine's
	// per-session memo, so direct-API callers cannot double-credit either.
	ErrDuplicateShare = errors.New("coinhive: duplicate share")
)

// backendShard is one backend system's template and job state. Each shard
// refreshes lazily on its next access after the chain tip moves, so a tip
// change never stalls the other 15 backends. All per-slot storage is
// allocated once and overwritten in place on refresh, so the steady-state
// refresh cost is the 8 coinbase hashes the topology demands — plus one
// wire-blob hex string per slot, the only thing handed out by reference.
type backendShard struct {
	mu         sync.RWMutex
	tip        [32]byte
	refreshSeq uint32
	templates  []*blockchain.Block // [slot]
	blobs      [][]byte            // cached hashing blobs per template
	jobBlobHex []string            // cached obfuscated wire blobs
	jobIDs     []string            // per-slot wire job IDs for this refresh
	linkJobIDs []string            // per-slot link-difficulty IDs, built on demand
	wire       []byte              // obfuscation scratch

	// Pre-encoded wire forms per slot (and per vardiff tier), minted
	// lazily on first handout after each refresh — the encode-once cache
	// behind the job-push fan-out (see jobwire.go). The slices are
	// replaced, not cleared, on refresh: in-flight events keep valid
	// pointers to the old generation's wires.
	wireStatic []*JobWire
	wireLink   []*JobWire
	wireDiff   map[uint64][]*JobWire
}

// accountStripe holds the accounts (and this round's hash credit) for the
// tokens hashing onto it.
type accountStripe struct {
	mu    sync.Mutex
	accts map[string]*Account
	round map[string]uint64 // hashes credited since the last found block
	memo  map[string]*shareMemo
}

// shareMemo remembers the last N accepted share keys for one account (or
// one session — the engine embeds the same ring). Lookup is a linear scan
// of at most ShareMemoSize uint64s under a lock already held for the
// credit; no hashing happens inside it.
type shareMemo struct {
	keys []uint64 // ring storage; len(keys) is the capacity
	n    int      // live entries
	head int      // overwrite cursor once full
}

func (m *shareMemo) has(k uint64) bool {
	if m == nil { // account with no accepted shares yet
		return false
	}
	for i := 0; i < m.n; i++ {
		if m.keys[i] == k {
			return true
		}
	}
	return false
}

// insert records k, evicting the oldest entry when full. It returns false
// (and records nothing) when k is already present.
func (m *shareMemo) insert(k uint64) bool {
	if m.has(k) {
		return false
	}
	if m.n < len(m.keys) {
		m.keys[m.n] = k
		m.n++
		return true
	}
	m.keys[m.head] = k
	m.head = (m.head + 1) % len(m.keys)
	return true
}

// shareMemoKey folds a submission's tier-independent identity — the
// backend/generation/slot triple that names one PoW blob, plus the nonce —
// to the memo's fixed-width key (FNV-1a). The job ID's difficulty and link
// suffixes are deliberately excluded: a retargeted (or link-tier) ID names
// the same blob as its siblings at other tiers, so one nonce must dedupe
// across all of them — keying on the full ID string would let a miner
// straddling a retarget resubmit the same hash under the old and new tier
// IDs for double credit. A 64-bit digest over ≤128 live entries makes an
// accidental collision — a rejected honest share — vanishingly unlikely,
// and a deliberate collision still earns the attacker nothing but their
// own rejection.
func shareMemoKey(backend int, seq uint32, slot int, nonce uint32) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range [4]uint32{uint32(backend), seq, uint32(slot), nonce} {
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(w >> (8 * i)))
			h *= 1099511628211
		}
	}
	return h
}

// Pool is the in-process pool core. The network front (Server) and the
// simulation driver both operate through it.
type Pool struct {
	cfg PoolConfig

	// variant is the chain's PoW profile; share verification borrows
	// per-goroutine scratchpads from cryptonight's per-variant pool.
	variant cryptonight.Variant

	backends []*backendShard
	stripes  [accountStripeCount]accountStripe

	links    *LinkStore
	captchas *CaptchaService

	// targetHex and linkTargetHex are the wire encodings of the two share
	// targets; they depend only on the pool configuration, so encoding them
	// once keeps Job() off the hex/alloc path entirely.
	targetHex     string
	linkTargetHex string

	// Share accounting counters live in the metrics registry, so the
	// same atomics feed StatsSnapshot and /metrics exposition.
	sharesOK *metrics.Counter
	// sharesBad counts every rejected submission, including stale ones;
	// sharesStale separately counts the stale subset — honest work against
	// a job the chain tip outran, answered with a silent (ws) or named
	// (TCP) re-job rather than an error. The engine increments it, so the
	// split is visible per-service, not per-transport.
	sharesBad *metrics.Counter
	// sharesDup counts the subset of sharesBad rejected by the per-account
	// duplicate memo: a (job, nonce) pair the account was already paid for.
	sharesDup    *metrics.Counter
	sharesStale  *metrics.Counter
	blocksFound  *metrics.Counter
	shardRefresh *metrics.Counter
	// jobEncodes counts JobWire constructions — against server.jobs_sent
	// it is the bytes-marshaled-per-push telemetry: a healthy fan-out
	// encodes once per (backend, slot, tier) per refresh, not per session.
	jobEncodes *metrics.Counter
	kept       atomic.Uint64 // pool's 30% cut, cumulative
	paid       atomic.Uint64 // users' 70%, cumulative

	// settleMu serialises the rare won-a-block path: chain append, reward
	// settlement and the found-block record.
	settleMu sync.Mutex
	found    []FoundBlock
}

// NewPool builds a pool over an existing chain.
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg.fillDefaults()
	if cfg.Chain == nil {
		return nil, errors.New("coinhive: PoolConfig.Chain is required")
	}
	variant := cfg.Chain.Params().PowVariant
	// Validate the variant and warm cryptonight's shared per-variant pool
	// with one scratchpad.
	h, err := cryptonight.GetHasher(variant)
	if err != nil {
		return nil, err
	}
	cryptonight.PutHasher(h)
	p := &Pool{
		cfg:          cfg,
		variant:      variant,
		links:        NewLinkStore(),
		captchas:     NewCaptchaService(cfg.Wallet[:16]),
		sharesOK:     cfg.Metrics.Counter("pool.shares_ok"),
		sharesBad:    cfg.Metrics.Counter("pool.shares_bad"),
		sharesDup:    cfg.Metrics.Counter("pool.shares_duplicate"),
		sharesStale:  cfg.Metrics.Counter("pool.shares_stale"),
		blocksFound:  cfg.Metrics.Counter("pool.blocks_found"),
		shardRefresh: cfg.Metrics.Counter("pool.shard_refresh"),
		jobEncodes:   cfg.Metrics.Counter("pool.job_encodes"),
	}
	for i := range p.stripes {
		p.stripes[i].accts = map[string]*Account{}
		p.stripes[i].round = map[string]uint64{}
		p.stripes[i].memo = map[string]*shareMemo{}
	}
	p.targetHex = stratum.EncodeTarget(cryptonight.DifficultyForTarget(cfg.ShareDifficulty))
	p.linkTargetHex = stratum.EncodeTarget(cryptonight.DifficultyForTarget(cfg.LinkShareDifficulty))
	tip := cfg.Chain.TipID()
	p.backends = make([]*backendShard, cfg.NumBackends)
	for b := range p.backends {
		sh := &backendShard{
			templates:  make([]*blockchain.Block, cfg.TemplatesPerBackend),
			blobs:      make([][]byte, cfg.TemplatesPerBackend),
			jobBlobHex: make([]string, cfg.TemplatesPerBackend),
			jobIDs:     make([]string, cfg.TemplatesPerBackend),
			linkJobIDs: make([]string, cfg.TemplatesPerBackend),
		}
		p.refreshShardLocked(sh, b, tip)
		p.backends[b] = sh
	}
	if fed, rec := cfg.Federation, cfg.Archive; fed != nil && rec != nil {
		// Gossiped-in shares and reorgs become archive events, so a
		// replayed archive reports how much of this node's share-chain
		// arrived over the wire rather than from local miners.
		clock := cfg.Clock
		fed.OnIngest(func(e *sharechain.Entry, reorged bool) {
			now := clock.Now().UnixNano()
			rec.Record(archive.Event{
				TimeNs: now,
				Kind:   archive.KindShareGossipIn,
				Height: e.Height,
				Amount: e.Diff,
				Aux:    uint64(e.Nonce),
				Hash:   e.ID(),
				Actor:  e.Token,
			})
			if reorged {
				rec.Record(archive.Event{
					TimeNs: now,
					Kind:   archive.KindReorg,
					Height: e.Height,
					Hash:   e.ID(),
				})
			}
		})
	}
	if cfg.Archive != nil {
		// Chain appends are archived from the tip listener, which fires
		// synchronously on the appending goroutine after the chain's locks
		// are released — so a block's append event always precedes its
		// settlement events (found-block, payouts) in the archive.
		rec, clock := cfg.Archive, cfg.Clock
		cfg.Chain.Subscribe(func(tip [32]byte, height uint64) {
			rec.Record(archive.Event{
				TimeNs: clock.Now().UnixNano(),
				Kind:   archive.KindBlockAppend,
				Height: height,
				Hash:   tip,
			})
		})
	}
	return p, nil
}

// archiveEvent hands ev to the archive hook, if configured, stamping
// the pool clock when the caller left TimeNs zero.
func (p *Pool) archiveEvent(ev archive.Event) {
	rec := p.cfg.Archive
	if rec == nil {
		return
	}
	if ev.TimeNs == 0 {
		ev.TimeNs = p.cfg.Clock.Now().UnixNano()
	}
	rec.Record(ev)
}

// archiveShare records one share outcome, if the archive hook is
// configured. Kept out of line so the nil check is the only cost on
// the un-archived submit path.
func (p *Pool) archiveShare(kind archive.Kind, token, jobID string, nonce uint32, diff, credited uint64) {
	if p.cfg.Archive == nil {
		return
	}
	p.archiveEvent(archive.Event{
		Kind:   kind,
		Amount: diff,
		Aux:    uint64(nonce),
		Aux2:   credited,
		Actor:  token,
		Ref:    jobID,
	})
}

// Links exposes the short-link store.
func (p *Pool) Links() *LinkStore { return p.links }

// Captchas exposes the proof-of-work captcha service.
func (p *Pool) Captchas() *CaptchaService { return p.captchas }

// ShareDifficulty reports the hash credit per accepted share for the given
// session kind; the network front uses it to credit captchas.
func (p *Pool) ShareDifficulty(lowDiff bool) uint64 {
	if lowDiff {
		return p.cfg.LinkShareDifficulty
	}
	return p.cfg.ShareDifficulty
}

// Chain exposes the underlying chain.
func (p *Pool) Chain() *blockchain.Chain { return p.cfg.Chain }

// Clock exposes the pool's clock; the engine's vardiff and banscore
// timestamps come from it so simulated services stay deterministic.
func (p *Pool) Clock() simclock.Clock { return p.cfg.Clock }

// Vardiff exposes the (defaults-filled) vardiff configuration.
func (p *Pool) Vardiff() VardiffConfig { return p.cfg.Vardiff }

// Ban exposes the (defaults-filled) defense-layer configuration.
func (p *Pool) Ban() BanConfig { return p.cfg.Ban }

// Metrics exposes the registry the pool's instruments live in.
func (p *Pool) Metrics() *metrics.Registry { return p.cfg.Metrics }

// NumEndpoints returns the number of public WebSocket endpoints.
func (p *Pool) NumEndpoints() int { return p.cfg.NumBackends * p.cfg.EndpointsPerBackend }

// BackendOfEndpoint maps a public endpoint index to its backend system:
// two endpoints share one backend, as the paper infers ("this suggests
// that there are two endpoints per backend system").
func (p *Pool) BackendOfEndpoint(endpoint int) int {
	return endpoint % p.cfg.NumBackends
}

// makeJobID encodes the owning backend, the shard's refresh generation and
// the template slot into the wire job identifier ("backend-seq-slot", with
// a "-L" suffix for link-difficulty jobs and a "-d<N>" suffix for
// vardiff-retargeted ones, N being the decimal difficulty served). A share
// routes straight to its shard and slot without any per-job lookup table,
// and the generation makes identifiers from before a tip change
// unresolvable — the stale-job rejection the per-job map used to provide.
// Static-tier IDs are minted once per shard refresh; vardiff IDs per job
// handout, since the difficulty is per-session state.
//
// Encoding the difficulty in the ID is what makes credit scale with the
// difficulty actually served: SubmitShare verifies against and credits the
// ID's own tier, and the engine separately guarantees the session was
// really served that tier (a forged "-d1" is rejected before verification).
func makeJobID(backend int, seq uint32, slot int, link bool, diff uint64) string {
	var buf [48]byte
	b := strconv.AppendUint(buf[:0], uint64(backend), 10)
	b = append(b, '-')
	b = strconv.AppendUint(b, uint64(seq), 10)
	b = append(b, '-')
	b = strconv.AppendUint(b, uint64(slot), 10)
	if link {
		b = append(b, '-', 'L')
	}
	if diff > 0 {
		b = append(b, '-', 'd')
		b = strconv.AppendUint(b, diff, 10)
	}
	return string(b)
}

// parseJobID inverts makeJobID. diff is 0 for static-tier IDs; link and
// diff are mutually exclusive (the link tier is never retargeted).
func parseJobID(id string) (backend int, seq uint32, slot int, link bool, diff uint64, ok bool) {
	if strings.HasSuffix(id, "-L") {
		link = true
		id = id[:len(id)-2]
	}
	// The numeric fields are pure digits, so "-d" can only be the vardiff
	// suffix; a link ID carrying one was never minted.
	if k := strings.LastIndex(id, "-d"); k >= 0 {
		d, err := strconv.ParseUint(id[k+2:], 10, 64)
		if err != nil || d == 0 || link {
			return 0, 0, 0, false, 0, false
		}
		diff = d
		id = id[:k]
	}
	i := strings.IndexByte(id, '-')
	if i <= 0 {
		return 0, 0, 0, false, 0, false
	}
	j := strings.LastIndexByte(id, '-')
	if j <= i {
		return 0, 0, 0, false, 0, false
	}
	b, err := strconv.Atoi(id[:i])
	if err != nil || b < 0 {
		return 0, 0, 0, false, 0, false
	}
	s64, err := strconv.ParseUint(id[i+1:j], 10, 32)
	if err != nil {
		return 0, 0, 0, false, 0, false
	}
	s, err := strconv.Atoi(id[j+1:])
	if err != nil || s < 0 {
		return 0, 0, 0, false, 0, false
	}
	return b, uint32(s64), s, link, diff, true
}

// refreshShardLocked rebuilds one backend's PoW inputs on a new tip. The
// caller holds sh.mu (or, during NewPool, exclusive ownership).
func (p *Pool) refreshShardLocked(sh *backendShard, backend int, tip [32]byte) {
	sh.tip = tip
	sh.refreshSeq++
	p.shardRefresh.Inc()
	ts := uint64(p.cfg.Clock.Now().Unix())
	for s := range sh.templates {
		var extra [8]byte
		extra[0] = 0xC4 // pool tag
		extra[1] = byte(backend)
		extra[2] = byte(s)
		binary.LittleEndian.PutUint32(extra[4:], sh.refreshSeq)
		tmpl := p.cfg.Chain.NewTemplate(ts, p.cfg.Wallet, extra[:], nil)
		sh.templates[s] = tmpl
		// The blob (and its embedded Merkle root) is fixed for the
		// template's lifetime; caching it keeps the watcher's polling
		// loop and the verify path off the Keccak hot path. The slot's
		// buffers are reused across refreshes.
		sh.blobs[s] = tmpl.AppendHashingBlob(sh.blobs[s][:0])
		sh.wire = append(sh.wire[:0], sh.blobs[s]...)
		stratum.ObfuscateBlob(sh.wire)
		sh.jobBlobHex[s] = stratum.EncodeBlob(sh.wire)
		sh.jobIDs[s] = makeJobID(backend, sh.refreshSeq, s, false, 0)
		sh.linkJobIDs[s] = "" // minted on the first link job of this refresh
	}
	sh.wireStatic = make([]*JobWire, len(sh.templates))
	sh.wireLink = make([]*JobWire, len(sh.templates))
	clear(sh.wireDiff)
}

// RefreshIfStale rebuilds templates when the chain tip moved (called by the
// simulation after background miners extend the chain). Shards also refresh
// lazily on their next Job, so this is an optimisation, not a correctness
// requirement; submits against a stale shard are rejected with
// ErrUnknownJob until that shard hands out fresh work.
func (p *Pool) RefreshIfStale() {
	tip := p.cfg.Chain.TipID()
	for b, sh := range p.backends {
		sh.mu.Lock()
		if sh.tip != tip {
			p.refreshShardLocked(sh, b, tip)
		}
		sh.mu.Unlock()
	}
}

// stripeFor maps a token to its account stripe (FNV-1a).
func (p *Pool) stripeFor(token string) *accountStripe {
	h := uint32(2166136261)
	for i := 0; i < len(token); i++ {
		h ^= uint32(token[i])
		h *= 16777619
	}
	return &p.stripes[h%accountStripeCount]
}

// Authorize registers (or fetches) the account for a site key. It returns
// a snapshot, not the live record: handing out the pointer would let
// callers read fields that concurrent SubmitShare calls mutate under the
// stripe lock.
func (p *Pool) Authorize(token string) Account {
	st := p.stripeFor(token)
	st.mu.Lock()
	defer st.mu.Unlock()
	return *st.accountLocked(token)
}

func (st *accountStripe) accountLocked(token string) *Account {
	a, ok := st.accts[token]
	if !ok {
		a = &Account{Token: token}
		st.accts[token] = a
	}
	return a
}

// Job hands out the current PoW input for an endpoint and connection slot —
// obfuscated, exactly as Coinhive serves it. slot selects one of the
// backend's rotating templates, so polling one endpoint reveals at most
// TemplatesPerBackend distinct inputs per block (the paper measured 8).
func (p *Pool) Job(endpoint, slot int, forLink bool) stratum.Job {
	return p.jobWire(endpoint, slot, 0, forLink).Job
}

// JobAt hands out the current PoW input at an explicit vardiff difficulty
// — the engine's retargeted-session job path. The tier is per-session
// state, not shard state, but its wire form is cached per (slot, diff)
// like every other handout (see jobwire.go).
func (p *Pool) JobAt(endpoint, slot int, diff uint64) stratum.Job {
	return p.jobWire(endpoint, slot, diff, false).Job
}

// shareDiffOf returns the hash credit for a job.
func (p *Pool) shareDiffOf(link bool) uint64 {
	if link {
		return p.cfg.LinkShareDifficulty
	}
	return p.cfg.ShareDifficulty
}

// ShareOutcome reports what an accepted share achieved.
type ShareOutcome struct {
	// Credited is the account's total hash credit after this share — what
	// the wire protocol's hash_accepted message carries.
	Credited uint64
	// Diff is the hash credit this share earned.
	Diff uint64
	// Block is non-nil when the share also met the network difficulty and
	// was appended to the chain (already settled and paid out).
	Block *blockchain.Block
}

// SubmitShare verifies a miner's share. linkID, when non-empty, credits a
// short link's hash goal instead of only the account.
//
// Only the template lookup (shard read lock) and the account credit
// (stripe lock) run under locks; the CryptoNight verification in between —
// the dominant cost — runs on the submitter's own scratchpad, so
// concurrent submitters verify in parallel.
func (p *Pool) SubmitShare(token, jobID string, nonce uint32, result [32]byte, linkID string) (ShareOutcome, error) {
	var out ShareOutcome
	b, seq, slot, link, vdiff, ok := parseJobID(jobID)
	if !ok || b >= len(p.backends) || slot >= p.cfg.TemplatesPerBackend {
		p.sharesBad.Add(1)
		p.archiveShare(archive.KindShareRejected, token, jobID, nonce, 0, 0)
		return out, ErrUnknownJob
	}
	// A vardiff-tier ID is only meaningful when vardiff is on and its
	// difficulty inside the configured clamp; anything else was forged.
	if vdiff != 0 && (!p.cfg.Vardiff.Enabled() || vdiff < p.cfg.Vardiff.MinDifficulty || vdiff > p.cfg.Vardiff.MaxDifficulty) {
		p.sharesBad.Add(1)
		p.archiveShare(archive.KindShareRejected, token, jobID, nonce, 0, 0)
		return out, ErrUnknownJob
	}
	// Duplicate pre-check before the CryptoNight verify: a duplicate
	// flood's cost must stay the memo scan, not the very CPU burn the
	// flood is after. The authoritative check-and-insert runs again at
	// credit time under the same stripe lock, closing the race of two
	// concurrent submissions of one share.
	var memoKey uint64
	if p.cfg.ShareMemoSize > 0 {
		memoKey = shareMemoKey(b, seq, slot, nonce)
		st := p.stripeFor(token)
		st.mu.Lock()
		dup := st.memo[token].has(memoKey) // nil memo: has is false
		st.mu.Unlock()
		if dup {
			p.sharesDup.Inc()
			p.sharesBad.Add(1)
			p.archiveShare(archive.KindShareDuplicate, token, jobID, nonce, 0, 0)
			return out, ErrDuplicateShare
		}
	}
	sh := p.backends[b]
	tip := p.cfg.Chain.TipID()
	var (
		tmpl *blockchain.Block
		bbuf [128]byte // hashing blobs fit; keeps the verify path alloc-free
		blob []byte
	)
	sh.mu.RLock()
	// A static-tier ID must equal the ID this refresh actually minted for
	// the slot (link IDs are minted lazily, so an un-issued link ID is the
	// empty string and never matches) and the shard must still be on the
	// chain tip. Together these reproduce what the per-job lookup table
	// enforced: only issued, non-stale jobs resolve, and the difficulty
	// tier is pinned at issue time, not chosen by the submitter. A
	// vardiff-tier ID is a pure function of (backend, generation, slot,
	// diff), so currency is the generation + tip check; its difficulty
	// legitimacy is the clamp above plus the engine's served-tier check
	// (the session rejects tiers it was never served before verification).
	minted := sh.jobIDs[slot]
	if link {
		minted = sh.linkJobIDs[slot]
	}
	curSeq := sh.refreshSeq
	current := sh.tip == tip && seq == curSeq
	if vdiff == 0 {
		current = current && minted == jobID
	}
	if current {
		tmpl = sh.templates[slot]
		blob = append(bbuf[:0], sh.blobs[slot]...)
	}
	sh.mu.RUnlock()
	if blob == nil {
		p.sharesBad.Add(1)
		// Was this identifier ever real? A current-generation ID that
		// matches the minted string (tip moved under it) or any ID from an
		// earlier generation is honest-but-stale; anything else — a future
		// generation, or a current-generation string the shard never
		// issued (e.g. an un-minted link tier) — was forged.
		if minted == jobID || seq < curSeq || (vdiff != 0 && seq == curSeq) {
			p.archiveShare(archive.KindShareStale, token, jobID, nonce, 0, 0)
			return out, ErrStaleJob
		}
		p.archiveShare(archive.KindShareRejected, token, jobID, nonce, 0, 0)
		return out, ErrUnknownJob
	}

	blockchain.SpliceNonce(blob, tmpl.NonceOffset(), nonce)
	got := cryptonight.Sum(blob, p.variant)
	if got != result {
		p.sharesBad.Add(1)
		p.archiveShare(archive.KindShareRejected, token, jobID, nonce, 0, 0)
		return out, ErrBadShare
	}
	// Verify against — and credit — the tier the ID itself carries: that
	// is what keeps TotalHashes an unbiased hashrate estimate across
	// retargets (credit scales with the difficulty actually served).
	diff := p.shareDiffOf(link)
	if vdiff != 0 {
		diff = vdiff
	}
	if !cryptonight.CheckCompactTarget(result, cryptonight.DifficultyForTarget(diff)) {
		p.sharesBad.Add(1)
		p.archiveShare(archive.KindShareRejected, token, jobID, nonce, diff, 0)
		return out, ErrLowShare
	}
	out.Diff = diff

	st := p.stripeFor(token)
	st.mu.Lock()
	if p.cfg.ShareMemoSize > 0 {
		m := st.memo[token]
		if m == nil {
			m = &shareMemo{keys: make([]uint64, p.cfg.ShareMemoSize)}
			st.memo[token] = m
		}
		if !m.insert(memoKey) {
			st.mu.Unlock()
			p.sharesDup.Inc()
			p.sharesBad.Add(1)
			p.archiveShare(archive.KindShareDuplicate, token, jobID, nonce, 0, 0)
			return out, ErrDuplicateShare
		}
	}
	acct := st.accountLocked(token)
	acct.TotalHashes += diff
	st.round[token] += diff
	out.Credited = acct.TotalHashes
	st.mu.Unlock()
	p.sharesOK.Add(1)
	p.archiveShare(archive.KindShareAccepted, token, jobID, nonce, diff, out.Credited)
	if fed := p.cfg.Federation; fed != nil {
		// The blob already has the winning nonce spliced, so the entry is
		// self-certifying on every peer. emitShare copies the stack buffer
		// and never blocks — federation rides the submit path at the cost
		// of one queue offer.
		fed.emitShare(token, diff, nonce, blob, result)
	}
	if linkID != "" {
		p.links.Credit(linkID, diff)
	}

	// Did the share also satisfy the network difficulty?
	if !cryptonight.CheckDifficulty(result, p.cfg.Chain.NextDifficulty()) {
		return out, nil
	}
	p.settleMu.Lock()
	defer p.settleMu.Unlock()
	if tip != p.cfg.Chain.TipID() {
		// Another block landed while we verified; the share was valid work
		// against its tip and stays credited, but it wins nothing.
		return out, nil
	}
	won := &blockchain.Block{Header: tmpl.Header, Coinbase: tmpl.Coinbase, TxHashes: tmpl.TxHashes}
	won.Nonce = nonce
	if err := p.cfg.Chain.Append(won); err != nil {
		if errors.Is(err, blockchain.ErrBadPrev) {
			return out, nil // lost a race with a background miner's block
		}
		return out, fmt.Errorf("coinhive: chain rejected our block: %w", err)
	}
	p.settleLocked(won, b)
	out.Block = won
	return out, nil
}

// ProduceWinningBlock is the simulation fast path: the discrete-event
// network decided the pool's aggregate hash power found the next block, so
// one of the current templates is promoted to a real block (bypassing PoW
// verification — see blockchain.AppendUnchecked) and settled. backend and
// nonce are chosen by the caller's randomness; the winning template slot is
// derived from the nonce so all 128 live PoW inputs are possible winners.
func (p *Pool) ProduceWinningBlock(ts uint64, backend int, nonce uint32) (*blockchain.Block, error) {
	p.settleMu.Lock()
	defer p.settleMu.Unlock()
	b := ((backend % p.cfg.NumBackends) + p.cfg.NumBackends) % p.cfg.NumBackends
	sh := p.backends[b]
	sh.mu.Lock()
	if tip := p.cfg.Chain.TipID(); sh.tip != tip {
		p.refreshShardLocked(sh, b, tip)
	}
	tmpl := sh.templates[int(nonce)%p.cfg.TemplatesPerBackend]
	sh.mu.Unlock()
	won := &blockchain.Block{Header: tmpl.Header, Coinbase: tmpl.Coinbase, TxHashes: tmpl.TxHashes}
	if ts > won.Timestamp {
		won.Timestamp = ts
	}
	won.Nonce = nonce
	if err := p.cfg.Chain.AppendUnchecked(won); err != nil {
		return nil, err
	}
	p.settleLocked(won, b)
	return won, nil
}

// settleLocked distributes a found block's reward: FeePercent stays with
// the pool, the rest is split across accounts in proportion to the hashes
// they contributed this round. The caller holds settleMu; stripe locks are
// taken one at a time, so shares submitted concurrently with settlement
// land cleanly in this round or the next.
func (p *Pool) settleLocked(b *blockchain.Block, backend int) {
	if p.cfg.Federation != nil {
		p.settleFederatedLocked(b, backend)
		return
	}
	reward := b.Coinbase.Amount
	// Users receive floor(reward × (100−fee)%); rounding dust favours the
	// pool, as any self-respecting fee schedule would.
	userPart := reward * uint64(100-p.cfg.FeePercent) / 100
	round := map[string]uint64{}
	var total uint64
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		for token, h := range st.round {
			round[token] += h
			total += h
		}
		st.round = map[string]uint64{}
		st.mu.Unlock()
	}
	height := p.cfg.Chain.Height()
	p.archiveEvent(archive.Event{
		Kind:   archive.KindBlockFound,
		Height: height,
		Amount: reward,
		Aux:    b.Timestamp,
		Aux2:   uint64(backend),
	})
	distributed := uint64(0)
	if total > 0 {
		// Tokens are paid in sorted order so the archived payout sequence
		// is deterministic — map iteration order must not leak into what a
		// replay is compared against.
		tokens := make([]string, 0, len(round))
		for token := range round {
			tokens = append(tokens, token)
		}
		sort.Strings(tokens)
		for _, token := range tokens {
			cut := userPart * round[token] / total
			st := p.stripeFor(token)
			st.mu.Lock()
			st.accountLocked(token).BalanceAtomic += cut
			st.mu.Unlock()
			distributed += cut
			p.archiveEvent(archive.Event{
				Kind:   archive.KindPayout,
				Height: height,
				Amount: cut,
				Actor:  token,
			})
		}
	}
	// Rounding dust (and the whole user part, when nobody contributed
	// shares this round) stays with the pool.
	p.kept.Add(reward - distributed)
	p.paid.Add(distributed)
	p.blocksFound.Inc()
	p.found = append(p.found, FoundBlock{
		Height: height, Timestamp: b.Timestamp, Backend: backend, Reward: reward,
	})
}

// settleFederatedLocked is settleLocked's federation twin: the reward
// still splits FeePercent/user-part, but the user part follows the
// share-chain's PPLNS window instead of this node's round tallies. The
// window is a pure function of the (converged) entry set, so every node
// in the federation computes the same payout vector for the same block —
// which is what lets N nodes settle independently without reconciling.
// Local round tallies still reset: "this round" remains a meaningful
// local statistic even though it no longer prices payouts.
func (p *Pool) settleFederatedLocked(b *blockchain.Block, backend int) {
	reward := b.Coinbase.Amount
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		st.round = map[string]uint64{}
		st.mu.Unlock()
	}
	height := p.cfg.Chain.Height()
	p.archiveEvent(archive.Event{
		Kind:   archive.KindBlockFound,
		Height: height,
		Amount: reward,
		Aux:    b.Timestamp,
		Aux2:   uint64(backend),
	})
	// PayoutVector is already fee-discounted, sorted-token, integer math
	// with dust truncated per account — deterministic across nodes.
	distributed := uint64(0)
	for _, po := range p.cfg.Federation.Chain().PayoutVector(reward) {
		st := p.stripeFor(po.Token)
		st.mu.Lock()
		st.accountLocked(po.Token).BalanceAtomic += po.Amount
		st.mu.Unlock()
		distributed += po.Amount
		p.archiveEvent(archive.Event{
			Kind:   archive.KindPayout,
			Height: height,
			Amount: po.Amount,
			Actor:  po.Token,
		})
	}
	p.kept.Add(reward - distributed)
	p.paid.Add(distributed)
	p.blocksFound.Inc()
	p.found = append(p.found, FoundBlock{
		Height: height, Timestamp: b.Timestamp, Backend: backend, Reward: reward,
	})
}

// Federation exposes the federation bundle, nil for standalone pools.
func (p *Pool) Federation() *Federation { return p.cfg.Federation }

// Stats is a snapshot of pool economics.
type Stats struct {
	BlocksFound int
	SharesOK    uint64
	SharesBad   uint64
	// SharesStale is the subset of SharesBad rejected only because the
	// chain tip outran the job — sessions that hit it were re-jobbed, not
	// errored. SharesDuplicate is the subset rejected by the per-account
	// duplicate memo.
	SharesStale     uint64
	SharesDuplicate uint64
	PaidAtomic      uint64
	KeptAtomic      uint64
	TotalAccounts   int
}

// StatsSnapshot returns current counters.
func (p *Pool) StatsSnapshot() Stats {
	p.settleMu.Lock()
	blocks := len(p.found)
	p.settleMu.Unlock()
	accounts := 0
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		accounts += len(st.accts)
		st.mu.Unlock()
	}
	return Stats{
		BlocksFound:     blocks,
		SharesOK:        p.sharesOK.Load(),
		SharesBad:       p.sharesBad.Load(),
		SharesStale:     p.sharesStale.Load(),
		SharesDuplicate: p.sharesDup.Load(),
		PaidAtomic:      p.paid.Load(),
		KeptAtomic:      p.kept.Load(),
		TotalAccounts:   accounts,
	}
}

// FoundBlocks returns the record of every block the pool mined.
func (p *Pool) FoundBlocks() []FoundBlock {
	p.settleMu.Lock()
	defer p.settleMu.Unlock()
	return append([]FoundBlock(nil), p.found...)
}

// AccountSnapshot returns a copy of the account for token, if present.
func (p *Pool) AccountSnapshot(token string) (Account, bool) {
	st := p.stripeFor(token)
	st.mu.Lock()
	defer st.mu.Unlock()
	a, ok := st.accts[token]
	if !ok {
		return Account{}, false
	}
	return *a, true
}
