package coinhive

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/netpark"
	"repro/internal/stratum"
)

// StratumServer is the raw-TCP front of the pool: the newline-delimited
// JSON-RPC 2.0 stratum dialect native Monero miners speak, bridged onto
// the same session engine as the ws dialect. Where the ws dialect is
// strictly client-clocked (the pool only ever answers), this one is
// server-clocked: the server subscribes to chain tip events and pushes a
// fresh job notification to every authenticated session the moment the
// tip moves, instead of waiting for each miner's next submit.
//
// Dialect, one JSON object per line (max stratum.MaxRPCLine bytes):
//
//	→ {"id":1,"jsonrpc":"2.0","method":"login","params":{"login":SITEKEY,"pass":USER,"agent":...}}
//	← {"id":1,"jsonrpc":"2.0","result":{"id":TOKEN,"job":{...},"status":"OK","hashes":N}}
//	→ {"id":2,"method":"submit","params":{"id":TOKEN,"job_id":...,"nonce":HEX8,"result":HEX64}}
//	← {"id":2,"result":{"status":"OK","hashes":N}}            accepted
//	← {"id":2,"error":{"code":-3,"message":"stale job"}}      tip outran the job; fresh job follows
//	→ {"id":3,"method":"keepalived","params":{"id":TOKEN}}
//	← {"id":3,"result":{"status":"KEEPALIVED"}}
//	← {"jsonrpc":"2.0","method":"job","params":{...}}          server push (no id)
//	← {"jsonrpc":"2.0","method":"link_resolved","params":{...}}
//	← {"jsonrpc":"2.0","method":"captcha_verified","params":{...}}
//
// login.pass carries the ws dialect's user field, so "link:ID" and
// "captcha:ID" sessions work identically over TCP. Oversize lines and
// unparseable JSON get one error response and the connection is dropped;
// a connection silent for longer than KeepaliveWindow is dropped without
// ceremony — that is what keepalived is for.
//
// Scaling shape: a server-clocked session is silent almost all of its
// life, so idle connections are *parked* (netpark) — no reader goroutine,
// no bufio buffer — and resumed when bytes arrive or the keepalive window
// lapses. Job pushes never touch the parked read side: the fan-out
// enqueues the tier's pre-encoded wire line (JobWire, minted once per
// tip × tier) on a per-connection outbound queue, drained in batches by
// an on-demand writer goroutine. Goroutines therefore scale with
// *active* sessions plus in-flight pushes, not with live sessions.
type StratumServer struct {
	eng *Engine

	// KeepaliveWindow bounds peer silence: each read (or park) waits at
	// most this long before the connection is declared dead. Zero means
	// the default of 90 seconds. Compliant clients ping every
	// session.KeepaliveInterval (30s) while busy, so production windows
	// must stay comfortably above that; sub-interval windows are for
	// tests. Set it before calling Serve; connection goroutines read it
	// unsynchronised.
	KeepaliveWindow time.Duration

	conns  connSet[*stratumConn]
	parker *netpark.Parker

	// readers recycles bufio read buffers across park/resume cycles: a
	// parked session holds no buffer, so the pool's size tracks active
	// sessions, not live ones.
	readers sync.Pool

	mu sync.Mutex // guards ln and unsubscribe
	ln net.Listener

	unsubscribe func()
	// pushWake coalesces tip events for the notifier goroutine: the
	// chain's Subscribe callback must not block (it runs on whichever
	// goroutine appended the block — possibly a miner's submit path
	// holding the pool's settle lock), and job pushes always carry the
	// *current* job, so back-to-back tips collapse into one fan-out.
	// pendingTipNs holds the earliest tip event the next fan-out will
	// serve (unix nanos, 0 = none), so push latency is measured from the
	// moment miners' work went stale, not from when the notifier got
	// around to it.
	pushWake     chan struct{}
	stop         chan struct{}
	pendingTipNs atomic.Int64

	// drainq feeds connections whose push queue just went non-empty to a
	// small fixed pool of drain workers. A goroutine per draining conn
	// would mean one spawn per session per tip event — at 50k sessions
	// that is 50k goroutine creations per fan-out, and the spawn cost
	// alone dominates delivery latency. The pool amortises it to one
	// channel hop; enqueuePush falls back to spawning only if the queue
	// is full (it is sized past the largest supported swarm).
	drainq chan *stratumConn

	pushes     *metrics.Counter   // job notifications delivered on tip events
	pushNs     *metrics.Histogram // tip-to-socket delivery latency per notification
	pushBytes  *metrics.Counter   // wire bytes written by the push path
	queueDepth *metrics.Gauge     // outstanding queued pushes (Peak = worst backlog)
}

// Number of pushes one connection may have outstanding before it is
// declared stalled and torn down. At one push per tip event, a healthy
// peer's queue never exceeds a handful; 64 means the peer stopped
// reading for dozens of chain ticks.
const pushQueueCap = 64

// parkGrace bounds the read wait after a park wake: the wake promised
// bytes, so if none show up quickly the session re-parks instead of
// holding a goroutine for the rest of the keepalive window.
const parkGrace = 2 * time.Second

// drainWorkers is the fixed drain pool size. Writes are buffered-socket
// fast in the common case, so a handful of workers sustains full-swarm
// fan-out; a stalled peer can pin a worker for at most one write
// deadline (writeBatch's 2s) before it is torn down.
const drainWorkers = 8

// drainQueueCap sizes drainq past the largest supported swarm: one tip
// fan-out enqueues each live conn at most once (the draining flag
// dedupes), so 64k slots cover the 50k tier without ever falling back
// to per-conn goroutine spawns.
const drainQueueCap = 1 << 16

// NewStratumServer builds the TCP front over an engine (share one engine
// with the ws Server so session accounting spans both transports) and
// subscribes to the pool chain's tip events for job push fan-out.
func NewStratumServer(e *Engine) *StratumServer {
	reg := e.Pool().Metrics()
	s := &StratumServer{
		eng:        e,
		parker:     netpark.New(0),
		pushWake:   make(chan struct{}, 1),
		stop:       make(chan struct{}),
		drainq:     make(chan *stratumConn, drainQueueCap),
		pushes:     reg.Counter("stratum.jobs_pushed"),
		pushNs:     reg.Histogram("stratum.push_ns"),
		pushBytes:  reg.Counter("server.push_bytes"),
		queueDepth: reg.Gauge("server.push_queue_depth"),
	}
	go s.pushLoop()
	for i := 0; i < drainWorkers; i++ {
		go s.drainLoop()
	}
	s.unsubscribe = e.Pool().Chain().Subscribe(func(tip [32]byte, height uint64) {
		// Keep the EARLIEST unserved tip's timestamp: a coalesced fan-out
		// serves every tip since the last one, and its latency is how
		// long the oldest of them has been waiting.
		s.pendingTipNs.CompareAndSwap(0, time.Now().UnixNano())
		select {
		case s.pushWake <- struct{}{}:
		default: // a fan-out is already pending; it will carry this tip's job
		}
	})
	return s
}

// pushLoop serialises fan-outs on one goroutine. Fan-out only *enqueues*
// (socket writes happen on per-connection drainers), so one stalled peer
// never delays other miners' pushes, let alone the share verification or
// settle path that appended the block.
func (s *StratumServer) pushLoop() {
	for {
		select {
		case <-s.pushWake:
			s.fanOut()
		case <-s.stop:
			return
		}
	}
}

// drainLoop is one drain pool worker: it runs queued conns' drainers to
// completion. Conns re-enter drainq only on a fresh empty→non-empty
// queue edge, so each sits in the pool at most once at a time.
func (s *StratumServer) drainLoop() {
	for {
		select {
		case c := <-s.drainq:
			c.drainPushes()
		case <-s.stop:
			return
		}
	}
}

// Serve accepts miner connections on ln until the listener is closed.
// Transient accept failures (EMFILE under a connection storm, and the
// like) are retried with backoff rather than killing the front — only a
// closed listener or shutdown ends the loop.
func (s *StratumServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	if s.conns.Draining() {
		// Shutdown already ran (it can race a `go Serve(ln)`): it either
		// missed the listener registered above or closed it already;
		// closing here covers the former, and keeps the port from staying
		// bound to a front that would accept-and-drop forever.
		_ = ln.Close()
		return net.ErrClosed
	}
	var (
		seq   int // endpoint rotation; the accept loop is its only writer
		delay time.Duration
	)
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.conns.Draining() || errors.Is(err, net.ErrClosed) {
				return err
			}
			if delay == 0 {
				delay = 5 * time.Millisecond
			} else if delay *= 2; delay > time.Second {
				delay = time.Second
			}
			time.Sleep(delay)
			continue
		}
		delay = 0
		seq++
		go s.serveConn(nc, seq%s.eng.Pool().NumEndpoints())
	}
}

// Addr returns the listen address once Serve has been called.
func (s *StratumServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting sessions, unsubscribes from tip events and
// tears every live connection down. TCP stratum has no close handshake —
// the dialect's liveness story is the keepalive window — so draining is
// simply tearing the transports down; the parker is closed last so
// parked entries cannot fire mid-teardown.
func (s *StratumServer) Shutdown() {
	open, first := s.conns.Drain()
	if !first {
		return
	}
	s.mu.Lock()
	ln := s.ln
	unsub := s.unsubscribe
	s.unsubscribe = nil
	s.mu.Unlock()
	if unsub != nil {
		unsub()
	}
	close(s.stop)
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range open {
		c.teardown()
	}
	s.parker.Close()
}

// Drained reports whether every session has been torn down, waiting up
// to timeout.
func (s *StratumServer) Drained(timeout time.Duration) bool {
	return s.conns.Drained(timeout)
}

// Parked reports how many sessions currently hold no goroutine.
func (s *StratumServer) Parked() int64 { return s.parker.Parked() }

// PushStats exposes the fan-out instruments: how many job notifications
// tip events have pushed and the per-session delivery latency histogram.
func (s *StratumServer) PushStats() (pushes uint64, latency metrics.HistSnapshot) {
	return s.pushes.Load(), s.pushNs.Snapshot()
}

// PushCursor marks the current fan-out state; pair with PushStatsSince
// for per-phase numbers (one load scenario out of a longer run).
func (s *StratumServer) PushCursor() metrics.HistCursor { return s.pushNs.Cursor() }

// PushStatsSince reports the fan-out activity recorded after the cursor.
func (s *StratumServer) PushStatsSince(c metrics.HistCursor) (pushes uint64, latency metrics.HistSnapshot) {
	lat := s.pushNs.SnapshotSince(c)
	return lat.Count, lat
}

// fanOut queues the current job for every authenticated session — the
// server-clocked half of the dialect. The wire bytes are minted at most
// once per (tip × vardiff tier) by the JobWire cache; every session on
// the same tier shares the same line. Latency is observed per session at
// the moment its bytes hit the socket, measured since the (earliest
// coalesced) tip event, so the histogram's p99 is the fan-out tail: how
// long the last miners wait for fresh work after a block lands.
func (s *StratumServer) fanOut() {
	t0 := time.Now().UnixNano()
	if ns := s.pendingTipNs.Swap(0); ns != 0 {
		t0 = ns
	}
	// One wire lookup per (endpoint, slot, tier) instead of per session:
	// mintWire takes the template shard's lock, and a 50k-session swarm
	// spans only a few dozen distinct wires. If the tip moves mid-loop the
	// cache serves the old tip's wire to the remaining sessions — exactly
	// what an uncached loop part-way through its snapshot does — and the
	// pending pushWake fans the new tip out to everyone right after.
	type wireKey struct {
		endpoint, slot int
		diff           uint64
		low            bool
	}
	wires := make(map[wireKey]*JobWire, 64)
	var sent uint64
	for _, c := range s.conns.Snapshot() {
		if !c.pushable.Load() || c.dead.Load() {
			continue
		}
		ms := c.ms
		k := wireKey{ms.endpoint, ms.slot, ms.curDiff.Load(), ms.lowDiff}
		w := wires[k]
		if w == nil {
			w = ms.mintWire()
			wires[k] = w
		}
		sent++
		c.enqueuePush(w.TCPLine, t0)
	}
	s.eng.jobsSent.Add(sent)
}

func (s *StratumServer) keepaliveWindow() time.Duration {
	if s.KeepaliveWindow > 0 {
		return s.KeepaliveWindow
	}
	return 90 * time.Second
}

// borrowReader hands out a pooled MaxRPCLine-sized bufio reader bound to
// nc. Paired with putReader around every park, so buffers follow the
// active sessions instead of pinning one per live connection.
func (s *StratumServer) borrowReader(nc net.Conn) *bufio.Reader {
	if v := s.readers.Get(); v != nil {
		br := v.(*bufio.Reader)
		br.Reset(nc)
		return br
	}
	return bufio.NewReaderSize(nc, stratum.MaxRPCLine)
}

func (s *StratumServer) putReader(br *bufio.Reader) {
	br.Reset(nil) // drop the conn reference while pooled
	s.readers.Put(br)
}

// serveConn runs one miner connection: bind a session, track for drain,
// then drive it until it parks or dies.
func (s *StratumServer) serveConn(nc net.Conn, endpoint int) {
	c := &stratumConn{srv: s, nc: nc}
	c.ms = s.eng.BindSession(endpoint, c)
	if !s.conns.Track(c) {
		c.teardown()
		return
	}
	c.runSteps(false)
}

// stratumConn is the JSON-RPC dialect codec plus per-connection push
// queue for one miner. Three kinds of goroutine touch it: the session
// goroutine (accept or park-resume; at most one at a time — the park
// protocol hands off ownership), the push drainer, and whoever calls
// teardown first.
type stratumConn struct {
	srv *StratumServer
	nc  net.Conn
	ms  *MinerSession

	// Session-goroutine state. br is nil while parked (returned to the
	// server pool); parkDeadline is the wake-or-reap bound the parker was
	// armed with. The parker's internal synchronisation orders the
	// pre-park writes before the resume goroutine's reads.
	br           *bufio.Reader
	parkDeadline time.Time

	wmu   sync.Mutex // serialises all socket writers (replies and push batches)
	wbuf  []byte
	iovec net.Buffers // writev scratch for push batches
	wdlNs int64       // armed write deadline (ns since epoch), guarded by wmu

	outMu    sync.Mutex
	outq     []pushItem
	outSpare []pushItem // double-buffer: last drained batch, recycled on swap
	draining bool

	pushable atomic.Bool
	dead     atomic.Bool
}

// pushItem is one queued job push: a pointer into the shared per-tier
// wire line (never mutated) plus the tip timestamp latency is measured
// from.
type pushItem struct {
	line  []byte
	tipNs int64
}

// teardown kills the connection exactly once, from whichever goroutine
// notices death first: the session goroutine (read error, fatal engine
// event), the push drainer (stalled or dead socket), the park timer
// (keepalive window lapsed), or Shutdown.
func (c *stratumConn) teardown() {
	if !c.dead.CompareAndSwap(false, true) {
		return
	}
	_ = c.nc.Close()
	c.srv.conns.Untrack(c)
	c.ms.Close()
}

// die is the session goroutine's teardown: it also returns the pooled
// read buffer this goroutine owns.
func (c *stratumConn) die() {
	c.teardown()
	if c.br != nil {
		c.srv.putReader(c.br)
		c.br = nil
	}
}

// runSteps drives the session until it parks or dies. The first entry
// runs on the accept goroutine; every re-entry runs on a fresh resume
// goroutine (see onWake), so a parked session holds no stack at all.
func (c *stratumConn) runSteps(resumed bool) {
	if c.br == nil {
		c.br = c.srv.borrowReader(c.nc)
	}
	for {
		if resumed {
			resumed = false
			// The wake promised bytes (or a dead peer). Peek without
			// consuming: a spurious wake re-parks for the remainder of the
			// keepalive window, and a mid-line stall later still kills the
			// connection because ReadCommand's own deadline bounds the full
			// line.
			if err := c.nc.SetReadDeadline(time.Now().Add(parkGrace)); err != nil {
				c.die()
				return
			}
			if _, err := c.br.Peek(1); err != nil {
				if !isTimeout(err) || !time.Now().Before(c.parkDeadline) {
					c.die()
					return
				}
				if c.park(c.parkDeadline) {
					return
				}
				// No parking available: fall through to a blocking read.
			}
		}
		cmd, err := c.ReadCommand()
		if err != nil {
			c.die()
			return
		}
		if c.srv.eng.StepDeliver(c.ms, c, cmd) {
			c.die()
			return
		}
		if c.br.Buffered() > 0 {
			continue // a pipelined request is already in hand
		}
		if c.park(time.Now().Add(c.srv.keepaliveWindow())) {
			return
		}
	}
}

// park releases the session's goroutine and pooled read buffer until the
// peer sends bytes (resume) or deadline passes (reap). False means the
// connection offers no readiness source; the caller keeps its goroutine
// and blocking reads.
func (c *stratumConn) park(deadline time.Time) bool {
	if c.br.Buffered() != 0 {
		return false // bytes already in hand; parking would strand them
	}
	c.parkDeadline = deadline
	c.srv.putReader(c.br)
	c.br = nil
	if c.srv.parker.Park(c.nc, deadline, c.onWake, c.teardown) {
		return true
	}
	c.br = c.srv.borrowReader(c.nc)
	return false
}

// onWake resumes a parked session on its own goroutine. Resumed sessions
// are exactly the active ones, so the goroutine count tracks activity —
// the whole point of parking. (Running runSteps inline on the parker
// worker would let one slow line-read starve every other resume.)
func (c *stratumConn) onWake() { go c.runSteps(true) }

// enqueuePush queues one pre-encoded push line and, on the
// empty→non-empty edge, hands the conn to the drain pool. A full queue
// means the peer stopped reading for dozens of chain ticks — it is torn
// down rather than allowed to pin job lines forever.
func (c *stratumConn) enqueuePush(line []byte, tipNs int64) {
	c.outMu.Lock()
	if len(c.outq) >= pushQueueCap {
		c.outMu.Unlock()
		c.teardown()
		return
	}
	c.outq = append(c.outq, pushItem{line: line, tipNs: tipNs})
	spawn := !c.draining
	c.draining = true
	c.outMu.Unlock()
	c.srv.queueDepth.Inc()
	if spawn {
		select {
		case c.srv.drainq <- c:
		default:
			// Pool backlogged past drainQueueCap (cannot happen at
			// supported swarm sizes); a transient goroutine keeps the
			// conn live rather than dropping the push.
			go c.drainPushes()
		}
	}
}

// drainPushes writes queued pushes in batches until the queue stays
// empty, then exits — the drainer only exists while there is work, so
// push goroutines scale with in-flight fan-outs, not live sessions.
func (c *stratumConn) drainPushes() {
	for {
		c.outMu.Lock()
		if len(c.outq) == 0 {
			c.draining = false
			c.outMu.Unlock()
			return
		}
		batch := c.outq
		c.outq = c.outSpare[:0]
		c.outSpare = batch
		c.outMu.Unlock()
		if err := c.writeBatch(batch); err != nil {
			// A failed (or timed-out, possibly partial) push leaves the
			// peer's line stream unusable — tear the transport down and
			// drop whatever is still queued.
			c.srv.queueDepth.Add(-int64(len(batch)))
			c.teardown()
			c.outMu.Lock()
			c.srv.queueDepth.Add(-int64(len(c.outq)))
			c.outq = c.outq[:0]
			c.draining = false
			c.outMu.Unlock()
			return
		}
	}
}

// Write-deadline arming is amortised: SetWriteDeadline re-programs a
// runtime timer (real sockets) or takes the pipe lock (memconn) — real
// cost on a path that otherwise writes in a microsecond. Writers re-arm
// only when the armed deadline has under writeDeadlineSlack left, so
// back-to-back writes (a hold window's 1Hz pushes, a login's reply
// burst) share one arming. Any single write is still bounded: a stalled
// peer holds a writer between slack and horizon before the deadline
// error tears it down.
const (
	writeDeadlineHorizon = 5 * time.Second
	writeDeadlineSlack   = 2 * time.Second
)

// armWriteDeadlineLocked (wmu held) ensures at least writeDeadlineSlack
// of write-deadline headroom.
//
//lint:hotpath
func (c *stratumConn) armWriteDeadlineLocked(nowNs int64) error {
	if c.wdlNs-nowNs >= int64(writeDeadlineSlack) {
		return nil
	}
	dl := nowNs + int64(writeDeadlineHorizon)
	if err := c.nc.SetWriteDeadline(time.Unix(0, dl)); err != nil {
		return err
	}
	c.wdlNs = dl
	return nil
}

// writeBatch flushes one batch of push lines with a single writev,
// serialised against reply writes. The write deadline bounds how long a
// stalled peer can hold the drainer. Instruments tick only after bytes
// actually reach the socket, so push latency includes queueing.
//
//lint:hotpath
func (c *stratumConn) writeBatch(batch []pushItem) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.iovec = c.iovec[:0]
	var total uint64
	for _, it := range batch {
		c.iovec = append(c.iovec, it.line)
		total += uint64(len(it.line))
	}
	if err := c.armWriteDeadlineLocked(time.Now().UnixNano()); err != nil {
		return err
	}
	iov := c.iovec // WriteTo consumes its receiver; keep the header to recycle the array
	//lint:ignore lockscope wmu exists to serialise writers on this socket; the write deadline above bounds the hold
	_, err := c.iovec.WriteTo(c.nc)
	c.iovec = iov[:0]
	if err != nil {
		return err
	}
	now := time.Now().UnixNano()
	for _, it := range batch {
		c.srv.pushNs.Observe(time.Duration(now - it.tipNs))
	}
	c.srv.pushes.Add(uint64(len(batch)))
	c.srv.pushBytes.Add(total)
	c.srv.queueDepth.Add(-int64(len(batch)))
	return nil
}

// ReadCommand reads one request line. Codec failures (oversize line, bad
// JSON, unknown method, undecodable params) become Commands so the engine
// rules on them; only transport death (EOF, keepalive timeout) is an
// error.
func (c *stratumConn) ReadCommand() (Command, error) {
	if err := c.nc.SetReadDeadline(time.Now().Add(c.srv.keepaliveWindow())); err != nil {
		return Command{}, err
	}
	line, err := stratum.ReadRPCLine(c.br)
	if err == stratum.ErrRPCLineTooLong {
		// One parse-error response, then the engine's fatal path drops the
		// connection — an oversize line means the framing itself is gone.
		return Command{Kind: CmdGarbage}, nil
	}
	if err != nil {
		return Command{}, err
	}
	env, err := stratum.UnmarshalRPC(line)
	if err != nil || env.Method == "" {
		return Command{Kind: CmdGarbage, Tag: env.ID}, nil
	}
	switch env.Method {
	case stratum.MethodLogin:
		var lp stratum.LoginParams
		_ = env.DecodeParams(&lp) // empty login: the engine rejects it
		return Command{
			Kind: CmdOpen,
			Auth: stratum.Auth{SiteKey: lp.Login, Type: "anonymous", User: lp.Pass},
			Tag:  env.ID,
		}, nil
	case stratum.MethodSubmit:
		var sp stratum.SubmitParams
		if err := env.DecodeParams(&sp); err != nil {
			return Command{Kind: CmdBadParams, Reply: "bad submit", Tag: env.ID}, nil
		}
		cmd := submitCommand(sp.JobID, sp.Nonce, sp.Result)
		cmd.Tag = env.ID
		return cmd, nil
	case stratum.MethodKeepalive:
		return Command{Kind: CmdKeepalive, Tag: env.ID}, nil
	default:
		return Command{Kind: CmdUnknown, Name: env.Method, Tag: env.ID}, nil
	}
}

// ServerClocked reports this dialect's clocking: fresh work arrives by
// push, so the engine omits the routine post-submit job.
func (c *stratumConn) ServerClocked() bool { return true }

// RemoteHost exposes the peer host for the engine's optional per-host
// abuse keying.
func (c *stratumConn) RemoteHost() string { return remoteHost(c.nc.RemoteAddr()) }

// Deliver correlates the engine's events back into one response for the
// request plus any notifications. The engine knows this dialect is
// server-clocked (ServerClocked), so the only job event that can follow
// a submit is a stale re-job — delivered as a notification behind the
// error response, because the client's current job just died.
//
// The steady-state replies (keepalive ack, submit OK, job notification)
// take alloc-free appender fast paths; anything unusual — an RPC id the
// appenders cannot echo verbatim, a login, an error — falls back to the
// reflective marshal path. Job notifications reuse the event's JobWire
// bytes, so Deliver never re-encodes a job the fan-out already minted.
func (c *stratumConn) Deliver(ms *MinerSession, cmd Command, evs []Event) error {
	rawID, _ := cmd.Tag.(json.RawMessage)

	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = c.wbuf[:0]
	var err error

	if cmd.Kind == CmdKeepalive && len(evs) >= 1 && evs[0].Kind == EvKeepalive {
		if stratum.RPCIDVerbatim(rawID) {
			c.wbuf = stratum.AppendKeepaliveOKLine(c.wbuf, rawID)
		} else {
			c.wbuf, err = stratum.AppendRPCResult(c.wbuf, rawID, stratum.KeepaliveResult{Status: stratum.StatusKeepalive})
			if err != nil {
				return err
			}
		}
		// An idle-downstep retarget rides the keepalive that triggered it:
		// the ack first, then the new job as a push.
		for _, ev := range evs[1:] {
			if ev.Kind == EvJob {
				if c.wbuf, err = c.appendJobNotify(c.wbuf, ev); err != nil {
					return err
				}
			}
		}
		return c.flushLocked()
	}

	// First pass: build the correlated response.
	responded := false
	switch {
	case cmd.Kind == CmdOpen && len(evs) >= 2 && evs[0].Kind == EvAuthed && evs[1].Kind == EvJob:
		c.wbuf, err = stratum.AppendRPCResult(c.wbuf, rawID, stratum.LoginResult{
			ID:     evs[0].Authed.Token,
			Job:    evs[1].Job,
			Status: stratum.StatusOK,
			Hashes: evs[0].Authed.Hashes,
		})
		responded = true
	case cmd.Kind == CmdSubmit && len(evs) > 0 && evs[0].Kind == EvAccepted:
		if stratum.RPCIDVerbatim(rawID) {
			c.wbuf = stratum.AppendSubmitOKLine(c.wbuf, rawID, evs[0].Accepted.Hashes)
		} else {
			c.wbuf, err = stratum.AppendRPCResult(c.wbuf, rawID, stratum.SubmitResult{
				Status: stratum.StatusOK,
				Hashes: evs[0].Accepted.Hashes,
			})
		}
		responded = true
	case cmd.Kind == CmdSubmit && len(evs) == 1 && evs[0].Kind == EvJob && evs[0].Stale:
		c.wbuf, err = stratum.AppendRPCError(c.wbuf, rawID, stratum.RPCStaleJob, stratum.StaleJobMessage)
		responded = true
	}
	if err != nil {
		return err
	}

	// Second pass: error events (the response, if not already built) and
	// out-of-band notifications.
	for _, ev := range evs {
		switch ev.Kind {
		case EvError:
			if responded {
				continue
			}
			c.wbuf, err = stratum.AppendRPCError(c.wbuf, rawID, c.errCode(cmd, ev), ev.Err)
			responded = true
		case EvLinkResolved:
			c.wbuf, err = stratum.AppendRPCNotify(c.wbuf, stratum.TypeLinkResolved, ev.Link)
		case EvCaptchaVerified:
			c.wbuf, err = stratum.AppendRPCNotify(c.wbuf, stratum.TypeCaptchaVerified, ev.Captcha)
		case EvJob:
			if ev.Stale || ev.Retarget {
				// The error response above told the miner its job died (stale),
				// or a retarget changed its difficulty mid-session; either way
				// the replacement is pushed without waiting for the next tip.
				c.wbuf, err = c.appendJobNotify(c.wbuf, ev)
			}
		}
		if err != nil {
			return err
		}
	}
	if err := c.flushLocked(); err != nil {
		return err
	}

	// A successful login makes the session part of the push fan-out.
	if cmd.Kind == CmdOpen && ms.Authed() && !c.pushable.Load() {
		c.pushable.Store(true)
	}
	return nil
}

// appendJobNotify writes one job notification line, preferring the
// event's pre-encoded wire bytes over re-marshaling the job.
func (c *stratumConn) appendJobNotify(dst []byte, ev Event) ([]byte, error) {
	if ev.Wire != nil {
		return append(dst, ev.Wire.TCPLine...), nil
	}
	return stratum.AppendRPCNotify(dst, stratum.TypeJob, ev.Job)
}

// errCode maps an engine error back to this dialect's RPC code space. An
// event carrying an explicit code (the defense layer's named rejections)
// wins over the command-kind derivation.
func (c *stratumConn) errCode(cmd Command, ev Event) int {
	switch {
	case ev.Code != 0:
		return ev.Code
	case cmd.Kind == CmdGarbage:
		return stratum.RPCParseError
	case cmd.Kind == CmdUnknown:
		return stratum.RPCUnknownMethod
	case cmd.Kind == CmdBadParams:
		return stratum.RPCInvalidParams
	case ev.Fatal || cmd.Kind == CmdOpen:
		return stratum.RPCUnauthorized
	default:
		return stratum.RPCRejected
	}
}

func (c *stratumConn) flushLocked() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	if err := c.armWriteDeadlineLocked(time.Now().UnixNano()); err != nil {
		return err
	}
	_, err := c.nc.Write(c.wbuf)
	return err
}

// isTimeout reports whether a read error is a deadline expiry rather
// than connection death.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
