package coinhive

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/stratum"
)

// StratumServer is the raw-TCP front of the pool: the newline-delimited
// JSON-RPC 2.0 stratum dialect native Monero miners speak, bridged onto
// the same session engine as the ws dialect. Where the ws dialect is
// strictly client-clocked (the pool only ever answers), this one is
// server-clocked: the server subscribes to chain tip events and pushes a
// fresh job notification to every authenticated session the moment the
// tip moves, instead of waiting for each miner's next submit.
//
// Dialect, one JSON object per line (max stratum.MaxRPCLine bytes):
//
//	→ {"id":1,"jsonrpc":"2.0","method":"login","params":{"login":SITEKEY,"pass":USER,"agent":...}}
//	← {"id":1,"jsonrpc":"2.0","result":{"id":TOKEN,"job":{...},"status":"OK","hashes":N}}
//	→ {"id":2,"method":"submit","params":{"id":TOKEN,"job_id":...,"nonce":HEX8,"result":HEX64}}
//	← {"id":2,"result":{"status":"OK","hashes":N}}            accepted
//	← {"id":2,"error":{"code":-3,"message":"stale job"}}      tip outran the job; fresh job follows
//	→ {"id":3,"method":"keepalived","params":{"id":TOKEN}}
//	← {"id":3,"result":{"status":"KEEPALIVED"}}
//	← {"jsonrpc":"2.0","method":"job","params":{...}}          server push (no id)
//	← {"jsonrpc":"2.0","method":"link_resolved","params":{...}}
//	← {"jsonrpc":"2.0","method":"captcha_verified","params":{...}}
//
// login.pass carries the ws dialect's user field, so "link:ID" and
// "captcha:ID" sessions work identically over TCP. Oversize lines and
// unparseable JSON get one error response and the connection is dropped;
// a connection silent for longer than KeepaliveWindow is dropped without
// ceremony — that is what keepalived is for.
type StratumServer struct {
	eng *Engine

	// KeepaliveWindow bounds peer silence: each read waits at most this
	// long before the connection is declared dead. Zero means the default
	// of 90 seconds. Compliant clients ping every
	// session.KeepaliveInterval (30s) while busy, so production windows
	// must stay comfortably above that; sub-interval windows are for
	// tests. Set it before calling Serve; connection goroutines read it
	// unsynchronised.
	KeepaliveWindow time.Duration

	conns connSet[*stratumConn]

	mu sync.Mutex // guards ln and unsubscribe
	ln net.Listener

	unsubscribe func()
	// pushWake coalesces tip events for the notifier goroutine: the
	// chain's Subscribe callback must not block (it runs on whichever
	// goroutine appended the block — possibly a miner's submit path
	// holding the pool's settle lock), and job pushes always carry the
	// *current* job, so back-to-back tips collapse into one fan-out.
	// pendingTipNs holds the earliest tip event the next fan-out will
	// serve (unix nanos, 0 = none), so push latency is measured from the
	// moment miners' work went stale, not from when the notifier got
	// around to it.
	pushWake     chan struct{}
	stop         chan struct{}
	pendingTipNs atomic.Int64

	pushes *metrics.Counter   // job notifications pushed on tip events
	pushNs *metrics.Histogram // per-session delivery latency within one fan-out
}

// NewStratumServer builds the TCP front over an engine (share one engine
// with the ws Server so session accounting spans both transports) and
// subscribes to the pool chain's tip events for job push fan-out.
func NewStratumServer(e *Engine) *StratumServer {
	reg := e.Pool().Metrics()
	s := &StratumServer{
		eng:      e,
		pushWake: make(chan struct{}, 1),
		stop:     make(chan struct{}),
		pushes:   reg.Counter("stratum.jobs_pushed"),
		pushNs:   reg.Histogram("stratum.push_ns"),
	}
	go s.pushLoop()
	s.unsubscribe = e.Pool().Chain().Subscribe(func(tip [32]byte, height uint64) {
		// Keep the EARLIEST unserved tip's timestamp: a coalesced fan-out
		// serves every tip since the last one, and its latency is how
		// long the oldest of them has been waiting.
		s.pendingTipNs.CompareAndSwap(0, time.Now().UnixNano())
		select {
		case s.pushWake <- struct{}{}:
		default: // a fan-out is already pending; it will carry this tip's job
		}
	})
	return s
}

// pushLoop serialises fan-outs on one goroutine, so a peer that stalls
// its socket delays other miners' pushes at worst — never the share
// verification or settle path that appended the block.
func (s *StratumServer) pushLoop() {
	for {
		select {
		case <-s.pushWake:
			s.fanOut()
		case <-s.stop:
			return
		}
	}
}

// Serve accepts miner connections on ln until the listener is closed.
// Transient accept failures (EMFILE under a connection storm, and the
// like) are retried with backoff rather than killing the front — only a
// closed listener or shutdown ends the loop.
func (s *StratumServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	if s.conns.Draining() {
		// Shutdown already ran (it can race a `go Serve(ln)`): it either
		// missed the listener registered above or closed it already;
		// closing here covers the former, and keeps the port from staying
		// bound to a front that would accept-and-drop forever.
		_ = ln.Close()
		return net.ErrClosed
	}
	var (
		seq   int // endpoint rotation; the accept loop is its only writer
		delay time.Duration
	)
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.conns.Draining() || errors.Is(err, net.ErrClosed) {
				return err
			}
			if delay == 0 {
				delay = 5 * time.Millisecond
			} else if delay *= 2; delay > time.Second {
				delay = time.Second
			}
			time.Sleep(delay)
			continue
		}
		delay = 0
		seq++
		go s.serveConn(nc, seq%s.eng.Pool().NumEndpoints())
	}
}

// Addr returns the listen address once Serve has been called.
func (s *StratumServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting sessions, unsubscribes from tip events and
// closes every live connection. TCP stratum has no close handshake — the
// dialect's liveness story is the keepalive window — so draining is
// simply tearing the transports down.
func (s *StratumServer) Shutdown() {
	open, first := s.conns.Drain()
	if !first {
		return
	}
	s.mu.Lock()
	ln := s.ln
	unsub := s.unsubscribe
	s.unsubscribe = nil
	s.mu.Unlock()
	if unsub != nil {
		unsub()
	}
	close(s.stop)
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range open {
		_ = c.nc.Close()
	}
}

// Drained reports whether every session goroutine has exited, waiting up
// to timeout.
func (s *StratumServer) Drained(timeout time.Duration) bool {
	return s.conns.Drained(timeout)
}

// PushStats exposes the fan-out instruments: how many job notifications
// tip events have pushed and the per-session delivery latency histogram.
func (s *StratumServer) PushStats() (pushes uint64, latency metrics.HistSnapshot) {
	return s.pushes.Load(), s.pushNs.Snapshot()
}

// PushCursor marks the current fan-out state; pair with PushStatsSince
// for per-phase numbers (one load scenario out of a longer run).
func (s *StratumServer) PushCursor() metrics.HistCursor { return s.pushNs.Cursor() }

// PushStatsSince reports the fan-out activity recorded after the cursor.
func (s *StratumServer) PushStatsSince(c metrics.HistCursor) (pushes uint64, latency metrics.HistSnapshot) {
	lat := s.pushNs.SnapshotSince(c)
	return lat.Count, lat
}

// fanOut pushes the current job to every authenticated session — the
// server-clocked half of the dialect. Latency is observed per session as
// time since the (earliest coalesced) tip event, so the histogram's p99
// is the fan-out tail: how long the last miners wait for fresh work
// after a block lands.
func (s *StratumServer) fanOut() {
	t0 := time.Now()
	if ns := s.pendingTipNs.Swap(0); ns != 0 {
		t0 = time.Unix(0, ns)
	}
	for _, c := range s.conns.Snapshot() {
		if !c.pushable.Load() {
			continue
		}
		if err := c.notify(stratum.TypeJob, c.ms.CurrentJob()); err != nil {
			// A failed (or timed-out, possibly partial) push leaves the
			// peer's line stream unusable, and retrying it would stall
			// every later fan-out behind the same dead socket — tear the
			// transport down; its reader goroutine untracks the session.
			_ = c.nc.Close()
			continue
		}
		s.pushes.Inc()
		s.pushNs.Observe(time.Since(t0))
	}
}

func (s *StratumServer) keepaliveWindow() time.Duration {
	if s.KeepaliveWindow > 0 {
		return s.KeepaliveWindow
	}
	return 90 * time.Second
}

// serveConn runs one miner connection: track for drain, then hand it to
// the engine behind the JSON-RPC codec.
func (s *StratumServer) serveConn(nc net.Conn, endpoint int) {
	defer nc.Close()
	c := &stratumConn{
		srv: s,
		nc:  nc,
		br:  bufio.NewReaderSize(nc, stratum.MaxRPCLine),
	}
	if !s.conns.Track(c) {
		return
	}
	defer s.conns.Untrack(c)
	s.eng.ServeSession(endpoint, c)
}

// stratumConn is the JSON-RPC dialect codec for one connection. The
// engine's reader goroutine and the fan-out goroutine both write; wmu
// serialises them.
type stratumConn struct {
	srv *StratumServer
	nc  net.Conn
	br  *bufio.Reader

	wmu  sync.Mutex
	wbuf []byte

	// ms is set by Deliver before pushable is flipped; the atomic store /
	// load pair makes the plain ms write visible to the fan-out goroutine.
	ms       *MinerSession
	pushable atomic.Bool
}

// ReadCommand reads one request line. Codec failures (oversize line, bad
// JSON, unknown method, undecodable params) become Commands so the engine
// rules on them; only transport death (EOF, keepalive timeout) is an
// error.
func (c *stratumConn) ReadCommand() (Command, error) {
	if err := c.nc.SetReadDeadline(time.Now().Add(c.srv.keepaliveWindow())); err != nil {
		return Command{}, err
	}
	line, err := stratum.ReadRPCLine(c.br)
	if err == stratum.ErrRPCLineTooLong {
		// One parse-error response, then the engine's fatal path drops the
		// connection — an oversize line means the framing itself is gone.
		return Command{Kind: CmdGarbage}, nil
	}
	if err != nil {
		return Command{}, err
	}
	env, err := stratum.UnmarshalRPC(line)
	if err != nil || env.Method == "" {
		return Command{Kind: CmdGarbage, Tag: env.ID}, nil
	}
	switch env.Method {
	case stratum.MethodLogin:
		var lp stratum.LoginParams
		_ = env.DecodeParams(&lp) // empty login: the engine rejects it
		return Command{
			Kind: CmdOpen,
			Auth: stratum.Auth{SiteKey: lp.Login, Type: "anonymous", User: lp.Pass},
			Tag:  env.ID,
		}, nil
	case stratum.MethodSubmit:
		var sp stratum.SubmitParams
		if err := env.DecodeParams(&sp); err != nil {
			return Command{Kind: CmdBadParams, Reply: "bad submit", Tag: env.ID}, nil
		}
		cmd := submitCommand(sp.JobID, sp.Nonce, sp.Result)
		cmd.Tag = env.ID
		return cmd, nil
	case stratum.MethodKeepalive:
		return Command{Kind: CmdKeepalive, Tag: env.ID}, nil
	default:
		return Command{Kind: CmdUnknown, Name: env.Method, Tag: env.ID}, nil
	}
}

// ServerClocked reports this dialect's clocking: fresh work arrives by
// push, so the engine omits the routine post-submit job.
func (c *stratumConn) ServerClocked() bool { return true }

// RemoteHost exposes the peer host for the engine's optional per-host
// abuse keying.
func (c *stratumConn) RemoteHost() string { return remoteHost(c.nc.RemoteAddr()) }

// Deliver correlates the engine's events back into one response for the
// request plus any notifications. The engine knows this dialect is
// server-clocked (ServerClocked), so the only job event that can follow
// a submit is a stale re-job — delivered as a notification behind the
// error response, because the client's current job just died.
func (c *stratumConn) Deliver(ms *MinerSession, cmd Command, evs []Event) error {
	rawID, _ := cmd.Tag.(json.RawMessage)

	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = c.wbuf[:0]
	var err error

	if cmd.Kind == CmdKeepalive && len(evs) >= 1 && evs[0].Kind == EvKeepalive {
		c.wbuf, err = stratum.AppendRPCResult(c.wbuf, rawID, stratum.KeepaliveResult{Status: stratum.StatusKeepalive})
		if err != nil {
			return err
		}
		// An idle-downstep retarget rides the keepalive that triggered it:
		// the ack first, then the new job as a push.
		for _, ev := range evs[1:] {
			if ev.Kind == EvJob {
				c.wbuf, err = stratum.AppendRPCNotify(c.wbuf, stratum.TypeJob, ev.Job)
				if err != nil {
					return err
				}
			}
		}
		return c.flushLocked()
	}

	// First pass: build the correlated response.
	responded := false
	switch {
	case cmd.Kind == CmdOpen && len(evs) >= 2 && evs[0].Kind == EvAuthed && evs[1].Kind == EvJob:
		c.wbuf, err = stratum.AppendRPCResult(c.wbuf, rawID, stratum.LoginResult{
			ID:     evs[0].Authed.Token,
			Job:    evs[1].Job,
			Status: stratum.StatusOK,
			Hashes: evs[0].Authed.Hashes,
		})
		responded = true
	case cmd.Kind == CmdSubmit && len(evs) > 0 && evs[0].Kind == EvAccepted:
		c.wbuf, err = stratum.AppendRPCResult(c.wbuf, rawID, stratum.SubmitResult{
			Status: stratum.StatusOK,
			Hashes: evs[0].Accepted.Hashes,
		})
		responded = true
	case cmd.Kind == CmdSubmit && len(evs) == 1 && evs[0].Kind == EvJob && evs[0].Stale:
		c.wbuf, err = stratum.AppendRPCError(c.wbuf, rawID, stratum.RPCStaleJob, stratum.StaleJobMessage)
		responded = true
	}
	if err != nil {
		return err
	}

	// Second pass: error events (the response, if not already built) and
	// out-of-band notifications.
	for _, ev := range evs {
		switch ev.Kind {
		case EvError:
			if responded {
				continue
			}
			c.wbuf, err = stratum.AppendRPCError(c.wbuf, rawID, c.errCode(cmd, ev), ev.Err)
			responded = true
		case EvLinkResolved:
			c.wbuf, err = stratum.AppendRPCNotify(c.wbuf, stratum.TypeLinkResolved, ev.Link)
		case EvCaptchaVerified:
			c.wbuf, err = stratum.AppendRPCNotify(c.wbuf, stratum.TypeCaptchaVerified, ev.Captcha)
		case EvJob:
			if ev.Stale || ev.Retarget {
				// The error response above told the miner its job died (stale),
				// or a retarget changed its difficulty mid-session; either way
				// the replacement is pushed without waiting for the next tip.
				c.wbuf, err = stratum.AppendRPCNotify(c.wbuf, stratum.TypeJob, ev.Job)
			}
		}
		if err != nil {
			return err
		}
	}
	if err := c.flushLocked(); err != nil {
		return err
	}

	// A successful login makes the session part of the push fan-out.
	if cmd.Kind == CmdOpen && ms.Authed() && !c.pushable.Load() {
		c.ms = ms
		c.pushable.Store(true)
	}
	return nil
}

// errCode maps an engine error back to this dialect's RPC code space. An
// event carrying an explicit code (the defense layer's named rejections)
// wins over the command-kind derivation.
func (c *stratumConn) errCode(cmd Command, ev Event) int {
	switch {
	case ev.Code != 0:
		return ev.Code
	case cmd.Kind == CmdGarbage:
		return stratum.RPCParseError
	case cmd.Kind == CmdUnknown:
		return stratum.RPCUnknownMethod
	case cmd.Kind == CmdBadParams:
		return stratum.RPCInvalidParams
	case ev.Fatal || cmd.Kind == CmdOpen:
		return stratum.RPCUnauthorized
	default:
		return stratum.RPCRejected
	}
}

func (c *stratumConn) flushLocked() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	if err := c.nc.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	_, err := c.nc.Write(c.wbuf)
	return err
}

// notify pushes one notification line, serialised against reply writes.
// The short write deadline bounds how long one stalled peer can hold up
// the fan-out loop; the caller drops the connection on failure.
func (c *stratumConn) notify(method string, params interface{}) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var err error
	c.wbuf, err = stratum.AppendRPCNotify(c.wbuf[:0], method, params)
	if err != nil {
		return err
	}
	if err := c.nc.SetWriteDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return err
	}
	//lint:ignore lockscope wmu exists to serialise writers on this socket; the 2s deadline above bounds the hold
	_, err = c.nc.Write(c.wbuf)
	return err
}
