package coinhive_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/coinhive"
	"repro/internal/session"
	"repro/internal/stratum"
)

// drainStore reads every event the store holds, from the zero cursor.
func drainStore(t *testing.T, s archive.Store) []archive.Event {
	t.Helper()
	var (
		out []archive.Event
		cur archive.Cursor
		buf [64]archive.Event
	)
	for {
		n, next, err := s.Next(cur, buf[:])
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
		cur = next
	}
}

// TestArchiveReplayMatchesLiveAttribution is the acceptance bar for the
// durable archive: attribution recomputed from the file-backed event log
// must agree bit-for-bit with the live pool's own books — same blocks,
// same owners, same credit — on one share stream that ran both paths.
func TestArchiveReplayMatchesLiveAttribution(t *testing.T) {
	dir := t.TempDir()
	fstore, err := archive.OpenFileStore(dir, archive.FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := archive.NewRecorder(fstore, nil, 0)
	_, _, pool := startService(t, 16, func(c *coinhive.PoolConfig) {
		c.Archive = rec
	})

	// Three accounts at a 3:2:1 share ratio, mined across distinct
	// backend/slot jobs so every share is fresh work.
	tokens := []string{"site-alpha", "site-beta", "site-gamma"}
	counts := []int{3, 2, 1}
	slot := 0
	for i, token := range tokens {
		for n := 0; n < counts[i]; n++ {
			wire := pool.Job(slot, slot, false)
			slot++
			job, err := session.DecodeJob(wire)
			if err != nil {
				t.Fatal(err)
			}
			nonce, sum := grindShare(t, pool, job)
			if _, err := pool.SubmitShare(token, wire.JobID, nonce, sum, ""); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Two settlements: payouts archive against two distinct heights.
	if _, err := pool.ProduceWinningBlock(1_525_100_000, 0, 7); err != nil {
		t.Fatal(err)
	}
	wire := pool.Job(9, 9, false)
	job, err := session.DecodeJob(wire)
	if err != nil {
		t.Fatal(err)
	}
	nonce, sum := grindShare(t, pool, job)
	if _, err := pool.SubmitShare("site-alpha", wire.JobID, nonce, sum, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.ProduceWinningBlock(1_525_100_060, 3, 42); err != nil {
		t.Fatal(err)
	}

	// Close drains the queue, fsyncs and closes the file store — the
	// same path a daemon shutdown takes before -from-archive replay.
	rec.Close()
	reopened, err := archive.OpenFileStore(dir, archive.FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	res, err := archive.Replay(reopened)
	if err != nil {
		t.Fatal(err)
	}

	st := pool.StatsSnapshot()
	if res.SharesAccepted != st.SharesOK {
		t.Errorf("replayed %d accepted shares, live pool counted %d", res.SharesAccepted, st.SharesOK)
	}
	if res.ChainHeight != pool.Chain().Height() {
		t.Errorf("replayed chain height %d, live %d", res.ChainHeight, pool.Chain().Height())
	}

	live := pool.FoundBlocks()
	if len(res.Blocks) != len(live) {
		t.Fatalf("replayed %d blocks, live found %d", len(res.Blocks), len(live))
	}
	for i, b := range live {
		r := res.Blocks[i]
		if r.Height != b.Height || r.Timestamp != b.Timestamp ||
			r.Backend != b.Backend || r.Reward != b.Reward {
			t.Errorf("block %d diverges: replay %+v, live %+v", i, r, b)
		}
	}

	if len(res.Credit) != len(tokens) {
		t.Errorf("replay credits %d accounts, want %d", len(res.Credit), len(tokens))
	}
	for _, token := range tokens {
		acct, ok := pool.AccountSnapshot(token)
		if !ok {
			t.Fatalf("live account %q missing", token)
		}
		if res.Credit[token] != acct.TotalHashes {
			t.Errorf("%s: replayed credit %d, live %d", token, res.Credit[token], acct.TotalHashes)
		}
		if res.Paid[token] != acct.BalanceAtomic {
			t.Errorf("%s: replayed payout %d, live balance %d", token, res.Paid[token], acct.BalanceAtomic)
		}
	}
}

// TestCrossTransportArchiveIdentical extends the defended cross-transport
// identity bar to the archive layer: the same hostile-then-honest share
// stream driven over ws and raw TCP must leave byte-identical archived
// event sequences. The frozen test clock keeps timestamps equal, so any
// divergence is a real transport-dependent emission.
func TestCrossTransportArchiveIdentical(t *testing.T) {
	const siteKey = "xarchive-key"

	run := func(t *testing.T, dial func(srv *httptestServerPair) (*session.Session, error)) []archive.Event {
		store := archive.NewMemStore(1 << 12)
		rec := archive.NewRecorder(store, nil, 0)
		srv := newServicePair(t, 4, func(c *coinhive.PoolConfig) {
			c.Vardiff = coinhive.VardiffConfig{
				TargetSharesPerMin: 240,
				MinDifficulty:      1,
				MaxDifficulty:      4096,
			}
			c.Ban = coinhive.BanConfig{
				BanThreshold:   100,
				DuplicateScore: 25,
				BanDuration:    time.Minute,
			}
			c.Archive = rec
		})
		sess, err := dial(srv)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		sess.Timeout = 5 * time.Second
		_, job, err := sess.Login()
		if err != nil {
			t.Fatal(err)
		}

		// Four accepts fill the vardiff window (deterministic ×8 retarget),
		// one grace share rides the old tier, then a duplicate flood ends
		// in a ban — the full defended repertoire, every step archived.
		var nonce uint32
		var sum [32]byte
		submitOne := func(needJob bool) {
			t.Helper()
			if err := sess.Submit(job.ID, nonce, sum); err != nil {
				t.Fatal(err)
			}
			accepted := false
			for !accepted || needJob {
				env, err := sess.ReadEnvelope()
				if err != nil {
					t.Fatal(err)
				}
				switch env.Type {
				case stratum.TypeHashAccepted:
					accepted = true
				case stratum.TypeJob:
					needJob = false
				default:
					t.Fatalf("unexpected %s", env.Type)
				}
			}
		}
		for i := 0; i < 4; i++ {
			if i == 0 {
				nonce, sum = grindShare(t, srv.pool, job)
			} else {
				nonce, sum = grindShare(t, srv.pool, job, nonce+1)
			}
			submitOne(!sess.ServerClocked() || i == 3)
		}
		nonce, sum = grindShare(t, srv.pool, job, nonce+1)
		submitOne(!sess.ServerClocked())
		for i := 0; i < 4; i++ {
			if err := sess.Submit(job.ID, nonce, sum); err != nil {
				t.Fatal(err)
			}
			if _, err := sess.ReadEnvelope(); err != nil {
				t.Fatal(err)
			}
		}

		// Flush is the read barrier: every Record before it is in the store.
		rec.Flush()
		return drainStore(t, store)
	}

	wsEvents := run(t, func(srv *httptestServerPair) (*session.Session, error) {
		return session.Dial(srv.wsURL(1), stratum.Auth{SiteKey: siteKey, Type: "anonymous"})
	})
	tcpEvents := run(t, func(srv *httptestServerPair) (*session.Session, error) {
		return session.Dial("tcp://"+srv.tcpAddr, stratum.Auth{SiteKey: siteKey, Type: "anonymous"})
	})

	if len(wsEvents) != len(tcpEvents) {
		t.Fatalf("event counts diverge: ws %d, tcp %d\n ws=%+v\ntcp=%+v",
			len(wsEvents), len(tcpEvents), wsEvents, tcpEvents)
	}
	// Byte-level comparison over the wire encoding: the bar is an
	// identical durable record, not merely equivalent structs.
	var wsBytes, tcpBytes []byte
	for i := range wsEvents {
		wsBytes = archive.AppendRecord(wsBytes, &wsEvents[i])
		tcpBytes = archive.AppendRecord(tcpBytes, &tcpEvents[i])
	}
	if !bytes.Equal(wsBytes, tcpBytes) {
		for i := range wsEvents {
			if wsEvents[i] != tcpEvents[i] {
				t.Errorf("event %d diverges:\n ws=%+v\ntcp=%+v", i, wsEvents[i], tcpEvents[i])
			}
		}
		t.Fatal("archived byte streams diverge")
	}
	if len(wsEvents) == 0 {
		t.Fatal("no events archived")
	}
}
