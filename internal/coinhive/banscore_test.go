package coinhive

import (
	"testing"
	"time"
)

func testBanTable() *abuseTable {
	cfg := BanConfig{
		BanThreshold:    100,
		DecayPerSec:     1,
		BanDuration:     time.Minute,
		LoginRatePerSec: 2,
		LoginBurst:      6,
	}
	cfg.fillDefaults()
	return newAbuseTable(cfg)
}

func TestBanscoreAccumulateAndBan(t *testing.T) {
	tab := testBanTable()
	now := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC).UnixNano()

	// Three 25-point offenses in the same instant: scored, not banned.
	for i := 0; i < 3; i++ {
		if banned, newly := tab.bump("attacker", 25, now); banned || newly {
			t.Fatalf("offense %d: banned=%v newly=%v, want scored only", i, banned, newly)
		}
	}
	if score, _ := tab.state("attacker", now); score != 75 {
		t.Fatalf("score = %v, want 75", score)
	}

	// The fourth crosses the threshold: newly banned, score consumed.
	banned, newly := tab.bump("attacker", 25, now)
	if !banned || !newly {
		t.Fatalf("threshold bump: banned=%v newly=%v, want true,true", banned, newly)
	}
	if score, until := tab.state("attacker", now); score != 0 || until != now+int64(time.Minute) {
		t.Errorf("post-ban state = (%v, %d), want (0, %d)", score, until, now+int64(time.Minute))
	}
	if !tab.isBanned("attacker", now) {
		t.Error("identity not banned after threshold")
	}

	// While banned, further offenses report banned but never re-issue.
	if banned, newly := tab.bump("attacker", 25, now+int64(time.Second)); !banned || newly {
		t.Errorf("offense during ban: banned=%v newly=%v, want true,false", banned, newly)
	}

	// The ban expires on its own; the identity comes back clean.
	after := now + int64(time.Minute) + 1
	if tab.isBanned("attacker", after) {
		t.Error("ban did not expire")
	}
	if score, _ := tab.state("attacker", after); score != 0 {
		t.Errorf("score after expiry = %v, want 0 (the ban consumed it)", score)
	}
}

func TestBanscoreDecay(t *testing.T) {
	tab := testBanTable()
	now := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC).UnixNano()

	// 80 points decaying at 1/s: 30 seconds of silence forgives 30.
	tab.bump("sloppy", 80, now)
	if score, _ := tab.state("sloppy", now+30*int64(time.Second)); score != 50 {
		t.Errorf("score after 30s = %v, want 50", score)
	}
	// Decay floors at zero — silence never earns negative score.
	if score, _ := tab.state("sloppy", now+300*int64(time.Second)); score != 0 {
		t.Errorf("score after 300s = %v, want 0", score)
	}

	// Sparse offenses below the decay rate never accumulate: 25 points
	// every 30s against 1/s decay stays bounded at 25 forever.
	for i := int64(1); i <= 20; i++ {
		at := now + i*30*int64(time.Second)
		if banned, _ := tab.bump("sparse", 25, at); banned {
			t.Fatalf("sparse honest mistakes banned at offense %d", i)
		}
	}
}

func TestBanscoreLoginBucket(t *testing.T) {
	tab := testBanTable()
	now := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC).UnixNano()

	// The bucket starts full at burst (6): honest reconnect churn inside
	// the burst is never throttled.
	for i := 0; i < 6; i++ {
		if !tab.allowLogin("hammer", now) {
			t.Fatalf("login %d throttled inside burst", i)
		}
	}
	if tab.allowLogin("hammer", now) {
		t.Fatal("login allowed past an exhausted bucket")
	}

	// Refill at 2/s: one second buys exactly two logins.
	later := now + int64(time.Second)
	if !tab.allowLogin("hammer", later) || !tab.allowLogin("hammer", later) {
		t.Fatal("refilled tokens not granted")
	}
	if tab.allowLogin("hammer", later) {
		t.Fatal("third login inside one refill second allowed")
	}

	// Identities are independent: someone else's hammering never spends
	// this key's tokens.
	if !tab.allowLogin("honest", now) {
		t.Fatal("unrelated identity throttled")
	}
}

func TestBanscoreSubmitBucketDefaults(t *testing.T) {
	tab := testBanTable() // submit bucket left at defaults: 20/s burst 40
	now := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	for i := 0; i < 40; i++ {
		if !tab.allowSubmit("miner", now) {
			t.Fatalf("submit %d throttled inside burst", i)
		}
	}
	if tab.allowSubmit("miner", now) {
		t.Fatal("submit allowed past an exhausted bucket")
	}
	if !tab.allowSubmit("miner", now+int64(50*time.Millisecond)) {
		t.Fatal("50ms at 20/s should refill one submit token")
	}
}

func TestBanscoreEviction(t *testing.T) {
	tab := testBanTable()
	now := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	sh := tab.shardFor("victim")

	// An idle clean entry is evicted when the stripe is at capacity; a
	// banned one survives (its state is the whole point of the table).
	sh.mu.Lock()
	sh.entryLocked("idle-clean", now)
	sh.mu.Unlock()
	tab.bump("banned-key", 200, now)
	bannedSh := tab.shardFor("banned-key")

	later := now + int64(11*time.Minute)
	sh.mu.Lock()
	sh.evictLocked(later)
	_, cleanAlive := sh.m["idle-clean"]
	sh.mu.Unlock()
	if cleanAlive {
		t.Error("idle clean entry survived eviction")
	}
	bannedSh.mu.Lock()
	bannedSh.evictLocked(later)
	_, bannedAlive := bannedSh.m["banned-key"]
	bannedSh.mu.Unlock()
	// The minute-long ban has lapsed by then, but its score/ban state was
	// touched recently enough only if within idle window — here it idled
	// 11 minutes with an expired ban, so it too is reclaimable.
	if bannedAlive {
		t.Error("expired-ban idle entry survived eviction")
	}

	// An identity that offended once and went idle must decay to
	// evictable: tested on the stored (un-decayed) score it would stay
	// resident forever, and a site-key rotator — one offense per fresh key
	// — could grow the stripe past its cap without bound.
	tab.bump("one-off", 5, now)
	ooSh := tab.shardFor("one-off")
	ooSh.mu.Lock()
	ooSh.evictLocked(later) // 11 idle minutes at 1 point/s: score decayed to 0
	_, ooAlive := ooSh.m["one-off"]
	ooSh.mu.Unlock()
	if ooAlive {
		t.Error("idle decayed-to-zero offender survived eviction")
	}

	// A still-banned entry must survive any eviction pass, even one that
	// runs long past the idle window.
	longCfg := BanConfig{BanThreshold: 100, BanDuration: 30 * time.Minute}
	longCfg.fillDefaults()
	longTab := newAbuseTable(longCfg)
	longTab.bump("long-ban", 200, now)
	lbSh := longTab.shardFor("long-ban")
	lbSh.mu.Lock()
	lbSh.evictLocked(now + int64(11*time.Minute))
	_, alive := lbSh.m["long-ban"]
	lbSh.mu.Unlock()
	if !alive {
		t.Error("active ban evicted")
	}
}
