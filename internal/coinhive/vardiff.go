package coinhive

import (
	"math"
	"time"

	"repro/internal/archive"
)

// This file is the per-session variable-difficulty retargeter. The paper's
// subject service handed every browser the same static target, but the
// population it served spanned phones to servers — a real pool (and any
// reproduction that wants honest hashrate accounting under hostile load)
// retargets each session toward a configured accepted-share cadence.
//
// The mechanism is deliberately minimal and allocation-light: each session
// keeps a ring of its last few accept timestamps; on every accept past the
// warm-up count the observed cadence is compared to the goal, and when the
// deviation exceeds a hysteresis band the difficulty is re-estimated as
//
//	ideal = current × observed / goal
//
// (the difficulty that would have produced the goal cadence at the
// session's implied hashrate), damped to at most ×MaxStepFactor per step
// and clamped to [MinDifficulty, MaxDifficulty]. Credit always equals the
// difficulty actually served — it is encoded in the job ID (see makeJobID)
// — so TotalHashes/second stays an unbiased hashrate estimate across
// retargets: that is the credit-scaling invariant the tests pin.
//
// Difficulties are arbitrary integers, not powers of two: quantising to
// powers of two would park converged sessions up to √2 (~41%) away from
// the goal cadence, outside any useful convergence bound.

// VardiffConfig tunes per-session difficulty retargeting. The zero value
// disables it (TargetSharesPerMin == 0), preserving the static-difficulty
// behaviour.
type VardiffConfig struct {
	// TargetSharesPerMin is the accepted-share cadence the retargeter
	// steers every ordinary session toward. 0 disables vardiff.
	TargetSharesPerMin float64
	// MinDifficulty / MaxDifficulty clamp every retarget. Defaults: 1 and
	// ShareDifficulty << 12.
	MinDifficulty uint64
	MaxDifficulty uint64
	// WindowShares is the size of the per-session accept-timestamp ring
	// cadence is measured over (default 8).
	WindowShares int
	// MinWindowShares is the warm-up: no retarget until the window holds
	// this many accepts since the last retarget (default 4). Short-lived
	// sessions below it never retarget.
	MinWindowShares int
	// HysteresisPct is the dead band: observed cadence within ±this
	// percent of the goal is jitter, not signal (default 30).
	HysteresisPct int
	// MaxStepFactor damps each retarget to at most ×/÷ this factor
	// (default 8).
	MaxStepFactor uint64
	// IdleGraceShares is the idle downstep trigger: a session silent for
	// this many goal share intervals has its difficulty halved on its
	// next keepalive (default 4; server-clocked dialects only — the ws
	// dialect has no unsolicited client traffic to evaluate on).
	IdleGraceShares int
}

// Enabled reports whether vardiff is configured on.
func (c VardiffConfig) Enabled() bool { return c.TargetSharesPerMin > 0 }

// fillDefaults completes an enabled config. shareDiff is the pool's
// static ShareDifficulty — the starting point every session retargets from.
func (c *VardiffConfig) fillDefaults(shareDiff uint64) {
	if !c.Enabled() {
		return
	}
	if c.MinDifficulty == 0 {
		c.MinDifficulty = 1
	}
	if c.MaxDifficulty == 0 {
		c.MaxDifficulty = shareDiff << 12
		if c.MaxDifficulty < shareDiff { // shift overflow
			c.MaxDifficulty = math.MaxUint64
		}
	}
	if c.WindowShares == 0 {
		c.WindowShares = 8
	}
	if c.MinWindowShares == 0 {
		c.MinWindowShares = 4
	}
	// perMin measures the oldest→newest span, so it needs ≥2 samples: a
	// one-sample window has zero span, reads as +Inf cadence and would
	// drive a maximum upward retarget on every accepted share.
	if c.WindowShares < 2 {
		c.WindowShares = 2
	}
	if c.MinWindowShares < 2 {
		c.MinWindowShares = 2
	}
	if c.MinWindowShares > c.WindowShares {
		c.MinWindowShares = c.WindowShares
	}
	if c.HysteresisPct == 0 {
		c.HysteresisPct = 30
	}
	if c.MaxStepFactor == 0 {
		c.MaxStepFactor = 8
	}
	if c.IdleGraceShares == 0 {
		c.IdleGraceShares = 4
	}
}

// clampDiff bounds a difficulty to the configured range.
func (c VardiffConfig) clampDiff(d uint64) uint64 {
	if d < c.MinDifficulty {
		return c.MinDifficulty
	}
	if d > c.MaxDifficulty {
		return c.MaxDifficulty
	}
	return d
}

// retarget computes the next difficulty for a session observed at
// observedPerMin accepted shares per minute while served cur. It returns
// (cur, false) inside the hysteresis band or when damping+clamping land
// back on cur. observedPerMin may be +Inf (all window samples share one
// timestamp — e.g. a replay burst, or a simulated clock that did not
// advance); the step cap turns that into the maximum upward step.
func (c VardiffConfig) retarget(cur uint64, observedPerMin float64) (uint64, bool) {
	if cur == 0 {
		cur = 1
	}
	band := c.TargetSharesPerMin * float64(c.HysteresisPct) / 100
	if observedPerMin >= c.TargetSharesPerMin-band && observedPerMin <= c.TargetSharesPerMin+band {
		return cur, false
	}
	fcur := float64(cur)
	ideal := fcur * (observedPerMin / c.TargetSharesPerMin)
	step := float64(c.MaxStepFactor)
	if !(ideal <= fcur*step) { // also catches +Inf and NaN
		ideal = fcur * step
	}
	if ideal < fcur/step {
		ideal = fcur / step
	}
	next := c.clampDiff(roundDiff(ideal))
	if next == cur {
		return cur, false
	}
	return next, true
}

// roundDiff converts the ideal float difficulty to an integer without
// overflowing uint64 on huge intermediate values.
func roundDiff(f float64) uint64 {
	if f < 1 {
		return 1
	}
	if f >= math.MaxUint64/2 { // far beyond any sane MaxDifficulty
		return math.MaxUint64 / 2
	}
	return uint64(math.Round(f))
}

// vardiffWindow is the per-session ring of accept timestamps (unixnanos).
// Step-goroutine only — no locking.
type vardiffWindow struct {
	times []int64
	head  int // next write slot
	n     int // live samples
}

func (w *vardiffWindow) init(size int) {
	if cap(w.times) < size {
		w.times = make([]int64, size)
	}
	w.times = w.times[:size]
	w.head, w.n = 0, 0
}

func (w *vardiffWindow) add(t int64) {
	w.times[w.head] = t
	w.head = (w.head + 1) % len(w.times)
	if w.n < len(w.times) {
		w.n++
	}
}

func (w *vardiffWindow) reset() { w.head, w.n = 0, 0 }

// perMin returns the observed cadence in shares/min across the window:
// (n−1) intervals over the oldest→newest span. +Inf when the span is zero.
// Requires n ≥ 2.
func (w *vardiffWindow) perMin() float64 {
	oldest := w.times[(w.head-w.n+len(w.times))%len(w.times)]
	newest := w.times[(w.head-1+len(w.times))%len(w.times)]
	elapsed := newest - oldest
	if elapsed <= 0 {
		return math.Inf(1)
	}
	return float64(w.n-1) * float64(time.Minute) / float64(elapsed)
}

// vardiffAccept records an accepted share and evaluates a retarget. It
// returns the new difficulty and true when one fired (already applied to
// the session). Step-goroutine only.
func (ms *MinerSession) vardiffAccept(nowNs int64) (uint64, bool) {
	vd := &ms.eng.vardiff
	ms.lastAcceptNs = nowNs
	ms.vdWin.add(nowNs)
	if ms.vdWin.n < vd.MinWindowShares {
		return 0, false
	}
	next, ok := vd.retarget(ms.curDiff.Load(), ms.vdWin.perMin())
	if !ok {
		return 0, false
	}
	ms.applyRetarget(next)
	return next, true
}

// vardiffIdle halves the difficulty of a session silent past the idle
// grace window — the sandbagging recovery path for server-clocked
// dialects, whose keepalives give the engine a clock to evaluate on even
// when no shares arrive. Repeated silence halves again each grace window
// (exponential descent to MinDifficulty).
func (ms *MinerSession) vardiffIdle(nowNs int64) (uint64, bool) {
	vd := &ms.eng.vardiff
	goalIntervalNs := int64(float64(time.Minute) / vd.TargetSharesPerMin)
	if nowNs-ms.lastAcceptNs < int64(vd.IdleGraceShares)*goalIntervalNs {
		return 0, false
	}
	cur := ms.curDiff.Load()
	next := vd.clampDiff(cur / 2)
	if next == cur {
		return 0, false
	}
	ms.applyRetarget(next)
	ms.lastAcceptNs = nowNs // restart the grace window at the new tier
	return next, true
}

// applyRetarget swaps the served difficulty. The previous tier stays
// submittable (prevDiff) so an in-flight honest share crossing the
// retarget is not punished; the window resets so the next evaluation
// measures the new tier only — without the reset, samples from the old
// tier would bias the very next estimate away from the goal.
func (ms *MinerSession) applyRetarget(next uint64) {
	ms.prevDiff = ms.curDiff.Load()
	ms.curDiff.Store(next)
	ms.vdWin.reset()
	ms.eng.retargets.Inc()
	ms.eng.pool.archiveEvent(archive.Event{
		Kind:   archive.KindRetarget,
		Amount: next,
		Aux:    ms.prevDiff,
		Actor:  ms.siteKey,
	})
}
