package coinhive

import (
	"sync"
	"time"
)

// connSet is the tracked-connection/drain state machine shared by the
// service's network fronts (the ws Server and the TCP StratumServer):
// live connections register so shutdown can reach them, a draining flag
// turns new arrivals away, and Drained waits for the set to empty. Only
// what shutdown *does* to a connection differs per front (ws completes a
// 1001 close handshake; TCP simply tears down), so that stays with the
// caller, applied to the snapshot Drain returns.
type connSet[T comparable] struct {
	mu       sync.Mutex
	conns    map[T]struct{}
	draining bool
}

// Track registers a live connection; it reports false when the front is
// draining, in which case the caller must turn the peer away.
func (cs *connSet[T]) Track(c T) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.draining {
		return false
	}
	if cs.conns == nil {
		cs.conns = map[T]struct{}{}
	}
	cs.conns[c] = struct{}{}
	return true
}

// Untrack removes a connection (its serve goroutine is exiting).
func (cs *connSet[T]) Untrack(c T) {
	cs.mu.Lock()
	delete(cs.conns, c)
	cs.mu.Unlock()
}

// Draining reports whether Drain has run.
func (cs *connSet[T]) Draining() bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.draining
}

// Snapshot returns the current live connections.
func (cs *connSet[T]) Snapshot() []T {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	open := make([]T, 0, len(cs.conns))
	for c := range cs.conns {
		open = append(open, c)
	}
	return open
}

// Drain flips the set into draining mode and returns the connections to
// shut down, plus whether this call was the one that started the drain
// (false: a concurrent or earlier Drain already owns teardown).
func (cs *connSet[T]) Drain() (open []T, first bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.draining {
		return nil, false
	}
	cs.draining = true
	open = make([]T, 0, len(cs.conns))
	for c := range cs.conns {
		open = append(open, c)
	}
	return open, true
}

// Drained reports whether every connection has unregistered, waiting up
// to timeout.
func (cs *connSet[T]) Drained(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		cs.mu.Lock()
		n := len(cs.conns)
		cs.mu.Unlock()
		if n == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
