package coinhive_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/coinhive"
	"repro/internal/session"
	"repro/internal/simclock"
	"repro/internal/stratum"
)

// waitParked polls until the stratum front reports want parked sessions.
func waitParked(t *testing.T, ss *coinhive.StratumServer, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for ss.Parked() != want {
		if time.Now().After(deadline) {
			t.Fatalf("parked = %d, want %d", ss.Parked(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStratumParkedSessionsGetJobPushes pins the core parking invariant:
// a parked session holds no reader goroutine, yet tip-change pushes
// still reach it — the fan-out path goes through the outbound queue, not
// the (parked) read side. The sessions stay parked throughout, because a
// push is server→client traffic and must not count as a wake.
func TestStratumParkedSessionsGetJobPushes(t *testing.T) {
	_, handler, pool := startService(t, 4)
	ss, addr := startStratum(t, handler)

	const n = 3
	clients := make([]*rawStratum, n)
	first := make([]string, n)
	for i := range clients {
		clients[i] = dialRaw(t, addr)
		first[i] = clients[i].login("park-push-key").Job.JobID
	}
	waitParked(t, ss, n)

	if _, err := pool.ProduceWinningBlock(1_525_100_000, 0, 7); err != nil {
		t.Fatal(err)
	}

	for i, c := range clients {
		env, err := c.readEnvelope()
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if !env.IsNotification() || env.Method != stratum.TypeJob {
			t.Fatalf("client %d: expected job push, got %+v", i, env)
		}
		var job stratum.Job
		if err := env.DecodeParams(&job); err != nil {
			t.Fatal(err)
		}
		if job.JobID == first[i] {
			t.Errorf("client %d: pushed job did not change after tip move", i)
		}
	}
	if got := ss.Parked(); got != n {
		t.Errorf("parked = %d after push, want %d (pushes must not wake readers)", got, n)
	}
}

// TestStratumParkedKeepaliveLifecycle drives the keepalive window
// through the parker's deadline heap: a session that keeps pinging
// survives window after window (each ping waking and re-parking it),
// while a silent one is reaped by the park timer with no goroutine ever
// dedicated to watching it.
func TestStratumParkedKeepaliveLifecycle(t *testing.T) {
	_, handler, _ := startService(t, 4)
	ss, addr := startStratum(t, handler, 400*time.Millisecond)

	live := dialRaw(t, addr)
	liveRes := live.login("park-reap-key")
	silent := dialRaw(t, addr)
	silent.login("park-reap-key")
	waitParked(t, ss, 2)

	// Four keepalives at half the window keep the live session healthy
	// across several would-be reaps.
	for i := 0; i < 4; i++ {
		time.Sleep(200 * time.Millisecond)
		live.sendLine(fmt.Sprintf(`{"id":%d,"jsonrpc":"2.0","method":"keepalived","params":{"id":%q}}`, 10+i, liveRes.ID))
		env, err := live.readEnvelope()
		if err != nil {
			t.Fatalf("keepalive %d: %v", i, err)
		}
		var kr stratum.KeepaliveResult
		if err := env.DecodeResult(&kr); err != nil || kr.Status != stratum.StatusKeepalive {
			t.Fatalf("keepalive %d result = %+v (%v)", i, kr, err)
		}
	}

	// The silent session blew its window long ago: the park timer must
	// have torn it down without a read deadline firing anywhere.
	silent.mustBeClosed()
	waitParked(t, ss, 1)
}

// TestStratumParkedVardiffIdleDownstep proves the vardiff idle path
// still works when sessions park between messages: a session whose
// difficulty was retargeted up goes quiet, and its next keepalive — the
// wake — must carry both the ack and the halved-difficulty job push.
func TestStratumParkedVardiffIdleDownstep(t *testing.T) {
	sim := simclock.New(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC))
	_, handler, pool := startService(t, 4, func(c *coinhive.PoolConfig) {
		c.Clock = sim
		c.Vardiff = coinhive.VardiffConfig{
			TargetSharesPerMin: 240,
			MinDifficulty:      1,
			MaxDifficulty:      1 << 16,
			WindowShares:       2,
			MinWindowShares:    2,
		}
	})
	ss, addr := startStratum(t, handler)

	c := dialRaw(t, addr)
	res := c.login("park-vardiff-key")
	token, job := res.ID, res.Job

	// Two instant accepts (frozen sim clock = infinite cadence) force an
	// upward retarget, which arrives as a job push behind the second ack.
	decoded := mustDecodeJob(t, job)
	var start uint32
	for i := 0; i < 2; i++ {
		nonce, sum := grindShare(t, pool, decoded, start)
		start = nonce + 1
		c.sendLine(fmt.Sprintf(`{"id":%d,"jsonrpc":"2.0","method":"submit","params":{"id":%q,"job_id":%q,"nonce":%q,"result":%q}}`,
			20+i, token, job.JobID, stratum.EncodeNonce(nonce), stratum.EncodeBlob(sum[:])))
		env, err := c.readEnvelope()
		if err != nil {
			t.Fatal(err)
		}
		if env.Error != nil {
			t.Fatalf("submit %d rejected: %+v", i, env.Error)
		}
	}
	retarget, err := c.readEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	if !retarget.IsNotification() || retarget.Method != stratum.TypeJob {
		t.Fatalf("expected retarget job push, got %+v", retarget)
	}
	var hardJob stratum.Job
	if err := retarget.DecodeParams(&hardJob); err != nil {
		t.Fatal(err)
	}

	// The session parks, goes idle past the grace window, then pings.
	waitParked(t, ss, 1)
	sim.RunFor(time.Minute)
	c.sendLine(fmt.Sprintf(`{"id":30,"jsonrpc":"2.0","method":"keepalived","params":{"id":%q}}`, token))
	ack, err := c.readEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	var kr stratum.KeepaliveResult
	if err := ack.DecodeResult(&kr); err != nil || kr.Status != stratum.StatusKeepalive {
		t.Fatalf("keepalive result = %+v (%v)", kr, err)
	}
	downstep, err := c.readEnvelope()
	if err != nil {
		t.Fatalf("no idle-downstep job push after keepalive: %v", err)
	}
	if !downstep.IsNotification() || downstep.Method != stratum.TypeJob {
		t.Fatalf("expected downstep job push, got %+v", downstep)
	}
	var easyJob stratum.Job
	if err := downstep.DecodeParams(&easyJob); err != nil {
		t.Fatal(err)
	}
	if easyJob.Target == hardJob.Target {
		t.Error("idle downstep did not change the session's target")
	}
}

// TestStratumParkedGoroutineDiet is the scaling claim made concrete: n
// live authenticated TCP sessions, all parked, must cost far fewer than
// one goroutine each. The bound is n/4 with a fixed allowance for the
// test's own machinery — the real shape is O(1) parker overhead.
func TestStratumParkedGoroutineDiet(t *testing.T) {
	_, handler, _ := startService(t, 4)
	ss, addr := startStratum(t, handler)

	before := runtime.NumGoroutine()
	const n = 128
	for i := 0; i < n; i++ {
		c := dialRaw(t, addr)
		c.login("park-diet-key")
	}
	waitParked(t, ss, n)
	grew := runtime.NumGoroutine() - before
	if grew > n/4 {
		t.Errorf("%d parked sessions grew goroutines by %d, want <= %d", n, grew, n/4)
	}
}

// mustDecodeJob adapts session.DecodeJob for tests that grind shares.
func mustDecodeJob(t *testing.T, j stratum.Job) session.Job {
	t.Helper()
	decoded, err := session.DecodeJob(j)
	if err != nil {
		t.Fatal(err)
	}
	return decoded
}
