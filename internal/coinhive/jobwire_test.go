package coinhive

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/stratum"
	"repro/internal/ws"
)

// TestJobWireBitIdenticalAcrossTiers is the encode-once acceptance bar:
// for every tier the fan-out serves (static, link, and a spread of
// vardiff difficulties) the cached wire bytes must be bit-identical to
// what the per-session marshal paths would have produced — on both
// dialects. The TCP expectation comes from the generic reflective notify
// encoder; the ws expectation frames the generic envelope marshal
// through the real frame writer.
func TestJobWireBitIdenticalAcrossTiers(t *testing.T) {
	pool := newTestPool(t, 4)
	tiers := []struct {
		name    string
		diff    uint64
		forLink bool
	}{
		{"static", 0, false},
		{"link", 0, true},
		{"vardiff-16", 16, false},
		{"vardiff-256", 256, false},
		{"vardiff-1M", 1 << 20, false},
	}
	for _, tier := range tiers {
		for slot := 0; slot < 3; slot++ {
			w := pool.jobWire(0, slot, tier.diff, tier.forLink)
			if w == nil || w.Job.JobID == "" {
				t.Fatalf("%s slot %d: empty wire", tier.name, slot)
			}
			wantTCP, err := stratum.AppendRPCNotify(nil, stratum.TypeJob, w.Job)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(w.TCPLine, wantTCP) {
				t.Errorf("%s slot %d TCP line:\n got %s\nwant %s", tier.name, slot, w.TCPLine, wantTCP)
			}
			payload, err := stratum.Marshal(stratum.TypeJob, w.Job)
			if err != nil {
				t.Fatal(err)
			}
			var frame bytes.Buffer
			if err := ws.WriteFrame(&frame, &ws.Frame{Fin: true, Opcode: ws.OpText, Payload: payload}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(w.WSFrame, frame.Bytes()) {
				t.Errorf("%s slot %d ws frame:\n got %x\nwant %x", tier.name, slot, w.WSFrame, frame.Bytes())
			}
		}
	}

	// Cache discipline: re-requesting every tier must return the same
	// pointers and mint nothing new — one encode per (tip, tier, slot).
	encodes := pool.jobEncodes.Load()
	for _, tier := range tiers {
		for slot := 0; slot < 3; slot++ {
			w1 := pool.jobWire(0, slot, tier.diff, tier.forLink)
			if w2 := pool.jobWire(0, slot, tier.diff, tier.forLink); w2 != w1 {
				t.Errorf("%s slot %d: cache returned distinct wires", tier.name, slot)
			}
		}
	}
	if got := pool.jobEncodes.Load(); got != encodes {
		t.Errorf("cache hits re-encoded: pool.job_encodes %d -> %d", encodes, got)
	}
}

// discardConn is a no-op net.Conn for alloc measurements: writes succeed
// instantly, deadlines are ignored.
type discardConn struct{}

func (discardConn) Read(b []byte) (int, error)       { return 0, io.EOF }
func (discardConn) Write(b []byte) (int, error)      { return len(b), nil }
func (discardConn) Close() error                     { return nil }
func (discardConn) LocalAddr() net.Addr              { return nil }
func (discardConn) RemoteAddr() net.Addr             { return nil }
func (discardConn) SetDeadline(time.Time) error      { return nil }
func (discardConn) SetReadDeadline(time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// TestServePushPathAllocFree pins the steady-state TCP serve path at
// zero allocations per operation: the JobWire cache hit, the batched
// push write, and the Deliver fast paths for keepalive acks and
// accepted-share replies. These are the per-session per-event costs that
// multiply by 50k; everything else (login, errors, tip refresh) is cold.
func TestServePushPathAllocFree(t *testing.T) {
	pool := newTestPool(t, 4)
	eng := NewEngine(pool)
	s := NewStratumServer(eng)
	defer s.Shutdown()

	w := pool.jobWire(0, 0, 0, false)
	if allocs := testing.AllocsPerRun(500, func() { pool.jobWire(0, 0, 0, false) }); allocs != 0 {
		t.Errorf("jobWire cache hit: %v allocs/op, want 0", allocs)
	}

	c := &stratumConn{srv: s, nc: discardConn{}}
	batch := []pushItem{{line: w.TCPLine, tipNs: time.Now().UnixNano()}}
	if err := c.writeBatch(batch); err != nil { // warm the iovec scratch
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(500, func() { _ = c.writeBatch(batch) }); allocs != 0 {
		t.Errorf("writeBatch: %v allocs/op, want 0", allocs)
	}

	keepalive := Command{Kind: CmdKeepalive, Tag: json.RawMessage("7")}
	kaEvs := []Event{{Kind: EvKeepalive}}
	if err := c.Deliver(nil, keepalive, kaEvs); err != nil { // warm wbuf
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(500, func() { _ = c.Deliver(nil, keepalive, kaEvs) }); allocs != 0 {
		t.Errorf("Deliver keepalive ack: %v allocs/op, want 0", allocs)
	}

	submit := Command{Kind: CmdSubmit, Tag: json.RawMessage("8")}
	okEvs := []Event{{Kind: EvAccepted, Accepted: stratum.HashAccepted{Hashes: 4096}}}
	if err := c.Deliver(nil, submit, okEvs); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(500, func() { _ = c.Deliver(nil, submit, okEvs) }); allocs != 0 {
		t.Errorf("Deliver submit OK: %v allocs/op, want 0", allocs)
	}
}
