package coinhive

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/metrics"
	"repro/internal/stratum"
	"repro/internal/ws"
)

// MinerScript is the JavaScript loader customers embed. It carries the
// markers (file name, global symbol) that the NoCoin filter list keys on —
// matching the real deployment, where the script URL alone was enough for
// block lists while the Wasm payload was not.
const MinerScript = `/* coinhive.min.js — Monetize Your Business With Your Users' CPU Power */
/* usage: var miner = new CoinHive.Anonymous('SITE_KEY'); miner.start(); */
var CoinHive=(function(){
  var W="/lib/cryptonight.wasm";
  function Anonymous(siteKey,opts){this.k=siteKey;this.o=opts||{};}
  Anonymous.prototype.start=function(){
    this._ws=new WebSocket(this.o.endpoint||"wss://ws001.coinhive.com/proxy");
    this._wasm=fetch(W);
  };
  function User(siteKey,user,opts){Anonymous.call(this,siteKey,opts);this.u=user;}
  return {Anonymous:Anonymous,User:User,CONFIG:{LIB_URL:W}};
})();`

// Server is the HTTP/WebSocket front of the service: the 32 /proxyN pool
// endpoints, the miner assets, the cnhv.co short-link pages and the
// /metrics exposition.
type Server struct {
	Pool    *Pool
	connSeq uint64

	// Live ws sessions, tracked so Shutdown can complete a proper close
	// handshake on each instead of leaving miners to time out on a dead
	// TCP connection.
	connMu   sync.Mutex
	conns    map[*ws.Conn]struct{}
	draining bool

	sessions      *metrics.Gauge   // live ws miner sessions (peak = max concurrency)
	sessionsTotal *metrics.Counter // sessions ever accepted
	authReject    *metrics.Counter // sessions dropped during auth
	jobsSent      *metrics.Counter // job messages fanned out
	submitNs      *metrics.Histogram
}

// NewServer wraps a pool, registering the server.* instruments in the
// pool's metrics registry.
func NewServer(p *Pool) *Server {
	reg := p.Metrics()
	return &Server{
		Pool:          p,
		conns:         map[*ws.Conn]struct{}{},
		sessions:      reg.Gauge("server.sessions"),
		sessionsTotal: reg.Counter("server.sessions_total"),
		authReject:    reg.Counter("server.auth_reject"),
		jobsSent:      reg.Counter("server.jobs_sent"),
		submitNs:      reg.Histogram("server.submit_ns"),
	}
}

// trackConn registers a live session; it reports false when the server
// is draining, in which case the caller must turn the miner away.
func (s *Server) trackConn(c *ws.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrackConn(c *ws.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// Shutdown stops accepting miner sessions and closes every live one with
// a 1001 (going away) close handshake. The HTTP listener is the caller's
// to stop (http.Server.Shutdown); this drains what that cannot reach —
// hijacked WebSocket connections.
//
// Each session's serveWS reader is still running, so the close frame is
// only queued here (InitiateClose); the reader consumes the peer's close
// reply and tears the transport down cleanly — closing the socket
// directly would race unread in-flight data and could turn the
// handshake into a TCP reset. The read deadline bounds the drain when a
// peer never replies.
func (s *Server) Shutdown() {
	s.connMu.Lock()
	s.draining = true
	open := make([]*ws.Conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.connMu.Unlock()
	for _, c := range open {
		c.InitiateClose(ws.CloseGoingAway, "server shutting down")
		_ = c.SetReadDeadline(time.Now().Add(3 * time.Second))
	}
}

// Drained reports whether every miner session has finished its close
// handshake, waiting up to timeout. Callers that exit the process after
// Shutdown should wait here first, or the OS teardown races the
// handshakes Shutdown queued.
func (s *Server) Drained(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.connMu.Lock()
		n := len(s.conns)
		s.connMu.Unlock()
		if n == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ServeHTTP routes all service endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case strings.HasPrefix(path, "/proxy"):
		n, err := strconv.Atoi(strings.TrimPrefix(path, "/proxy"))
		if err != nil || n < 0 || n >= s.Pool.NumEndpoints() {
			http.NotFound(w, r)
			return
		}
		s.serveWS(w, r, n)
	case path == "/lib/coinhive.min.js":
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprint(w, MinerScript)
	case path == "/lib/cryptonight.wasm":
		spec, _ := fingerprint.SpecByName(fingerprint.FamilyCoinhive)
		w.Header().Set("Content-Type", "application/wasm")
		w.Write(fingerprint.BinaryFor(spec, spec.Versions-1))
	case strings.HasPrefix(path, "/cn/"):
		s.serveLinkPage(w, r, strings.TrimPrefix(path, "/cn/"))
	case path == "/api/link/create" && r.Method == http.MethodPost:
		s.serveLinkCreate(w, r)
	case path == "/api/captcha/create" && r.Method == http.MethodPost:
		s.serveCaptchaCreate(w, r)
	case path == "/api/captcha/verify" && r.Method == http.MethodPost:
		s.serveCaptchaVerify(w, r)
	case path == "/api/stats":
		s.serveStats(w)
	case path == "/metrics":
		s.serveMetrics(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveLinkPage renders the interstitial progress page. The markup carries
// the creator token and required hash count as data attributes — exactly
// the two fields the paper's scraper collected from each cnhv.co page.
func (s *Server) serveLinkPage(w http.ResponseWriter, r *http.Request, id string) {
	link, err := s.Pool.Links().Get(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprintf(w, `<!doctype html>
<html><head><title>cnhv.co/%s</title>
<script src="/lib/coinhive.min.js"></script>
</head><body>
<div class="proof-of-work" data-key="%s" data-hashes="%d" data-link="%s">
  <div class="progress"><span class="bar" style="width:0%%"></span></div>
  <p>Please wait while we verify your browser (%d hashes required)&hellip;</p>
</div>
<script>var miner=new CoinHive.User("%s","link:%s",{goal:%d});miner.start();</script>
</body></html>`,
		link.ID, link.Token, link.Required, link.ID, link.Required,
		link.Token, link.ID, link.Required)
}

func (s *Server) serveLinkCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Token  string `json:"token"`
		URL    string `json:"url"`
		Hashes uint64 `json:"hashes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Token == "" || req.URL == "" {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	if req.Hashes == 0 {
		req.Hashes = 1024
	}
	id := s.Pool.Links().Create(req.Token, req.URL, req.Hashes)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"id": id})
}

func (s *Server) serveCaptchaCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SiteKey string `json:"site_key"`
		Hashes  uint64 `json:"hashes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SiteKey == "" {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	c := s.Pool.Captchas().Create(req.SiteKey, req.Hashes)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{"id": c.ID, "hashes": c.Required})
}

// serveCaptchaVerify is the server-to-server check a customer backend makes.
func (s *Server) serveCaptchaVerify(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID    string `json:"id"`
		Token string `json:"token"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	err := s.Pool.Captchas().Verify(req.ID, req.Token)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{
		"success": err == nil,
		"error":   errString(err),
	})
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func (s *Server) serveStats(w http.ResponseWriter) {
	st := s.Pool.StatsSnapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// serveMetrics exposes the registry: text by default, the machine-read
// form with ?format=json.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.Pool.Metrics()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	reg.WriteText(w)
}

// serveWS runs one miner session on endpoint n.
func (s *Server) serveWS(w http.ResponseWriter, r *http.Request, endpoint int) {
	conn, err := ws.Upgrade(w, r)
	if err != nil {
		return
	}
	defer conn.Close()
	if !s.trackConn(conn) {
		_ = conn.CloseWithCode(ws.CloseGoingAway, "server shutting down")
		return
	}
	defer s.untrackConn(conn)
	s.sessionsTotal.Inc()
	s.sessions.Inc()
	defer s.sessions.Dec()
	slot := int(atomic.AddUint64(&s.connSeq, 1))

	send := func(msgType string, params interface{}) error {
		data, err := stratum.Marshal(msgType, params)
		if err != nil {
			return err
		}
		if msgType == stratum.TypeJob {
			s.jobsSent.Inc()
		}
		return conn.WriteMessage(ws.OpText, data)
	}
	fail := func(msg string) {
		_ = send(stratum.TypeError, stratum.Error{Error: msg})
	}

	// First message must be auth.
	_, data, err := conn.ReadMessage()
	if err != nil {
		return
	}
	env, err := stratum.Unmarshal(data)
	if err != nil || env.Type != stratum.TypeAuth {
		s.authReject.Inc()
		fail("expected auth")
		return
	}
	var auth stratum.Auth
	if err := env.Decode(&auth); err != nil || auth.SiteKey == "" {
		s.authReject.Inc()
		fail("invalid site key")
		return
	}
	linkID := ""
	captchaID := ""
	switch {
	case strings.HasPrefix(auth.User, "link:"):
		linkID = strings.TrimPrefix(auth.User, "link:")
		if _, err := s.Pool.Links().Get(linkID); err != nil {
			s.authReject.Inc()
			fail("unknown link")
			return
		}
	case strings.HasPrefix(auth.User, "captcha:"):
		captchaID = strings.TrimPrefix(auth.User, "captcha:")
		if _, err := s.Pool.Captchas().Credit(captchaID, 0); err != nil {
			s.authReject.Inc()
			fail("unknown captcha")
			return
		}
	}
	lowDiff := linkID != "" || captchaID != ""
	acct := s.Pool.Authorize(auth.SiteKey)
	if err := send(stratum.TypeAuthed, stratum.Authed{Token: acct.Token, Hashes: int64(acct.TotalHashes)}); err != nil {
		return
	}
	if err := send(stratum.TypeJob, s.Pool.Job(endpoint, slot, lowDiff)); err != nil {
		return
	}

	for {
		_, data, err := conn.ReadMessage()
		if err != nil {
			return
		}
		env, err := stratum.Unmarshal(data)
		if err != nil {
			fail("bad message")
			return
		}
		if env.Type != stratum.TypeSubmit {
			fail("unexpected " + env.Type)
			continue
		}
		var sub stratum.Submit
		if err := env.Decode(&sub); err != nil {
			fail("bad submit")
			continue
		}
		nonce, err := stratum.DecodeNonce(sub.Nonce)
		if err != nil {
			fail("bad nonce")
			continue
		}
		resBytes, err := stratum.DecodeBlob(sub.Result)
		if err != nil || len(resBytes) != 32 {
			fail("bad result")
			continue
		}
		var result [32]byte
		copy(result[:], resBytes)
		verifyStart := time.Now()
		out, err := s.Pool.SubmitShare(auth.SiteKey, sub.JobID, nonce, result, linkID)
		s.submitNs.Observe(time.Since(verifyStart))
		switch err {
		case nil:
			if err := send(stratum.TypeHashAccepted, stratum.HashAccepted{Hashes: int64(out.Credited)}); err != nil {
				return
			}
			if linkID != "" {
				if url, derr := s.Pool.Links().Destination(linkID); derr == nil {
					if err := send(stratum.TypeLinkResolved, stratum.LinkResolved{ID: linkID, URL: url}); err != nil {
						return
					}
				}
			}
			if captchaID != "" {
				cap, cerr := s.Pool.Captchas().Credit(captchaID, out.Diff)
				if cerr == nil && cap.Solved() {
					// Reuse the link_resolved push to hand the widget its
					// verification token.
					if err := send(stratum.TypeLinkResolved, stratum.LinkResolved{ID: captchaID, URL: cap.Token}); err != nil {
						return
					}
				}
			}
		case ErrUnknownJob:
			// Stale tip: silently hand out fresh work below.
		default:
			fail(err.Error())
		}
		if err := send(stratum.TypeJob, s.Pool.Job(endpoint, slot, lowDiff)); err != nil {
			return
		}
	}
}
