package coinhive

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/stratum"
	"repro/internal/ws"
)

// MinerScript is the JavaScript loader customers embed. It carries the
// markers (file name, global symbol) that the NoCoin filter list keys on —
// matching the real deployment, where the script URL alone was enough for
// block lists while the Wasm payload was not.
const MinerScript = `/* coinhive.min.js — Monetize Your Business With Your Users' CPU Power */
/* usage: var miner = new CoinHive.Anonymous('SITE_KEY'); miner.start(); */
var CoinHive=(function(){
  var W="/lib/cryptonight.wasm";
  function Anonymous(siteKey,opts){this.k=siteKey;this.o=opts||{};}
  Anonymous.prototype.start=function(){
    this._ws=new WebSocket(this.o.endpoint||"wss://ws001.coinhive.com/proxy");
    this._wasm=fetch(W);
  };
  function User(siteKey,user,opts){Anonymous.call(this,siteKey,opts);this.u=user;}
  return {Anonymous:Anonymous,User:User,CONFIG:{LIB_URL:W}};
})();`

// Server is the HTTP/WebSocket front of the service: the 32 /proxyN pool
// endpoints, the miner assets, the cnhv.co short-link pages and the
// /metrics exposition. All session-protocol semantics live in the Engine;
// this type only speaks the ws+coinhive dialect and routes HTTP.
type Server struct {
	Pool *Pool
	eng  *Engine

	// Live ws sessions, tracked so Shutdown can complete a proper close
	// handshake on each instead of leaving miners to time out on a dead
	// TCP connection.
	conns connSet[*ws.Conn]

	// api, when attached, serves /api/v1/... (the archived-history stats
	// API). It is a plain http.Handler so coinhive stays independent of
	// the statsapi package — the daemon wires the two together.
	api http.Handler
}

// NewServer wraps a pool in a fresh engine. Use NewServerWithEngine to
// share one engine (and its session accounting) with other transports.
func NewServer(p *Pool) *Server {
	return NewServerWithEngine(NewEngine(p))
}

// NewServerWithEngine builds the HTTP/ws front over an existing engine.
func NewServerWithEngine(e *Engine) *Server {
	return &Server{
		Pool: e.Pool(),
		eng:  e,
	}
}

// Engine exposes the session engine, for wiring additional transports
// (see NewStratumServer) onto the same session accounting.
func (s *Server) Engine() *Engine { return s.eng }

// Shutdown stops accepting miner sessions and closes every live one with
// a 1001 (going away) close handshake. The HTTP listener is the caller's
// to stop (http.Server.Shutdown); this drains what that cannot reach —
// hijacked WebSocket connections.
//
// Each session's serveWS reader is still running, so the close frame is
// only queued here (InitiateClose); the reader consumes the peer's close
// reply and tears the transport down cleanly — closing the socket
// directly would race unread in-flight data and could turn the
// handshake into a TCP reset. The read deadline bounds the drain when a
// peer never replies.
func (s *Server) Shutdown() {
	open, _ := s.conns.Drain()
	for _, c := range open {
		c.InitiateClose(ws.CloseGoingAway, "server shutting down")
		_ = c.SetReadDeadline(time.Now().Add(3 * time.Second))
	}
}

// Drained reports whether every miner session has finished its close
// handshake, waiting up to timeout. Callers that exit the process after
// Shutdown should wait here first, or the OS teardown races the
// handshakes Shutdown queued.
func (s *Server) Drained(timeout time.Duration) bool {
	return s.conns.Drained(timeout)
}

// ServeHTTP routes all service endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case strings.HasPrefix(path, "/proxy"):
		n, err := strconv.Atoi(strings.TrimPrefix(path, "/proxy"))
		if err != nil || n < 0 || n >= s.Pool.NumEndpoints() {
			http.NotFound(w, r)
			return
		}
		s.serveWS(w, r, n)
	case path == "/lib/coinhive.min.js":
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprint(w, MinerScript)
	case path == "/lib/cryptonight.wasm":
		spec, _ := fingerprint.SpecByName(fingerprint.FamilyCoinhive)
		w.Header().Set("Content-Type", "application/wasm")
		w.Write(fingerprint.BinaryFor(spec, spec.Versions-1))
	case strings.HasPrefix(path, "/cn/"):
		s.serveLinkPage(w, r, strings.TrimPrefix(path, "/cn/"))
	case path == "/api/link/create" && r.Method == http.MethodPost:
		s.serveLinkCreate(w, r)
	case path == "/api/captcha/create" && r.Method == http.MethodPost:
		s.serveCaptchaCreate(w, r)
	case path == "/api/captcha/verify" && r.Method == http.MethodPost:
		s.serveCaptchaVerify(w, r)
	case strings.HasPrefix(path, "/api/v1/"):
		if s.api == nil {
			http.NotFound(w, r)
			return
		}
		s.api.ServeHTTP(w, r)
	case path == "/api/stats":
		s.serveStats(w)
	case path == "/metrics":
		s.serveMetrics(w, r)
	default:
		http.NotFound(w, r)
	}
}

// AttachAPI mounts h at /api/v1/... on the service mux. Call before
// serving; typically h is a statsapi.API over the pool's archive.
func (s *Server) AttachAPI(h http.Handler) { s.api = h }

// serveLinkPage renders the interstitial progress page. The markup carries
// the creator token and required hash count as data attributes — exactly
// the two fields the paper's scraper collected from each cnhv.co page.
func (s *Server) serveLinkPage(w http.ResponseWriter, r *http.Request, id string) {
	link, err := s.Pool.Links().Get(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprintf(w, `<!doctype html>
<html><head><title>cnhv.co/%s</title>
<script src="/lib/coinhive.min.js"></script>
</head><body>
<div class="proof-of-work" data-key="%s" data-hashes="%d" data-link="%s">
  <div class="progress"><span class="bar" style="width:0%%"></span></div>
  <p>Please wait while we verify your browser (%d hashes required)&hellip;</p>
</div>
<script>var miner=new CoinHive.User("%s","link:%s",{goal:%d});miner.start();</script>
</body></html>`,
		link.ID, link.Token, link.Required, link.ID, link.Required,
		link.Token, link.ID, link.Required)
}

func (s *Server) serveLinkCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Token  string `json:"token"`
		URL    string `json:"url"`
		Hashes uint64 `json:"hashes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Token == "" || req.URL == "" {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	if req.Hashes == 0 {
		req.Hashes = 1024
	}
	id := s.Pool.Links().Create(req.Token, req.URL, req.Hashes)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"id": id})
}

func (s *Server) serveCaptchaCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SiteKey string `json:"site_key"`
		Hashes  uint64 `json:"hashes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SiteKey == "" {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	c := s.Pool.Captchas().Create(req.SiteKey, req.Hashes)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{"id": c.ID, "hashes": c.Required})
}

// serveCaptchaVerify is the server-to-server check a customer backend makes.
func (s *Server) serveCaptchaVerify(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID    string `json:"id"`
		Token string `json:"token"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	err := s.Pool.Captchas().Verify(req.ID, req.Token)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{
		"success": err == nil,
		"error":   errString(err),
	})
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func (s *Server) serveStats(w http.ResponseWriter) {
	st := s.Pool.StatsSnapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// serveMetrics exposes the registry: text by default, the machine-read
// form with ?format=json.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.Pool.Metrics()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	reg.WriteText(w)
}

// serveWS runs one miner session on endpoint n: upgrade, track for drain,
// then hand the connection to the engine behind the ws dialect codec.
func (s *Server) serveWS(w http.ResponseWriter, r *http.Request, endpoint int) {
	conn, err := ws.Upgrade(w, r)
	if err != nil {
		return
	}
	defer conn.Close()
	// The codec fully decodes each frame before the next read, so the
	// read buffer can be recycled across messages instead of reallocated
	// per frame.
	conn.EnableReadBufferReuse()
	if !s.conns.Track(conn) {
		_ = conn.CloseWithCode(ws.CloseGoingAway, "server shutting down")
		return
	}
	defer s.conns.Untrack(conn)
	s.eng.ServeSession(endpoint, &wsTransport{conn: conn, remote: remoteHost(conn.RemoteAddr())})
}

// remoteHost strips the port from a transport address, for per-host
// abuse keying. Empty when the address is unavailable or unparseable.
func remoteHost(addr net.Addr) string {
	if addr == nil {
		return ""
	}
	host, _, err := net.SplitHostPort(addr.String())
	if err != nil {
		return addr.String()
	}
	return host
}

// wsTransport is the ws+coinhive dialect codec: JSON envelopes over text
// frames, strictly client-clocked. It holds no protocol state — every
// rule lives in the engine.
type wsTransport struct {
	conn   *ws.Conn
	remote string
	// Scratch for the alloc-free delivery fast paths: the envelope
	// payload and the encoded frame around it.
	pbuf []byte
	fbuf []byte
}

// RemoteHost exposes the peer host for the engine's optional per-host
// abuse keying.
func (t *wsTransport) RemoteHost() string { return t.remote }

// ReadCommand parses the next text frame. Wire-level decode failures
// (garbage envelope, bad hex) become Commands carrying this dialect's
// error text; only transport death is an error.
func (t *wsTransport) ReadCommand() (Command, error) {
	_, data, err := t.conn.ReadMessage()
	if err != nil {
		return Command{}, err
	}
	env, err := stratum.Unmarshal(data)
	if err != nil {
		return Command{Kind: CmdGarbage}, nil
	}
	switch env.Type {
	case stratum.TypeAuth:
		var auth stratum.Auth
		if env.Decode(&auth) != nil {
			auth = stratum.Auth{} // empty site key: the engine rejects it
		}
		return Command{Kind: CmdOpen, Auth: auth}, nil
	case stratum.TypeSubmit:
		var sub stratum.Submit
		if err := env.Decode(&sub); err != nil {
			return Command{Kind: CmdBadParams, Reply: "bad submit"}, nil
		}
		return submitCommand(sub.JobID, sub.Nonce, sub.Result), nil
	default:
		return Command{Kind: CmdUnknown, Name: env.Type}, nil
	}
}

// ServerClocked reports the ws dialect's clocking: the pool only ever
// answers, so every submit reply carries the next job.
func (t *wsTransport) ServerClocked() bool { return false }

// Deliver renders each event as one envelope frame, in order. The two
// steady-state events take encode-once paths: a job's frame bytes were
// already minted by the JobWire cache (shared by every session on the
// same vardiff tier), and an accepted-share ack is assembled by the
// alloc-free appenders into the transport's scratch buffer. Everything
// else — auth, errors, link and captcha notifications — is cold and
// keeps the reflective marshal.
func (t *wsTransport) Deliver(ms *MinerSession, cmd Command, evs []Event) error {
	for _, ev := range evs {
		var (
			msgType string
			params  interface{}
		)
		switch ev.Kind {
		case EvAuthed:
			msgType, params = stratum.TypeAuthed, ev.Authed
		case EvJob:
			if ev.Wire != nil {
				if err := t.conn.WriteRawFrame(ev.Wire.WSFrame); err != nil {
					return err
				}
				continue
			}
			msgType, params = stratum.TypeJob, ev.Job
		case EvAccepted:
			t.pbuf = stratum.AppendHashAcceptedEnvelope(t.pbuf[:0], ev.Accepted.Hashes)
			t.fbuf = ws.AppendServerFrame(t.fbuf[:0], ws.OpText, t.pbuf)
			if err := t.conn.WriteRawFrame(t.fbuf); err != nil {
				return err
			}
			continue
		case EvLinkResolved:
			msgType, params = stratum.TypeLinkResolved, ev.Link
		case EvCaptchaVerified:
			msgType, params = stratum.TypeCaptchaVerified, ev.Captcha
		case EvError:
			msgType, params = stratum.TypeError, stratum.Error{Error: ev.Err}
			if ev.Banned {
				// A ban gets its own message type in this dialect, so the
				// miner script can stop reconnecting instead of retrying a
				// generic error.
				msgType = stratum.TypeBanned
			}
		default:
			continue // EvKeepalive: not part of this dialect
		}
		data, err := stratum.Marshal(msgType, params)
		if err != nil {
			return err
		}
		if err := t.conn.WriteMessage(ws.OpText, data); err != nil {
			return err
		}
	}
	return nil
}
