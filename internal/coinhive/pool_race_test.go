package coinhive

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stratum"
)

// preminedShare is a solved job ready for (re)submission. Jobs stay live
// until the tip moves, so resubmitting one exercises the full verify+credit
// path every time — exactly what the race tests below need.
type preminedShare struct {
	jobID string
	nonce uint32
	sum   [32]byte
}

func premineShares(t *testing.T, pool *Pool, n int) []preminedShare {
	t.Helper()
	shares := make([]preminedShare, n)
	for i := range shares {
		j := pool.Job(i%pool.NumEndpoints(), i, false)
		nonce, sum := mineShare(t, pool, j)
		shares[i] = preminedShare{jobID: j.JobID, nonce: nonce, sum: sum}
	}
	return shares
}

// TestPoolConcurrentSubmitJobStats hammers one Pool from 10 goroutines:
// valid submitters, forging submitters, job pollers and stats readers, all
// at once. Run under -race this is the shard/stripe layout's proof of
// data-race freedom; the counter assertions prove no share is lost or
// double-counted under contention.
func TestPoolConcurrentSubmitJobStats(t *testing.T) {
	// The duplicate memo is off: this test's whole point is replaying the
	// same premined shares through the verify+credit path under -race.
	pool := newTestPool(t, 8, noDupMemo)
	shares := premineShares(t, pool, 16)

	const (
		submitters = 4
		forgers    = 2
		rounds     = 40
	)
	var accepted, rejected atomic.Uint64
	var wg sync.WaitGroup

	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := shares[(g*rounds+i)%len(shares)]
				if _, err := pool.SubmitShare("conc-site", s.jobID, s.nonce, s.sum, ""); err != nil {
					t.Errorf("valid share rejected: %v", err)
					return
				}
				accepted.Add(1)
			}
		}(g)
	}
	for g := 0; g < forgers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := shares[(g*rounds+i)%len(shares)]
				bad := s.sum
				bad[0] ^= 0xFF
				if _, err := pool.SubmitShare("conc-site", s.jobID, s.nonce, bad, ""); err != ErrBadShare {
					t.Errorf("forged share: err = %v, want ErrBadShare", err)
					return
				}
				rejected.Add(1)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < submitters*rounds; i++ {
			j := pool.Job(i%pool.NumEndpoints(), i, i%3 == 0)
			if j.JobID == "" || j.Blob == "" {
				t.Error("empty job under contention")
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		var bq [32]byte
		for i := 0; i < submitters*rounds; i++ {
			if _, err := stratum.DecodeBlob(pool.Job(i, i, false).Blob); err != nil {
				t.Errorf("job blob corrupt under contention: %v", err)
				return
			}
			if _, err := pool.SubmitShare("conc-site", "not-a-job", 0, bq, ""); err != ErrUnknownJob {
				t.Errorf("unknown job: err = %v", err)
				return
			}
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < submitters*rounds; i++ {
				st := pool.StatsSnapshot()
				if st.SharesOK > uint64(submitters*rounds) {
					t.Errorf("SharesOK overshot: %d", st.SharesOK)
					return
				}
				pool.AccountSnapshot("conc-site")
				pool.RefreshIfStale()
			}
		}()
	}
	wg.Wait()

	st := pool.StatsSnapshot()
	if st.SharesOK != accepted.Load() {
		t.Errorf("SharesOK = %d, want %d", st.SharesOK, accepted.Load())
	}
	// Forgeries plus the stats goroutine's unknown-job probes.
	wantBad := rejected.Load() + uint64(submitters*rounds)
	if st.SharesBad != wantBad {
		t.Errorf("SharesBad = %d, want %d", st.SharesBad, wantBad)
	}
	a, ok := pool.AccountSnapshot("conc-site")
	if !ok || a.TotalHashes != accepted.Load()*8 {
		t.Errorf("account credit = %d, want %d", a.TotalHashes, accepted.Load()*8)
	}
}

// TestPoolConcurrentSettlement races share submission against winning
// blocks (tip changes, shard refreshes, reward settlement). Stale shares
// may be rejected, but the revenue conservation invariant must hold
// exactly: every found block's reward splits into paid + kept.
func TestPoolConcurrentSettlement(t *testing.T) {
	pool := newTestPool(t, 8, noDupMemo)
	shares := premineShares(t, pool, 12)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				s := shares[(g*25+i)%len(shares)]
				_, err := pool.SubmitShare("settle-site", s.jobID, s.nonce, s.sum, "")
				if err != nil && err != ErrStaleJob {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ts := uint64(1_525_000_300)
		for i := 0; i < 5; i++ {
			ts += 200
			if _, err := pool.ProduceWinningBlock(ts, i, uint32(i*37)); err != nil {
				t.Errorf("ProduceWinningBlock: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	st := pool.StatsSnapshot()
	if st.BlocksFound != 5 {
		t.Fatalf("blocks found = %d, want 5", st.BlocksFound)
	}
	var rewards uint64
	for _, fb := range pool.FoundBlocks() {
		rewards += fb.Reward
	}
	if st.PaidAtomic+st.KeptAtomic != rewards {
		t.Errorf("paid %d + kept %d != total rewards %d", st.PaidAtomic, st.KeptAtomic, rewards)
	}
}
