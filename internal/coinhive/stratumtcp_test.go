package coinhive_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/coinhive"
	"repro/internal/session"
	"repro/internal/stratum"
)

// rawStratum is a line-level TCP client for conformance testing — no
// client codec in the way, so the assertions are about exactly what
// crosses the wire.
type rawStratum struct {
	t  *testing.T
	nc net.Conn
	br *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawStratum {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawStratum{t: t, nc: nc, br: bufio.NewReaderSize(nc, stratum.MaxRPCLine)}
}

func (r *rawStratum) sendLine(line string) {
	r.t.Helper()
	_ = r.nc.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.nc.Write([]byte(line + "\n")); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawStratum) readEnvelope() (stratum.RPCEnvelope, error) {
	_ = r.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := stratum.ReadRPCLine(r.br)
	if err != nil {
		return stratum.RPCEnvelope{}, err
	}
	return stratum.UnmarshalRPC(line)
}

func (r *rawStratum) mustReadError(wantCode int) stratum.RPCEnvelope {
	r.t.Helper()
	env, err := r.readEnvelope()
	if err != nil {
		r.t.Fatalf("reading expected error response: %v", err)
	}
	if env.Error == nil {
		r.t.Fatalf("response is not an error: %+v", env)
	}
	if env.Error.Code != wantCode {
		r.t.Fatalf("error code = %d (%q), want %d", env.Error.Code, env.Error.Message, wantCode)
	}
	return env
}

// mustBeClosed asserts the server hangs up (EOF or reset) on next read.
func (r *rawStratum) mustBeClosed() {
	r.t.Helper()
	if env, err := r.readEnvelope(); err == nil {
		r.t.Fatalf("connection still alive, read %+v", env)
	}
}

func (r *rawStratum) login(siteKey string) stratum.LoginResult {
	r.t.Helper()
	r.sendLine(fmt.Sprintf(`{"id":1,"jsonrpc":"2.0","method":"login","params":{"login":%q}}`, siteKey))
	env, err := r.readEnvelope()
	if err != nil {
		r.t.Fatal(err)
	}
	if env.Error != nil {
		r.t.Fatalf("login rejected: %+v", env.Error)
	}
	var res stratum.LoginResult
	if err := env.DecodeResult(&res); err != nil {
		r.t.Fatal(err)
	}
	if res.Status != stratum.StatusOK || res.ID == "" || res.Job.JobID == "" {
		r.t.Fatalf("login result = %+v", res)
	}
	return res
}

// TestStratumTCPConformance is the TCP twin of the ws malformed
// scenario: a table of dialect violations, each pinned to its exact
// wire-level outcome.
func TestStratumTCPConformance(t *testing.T) {
	t.Run("oversize line", func(t *testing.T) {
		_, handler, _ := startService(t, 4)
		_, addr := startStratum(t, handler)
		c := dialRaw(t, addr)
		c.sendLine(`{"padding":"` + strings.Repeat("x", stratum.MaxRPCLine+64) + `"}`)
		c.mustReadError(stratum.RPCParseError)
		c.mustBeClosed()
	})

	t.Run("bad json", func(t *testing.T) {
		_, handler, _ := startService(t, 4)
		_, addr := startStratum(t, handler)
		c := dialRaw(t, addr)
		c.login("tcp-conf-key")
		c.sendLine(`{definitely not json`)
		c.mustReadError(stratum.RPCParseError)
		c.mustBeClosed()
	})

	t.Run("unknown method", func(t *testing.T) {
		_, handler, _ := startService(t, 4)
		_, addr := startStratum(t, handler)
		c := dialRaw(t, addr)
		c.login("tcp-conf-key")
		c.sendLine(`{"id":2,"jsonrpc":"2.0","method":"mining.extranonce","params":{}}`)
		env := c.mustReadError(stratum.RPCUnknownMethod)
		if env.Error.Message != "unexpected mining.extranonce" {
			t.Errorf("message = %q", env.Error.Message)
		}
		// The session survives an unknown method.
		c.sendLine(`{"id":3,"jsonrpc":"2.0","method":"keepalived","params":{"id":"x"}}`)
		reply, err := c.readEnvelope()
		if err != nil || reply.Error != nil {
			t.Fatalf("session did not survive unknown method: %v %+v", err, reply)
		}
	})

	t.Run("submit before login", func(t *testing.T) {
		_, handler, _ := startService(t, 4)
		_, addr := startStratum(t, handler)
		c := dialRaw(t, addr)
		c.sendLine(`{"id":1,"jsonrpc":"2.0","method":"submit","params":{"id":"x","job_id":"0-1-0","nonce":"00000000","result":"` +
			strings.Repeat("ab", 32) + `"}}`)
		env := c.mustReadError(stratum.RPCUnauthorized)
		if env.Error.Message != "expected auth" {
			t.Errorf("message = %q", env.Error.Message)
		}
		c.mustBeClosed()
	})

	t.Run("bad submit params", func(t *testing.T) {
		_, handler, _ := startService(t, 4)
		_, addr := startStratum(t, handler)
		c := dialRaw(t, addr)
		c.login("tcp-conf-key")
		c.sendLine(`{"id":2,"jsonrpc":"2.0","method":"submit","params":{"id":"x","job_id":"0-1-0","nonce":"zz!!zz!!","result":"` +
			strings.Repeat("ab", 32) + `"}}`)
		env := c.mustReadError(stratum.RPCInvalidParams)
		if env.Error.Message != "bad nonce" {
			t.Errorf("message = %q", env.Error.Message)
		}
		// Non-fatal: keepalive still answered.
		c.sendLine(`{"id":3,"jsonrpc":"2.0","method":"keepalived","params":{"id":"x"}}`)
		if reply, err := c.readEnvelope(); err != nil || reply.Error != nil {
			t.Fatalf("session did not survive bad params: %v %+v", err, reply)
		}
	})

	t.Run("keepalive timeout", func(t *testing.T) {
		_, handler, _ := startService(t, 4)
		_, addr := startStratum(t, handler, 150*time.Millisecond)
		c := dialRaw(t, addr)
		c.login("tcp-conf-key")
		// Stay silent past the window: the server drops the connection.
		time.Sleep(400 * time.Millisecond)
		c.mustBeClosed()
	})

	t.Run("keepalive answered", func(t *testing.T) {
		_, handler, _ := startService(t, 4)
		_, addr := startStratum(t, handler, 300*time.Millisecond)
		c := dialRaw(t, addr)
		res := c.login("tcp-conf-key")
		// Pinging inside the window keeps the session alive across what
		// would otherwise be two timeouts.
		for i := 0; i < 4; i++ {
			time.Sleep(100 * time.Millisecond)
			c.sendLine(fmt.Sprintf(`{"id":%d,"jsonrpc":"2.0","method":"keepalived","params":{"id":%q}}`, 10+i, res.ID))
			env, err := c.readEnvelope()
			if err != nil {
				t.Fatalf("keepalive %d: %v", i, err)
			}
			var ka stratum.KeepaliveResult
			if err := env.DecodeResult(&ka); err != nil || ka.Status != stratum.StatusKeepalive {
				t.Fatalf("keepalive %d reply = %+v (%v)", i, env, err)
			}
		}
	})
}

// TestStratumTCPJobPushOnTipChange pins the server-clocked half: when
// the chain tip moves, every authenticated TCP session receives an
// unsolicited job notification carrying fresh (resolvable) work.
func TestStratumTCPJobPushOnTipChange(t *testing.T) {
	_, handler, pool := startService(t, 4)
	ss, addr := startStratum(t, handler)

	c := dialRaw(t, addr)
	res := c.login("push-key")

	if _, err := pool.ProduceWinningBlock(1_525_100_000, 0, 7); err != nil {
		t.Fatal(err)
	}

	env, err := c.readEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	if !env.IsNotification() || env.Method != stratum.TypeJob {
		t.Fatalf("expected job notification, got %+v", env)
	}
	var job stratum.Job
	if err := env.DecodeParams(&job); err != nil {
		t.Fatal(err)
	}
	if job.JobID == res.Job.JobID {
		t.Error("pushed job did not change after the tip moved")
	}

	// The pushed job is real: a share ground against it is accepted.
	decoded, err := session.DecodeJob(job)
	if err != nil {
		t.Fatal(err)
	}
	nonce, sum := grindShare(t, pool, decoded)
	c.sendLine(fmt.Sprintf(`{"id":5,"jsonrpc":"2.0","method":"submit","params":{"id":%q,"job_id":%q,"nonce":%q,"result":%q}}`,
		res.ID, job.JobID, stratum.EncodeNonce(nonce), stratum.EncodeBlob(sum[:])))
	reply, err := c.readEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Error != nil {
		t.Fatalf("share against pushed job rejected: %+v", reply.Error)
	}
	var sr stratum.SubmitResult
	if err := reply.DecodeResult(&sr); err != nil || sr.Status != stratum.StatusOK {
		t.Fatalf("submit result = %+v (%v)", sr, err)
	}

	pushes, lat := ss.PushStats()
	if pushes == 0 || lat.Count == 0 {
		t.Errorf("push instruments empty: pushes=%d latency count=%d", pushes, lat.Count)
	}
}

// TestStratumTCPStaleSubmitNamedAndRejobbed pins the dialect's stale
// path: unlike ws's silent re-job, TCP names the condition in an rpc
// error and then delivers the replacement job as a notification.
func TestStratumTCPStaleSubmitNamedAndRejobbed(t *testing.T) {
	_, handler, pool := startService(t, 4)
	_, addr := startStratum(t, handler)

	c := dialRaw(t, addr)
	res := c.login("stale-tcp-key")
	decoded, err := session.DecodeJob(res.Job)
	if err != nil {
		t.Fatal(err)
	}
	nonce, sum := grindShare(t, pool, decoded)

	if _, err := pool.ProduceWinningBlock(1_525_100_000, 0, 7); err != nil {
		t.Fatal(err)
	}
	// The tip-change push arrives first (fan-out happens on append).
	push, err := c.readEnvelope()
	if err != nil || push.Method != stratum.TypeJob {
		t.Fatalf("expected tip-change push, got %+v (%v)", push, err)
	}

	c.sendLine(fmt.Sprintf(`{"id":6,"jsonrpc":"2.0","method":"submit","params":{"id":%q,"job_id":%q,"nonce":%q,"result":%q}}`,
		res.ID, res.Job.JobID, stratum.EncodeNonce(nonce), stratum.EncodeBlob(sum[:])))
	env := c.mustReadError(stratum.RPCStaleJob)
	if env.Error.Message != stratum.StaleJobMessage {
		t.Errorf("message = %q", env.Error.Message)
	}
	rejob, err := c.readEnvelope()
	if err != nil || rejob.Method != stratum.TypeJob {
		t.Fatalf("expected replacement job notification, got %+v (%v)", rejob, err)
	}
	if got := pool.StatsSnapshot().SharesStale; got != 1 {
		t.Errorf("SharesStale = %d, want 1", got)
	}
}

// TestStratumTCPStaleFloodBoundedAndBanned pins the defended dialect's
// bounded stale retry loop: the first StaleFloodAfter consecutive stales
// are named and re-jobbed as usual, everything past the bound earns
// {-4, "too many stale"} with NO replacement job, and a flooder that
// keeps going crosses the banscore threshold — {-5, "banned"}, the
// connection dropped, and the identity's next login turned away.
func TestStratumTCPStaleFloodBoundedAndBanned(t *testing.T) {
	defended := func(c *coinhive.PoolConfig) {
		c.Ban = coinhive.BanConfig{
			BanThreshold:    100,
			StaleFloodAfter: 2,
			StaleFloodScore: 25,
			BanDuration:     time.Minute,
		}
	}
	_, handler, pool := startService(t, 4, defended)
	_, addr := startStratum(t, handler)

	c := dialRaw(t, addr)
	res := c.login("flood-tcp-key")
	decoded, err := session.DecodeJob(res.Job)
	if err != nil {
		t.Fatal(err)
	}
	nonce, sum := grindShare(t, pool, decoded)
	if _, err := pool.ProduceWinningBlock(1_525_100_000, 0, 7); err != nil {
		t.Fatal(err)
	}
	if push, err := c.readEnvelope(); err != nil || push.Method != stratum.TypeJob {
		t.Fatalf("expected tip-change push, got %+v (%v)", push, err)
	}

	// The stale share is replayed verbatim: the duplicate memos only
	// remember *accepted* shares, so every replay re-enters the stale
	// path — exactly what a retry-loop client does after a tip change.
	resubmit := func(id int) {
		c.sendLine(fmt.Sprintf(`{"id":%d,"jsonrpc":"2.0","method":"submit","params":{"id":%q,"job_id":%q,"nonce":%q,"result":%q}}`,
			id, res.ID, res.Job.JobID, stratum.EncodeNonce(nonce), stratum.EncodeBlob(sum[:])))
	}

	// Stales 1..StaleFloodAfter: named stale, replacement job behind it.
	for i := 0; i < 2; i++ {
		resubmit(10 + i)
		c.mustReadError(stratum.RPCStaleJob)
		if rejob, err := c.readEnvelope(); err != nil || rejob.Method != stratum.TypeJob {
			t.Fatalf("stale %d: expected re-job, got %+v (%v)", i+1, rejob, err)
		}
	}
	// Past the bound: the named flood error, and no re-job — the next
	// read after each error must be the *next* error, never a job.
	for i := 0; i < 3; i++ {
		resubmit(20 + i)
		env := c.mustReadError(stratum.RPCTooManyStale)
		if env.Error.Message != stratum.TooManyStaleMessage {
			t.Errorf("flood %d: message = %q, want %q", i+1, env.Error.Message, stratum.TooManyStaleMessage)
		}
	}
	// Each flood offense scored 25: the fourth crosses the threshold.
	resubmit(30)
	env := c.mustReadError(stratum.RPCBanned)
	if env.Error.Message != stratum.BannedMessage {
		t.Errorf("ban message = %q, want %q", env.Error.Message, stratum.BannedMessage)
	}
	c.mustBeClosed()

	// All six replays were honest-shaped stale work as far as the share
	// accounting goes; the defense layer is what cut the session off.
	if st := pool.StatsSnapshot(); st.SharesStale != 6 || st.SharesOK != 0 {
		t.Errorf("SharesStale=%d SharesOK=%d, want 6,0", st.SharesStale, st.SharesOK)
	}

	// The ban is keyed on the identity, not the connection: a fresh dial
	// with the same site key is turned away at login.
	c2 := dialRaw(t, addr)
	c2.sendLine(`{"id":1,"jsonrpc":"2.0","method":"login","params":{"login":"flood-tcp-key"}}`)
	c2.mustReadError(stratum.RPCBanned)
	c2.mustBeClosed()

	score, until := handler.Engine().AbuseState("flood-tcp-key")
	if score != 0 || until.IsZero() {
		t.Errorf("AbuseState = (%v, %v), want score consumed and a ban deadline", score, until)
	}
}

// TestStratumTCPBogusJobFloodBoundedAndBanned is the forged-identifier
// twin of the stale-flood test: submits against a never-issued job ID
// (a future generation) earn the same re-job shape, but they count toward
// the same consecutive-run bound — a bogus-ID flooder stops earning
// re-jobs after StaleFloodAfter, then accumulates to a ban, instead of
// riding silent re-jobs forever under the submit rate limit.
func TestStratumTCPBogusJobFloodBoundedAndBanned(t *testing.T) {
	defended := func(c *coinhive.PoolConfig) {
		c.Ban = coinhive.BanConfig{
			BanThreshold:    100,
			StaleFloodAfter: 2,
			StaleFloodScore: 25,
			BanDuration:     time.Minute,
		}
	}
	_, handler, pool := startService(t, 4, defended)
	_, addr := startStratum(t, handler)

	c := dialRaw(t, addr)
	res := c.login("bogus-tcp-key")
	resubmit := func(id int) {
		c.sendLine(fmt.Sprintf(`{"id":%d,"jsonrpc":"2.0","method":"submit","params":{"id":%q,"job_id":"0-999999-0","nonce":"00000000","result":%q}}`,
			id, res.ID, strings.Repeat("00", 32)))
	}

	// Rejections 1..StaleFloodAfter: the unknown-job re-job shape.
	for i := 0; i < 2; i++ {
		resubmit(10 + i)
		c.mustReadError(stratum.RPCStaleJob)
		if rejob, err := c.readEnvelope(); err != nil || rejob.Method != stratum.TypeJob {
			t.Fatalf("bogus %d: expected re-job, got %+v (%v)", i+1, rejob, err)
		}
	}
	// Past the bound: the named flood error and no more free re-jobs.
	for i := 0; i < 3; i++ {
		resubmit(20 + i)
		c.mustReadError(stratum.RPCTooManyStale)
	}
	// Each flood offense scored 25: the fourth crosses the threshold.
	resubmit(30)
	c.mustReadError(stratum.RPCBanned)
	c.mustBeClosed()

	// Forged identifiers are not tip churn: pool.shares_stale untouched.
	if st := pool.StatsSnapshot(); st.SharesStale != 0 || st.SharesOK != 0 {
		t.Errorf("SharesStale=%d SharesOK=%d, want 0,0", st.SharesStale, st.SharesOK)
	}
	if _, until := handler.Engine().AbuseState("bogus-tcp-key"); until.IsZero() {
		t.Error("bogus-ID flooder never banned")
	}
}
