package coinhive

import (
	"strings"
	"testing"
)

func TestCaptchaLifecycle(t *testing.T) {
	s := NewCaptchaService([]byte("secret"))
	c := s.Create("site-1", 64)
	if c.Solved() {
		t.Fatal("fresh captcha already solved")
	}
	if _, err := s.Token(c.ID); err != ErrCaptchaPending {
		t.Errorf("pending token err = %v", err)
	}
	// Partial credit is not enough.
	if got, err := s.Credit(c.ID, 32); err != nil || got.Solved() {
		t.Errorf("half credit: %+v, %v", got, err)
	}
	got, err := s.Credit(c.ID, 32)
	if err != nil || !got.Solved() || got.Token == "" {
		t.Fatalf("full credit: %+v, %v", got, err)
	}
	tok, err := s.Token(c.ID)
	if err != nil || tok != got.Token {
		t.Fatalf("Token = (%q, %v)", tok, err)
	}
	// First verification succeeds; the second must fail (one-time token).
	if err := s.Verify(c.ID, tok); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if err := s.Verify(c.ID, tok); err != ErrTokenRedeemed {
		t.Errorf("replayed verify err = %v", err)
	}
}

func TestCaptchaRejectsForgedTokens(t *testing.T) {
	s := NewCaptchaService([]byte("secret"))
	c := s.Create("site-1", 8)
	s.Credit(c.ID, 8)
	bad := strings.Repeat("00", 32)
	if err := s.Verify(c.ID, bad); err != ErrTokenInvalid {
		t.Errorf("forged token err = %v", err)
	}
	// A token minted under a different secret must not verify.
	other := NewCaptchaService([]byte("other-secret"))
	oc := other.Create("site-1", 8)
	other.Credit(oc.ID, 8)
	otherTok, _ := other.Token(oc.ID)
	if err := s.Verify(c.ID, otherTok); err != ErrTokenInvalid {
		t.Errorf("cross-secret token err = %v", err)
	}
}

func TestCaptchaUnknownID(t *testing.T) {
	s := NewCaptchaService([]byte("k"))
	if _, err := s.Credit("nope", 1); err != ErrNoSuchCaptcha {
		t.Errorf("credit err = %v", err)
	}
	if err := s.Verify("nope", "x"); err != ErrNoSuchCaptcha {
		t.Errorf("verify err = %v", err)
	}
}

func TestCaptchaDefaultPrice(t *testing.T) {
	s := NewCaptchaService([]byte("k"))
	c := s.Create("site", 0)
	if c.Required != 1024 {
		t.Errorf("default required = %d", c.Required)
	}
}

func TestCaptchaTokensDifferPerChallenge(t *testing.T) {
	s := NewCaptchaService([]byte("k"))
	a := s.Create("site", 1)
	b := s.Create("site", 1)
	s.Credit(a.ID, 1)
	s.Credit(b.ID, 1)
	ta, _ := s.Token(a.ID)
	tb, _ := s.Token(b.ID)
	if ta == tb {
		t.Error("two challenges share a token")
	}
}
