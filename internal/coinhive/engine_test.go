package coinhive_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/coinhive"
	"repro/internal/cryptonight"
	"repro/internal/session"
	"repro/internal/stratum"
)

// startStratum attaches a raw-TCP stratum front to an existing ws
// service, sharing its engine, and returns the listener address. A
// non-zero keepalive window must be configured here, before Serve.
func startStratum(t *testing.T, handler *coinhive.Server, keepalive ...time.Duration) (*coinhive.StratumServer, string) {
	t.Helper()
	ss := coinhive.NewStratumServer(handler.Engine())
	if len(keepalive) > 0 {
		ss.KeepaliveWindow = keepalive[0]
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ss.Serve(ln)
	t.Cleanup(ss.Shutdown)
	return ss, ln.Addr().String()
}

// grindShare finds one nonce meeting the job's share target, searching
// from the optional start nonce (so callers can mint distinct shares for
// one job — the duplicate memos reject a replayed nonce by design).
func grindShare(t *testing.T, pool *coinhive.Pool, job session.Job, start ...uint32) (uint32, [32]byte) {
	t.Helper()
	var from uint32
	if len(start) > 0 {
		from = start[0]
	}
	h, err := cryptonight.GetHasher(pool.Chain().Params().PowVariant)
	if err != nil {
		t.Fatal(err)
	}
	defer cryptonight.PutHasher(h)
	nonce, sum, _, found := h.Grind(job.Blob, job.NonceOffset, job.Target, from, 1<<16)
	if !found {
		t.Fatal("no share found within 1<<16 hashes")
	}
	return nonce, sum
}

// TestCrossTransportAccountingIdentical drives the same share stream
// through each dialect against identically-seeded pools and requires the
// accounting to match exactly — the acceptance bar for "both transports
// drive the same engine".
func TestCrossTransportAccountingIdentical(t *testing.T) {
	const siteKey = "xdialect-key"
	const shares = 3

	// Two identically-seeded services: fixed genesis timestamp and
	// clock, so templates (and therefore jobs) are byte-identical.
	run := func(t *testing.T, dial func(srv *httptestServerPair) (*session.Session, error)) (coinhive.Stats, coinhive.Account, []string) {
		srv := newServicePair(t, 4)
		sess, err := dial(srv)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		sess.Timeout = 5 * time.Second
		_, job, err := sess.Login()
		if err != nil {
			t.Fatal(err)
		}
		var jobIDs []string
		var nonce uint32
		var sum [32]byte
		for i := 0; i < shares; i++ {
			// A fresh nonce per share: the duplicate memos reject a replay
			// of the previous (job, nonce) by design.
			if i == 0 {
				nonce, sum = grindShare(t, srv.pool, job)
			} else {
				nonce, sum = grindShare(t, srv.pool, job, nonce+1)
			}
			jobIDs = append(jobIDs, job.ID)
			if err := sess.Submit(job.ID, nonce, sum); err != nil {
				t.Fatal(err)
			}
			// One exchange: the server-clocked dialect resolves on the
			// accept, the client-clocked one on the reply job behind it.
			accepted := false
			for done := false; !done; {
				env, err := sess.ReadEnvelope()
				if err != nil {
					t.Fatal(err)
				}
				switch env.Type {
				case stratum.TypeHashAccepted:
					accepted = true
					done = sess.ServerClocked()
				case stratum.TypeJob:
					if !accepted {
						t.Fatalf("job before accept on share %d", i)
					}
					var j stratum.Job
					if err := env.Decode(&j); err != nil {
						t.Fatal(err)
					}
					job, err = session.DecodeJob(j)
					if err != nil {
						t.Fatal(err)
					}
					done = true
				default:
					t.Fatalf("unexpected %s", env.Type)
				}
			}
		}
		acct, ok := srv.pool.AccountSnapshot(siteKey)
		if !ok {
			t.Fatal("account missing")
		}
		return srv.pool.StatsSnapshot(), acct, jobIDs
	}

	wsStats, wsAcct, wsJobs := run(t, func(srv *httptestServerPair) (*session.Session, error) {
		return session.Dial(srv.wsURL(1), stratum.Auth{SiteKey: siteKey, Type: "anonymous"})
	})
	tcpStats, tcpAcct, tcpJobs := run(t, func(srv *httptestServerPair) (*session.Session, error) {
		return session.Dial("tcp://"+srv.tcpAddr, stratum.Auth{SiteKey: siteKey, Type: "anonymous"})
	})

	// Identically-seeded pools must mint identical jobs for the first
	// session regardless of dialect…
	for i := range wsJobs {
		if wsJobs[i] != tcpJobs[i] {
			t.Errorf("share %d: job ID ws=%q tcp=%q", i, wsJobs[i], tcpJobs[i])
		}
	}
	// …and the same share stream must account identically.
	if wsStats != tcpStats {
		t.Errorf("stats diverge:\n ws=%+v\ntcp=%+v", wsStats, tcpStats)
	}
	if wsAcct.TotalHashes != tcpAcct.TotalHashes || wsAcct.TotalHashes == 0 {
		t.Errorf("credit diverges: ws=%d tcp=%d", wsAcct.TotalHashes, tcpAcct.TotalHashes)
	}
	if wsStats.SharesOK != shares {
		t.Errorf("SharesOK = %d, want %d", wsStats.SharesOK, shares)
	}
}

// httptestServerPair is one service with both fronts up.
type httptestServerPair struct {
	httpURL string
	tcpAddr string
	pool    *coinhive.Pool
	handler *coinhive.Server
}

func (s *httptestServerPair) wsURL(n int) string {
	return "ws" + strings.TrimPrefix(s.httpURL, "http") + fmt.Sprintf("/proxy%d", n)
}

// newServicePair boots identically-seeded ws + TCP fronts over one pool.
// The ws endpoint to use for cross-transport comparisons is /proxy1: the
// TCP front assigns its first connection endpoint 1 as well, and both
// engines hand their first session rotation slot 1.
func newServicePair(t *testing.T, shareDiff uint64, mut ...func(*coinhive.PoolConfig)) *httptestServerPair {
	t.Helper()
	srv, handler, pool := startService(t, shareDiff, mut...)
	_, addr := startStratum(t, handler)
	return &httptestServerPair{
		httpURL: srv.URL,
		tcpAddr: addr,
		pool:    pool,
		handler: handler,
	}
}

// TestStaleShareCountedAndRejobbed moves the chain tip under a live ws
// session and submits the now-stale share: the dialect answer is a
// silent fresh job, and the engine must count it in pool.shares_stale /
// StatsSnapshot.
func TestStaleShareCountedAndRejobbed(t *testing.T) {
	srv, _, pool := startService(t, 4)
	sess, err := session.Dial(wsProxyURL(srv, 0), stratum.Auth{SiteKey: "stale-key", Type: "anonymous"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.Timeout = 5 * time.Second
	_, job, err := sess.Login()
	if err != nil {
		t.Fatal(err)
	}
	nonce, sum := grindShare(t, pool, job)

	// The tip moves while the miner grinds.
	if _, err := pool.ProduceWinningBlock(1_525_100_000, 0, 7); err != nil {
		t.Fatal(err)
	}

	if err := sess.Submit(job.ID, nonce, sum); err != nil {
		t.Fatal(err)
	}
	env, err := sess.ReadEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != stratum.TypeJob {
		t.Fatalf("stale submit reply = %s, want silent job re-issue", env.Type)
	}

	st := pool.StatsSnapshot()
	if st.SharesStale != 1 {
		t.Errorf("SharesStale = %d, want 1", st.SharesStale)
	}
	if st.SharesOK != 0 {
		t.Errorf("SharesOK = %d, want 0", st.SharesOK)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "pool.shares_stale counter 1") {
		t.Errorf("/metrics missing pool.shares_stale:\n%s", text)
	}
}

// TestCaptchaVerifiedMessageType pins the satellite: a solved captcha
// session receives a dedicated captcha_verified push (not the old
// link_resolved reuse), carrying a token the backend can redeem.
func TestCaptchaVerifiedMessageType(t *testing.T) {
	srv, _, pool := startService(t, 8)
	cap := pool.Captchas().Create("widget-site", 8) // one 8-hash share solves it

	sess, err := session.Dial(wsProxyURL(srv, 0), stratum.Auth{
		SiteKey: "widget-site", Type: "anonymous", User: "captcha:" + cap.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.Timeout = 5 * time.Second
	_, job, err := sess.Login()
	if err != nil {
		t.Fatal(err)
	}
	nonce, sum := grindShare(t, pool, job)
	if err := sess.Submit(job.ID, nonce, sum); err != nil {
		t.Fatal(err)
	}

	var cv stratum.CaptchaVerified
	for cv.Token == "" {
		env, err := sess.ReadEnvelope()
		if err != nil {
			t.Fatal(err)
		}
		switch env.Type {
		case stratum.TypeHashAccepted:
		case stratum.TypeCaptchaVerified:
			if err := env.Decode(&cv); err != nil {
				t.Fatal(err)
			}
		case stratum.TypeLinkResolved:
			t.Fatal("captcha completion still rides the link_resolved push")
		default:
			t.Fatalf("unexpected %s before captcha_verified", env.Type)
		}
	}
	if cv.ID != cap.ID {
		t.Errorf("captcha_verified.ID = %q, want %q", cv.ID, cap.ID)
	}
	if err := pool.Captchas().Verify(cap.ID, cv.Token); err != nil {
		t.Errorf("pushed token does not verify: %v", err)
	}
}

// TestCrossTransportDefenseIdentical is the defended twin of
// TestCrossTransportAccountingIdentical: the same hostile-then-honest
// session driven through each dialect against identically-seeded
// defended pools must retarget, credit, reject and ban identically.
//
// The frozen test clock makes the vardiff window read an infinite
// cadence, so the retarget path is deterministic: after MinWindowShares
// (4) accepts the difficulty steps by the full ×8 cap, 4 → 32.
func TestCrossTransportDefenseIdentical(t *testing.T) {
	const siteKey = "xdefense-key"
	defended := func(c *coinhive.PoolConfig) {
		c.Vardiff = coinhive.VardiffConfig{
			TargetSharesPerMin: 240,
			MinDifficulty:      1,
			MaxDifficulty:      4096,
		}
		c.Ban = coinhive.BanConfig{
			BanThreshold:   100,
			DuplicateScore: 25,
			BanDuration:    time.Minute,
		}
	}

	run := func(t *testing.T, dial func(srv *httptestServerPair) (*session.Session, error)) (coinhive.Stats, coinhive.Account, float64, time.Time) {
		srv := newServicePair(t, 4, defended)
		sess, err := dial(srv)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		sess.Timeout = 5 * time.Second
		_, job, err := sess.Login()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasSuffix(job.ID, "-d4") {
			t.Fatalf("first job %q not minted at the starting tier", job.ID)
		}

		// Four accepts at difficulty 4 fill the vardiff window; the
		// fourth triggers the retarget, whose new job both dialects must
		// deliver (ws as its routine re-job, TCP as a push notification).
		var nonce uint32
		var sum [32]byte
		var retargetJob session.Job
		submitOne := func(i int, needJob bool) {
			t.Helper()
			if err := sess.Submit(job.ID, nonce, sum); err != nil {
				t.Fatal(err)
			}
			accepted := false
			for !accepted || needJob {
				env, err := sess.ReadEnvelope()
				if err != nil {
					t.Fatal(err)
				}
				switch env.Type {
				case stratum.TypeHashAccepted:
					accepted = true
				case stratum.TypeJob:
					if !accepted {
						t.Fatalf("share %d: job before accept", i)
					}
					var j stratum.Job
					if err := env.Decode(&j); err != nil {
						t.Fatal(err)
					}
					if retargetJob, err = session.DecodeJob(j); err != nil {
						t.Fatal(err)
					}
					needJob = false
				default:
					t.Fatalf("share %d: unexpected %s", i, env.Type)
				}
			}
		}
		for i := 0; i < 4; i++ {
			if i == 0 {
				nonce, sum = grindShare(t, srv.pool, job)
			} else {
				nonce, sum = grindShare(t, srv.pool, job, nonce+1)
			}
			submitOne(i, !sess.ServerClocked() || i == 3)
		}
		if !strings.HasSuffix(retargetJob.ID, "-d32") {
			t.Fatalf("retarget job %q, want the ×8 step to difficulty 32", retargetJob.ID)
		}

		// One in-flight share on the old tier rides the prevDiff grace:
		// still accepted, credited at the difficulty it was ground for.
		nonce, sum = grindShare(t, srv.pool, job, nonce+1)
		submitOne(4, !sess.ServerClocked())

		// The duplicate flood: replaying the just-paid share is named and
		// scored (25 a hit); the fourth offense crosses the threshold.
		for i := 0; i < 3; i++ {
			if err := sess.Submit(job.ID, nonce, sum); err != nil {
				t.Fatal(err)
			}
			env, err := sess.ReadEnvelope()
			if err != nil || env.Type != stratum.TypeError {
				t.Fatalf("replay %d: got %s (%v), want error", i+1, env.Type, err)
			}
			var e stratum.Error
			if err := env.Decode(&e); err != nil || e.Error != stratum.DuplicateShareMessage {
				t.Fatalf("replay %d: error = %q (%v), want %q", i+1, e.Error, err, stratum.DuplicateShareMessage)
			}
		}
		if err := sess.Submit(job.ID, nonce, sum); err != nil {
			t.Fatal(err)
		}
		if env, err := sess.ReadEnvelope(); err != nil || env.Type != stratum.TypeBanned {
			t.Fatalf("fourth replay: got %s (%v), want banned", env.Type, err)
		}

		// The ban outlives the connection on both dialects.
		if s2, err := dial(srv); err == nil {
			_, _, err = s2.Login()
			s2.Close()
			if !errors.Is(err, session.ErrBanned) {
				t.Fatalf("relogin after ban: err = %v, want ErrBanned", err)
			}
		}

		stats := srv.pool.StatsSnapshot()
		acct, ok := srv.pool.AccountSnapshot(siteKey)
		if !ok {
			t.Fatal("account missing")
		}
		score, until := srv.handler.Engine().AbuseState(siteKey)
		return stats, acct, score, until
	}

	wsStats, wsAcct, wsScore, wsUntil := run(t, func(srv *httptestServerPair) (*session.Session, error) {
		return session.Dial(srv.wsURL(1), stratum.Auth{SiteKey: siteKey, Type: "anonymous"})
	})
	tcpStats, tcpAcct, tcpScore, tcpUntil := run(t, func(srv *httptestServerPair) (*session.Session, error) {
		return session.Dial("tcp://"+srv.tcpAddr, stratum.Auth{SiteKey: siteKey, Type: "anonymous"})
	})

	if wsStats != tcpStats {
		t.Errorf("stats diverge:\n ws=%+v\ntcp=%+v", wsStats, tcpStats)
	}
	if wsStats.SharesOK != 5 {
		t.Errorf("SharesOK = %d, want 5 (4 window fills + 1 grace share)", wsStats.SharesOK)
	}
	// Credit scales with the difficulty in the job ID: 4 shares at 4
	// plus the grace share at its old tier's 4 — never the new 32.
	if wsAcct.TotalHashes != 20 || tcpAcct.TotalHashes != 20 {
		t.Errorf("credit ws=%d tcp=%d, want 20 each", wsAcct.TotalHashes, tcpAcct.TotalHashes)
	}
	// The ban consumed the score; both frozen clocks started at the same
	// instant, so the deadlines must agree to the nanosecond.
	if wsScore != 0 || tcpScore != 0 {
		t.Errorf("banscores = (%v, %v), want consumed to 0", wsScore, tcpScore)
	}
	if wsUntil.IsZero() || !wsUntil.Equal(tcpUntil) {
		t.Errorf("ban deadlines diverge: ws=%v tcp=%v", wsUntil, tcpUntil)
	}
}
