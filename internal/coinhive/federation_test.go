package coinhive

import (
	"fmt"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/blockchain"
	"repro/internal/memconn"
	"repro/internal/metrics"
	"repro/internal/sharechain"
	"repro/internal/simclock"
)

// fedTestNode is one federated pool node: its own blockchain, pool,
// share-chain and p2p identity.
type fedTestNode struct {
	pool *Pool
	fed  *Federation
	reg  *metrics.Registry
	ln   *memconn.Listener
}

func newFedNode(t *testing.T, id uint64, mut ...func(*PoolConfig)) *fedTestNode {
	t.Helper()
	params := blockchain.SimParams()
	params.MinDifficulty = 1 << 40
	chain, err := blockchain.NewChain(params, 1_525_000_000, blockchain.AddressFromString("genesis"))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	fed, err := NewFederation(FederationConfig{
		Variant:     params.PowVariant,
		Window:      64,
		NodeID:      id,
		Registry:    reg,
		TipInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PoolConfig{
		Chain:           chain,
		Wallet:          blockchain.AddressFromString("coinhive-wallet"),
		Clock:           simclock.New(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)),
		ShareDifficulty: 16,
		Metrics:         reg,
		Federation:      fed,
	}
	for _, m := range mut {
		m(&cfg)
	}
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln := memconn.Listen()
	go fed.Serve(ln)
	t.Cleanup(func() { fed.Close() })
	return &fedTestNode{pool: pool, fed: fed, reg: reg, ln: ln}
}

// fedNonceSalt spaces out mining start nonces so two submissions against
// the same job slot never grind the same share.
var fedNonceSalt atomic.Uint32

// submitLocal mines and submits one valid share on n's pool, as a local
// miner would, and returns the credited difficulty.
func submitLocal(t *testing.T, n *fedTestNode, token string, slot int) uint64 {
	t.Helper()
	j := n.pool.Job(0, slot, false)
	nonce, sum := mineShare(t, n.pool, j, fedNonceSalt.Add(1)*100_000)
	out, err := n.pool.SubmitShare(token, j.JobID, nonce, sum, "")
	if err != nil {
		t.Fatalf("SubmitShare(%s): %v", token, err)
	}
	return out.Diff
}

// waitFedConverged polls every node's share-chain for one common tip at
// the expected entry count, then cross-checks credit and payout vectors
// bit for bit.
func waitFedConverged(t *testing.T, want int, nodes ...*fedTestNode) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		tips := map[[32]byte]bool{}
		ok := true
		for _, n := range nodes {
			tip, count := n.fed.Chain().Tip()
			if count != want {
				ok = false
				break
			}
			tips[tip] = true
		}
		if ok && len(tips) == 1 {
			break
		}
		if time.Now().After(deadline) {
			for i, n := range nodes {
				tip, count := n.fed.Chain().Tip()
				t.Logf("node %d: count=%d tip=%x", i, count, tip[:8])
			}
			t.Fatalf("federation did not converge on %d entries", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ref := nodes[0].fed.Chain()
	refCredit := ref.CreditSnapshot()
	refPay := ref.PayoutVector(5_000_000_000)
	refWeights, refTotal := ref.WindowWeights()
	for i, n := range nodes[1:] {
		c := n.fed.Chain()
		if !reflect.DeepEqual(c.CreditSnapshot(), refCredit) {
			t.Fatalf("node %d credit diverged:\n%v\nvs\n%v", i+1, c.CreditSnapshot(), refCredit)
		}
		if !reflect.DeepEqual(c.PayoutVector(5_000_000_000), refPay) {
			t.Fatalf("node %d payout vector diverged", i+1)
		}
		w, tot := c.WindowWeights()
		if tot != refTotal || !reflect.DeepEqual(w, refWeights) {
			t.Fatalf("node %d window weights diverged", i+1)
		}
	}
}

// TestFederatedPoolsConverge is the headline proof: three pool nodes —
// each with its own blockchain, templates and wallet state — are fed
// disjoint slices of one share stream over a mixed transport line
// (memconn link and a real TCP link), and converge to bit-identical
// per-account credit, share-chain tips and PPLNS payout vectors,
// including after one node is killed and a cold replacement resyncs
// from nothing mid-run.
func TestFederatedPoolsConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("grinds real CryptoNight shares")
	}
	n0 := newFedNode(t, 1)
	n1 := newFedNode(t, 2)
	n2 := newFedNode(t, 3)

	// Line topology over mixed transports: n0 —memconn— n1 —TCP— n2.
	// Convergence across the line also proves relay, and the TCP leg
	// proves the wire codec is transport-agnostic for real.
	ln0 := n0.ln
	n1.fed.AddPeer("n0", func() (net.Conn, error) { return ln0.Dial() })
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcpLn.Close()
	go n2.fed.Serve(tcpLn)
	n1.fed.Connect(tcpLn.Addr().String())

	// Disjoint slices of one stream: share k lands on node k%3.
	nodes := []*fedTestNode{n0, n1, n2}
	total := 0
	var wantCredit uint64
	for k := 0; k < 9; k++ {
		diff := submitLocal(t, nodes[k%3], fmt.Sprintf("acct%d", k%4), k%4)
		wantCredit += diff
		total++
	}
	waitFedConverged(t, total, n0, n1, n2)

	// Kill n2 mid-run: its share-chain state dies with it.
	n2.fed.Close()
	tcpLn.Close()

	for k := 0; k < 6; k++ {
		submitLocal(t, nodes[k%2], "during-outage", k%4)
		total++
	}
	waitFedConverged(t, total, n0, n1)

	// Cold replacement: same p2p identity, empty share-chain — the ranged
	// sync must rebuild the entire history, then live gossip keeps it
	// current.
	n2b := newFedNode(t, 3)
	tcpLn2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcpLn2.Close()
	go n2b.fed.Serve(tcpLn2)
	n1.fed.Connect(tcpLn2.Addr().String())

	nodes = []*fedTestNode{n0, n1, n2b}
	for k := 0; k < 6; k++ {
		submitLocal(t, nodes[k%3], "after-restart", k%4)
		total++
	}
	waitFedConverged(t, total, n0, n1, n2b)

	// The resynced node ran at least one catch-up round, and nothing was
	// dropped off any submit path: zero lost credit is structural.
	if got := n2b.reg.Counter("p2p.sync_rounds").Load(); got == 0 {
		t.Fatalf("cold restart converged without a sync round")
	}
	for i, n := range []*fedTestNode{n0, n1, n2b} {
		if got := n.reg.Counter("pool.federation_drops").Load(); got != 0 {
			t.Fatalf("node %d dropped %d shares off the federation queue", i, got)
		}
	}
	var sumCredit uint64
	for _, v := range n0.fed.Chain().CreditSnapshot() {
		sumCredit += v
	}
	if sumCredit != wantCredit+12*16 {
		t.Fatalf("total federated credit = %d, want %d", sumCredit, wantCredit+12*16)
	}
}

// TestFederatedSettleUsesWindow: under federation, a found block pays
// the share-chain's PPLNS window, not the local round tallies — and the
// paid amounts equal the chain's own PayoutVector exactly.
func TestFederatedSettleUsesWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("grinds real CryptoNight shares")
	}
	n := newFedNode(t, 1)
	submitLocal(t, n, "alice", 0)
	submitLocal(t, n, "alice", 1)
	submitLocal(t, n, "bob", 2)

	// Let the drain goroutine mint all three entries.
	deadline := time.Now().Add(5 * time.Second)
	for n.fed.Chain().Len() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("share-chain len = %d, want 3", n.fed.Chain().Len())
		}
		time.Sleep(2 * time.Millisecond)
	}

	blk, err := n.pool.ProduceWinningBlock(1_525_000_300, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := n.fed.Chain().PayoutVector(blk.Coinbase.Amount)
	if len(want) != 2 {
		t.Fatalf("payout vector = %v", want)
	}
	var paidTotal uint64
	for _, po := range want {
		a, ok := n.pool.AccountSnapshot(po.Token)
		if !ok || a.BalanceAtomic != po.Amount {
			t.Fatalf("account %s balance = %d, want %d", po.Token, a.BalanceAtomic, po.Amount)
		}
		paidTotal += po.Amount
	}
	st := n.pool.StatsSnapshot()
	if st.PaidAtomic != paidTotal || st.KeptAtomic != blk.Coinbase.Amount-paidTotal {
		t.Fatalf("paid/kept = %d/%d, want %d/%d",
			st.PaidAtomic, st.KeptAtomic, paidTotal, blk.Coinbase.Amount-paidTotal)
	}
	// alice did 2/3 of the window weight; integer payout must reflect it.
	if want[0].Token != "alice" || want[1].Token != "bob" || want[0].Amount <= want[1].Amount {
		t.Fatalf("window weighting looks wrong: %v", want)
	}
}

// TestFederationArchivesGossip: gossiped-in entries land in the archive
// as KindShareGossipIn (plus KindReorg on displacement), replay counts
// them, and replayed local attribution stays bit-identical to the live
// pool despite the new kinds in the stream.
func TestFederationArchivesGossip(t *testing.T) {
	if testing.Short() {
		t.Skip("grinds real CryptoNight shares")
	}
	store := archive.NewMemStore(1 << 12)
	rec := archive.NewRecorder(store, nil, 0)
	a := newFedNode(t, 1, func(c *PoolConfig) { c.Archive = rec })
	b := newFedNode(t, 2)
	lnA := a.ln
	b.fed.AddPeer("a", func() (net.Conn, error) { return lnA.Dial() })

	submitLocal(t, a, "local-acct", 0)
	submitLocal(t, b, "remote-acct", 1)
	waitFedConverged(t, 2, a, b)

	rec.Flush()
	res, err := archive.Replay(store)
	if err != nil {
		t.Fatal(err)
	}
	if res.SharesGossipedIn != 1 {
		t.Fatalf("replayed gossip-in = %d, want 1", res.SharesGossipedIn)
	}
	// Local attribution is untouched by federation events: only a's own
	// accepted share is credited in the replayed account books.
	if res.SharesAccepted != 1 || res.Credit["local-acct"] != 16 || res.Credit["remote-acct"] != 0 {
		t.Fatalf("replay attribution: accepted=%d credit=%v", res.SharesAccepted, res.Credit)
	}
}

// TestGossipedShareVerification: a federation node rejects gossiped
// entries whose PoW does not verify — a hostile peer cannot inject
// credit.
func TestGossipedShareVerification(t *testing.T) {
	params := blockchain.SimParams()
	reg := metrics.NewRegistry()
	fed, err := NewFederation(FederationConfig{Variant: params.PowVariant, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	forged := &sharechain.Entry{
		Height: 1,
		Token:  "thief",
		Diff:   1 << 30,
		Blob:   make([]byte, 76),
	}
	forged.Result[0] = 0xFF
	if _, err := fed.Chain().Insert(forged, false); err == nil {
		t.Fatalf("forged PoW admitted to the share-chain")
	}
	if got := fed.Chain().Len(); got != 0 {
		t.Fatalf("chain len after forgery = %d", got)
	}
}
