package coinhive

// Federation makes this pool one node among N that converge on identical
// books. It owns the node's deterministic PPLNS share-chain and its p2p
// gossip layer, and hangs off PoolConfig.Federation the way PR 9's
// Archive recorder does: the submit hot path hands an accepted share to
// a bounded non-blocking queue and moves on; a drain goroutine mints the
// share-chain entry (claimed height = local tip + 1), inserts it locally
// and broadcasts it. Ingestion runs the other way: gossiped entries are
// PoW-verified by the pool's pooled CryptoNight hashers (injected as the
// share-chain's Verifier) before admission, so a hostile peer buys
// nothing but its own disconnection.
//
// When a Federation is configured, found-block settlement switches from
// the per-node round tallies to the share-chain's PPLNS window
// (settleFederatedLocked): every converged node computes bit-identical
// payout vectors for the same reward, which is the property the
// federation convergence tests pin.

import (
	"net"
	"sync"
	"time"

	"repro/internal/cryptonight"
	"repro/internal/metrics"
	"repro/internal/p2p"
	"repro/internal/sharechain"
)

// defaultEmitQueueDepth bounds the accepted-share → share-chain hand-off.
// Sized like the archive recorder's queue: deep enough that only a
// stalled drain goroutine (not a burst) ever drops, with drops counted.
const defaultEmitQueueDepth = 4096

// FederationConfig configures a pool node's federation membership.
type FederationConfig struct {
	// Variant is the PoW profile gossiped shares are verified under —
	// pass the pool chain's Params().PowVariant.
	Variant cryptonight.Variant
	// Window is the PPLNS window size in entries (sharechain.DefaultWindow
	// if 0). Every node in a federation must agree on it.
	Window int
	// FeePercent is the pool cut applied to windowed payouts (30 if 0);
	// configure it to match the pool's FeePercent.
	FeePercent int
	// NodeID identifies this node in p2p handshakes (0 draws random).
	NodeID uint64
	// AdvertiseAddr is the p2p listen address sent to peers ("" none).
	AdvertiseAddr string
	// Registry receives the p2p.* and pool.sharechain_* instruments;
	// pass the pool's registry so they surface in /metrics.
	Registry *metrics.Registry
	// EmitQueueDepth bounds the submit-path hand-off queue.
	EmitQueueDepth int
	// TipInterval overrides the p2p tip-announce period (0: p2p default).
	TipInterval time.Duration
}

// fedShare is one accepted share queued for the share-chain. The blob is
// the submitter's copy — SubmitShare's stack buffer dies with the call,
// so emitShare snapshots it before queuing.
type fedShare struct {
	token  string
	diff   uint64
	nonce  uint32
	blob   []byte
	result [32]byte
}

// Federation is the share-chain + peer layer bundle a pool node mounts
// via PoolConfig.Federation.
type Federation struct {
	chain *sharechain.Chain
	node  *p2p.Node

	emit  chan fedShare
	drops *metrics.Counter

	hookMu    sync.Mutex
	hooks     []func(e *sharechain.Entry, reorged bool)
	mintHooks []func(e *sharechain.Entry)

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewFederation builds the share-chain and p2p node for one pool node.
// Give it links with Serve/AddPeer/Connect and close it after the pool's
// network fronts are drained.
func NewFederation(cfg FederationConfig) (*Federation, error) {
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.EmitQueueDepth <= 0 {
		cfg.EmitQueueDepth = defaultEmitQueueDepth
	}
	// Warm (and validate) the per-variant hasher pool the verifier borrows
	// from, exactly as NewPool does for the submit path.
	h, err := cryptonight.GetHasher(cfg.Variant)
	if err != nil {
		return nil, err
	}
	cryptonight.PutHasher(h)
	variant := cfg.Variant
	f := &Federation{
		emit:  make(chan fedShare, cfg.EmitQueueDepth),
		drops: cfg.Registry.Counter("pool.federation_drops"),
		stop:  make(chan struct{}),
	}
	f.chain = sharechain.New(sharechain.Config{
		Window:     cfg.Window,
		FeePercent: cfg.FeePercent,
		Metrics:    cfg.Registry,
		// The verifier makes every entry self-certifying on every node:
		// the blob carries its nonce, so admission needs nothing but the
		// entry and a scratchpad.
		Verify: func(e *sharechain.Entry) error {
			h, err := cryptonight.GetHasher(variant)
			if err != nil {
				return err
			}
			sum := h.Sum(e.Blob)
			cryptonight.PutHasher(h)
			if sum != e.Result {
				return sharechain.ErrBadPoW
			}
			if !cryptonight.CheckCompactTarget(e.Result, cryptonight.DifficultyForTarget(e.Diff)) {
				return sharechain.ErrBadPoW
			}
			return nil
		},
	})
	f.node, err = p2p.NewNode(p2p.Config{
		NodeID:        cfg.NodeID,
		Chain:         f.chain,
		Registry:      cfg.Registry,
		AdvertiseAddr: cfg.AdvertiseAddr,
		TipInterval:   cfg.TipInterval,
		OnIngest:      f.dispatchIngest,
	})
	if err != nil {
		return nil, err
	}
	f.wg.Add(1)
	go f.drain()
	return f, nil
}

// Chain exposes the node's share-chain (windowed credit, payout vectors,
// convergence probes).
func (f *Federation) Chain() *sharechain.Chain { return f.chain }

// Node exposes the p2p layer.
func (f *Federation) Node() *p2p.Node { return f.node }

// Serve accepts inbound peer connections on ln (blocks; run in a
// goroutine).
func (f *Federation) Serve(ln net.Listener) error { return f.node.Serve(ln) }

// AddPeer maintains a persistent outbound link over a custom dialer.
func (f *Federation) AddPeer(name string, dial func() (net.Conn, error)) {
	f.node.AddPeer(name, dial)
}

// Connect maintains a persistent outbound TCP link to addr.
func (f *Federation) Connect(addr string) { f.node.Connect(addr) }

// OnIngest registers a callback for entries admitted from peers. The
// pool registers the archive hook here; load harnesses register their
// propagation probes. Callbacks run on the p2p reader goroutine and must
// not block.
func (f *Federation) OnIngest(cb func(e *sharechain.Entry, reorged bool)) {
	f.hookMu.Lock()
	f.hooks = append(f.hooks, cb)
	f.hookMu.Unlock()
}

// OnMint registers a callback for entries minted from this node's own
// accepted shares, invoked after local insertion and before broadcast.
// Load harnesses use it to timestamp gossip origin; paired with OnIngest
// on the other nodes it yields end-to-end propagation latency.
func (f *Federation) OnMint(cb func(e *sharechain.Entry)) {
	f.hookMu.Lock()
	f.mintHooks = append(f.mintHooks, cb)
	f.hookMu.Unlock()
}

func (f *Federation) dispatchIngest(e *sharechain.Entry, reorged bool) {
	f.hookMu.Lock()
	hooks := f.hooks
	f.hookMu.Unlock()
	for _, cb := range hooks {
		cb(e, reorged)
	}
}

// emitShare queues one locally-accepted share for the share-chain. It
// never blocks: a full queue drops (counted), mirroring the archive
// recorder's contract, so federation can never stall the submit path.
func (f *Federation) emitShare(token string, diff uint64, nonce uint32, blob []byte, result [32]byte) {
	s := fedShare{
		token:  token,
		diff:   diff,
		nonce:  nonce,
		blob:   append([]byte(nil), blob...),
		result: result,
	}
	select {
	case f.emit <- s:
	default:
		f.drops.Inc()
	}
}

// drain is the single minting goroutine: it assigns claimed heights
// (local tip + 1) in hand-off order, inserts locally and broadcasts.
// One minter per node keeps height claims monotonic without a lock
// around the submit path.
func (f *Federation) drain() {
	defer f.wg.Done()
	for {
		select {
		case s := <-f.emit:
			f.mint(s)
		case <-f.stop:
			// Graceful drain: every share already accepted must reach the
			// share-chain, or "zero lost credit" would depend on shutdown
			// timing.
			for {
				select {
				case s := <-f.emit:
					f.mint(s)
				default:
					return
				}
			}
		}
	}
}

func (f *Federation) mint(s fedShare) {
	e := &sharechain.Entry{
		Height: f.chain.NextHeight(),
		Token:  s.token,
		Diff:   s.diff,
		Nonce:  s.nonce,
		Blob:   s.blob,
		Result: s.result,
	}
	if _, err := f.chain.Insert(e, true); err != nil {
		// Structurally impossible for a pool-accepted share; counted
		// rather than silently lost so the load gates would catch it.
		f.drops.Inc()
		return
	}
	f.hookMu.Lock()
	mintHooks := f.mintHooks
	f.hookMu.Unlock()
	for _, cb := range mintHooks {
		cb(e)
	}
	f.node.Publish(e)
}

// Close drains the emit queue, then tears the peer layer down (each
// peer's queued frames flush before the links drop).
func (f *Federation) Close() error {
	f.closeOnce.Do(func() {
		close(f.stop)
		f.wg.Wait()
		f.node.Close()
	})
	return nil
}
