package coinhive_test

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/blockchain"
	"repro/internal/coinhive"
	"repro/internal/cryptonight"
	"repro/internal/session"
	"repro/internal/simclock"
	"repro/internal/stratum"
	"repro/internal/ws"
)

// startService boots the full HTTP/WS front over a low-difficulty pool.
// Optional mutators adjust the PoolConfig before boot (vardiff, banscore,
// memo depth) so defended variants share the identical seeding.
func startService(t *testing.T, shareDiff uint64, mut ...func(*coinhive.PoolConfig)) (*httptest.Server, *coinhive.Server, *coinhive.Pool) {
	t.Helper()
	params := blockchain.SimParams()
	params.MinDifficulty = 1 << 40 // shares never win blocks in these tests
	chain, err := blockchain.NewChain(params, 1_525_000_000, blockchain.AddressFromString("genesis"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := coinhive.PoolConfig{
		Chain:           chain,
		Wallet:          blockchain.AddressFromString("coinhive"),
		Clock:           simclock.New(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)),
		ShareDifficulty: shareDiff,
	}
	for _, m := range mut {
		m(&cfg)
	}
	pool, err := coinhive.NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	handler := coinhive.NewServer(pool)
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv, handler, pool
}

func wsProxyURL(srv *httptest.Server, n int) string {
	return "ws" + strings.TrimPrefix(srv.URL, "http") + "/proxy" + string(rune('0'+n))
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _, pool := startService(t, 2)

	// One full miner turn so the instruments have something to show.
	sess, err := session.Dial(wsProxyURL(srv, 0), stratum.Auth{SiteKey: "metrics-key", Type: "anonymous"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, job, err := sess.Login()
	if err != nil {
		t.Fatal(err)
	}
	h, err := cryptonight.GetHasher(pool.Chain().Params().PowVariant)
	if err != nil {
		t.Fatal(err)
	}
	nonce, sum, _, found := h.Grind(job.Blob, job.NonceOffset, job.Target, 0, 1<<16)
	cryptonight.PutHasher(h)
	if !found {
		t.Fatal("no share found at difficulty 2")
	}
	if err := sess.Submit(job.ID, nonce, sum); err != nil {
		t.Fatal(err)
	}
	env, err := sess.ReadEnvelope()
	if err != nil || env.Type != stratum.TypeHashAccepted {
		t.Fatalf("submit reply = (%v, %v), want hash_accepted", env.Type, err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"pool.shares_ok counter 1",
		"server.sessions gauge 1 peak=1",
		"server.jobs_sent counter",
		"server.submit_ns histogram count=1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	js, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json exposition Content-Type = %q", ct)
	}
	if !strings.Contains(string(js), `"pool.shares_ok"`) {
		t.Errorf("json exposition missing pool.shares_ok: %s", js)
	}
}

func TestServerShutdownClosesSessions(t *testing.T) {
	srv, handler, _ := startService(t, 2)

	var sessions []*session.Session
	for i := 0; i < 3; i++ {
		s, err := session.Dial(wsProxyURL(srv, i), stratum.Auth{SiteKey: "drain-key", Type: "anonymous"})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, _, err := s.Login(); err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}

	handler.Shutdown()

	// Every live session must observe a proper 1001 close handshake.
	for i, s := range sessions {
		s.Timeout = 5 * time.Second
		_, err := s.ReadEnvelope()
		var ce *ws.CloseError
		if !errors.As(err, &ce) {
			t.Fatalf("session %d: err = %v, want CloseError", i, err)
		}
		if ce.Code != ws.CloseGoingAway {
			t.Errorf("session %d: close code = %d, want %d", i, ce.Code, ws.CloseGoingAway)
		}
	}

	// Reading the close frame also sent each client's reply, so the
	// server side must now drain: every handshake completes and the
	// session set empties.
	if !handler.Drained(5 * time.Second) {
		t.Error("server sessions did not drain after the close handshakes")
	}

	// New miners are turned away with the same handshake. The server may
	// close before the client writes anything, so dial the raw ws layer
	// and just read.
	late, err := ws.Dial(wsProxyURL(srv, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	_, _, err = late.ReadMessage()
	var ce *ws.CloseError
	if !errors.As(err, &ce) || ce.Code != ws.CloseGoingAway {
		t.Errorf("late dial: err = %v, want 1001 CloseError", err)
	}
}
