package coinhive

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// The paper (§4): "Apart from offering this API, Coinhive offers e.g., a
// Captcha service and a short link forwarding service". The captcha flow is
// proof-of-work-as-CAPTCHA: a site embeds a widget that mines a configured
// number of hashes; the service then issues a one-time verification token
// the site's backend checks server-to-server — replacing "click the traffic
// lights" with CPU burn.

// Captcha is one pending or solved challenge.
type Captcha struct {
	ID       string
	SiteKey  string
	Required uint64
	Done     uint64
	// Token is the one-time proof issued on completion ("" until solved).
	Token string
	// Redeemed marks a token already consumed by a verify call.
	Redeemed bool
}

// Solved reports whether the hash goal has been met.
func (c Captcha) Solved() bool { return c.Done >= c.Required }

// Captcha errors.
var (
	ErrNoSuchCaptcha  = errors.New("coinhive: no such captcha")
	ErrCaptchaPending = errors.New("coinhive: captcha not yet solved")
	ErrTokenRedeemed  = errors.New("coinhive: captcha token already redeemed")
	ErrTokenInvalid   = errors.New("coinhive: captcha token invalid")
)

// CaptchaService issues and verifies proof-of-work captchas. Tokens are
// HMAC-bound to the service secret, so verification does not need a lookup
// for authenticity — only for single-use enforcement.
type CaptchaService struct {
	mu     sync.Mutex
	secret []byte
	seq    uint64
	byID   map[string]*Captcha
}

// NewCaptchaService creates a service with the given HMAC secret.
func NewCaptchaService(secret []byte) *CaptchaService {
	return &CaptchaService{
		secret: append([]byte(nil), secret...),
		byID:   map[string]*Captcha{},
	}
}

// Create registers a challenge of requiredHashes for a site key.
func (s *CaptchaService) Create(siteKey string, requiredHashes uint64) Captcha {
	s.mu.Lock()
	defer s.mu.Unlock()
	if requiredHashes == 0 {
		requiredHashes = 1024 // the widget's default hash price
	}
	s.seq++
	c := &Captcha{
		ID:       fmt.Sprintf("cap-%d", s.seq),
		SiteKey:  siteKey,
		Required: requiredHashes,
	}
	s.byID[c.ID] = c
	return *c
}

// Credit adds accepted hashes toward a challenge; on completion it mints
// the one-time token. The pool calls this from its share path, exactly as
// it credits short links.
func (s *CaptchaService) Credit(id string, hashes uint64) (Captcha, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byID[id]
	if !ok {
		return Captcha{}, ErrNoSuchCaptcha
	}
	c.Done += hashes
	if c.Solved() && c.Token == "" {
		c.Token = s.mint(c.ID, c.SiteKey)
	}
	return *c, nil
}

// Token returns the proof for a solved challenge.
func (s *CaptchaService) Token(id string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byID[id]
	if !ok {
		return "", ErrNoSuchCaptcha
	}
	if !c.Solved() {
		return "", ErrCaptchaPending
	}
	return c.Token, nil
}

// Verify checks a (captcha ID, token) pair exactly once — the
// server-to-server call a customer's backend makes before accepting a
// form submission.
func (s *CaptchaService) Verify(id, token string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byID[id]
	if !ok {
		return ErrNoSuchCaptcha
	}
	if !c.Solved() {
		return ErrCaptchaPending
	}
	if !hmac.Equal([]byte(token), []byte(s.mint(c.ID, c.SiteKey))) {
		return ErrTokenInvalid
	}
	if c.Redeemed {
		return ErrTokenRedeemed
	}
	c.Redeemed = true
	return nil
}

func (s *CaptchaService) mint(id, siteKey string) string {
	m := hmac.New(sha256.New, s.secret)
	m.Write([]byte("captcha:" + id + ":" + siteKey))
	return hex.EncodeToString(m.Sum(nil))
}
