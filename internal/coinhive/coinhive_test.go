package coinhive

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/blockchain"
	"repro/internal/cryptonight"
	"repro/internal/simclock"
	"repro/internal/stratum"
)

func newTestPool(t *testing.T, shareDiff uint64, mut ...func(*PoolConfig)) *Pool {
	t.Helper()
	p := blockchain.SimParams()
	// Keep the network difficulty far above the share difficulty so a test
	// share never accidentally completes a block (at genesis the retarget
	// would otherwise emit difficulty 1 and every share would win).
	p.MinDifficulty = 1 << 40
	chain, err := blockchain.NewChain(p, 1_525_000_000, blockchain.AddressFromString("genesis"))
	if err != nil {
		t.Fatal(err)
	}
	sim := simclock.New(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC))
	cfg := PoolConfig{
		Chain:           chain,
		Wallet:          blockchain.AddressFromString("coinhive-wallet"),
		Clock:           sim,
		ShareDifficulty: shareDiff,
	}
	for _, m := range mut {
		m(&cfg)
	}
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// noDupMemo disables the per-account duplicate memo, for tests that
// deliberately replay one premined share through the credit path.
func noDupMemo(c *PoolConfig) { c.ShareMemoSize = -1 }

func TestIDCodecRoundTrip(t *testing.T) {
	// The ID sequence is bijective base-36: after "z" comes "00" (all
	// two-character IDs), after "zz" comes "000", and so on — every string
	// in [a-z0-9]{1..4} is eventually assigned, giving the 1,727,604-ID
	// space the paper enumerated.
	cases := map[uint64]string{
		0: "0", 9: "9", 10: "a", 35: "z",
		36: "00", 36 + 35: "0z", 36 + 36: "10", 36 + 36*36 - 1: "zz",
		36 + 36*36: "000",
	}
	for idx, want := range cases {
		if got := IDForIndex(idx); got != want {
			t.Errorf("IDForIndex(%d) = %q, want %q", idx, got, want)
		}
		back, err := IndexForID(want)
		if err != nil || back != idx {
			t.Errorf("IndexForID(%q) = (%d, %v), want %d", want, back, err, idx)
		}
	}
}

func TestQuickIDCodec(t *testing.T) {
	f := func(i uint32) bool {
		id := IDForIndex(uint64(i))
		if len(id) == 0 || len(id) > 8 {
			return false
		}
		back, err := IndexForID(id)
		return err == nil && back == uint64(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIDSpaceMatchesPaperCount(t *testing.T) {
	// Up to 4 characters: 36 + 36² + 36³ + 36⁴ IDs. The paper enumerated
	// 1,709,203 active links within that space.
	space := uint64(36 + 36*36 + 36*36*36 + 36*36*36*36)
	if space != 1_727_604 {
		t.Fatalf("4-char ID space = %d", space)
	}
	if got := IDForIndex(space - 1); len(got) != 4 {
		t.Errorf("last 4-char ID = %q", got)
	}
	if got := IDForIndex(space); len(got) != 5 {
		t.Errorf("first 5-char ID = %q", got)
	}
}

func TestIndexForIDRejectsBadInput(t *testing.T) {
	for _, bad := range []string{"", "UPPER", "sp ce", "way-too-long!", "ab_c"} {
		if _, err := IndexForID(bad); err == nil {
			t.Errorf("IndexForID(%q) accepted", bad)
		}
	}
}

func TestLinkStoreLifecycle(t *testing.T) {
	s := NewLinkStore()
	id := s.Create("tokenA", "https://youtu.be/x", 100)
	if id != "0" {
		t.Errorf("first id = %q", id)
	}
	if _, err := s.Destination(id); err == nil {
		t.Error("unresolved link revealed its destination")
	}
	if _, err := s.Credit(id, 60); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Destination(id); err == nil {
		t.Error("partially resolved link revealed its destination")
	}
	s.Credit(id, 60)
	url, err := s.Destination(id)
	if err != nil || url != "https://youtu.be/x" {
		t.Errorf("Destination = (%q, %v)", url, err)
	}
	if _, err := s.Get("zz"); err != ErrNoSuchLink {
		t.Errorf("missing link: err = %v", err)
	}
}

func TestJobTopology(t *testing.T) {
	pool := newTestPool(t, 16)
	if pool.NumEndpoints() != 32 {
		t.Fatalf("endpoints = %d, want 32", pool.NumEndpoints())
	}
	// Polling every endpoint across all slots must reveal exactly
	// NumBackends × TemplatesPerBackend = 128 distinct PoW inputs, and one
	// endpoint alone at most 8 (the paper's key §4.2 observation).
	distinct := map[string]bool{}
	perEndpoint := map[string]bool{}
	for ep := 0; ep < pool.NumEndpoints(); ep++ {
		for slot := 0; slot < 20; slot++ { // oversample slots
			j := pool.Job(ep, slot, false)
			blob, err := stratum.DecodeBlob(j.Blob)
			if err != nil {
				t.Fatal(err)
			}
			distinct[string(blob)] = true
			if ep == 0 {
				perEndpoint[string(blob)] = true
			}
		}
	}
	if len(distinct) != 128 {
		t.Errorf("distinct PoW inputs = %d, want 128", len(distinct))
	}
	if len(perEndpoint) != 8 {
		t.Errorf("distinct inputs on one endpoint = %d, want 8", len(perEndpoint))
	}
	// Two endpoints sharing a backend serve the same inputs.
	j1 := pool.Job(3, 5, false)
	j2 := pool.Job(3+DefaultNumBackends, 5, false)
	if j1.Blob != j2.Blob {
		t.Error("paired endpoints serve different inputs")
	}
}

func TestJobIDCodecRoundTrip(t *testing.T) {
	cases := []struct {
		backend int
		seq     uint32
		slot    int
		link    bool
		diff    uint64
	}{
		{0, 1, 0, false, 0},
		{15, 4294967295, 7, false, 0},
		{3, 42, 5, true, 0},
		{9, 0, 1, true, 0},
		{0, 1, 0, false, 1},
		{15, 4294967295, 7, false, 4096},
		{9, 7, 3, false, 8},
	}
	for _, c := range cases {
		id := makeJobID(c.backend, c.seq, c.slot, c.link, c.diff)
		b, seq, slot, link, diff, ok := parseJobID(id)
		if !ok || b != c.backend || seq != c.seq || slot != c.slot || link != c.link || diff != c.diff {
			t.Errorf("round trip %+v via %q -> (%d,%d,%d,%v,%d,%v)", c, id, b, seq, slot, link, diff, ok)
		}
	}
	for _, bad := range []string{"", "-", "1-", "1-2", "x-1-2", "1-x-2", "1-2-x", "99999", "-1-2-3", "1-2--L",
		"1-2-3-d", "1-2-3-dx", "1-2-3-d0", "1-2-3-d-1", "1-2-3-L-d"} {
		if _, _, _, _, _, ok := parseJobID(bad); ok {
			t.Errorf("parseJobID(%q) accepted malformed ID", bad)
		}
	}
}

func TestJobBlobIsObfuscated(t *testing.T) {
	pool := newTestPool(t, 16)
	j := pool.Job(0, 0, false)
	blob, _ := stratum.DecodeBlob(j.Blob)
	// As served, the blob must NOT parse as a clean hashing blob whose
	// prev-hash references the actual tip; after deobfuscation it must.
	_, _, _, errRaw := blockchain.ParseHashingBlob(blob)
	stratum.ObfuscateBlob(blob)
	hdr, root, _, err := blockchain.ParseHashingBlob(blob)
	if err != nil {
		t.Fatalf("deobfuscated blob does not parse: %v", err)
	}
	if hdr.PrevHash != pool.Chain().TipID() {
		t.Error("deobfuscated blob does not reference the tip")
	}
	if root == [32]byte{} {
		t.Error("empty merkle root")
	}
	// The raw blob either fails to parse or parses with a garbled prev.
	if errRaw == nil {
		raw, _ := stratum.DecodeBlob(j.Blob)
		h2, _, _, _ := blockchain.ParseHashingBlob(raw)
		if h2.PrevHash == pool.Chain().TipID() {
			t.Error("served blob was not obfuscated")
		}
	}
}

// mineShare grinds a valid share for the given job, searching from the
// optional start nonce (so a test can mint distinct shares for one job —
// the duplicate memo rejects a replayed nonce by design).
func mineShare(t *testing.T, pool *Pool, j stratum.Job, start ...uint32) (uint32, [32]byte) {
	t.Helper()
	var from uint32
	if len(start) > 0 {
		from = start[0]
	}
	blob, err := stratum.DecodeBlob(j.Blob)
	if err != nil {
		t.Fatal(err)
	}
	stratum.ObfuscateBlob(blob)
	target, err := stratum.DecodeTarget(j.Target)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, _, err := blockchain.ParseHashingBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	_ = hdr
	h, err := cryptonight.NewHasher(pool.Chain().Params().PowVariant)
	if err != nil {
		t.Fatal(err)
	}
	off := hdr.NonceOffset()
	for n := from; n < from+1_000_000; n++ {
		blockchain.SpliceNonce(blob, off, n)
		sum := h.Sum(blob)
		if cryptonight.CheckCompactTarget(sum, target) {
			return n, sum
		}
	}
	t.Fatal("no share found")
	return 0, [32]byte{}
}

func TestSubmitShareCreditsAccount(t *testing.T) {
	pool := newTestPool(t, 16)
	pool.Authorize("site-xyz")
	j := pool.Job(0, 0, false)
	nonce, sum := mineShare(t, pool, j)
	if _, err := pool.SubmitShare("site-xyz", j.JobID, nonce, sum, ""); err != nil {
		t.Fatalf("SubmitShare: %v", err)
	}
	a, ok := pool.AccountSnapshot("site-xyz")
	if !ok || a.TotalHashes != 16 {
		t.Errorf("account = %+v", a)
	}
	st := pool.StatsSnapshot()
	if st.SharesOK != 1 || st.SharesBad != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSubmitShareRejectsForgeries(t *testing.T) {
	pool := newTestPool(t, 16)
	j := pool.Job(0, 0, false)
	nonce, sum := mineShare(t, pool, j)
	// Wrong result bytes.
	bad := sum
	bad[0] ^= 1
	if _, err := pool.SubmitShare("t", j.JobID, nonce, bad, ""); err != ErrBadShare {
		t.Errorf("forged result: err = %v", err)
	}
	// Unknown job.
	if _, err := pool.SubmitShare("t", "99999", nonce, sum, ""); err != ErrUnknownJob {
		t.Errorf("unknown job: err = %v", err)
	}
	// Self-elected link tier: the difficulty class is pinned when the pool
	// mints the job, so suffixing "-L" onto a normal ID must not resolve.
	if _, err := pool.SubmitShare("t", j.JobID+"-L", nonce, sum, ""); err != ErrUnknownJob {
		t.Errorf("forged link suffix: err = %v", err)
	}
	// Well-formed but never-minted ID (wrong generation for the slot).
	if _, err := pool.SubmitShare("t", "0-999999-0", nonce, sum, ""); err != ErrUnknownJob {
		t.Errorf("fabricated generation: err = %v", err)
	}
	// Replay after tip change: force a new tip via ProduceWinningBlock.
	// Unlike the forgeries above, this identifier was really minted, so
	// the rejection names it stale.
	if _, err := pool.ProduceWinningBlock(1_525_000_300, 0, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.SubmitShare("t", j.JobID, nonce, sum, ""); err != ErrStaleJob {
		t.Errorf("stale job: err = %v", err)
	}
}

func TestProduceWinningBlockSettlesRevenue(t *testing.T) {
	pool := newTestPool(t, 16)
	pool.Authorize("heavy-user")
	// Credit some round hashes so the 70% goes somewhere.
	j := pool.Job(0, 0, false)
	nonce, sum := mineShare(t, pool, j)
	if _, err := pool.SubmitShare("heavy-user", j.JobID, nonce, sum, ""); err != nil {
		t.Fatal(err)
	}
	heightBefore := pool.Chain().Height()
	blk, err := pool.ProduceWinningBlock(1_525_000_300, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Chain().Height() != heightBefore+1 {
		t.Error("block not appended")
	}
	reward := blk.Coinbase.Amount
	st := pool.StatsSnapshot()
	if st.BlocksFound != 1 {
		t.Errorf("blocks found = %d", st.BlocksFound)
	}
	a, _ := pool.AccountSnapshot("heavy-user")
	wantUser := reward * 70 / 100
	if a.BalanceAtomic != wantUser {
		t.Errorf("user balance = %d, want %d (70%% of %d)", a.BalanceAtomic, wantUser, reward)
	}
	if st.KeptAtomic != reward-wantUser {
		t.Errorf("pool kept = %d, want %d", st.KeptAtomic, reward-wantUser)
	}
	if st.PaidAtomic+st.KeptAtomic != reward {
		t.Error("payout does not conserve the reward")
	}
}

func TestRevenueSplitProportionalToHashes(t *testing.T) {
	pool := newTestPool(t, 16)
	// Two users, 3:1 share ratio.
	for i := 0; i < 4; i++ {
		token := "big"
		if i == 3 {
			token = "small"
		}
		j := pool.Job(i, i, false)
		nonce, sum := mineShare(t, pool, j)
		if _, err := pool.SubmitShare(token, j.JobID, nonce, sum, ""); err != nil {
			t.Fatal(err)
		}
	}
	blk, err := pool.ProduceWinningBlock(1_525_000_300, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	userPart := blk.Coinbase.Amount * 70 / 100
	big, _ := pool.AccountSnapshot("big")
	small, _ := pool.AccountSnapshot("small")
	if big.BalanceAtomic != userPart*3/4 {
		t.Errorf("big = %d, want %d", big.BalanceAtomic, userPart*3/4)
	}
	if small.BalanceAtomic != userPart/4 {
		t.Errorf("small = %d, want %d", small.BalanceAtomic, userPart/4)
	}
}

func TestShareCreditsLinkGoal(t *testing.T) {
	pool := newTestPool(t, 16)
	id := pool.Links().Create("creator", "https://example.org/file", 32)
	// Two 16-hash shares meet the 32-hash goal.
	for i := 0; i < 2; i++ {
		j := pool.Job(0, i, false)
		nonce, sum := mineShare(t, pool, j)
		if _, err := pool.SubmitShare("creator", j.JobID, nonce, sum, id); err != nil {
			t.Fatal(err)
		}
	}
	url, err := pool.Links().Destination(id)
	if err != nil || url != "https://example.org/file" {
		t.Errorf("Destination = (%q, %v)", url, err)
	}
}

func TestMinerScriptCarriesBlocklistMarkers(t *testing.T) {
	for _, marker := range []string{"coinhive.min.js", "CoinHive.Anonymous", "cryptonight.wasm"} {
		if !strings.Contains(MinerScript, marker) {
			t.Errorf("miner script lacks marker %q", marker)
		}
	}
}
