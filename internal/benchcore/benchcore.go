// Package benchcore holds the bodies of the repo's core performance
// benchmarks — the Keccak hash core, the block-template/ID paths, the
// simulation clock, pool share verification and one simulated Figure-5
// day. Both the per-package `go test -bench` entry points and cmd/bench
// (which writes BENCH_core.json) delegate here, so the committed perf
// trajectory measures exactly the workload the test benchmarks report.
package benchcore

import (
	"testing"
	"time"

	"repro/internal/blockchain"
	"repro/internal/coinhive"
	"repro/internal/cryptonight"
	"repro/internal/experiments"
	"repro/internal/keccak"
	"repro/internal/poolwatch"
	"repro/internal/simclock"
	"repro/internal/stratum"
)

// CryptonightHashTest measures one CryptoNight hash of a 76-byte hashing
// blob under the Test profile — the unit of work behind every simulated
// web-miner hash and every pool-side share verification.
func CryptonightHashTest(b *testing.B) { cryptonightHash(b, cryptonight.Test) }

// CryptonightHashLite is the same measurement under the 1 MB Lite profile.
func CryptonightHashLite(b *testing.B) { cryptonightHash(b, cryptonight.Lite) }

func cryptonightHash(b *testing.B, v cryptonight.Variant) {
	h, err := cryptonight.GetHasher(v)
	if err != nil {
		b.Fatal(err)
	}
	defer cryptonight.PutHasher(h)
	blob := make([]byte, 76)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Sum(blob)
	}
}

// CryptonightGrindTest measures one nonce attempt of the Grind kernel
// (splice + hash + compact-target check) under the Test profile; the
// unmeetable target 0 makes every op exactly one hash.
func CryptonightGrindTest(b *testing.B) {
	h, err := cryptonight.GetHasher(cryptonight.Test)
	if err != nil {
		b.Fatal(err)
	}
	defer cryptonight.PutHasher(h)
	blob := make([]byte, 76)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Grind(blob, 39, 0, uint32(i), 1)
	}
}

// KeccakPermute measures the unrolled Keccak-f[1600] permutation.
func KeccakPermute(b *testing.B) {
	var a [25]uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		keccak.Permute(&a)
	}
}

// KeccakSum256 hashes a 76-byte input — the size of a block hashing blob,
// the dominant call site in the simulation.
func KeccakSum256(b *testing.B) {
	data := make([]byte, 76)
	b.SetBytes(76)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		keccak.Sum256(data)
	}
}

// NewBenchChain builds a low-difficulty chain with a short warm-up so the
// template and append benchmarks see a realistic trailing window.
func NewBenchChain(tb testing.TB) *blockchain.Chain {
	tb.Helper()
	p := blockchain.SimParams()
	p.MinDifficulty = 1
	c, err := blockchain.NewChain(p, 1524700800, blockchain.AddressFromString("genesis"))
	if err != nil {
		tb.Fatal(err)
	}
	ts := uint64(1524700800)
	for i := 0; i < 8; i++ {
		ts += 120
		t := c.NewTemplate(ts, blockchain.AddressFromString("miner"), []byte{byte(i)}, nil)
		if err := c.AppendUnchecked(t); err != nil {
			tb.Fatal(err)
		}
	}
	return c
}

// NewTemplate measures the full per-slot cost a pool pays on a tip change:
// assembling the template and deriving its hashing blob (coinbase hash,
// Merkle root, header serialisation).
func NewTemplate(b *testing.B) {
	c := NewBenchChain(b)
	extra := []byte{0xC4, 1, 2, 0, 0, 0, 0, 1}
	var blob []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl := c.NewTemplate(1524710000, blockchain.AddressFromString("pool"), extra, nil)
		blob = tmpl.AppendHashingBlob(blob[:0])
	}
	_ = blob
}

// BlockID measures block-identifier hashing, the dominant Keccak consumer
// on the append path.
func BlockID(b *testing.B) {
	c := NewBenchChain(b)
	blk := c.NewTemplate(1524710000, blockchain.AddressFromString("pool"), []byte{1, 2, 3}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.ID()
	}
}

// AppendUnchecked measures the simulation's background-miner block path end
// to end (template, dup check, ID computation, bookkeeping).
func AppendUnchecked(b *testing.B) {
	c := NewBenchChain(b)
	ts := uint64(1524710000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts += 120
		t := c.NewTemplate(ts, blockchain.AddressFromString("bg"),
			[]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)}, nil)
		if err := c.AppendUnchecked(t); err != nil {
			b.Fatal(err)
		}
	}
}

// SchedulePop measures one simclock schedule/pop cycle with a prebuilt
// handler — allocation-free at steady state.
func SchedulePop(b *testing.B) {
	s := simclock.New(time.Date(2018, 4, 26, 0, 0, 0, 0, time.UTC))
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ScheduleAfter(time.Millisecond, fn)
		s.RunFor(2 * time.Millisecond)
	}
}

// SubmitShare measures pool-side verification of premined shares (the
// CryptoNight check dominates; jobs stay valid because the tip is pinned).
func SubmitShare(b *testing.B) {
	w, err := experiments.NewWorld(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC),
		5.5e6, 462e6, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	var wallet blockchain.Address
	copy(wallet[:], "bench-wallet")
	pool, err := coinhive.NewPool(coinhive.PoolConfig{
		Chain: w.Chain, Wallet: wallet, Clock: w.Sim, ShareDifficulty: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	h, err := cryptonight.GetHasher(pool.Chain().Params().PowVariant)
	if err != nil {
		b.Fatal(err)
	}
	defer cryptonight.PutHasher(h)
	type share struct {
		jobID string
		nonce uint32
		sum   [32]byte
	}
	shares := make([]share, 16)
	for i := range shares {
		job := pool.Job(i%pool.NumEndpoints(), i, false)
		blob, err := stratum.DecodeBlob(job.Blob)
		if err != nil {
			b.Fatal(err)
		}
		stratum.ObfuscateBlob(blob)
		target, err := stratum.DecodeTarget(job.Target)
		if err != nil {
			b.Fatal(err)
		}
		hdr, _, _, err := blockchain.ParseHashingBlob(blob)
		if err != nil {
			b.Fatal(err)
		}
		n, sum, _, found := h.Grind(blob, hdr.NonceOffset(), target, 0, 1<<30)
		if !found {
			b.Fatal("no share in 2^30 nonces")
		}
		shares[i] = share{jobID: job.JobID, nonce: n, sum: sum}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := shares[i%len(shares)]
		if _, err := pool.SubmitShare("bench", s.jobID, s.nonce, s.sum, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// PollAllEndpoints measures one full watcher sweep over the pool's 32
// endpoints × 8 slots.
func PollAllEndpoints(b *testing.B) {
	w, err := experiments.NewWorld(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC),
		5.5e6, 462e6, nil, 5)
	if err != nil {
		b.Fatal(err)
	}
	watcher := poolwatch.New(poolwatch.Config{Source: w.Net, Chain: w.Chain})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		watcher.PollAllEndpoints()
	}
}

// Fig5Day runs one simulated day of the Figure 5 observation campaign —
// network, pool and watcher — per iteration: the end-to-end number the
// hash-core and event-loop optimisations target.
func Fig5Day(b *testing.B) {
	start := time.Date(2018, 4, 26, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := experiments.NewWorld(start.Add(-3*time.Hour), experiments.PoolHashRate,
			experiments.NetworkHashRate, experiments.CoinhiveActivity, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		watcher := poolwatch.New(poolwatch.Config{Source: w.Net, Chain: w.Chain})
		w.Net.Start()
		stop := watcher.Run(w.Sim, 2*time.Second)
		w.Sim.RunUntil(start)
		w.Sim.RunFor(24 * time.Hour)
		stop()
		watcher.Sweep()
		if len(watcher.Attributed()) == 0 {
			b.Fatal("one simulated day attributed no blocks")
		}
	}
}
