// Package htmlx is a small, truncation-tolerant HTML scanner that extracts
// <script> tags — the role lxml plays in the paper's §3.1 pipeline. The
// zgrab-style fetcher downloads only the first 256 kB of a landing page, so
// the parser must cope with documents cut off mid-tag and mid-script.
package htmlx

import "strings"

// Script is one extracted <script> element.
type Script struct {
	// Src is the value of the src attribute ("" for inline scripts).
	Src string
	// Inline is the script body for inline scripts.
	Inline string
	// Attrs holds all attributes (lower-case keys).
	Attrs map[string]string
}

// ExtractScripts scans doc for script tags. It is case-insensitive,
// tolerates unquoted/single-/double-quoted attributes, skips HTML comments,
// and treats an unterminated final script as inline content running to the
// end of the (possibly truncated) document.
func ExtractScripts(doc string) []Script {
	var out []Script
	low := lowerASCII(doc)
	pos := 0
	for {
		i := strings.Index(low[pos:], "<script")
		if i < 0 {
			break
		}
		i += pos
		// Guard against matching "<scriptx"; require delimiter after name.
		after := i + len("<script")
		if after < len(doc) && !isTagDelim(doc[after]) {
			pos = after
			continue
		}
		// Find the end of the opening tag.
		gt := strings.IndexByte(doc[after:], '>')
		if gt < 0 {
			// Truncated inside the opening tag: attributes unusable.
			break
		}
		tagEnd := after + gt
		attrs := parseAttrs(doc[after:tagEnd])
		s := Script{Attrs: attrs, Src: attrs["src"]}
		// Find the closing tag.
		close := strings.Index(low[tagEnd+1:], "</script")
		if close < 0 {
			s.Inline = doc[tagEnd+1:]
			out = append(out, s)
			break
		}
		bodyEnd := tagEnd + 1 + close
		if s.Src == "" {
			s.Inline = doc[tagEnd+1 : bodyEnd]
		}
		out = append(out, s)
		pos = bodyEnd + len("</script")
	}
	return out
}

func isTagDelim(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '>' || c == '/'
}

// lowerASCII lowercases only ASCII letters, preserving byte offsets.
// strings.ToLower would also fold multi-byte characters whose lower form
// has a different encoded length (Ɱ→ɱ, K→k), desynchronising indices
// computed on the lowered copy from the original document — tag names are
// ASCII, so ASCII folding is all case-insensitivity requires.
func lowerASCII(s string) string {
	i := 0
	for i < len(s) && (s[i] < 'A' || s[i] > 'Z') {
		i++
	}
	if i == len(s) {
		return s
	}
	b := []byte(s)
	for ; i < len(b); i++ {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// parseAttrs parses the attribute region of a tag.
func parseAttrs(s string) map[string]string {
	attrs := map[string]string{}
	i := 0
	n := len(s)
	for i < n {
		// Skip whitespace and stray slashes.
		for i < n && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r' || s[i] == '/') {
			i++
		}
		if i >= n {
			break
		}
		// Attribute name.
		start := i
		for i < n && s[i] != '=' && s[i] != ' ' && s[i] != '\t' && s[i] != '\n' && s[i] != '\r' && s[i] != '/' {
			i++
		}
		name := strings.ToLower(s[start:i])
		if name == "" {
			i++
			continue
		}
		// Skip whitespace before a possible '='.
		for i < n && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= n || s[i] != '=' {
			attrs[name] = "" // boolean attribute (async, defer)
			continue
		}
		i++ // consume '='
		for i < n && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= n {
			attrs[name] = ""
			break
		}
		var val string
		switch s[i] {
		case '"', '\'':
			q := s[i]
			i++
			end := strings.IndexByte(s[i:], q)
			if end < 0 {
				val = s[i:] // truncated quoted value
				i = n
			} else {
				val = s[i : i+end]
				i += end + 1
			}
		default:
			start := i
			for i < n && s[i] != ' ' && s[i] != '\t' && s[i] != '\n' && s[i] != '\r' {
				i++
			}
			val = s[start:i]
		}
		attrs[name] = val
	}
	return attrs
}

// ExtractTitle returns the document title, or "".
func ExtractTitle(doc string) string {
	low := lowerASCII(doc)
	i := strings.Index(low, "<title")
	if i < 0 {
		return ""
	}
	gt := strings.IndexByte(doc[i:], '>')
	if gt < 0 {
		return ""
	}
	start := i + gt + 1
	end := strings.Index(low[start:], "</title")
	if end < 0 {
		return strings.TrimSpace(doc[start:])
	}
	return strings.TrimSpace(doc[start : start+end])
}
