package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExtractBasicScripts(t *testing.T) {
	doc := `<!doctype html><html><head>
<script src="https://coinhive.com/lib/coinhive.min.js"></script>
<SCRIPT TYPE="text/javascript">var miner = new CoinHive.Anonymous('KEY');</SCRIPT>
</head><body><p>hi</p></body></html>`
	scripts := ExtractScripts(doc)
	if len(scripts) != 2 {
		t.Fatalf("extracted %d scripts, want 2", len(scripts))
	}
	if scripts[0].Src != "https://coinhive.com/lib/coinhive.min.js" {
		t.Errorf("src = %q", scripts[0].Src)
	}
	if scripts[0].Inline != "" {
		t.Error("src script has inline body")
	}
	if !strings.Contains(scripts[1].Inline, "CoinHive.Anonymous") {
		t.Errorf("inline = %q", scripts[1].Inline)
	}
	if scripts[1].Attrs["type"] != "text/javascript" {
		t.Errorf("attrs = %v", scripts[1].Attrs)
	}
}

func TestAttributeQuotingVariants(t *testing.T) {
	doc := `<script src='single.js'></script><script src=unquoted.js async></script>`
	s := ExtractScripts(doc)
	if len(s) != 2 {
		t.Fatalf("got %d scripts", len(s))
	}
	if s[0].Src != "single.js" || s[1].Src != "unquoted.js" {
		t.Errorf("srcs = %q, %q", s[0].Src, s[1].Src)
	}
	if _, ok := s[1].Attrs["async"]; !ok {
		t.Error("boolean attribute lost")
	}
}

func TestTruncatedDocument(t *testing.T) {
	// Cut off mid-script, as a 256 kB capped download routinely is.
	doc := `<html><head><script>var a = 1; fetch("/lib/cryptonight.wasm"`
	s := ExtractScripts(doc)
	if len(s) != 1 {
		t.Fatalf("got %d scripts", len(s))
	}
	if !strings.Contains(s[0].Inline, "cryptonight.wasm") {
		t.Errorf("inline = %q", s[0].Inline)
	}
	// Truncated inside the opening tag: no usable script.
	if got := ExtractScripts(`<html><script src="x.js`); len(got) != 0 {
		t.Errorf("truncated open tag yielded %d scripts", len(got))
	}
}

func TestDoesNotMatchScriptPrefixTags(t *testing.T) {
	doc := `<scripted>nope</scripted><script>yes()</script>`
	s := ExtractScripts(doc)
	if len(s) != 1 || !strings.Contains(s[0].Inline, "yes()") {
		t.Errorf("scripts = %+v", s)
	}
}

func TestManyScriptsAndBodiesDoNotBleed(t *testing.T) {
	doc := strings.Repeat(`<script>a()</script><script src="b.js"></script>`, 50)
	s := ExtractScripts(doc)
	if len(s) != 100 {
		t.Fatalf("got %d scripts, want 100", len(s))
	}
	for i, sc := range s {
		if i%2 == 0 && sc.Inline != "a()" {
			t.Fatalf("script %d inline = %q", i, sc.Inline)
		}
		if i%2 == 1 && sc.Src != "b.js" {
			t.Fatalf("script %d src = %q", i, sc.Src)
		}
	}
}

func TestExtractTitle(t *testing.T) {
	if got := ExtractTitle(`<html><head><title>My Site</title></head>`); got != "My Site" {
		t.Errorf("title = %q", got)
	}
	if got := ExtractTitle(`<TITLE lang="en"> padded `); got != "padded" {
		t.Errorf("truncated title = %q", got)
	}
	if got := ExtractTitle(`<html><body>no title`); got != "" {
		t.Errorf("missing title = %q", got)
	}
}

func TestQuickNeverPanicsOnArbitraryInput(t *testing.T) {
	f := func(doc string) bool {
		ExtractScripts(doc)
		ExtractTitle(doc)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickExtractFindsPlantedScript(t *testing.T) {
	f := func(prefix, suffix string) bool {
		// Keep the noise from containing script tags itself.
		clean := func(s string) string {
			return strings.NewReplacer("<", "(", ">", ")").Replace(s)
		}
		doc := clean(prefix) + `<script src="planted.js"></script>` + clean(suffix)
		for _, s := range ExtractScripts(doc) {
			if s.Src == "planted.js" {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkExtractScripts256K(b *testing.B) {
	page := strings.Repeat(`<div class="x">text</div><script src="/js/app.js"></script>`, 4500)
	b.SetBytes(int64(len(page)))
	for i := 0; i < b.N; i++ {
		ExtractScripts(page)
	}
}

func TestExtractScriptsSurvivesLengthChangingCaseFolds(t *testing.T) {
	// Ɱ (U+2C6E, 3 bytes) lowercases to ɱ (U+0271, 2 bytes); K (U+212A)
	// to k (1 byte). A scanner that indexes the original document with
	// offsets computed on a strings.ToLower copy drifts after such runes
	// and misparses everything behind them.
	for _, noise := range []string{"Ɱ", "K", "ɱȾⱾ İİİ", "plain ascii PREFIX"} {
		doc := noise + `<SCRIPT SRC="planted.js"></SCRIPT><title>T</title>`
		scripts := ExtractScripts(doc)
		if len(scripts) != 1 || scripts[0].Src != "planted.js" {
			t.Errorf("noise %q: scripts = %+v, want one with src planted.js", noise, scripts)
		}
		if got := ExtractTitle(doc); got != "T" {
			t.Errorf("noise %q: title = %q, want T", noise, got)
		}
	}
}
