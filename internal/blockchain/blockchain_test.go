package blockchain

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cryptonight"
)

func testParams() Params {
	p := SimParams()
	p.MinDifficulty = 1
	return p
}

func mineOnto(t *testing.T, c *Chain, ts uint64, to Address, extra []byte) *Block {
	t.Helper()
	b := c.NewTemplate(ts, to, extra, nil)
	h, err := cryptonight.NewHasher(c.Params().PowVariant)
	if err != nil {
		t.Fatal(err)
	}
	diff := c.NextDifficulty()
	for n := uint32(0); ; n++ {
		b.Nonce = n
		if cryptonight.CheckDifficulty(b.PowHash(h), diff) {
			break
		}
		if n > 1_000_000 {
			t.Fatal("no nonce found within bound")
		}
	}
	if err := c.Append(b); err != nil {
		t.Fatalf("Append: %v", err)
	}
	return b
}

func TestTransactionRoundTrip(t *testing.T) {
	tx := Transaction{
		Version:    2,
		UnlockTime: 77,
		Coinbase:   true,
		Amount:     123456789,
		To:         AddressFromString("coinhive-wallet"),
		Fee:        42,
		Extra:      []byte{0xde, 0xad, 0xbe, 0xef},
		Payload:    []byte("outputs"),
	}
	buf := tx.Serialize(nil)
	got, rest, err := DeserializeTransaction(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("leftover %d bytes", len(rest))
	}
	if !got.Equal(tx) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tx)
	}
}

func TestQuickTransactionRoundTrip(t *testing.T) {
	f := func(ver, unlock, amount, fee uint64, cb bool, to [32]byte, extra, payload []byte) bool {
		tx := Transaction{Version: ver, UnlockTime: unlock, Coinbase: cb, Amount: amount,
			To: Address(to), Fee: fee, Extra: extra, Payload: payload}
		got, rest, err := DeserializeTransaction(tx.Serialize(nil))
		return err == nil && len(rest) == 0 && got.Hash() == tx.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	b := &Block{
		Header: Header{MajorVersion: 7, MinorVersion: 7, Timestamp: 1525000000,
			PrevHash: AddressFromString("prev"), Nonce: 0xdeadbeef},
		Coinbase: NewCoinbase(1000, AddressFromString("pool"), 60, []byte{1, 2, 3}),
		TxHashes: [][32]byte{AddressFromString("tx1"), AddressFromString("tx2")},
	}
	buf := b.Serialize(nil)
	got, rest, err := DeserializeBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("leftover %d bytes", len(rest))
	}
	if got.ID() != b.ID() {
		t.Error("round-tripped block has different ID")
	}
	if got.MerkleRoot() != b.MerkleRoot() {
		t.Error("round-tripped block has different Merkle root")
	}
}

func TestHashingBlobParse(t *testing.T) {
	b := &Block{
		Header: Header{MajorVersion: 7, MinorVersion: 7, Timestamp: 1525000000,
			PrevHash: AddressFromString("prev"), Nonce: 42},
		Coinbase: NewCoinbase(1000, AddressFromString("pool"), 60, nil),
		TxHashes: [][32]byte{AddressFromString("t1"), AddressFromString("t2"), AddressFromString("t3")},
	}
	blob := b.HashingBlob()
	h, root, numTx, err := ParseHashingBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if h != b.Header {
		t.Errorf("header mismatch: %+v vs %+v", h, b.Header)
	}
	if root != b.MerkleRoot() {
		t.Error("parsed Merkle root differs")
	}
	if numTx != 4 {
		t.Errorf("numTx = %d, want 4", numTx)
	}
}

func TestNonceSplice(t *testing.T) {
	b := &Block{
		Header:   Header{MajorVersion: 7, MinorVersion: 7, Timestamp: 1525000000, Nonce: 0},
		Coinbase: NewCoinbase(10, AddressFromString("x"), 0, nil),
	}
	blob := b.HashingBlob()
	SpliceNonce(blob, b.NonceOffset(), 0xA1B2C3D4)
	b.Nonce = 0xA1B2C3D4
	if !bytes.Equal(blob, b.HashingBlob()) {
		t.Error("SpliceNonce result differs from re-serialisation")
	}
}

func TestMerkleRootCommitsToCoinbaseExtra(t *testing.T) {
	// The pool's per-backend extra nonce must alter the Merkle root: this
	// is what makes the paper's 128-distinct-PoW-inputs observation work.
	mk := func(extra []byte) [32]byte {
		b := &Block{
			Header:   Header{MajorVersion: 7, MinorVersion: 7, Timestamp: 1},
			Coinbase: NewCoinbase(10, AddressFromString("pool"), 0, extra),
		}
		return b.MerkleRoot()
	}
	if mk([]byte{0}) == mk([]byte{1}) {
		t.Error("coinbase extra does not alter Merkle root")
	}
}

func TestEmissionCurve(t *testing.T) {
	p := MainnetLike(cryptonight.Test)
	r0 := p.BaseReward(0)
	r1 := p.BaseReward(r0)
	if r1 >= r0 {
		t.Errorf("reward must decrease: r0=%d r1=%d", r0, r1)
	}
	// Tail emission floor.
	if got := p.BaseReward(p.MoneySupply - 1); got != p.TailEmission {
		t.Errorf("near-exhausted supply reward = %d, want tail %d", got, p.TailEmission)
	}
	if got := p.BaseReward(p.MoneySupply); got != p.TailEmission {
		t.Errorf("exhausted supply reward = %d, want tail %d", got, p.TailEmission)
	}
}

func TestQuickEmissionMonotoneNonIncreasing(t *testing.T) {
	p := MainnetLike(cryptonight.Test)
	f := func(a, b uint64) bool {
		if a > b {
			a, b = b, a
		}
		return p.BaseReward(a) >= p.BaseReward(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChainGenesisAndAppend(t *testing.T) {
	c, err := NewChain(testParams(), 1_525_000_000, AddressFromString("genesis"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Height() != 0 {
		t.Fatalf("genesis height = %d", c.Height())
	}
	b1 := mineOnto(t, c, 1_525_000_120, AddressFromString("miner-a"), []byte("e1"))
	if c.Height() != 1 {
		t.Fatalf("height after one block = %d", c.Height())
	}
	if c.Tip().ID() != b1.ID() {
		t.Error("tip is not the appended block")
	}
	// Lookup paths.
	if _, h, ok := c.BlockByID(b1.ID()); !ok || h != 1 {
		t.Error("BlockByID failed for appended block")
	}
	succ, ok := c.SuccessorOf(c.BlockByHeight(0).ID())
	if !ok || succ.ID() != b1.ID() {
		t.Error("SuccessorOf(genesis) != block 1")
	}
}

func TestChainRejectsBadBlocks(t *testing.T) {
	c, _ := NewChain(testParams(), 1_525_000_000, AddressFromString("g"))
	mineOnto(t, c, 1_525_000_120, AddressFromString("m"), nil)

	// Wrong prev.
	bad := c.NewTemplate(1_525_000_240, AddressFromString("m"), nil, nil)
	bad.PrevHash = AddressFromString("bogus")
	if err := c.Append(bad); err != ErrBadPrev {
		t.Errorf("wrong prev: err = %v, want ErrBadPrev", err)
	}
	// Wrong version.
	bad = c.NewTemplate(1_525_000_240, AddressFromString("m"), nil, nil)
	bad.MajorVersion = 6
	if err := c.Append(bad); err != ErrBadVersion {
		t.Errorf("wrong version: err = %v, want ErrBadVersion", err)
	}
	// Wrong reward.
	bad = c.NewTemplate(1_525_000_240, AddressFromString("m"), nil, nil)
	bad.Coinbase.Amount++
	if err := c.Append(bad); !errorsIs(err, ErrBadCoinbase) {
		t.Errorf("wrong reward: err = %v, want ErrBadCoinbase", err)
	}
	// Not a coinbase.
	bad = c.NewTemplate(1_525_000_240, AddressFromString("m"), nil, nil)
	bad.Coinbase.Coinbase = false
	if err := c.Append(bad); !errorsIs(err, ErrBadCoinbase) {
		t.Errorf("non-coinbase: err = %v, want ErrBadCoinbase", err)
	}
}

func errorsIs(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestChainRejectsUnworkedBlock(t *testing.T) {
	p := testParams()
	p.MinDifficulty = 1 << 28 // effectively unmineable in a test
	c, _ := NewChain(p, 1_525_000_000, AddressFromString("g"))
	b := c.NewTemplate(1_525_000_120, AddressFromString("m"), nil, nil)
	if err := c.Append(b); !errorsIs(err, ErrBadPoW) {
		t.Errorf("unworked block: err = %v, want ErrBadPoW", err)
	}
}

func TestTimestampMedianRule(t *testing.T) {
	c, _ := NewChain(testParams(), 1_525_000_000, AddressFromString("g"))
	ts := uint64(1_525_000_000)
	for i := 0; i < 5; i++ {
		ts += 120
		mineOnto(t, c, ts, AddressFromString("m"), []byte{byte(i)})
	}
	// A block whose timestamp is at/below the trailing median must fail.
	b := c.NewTemplate(1_525_000_000, AddressFromString("m"), nil, nil)
	h, _ := cryptonight.NewHasher(c.Params().PowVariant)
	diff := c.NextDifficulty()
	for n := uint32(0); ; n++ {
		b.Nonce = n
		if cryptonight.CheckDifficulty(b.PowHash(h), diff) {
			break
		}
	}
	if err := c.Append(b); err != ErrBadTimestamp {
		t.Errorf("stale timestamp: err = %v, want ErrBadTimestamp", err)
	}
}

func TestNextDifficultyRisesWithFasterBlocks(t *testing.T) {
	// Blocks arriving every 60 s against a 120 s target must raise
	// difficulty relative to on-target arrivals.
	mk := func(interval uint64) uint64 {
		var ts, cum []uint64
		d := uint64(1000)
		for i := uint64(0); i < 100; i++ {
			ts = append(ts, i*interval)
			if i == 0 {
				cum = append(cum, d)
			} else {
				cum = append(cum, cum[i-1]+d)
			}
		}
		return NextDifficulty(ts, cum, 120, 720, 60, 1)
	}
	fast, slow, on := mk(60), mk(240), mk(120)
	if !(fast > on && on > slow) {
		t.Errorf("difficulty ordering violated: fast=%d on=%d slow=%d", fast, on, slow)
	}
}

func TestNextDifficultyWindowing(t *testing.T) {
	// Only the trailing window may matter.
	var ts, cum []uint64
	for i := uint64(0); i < 200; i++ {
		ts = append(ts, i*120)
		cum = append(cum, (i+1)*1000)
	}
	full := NextDifficulty(ts, cum, 120, 50, 5, 1)
	tail := NextDifficulty(ts[150:], cum[150:], 120, 50, 5, 1)
	if full != tail {
		t.Errorf("windowed difficulty %d != tail-only %d", full, tail)
	}
}

func TestChainEmissionAccounting(t *testing.T) {
	c, _ := NewChain(testParams(), 1_525_000_000, AddressFromString("g"))
	before := c.Generated()
	want := c.BaseReward()
	mineOnto(t, c, 1_525_000_120, AddressFromString("m"), nil)
	if got := c.Generated() - before; got != want {
		t.Errorf("emission delta = %d, want %d", got, want)
	}
}

func TestBlocksRange(t *testing.T) {
	c, _ := NewChain(testParams(), 1_525_000_000, AddressFromString("g"))
	ts := uint64(1_525_000_000)
	for i := 0; i < 4; i++ {
		ts += 120
		mineOnto(t, c, ts, AddressFromString("m"), []byte{byte(i)})
	}
	got := c.Blocks(1, 3)
	if len(got) != 2 {
		t.Fatalf("Blocks(1,3) returned %d blocks", len(got))
	}
	if got[0].ID() != c.BlockByHeight(1).ID() {
		t.Error("range does not start at requested height")
	}
	if c.Blocks(3, 2) != nil {
		t.Error("inverted range must be empty")
	}
	if got := c.Blocks(2, 99); len(got) != 3 {
		t.Errorf("clamped range len = %d, want 3", len(got))
	}
}

func BenchmarkHashingBlob(b *testing.B) {
	blk := &Block{
		Header:   Header{MajorVersion: 7, MinorVersion: 7, Timestamp: 1525000000},
		Coinbase: NewCoinbase(1000, AddressFromString("pool"), 60, []byte{1, 2}),
		TxHashes: make([][32]byte, 16),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.HashingBlob()
	}
}
