package blockchain

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cryptonight"
	"repro/internal/keccak"
	"repro/internal/merkle"
	"repro/internal/varint"
)

// Header is the Monero-style block header (Figure 1 of the paper):
// versions, timestamp, pointer to the previous block, and the PoW nonce.
type Header struct {
	MajorVersion uint64
	MinorVersion uint64
	Timestamp    uint64 // UNIX seconds
	PrevHash     [32]byte
	Nonce        uint32
}

// NonceOffset is the byte offset of the nonce within the hashing blob. The
// miner mutates exactly these four bytes while searching; pools rely on the
// offset when splicing client nonces back into templates, and Coinhive's
// obfuscation XORs the blob a few bytes further in (see internal/stratum).
func (h Header) NonceOffset() int {
	return varint.Len(h.MajorVersion) + varint.Len(h.MinorVersion) + varint.Len(h.Timestamp) + 32
}

// appendHeader serialises the header fields in wire order.
func (h Header) appendHeader(dst []byte) []byte {
	dst = varint.Append(dst, h.MajorVersion)
	dst = varint.Append(dst, h.MinorVersion)
	dst = varint.Append(dst, h.Timestamp)
	dst = append(dst, h.PrevHash[:]...)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], h.Nonce)
	return append(dst, n[:]...)
}

// Block bundles a header with its coinbase transaction and the hashes of
// the mempool transactions it includes. Full transaction bodies for
// non-coinbase transactions live in the transaction pool; consensus only
// needs their hashes (they are the Merkle leaves).
type Block struct {
	Header
	Coinbase Transaction
	TxHashes [][32]byte
}

// NumTransactions counts all transactions including the coinbase.
func (b *Block) NumTransactions() int { return 1 + len(b.TxHashes) }

// MerkleRoot computes the CryptoNote tree hash over the coinbase hash
// followed by the included transaction hashes. The common simulation case —
// a coinbase-only block — reduces to the coinbase hash with no allocation;
// small transaction sets gather their leaves on the stack.
func (b *Block) MerkleRoot() [32]byte {
	if len(b.TxHashes) == 0 {
		return b.Coinbase.Hash()
	}
	var stack [8]merkle.Hash
	var leaves []merkle.Hash
	if n := b.NumTransactions(); n <= len(stack) {
		leaves = stack[:0]
	} else {
		leaves = make([]merkle.Hash, 0, n)
	}
	leaves = append(leaves, b.Coinbase.Hash())
	leaves = append(leaves, b.TxHashes...)
	return merkle.TreeHash(leaves)
}

// HashingBlob returns the PoW input: header bytes, Merkle root, and the
// transaction count. This is exactly the "PoW Input" of the paper's
// Figure 1 and the blob that pools push to web miners as jobs.
func (b *Block) HashingBlob() []byte {
	return b.AppendHashingBlob(make([]byte, 0, 128))
}

// AppendHashingBlob appends the PoW input to dst, reusing its capacity; the
// pool's template refresh and the chain's append path pass scratch buffers
// so the hot path allocates nothing.
func (b *Block) AppendHashingBlob(dst []byte) []byte {
	return b.appendBlobWithRoot(dst, b.MerkleRoot())
}

// appendBlobWithRoot serialises the PoW input given an already-computed
// Merkle root, letting callers that also cache the root pay for it once.
func (b *Block) appendBlobWithRoot(dst []byte, root [32]byte) []byte {
	dst = b.Header.appendHeader(dst)
	dst = append(dst, root[:]...)
	return varint.Append(dst, uint64(b.NumTransactions()))
}

// maxBlobSize bounds a serialised hashing blob: three max-width varints,
// prev hash, nonce, Merkle root and the tx-count varint. Stack buffers of
// this size make ID computation allocation-free.
const maxBlobSize = 10 + 10 + 10 + 32 + 4 + 32 + 10

// ID returns the block identifier: Keccak-256 over the hashing blob
// prefixed with its length (as Monero's get_block_hash does). The blob is
// built in a stack buffer, so computing an ID allocates nothing.
func (b *Block) ID() [32]byte {
	var buf [maxBlobSize]byte
	return IDFromBlob(b.AppendHashingBlob(buf[:0]))
}

// IDFromBlob hashes a prepared hashing blob into its block identifier.
// Callers that already hold the blob (the chain's append path, the §4.2
// watcher) skip re-serialising the block.
func IDFromBlob(blob []byte) [32]byte {
	var buf [maxBlobSize + 2]byte
	pre := varint.Append(buf[:0], uint64(len(blob)))
	return keccak.Sum256(append(pre, blob...))
}

// PowHash evaluates the CryptoNight hash of the hashing blob.
func (b *Block) PowHash(h *cryptonight.Hasher) [32]byte {
	return h.Sum(b.HashingBlob())
}

// Serialize appends the full wire encoding of the block.
func (b *Block) Serialize(dst []byte) []byte {
	dst = b.Header.appendHeader(dst)
	dst = b.Coinbase.Serialize(dst)
	dst = varint.Append(dst, uint64(len(b.TxHashes)))
	for _, h := range b.TxHashes {
		dst = append(dst, h[:]...)
	}
	return dst
}

// DeserializeBlock parses a block from buf, returning leftover bytes.
func DeserializeBlock(buf []byte) (*Block, []byte, error) {
	var b Block
	var err error
	rd := func() uint64 {
		if err != nil {
			return 0
		}
		v, n, e := varint.Decode(buf)
		if e != nil {
			err = e
			return 0
		}
		buf = buf[n:]
		return v
	}
	b.MajorVersion = rd()
	b.MinorVersion = rd()
	b.Timestamp = rd()
	if err == nil {
		if len(buf) < 36 {
			err = varint.ErrTruncated
		} else {
			copy(b.PrevHash[:], buf[:32])
			b.Nonce = binary.LittleEndian.Uint32(buf[32:36])
			buf = buf[36:]
		}
	}
	if err != nil {
		return nil, nil, fmt.Errorf("blockchain: bad block header: %w", err)
	}
	cb, rest, err := DeserializeTransaction(buf)
	if err != nil {
		return nil, nil, err
	}
	b.Coinbase = cb
	buf = rest
	n, used, err := varint.Decode(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("blockchain: bad tx count: %w", err)
	}
	buf = buf[used:]
	if uint64(len(buf)) < n*32 {
		return nil, nil, fmt.Errorf("blockchain: truncated tx hashes: %w", varint.ErrTruncated)
	}
	b.TxHashes = make([][32]byte, n)
	for i := range b.TxHashes {
		copy(b.TxHashes[i][:], buf[:32])
		buf = buf[32:]
	}
	return &b, buf, nil
}

// ParseHashingBlob splits a raw PoW input into header, Merkle root, and
// transaction count. The paper's §4.2 watcher applies this to the jobs a
// pool hands out, extracting the embedded Merkle root for attribution.
func ParseHashingBlob(blob []byte) (Header, [32]byte, uint64, error) {
	var h Header
	var root [32]byte
	var err error
	rd := func() uint64 {
		if err != nil {
			return 0
		}
		v, n, e := varint.Decode(blob)
		if e != nil {
			err = e
			return 0
		}
		blob = blob[n:]
		return v
	}
	h.MajorVersion = rd()
	h.MinorVersion = rd()
	h.Timestamp = rd()
	if err == nil {
		if len(blob) < 36+32 {
			err = varint.ErrTruncated
		} else {
			copy(h.PrevHash[:], blob[:32])
			h.Nonce = binary.LittleEndian.Uint32(blob[32:36])
			copy(root[:], blob[36:68])
			blob = blob[68:]
		}
	}
	numTx := rd()
	if err != nil {
		return Header{}, root, 0, fmt.Errorf("blockchain: bad hashing blob: %w", err)
	}
	if len(blob) != 0 {
		return Header{}, root, 0, fmt.Errorf("blockchain: %d trailing bytes in hashing blob", len(blob))
	}
	return h, root, numTx, nil
}

// SpliceNonce overwrites the nonce bytes inside a raw hashing blob without
// reparsing it, as miners do per attempt.
func SpliceNonce(blob []byte, nonceOffset int, nonce uint32) {
	binary.LittleEndian.PutUint32(blob[nonceOffset:], nonce)
}
