package blockchain

import (
	"math/bits"
	"slices"
)

// NextDifficulty implements the Monero-style windowed retarget: take the
// last window timestamps and cumulative difficulties, sort the timestamps,
// trim cut outliers from each end, and scale total work over the trimmed
// span to the target block time.
//
// timestamps[i] and cumulative[i] must describe the same block; cumulative
// difficulty is the sum of all block difficulties up to and including that
// block. target is the desired seconds per block.
func NextDifficulty(timestamps []uint64, cumulative []uint64, target uint64, window, cut int, minDiff uint64) uint64 {
	return nextDifficulty(append([]uint64(nil), timestamps...), cumulative, target, window, cut, minDiff)
}

// nextDifficulty is NextDifficulty for callers that own the timestamp slice
// and allow it to be sorted in place; the chain's append path passes a
// reusable scratch buffer here so a retarget allocates nothing.
func nextDifficulty(timestamps []uint64, cumulative []uint64, target uint64, window, cut int, minDiff uint64) uint64 {
	n := len(timestamps)
	if n != len(cumulative) {
		panic("blockchain: timestamps/cumulative length mismatch")
	}
	if n <= 1 {
		return max64(minDiff, 1)
	}
	if n > window {
		timestamps = timestamps[n-window:]
		cumulative = cumulative[n-window:]
		n = window
	}
	ts := timestamps
	slices.Sort(ts)

	lo, hi := 0, n-1
	if n > 2*cut+2 {
		lo, hi = cut, n-1-cut
	}
	span := ts[hi] - ts[lo]
	if span == 0 {
		span = 1
	}
	// Attribute work over the same trimmed index range (cumulative
	// difficulty is monotone, so the unsorted indices are safe); counting
	// the full window's work against the trimmed span would bias the
	// retarget ~window/(window−2·cut) high and hold the block rate below
	// target.
	work := cumulative[hi] - cumulative[lo]
	if work == 0 {
		work = 1
	}
	// next = ceil(work * target / span), computed in 128 bits.
	hiP, loP := bits.Mul64(work, target)
	if hiP >= span {
		return ^uint64(0) // saturate rather than overflow
	}
	q, r := bits.Div64(hiP, loP, span)
	if r != 0 {
		q++
	}
	return max64(q, max64(minDiff, 1))
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
