package blockchain

import (
	"bytes"
	"fmt"

	"repro/internal/keccak"
	"repro/internal/varint"
)

// Address identifies a wallet. Real Monero addresses are one-time keys; for
// attribution purposes an opaque 32-byte public key is sufficient.
type Address [32]byte

// AddressFromString derives a deterministic Address from a label, which
// keeps fixtures and examples readable ("coinhive-wallet", "solo-miner-3").
func AddressFromString(s string) Address {
	return keccak.Sum256([]byte("address:" + s))
}

func (a Address) String() string { return fmt.Sprintf("%x…%x", a[:4], a[28:]) }

// Transaction is a simplified CryptoNote transaction. Non-coinbase
// transactions carry only what the measurements need: a stable identity and
// a fee. Coinbase transactions carry the reward, the payee and the
// pool-controlled Extra field (tx_extra), which pools vary per backend to
// generate distinct PoW inputs — the effect the paper exploits when it
// observes "at most 128 different PoW inputs" across Coinhive's endpoints.
type Transaction struct {
	Version    uint64
	UnlockTime uint64
	Coinbase   bool
	Amount     uint64  // coinbase: block reward incl. fees
	To         Address // coinbase payee
	Fee        uint64  // non-coinbase miner fee
	Extra      []byte  // tx_extra: pool nonce / arbitrary tags
	Payload    []byte  // opaque body standing in for inputs/outputs
}

// NewCoinbase builds the miner-reward transaction for a block.
func NewCoinbase(reward uint64, to Address, unlockTime uint64, extra []byte) Transaction {
	return Transaction{
		Version:    2,
		UnlockTime: unlockTime,
		Coinbase:   true,
		Amount:     reward,
		To:         to,
		Extra:      append([]byte(nil), extra...),
	}
}

// Serialize appends the canonical wire encoding of t to dst.
func (t Transaction) Serialize(dst []byte) []byte {
	dst = varint.Append(dst, t.Version)
	dst = varint.Append(dst, t.UnlockTime)
	if t.Coinbase {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = varint.Append(dst, t.Amount)
	dst = append(dst, t.To[:]...)
	dst = varint.Append(dst, t.Fee)
	dst = varint.Append(dst, uint64(len(t.Extra)))
	dst = append(dst, t.Extra...)
	dst = varint.Append(dst, uint64(len(t.Payload)))
	dst = append(dst, t.Payload...)
	return dst
}

// DeserializeTransaction parses a transaction from buf, returning the
// remaining bytes.
func DeserializeTransaction(buf []byte) (Transaction, []byte, error) {
	var t Transaction
	var err error
	rd := func() uint64 {
		if err != nil {
			return 0
		}
		v, n, e := varint.Decode(buf)
		if e != nil {
			err = e
			return 0
		}
		buf = buf[n:]
		return v
	}
	t.Version = rd()
	t.UnlockTime = rd()
	if err == nil {
		if len(buf) < 1 {
			err = varint.ErrTruncated
		} else {
			t.Coinbase = buf[0] == 1
			buf = buf[1:]
		}
	}
	t.Amount = rd()
	if err == nil {
		if len(buf) < 32 {
			err = varint.ErrTruncated
		} else {
			copy(t.To[:], buf[:32])
			buf = buf[32:]
		}
	}
	t.Fee = rd()
	ne := rd()
	if err == nil {
		if uint64(len(buf)) < ne {
			err = varint.ErrTruncated
		} else {
			t.Extra = append([]byte(nil), buf[:ne]...)
			buf = buf[ne:]
		}
	}
	np := rd()
	if err == nil {
		if uint64(len(buf)) < np {
			err = varint.ErrTruncated
		} else {
			t.Payload = append([]byte(nil), buf[:np]...)
			buf = buf[np:]
		}
	}
	if err != nil {
		return Transaction{}, nil, fmt.Errorf("blockchain: bad transaction: %w", err)
	}
	return t, buf, nil
}

// Hash returns the transaction identifier (Keccak-256 of the wire form).
// Typical transactions (coinbases with a short tx_extra) serialise into a
// stack buffer, keeping the template and block-ID hot paths allocation-free.
func (t Transaction) Hash() [32]byte {
	var buf [128]byte
	return keccak.Sum256(t.Serialize(buf[:0]))
}

// Equal reports deep equality.
func (t Transaction) Equal(o Transaction) bool {
	return t.Version == o.Version && t.UnlockTime == o.UnlockTime &&
		t.Coinbase == o.Coinbase && t.Amount == o.Amount && t.To == o.To &&
		t.Fee == o.Fee && bytes.Equal(t.Extra, o.Extra) && bytes.Equal(t.Payload, o.Payload)
}
