package blockchain_test

import (
	"testing"

	"repro/internal/benchcore"
	"repro/internal/blockchain"
)

// The benchmark bodies live in internal/benchcore, shared with cmd/bench so
// the committed BENCH_core.json measures exactly these workloads.

// BenchmarkNewTemplate measures the full per-slot cost a pool pays on a tip
// change: assembling the template and deriving its hashing blob.
func BenchmarkNewTemplate(b *testing.B) { benchcore.NewTemplate(b) }

// BenchmarkBlockID measures block-identifier hashing, the dominant Keccak
// consumer on the append path.
func BenchmarkBlockID(b *testing.B) { benchcore.BlockID(b) }

// BenchmarkAppendUnchecked measures the simulation's background-miner block
// path end to end (template, dup check, ID computation, bookkeeping).
func BenchmarkAppendUnchecked(b *testing.B) { benchcore.AppendUnchecked(b) }

// Block-ID hashing is the dominant Keccak consumer on the append path; the
// perf contract on the 1-CPU CI box is structural: zero allocations per ID.
func TestBlockIDAllocatesNothing(t *testing.T) {
	c := benchcore.NewBenchChain(t)
	blk := c.NewTemplate(1524710000, blockchain.AddressFromString("pool"), []byte{1, 2, 3}, nil)
	if avg := testing.AllocsPerRun(200, func() { blk.ID() }); avg != 0 {
		t.Errorf("Block.ID: %.1f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { blk.Coinbase.Hash() }); avg != 0 {
		t.Errorf("Transaction.Hash: %.1f allocs/op, want 0", avg)
	}
	var blob []byte
	blob = blk.AppendHashingBlob(blob[:0]) // warm the scratch
	if avg := testing.AllocsPerRun(200, func() { blob = blk.AppendHashingBlob(blob[:0]) }); avg != 0 {
		t.Errorf("AppendHashingBlob into scratch: %.1f allocs/op, want 0", avg)
	}
}

// The append path must reuse its serialisation and retarget scratch: at
// steady state an AppendUnchecked performs a bounded number of small
// allocations (the template handed in aside), independent of chain length.
func TestAppendSteadyStateAllocsBounded(t *testing.T) {
	c := benchcore.NewBenchChain(t)
	ts := uint64(1524710000)
	avg := testing.AllocsPerRun(100, func() {
		ts += 120
		b := c.NewTemplate(ts, blockchain.AddressFromString("bg"),
			[]byte{byte(ts), byte(ts >> 8), byte(ts >> 16), byte(ts >> 24)}, nil)
		if err := c.AppendUnchecked(b); err != nil {
			t.Fatal(err)
		}
	})
	// Template + coinbase extra + amortised growth of the per-height slices.
	if avg > 8 {
		t.Errorf("AppendUnchecked steady state: %.1f allocs/op, want ≤ 8", avg)
	}
}
