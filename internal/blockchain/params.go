// Package blockchain implements a Monero-style blockchain: varint wire
// format, CryptoNote tree-hashed transaction sets, coinbase-carried emission
// with the (M−A)>>19 reward curve, a windowed difficulty retarget aiming at
// the 120-second block rate, and a verifying chain store.
//
// This is the substrate for the paper's §4.2 methodology: a pool's PoW
// input embeds the Merkle root of the transactions it is trying to mine, so
// matching that root against the transaction set of the block actually
// mined on top of the same predecessor uniquely attributes the block to the
// pool (the coinbase transaction — the first tree leaf — pays that pool's
// wallet, so no other miner's tree can collide).
package blockchain

import (
	"time"

	"repro/internal/cryptonight"
)

// AtomicPerXMR is the number of atomic units per Monero (piconero).
const AtomicPerXMR = 1_000_000_000_000

// Params fixes the consensus rules of a chain instance.
type Params struct {
	// TargetBlockTime is the desired inter-block interval (Monero: 120 s).
	TargetBlockTime time.Duration
	// DifficultyWindow is the number of trailing blocks examined by the
	// retarget (Monero: 720).
	DifficultyWindow int
	// DifficultyCut is the number of outlier blocks trimmed from *each* end
	// of the sorted timestamp window (Monero: 60).
	DifficultyCut int
	// MinDifficulty floors the retarget output.
	MinDifficulty uint64
	// MoneySupply is the emission ceiling M in atomic units; the base block
	// reward is (M − alreadyGenerated) >> EmissionSpeedFactor.
	MoneySupply uint64
	// EmissionSpeedFactor is Monero's emission shift (20 pre-v2; the
	// 2018-era chain used 19 after the v2 fork block-time change).
	EmissionSpeedFactor uint
	// TailEmission is the perpetual minimum block reward.
	TailEmission uint64
	// PowVariant selects the CryptoNight profile used for verification.
	PowVariant cryptonight.Variant
	// MajorVersion/MinorVersion are the header versions (the paper's
	// Figure 1 shows maj 7, min 7 — the 2018-era Monero v7 fork).
	MajorVersion, MinorVersion uint64
}

// MainnetLike returns parameters matching the 2018-era Monero mainnet
// except for the PoW profile, which callers pick per workload.
func MainnetLike(v cryptonight.Variant) Params {
	return Params{
		TargetBlockTime:     120 * time.Second,
		DifficultyWindow:    720,
		DifficultyCut:       60,
		MinDifficulty:       1,
		MoneySupply:         ^uint64(0), // effectively uncapped, as Monero's 2^64-1
		EmissionSpeedFactor: 19,
		TailEmission:        600_000_000_000, // 0.6 XMR tail emission
		PowVariant:          v,
		MajorVersion:        7,
		MinorVersion:        7,
	}
}

// SimParams returns parameters tuned for fast simulation: same structure,
// reduced difficulty window so retargets react within short simulations.
func SimParams() Params {
	p := MainnetLike(cryptonight.Test)
	p.DifficultyWindow = 60
	p.DifficultyCut = 5
	return p
}

// BaseReward computes the block reward for a chain that has already emitted
// alreadyGenerated atomic units.
func (p Params) BaseReward(alreadyGenerated uint64) uint64 {
	if alreadyGenerated >= p.MoneySupply {
		return p.TailEmission
	}
	r := (p.MoneySupply - alreadyGenerated) >> p.EmissionSpeedFactor
	if r < p.TailEmission {
		return p.TailEmission
	}
	return r
}
