package blockchain

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"repro/internal/cryptonight"
)

// TimestampMedianWindow is the number of trailing blocks whose median
// timestamp a new block must exceed (Monero: 60).
const TimestampMedianWindow = 60

// Verification errors.
var (
	ErrBadPrev      = errors.New("blockchain: previous hash does not match tip")
	ErrBadVersion   = errors.New("blockchain: header version mismatch")
	ErrBadTimestamp = errors.New("blockchain: timestamp not above trailing median")
	ErrBadPoW       = errors.New("blockchain: proof of work below difficulty")
	ErrBadCoinbase  = errors.New("blockchain: invalid coinbase transaction")
	ErrKnownBlock   = errors.New("blockchain: block already in chain")
)

// Chain is a verifying, append-only block store. Each block's identifier
// and Merkle root are computed exactly once, at append time, and cached by
// height; every later consumer (tip polling, successor lookups, the §4.2
// watcher's root comparison) reads the cache instead of re-hashing.
type Chain struct {
	mu        sync.RWMutex
	params    Params // immutable after NewChain; readable without mu
	blocks    []*Block
	index     map[[32]byte]uint64 // block ID -> height
	ids       [][32]byte          // cached block IDs by height
	roots     [][32]byte          // cached Merkle roots by height
	diffs     []uint64            // per-block difficulty at acceptance
	cumDiff   []uint64            // cumulative difficulty
	generated uint64              // atomic units emitted so far
	tipID     [32]byte            // cached ID of blocks[len-1]
	nextDiff  uint64              // cached next-block difficulty
	tsScratch []uint64            // retarget/median scratch, reused under mu

	subMu  sync.Mutex
	subSeq int
	subs   []tipSub // copy-on-write: rebuilt on (un)subscribe, never mutated
}

// TipListener is notified after a block lands, with the new tip ID and its
// height. Listeners run synchronously on the appending goroutine, after the
// chain lock is released; they may read the chain and schedule work but
// must not block indefinitely.
type TipListener func(tip [32]byte, height uint64)

type tipSub struct {
	id int
	fn TipListener
}

// Subscribe registers a tip-change listener and returns its removal
// function. This is the event-driven alternative to polling TipID: the
// simulation watcher does work per block instead of per clock tick.
func (c *Chain) Subscribe(fn TipListener) (unsubscribe func()) {
	c.subMu.Lock()
	c.subSeq++
	id := c.subSeq
	next := make([]tipSub, 0, len(c.subs)+1)
	next = append(next, c.subs...)
	c.subs = append(next, tipSub{id: id, fn: fn})
	c.subMu.Unlock()
	return func() {
		c.subMu.Lock()
		next := make([]tipSub, 0, len(c.subs))
		for _, s := range c.subs {
			if s.id != id {
				next = append(next, s)
			}
		}
		c.subs = next
		c.subMu.Unlock()
	}
}

// notifyTip invokes listeners outside every chain lock. The subscriber
// slice is copy-on-write, so grabbing the current snapshot costs a field
// read and notifying allocates nothing per block. With concurrent appenders
// the per-listener delivery order follows append order only as closely as
// goroutine scheduling allows; the discrete-event simulation is
// single-threaded, where delivery is deterministic.
func (c *Chain) notifyTip(tip [32]byte, height uint64) {
	c.subMu.Lock()
	subs := c.subs
	c.subMu.Unlock()
	for _, s := range subs {
		s.fn(tip, height)
	}
}

// NewChain creates a chain holding only a genesis block with the given
// timestamp, paying the genesis reward to `to`.
func NewChain(p Params, genesisTimestamp uint64, to Address) (*Chain, error) {
	// Borrow-and-return validates the PoW variant up front and warms the
	// pool that append()'s out-of-lock verification draws from.
	h, err := cryptonight.GetHasher(p.PowVariant)
	if err != nil {
		return nil, err
	}
	cryptonight.PutHasher(h)
	c := &Chain{params: p, index: make(map[[32]byte]uint64)}
	g := &Block{
		Header: Header{
			MajorVersion: p.MajorVersion,
			MinorVersion: p.MinorVersion,
			Timestamp:    genesisTimestamp,
		},
		Coinbase: NewCoinbase(p.BaseReward(0), to, 0, []byte("genesis")),
	}
	root := g.MerkleRoot()
	c.blocks = append(c.blocks, g)
	c.tipID = g.ID()
	c.index[c.tipID] = 0
	c.ids = append(c.ids, c.tipID)
	c.roots = append(c.roots, root)
	c.diffs = append(c.diffs, 1)
	c.cumDiff = append(c.cumDiff, 1)
	c.generated = g.Coinbase.Amount
	c.nextDiff = c.recomputeDifficultyLocked()
	return c, nil
}

// Params returns the consensus parameters.
func (c *Chain) Params() Params { return c.params }

// PreloadEmission sets the already-generated coin count, emulating a chain
// with history (the 2018 Monero chain had emitted ~16M XMR, which fixes the
// ~4-5 XMR block reward the paper's revenue numbers build on). It may only
// be called while the chain holds nothing but its genesis block.
func (c *Chain) PreloadEmission(alreadyGenerated uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.blocks) != 1 {
		panic("blockchain: PreloadEmission after blocks were appended")
	}
	c.generated = alreadyGenerated
}

// Height returns the tip height (genesis is height 0).
func (c *Chain) Height() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return uint64(len(c.blocks) - 1)
}

// Tip returns the most recent block.
func (c *Chain) Tip() *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[len(c.blocks)-1]
}

// TipID returns the most recent block's identifier (cached: callers poll
// it at high frequency to detect tip changes).
func (c *Chain) TipID() [32]byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tipID
}

// Generated returns the total atomic units emitted so far.
func (c *Chain) Generated() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.generated
}

// BlockByHeight returns the block at height h, or nil.
func (c *Chain) BlockByHeight(h uint64) *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if h >= uint64(len(c.blocks)) {
		return nil
	}
	return c.blocks[h]
}

// BlockByID returns the block with the given identifier and its height.
func (c *Chain) BlockByID(id [32]byte) (*Block, uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h, ok := c.index[id]
	if !ok {
		return nil, 0, false
	}
	return c.blocks[h], h, true
}

// SuccessorOf returns the block mined directly on top of the block with the
// given identifier. This is the §4.2 primitive: given the prev-pointer from
// a pool's PoW input, fetch the block that actually extended it.
func (c *Chain) SuccessorOf(id [32]byte) (*Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h, ok := c.index[id]
	if !ok || h+1 >= uint64(len(c.blocks)) {
		return nil, false
	}
	return c.blocks[h+1], true
}

// SuccessorInfo is the append-time-cached summary of the block mined on top
// of a given block: everything the §4.2 attribution sweep needs, with no
// hashing.
type SuccessorInfo struct {
	Height    uint64
	Timestamp uint64
	Reward    uint64
	ID        [32]byte
	Root      [32]byte
}

// SuccessorInfoOf is SuccessorOf without the re-hashing: the successor's ID
// and Merkle root come from the chain's append-time cache.
func (c *Chain) SuccessorInfoOf(id [32]byte) (SuccessorInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h, ok := c.index[id]
	if !ok || h+1 >= uint64(len(c.blocks)) {
		return SuccessorInfo{}, false
	}
	succ := c.blocks[h+1]
	return SuccessorInfo{
		Height:    h + 1,
		Timestamp: succ.Timestamp,
		Reward:    succ.Coinbase.Amount,
		ID:        c.ids[h+1],
		Root:      c.roots[h+1],
	}, true
}

// IDByHeight returns the cached identifier of the block at height h.
func (c *Chain) IDByHeight(h uint64) ([32]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if h >= uint64(len(c.ids)) {
		return [32]byte{}, false
	}
	return c.ids[h], true
}

// NextDifficulty returns the difficulty required of the next block. The
// value only changes when a block lands, so it is computed once per append
// and served from cache here — callers on the share-verification hot path
// (one NextDifficulty per submitted share) pay a field read, not an
// O(window) retarget.
func (c *Chain) NextDifficulty() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nextDiff
}

// recomputeDifficultyLocked runs the windowed retarget over scratch buffers.
// The caller holds the write lock.
func (c *Chain) recomputeDifficultyLocked() uint64 {
	// Only the trailing retarget window matters; materialising every
	// timestamp since genesis would make each call O(chain length).
	n := len(c.blocks)
	start := 0
	if n > c.params.DifficultyWindow {
		start = n - c.params.DifficultyWindow
	}
	ts := c.timestampScratchLocked(n - start)
	for i := start; i < n; i++ {
		ts[i-start] = c.blocks[i].Timestamp
	}
	return nextDifficulty(ts, c.cumDiff[start:], uint64(c.params.TargetBlockTime.Seconds()),
		c.params.DifficultyWindow, c.params.DifficultyCut, c.params.MinDifficulty)
}

// timestampScratchLocked returns an n-length reusable uint64 buffer.
func (c *Chain) timestampScratchLocked(n int) []uint64 {
	if cap(c.tsScratch) < n {
		c.tsScratch = make([]uint64, 0, n+n/2)
	}
	return c.tsScratch[:n]
}

// DifficultyOf returns the difficulty the block at height h was held to.
func (c *Chain) DifficultyOf(h uint64) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if h >= uint64(len(c.diffs)) {
		return 0
	}
	return c.diffs[h]
}

// BaseReward returns the reward the next block's coinbase must claim.
func (c *Chain) BaseReward() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.params.BaseReward(c.generated)
}

// NewTemplate assembles an unmined block on top of the current tip. The
// caller (a pool or solo miner) supplies the timestamp, payee, tx_extra and
// the mempool transaction hashes to include.
func (c *Chain) NewTemplate(timestamp uint64, to Address, extra []byte, txHashes [][32]byte) *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	height := uint64(len(c.blocks))
	return &Block{
		Header: Header{
			MajorVersion: c.params.MajorVersion,
			MinorVersion: c.params.MinorVersion,
			Timestamp:    timestamp,
			PrevHash:     c.tipID, // cached — recomputing tip.ID() costs three Keccaks per template
		},
		Coinbase: NewCoinbase(c.params.BaseReward(c.generated), to, height+60, extra),
		TxHashes: append([][32]byte(nil), txHashes...),
	}
}

// medianTimestampLocked returns the median of the trailing
// TimestampMedianWindow block timestamps. The caller holds the write lock.
func (c *Chain) medianTimestampLocked() uint64 {
	n := len(c.blocks)
	w := TimestampMedianWindow
	if n < w {
		w = n
	}
	ts := c.timestampScratchLocked(w)
	for i := 0; i < w; i++ {
		ts[i] = c.blocks[n-w+i].Timestamp
	}
	slices.Sort(ts)
	return ts[len(ts)/2]
}

// Append verifies b against consensus rules and extends the chain.
func (c *Chain) Append(b *Block) error {
	tip, height, err := c.append(b, true)
	if err != nil {
		return err
	}
	c.notifyTip(tip, height)
	return nil
}

// AppendUnchecked extends the chain without PoW verification. The
// discrete-event network simulator uses this for background miners whose
// blocks are sampled from the difficulty-implied arrival process rather
// than hashed (hashing half a million simulated strangers' blocks would
// dominate runtime without changing any measured quantity).
func (c *Chain) AppendUnchecked(b *Block) error {
	tip, height, err := c.append(b, false)
	if err != nil {
		return err
	}
	c.notifyTip(tip, height)
	return nil
}

// blobScratch pools hashing-blob buffers so append() can serialise blocks
// without holding any lock and without allocating at steady state.
var blobScratch = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 512)
	return &b
}}

// append validates and links b. The block's Merkle root, ID and (when
// verifying) PoW hash depend only on the block's own bytes, so they are
// computed before c.mu is taken: a CryptoNight scratchpad walk costs
// hundreds of microseconds, and holding the chain lock for it would stall
// every template build and tip read behind one block's verification — the
// same verify-outside-the-lock rule the pool applies to shares. The
// chain-state checks (prev, dup, timestamp median, reward, difficulty)
// run against the then-current tip under the write lock.
func (c *Chain) append(b *Block, verifyPoW bool) (tip [32]byte, height uint64, err error) {
	if verifyPoW && (b.MajorVersion != c.params.MajorVersion || b.MinorVersion != c.params.MinorVersion) {
		return tip, 0, ErrBadVersion
	}
	// Fail fast on a stale parent before paying for serialisation and
	// hashing; the authoritative check re-runs under the write lock.
	c.mu.RLock()
	tipNow := c.tipID
	c.mu.RUnlock()
	if b.PrevHash != tipNow {
		return tip, 0, ErrBadPrev
	}

	root := b.MerkleRoot()
	bufp := blobScratch.Get().(*[]byte)
	blob := b.appendBlobWithRoot((*bufp)[:0], root)
	id := IDFromBlob(blob)
	var pow [32]byte
	if verifyPoW {
		pow = cryptonight.Sum(blob, c.params.PowVariant)
	}
	*bufp = blob
	blobScratch.Put(bufp)

	c.mu.Lock()
	defer c.mu.Unlock()
	if b.PrevHash != c.tipID {
		return tip, 0, ErrBadPrev
	}
	if _, dup := c.index[id]; dup {
		return tip, 0, ErrKnownBlock
	}
	if verifyPoW {
		if len(c.blocks) > 1 && b.Timestamp <= c.medianTimestampLocked() {
			return tip, 0, ErrBadTimestamp
		}
		if !b.Coinbase.Coinbase {
			return tip, 0, fmt.Errorf("%w: first transaction not a coinbase", ErrBadCoinbase)
		}
		// Simulated mempool transactions are fee-less, so the coinbase must
		// claim exactly the emission-curve reward (the paper likewise sums
		// block rewards when computing Coinhive's XMR turnover).
		if want := c.params.BaseReward(c.generated); b.Coinbase.Amount != want {
			return tip, 0, fmt.Errorf("%w: claims %d, want %d", ErrBadCoinbase, b.Coinbase.Amount, want)
		}
	}
	diff := c.nextDiff
	if verifyPoW {
		if !cryptonight.CheckDifficulty(pow, diff) {
			return tip, 0, fmt.Errorf("%w (difficulty %d)", ErrBadPoW, diff)
		}
	}

	height = uint64(len(c.blocks))
	c.blocks = append(c.blocks, b)
	c.tipID = id
	c.index[id] = height
	c.ids = append(c.ids, id)
	c.roots = append(c.roots, root)
	c.diffs = append(c.diffs, diff)
	c.cumDiff = append(c.cumDiff, c.cumDiff[len(c.cumDiff)-1]+diff)
	c.generated += b.Coinbase.Amount
	c.nextDiff = c.recomputeDifficultyLocked()
	return id, height, nil
}

// Blocks returns blocks in the half-open height interval [from, to).
func (c *Chain) Blocks(from, to uint64) []*Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if to > uint64(len(c.blocks)) {
		to = uint64(len(c.blocks))
	}
	if from >= to {
		return nil
	}
	out := make([]*Block, to-from)
	copy(out, c.blocks[from:to])
	return out
}
