package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/memconn"
	"repro/internal/metrics"
	"repro/internal/sharechain"
)

// acceptAll is the test verifier: structure-only, no PoW. Node tests
// exercise gossip and convergence; PoW gating has its own tests in
// sharechain and in the pool's federation suite.
func acceptAll(*sharechain.Entry) error { return nil }

// testNode is one in-process federation member: chain + node + listener.
type testNode struct {
	chain *sharechain.Chain
	node  *Node
	ln    *memconn.Listener
	reg   *metrics.Registry
}

func startNode(t *testing.T, id uint64) *testNode {
	t.Helper()
	reg := metrics.NewRegistry()
	chain := sharechain.New(sharechain.Config{Window: 64, Verify: acceptAll, Metrics: reg})
	node, err := NewNode(Config{
		NodeID:      id,
		Chain:       chain,
		Registry:    reg,
		TipInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln := memconn.Listen()
	go node.Serve(ln)
	t.Cleanup(func() { node.Close() })
	return &testNode{chain: chain, node: node, ln: ln, reg: reg}
}

// link makes a maintain a persistent outbound connection to b.
func link(a, b *testNode) {
	target := b.ln
	a.node.AddPeer("test-peer", func() (net.Conn, error) { return target.Dial() })
}

// mint creates, locally inserts and publishes one entry on n, as the
// pool's submit path would.
func mint(t *testing.T, n *testNode, token string, diff uint64, salt uint32) *sharechain.Entry {
	t.Helper()
	blob := make([]byte, 76)
	binary.LittleEndian.PutUint32(blob, salt)
	e := &sharechain.Entry{
		Height: n.chain.NextHeight(),
		Token:  token,
		Diff:   diff,
		Nonce:  salt,
		Blob:   blob,
	}
	e.Result[0] = byte(salt)
	e.Result[1] = byte(salt >> 8)
	if _, err := n.chain.Insert(e, true); err != nil {
		t.Fatalf("local insert: %v", err)
	}
	n.node.Publish(e)
	return e
}

// waitConverged polls until every chain reports the same tip over the
// same entry count, then cross-checks credit and payout vectors.
func waitConverged(t *testing.T, want int, nodes ...*testNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		tips := map[[32]byte]bool{}
		ok := true
		for _, n := range nodes {
			tip, count := n.chain.Tip()
			if count != want {
				ok = false
				break
			}
			tips[tip] = true
		}
		if ok && len(tips) == 1 {
			break
		}
		if time.Now().After(deadline) {
			for i, n := range nodes {
				tip, count := n.chain.Tip()
				t.Logf("node %d: count=%d tip=%x", i, count, tip[:8])
			}
			t.Fatalf("nodes did not converge on %d entries", want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ref := nodes[0]
	refCredit := ref.chain.CreditSnapshot()
	refPay := ref.chain.PayoutVector(1_000_000)
	for i, n := range nodes[1:] {
		if !reflect.DeepEqual(n.chain.CreditSnapshot(), refCredit) {
			t.Fatalf("node %d credit diverged: %v vs %v", i+1, n.chain.CreditSnapshot(), refCredit)
		}
		if !reflect.DeepEqual(n.chain.PayoutVector(1_000_000), refPay) {
			t.Fatalf("node %d payout vector diverged", i+1)
		}
	}
}

func TestTwoNodeGossip(t *testing.T) {
	a := startNode(t, 1)
	b := startNode(t, 2)
	link(a, b)
	for i := 0; i < 20; i++ {
		mint(t, a, fmt.Sprintf("tok%d", i%3), uint64(1+i%4), uint32(i))
	}
	waitConverged(t, 20, a, b)
	if got := b.reg.Counter("p2p.shares_ingested").Load(); got == 0 {
		t.Fatalf("b ingested nothing")
	}
	if got := a.reg.Counter("p2p.shares_gossiped").Load(); got != 20 {
		t.Fatalf("a gossiped = %d", got)
	}
}

// TestLineTopologyRelay proves rebroadcast: in a line A—B—C, entries
// minted at A reach C only if B relays ingested shares onward.
func TestLineTopologyRelay(t *testing.T) {
	a := startNode(t, 1)
	b := startNode(t, 2)
	c := startNode(t, 3)
	link(a, b)
	link(c, b)
	for i := 0; i < 15; i++ {
		mint(t, a, "alpha", 2, uint32(i))
		mint(t, c, "gamma", 3, uint32(1000+i))
	}
	waitConverged(t, 30, a, b, c)
}

// TestDisjointSlicesConverge is the headline property at the p2p layer:
// three meshed nodes each fed a disjoint slice of one share stream end
// bit-identical.
func TestDisjointSlicesConverge(t *testing.T) {
	nodes := []*testNode{startNode(t, 1), startNode(t, 2), startNode(t, 3)}
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	link(nodes[2], nodes[0])
	const total = 60
	for i := 0; i < total; i++ {
		mint(t, nodes[i%3], fmt.Sprintf("acct%d", i%5), uint64(1+i%7), uint32(i))
	}
	waitConverged(t, total, nodes...)
}

// TestKillAndResync kills one node mid-run, keeps minting on the
// survivors, then brings a fresh node (empty chain — cold restart) back
// under the same links and requires full convergence: the ranged sync
// rebuilds history from zero.
func TestKillAndResync(t *testing.T) {
	a := startNode(t, 1)
	b := startNode(t, 2)

	// c's listener is re-pointable so a's persistent dialer can reach the
	// restarted instance.
	var mu sync.Mutex
	cLn := memconn.Listen()
	dialC := func() (net.Conn, error) {
		mu.Lock()
		ln := cLn
		mu.Unlock()
		return ln.Dial()
	}
	regC := metrics.NewRegistry()
	chainC := sharechain.New(sharechain.Config{Window: 64, Verify: acceptAll, Metrics: regC})
	nodeC, err := NewNode(Config{NodeID: 3, Chain: chainC, Registry: regC, TipInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	go nodeC.Serve(cLn)

	link(a, b)
	a.node.AddPeer("c", dialC)

	c := &testNode{chain: chainC, node: nodeC, ln: cLn, reg: regC}
	for i := 0; i < 10; i++ {
		mint(t, a, "early", 2, uint32(i))
	}
	waitConverged(t, 10, a, b, c)

	// Kill c entirely: node, listener, chain state all gone.
	nodeC.Close()
	cLn.Close()

	for i := 0; i < 10; i++ {
		mint(t, b, "during-outage", 3, uint32(100+i))
	}
	waitConverged(t, 20, a, b)

	// Cold restart: fresh chain, fresh node, same identity and links.
	regC2 := metrics.NewRegistry()
	chainC2 := sharechain.New(sharechain.Config{Window: 64, Verify: acceptAll, Metrics: regC2})
	nodeC2, err := NewNode(Config{NodeID: 3, Chain: chainC2, Registry: regC2, TipInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeC2.Close()
	mu.Lock()
	cLn = memconn.Listen()
	ln2 := cLn
	mu.Unlock()
	go nodeC2.Serve(ln2)

	for i := 0; i < 5; i++ {
		mint(t, a, "late", 1, uint32(200+i))
	}
	c2 := &testNode{chain: chainC2, node: nodeC2, ln: ln2, reg: regC2}
	waitConverged(t, 25, a, b, c2)
	if got := regC2.Counter("p2p.sync_rounds").Load(); got == 0 {
		t.Fatalf("restart converged without a sync round?")
	}
	if got := a.reg.Counter("p2p.reconnects").Load(); got == 0 {
		t.Fatalf("a's dialer never counted a reconnect across c's outage")
	}
}

// runHandshake drives runConn against a scripted remote end.
func runHandshake(t *testing.T, n *Node, script func(net.Conn)) error {
	t.Helper()
	local, remote := memconn.Pipe()
	done := make(chan error, 1)
	go func() { done <- n.runConn(local) }()
	script(remote)
	select {
	case err := <-done:
		remote.Close()
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("handshake did not finish")
		return nil
	}
}

func TestHandshakeRejections(t *testing.T) {
	n := startNode(t, 77)

	// Bad protocol version.
	err := runHandshake(t, n.node, func(c net.Conn) {
		h := hello{Version: ProtocolVersion + 1, NodeID: 5}
		c.Write(AppendHelloFrame(nil, &h))
	})
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}

	// Loop-to-self: remote node ID equals our own.
	err = runHandshake(t, n.node, func(c net.Conn) {
		h := hello{Version: ProtocolVersion, NodeID: 77}
		c.Write(AppendHelloFrame(nil, &h))
	})
	if !errors.Is(err, ErrSelfConnect) {
		t.Fatalf("self connect: %v", err)
	}

	// Oversize frame in place of the hello.
	err = runHandshake(t, n.node, func(c net.Conn) {
		var hdr [frameHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[:], MaxFrameLen+1)
		c.Write(hdr[:])
	})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize: %v", err)
	}

	// A share frame before any hello is a protocol violation.
	err = runHandshake(t, n.node, func(c net.Conn) {
		c.Write(AppendShareFrame(nil, testEntry(1, "a", 1, 1)))
	})
	if !errors.Is(err, ErrUnknownFrame) {
		t.Fatalf("share-before-hello: %v", err)
	}

	if got := n.node.PeerCount(); got != 0 {
		t.Fatalf("rejected handshakes left %d peers", got)
	}
}

func TestDuplicatePeerRejected(t *testing.T) {
	a := startNode(t, 1)
	b := startNode(t, 2)
	link(a, b)
	deadline := time.Now().Add(5 * time.Second)
	for a.node.PeerCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first link never came up")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A second connection claiming b's node ID must be refused.
	err := runHandshake(t, a.node, func(c net.Conn) {
		h := hello{Version: ProtocolVersion, NodeID: 2}
		c.Write(AppendHelloFrame(nil, &h))
	})
	if !errors.Is(err, ErrDupPeer) {
		t.Fatalf("dup peer: %v", err)
	}
	if got := a.node.PeerCount(); got != 1 {
		t.Fatalf("peer count after dup rejection = %d", got)
	}
}

// TestPeerListExchange: the handshake advertises listen addresses, and
// the remote records them for mesh bootstrap.
func TestPeerListExchange(t *testing.T) {
	reg := metrics.NewRegistry()
	chain := sharechain.New(sharechain.Config{Window: 8, Verify: acceptAll, Metrics: reg})
	a, err := NewNode(Config{NodeID: 1, Chain: chain, Registry: reg,
		AdvertiseAddr: "10.0.0.1:7777", TipInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b := startNode(t, 2)
	ln := memconn.Listen()
	go a.Serve(ln)
	target := ln
	b.node.AddPeer("a", func() (net.Conn, error) { return target.Dial() })
	deadline := time.Now().Add(5 * time.Second)
	for {
		addrs := b.node.KnownAddrs()
		if len(addrs) == 1 && addrs[0] == "10.0.0.1:7777" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer list never arrived: %v", addrs)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDuplicateGossipCounted: the same entry arriving twice (mesh with
// relay) is deduped by hash, not double-credited.
func TestDuplicateGossipCounted(t *testing.T) {
	nodes := []*testNode{startNode(t, 1), startNode(t, 2), startNode(t, 3)}
	link(nodes[0], nodes[1])
	link(nodes[1], nodes[2])
	link(nodes[2], nodes[0])
	// Wait for the full mesh: with every link up, each broadcast reaches
	// a node both directly and via relay, which is what makes duplicate
	// deliveries certain rather than timing-dependent.
	deadline := time.Now().Add(5 * time.Second)
	for {
		up := 0
		for _, n := range nodes {
			up += n.node.PeerCount()
		}
		if up == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mesh never fully connected (%d/6 links)", up)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 30; i++ {
		mint(t, nodes[0], "solo", 1, uint32(i))
	}
	waitConverged(t, 30, nodes...)
	var dups uint64
	for _, n := range nodes {
		dups += n.reg.Counter("p2p.shares_duplicate").Load()
	}
	if dups == 0 {
		t.Fatalf("full mesh with relay produced zero duplicate deliveries")
	}
	// Credit must count each entry exactly once despite duplicates.
	for i, n := range nodes {
		if got := n.chain.CreditSnapshot()["solo"]; got != 30 {
			t.Fatalf("node %d credit = %d, want 30", i, got)
		}
	}
}
