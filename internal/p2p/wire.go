// Package p2p is the federation's peer layer: a small gossip protocol
// that moves share-chain entries between pool nodes over any net.Conn —
// real TCP in production, memconn in tests, so N-node convergence suites
// need no ports. The protocol is four frame kinds over the repo's
// length-prefixed framing idiom: a version-checked handshake carrying
// chain tip and peer list, share broadcast with dedupe-by-hash and
// relay, ranged catch-up sync for tip-ahead peers, and a periodic tip
// announce that turns any silent divergence into a sync round.
//
// The package sees the share-chain as data and the transport as bytes:
// layering pins it to sharechain + metrics + memconn. PoW validation of
// ingested shares happens inside sharechain's injected verifier — a
// hostile frame costs this layer only its decode.
package p2p

import (
	"encoding/binary"
	"errors"

	"repro/internal/sharechain"
)

// ProtocolVersion is checked in the handshake; mismatched peers are
// rejected before any share crosses.
const ProtocolVersion = 1

// Frame kinds. Values are wire format: never renumber, only append.
const (
	frameHello    byte = 1
	frameShare    byte = 2
	frameSyncReq  byte = 3
	frameSyncResp byte = 4
	frameTip      byte = 5
)

// Framing: [u32 length][kind byte][body], little-endian. MaxFrameLen
// bounds the body+kind; anything larger is hostile and drops the conn
// before a single byte of it is buffered.
const (
	frameHeaderLen = 4
	// MaxFrameLen bounds one frame's payload (kind byte included). A
	// sync batch of syncBatch entries at maximal blob/token sizes fits
	// with slack.
	MaxFrameLen = 1 << 20
)

// maxHelloPeers bounds the peer-list exchange in a handshake.
const maxHelloPeers = 32

// Decode errors. ErrFrameTooLarge and ErrTruncated drop the peer;
// they mark frames no honest implementation produces.
var (
	ErrFrameTooLarge = errors.New("p2p: frame exceeds MaxFrameLen")
	ErrTruncated     = errors.New("p2p: truncated frame")
	ErrUnknownFrame  = errors.New("p2p: unknown frame kind")
	ErrBadVersion    = errors.New("p2p: protocol version mismatch")
	ErrSelfConnect   = errors.New("p2p: connection loops back to self")
	ErrDupPeer       = errors.New("p2p: peer with this node ID already connected")
)

// hello is the handshake payload: protocol version, the sender's node
// identity, its share-chain tip, and the listen addresses it knows —
// the peer-list exchange that lets operators bootstrap a mesh from one
// seed address.
type hello struct {
	Version uint16
	NodeID  uint64
	Count   uint64 // share-chain entry count
	Tip     [32]byte
	Peers   []string
}

// tipAnnounce carries the sender's current chain tip; the receiver
// compares and starts a catch-up sync when it is behind.
type tipAnnounce struct {
	Count uint64
	Tip   [32]byte
}

// syncReq asks for entries with claimed height ≥ From, at most Max.
type syncReq struct {
	From uint64
	Max  uint32
}

// beginFrame reserves the length prefix and writes the kind byte;
// endFrame back-fills the length. Between the two, appenders extend dst.
//
//lint:hotpath
func beginFrame(dst []byte, kind byte) []byte {
	return append(dst, 0, 0, 0, 0, kind)
}

//lint:hotpath
func endFrame(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-frameHeaderLen))
	return dst
}

//lint:hotpath
func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

//lint:hotpath
func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

//lint:hotpath
func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendShareFrame appends one share-broadcast frame. The encode-once
// idiom from the pool's job fan-out applies here too: Publish encodes a
// frame once and every peer's writer reuses the same bytes.
//
//lint:hotpath
func AppendShareFrame(dst []byte, e *sharechain.Entry) []byte {
	start := len(dst)
	dst = beginFrame(dst, frameShare)
	dst = appendEntry(dst, e)
	return endFrame(dst, start)
}

// appendEntry writes the self-delimiting entry encoding shared by share
// and sync-response frames.
//
//lint:hotpath
func appendEntry(dst []byte, e *sharechain.Entry) []byte {
	dst = appendU64(dst, e.Height)
	dst = appendU64(dst, e.Diff)
	dst = appendU32(dst, e.Nonce)
	dst = appendU16(dst, uint16(len(e.Token)))
	dst = append(dst, e.Token...)
	dst = appendU16(dst, uint16(len(e.Blob)))
	dst = append(dst, e.Blob...)
	return append(dst, e.Result[:]...)
}

// entryWireOverhead is the fixed part of an encoded entry.
const entryWireOverhead = 8 + 8 + 4 + 2 + 2 + 32

// decodeEntry parses one entry from the front of b, returning the bytes
// consumed. Token and Blob are fresh copies: entries outlive the read
// buffer they were framed in.
func decodeEntry(b []byte) (sharechain.Entry, int, error) {
	var e sharechain.Entry
	if len(b) < entryWireOverhead {
		return e, 0, ErrTruncated
	}
	e.Height = binary.LittleEndian.Uint64(b)
	e.Diff = binary.LittleEndian.Uint64(b[8:])
	e.Nonce = binary.LittleEndian.Uint32(b[16:])
	tokLen := int(binary.LittleEndian.Uint16(b[20:]))
	rest := b[22:]
	if tokLen > sharechain.MaxTokenLen || len(rest) < tokLen+2 {
		return e, 0, ErrTruncated
	}
	e.Token = string(rest[:tokLen])
	rest = rest[tokLen:]
	blobLen := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if blobLen > sharechain.DefaultMaxBlobBytes || len(rest) < blobLen+32 {
		return e, 0, ErrTruncated
	}
	e.Blob = append([]byte(nil), rest[:blobLen]...)
	copy(e.Result[:], rest[blobLen:blobLen+32])
	return e, entryWireOverhead + tokLen + blobLen, nil
}

// AppendHelloFrame appends the handshake frame.
func AppendHelloFrame(dst []byte, h *hello) []byte {
	start := len(dst)
	dst = beginFrame(dst, frameHello)
	dst = appendU16(dst, h.Version)
	dst = appendU64(dst, h.NodeID)
	dst = appendU64(dst, h.Count)
	dst = append(dst, h.Tip[:]...)
	n := len(h.Peers)
	if n > maxHelloPeers {
		n = maxHelloPeers
	}
	dst = appendU16(dst, uint16(n))
	for _, p := range h.Peers[:n] {
		if len(p) > 255 {
			p = p[:255]
		}
		dst = append(dst, byte(len(p)))
		dst = append(dst, p...)
	}
	return endFrame(dst, start)
}

func decodeHello(b []byte) (hello, error) {
	var h hello
	if len(b) < 2+8+8+32+2 {
		return h, ErrTruncated
	}
	h.Version = binary.LittleEndian.Uint16(b)
	h.NodeID = binary.LittleEndian.Uint64(b[2:])
	h.Count = binary.LittleEndian.Uint64(b[10:])
	copy(h.Tip[:], b[18:50])
	n := int(binary.LittleEndian.Uint16(b[50:]))
	if n > maxHelloPeers {
		return h, ErrTruncated
	}
	rest := b[52:]
	for i := 0; i < n; i++ {
		if len(rest) < 1 {
			return h, ErrTruncated
		}
		l := int(rest[0])
		rest = rest[1:]
		if len(rest) < l {
			return h, ErrTruncated
		}
		h.Peers = append(h.Peers, string(rest[:l]))
		rest = rest[l:]
	}
	return h, nil
}

// AppendTipFrame appends a tip announce.
//
//lint:hotpath
func AppendTipFrame(dst []byte, count uint64, tip [32]byte) []byte {
	start := len(dst)
	dst = beginFrame(dst, frameTip)
	dst = appendU64(dst, count)
	dst = append(dst, tip[:]...)
	return endFrame(dst, start)
}

func decodeTip(b []byte) (tipAnnounce, error) {
	var t tipAnnounce
	if len(b) != 8+32 {
		return t, ErrTruncated
	}
	t.Count = binary.LittleEndian.Uint64(b)
	copy(t.Tip[:], b[8:])
	return t, nil
}

// AppendSyncReqFrame appends a ranged catch-up request.
//
//lint:hotpath
func AppendSyncReqFrame(dst []byte, from uint64, max uint32) []byte {
	start := len(dst)
	dst = beginFrame(dst, frameSyncReq)
	dst = appendU64(dst, from)
	dst = appendU32(dst, max)
	return endFrame(dst, start)
}

func decodeSyncReq(b []byte) (syncReq, error) {
	var r syncReq
	if len(b) != 8+4 {
		return r, ErrTruncated
	}
	r.From = binary.LittleEndian.Uint64(b)
	r.Max = binary.LittleEndian.Uint32(b[8:])
	return r, nil
}

// AppendSyncRespFrame appends a catch-up batch plus the responder's own
// tip, so one round both delivers entries and tells the requester
// whether another round is needed.
func AppendSyncRespFrame(dst []byte, count uint64, tip [32]byte, entries []*sharechain.Entry) []byte {
	start := len(dst)
	dst = beginFrame(dst, frameSyncResp)
	dst = appendU64(dst, count)
	dst = append(dst, tip[:]...)
	dst = appendU16(dst, uint16(len(entries)))
	for _, e := range entries {
		dst = appendEntry(dst, e)
	}
	return endFrame(dst, start)
}

func decodeSyncResp(b []byte) (tipAnnounce, []sharechain.Entry, error) {
	if len(b) < 8+32+2 {
		return tipAnnounce{}, nil, ErrTruncated
	}
	t := tipAnnounce{Count: binary.LittleEndian.Uint64(b)}
	copy(t.Tip[:], b[8:40])
	n := int(binary.LittleEndian.Uint16(b[40:]))
	rest := b[42:]
	entries := make([]sharechain.Entry, 0, n)
	for i := 0; i < n; i++ {
		e, used, err := decodeEntry(rest)
		if err != nil {
			return t, nil, err
		}
		entries = append(entries, e)
		rest = rest[used:]
	}
	if len(rest) != 0 {
		return t, nil, ErrTruncated
	}
	return t, entries, nil
}

// DecodeFrame splits one framed message into kind and body. b must hold
// exactly the payload read off the wire (length prefix stripped).
//
//lint:hotpath
func DecodeFrame(b []byte) (byte, []byte, error) {
	if len(b) < 1 {
		return 0, nil, ErrTruncated
	}
	return b[0], b[1:], nil
}
