package p2p

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sharechain"
)

// Defaults for Config zero values.
const (
	defaultQueueDepth   = 256
	defaultSyncBatch    = 256
	defaultTipInterval  = 250 * time.Millisecond
	defaultReconnectMin = 50 * time.Millisecond
	defaultReconnectMax = 2 * time.Second
)

// Config parameterises a Node.
type Config struct {
	// NodeID identifies this node in handshakes; it exists to detect
	// self-connects and duplicate links, not as a trust anchor. 0 draws
	// a random ID.
	NodeID uint64
	// Chain is the share-chain this node gossips for. Required.
	Chain *sharechain.Chain
	// Registry receives the p2p.* instruments (nil: private registry).
	Registry *metrics.Registry
	// AdvertiseAddr is the listen address sent in handshakes for the
	// peer-list exchange ("" advertises nothing).
	AdvertiseAddr string
	// QueueDepth bounds each peer's send queue. Enqueue never blocks:
	// a full queue drops the frame and the periodic tip announce later
	// repairs the gap via sync.
	QueueDepth int
	// SyncBatch caps entries per sync response.
	SyncBatch int
	// TipInterval is the tip-announce period — the convergence repair
	// heartbeat.
	TipInterval time.Duration
	// ReconnectMin/Max bound the dial backoff for peers added with
	// AddPeer/Connect.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// OnIngest, if set, fires after a gossiped or synced entry is
	// admitted to the chain. Used by the pool to archive gossip-in
	// events and by loadgen to measure propagation latency.
	OnIngest func(e *sharechain.Entry, reorged bool)
	// Logf receives peer lifecycle noise (nil: silent).
	Logf func(format string, args ...any)
}

// peer is one live connection after a successful handshake.
type peer struct {
	id    uint64
	conn  net.Conn
	sendq chan []byte
	// closing tells the writer to drain what is queued and exit.
	closing chan struct{}
	once    sync.Once

	// syncing guards one in-flight sync conversation per peer.
	mu      sync.Mutex
	syncing bool
}

func (p *peer) shutdown() { p.once.Do(func() { close(p.closing) }) }

// enqueue offers a frame to the peer's writer without ever blocking the
// caller. Dropped frames are repaired by the tip-announce/sync cycle.
func (p *peer) enqueue(frame []byte) bool {
	select {
	case p.sendq <- frame:
		return true
	default:
		return false
	}
}

// Node is the peer layer: it serves inbound connections, maintains
// outbound ones with reconnect backoff, broadcasts locally-minted
// share-chain entries, and keeps the local chain converged with its
// peers via dedupe, relay and ranged catch-up sync.
type Node struct {
	cfg Config

	mu        sync.Mutex
	peers     map[uint64]*peer
	listeners []net.Listener
	addrs     map[string]bool // advertised peer addresses learned from handshakes
	closed    bool

	stop chan struct{}
	wg   sync.WaitGroup

	peersGauge  *metrics.Gauge
	gossiped    *metrics.Counter
	ingested    *metrics.Counter
	duplicate   *metrics.Counter
	syncRounds  *metrics.Counter
	reconnects  *metrics.Counter
	broadcastNs *metrics.Histogram
}

// NewNode builds a node around a share-chain. Call Serve and/or
// AddPeer/Connect to give it links, Close to tear it down.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Chain == nil {
		return nil, errors.New("p2p: Config.Chain is required")
	}
	if cfg.NodeID == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("p2p: node id: %w", err)
		}
		cfg.NodeID = binary.LittleEndian.Uint64(b[:]) | 1 // never 0
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.SyncBatch <= 0 {
		cfg.SyncBatch = defaultSyncBatch
	}
	if cfg.TipInterval <= 0 {
		cfg.TipInterval = defaultTipInterval
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = defaultReconnectMin
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = defaultReconnectMax
	}
	n := &Node{
		cfg:         cfg,
		peers:       map[uint64]*peer{},
		addrs:       map[string]bool{},
		stop:        make(chan struct{}),
		peersGauge:  cfg.Registry.Gauge("p2p.peers"),
		gossiped:    cfg.Registry.Counter("p2p.shares_gossiped"),
		ingested:    cfg.Registry.Counter("p2p.shares_ingested"),
		duplicate:   cfg.Registry.Counter("p2p.shares_duplicate"),
		syncRounds:  cfg.Registry.Counter("p2p.sync_rounds"),
		reconnects:  cfg.Registry.Counter("p2p.reconnects"),
		broadcastNs: cfg.Registry.Histogram("p2p.broadcast_ns"),
	}
	n.wg.Add(1)
	go n.tipLoop()
	return n, nil
}

// NodeID returns this node's handshake identity.
func (n *Node) NodeID() uint64 { return n.cfg.NodeID }

// PeerCount returns the number of live (handshaken) peers.
func (n *Node) PeerCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.peers)
}

// KnownAddrs returns advertised peer addresses learned from handshakes —
// the peer-list exchange an operator can use to grow a mesh from one
// seed address.
func (n *Node) KnownAddrs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.addrs))
	for a := range n.addrs {
		out = append(out, a)
	}
	return out
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Serve accepts inbound peer connections from ln until the listener or
// the node closes. It blocks; run it in a goroutine.
func (n *Node) Serve(ln net.Listener) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	n.listeners = append(n.listeners, ln)
	n.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if err := n.runConn(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				n.logf("p2p: inbound peer: %v", err)
			}
		}()
	}
}

// AddPeer maintains a persistent outbound link: dial, handshake, serve,
// and on any failure redial with exponential backoff until the node
// closes. name labels the peer in logs; dial produces the transport
// (net.Dial for TCP, memconn Listener.Dial in tests).
func (n *Node) AddPeer(name string, dial func() (net.Conn, error)) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		backoff := n.cfg.ReconnectMin
		first := true
		for {
			select {
			case <-n.stop:
				return
			default:
			}
			if !first {
				n.reconnects.Inc()
				select {
				case <-time.After(backoff):
				case <-n.stop:
					return
				}
				backoff *= 2
				if backoff > n.cfg.ReconnectMax {
					backoff = n.cfg.ReconnectMax
				}
			}
			first = false
			conn, err := dial()
			if err != nil {
				n.logf("p2p: dial %s: %v", name, err)
				continue
			}
			err = n.runConn(conn)
			switch {
			case errors.Is(err, ErrSelfConnect):
				n.logf("p2p: peer %s is self, dropping link", name)
				return
			case err == nil, errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
				backoff = n.cfg.ReconnectMin // clean session: reset backoff
			default:
				n.logf("p2p: peer %s: %v", name, err)
			}
		}
	}()
}

// Connect adds a persistent TCP peer at addr.
func (n *Node) Connect(addr string) {
	n.AddPeer(addr, func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 5*time.Second)
	})
}

// Publish broadcasts a locally-accepted entry to every peer. The frame
// is encoded once and shared across peers; enqueue never blocks, so the
// pool's submit hot path pays one encode plus one channel offer per
// peer. Dropped frames are repaired by the tip/sync heartbeat.
func (n *Node) Publish(e *sharechain.Entry) {
	start := time.Now()
	frame := AppendShareFrame(nil, e)
	n.mu.Lock()
	targets := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		targets = append(targets, p)
	}
	n.mu.Unlock()
	for _, p := range targets {
		p.enqueue(frame)
	}
	n.gossiped.Inc()
	n.broadcastNs.Observe(time.Since(start))
}

// Close drains and tears down the peer layer: no new connections are
// accepted, each peer's queued frames are flushed, then links drop.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	lns := n.listeners
	n.listeners = nil
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	close(n.stop)
	for _, ln := range lns {
		ln.Close()
	}
	// Ask writers to drain their queues, then close the conns (which
	// unblocks the readers).
	for _, p := range peers {
		p.shutdown()
	}
	done := make(chan struct{})
	go func() {
		n.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	return nil
}

// tipLoop periodically announces the local tip to every peer. This is
// the convergence repair heartbeat: any divergence — dropped broadcast,
// missed relay, fresh restart — shows up as a tip mismatch at the next
// beat and triggers a sync round.
func (n *Node) tipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.TipInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		tip, count := n.cfg.Chain.Tip()
		frame := AppendTipFrame(nil, uint64(count), tip)
		n.mu.Lock()
		targets := make([]*peer, 0, len(n.peers))
		for _, p := range n.peers {
			targets = append(targets, p)
		}
		n.mu.Unlock()
		for _, p := range targets {
			p.enqueue(frame)
		}
	}
}

// runConn performs the handshake and runs the peer until the link dies.
// Both sides send their hello first, then read the remote one — no
// initiator/responder asymmetry, so the same code serves both inbound
// and outbound links.
func (n *Node) runConn(conn net.Conn) error {
	defer conn.Close()
	tip, count := n.cfg.Chain.Tip()
	h := hello{
		Version: ProtocolVersion,
		NodeID:  n.cfg.NodeID,
		Count:   uint64(count),
		Tip:     tip,
	}
	if n.cfg.AdvertiseAddr != "" {
		h.Peers = append(h.Peers, n.cfg.AdvertiseAddr)
	}
	h.Peers = append(h.Peers, n.KnownAddrs()...)
	if _, err := conn.Write(AppendHelloFrame(nil, &h)); err != nil {
		return err
	}
	br := bufio.NewReaderSize(conn, 32<<10)
	kind, body, err := readFrame(br)
	if err != nil {
		return err
	}
	if kind != frameHello {
		return ErrUnknownFrame
	}
	rh, err := decodeHello(body)
	if err != nil {
		return err
	}
	if rh.Version != ProtocolVersion {
		return ErrBadVersion
	}
	if rh.NodeID == n.cfg.NodeID {
		return ErrSelfConnect
	}

	p := &peer{
		id:      rh.NodeID,
		conn:    conn,
		sendq:   make(chan []byte, n.cfg.QueueDepth),
		closing: make(chan struct{}),
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return net.ErrClosed
	}
	if _, dup := n.peers[rh.NodeID]; dup {
		n.mu.Unlock()
		return ErrDupPeer
	}
	n.peers[rh.NodeID] = p
	for _, a := range rh.Peers {
		if a != "" && a != n.cfg.AdvertiseAddr {
			n.addrs[a] = true
		}
	}
	n.mu.Unlock()
	n.peersGauge.Inc()
	defer func() {
		n.mu.Lock()
		if n.peers[rh.NodeID] == p {
			delete(n.peers, rh.NodeID)
		}
		n.mu.Unlock()
		n.peersGauge.Dec()
		p.shutdown()
	}()

	n.wg.Add(1)
	go n.writeLoop(p)

	// The remote hello doubles as its first tip announce.
	n.maybeSync(p, rh.Count, rh.Tip)
	return n.readLoop(p, br)
}

// writeLoop drains the peer's send queue onto the conn. On shutdown it
// flushes whatever is already queued (graceful drain), then closes the
// conn to unblock the reader.
func (n *Node) writeLoop(p *peer) {
	defer n.wg.Done()
	defer p.conn.Close()
	for {
		select {
		case frame := <-p.sendq:
			p.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, err := p.conn.Write(frame); err != nil {
				return
			}
		case <-p.closing:
			for {
				select {
				case frame := <-p.sendq:
					p.conn.SetWriteDeadline(time.Now().Add(time.Second))
					if _, err := p.conn.Write(frame); err != nil {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// readLoop dispatches inbound frames until the link dies.
func (n *Node) readLoop(p *peer, br *bufio.Reader) error {
	for {
		kind, body, err := readFrame(br)
		if err != nil {
			return err
		}
		switch kind {
		case frameShare:
			e, _, err := decodeEntry(body)
			if err != nil {
				return err
			}
			n.ingest(p, &e)
		case frameTip:
			t, err := decodeTip(body)
			if err != nil {
				return err
			}
			n.maybeSync(p, t.Count, t.Tip)
		case frameSyncReq:
			r, err := decodeSyncReq(body)
			if err != nil {
				return err
			}
			maxN := int(r.Max)
			if maxN <= 0 || maxN > n.cfg.SyncBatch {
				maxN = n.cfg.SyncBatch
			}
			entries := n.cfg.Chain.EntriesFrom(r.From, maxN)
			tip, count := n.cfg.Chain.Tip()
			p.enqueue(AppendSyncRespFrame(nil, uint64(count), tip, entries))
		case frameSyncResp:
			t, entries, err := decodeSyncResp(body)
			if err != nil {
				return err
			}
			n.finishSyncRound(p, t, entries)
		case frameHello:
			// A second hello on a live link is a protocol violation.
			return ErrUnknownFrame
		default:
			return ErrUnknownFrame
		}
	}
}

// ingest admits one gossiped entry into the chain and relays it to the
// other peers — relay is what makes non-mesh topologies (lines, stars)
// converge without every node dialing every other.
func (n *Node) ingest(from *peer, e *sharechain.Entry) {
	if n.cfg.Chain.Has(e.ID()) {
		n.duplicate.Inc()
		return
	}
	reorged, err := n.cfg.Chain.Insert(e, false)
	if err != nil {
		if errors.Is(err, sharechain.ErrDuplicate) {
			n.duplicate.Inc()
		} else {
			n.logf("p2p: reject gossiped share from %d: %v", from.id, err)
		}
		return
	}
	n.ingested.Inc()
	if n.cfg.OnIngest != nil {
		n.cfg.OnIngest(e, reorged)
	}
	frame := AppendShareFrame(nil, e)
	n.mu.Lock()
	targets := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		if p != from {
			targets = append(targets, p)
		}
	}
	n.mu.Unlock()
	for _, p := range targets {
		p.enqueue(frame)
	}
}

// maybeSync starts a catch-up round with a peer whose announced tip
// shows it holds entries we lack: a larger count, or an equal count
// with a different tip (divergent sets of the same size). One round is
// in flight per peer at a time.
func (n *Node) maybeSync(p *peer, remoteCount uint64, remoteTip [32]byte) {
	tip, count := n.cfg.Chain.Tip()
	behind := remoteCount > uint64(count) ||
		(remoteCount == uint64(count) && remoteCount > 0 && remoteTip != tip)
	if !behind {
		return
	}
	p.mu.Lock()
	if p.syncing {
		p.mu.Unlock()
		return
	}
	p.syncing = true
	p.mu.Unlock()
	n.syncRounds.Inc()
	p.enqueue(AppendSyncReqFrame(nil, 0, uint32(n.cfg.SyncBatch)))
}

// finishSyncRound ingests a sync batch and either continues the round
// (full batch ⇒ more may follow) or closes it and lets the next tip
// beat decide whether another round is needed.
func (n *Node) finishSyncRound(p *peer, t tipAnnounce, entries []sharechain.Entry) {
	for i := range entries {
		n.ingest(p, &entries[i])
	}
	more := len(entries) == n.cfg.SyncBatch
	if !more {
		p.mu.Lock()
		p.syncing = false
		p.mu.Unlock()
		return
	}
	// Full batch ⇒ more may follow: continue from the last height seen
	// (same-height stragglers re-sent, deduped on arrival).
	p.enqueue(AppendSyncReqFrame(nil, entries[len(entries)-1].Height, uint32(n.cfg.SyncBatch)))
}

// readFrame reads one length-prefixed frame and splits off the kind
// byte. The length check rejects hostile sizes before any payload is
// buffered.
func readFrame(br *bufio.Reader) (byte, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	ln := binary.LittleEndian.Uint32(hdr[:])
	if ln == 0 {
		return 0, nil, ErrTruncated
	}
	if ln > MaxFrameLen {
		return 0, nil, ErrFrameTooLarge
	}
	body := make([]byte, ln)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, err
	}
	return DecodeFrame(body)
}
