package p2p

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/sharechain"
)

func testEntry(height uint64, token string, diff uint64, salt byte) *sharechain.Entry {
	blob := make([]byte, 76)
	blob[0] = salt
	blob[1] = byte(height)
	e := &sharechain.Entry{Height: height, Token: token, Diff: diff, Nonce: uint32(salt), Blob: blob}
	e.Result[0] = salt
	return e
}

// stripHeader removes the length prefix, returning kind+body as readFrame
// would hand it to DecodeFrame.
func stripHeader(t *testing.T, frame []byte) []byte {
	t.Helper()
	if len(frame) < frameHeaderLen+1 {
		t.Fatalf("frame too short: %d", len(frame))
	}
	ln := binary.LittleEndian.Uint32(frame)
	if int(ln) != len(frame)-frameHeaderLen {
		t.Fatalf("length prefix %d, payload %d", ln, len(frame)-frameHeaderLen)
	}
	return frame[frameHeaderLen:]
}

func TestShareFrameRoundtrip(t *testing.T) {
	e := testEntry(42, "miner-token", 9, 7)
	payload := stripHeader(t, AppendShareFrame(nil, e))
	kind, body, err := DecodeFrame(payload)
	if err != nil || kind != frameShare {
		t.Fatalf("decode: kind=%d err=%v", kind, err)
	}
	got, used, err := decodeEntry(body)
	if err != nil || used != len(body) {
		t.Fatalf("decodeEntry: used=%d/%d err=%v", used, len(body), err)
	}
	if got.Height != e.Height || got.Token != e.Token || got.Diff != e.Diff ||
		got.Nonce != e.Nonce || !bytes.Equal(got.Blob, e.Blob) || got.Result != e.Result {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	if got.ID() != e.ID() {
		t.Fatalf("roundtrip changed the entry identity")
	}
}

func TestHelloFrameRoundtrip(t *testing.T) {
	h := hello{Version: ProtocolVersion, NodeID: 0xDEADBEEF, Count: 17, Peers: []string{"a:1", "b:2"}}
	h.Tip[0] = 0xAB
	kind, body, err := DecodeFrame(stripHeader(t, AppendHelloFrame(nil, &h)))
	if err != nil || kind != frameHello {
		t.Fatalf("decode: kind=%d err=%v", kind, err)
	}
	got, err := decodeHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("roundtrip: %+v vs %+v", got, h)
	}
}

func TestSyncFramesRoundtrip(t *testing.T) {
	kind, body, err := DecodeFrame(stripHeader(t, AppendSyncReqFrame(nil, 99, 512)))
	if err != nil || kind != frameSyncReq {
		t.Fatalf("syncreq decode: %v", err)
	}
	r, err := decodeSyncReq(body)
	if err != nil || r.From != 99 || r.Max != 512 {
		t.Fatalf("syncreq: %+v err=%v", r, err)
	}

	entries := []*sharechain.Entry{testEntry(1, "a", 2, 1), testEntry(2, "b", 3, 2)}
	var tip [32]byte
	tip[5] = 0x44
	kind, body, err = DecodeFrame(stripHeader(t, AppendSyncRespFrame(nil, 2, tip, entries)))
	if err != nil || kind != frameSyncResp {
		t.Fatalf("syncresp decode: %v", err)
	}
	ta, got, err := decodeSyncResp(body)
	if err != nil || ta.Count != 2 || ta.Tip != tip || len(got) != 2 {
		t.Fatalf("syncresp: %+v n=%d err=%v", ta, len(got), err)
	}
	for i := range got {
		if got[i].ID() != entries[i].ID() {
			t.Fatalf("syncresp entry %d identity changed", i)
		}
	}

	kind, body, err = DecodeFrame(stripHeader(t, AppendTipFrame(nil, 7, tip)))
	if err != nil || kind != frameTip {
		t.Fatalf("tip decode: %v", err)
	}
	tp, err := decodeTip(body)
	if err != nil || tp.Count != 7 || tp.Tip != tip {
		t.Fatalf("tip: %+v err=%v", tp, err)
	}
}

// TestReadFrameRejectsHostileSizes is the oversize/truncated conformance
// gate: a hostile length prefix drops the peer before any payload is
// buffered, and a short read surfaces as an error, never a hang on
// garbage.
func TestReadFrameRejectsHostileSizes(t *testing.T) {
	var over [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(over[:], MaxFrameLen+1)
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(over[:]))); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize: %v", err)
	}
	var zero [frameHeaderLen]byte
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(zero[:]))); !errors.Is(err, ErrTruncated) {
		t.Fatalf("zero-length: %v", err)
	}
	frame := AppendShareFrame(nil, testEntry(1, "a", 1, 1))
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(frame[:len(frame)-3]))); err == nil {
		t.Fatalf("truncated body decoded")
	}
}

func TestDecodeEntryRejectsMalformed(t *testing.T) {
	e := testEntry(1, "tok", 1, 1)
	full := AppendShareFrame(nil, e)[frameHeaderLen+1:]
	// Every prefix of a valid encoding must fail cleanly.
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := decodeEntry(full[:cut]); err == nil {
			t.Fatalf("prefix %d/%d decoded", cut, len(full))
		}
	}
	// A token length beyond MaxTokenLen is rejected even when the bytes
	// are present.
	huge := make([]byte, entryWireOverhead+4096)
	copy(huge, full)
	binary.LittleEndian.PutUint16(huge[20:], 2000)
	if _, _, err := decodeEntry(huge); err == nil {
		t.Fatalf("oversize token decoded")
	}
	// So is a blob beyond DefaultMaxBlobBytes.
	binary.LittleEndian.PutUint16(huge[20:], 0)
	binary.LittleEndian.PutUint16(huge[22:], 60000)
	if _, _, err := decodeEntry(huge); err == nil {
		t.Fatalf("oversize blob decoded")
	}
}

// TestEncodeAllocs pins the broadcast fast path: encoding into a
// buffer with capacity is alloc-free, which is what lets Publish ride
// the submit hot path.
func TestEncodeAllocs(t *testing.T) {
	e := testEntry(3, "account-token", 5, 9)
	e.ID() // warm the cached ID like a real post-accept entry
	buf := make([]byte, 0, 1024)
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendShareFrame(buf[:0], e)
	}); n != 0 {
		t.Fatalf("AppendShareFrame allocs = %v, want 0", n)
	}
	var tip [32]byte
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendTipFrame(buf[:0], 12, tip)
	}); n != 0 {
		t.Fatalf("AppendTipFrame allocs = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendSyncReqFrame(buf[:0], 1, 64)
	}); n != 0 {
		t.Fatalf("AppendSyncReqFrame allocs = %v, want 0", n)
	}
	frame := AppendShareFrame(nil, e)[frameHeaderLen:]
	if n := testing.AllocsPerRun(200, func() {
		_, _, _ = DecodeFrame(frame)
	}); n != 0 {
		t.Fatalf("DecodeFrame allocs = %v, want 0", n)
	}
}

// FuzzP2PDecode drives every frame decoder with arbitrary bytes: the
// contract is "error or valid value", never a panic or a hang, for
// handshake, share, sync and tip payloads alike.
func FuzzP2PDecode(f *testing.F) {
	e := testEntry(5, "fuzz-token", 3, 0x55)
	f.Add(AppendShareFrame(nil, e)[frameHeaderLen:])
	h := hello{Version: ProtocolVersion, NodeID: 123, Count: 9, Peers: []string{"x:1"}}
	f.Add(AppendHelloFrame(nil, &h)[frameHeaderLen:])
	f.Add(AppendSyncReqFrame(nil, 10, 100)[frameHeaderLen:])
	f.Add(AppendSyncRespFrame(nil, 1, [32]byte{1}, []*sharechain.Entry{e})[frameHeaderLen:])
	f.Add(AppendTipFrame(nil, 4, [32]byte{2})[frameHeaderLen:])
	f.Add([]byte{})
	f.Add([]byte{frameShare})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, body, err := DecodeFrame(data)
		if err != nil {
			return
		}
		switch kind {
		case frameHello:
			if h, err := decodeHello(body); err == nil && len(h.Peers) > maxHelloPeers {
				t.Fatalf("hello decoded with %d peers", len(h.Peers))
			}
		case frameShare:
			if e, used, err := decodeEntry(body); err == nil {
				if used > len(body) {
					t.Fatalf("decodeEntry consumed %d of %d", used, len(body))
				}
				if len(e.Token) > sharechain.MaxTokenLen || len(e.Blob) > sharechain.DefaultMaxBlobBytes {
					t.Fatalf("decoded entry violates bounds")
				}
			}
		case frameSyncReq:
			decodeSyncReq(body)
		case frameSyncResp:
			if _, entries, err := decodeSyncResp(body); err == nil {
				for i := range entries {
					if len(entries[i].Blob) > sharechain.DefaultMaxBlobBytes {
						t.Fatalf("sync entry %d violates blob bound", i)
					}
				}
			}
		case frameTip:
			decodeTip(body)
		}
	})
}
