// Package rulespace stands in for the proprietary Symantec RuleSpace
// engine the paper uses to categorise websites (Tables 3–5). It is a
// domain-keyed category database with per-population coverage: RuleSpace
// could classify far more Alexa domains than .org domains, and roughly a
// third of short-link destinations not at all — gaps this engine reproduces
// with a deterministic per-domain dropout.
package rulespace

import (
	"strings"
	"sync"

	"repro/internal/keccak"
)

// Canonical category names as printed in the paper's tables.
const (
	CatGaming      = "Gaming"
	CatPorn        = "Pornography"
	CatEducation   = "Educational Site"
	CatShopping    = "Shopping"
	CatTech        = "Tech. & Telecomm."
	CatFilesharing = "Filesharing"
	CatEntMusic    = "Ent. & Music"
	CatBusiness    = "Business"
	CatReligion    = "Religion"
	CatHealth      = "Health Site"
	CatFinance     = "Finance and Investing"
	CatDynamic     = "Dynamic Site"
	CatHosting     = "Hosting"
	CatMsgBoard    = "Msg. Board"
	CatAutomotive  = "Automotive"
	CatNews        = "News"
	CatSports      = "Sports"
	CatTravel      = "Travel"
	CatStreaming   = "Streaming Media"
	CatBlog        = "Blog"
)

// AllCategories lists every category the engine can emit.
var AllCategories = []string{
	CatGaming, CatPorn, CatEducation, CatShopping, CatTech, CatFilesharing,
	CatEntMusic, CatBusiness, CatReligion, CatHealth, CatFinance, CatDynamic,
	CatHosting, CatMsgBoard, CatAutomotive, CatNews, CatSports, CatTravel,
	CatStreaming, CatBlog,
}

// entry is one classified domain.
type entry struct {
	cats []string
	pop  string // population tag for coverage lookup
}

// Engine is a concurrency-safe category database.
type Engine struct {
	mu       sync.RWMutex
	db       map[string]entry
	coverage map[string]float64 // population tag -> probability of coverage
}

// NewEngine returns an engine with full coverage and an empty database.
func NewEngine() *Engine {
	return &Engine{
		db:       map[string]entry{},
		coverage: map[string]float64{},
	}
}

// Register adds (or replaces) a domain's categories under a population tag
// (e.g. "alexa", "org", "external").
func (e *Engine) Register(domain, population string, categories []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.db[strings.ToLower(domain)] = entry{
		cats: append([]string(nil), categories...),
		pop:  population,
	}
}

// SetCoverage sets the fraction of a population's domains the engine can
// classify (e.g. "org" → 0.48). Dropped domains behave exactly like
// unknown ones.
func (e *Engine) SetCoverage(population string, p float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.coverage[population] = p
}

// covered applies the deterministic dropout for a domain.
func (e *Engine) covered(domain, pop string) bool {
	p, ok := e.coverage[pop]
	if !ok {
		return true
	}
	h := keccak.Sum256([]byte("rulespace-coverage:" + domain))
	v := uint32(h[0]) | uint32(h[1])<<8 | uint32(h[2])<<16
	return float64(v)/float64(1<<24) < p
}

// Classify returns the categories for a domain (host names and URLs both
// accepted), and whether the engine has any classification at all — the
// paper reports "Categorized" percentages precisely because RuleSpace often
// has none.
func (e *Engine) Classify(domainOrURL string) ([]string, bool) {
	domain := hostOf(domainOrURL)
	e.mu.RLock()
	defer e.mu.RUnlock()
	ent, ok := e.db[domain]
	if !ok || !e.covered(domain, ent.pop) {
		return nil, false
	}
	return append([]string(nil), ent.cats...), true
}

// Len reports the number of registered domains.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.db)
}

func hostOf(u string) string {
	s := strings.ToLower(u)
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	} else {
		s = strings.TrimPrefix(s, "//")
	}
	for _, cut := range []byte{'/', '?', '#', ':'} {
		if i := strings.IndexByte(s, cut); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimPrefix(s, "www.")
}

// WellKnownDestinations seeds the engine with the external services the
// paper's Table 4 link destinations point at.
func WellKnownDestinations(e *Engine) {
	for domain, cats := range map[string][]string{
		"youtu.be":            {CatEntMusic, CatStreaming},
		"youtube.com":         {CatEntMusic, CatStreaming},
		"zippyshare.com":      {CatFilesharing},
		"icerbox.com":         {CatFilesharing},
		"hq-mirror.de":        {CatEntMusic},
		"andyspeedracing.com": {CatAutomotive},
		"ftbucket.info":       {CatMsgBoard},
		"getcoinfree.com":     {CatFinance},
		"ul.to":               {CatFilesharing},
		"share-online.biz":    {CatFilesharing},
		"oboom.com":           {CatFilesharing},
		"mega.nz":             {CatFilesharing},
		"dailymotion.com":     {CatEntMusic, CatStreaming},
	} {
		e.Register(domain, "external", cats)
	}
}
