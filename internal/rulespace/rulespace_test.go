package rulespace

import "testing"

func TestRegisterAndClassify(t *testing.T) {
	e := NewEngine()
	e.Register("example.org", "org", []string{CatReligion, CatEducation})
	cats, ok := e.Classify("example.org")
	if !ok || len(cats) != 2 || cats[0] != CatReligion {
		t.Errorf("Classify = (%v, %v)", cats, ok)
	}
	if _, ok := e.Classify("unknown.org"); ok {
		t.Error("unknown domain classified")
	}
}

func TestClassifyAcceptsURLs(t *testing.T) {
	e := NewEngine()
	e.Register("youtu.be", "external", []string{CatEntMusic})
	for _, u := range []string{
		"https://youtu.be/dQw4w9WgXcQ",
		"http://www.youtu.be/abc?x=1",
		"//youtu.be/xyz#t=3",
		"YOUTU.BE/q",
	} {
		if _, ok := e.Classify(u); !ok {
			t.Errorf("Classify(%q) failed", u)
		}
	}
}

func TestCoverageDropoutIsDeterministicAndProportional(t *testing.T) {
	e := NewEngine()
	e.SetCoverage("org", 0.5)
	n := 10_000
	for i := 0; i < n; i++ {
		e.Register(domain(i), "org", []string{CatBusiness})
	}
	covered := 0
	for i := 0; i < n; i++ {
		if _, ok := e.Classify(domain(i)); ok {
			covered++
		}
	}
	frac := float64(covered) / float64(n)
	if frac < 0.46 || frac > 0.54 {
		t.Errorf("coverage = %.3f, want ~0.50", frac)
	}
	// Determinism: the same domain must always answer the same way.
	for i := 0; i < 100; i++ {
		_, a := e.Classify(domain(i))
		_, b := e.Classify(domain(i))
		if a != b {
			t.Fatalf("coverage flapped for %s", domain(i))
		}
	}
}

func domain(i int) string {
	const letters = "abcdefghij"
	b := make([]byte, 0, 16)
	for v := i; ; v /= 10 {
		b = append(b, letters[v%10])
		if v < 10 {
			break
		}
	}
	return string(b) + ".org"
}

func TestCoverageIsPerPopulation(t *testing.T) {
	e := NewEngine()
	e.SetCoverage("org", 0.0)
	e.Register("a.org", "org", []string{CatBusiness})
	e.Register("b.com", "alexa", []string{CatBusiness})
	if _, ok := e.Classify("a.org"); ok {
		t.Error("zero-coverage population classified")
	}
	if _, ok := e.Classify("b.com"); !ok {
		t.Error("full-coverage population not classified")
	}
}

func TestWellKnownDestinations(t *testing.T) {
	e := NewEngine()
	WellKnownDestinations(e)
	cats, ok := e.Classify("https://youtu.be/abc")
	if !ok || cats[0] != CatEntMusic {
		t.Errorf("youtu.be = (%v, %v)", cats, ok)
	}
	cats, ok = e.Classify("zippyshare.com")
	if !ok || cats[0] != CatFilesharing {
		t.Errorf("zippyshare = (%v, %v)", cats, ok)
	}
}
