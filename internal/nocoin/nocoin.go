// Package nocoin implements an Adblock-filter-syntax subset sufficient for
// the NoCoin block list ("Block lists to prevent JavaScript miners") the
// paper evaluates in §3.1, plus a bundled list equivalent to the 2018
// snapshot. Supported rule forms:
//
//	! comment
//	||domain.tld^        domain-anchored match
//	plainsubstring       substring match on URLs
//	/regex/              regular-expression match (URLs and inline script text)
//	rule$options         options are parsed and retained but not enforced
//
// The engine matches script URLs and inline script bodies, which is exactly
// how the paper applied the list to extracted javascript tags.
package nocoin

import (
	"fmt"
	"regexp"
	"strings"
)

// RuleKind discriminates the supported syntaxes.
type RuleKind int

// Rule kinds.
const (
	KindComment RuleKind = iota
	KindDomain
	KindSubstring
	KindRegex
)

// Rule is one parsed filter rule.
type Rule struct {
	Raw     string
	Kind    RuleKind
	Domain  string // KindDomain
	Needle  string // KindSubstring
	Re      *regexp.Regexp
	Options []string
}

// ParseRule parses a single filter line.
func ParseRule(line string) (Rule, error) {
	r := Rule{Raw: line}
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
		r.Kind = KindComment
		return r, nil
	}
	// Split $options (not inside a regex).
	body := line
	if !strings.HasPrefix(line, "/") {
		if i := strings.LastIndexByte(line, '$'); i >= 0 {
			body = line[:i]
			r.Options = strings.Split(line[i+1:], ",")
		}
	}
	switch {
	case strings.HasPrefix(body, "||"):
		r.Kind = KindDomain
		r.Domain = strings.ToLower(strings.TrimSuffix(strings.TrimPrefix(body, "||"), "^"))
		if r.Domain == "" {
			return r, fmt.Errorf("nocoin: empty domain rule %q", line)
		}
	case strings.HasPrefix(body, "/") && strings.HasSuffix(body, "/") && len(body) > 2:
		re, err := regexp.Compile("(?i)" + body[1:len(body)-1])
		if err != nil {
			return r, fmt.Errorf("nocoin: bad regex rule %q: %w", line, err)
		}
		r.Kind = KindRegex
		r.Re = re
	default:
		r.Kind = KindSubstring
		r.Needle = strings.ToLower(body)
		if r.Needle == "" {
			return r, fmt.Errorf("nocoin: empty rule")
		}
	}
	return r, nil
}

// List is a parsed filter list.
type List struct {
	Rules []Rule
}

// ParseList parses a complete filter-list document, skipping comments.
// Malformed lines abort with an error (a corrupted block list silently
// matching nothing is worse than failing loudly).
func ParseList(text string) (*List, error) {
	var l List
	for ln, line := range strings.Split(text, "\n") {
		r, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if r.Kind == KindComment {
			continue
		}
		l.Rules = append(l.Rules, r)
	}
	return &l, nil
}

// hostOf extracts the lower-cased host portion of a URL-ish string.
func hostOf(u string) string {
	s := u
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	} else {
		s = strings.TrimPrefix(s, "//") // protocol-relative URL
	}
	for _, cut := range []byte{'/', '?', '#', ':'} {
		if i := strings.IndexByte(s, cut); i >= 0 {
			s = s[:i]
		}
	}
	return strings.ToLower(s)
}

// MatchURL checks a script URL against the list.
func (l *List) MatchURL(url string) (Rule, bool) {
	low := strings.ToLower(url)
	host := hostOf(url)
	for _, r := range l.Rules {
		switch r.Kind {
		case KindDomain:
			if host == r.Domain || strings.HasSuffix(host, "."+r.Domain) {
				return r, true
			}
		case KindSubstring:
			if strings.Contains(low, r.Needle) {
				return r, true
			}
		case KindRegex:
			if r.Re.MatchString(url) {
				return r, true
			}
		}
	}
	return Rule{}, false
}

// MatchInline checks inline script text against the list's regex and
// substring rules (domain rules are URL-only by construction).
func (l *List) MatchInline(body string) (Rule, bool) {
	low := strings.ToLower(body)
	for _, r := range l.Rules {
		switch r.Kind {
		case KindSubstring:
			if strings.Contains(low, r.Needle) {
				return r, true
			}
		case KindRegex:
			if r.Re.MatchString(body) {
				return r, true
			}
		}
	}
	return Rule{}, false
}

// ScriptRef is the minimal view of an extracted script tag the matcher
// needs (decoupled from the HTML scanner).
type ScriptRef struct {
	Src    string
	Inline string
}

// Match is a rule hit on a page.
type Match struct {
	Rule   Rule
	Target string // the matched URL or a snippet of inline text
}

// MatchScripts applies the list to all scripts of a page.
func (l *List) MatchScripts(scripts []ScriptRef) []Match {
	var out []Match
	for _, s := range scripts {
		if s.Src != "" {
			if r, ok := l.MatchURL(s.Src); ok {
				out = append(out, Match{Rule: r, Target: s.Src})
			}
			continue
		}
		if r, ok := l.MatchInline(s.Inline); ok {
			snippet := s.Inline
			if len(snippet) > 64 {
				snippet = snippet[:64]
			}
			out = append(out, Match{Rule: r, Target: snippet})
		}
	}
	return out
}

// BundledText is our equivalent of the 2018 NoCoin snapshot: it covers the
// big mining services by script URL and backend domain, carries a few
// generic keyword rules — and, like the original, contains an overly broad
// entry (the cpmstar gaming ad network) that produces the false positives
// the paper documents.
const BundledText = `! NoCoin-equivalent filter list (2018-05 snapshot shape)
! --- mining services, by serving domain ---
||coinhive.com^
||authedmine.com^
||crypto-loot.com^
||webmine.cz^
||coinimp.com^
||monerise.com^
||deepminer.net^
||wp-monero-miner.com^
! --- common script names ---
coinhive.min.js
authedmine.min.js
cryptaloot.pro/lib
jsminer.js
/coin-?hive(\.min)?\.js/
/wp-monero-miner/
! --- generic miner symbols in inline code ---
/CoinHive\.(Anonymous|User)/
/new\s+CryptoLoot/
/deepMiner\.Anonymous/
! --- overbroad entries (source of the paper's false positives) ---
||cpmstar.com^
cpmstar.js
`

// Bundled parses BundledText; it panics on error because the constant is
// compiled in and covered by tests.
func Bundled() *List {
	l, err := ParseList(BundledText)
	if err != nil {
		panic(err)
	}
	return l
}
