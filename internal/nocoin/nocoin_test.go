package nocoin

import (
	"strings"
	"testing"
)

func TestParseRuleKinds(t *testing.T) {
	cases := []struct {
		line string
		kind RuleKind
	}{
		{"! a comment", KindComment},
		{"", KindComment},
		{"[Adblock Plus 2.0]", KindComment},
		{"||coinhive.com^", KindDomain},
		{"coinhive.min.js", KindSubstring},
		{`/CoinHive\.Anonymous/`, KindRegex},
		{"||cpmstar.com^$script,third-party", KindDomain},
	}
	for _, c := range cases {
		r, err := ParseRule(c.line)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", c.line, err)
			continue
		}
		if r.Kind != c.kind {
			t.Errorf("ParseRule(%q).Kind = %v, want %v", c.line, r.Kind, c.kind)
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	if _, err := ParseRule(`/bad[regex/`); err == nil {
		t.Error("invalid regex accepted")
	}
	if _, err := ParseRule(`||^`); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestDomainRuleMatching(t *testing.T) {
	l, err := ParseList("||coinhive.com^")
	if err != nil {
		t.Fatal(err)
	}
	hits := []string{
		"https://coinhive.com/lib/coinhive.min.js",
		"http://ws001.coinhive.com/proxy",
		"//coinhive.com/x",
		"https://COINHIVE.com/lib.js",
	}
	for _, u := range hits {
		if _, ok := l.MatchURL(u); !ok {
			t.Errorf("no match for %q", u)
		}
	}
	misses := []string{
		"https://notcoinhive.com/lib.js", // suffix must respect label boundary
		"https://coinhive.com.evil.org/x",
		"https://example.org/coinhive.html", // domain rules do not match paths
	}
	for _, u := range misses {
		if r, ok := l.MatchURL(u); ok {
			t.Errorf("unexpected match for %q (rule %q)", u, r.Raw)
		}
	}
}

func TestSubstringAndRegexMatching(t *testing.T) {
	l, err := ParseList("coinhive.min.js\n/CoinHive\\.(Anonymous|User)/")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.MatchURL("https://cdn.example.com/vendor/CoinHive.MIN.js"); !ok {
		t.Error("substring match should be case-insensitive")
	}
	if _, ok := l.MatchInline("var m = new CoinHive.Anonymous('k');"); !ok {
		t.Error("regex inline match failed")
	}
	if _, ok := l.MatchInline("console.log('nothing to see')"); ok {
		t.Error("benign inline matched")
	}
}

func TestMatchScriptsMixed(t *testing.T) {
	l := Bundled()
	matches := l.MatchScripts([]ScriptRef{
		{Src: "https://coinhive.com/lib/coinhive.min.js"},
		{Inline: "var miner=new CoinHive.Anonymous('SITEKEY');miner.start();"},
		{Src: "https://code.jquery.com/jquery-3.3.1.min.js"},
		{Inline: "function initCarousel(){}"},
	})
	if len(matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(matches))
	}
}

func TestBundledListParsesAndCoversFamilies(t *testing.T) {
	l := Bundled()
	if len(l.Rules) < 10 {
		t.Fatalf("bundled list has only %d rules", len(l.Rules))
	}
	mustMatch := []string{
		"https://coinhive.com/lib/coinhive.min.js",
		"https://authedmine.com/lib/authedmine.min.js",
		"https://crypto-loot.com/lib/miner.js",
		"https://www.wp-monero-miner.com/js/miner.js",
	}
	for _, u := range mustMatch {
		if _, ok := l.MatchURL(u); !ok {
			t.Errorf("bundled list misses %q", u)
		}
	}
}

func TestBundledListHasTheCpmstarFalsePositive(t *testing.T) {
	// The paper: "we find false positives, e.g., cpmstar is a gaming
	// ad-network that we could not verify to contain mining code."
	l := Bundled()
	r, ok := l.MatchURL("https://cdn.cpmstar.com/cached/js/ad.js")
	if !ok {
		t.Fatal("cpmstar rule missing — the false-positive reproduction depends on it")
	}
	if !strings.Contains(r.Raw, "cpmstar") {
		t.Errorf("matched rule %q", r.Raw)
	}
}

func TestBundledDoesNotMatchPlainSites(t *testing.T) {
	l := Bundled()
	benign := []ScriptRef{
		{Src: "https://www.googletagmanager.com/gtag.js"},
		{Src: "/assets/app.bundle.js"},
		{Inline: "window.dataLayer=window.dataLayer||[];"},
	}
	if m := l.MatchScripts(benign); len(m) != 0 {
		t.Errorf("benign page matched: %+v", m)
	}
}

func BenchmarkMatchScriptsBundled(b *testing.B) {
	l := Bundled()
	scripts := []ScriptRef{
		{Src: "https://code.jquery.com/jquery.min.js"},
		{Src: "/assets/main.js"},
		{Inline: "var x = 42; render(x);"},
		{Src: "https://coinhive.com/lib/coinhive.min.js"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.MatchScripts(scripts)
	}
}
