package poolwatch

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/blockchain"
	"repro/internal/coinhive"
	"repro/internal/simclock"
	"repro/internal/simnet"
)

func newWorld(t *testing.T, poolRate, netRate float64, activity func(time.Time) float64, seed int64) (*simclock.Sim, *blockchain.Chain, *coinhive.Pool, *simnet.Network) {
	t.Helper()
	sim := simclock.New(time.Date(2018, 4, 20, 0, 0, 0, 0, time.UTC))
	params := blockchain.SimParams()
	params.MinDifficulty = uint64(netRate * 120)
	chain, err := blockchain.NewChain(params, uint64(sim.Now().Unix()), blockchain.AddressFromString("genesis"))
	if err != nil {
		t.Fatal(err)
	}
	chain.PreloadEmission(15_600_000 * blockchain.AtomicPerXMR)
	pool, err := coinhive.NewPool(coinhive.PoolConfig{
		Chain:  chain,
		Wallet: blockchain.AddressFromString("coinhive"),
		Clock:  sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := simnet.Bootstrap(chain, sim); err != nil {
		t.Fatal(err)
	}
	net, err := simnet.New(simnet.Config{
		Sim: sim, Chain: chain, Pool: pool,
		PoolHashRate: poolRate, NetworkHashRate: netRate,
		PoolActivity: activity, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim, chain, pool, net
}

func TestWatcherAttributesExactlyThePoolBlocks(t *testing.T) {
	sim, chain, pool, net := newWorld(t, 50e6, 500e6, nil, 11)
	w := New(Config{Source: net, Chain: chain})
	net.Start()
	stop := w.Run(sim, time.Second)
	sim.RunFor(24 * time.Hour)
	stop()
	w.Sweep()

	attributed := w.Attributed()
	poolFound := pool.FoundBlocks()
	if len(poolFound) == 0 {
		t.Fatal("pool found no blocks in a day at 10% share")
	}
	// The method yields a *lower bound* (the paper's framing): every
	// attribution must be a real pool block, and recall must be near-total.
	// The only structural misses are back-to-back pool blocks inside one
	// tick window, where the watcher never saw the intermediate tip's jobs.
	found := map[uint64]bool{}
	for _, fb := range poolFound {
		found[fb.Height] = true
	}
	for _, ab := range attributed {
		if !found[ab.Height] {
			t.Fatalf("attributed height %d is not a pool block — false positive", ab.Height)
		}
	}
	if recall := float64(len(attributed)) / float64(len(poolFound)); recall < 0.95 {
		t.Errorf("recall = %.3f (%d/%d), want ≥ 0.95", recall, len(attributed), len(poolFound))
	}
}

func TestWatcherNeverAttributesForeignBlocks(t *testing.T) {
	sim, chain, pool, net := newWorld(t, 50e6, 500e6, nil, 12)
	w := New(Config{Source: net, Chain: chain})
	net.Start()
	stop := w.Run(sim, time.Second)
	sim.RunFor(12 * time.Hour)
	stop()
	w.Sweep()

	wallet := blockchain.AddressFromString("coinhive")
	for _, ab := range w.Attributed() {
		b := chain.BlockByHeight(ab.Height)
		if b == nil || b.Coinbase.To != wallet {
			t.Fatalf("attributed block %d does not pay the pool wallet — false positive", ab.Height)
		}
	}
	_ = pool
}

func TestMaxInputsPerPrevIs128(t *testing.T) {
	sim, chain, _, net := newWorld(t, 50e6, 500e6, nil, 13)
	w := New(Config{Source: net, Chain: chain})
	net.Start()
	stop := w.Run(sim, time.Second)
	sim.RunFor(3 * time.Hour)
	stop()
	st := w.StatsSnapshot()
	if st.MaxInputsPerPrev != 128 {
		t.Errorf("max inputs per prev = %d, want 128 (16 backends × 8 templates)", st.MaxInputsPerPrev)
	}
}

func TestSingleEndpointSeesAtMostEightInputs(t *testing.T) {
	sim, chain, _, net := newWorld(t, 50e6, 500e6, nil, 14)
	w := New(Config{Source: net, Chain: chain, Endpoints: 1, SlotsPerEndpoint: 20})
	net.Start()
	stop := w.Run(sim, time.Second)
	sim.RunFor(2 * time.Hour)
	stop()
	st := w.StatsSnapshot()
	if st.MaxInputsPerPrev != 8 {
		t.Errorf("one endpoint revealed %d inputs per prev, want 8", st.MaxInputsPerPrev)
	}
}

func TestOutageProducesPollFailuresAndNoFalseNegativesOutside(t *testing.T) {
	day := time.Date(2018, 4, 21, 0, 0, 0, 0, time.UTC)
	activity := func(tm time.Time) float64 {
		if !tm.Before(day) && tm.Before(day.Add(12*time.Hour)) {
			return 0
		}
		return 1
	}
	sim, chain, pool, net := newWorld(t, 50e6, 500e6, activity, 15)
	w := New(Config{Source: net, Chain: chain})
	net.Start()
	stop := w.Run(sim, time.Second)
	sim.RunFor(48 * time.Hour)
	stop()
	w.Sweep()
	st := w.StatsSnapshot()
	if st.PollFailures == 0 {
		t.Error("no poll failures recorded across a 12h outage")
	}
	// Outside the outage the pool mined; attribution still matches exactly
	// the pool's record (it found nothing during the outage anyway).
	if got, want := st.Attributed, len(pool.FoundBlocks()); float64(got) < 0.95*float64(want) {
		t.Errorf("attributed %d, pool found %d; want ≥95%% recall", got, want)
	}
}

func TestPartialEndpointCoverageLosesBlocks(t *testing.T) {
	// Ablation: polling only 2 endpoints (1/16 of backends) must attribute
	// roughly 1/16 of the pool's blocks — the paper needed *all* endpoints
	// for a tight bound.
	sim, chain, pool, net := newWorld(t, 100e6, 500e6, nil, 16)
	w := New(Config{Source: net, Chain: chain, Endpoints: 2})
	net.Start()
	stop := w.Run(sim, time.Second)
	sim.RunFor(48 * time.Hour)
	stop()
	w.Sweep()
	got := len(w.Attributed())
	total := len(pool.FoundBlocks())
	if total < 50 {
		t.Fatalf("too few pool blocks (%d) for a meaningful ratio", total)
	}
	frac := float64(got) / float64(total)
	if frac < 0.01 || frac > 0.20 {
		t.Errorf("2-endpoint coverage attributed %.3f of blocks, want ~1/16", frac)
	}
}

// TestEventDrivenRunMatchesTickLoopBitIdentical pins the event-driven Run
// to the historical fixed-tick polling loop: two worlds with the same seed
// evolve identically (the watcher never influences the simulation), so the
// attributed blocks — and even the poll counters — must match exactly.
func TestEventDrivenRunMatchesTickLoopBitIdentical(t *testing.T) {
	const seed = 29
	tick := 2 * time.Second

	// Reference: the seed's O(ticks) loop, reconstructed verbatim.
	simA, chainA, _, netA := newWorld(t, 50e6, 500e6, nil, seed)
	wA := New(Config{Source: netA, Chain: chainA})
	netA.Start()
	var lastTip [32]byte
	stopA := simA.Every(tick, func() {
		tip := chainA.TipID()
		if tip != lastTip {
			lastTip = tip
			wA.PollAllEndpoints()
			wA.Sweep()
		}
	})

	// Event-driven Run under test.
	simB, chainB, _, netB := newWorld(t, 50e6, 500e6, nil, seed)
	wB := New(Config{Source: netB, Chain: chainB})
	netB.Start()
	stopB := wB.Run(simB, tick)

	simA.RunFor(36 * time.Hour)
	simB.RunFor(36 * time.Hour)
	stopA()
	stopB()
	wA.Sweep()
	wB.Sweep()

	a, b := wA.Attributed(), wB.Attributed()
	if len(a) == 0 {
		t.Fatal("reference loop attributed nothing; test is vacuous")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("attributed blocks diverge: tick loop %d, event-driven %d\n tick: %+v\n evnt: %+v",
			len(a), len(b), a, b)
	}
	sa, sb := wA.StatsSnapshot(), wB.StatsSnapshot()
	if sa != sb {
		t.Errorf("stats diverge: tick %+v, event-driven %+v", sa, sb)
	}
}

func TestPruneBoundsMemory(t *testing.T) {
	sim, chain, _, net := newWorld(t, 50e6, 500e6, nil, 17)
	w := New(Config{Source: net, Chain: chain, MaxPendingClusters: 4})
	net.Start()
	// Poll but never sweep: clusters would grow unboundedly without pruning.
	stop := sim.Every(10*time.Second, func() { w.PollAllEndpoints() })
	sim.RunFor(6 * time.Hour)
	stop()
	w.mu.Lock()
	n := len(w.clusters)
	w.mu.Unlock()
	if n > 4 {
		t.Errorf("%d clusters retained, want ≤ 4", n)
	}
}
