// Package poolwatch implements the paper's §4.2 methodology for associating
// blocks in a privacy-preserving blockchain with a mining pool:
//
//  1. connect to every pool endpoint and keep requesting fresh PoW inputs,
//  2. revert the pool's blob obfuscation and parse each input,
//  3. cluster the inputs by their previous-block pointer,
//  4. for every block later mined on top of that pointer, compare its
//     transaction Merkle root against the clustered inputs' roots — a match
//     proves the block was assembled by the observed pool, because the
//     root commits to the pool's own coinbase transaction ("we could never
//     by accident see a Merkle tree root of another miner").
//
// The result is a lower bound on the pool's mined blocks, from which hash
// rate share and revenue follow.
package poolwatch

import (
	"sync"
	"time"

	"repro/internal/blockchain"
	"repro/internal/simclock"
	"repro/internal/stratum"
)

// JobSource yields PoW inputs for an endpoint/slot, with ok=false when the
// service is unreachable.
type JobSource interface {
	PollJob(endpoint, slot int) (stratum.Job, bool)
}

// AttributedBlock is a chain block proven to originate from the pool.
type AttributedBlock struct {
	Height    uint64
	Timestamp uint64
	Reward    uint64
}

// Config parameterises a Watcher.
type Config struct {
	Source JobSource
	Chain  *blockchain.Chain
	// Endpoints is how many endpoints to poll (paper: all 32).
	Endpoints int
	// SlotsPerEndpoint is how many rotating inputs each endpoint reveals
	// per block interval (paper: "we never obtain more than 8").
	SlotsPerEndpoint int
	// MaxPendingClusters bounds memory for prev-pointers awaiting a
	// successor block.
	MaxPendingClusters int
}

// Watcher accumulates PoW inputs and attributes mined blocks.
type Watcher struct {
	cfg Config

	mu         sync.Mutex
	clusters   map[[32]byte]*cluster // keyed by prev-block pointer
	order      [][32]byte            // cluster insertion order, for pruning
	attributed []AttributedBlock
	polls      int
	pollFails  int
	maxPerPrev int                    // most distinct inputs observed for one prev pointer
	parsed     map[string]parsedInput // memo: wire blob -> (prev, root)
}

type parsedInput struct {
	prev [32]byte
	root [32]byte
	ok   bool
}

type cluster struct {
	roots map[[32]byte]bool
}

// New builds a Watcher.
func New(cfg Config) *Watcher {
	if cfg.Endpoints == 0 {
		cfg.Endpoints = 32
	}
	if cfg.SlotsPerEndpoint == 0 {
		cfg.SlotsPerEndpoint = 8
	}
	if cfg.MaxPendingClusters == 0 {
		cfg.MaxPendingClusters = 64
	}
	return &Watcher{cfg: cfg, clusters: map[[32]byte]*cluster{}, parsed: map[string]parsedInput{}}
}

// PollOnce requests a single PoW input (the 500 ms unit of the paper's
// loop) and records it.
func (w *Watcher) PollOnce(endpoint, slot int) {
	job, ok := w.cfg.Source.PollJob(endpoint, slot)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.polls++
	if !ok {
		w.pollFails++
		return
	}
	w.recordLocked(job)
}

// PollAllEndpoints polls every endpoint across every slot — the coverage
// the paper reaches by polling each endpoint for a whole block interval.
func (w *Watcher) PollAllEndpoints() {
	for ep := 0; ep < w.cfg.Endpoints; ep++ {
		for s := 0; s < w.cfg.SlotsPerEndpoint; s++ {
			w.PollOnce(ep, s)
		}
	}
}

// recordLocked parses an obfuscated job and clusters it by prev pointer.
// Identical wire blobs (the pool hands the same input to every poll within
// a block interval) are memoised so sustained polling stays cheap.
func (w *Watcher) recordLocked(job stratum.Job) {
	pi, hit := w.parsed[job.Blob]
	if !hit {
		if len(w.parsed) > 4096 {
			w.parsed = map[string]parsedInput{} // new tips obsolete old blobs
		}
		blob, err := stratum.DecodeBlob(job.Blob)
		if err != nil {
			w.parsed[job.Blob] = parsedInput{}
			return
		}
		stratum.ObfuscateBlob(blob) // revert, as the official miner does
		hdr, root, _, err := blockchain.ParseHashingBlob(blob)
		if err != nil {
			w.parsed[job.Blob] = parsedInput{}
			return
		}
		pi = parsedInput{prev: hdr.PrevHash, root: root, ok: true}
		w.parsed[job.Blob] = pi
	}
	if !pi.ok {
		return
	}
	c, ok := w.clusters[pi.prev]
	if !ok {
		c = &cluster{roots: map[[32]byte]bool{}}
		w.clusters[pi.prev] = c
		w.order = append(w.order, pi.prev)
		w.pruneLocked()
	}
	c.roots[pi.root] = true
	if len(c.roots) > w.maxPerPrev {
		w.maxPerPrev = len(c.roots)
	}
}

func (w *Watcher) pruneLocked() {
	for len(w.order) > w.cfg.MaxPendingClusters {
		old := w.order[0]
		w.order = w.order[1:]
		delete(w.clusters, old)
	}
}

// Sweep attributes blocks: for every cluster whose prev pointer now has a
// successor on chain, the successor's Merkle root is checked against the
// recorded inputs. Matched or not, resolved clusters are dropped (their
// question has been answered).
func (w *Watcher) Sweep() {
	w.mu.Lock()
	defer w.mu.Unlock()
	remaining := w.order[:0]
	for _, prev := range w.order {
		succ, ok := w.cfg.Chain.SuccessorOf(prev)
		if !ok {
			remaining = append(remaining, prev)
			continue
		}
		c := w.clusters[prev]
		if c.roots[succ.MerkleRoot()] {
			_, height, _ := w.cfg.Chain.BlockByID(succ.ID())
			w.attributed = append(w.attributed, AttributedBlock{
				Height:    height,
				Timestamp: succ.Timestamp,
				Reward:    succ.Coinbase.Amount,
			})
		}
		delete(w.clusters, prev)
	}
	w.order = append([][32]byte(nil), remaining...)
}

// Run schedules the watcher on a simulation clock: a full endpoint sweep
// whenever the tip changes (checked every checkInterval) plus a Sweep pass.
// It returns a cancel function.
func (w *Watcher) Run(sim *simclock.Sim, checkInterval time.Duration) (cancel func()) {
	var lastTip [32]byte
	return sim.Every(checkInterval, func() {
		tip := w.cfg.Chain.TipID()
		if tip != lastTip {
			lastTip = tip
			w.PollAllEndpoints()
			w.Sweep()
		}
	})
}

// Attributed returns the blocks proven to come from the pool, in
// attribution order.
func (w *Watcher) Attributed() []AttributedBlock {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]AttributedBlock(nil), w.attributed...)
}

// Stats summarises the watcher's observations.
type Stats struct {
	Polls            int
	PollFailures     int
	MaxInputsPerPrev int // the paper's "at most 128 different PoW inputs"
	Attributed       int
}

// StatsSnapshot returns current counters.
func (w *Watcher) StatsSnapshot() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Polls:            w.polls,
		PollFailures:     w.pollFails,
		MaxInputsPerPrev: w.maxPerPrev,
		Attributed:       len(w.attributed),
	}
}
