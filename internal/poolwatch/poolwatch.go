// Package poolwatch implements the paper's §4.2 methodology for associating
// blocks in a privacy-preserving blockchain with a mining pool:
//
//  1. connect to every pool endpoint and keep requesting fresh PoW inputs,
//  2. revert the pool's blob obfuscation and parse each input,
//  3. cluster the inputs by their previous-block pointer,
//  4. for every block later mined on top of that pointer, compare its
//     transaction Merkle root against the clustered inputs' roots — a match
//     proves the block was assembled by the observed pool, because the
//     root commits to the pool's own coinbase transaction ("we could never
//     by accident see a Merkle tree root of another miner").
//
// The result is a lower bound on the pool's mined blocks, from which hash
// rate share and revenue follow.
package poolwatch

import (
	"sync"
	"time"

	"repro/internal/blockchain"
	"repro/internal/simclock"
	"repro/internal/stratum"
)

// JobSource yields PoW inputs for an endpoint/slot, with ok=false when the
// service is unreachable.
type JobSource interface {
	PollJob(endpoint, slot int) (stratum.Job, bool)
}

// AttributedBlock is a chain block proven to originate from the pool.
type AttributedBlock struct {
	Height    uint64
	Timestamp uint64
	Reward    uint64
}

// Config parameterises a Watcher.
type Config struct {
	Source JobSource
	Chain  *blockchain.Chain
	// Endpoints is how many endpoints to poll (paper: all 32).
	Endpoints int
	// SlotsPerEndpoint is how many rotating inputs each endpoint reveals
	// per block interval (paper: "we never obtain more than 8").
	SlotsPerEndpoint int
	// MaxPendingClusters bounds memory for prev-pointers awaiting a
	// successor block.
	MaxPendingClusters int
}

// Watcher accumulates PoW inputs and attributes mined blocks.
type Watcher struct {
	cfg Config

	mu         sync.Mutex
	clusters   map[[32]byte]*cluster // keyed by prev-block pointer
	order      [][32]byte            // cluster insertion order, for pruning
	attributed []AttributedBlock
	polls      int
	pollFails  int
	maxPerPrev int    // most distinct inputs observed for one prev pointer
	blobBuf    []byte // wire-blob decode scratch, reused under mu
}

type cluster struct {
	roots map[[32]byte]bool
}

// New builds a Watcher.
func New(cfg Config) *Watcher {
	if cfg.Endpoints == 0 {
		cfg.Endpoints = 32
	}
	if cfg.SlotsPerEndpoint == 0 {
		cfg.SlotsPerEndpoint = 8
	}
	if cfg.MaxPendingClusters == 0 {
		cfg.MaxPendingClusters = 64
	}
	return &Watcher{cfg: cfg, clusters: map[[32]byte]*cluster{}}
}

// PollOnce requests a single PoW input (the 500 ms unit of the paper's
// loop) and records it.
func (w *Watcher) PollOnce(endpoint, slot int) {
	job, ok := w.cfg.Source.PollJob(endpoint, slot)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.polls++
	if !ok {
		w.pollFails++
		return
	}
	w.recordLocked(job)
}

// PollAllEndpoints polls every endpoint across every slot — the coverage
// the paper reaches by polling each endpoint for a whole block interval.
func (w *Watcher) PollAllEndpoints() {
	for ep := 0; ep < w.cfg.Endpoints; ep++ {
		for s := 0; s < w.cfg.SlotsPerEndpoint; s++ {
			w.PollOnce(ep, s)
		}
	}
}

// recordLocked parses an obfuscated job and clusters it by prev pointer.
// Decoding runs through a reusable scratch buffer — parsing a blob is a hex
// decode plus a few varint reads, cheaper than the blob-string memo table
// it replaces, and allocation-free.
func (w *Watcher) recordLocked(job stratum.Job) {
	blob, err := stratum.AppendDecodedBlob(w.blobBuf[:0], job.Blob)
	if blob != nil {
		w.blobBuf = blob // keep the (possibly grown) scratch
	}
	if err != nil {
		return
	}
	stratum.ObfuscateBlob(blob) // revert, as the official miner does
	hdr, root, _, err := blockchain.ParseHashingBlob(blob)
	if err != nil {
		return
	}
	c, ok := w.clusters[hdr.PrevHash]
	if !ok {
		c = &cluster{roots: map[[32]byte]bool{}}
		w.clusters[hdr.PrevHash] = c
		w.order = append(w.order, hdr.PrevHash)
		w.pruneLocked()
	}
	c.roots[root] = true
	if len(c.roots) > w.maxPerPrev {
		w.maxPerPrev = len(c.roots)
	}
}

func (w *Watcher) pruneLocked() {
	for len(w.order) > w.cfg.MaxPendingClusters {
		old := w.order[0]
		w.order = w.order[1:]
		delete(w.clusters, old)
	}
}

// Sweep attributes blocks: for every cluster whose prev pointer now has a
// successor on chain, the successor's Merkle root is checked against the
// recorded inputs. Matched or not, resolved clusters are dropped (their
// question has been answered). The successor's root and ID come from the
// chain's append-time cache, so a sweep performs no hashing.
func (w *Watcher) Sweep() {
	w.mu.Lock()
	defer w.mu.Unlock()
	remaining := w.order[:0]
	for _, prev := range w.order {
		succ, ok := w.cfg.Chain.SuccessorInfoOf(prev)
		if !ok {
			remaining = append(remaining, prev)
			continue
		}
		c := w.clusters[prev]
		if c.roots[succ.Root] {
			w.attributed = append(w.attributed, AttributedBlock{
				Height:    succ.Height,
				Timestamp: succ.Timestamp,
				Reward:    succ.Reward,
			})
		}
		delete(w.clusters, prev)
	}
	w.order = remaining
}

// Run schedules the watcher on a simulation clock: a full endpoint sweep
// whenever the tip changes (checked at checkInterval granularity) plus a
// Sweep pass. It returns a cancel function.
//
// The observable behaviour is that of the historical fixed-tick loop — the
// tip is inspected at multiples of checkInterval from the moment Run is
// called, so attribution output for a fixed seed is bit-identical — but the
// implementation is event-driven: a chain-tip subscription schedules one
// poll event at the next tick boundary after a block lands. A 28-day
// campaign therefore does work proportional to blocks and jobs, not clock
// ticks (≈20k events instead of 1.2M at a 2s tick).
func (w *Watcher) Run(sim *simclock.Sim, checkInterval time.Duration) (cancel func()) {
	t0 := sim.Now()
	var (
		mu      sync.Mutex
		stopped bool
		pending bool // a poll event is already scheduled
		lastTip [32]byte
	)
	poll := func() {
		mu.Lock()
		pending = false
		dead := stopped
		mu.Unlock()
		if dead {
			return
		}
		tip := w.cfg.Chain.TipID()
		mu.Lock()
		changed := tip != lastTip
		lastTip = tip
		mu.Unlock()
		if changed {
			w.PollAllEndpoints()
			w.Sweep()
		}
	}
	schedule := func() {
		mu.Lock()
		if stopped || pending {
			mu.Unlock()
			return
		}
		pending = true
		mu.Unlock()
		// The strictly-next boundary on the t0 + k·checkInterval grid. For a
		// block landing exactly ON a grid point the historical loop's
		// behaviour depended on event seq ordering; block times carry
		// nanosecond jitter (simnet adds +1ns), so that collision has
		// measure zero and strictly-next is an arbitrary tie-break.
		now := sim.Now()
		k := now.Sub(t0)/checkInterval + 1
		sim.Schedule(t0.Add(time.Duration(k)*checkInterval), poll)
	}
	unsub := w.cfg.Chain.Subscribe(func([32]byte, uint64) { schedule() })
	// The historical loop's first tick fired even without a preceding block,
	// capturing jobs for the boot-time tip; reproduce it.
	schedule()
	return func() {
		mu.Lock()
		stopped = true
		mu.Unlock()
		unsub()
	}
}

// Attributed returns the blocks proven to come from the pool, in
// attribution order.
func (w *Watcher) Attributed() []AttributedBlock {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]AttributedBlock(nil), w.attributed...)
}

// Stats summarises the watcher's observations.
type Stats struct {
	Polls            int
	PollFailures     int
	MaxInputsPerPrev int // the paper's "at most 128 different PoW inputs"
	Attributed       int
}

// StatsSnapshot returns current counters.
func (w *Watcher) StatsSnapshot() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Polls:            w.polls,
		PollFailures:     w.pollFails,
		MaxInputsPerPrev: w.maxPerPrev,
		Attributed:       len(w.attributed),
	}
}
