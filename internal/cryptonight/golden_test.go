package cryptonight

import (
	"bytes"
	"crypto/aes"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// goldenInputs are the inputs of the pinned digest table. Index 4 is 76
// zero bytes (a hashing-blob-sized input); index 6 a structured 76-byte
// pseudo blob.
func goldenInputs() [][]byte {
	blob := make([]byte, 76)
	for i := range blob {
		blob[i] = byte(i*7 + 3)
	}
	return [][]byte{
		{},
		[]byte("This is a test"),
		[]byte("The quick brown fox jumps over the lazy dog"),
		[]byte("benchmark input blob that is header-sized, 76 bytes total pad pad pad!!"),
		make([]byte, 76),
		{0xde, 0xad, 0xbe, 0xef},
		blob,
	}
}

// goldenDigests were recorded from the pre-T-table implementation (per-byte
// S-box round, []byte scratchpad, crypto/aes explode/implode) immediately
// before the refactor; the rewritten core must reproduce every one of them
// bit for bit.
var goldenDigests = map[string][]string{
	"test": {
		"44c64501dff1f6ecfc10b1c7c0740d179409c2f37cca9aa0d48f61e63e2ec185",
		"3cbe5f7ecae6baa099fbf2bdd33689081c81213bcb243aaed4b1934f5b946466",
		"c8f8b4319889c076c9078dd18709e797d763f1fea3f797d2fc49dd4e6bfa7155",
		"06f1eb4a884092327219383a262e2ba4ddac60365a7eac44289d4088cc886fd2",
		"bf4dcdd11b910663b2f33aff660325332a8ef2d50078f840eaa72573615ed8f6",
		"6ad6037df41c5df4579e39ce9260c0d9d055577c6f544c629c0df14aec09fe45",
		"b304df2e294b9c95c5608dda7eb2f65fa56731049c7be33e37afd958ec2cfa13",
	},
	"lite": {
		"6020c8d3e87af2433fc830bcd4464ad7e1182fc113d05303cbc9066b599ac403",
		"17b00ea1c1a9f479105b4edcae68f1f0c281aa643491a40086b37b063b9bbcb2",
		"78c99a62ff1ba8e5e86d1e4c34d79ab020ab296051ead8a9795739e660df1e2d",
		"5a178cd5b4658924a405e0c2aee5e2eb32150f5950fafda6468bcac5f620f5d0",
		"1b21928f0bea5d85a4f8ad425ca5c1bf5b1b9f9d73d675947d41143e73fbf27c",
		"b0555185dbba5a7e5a6f618fbda6b6f1ff1d2f0ddb0c5d6f82c18af605bf3303",
		"a70db6bc552364a8b1323f79c2ed7053ebb9cf34510aa0997ee4e29eabde109a",
	},
	"full": {
		"de25c172751793f2c11d28c009a20fbcb529d3ea102d069a3cffe31bb2d63417",
		"ac119c8362abfbbba17cf1ee1486625a8e61f4c70be8dfe7b5155c905001e34a",
		"9dbfdc873e6b0037489d2907702e1562dc9884615c4a8ba4a07218e5cda99c31",
		"f90709ef6949eb33610c6e4449d2090c1e74abdb67c12a3da7985640a137f92f",
		"7c8211a81e87859573ba26cf0f0205dbf622efb0fc32db246a16c78780b40b2d",
		"ef037629c92168f7872b03f68d4b13dfab6c119f22dcc328ef8b5a34d3872b06",
		"b882133e2a0d79c07d2e40a48f9d1cbd62f31a4488f3c3d717dbce6a7f31c363",
	},
}

func variantByName(t testing.TB, name string) Variant {
	t.Helper()
	switch name {
	case "test":
		return Test
	case "lite":
		return Lite
	case "full":
		return Full
	}
	t.Fatalf("unknown variant %q", name)
	return Variant{}
}

func TestGoldenVectors(t *testing.T) {
	for name, digests := range goldenDigests {
		v := variantByName(t, name)
		if name == "full" && testing.Short() {
			t.Logf("short mode: skipping %s variant", name)
			continue
		}
		h, err := NewHasher(v)
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range goldenInputs() {
			want, err := hex.DecodeString(digests[i])
			if err != nil {
				t.Fatal(err)
			}
			got := h.Sum(in)
			if !bytes.Equal(got[:], want) {
				t.Errorf("%s input %d: Hasher.Sum = %x, want %x", name, i, got, want)
			}
			if pooled := Sum(in, v); !bytes.Equal(pooled[:], want) {
				t.Errorf("%s input %d: pooled Sum = %x, want %x", name, i, pooled, want)
			}
		}
	}
}

// TestGoldenVectorsSoftAES pins the software explode/implode fallback to
// the same table, so non-AES-NI builds stay bit-identical too.
func TestGoldenVectorsSoftAES(t *testing.T) {
	h, err := NewHasher(Test)
	if err != nil {
		t.Fatal(err)
	}
	forceSoftAES(t)
	for i, in := range goldenInputs() {
		want, _ := hex.DecodeString(goldenDigests["test"][i])
		if got := h.Sum(in); !bytes.Equal(got[:], want) {
			t.Errorf("soft-AES input %d: %x, want %x", i, got, want)
		}
	}
}

// TestGrindMatchesGolden drives the Grind kernel over the structured
// 76-byte golden blob: for each variant, grinding with a target set just
// above the golden digest's compact value must find nonce 0 again and
// return the pinned digest (the blob already has its "nonce" bytes at
// offset 39, so splicing nonce 0 reproduces... it does not — splicing
// changes the bytes, so instead the expected digest is computed with Sum
// and Grind must agree with it exactly).
func TestGrindMatchesGolden(t *testing.T) {
	blob := goldenInputs()[6]
	for _, v := range []Variant{Test, Lite} {
		h, err := NewHasher(v)
		if err != nil {
			t.Fatal(err)
		}
		const off = 39
		for _, nonce := range []uint32{0, 1, 0xDEADBEEF} {
			want := func() [32]byte {
				b := append([]byte(nil), blob...)
				binary.LittleEndian.PutUint32(b[off:], nonce)
				return h.Sum(b)
			}()
			target := binary.LittleEndian.Uint32(want[28:]) + 1
			if target == 0 { // astronomically unlikely wrap; skip the nonce
				continue
			}
			saved := append([]byte(nil), blob...)
			n, sum, hashes, found := h.Grind(blob, off, target, nonce, 1)
			if !found || n != nonce || sum != want || hashes != 1 {
				t.Errorf("%s: Grind(start=%d) = (%d, %x, %d, %v), want (%d, %x, 1, true)",
					v.Name, nonce, n, sum, hashes, found, nonce, want)
			}
			if !bytes.Equal(blob, saved) {
				t.Errorf("%s: Grind mutated the caller's blob", v.Name)
			}
		}
	}
}

func TestGrindStrideSearch(t *testing.T) {
	h, err := NewHasher(Test)
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 76)
	const off, target = 4, 1 << 28 // ~1/16 of nonces qualify
	// Reference: scan sequentially for the first qualifying nonce.
	seq, seqSum, _, ok := h.Grind(blob, off, target, 0, 1<<16)
	if !ok {
		t.Fatal("no qualifying nonce in 2^16 attempts")
	}
	// The striped search from start=seq%3 with stride 3 must rediscover it.
	n, sum, _, ok := h.GrindStride(blob, off, target, seq%3, 3, 1<<16)
	if !ok {
		t.Fatal("strided search found nothing")
	}
	if n > seq || (n == seq && sum != seqSum) {
		t.Errorf("strided search: nonce %d (sum %x), sequential found %d (%x)", n, sum, seq, seqSum)
	}
	// Exhaustion: a target of 0 can never be met.
	if _, _, hashes, found := h.Grind(blob, off, 0, 0, 7); found || hashes != 7 {
		t.Errorf("Grind with target 0: found=%v hashes=%d, want false/7", found, hashes)
	}
}

// TestPooledGrindRace grinds from two goroutines on pooled hashers — the
// webminer fleet's shape — under the race detector.
func TestPooledGrindRace(t *testing.T) {
	blob := make([]byte, 76)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				h, err := GetHasher(Test)
				if err != nil {
					t.Error(err)
					return
				}
				h.GrindStride(blob, 4, 1<<24, uint32(g), 2, 4)
				PutHasher(h)
				Sum(blob, Test)
			}
		}(g)
	}
	wg.Wait()
}

// TestSumAllocs pins the zero-allocation property of the pooled hash path
// for the Test variant (the profile large-scale simulation runs on).
func TestSumAllocs(t *testing.T) {
	in := goldenInputs()[6]
	Sum(in, Test) // prime the pool
	if n := testing.AllocsPerRun(20, func() { Sum(in, Test) }); n != 0 {
		t.Errorf("pooled Sum allocates %.1f objects/op, want 0", n)
	}
	h, err := NewHasher(Test)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(20, func() { h.Sum(in) }); n != 0 {
		t.Errorf("Hasher.Sum allocates %.1f objects/op, want 0", n)
	}
	h.Grind(in, 4, 0, 0, 1) // size the blob scratch
	if n := testing.AllocsPerRun(20, func() { h.Grind(in, 4, 0, 0, 2) }); n != 0 {
		t.Errorf("Grind allocates %.1f objects/op, want 0", n)
	}
}

// TestExpandKeyMatchesCryptoAES verifies that the in-package AES-128 — key
// schedule plus block encryption, on both the dispatch path and the
// software fallback — is bit-identical to crypto/aes.
func TestExpandKeyMatchesCryptoAES(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 64; trial++ {
		var key [16]byte
		var block [16]byte
		rng.Read(key[:])
		rng.Read(block[:])
		ref, err := aes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		var want [16]byte
		ref.Encrypt(want[:], block[:])

		var rk roundKeys
		expandKey(key[:], &rk)
		s0 := binary.LittleEndian.Uint64(block[0:])
		s1 := binary.LittleEndian.Uint64(block[8:])
		var got [16]byte
		g0, g1 := encryptBlockGo(&rk, s0, s1)
		binary.LittleEndian.PutUint64(got[0:], g0)
		binary.LittleEndian.PutUint64(got[8:], g1)
		if got != want {
			t.Fatalf("trial %d: encryptBlockGo %x, crypto/aes %x", trial, got, want)
		}

		// Whole lane buffer through the dispatch path (AES-NI when present).
		var lanes [16]uint64
		var lanesBytes [128]byte
		rng.Read(lanesBytes[:])
		for i := range lanes {
			lanes[i] = binary.LittleEndian.Uint64(lanesBytes[8*i:])
		}
		encryptLanes(&rk, &lanes)
		for blk := 0; blk < 8; blk++ {
			var w [16]byte
			ref.Encrypt(w[:], lanesBytes[16*blk:16*blk+16])
			var g [16]byte
			binary.LittleEndian.PutUint64(g[0:], lanes[2*blk])
			binary.LittleEndian.PutUint64(g[8:], lanes[2*blk+1])
			if g != w {
				t.Fatalf("trial %d block %d: encryptLanes %x, crypto/aes %x", trial, blk, g, w)
			}
		}
	}
}

// TestAesRound64MatchesByteReference checks the T-table round against the
// byte-wise algebraic formulation on random states and keys.
func TestAesRound64MatchesByteReference(t *testing.T) {
	f := func(s0, s1, k0, k1 uint64) bool {
		var src, key, want [16]byte
		binary.LittleEndian.PutUint64(src[0:], s0)
		binary.LittleEndian.PutUint64(src[8:], s1)
		binary.LittleEndian.PutUint64(key[0:], k0)
		binary.LittleEndian.PutUint64(key[8:], k1)
		aesRound(&want, &src, &key)
		g0, g1 := aesRound64(s0, s1, k0, k1)
		return g0 == binary.LittleEndian.Uint64(want[0:]) &&
			g1 == binary.LittleEndian.Uint64(want[8:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
