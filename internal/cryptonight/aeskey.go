package cryptonight

import "math/bits"

// AES-128 key expansion and full-block encryption for the explode/implode
// phases. CryptoNight keys both phases off the Keccak state, with a fresh
// key schedule per hash — crypto/aes would heap-allocate a cipher object
// for every one of them, so the schedule is expanded into a Hasher-owned
// array instead and the blocks are encrypted either by the AES-NI assembly
// kernel (amd64) or by the T-table software path below. Both are
// bit-identical to crypto/aes (checked by tests), so swapping them never
// changes a digest.

// roundKeys is an expanded AES-128 schedule: 11 round keys of 4 columns,
// each column a little-endian uint32 — the same column convention the
// T-tables use. On a little-endian machine the array's memory image is
// exactly the 176 round-key bytes, which is what the assembly kernel loads.
type roundKeys [44]uint32

// expandKey computes the AES-128 key schedule for the 16-byte key at
// key[:16]. It allocates nothing.
func expandKey(key []byte, rk *roundKeys) {
	_ = key[15]
	// The schedule is defined on big-endian words; compute it that way and
	// store each word byte-reversed to get little-endian columns.
	var w [44]uint32
	for i := 0; i < 4; i++ {
		w[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rc := byte(1)
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			t = t<<8 | t>>24 // RotWord
			t = uint32(sbox[t>>24])<<24 | uint32(sbox[(t>>16)&0xFF])<<16 | // SubWord
				uint32(sbox[(t>>8)&0xFF])<<8 | uint32(sbox[t&0xFF])
			t ^= uint32(rc) << 24
			rc = xtime(rc)
		}
		w[i] = w[i-4] ^ t
	}
	for i := range w {
		rk[i] = bits.ReverseBytes32(w[i])
	}
}

// encryptBlockGo encrypts one 16-byte block (two little-endian uint64
// lanes) with the expanded schedule: AddRoundKey, 9 T-table rounds, and a
// final round without MixColumns. Bit-identical to crypto/aes encryption.
func encryptBlockGo(rk *roundKeys, s0, s1 uint64) (uint64, uint64) {
	c0 := uint32(s0) ^ rk[0]
	c1 := uint32(s0>>32) ^ rk[1]
	c2 := uint32(s1) ^ rk[2]
	c3 := uint32(s1>>32) ^ rk[3]
	for r := 4; r < 40; r += 4 {
		o0 := te0[c0&0xFF] ^ te1[(c1>>8)&0xFF] ^ te2[(c2>>16)&0xFF] ^ te3[c3>>24] ^ rk[r]
		o1 := te0[c1&0xFF] ^ te1[(c2>>8)&0xFF] ^ te2[(c3>>16)&0xFF] ^ te3[c0>>24] ^ rk[r+1]
		o2 := te0[c2&0xFF] ^ te1[(c3>>8)&0xFF] ^ te2[(c0>>16)&0xFF] ^ te3[c1>>24] ^ rk[r+2]
		o3 := te0[c3&0xFF] ^ te1[(c0>>8)&0xFF] ^ te2[(c1>>16)&0xFF] ^ te3[c2>>24] ^ rk[r+3]
		c0, c1, c2, c3 = o0, o1, o2, o3
	}
	// Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
	o0 := uint32(sbox[c0&0xFF]) | uint32(sbox[(c1>>8)&0xFF])<<8 | uint32(sbox[(c2>>16)&0xFF])<<16 | uint32(sbox[c3>>24])<<24
	o1 := uint32(sbox[c1&0xFF]) | uint32(sbox[(c2>>8)&0xFF])<<8 | uint32(sbox[(c3>>16)&0xFF])<<16 | uint32(sbox[c0>>24])<<24
	o2 := uint32(sbox[c2&0xFF]) | uint32(sbox[(c3>>8)&0xFF])<<8 | uint32(sbox[(c0>>16)&0xFF])<<16 | uint32(sbox[c1>>24])<<24
	o3 := uint32(sbox[c3&0xFF]) | uint32(sbox[(c0>>8)&0xFF])<<8 | uint32(sbox[(c1>>16)&0xFF])<<16 | uint32(sbox[c2>>24])<<24
	o0 ^= rk[40]
	o1 ^= rk[41]
	o2 ^= rk[42]
	o3 ^= rk[43]
	return uint64(o1)<<32 | uint64(o0), uint64(o3)<<32 | uint64(o2)
}

// encryptLanesGo encrypts the eight 16-byte blocks of a 128-byte lane
// buffer in place — the software fallback for the assembly kernel.
func encryptLanesGo(rk *roundKeys, text *[16]uint64) {
	for i := 0; i < 16; i += 2 {
		text[i], text[i+1] = encryptBlockGo(rk, text[i], text[i+1])
	}
}
