// Package cryptonight implements the memory-hard proof-of-work used by
// Monero and thus by every browser miner the paper studies (CryptoNote
// standard 008). The implementation is structurally faithful:
//
//  1. the input is absorbed into a 200-byte Keccak-1600 state,
//  2. an AES-keyed "explode" fills a large scratchpad (2 MB in the full
//     profile) from the state,
//  3. the main loop performs Iterations data-dependent read-modify-write
//     rounds over the scratchpad mixing AES, XOR and a 64×64→128 bit
//     multiply-add,
//  4. an AES-keyed "implode" folds the whole scratchpad back into the state,
//  5. the state is permuted once more and hashed to the final 32 bytes.
//
// Two deliberate substitutions versus the reference (documented in
// DESIGN.md): the single AES rounds are replaced by full AES-128 block
// encryptions (AES-NI on amd64, T-table software elsewhere — bit-identical
// to crypto/aes), and the final hash is always Keccak-256 instead of the
// 2-bit BLAKE/Grøstl/JH/Skein selector. Neither changes any property the
// paper's measurements rely on: the function remains deterministic,
// memory-hard, CPU-bound and verifiable, and the full profile lands in the
// same tens-of-hashes-per-second regime as the paper's 2013 MacBook
// (20 H/s) that calibrates Figure 4's top axis.
//
// The scratchpad is held as little-endian uint64 lanes and the main loop
// runs on uint64 register pairs through the T-tables (see aesround.go), so
// the 2^12–2^19 memory-hard rounds do no byte marshalling at all. Mining
// and verification code paths reuse Hashers: either explicitly
// (NewHasher, one per goroutine) or through the per-variant pool behind
// Sum and Grind.
package cryptonight

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/keccak"
)

// Variant selects a scratchpad/iteration profile. Profiles other than Full
// trade memory hardness for speed so that simulations of hundreds of
// thousands of web miners remain tractable; all profiles share every code
// path.
type Variant struct {
	Name           string
	ScratchpadSize int // bytes; must be a power of two and a multiple of 128
	Iterations     int
}

// Standard profiles.
var (
	// Full mirrors CryptoNight v0: 2 MB scratchpad, 2^19 iterations.
	Full = Variant{Name: "full", ScratchpadSize: 1 << 21, Iterations: 1 << 19}
	// Lite halves both parameters (the CryptoNight-Lite profile used by
	// some web miners to reduce page jank).
	Lite = Variant{Name: "lite", ScratchpadSize: 1 << 20, Iterations: 1 << 18}
	// Test is a reduced profile for unit tests and large-scale simulation.
	Test = Variant{Name: "test", ScratchpadSize: 1 << 16, Iterations: 1 << 12}
)

func (v Variant) validate() error {
	if v.ScratchpadSize <= 0 || v.ScratchpadSize&(v.ScratchpadSize-1) != 0 {
		return fmt.Errorf("cryptonight: scratchpad size %d not a power of two", v.ScratchpadSize)
	}
	if v.ScratchpadSize%128 != 0 {
		return fmt.Errorf("cryptonight: scratchpad size %d not a multiple of 128", v.ScratchpadSize)
	}
	if v.Iterations <= 0 {
		return fmt.Errorf("cryptonight: iterations %d not positive", v.Iterations)
	}
	return nil
}

// Hasher computes CryptoNight hashes, reusing its scratchpad across calls.
// It is not safe for concurrent use; mining code runs one Hasher per
// goroutine (exactly as the web miner runs one scratchpad per worker),
// either via NewHasher or borrowed from the per-variant pool with
// GetHasher/PutHasher.
type Hasher struct {
	v   Variant
	pad []uint64 // scratchpad as little-endian uint64 lanes

	// Per-hash working state, kept on the Hasher so Sum allocates nothing:
	// the two expanded AES-128 schedules and the 128-byte explode/implode
	// lane buffer.
	rk0, rk1 roundKeys
	text     [16]uint64

	// blob is Grind's reusable copy of the job blob.
	blob []byte
}

// NewHasher allocates a Hasher for the given variant.
func NewHasher(v Variant) (*Hasher, error) {
	if err := v.validate(); err != nil {
		return nil, err
	}
	return &Hasher{v: v, pad: make([]uint64, v.ScratchpadSize/8)}, nil
}

// Variant returns the profile this Hasher was built with.
func (h *Hasher) Variant() Variant { return h.v }

// Sum computes the CryptoNight hash of data.
//
//lint:hotpath
func (h *Hasher) Sum(data []byte) [32]byte {
	state := keccak.State1600(data)

	expandKey(state[0:16], &h.rk0)
	expandKey(state[32:48], &h.rk1)

	// Explode: expand state[64:192] into the scratchpad, 128 bytes at a
	// time through the AES lane buffer.
	text := &h.text
	for i := 0; i < 16; i++ {
		text[i] = binary.LittleEndian.Uint64(state[64+8*i:])
	}
	pad := h.pad
	for off := 0; off < len(pad); off += 16 {
		encryptLanes(&h.rk0, text)
		copy(pad[off:off+16], text[:])
	}

	// Main loop state: two 16-byte registers derived from the Keccak state.
	a0 := binary.LittleEndian.Uint64(state[0:]) ^ binary.LittleEndian.Uint64(state[32:])
	a1 := binary.LittleEndian.Uint64(state[8:]) ^ binary.LittleEndian.Uint64(state[40:])
	b0 := binary.LittleEndian.Uint64(state[16:]) ^ binary.LittleEndian.Uint64(state[48:])
	b1 := binary.LittleEndian.Uint64(state[24:]) ^ binary.LittleEndian.Uint64(state[56:])

	// mask turns register a (resp. c) into the byte address of a 16-byte
	// cache line; >>3 converts it to the line's first uint64 lane.
	mask := uint64(h.v.ScratchpadSize-1) &^ 0xF
	for i := h.v.Iterations; i > 0; i-- {
		// First half-round: one AES round on the a-addressed cache line,
		// keyed directly by register a (no key schedule — as in the
		// reference implementation).
		idx := (a0 & mask) >> 3
		c0, c1 := aesRound64(pad[idx], pad[idx+1], a0, a1)
		pad[idx] = b0 ^ c0
		pad[idx+1] = b1 ^ c1

		// Second half-round: multiply-add on the c-addressed cache line.
		idx2 := (c0 & mask) >> 3
		d0 := pad[idx2]
		d1 := pad[idx2+1]
		hi, lo := bits.Mul64(c0, d0)
		a0 += hi
		a1 += lo
		pad[idx2] = a0
		pad[idx2+1] = a1
		a0 ^= d0
		a1 ^= d1
		b0, b1 = c0, c1
	}

	// Implode: fold the scratchpad back into state[64:192].
	for i := 0; i < 16; i++ {
		text[i] = binary.LittleEndian.Uint64(state[64+8*i:])
	}
	for off := 0; off < len(pad); off += 16 {
		line := pad[off : off+16 : off+16]
		for i := 0; i < 16; i++ {
			text[i] ^= line[i]
		}
		encryptLanes(&h.rk1, text)
	}
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(state[64+8*i:], text[i])
	}

	// Final permutation and hash.
	var st [25]uint64
	for i := 0; i < 25; i++ {
		st[i] = binary.LittleEndian.Uint64(state[i*8:])
	}
	keccak.Permute(&st)
	var out [200]byte
	for i := 0; i < 25; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], st[i])
	}
	return keccak.Sum256(out[:])
}

// Grind searches nonces n = start, start+1, … for one that meets the
// compact pool target, splicing each (little-endian) into
// blob[nonceOffset:nonceOffset+4]. The job setup — the blob copy and the
// bounds checks — is hoisted out of the nonce loop; blob itself is never
// written. It stops after maxHashes attempts, reporting how many hashes
// were computed either way.
//
//lint:hotpath
func (h *Hasher) Grind(blob []byte, nonceOffset int, target uint32, start uint32, maxHashes int) (nonce uint32, sum [32]byte, hashes int, found bool) {
	return h.GrindStride(blob, nonceOffset, target, start, 1, maxHashes)
}

// GrindStride is Grind scanning n = start, start+stride, start+2·stride, …
// — the layout a thread pool uses to stripe one nonce space across workers
// without duplicating an attempt.
//
//lint:hotpath
func (h *Hasher) GrindStride(blob []byte, nonceOffset int, target uint32, start, stride uint32, maxHashes int) (nonce uint32, sum [32]byte, hashes int, found bool) {
	if nonceOffset < 0 || nonceOffset+4 > len(blob) {
		//lint:ignore hotpath programming-error guard, runs once per grind call, not per hash
		panic(fmt.Sprintf("cryptonight: nonce offset %d out of range for %d-byte blob", nonceOffset, len(blob)))
	}
	h.blob = append(h.blob[:0], blob...)
	buf := h.blob
	n := start
	for i := 0; i < maxHashes; i++ {
		binary.LittleEndian.PutUint32(buf[nonceOffset:], n)
		s := h.Sum(buf)
		hashes++
		if CheckCompactTarget(s, target) {
			return n, s, hashes, true
		}
		n += stride
	}
	return 0, sum, hashes, false
}

// pools holds one sync.Pool of Hashers per variant, so Sum/Grind
// convenience calls and transient verifiers reuse scratchpads instead of
// allocating multi-MB pads per call.
var pools sync.Map // Variant -> *sync.Pool

// GetHasher borrows a Hasher for the variant from the per-variant pool.
// Return it with PutHasher when done.
func GetHasher(v Variant) (*Hasher, error) {
	if p, ok := pools.Load(v); ok {
		return p.(*sync.Pool).Get().(*Hasher), nil
	}
	if err := v.validate(); err != nil {
		return nil, err
	}
	p, _ := pools.LoadOrStore(v, &sync.Pool{New: func() interface{} {
		return &Hasher{v: v, pad: make([]uint64, v.ScratchpadSize/8)}
	}})
	return p.(*sync.Pool).Get().(*Hasher), nil
}

// PutHasher returns a Hasher obtained from GetHasher (or NewHasher) to its
// variant's pool.
func PutHasher(h *Hasher) {
	if h == nil {
		return
	}
	if p, ok := pools.Load(h.v); ok {
		p.(*sync.Pool).Put(h)
	}
}

// Sum is a convenience wrapper computing one hash on a pooled Hasher; at
// steady state it allocates nothing.
func Sum(data []byte, v Variant) [32]byte {
	h, err := GetHasher(v)
	if err != nil {
		panic(err)
	}
	sum := h.Sum(data)
	PutHasher(h)
	return sum
}

// CheckDifficulty reports whether hash satisfies the given difficulty under
// the Monero consensus rule: hash (interpreted as a little-endian 256-bit
// integer) multiplied by difficulty must not overflow 256 bits.
func CheckDifficulty(hash [32]byte, difficulty uint64) bool {
	if difficulty == 0 {
		return true
	}
	var w [4]uint64
	for i := 0; i < 4; i++ {
		w[i] = binary.LittleEndian.Uint64(hash[i*8:])
	}
	// Cascade multiply hash × difficulty; the product's bits above 2^256
	// are the final carry. The block qualifies iff that carry is zero.
	var carry uint64
	for i := 0; i < 4; i++ {
		hi, lo := bits.Mul64(w[i], difficulty)
		_, c := bits.Add64(lo, carry, 0)
		carry, _ = bits.Add64(hi, 0, c)
	}
	return carry == 0
}

// DifficultyForTarget returns the pool-style 32-bit compact target encoding
// used by Coinhive-like job messages: target = floor(2^32 / difficulty).
// Under the Coinhive convention (see CheckCompactTarget) a share qualifies
// when the hash's trailing 4 bytes, hash[28:32] read as a little-endian
// uint32, are below the target.
func DifficultyForTarget(difficulty uint64) uint32 {
	if difficulty == 0 {
		return ^uint32(0)
	}
	t := (uint64(1) << 32) / difficulty
	if t > uint64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(t)
}

// CheckCompactTarget reports whether hash meets a compact 32-bit pool
// target: the hash's trailing 4 bytes, hash[28:32] read as a little-endian
// uint32, must be strictly below target. The trailing bytes are the most
// significant ones of the little-endian 256-bit hash value, which is what
// makes this a cheap proxy for the full CheckDifficulty comparison — the
// convention the Coinhive web miner implements.
func CheckCompactTarget(hash [32]byte, target uint32) bool {
	v := binary.LittleEndian.Uint32(hash[28:])
	return v < target
}
