// Package cryptonight implements the memory-hard proof-of-work used by
// Monero and thus by every browser miner the paper studies (CryptoNote
// standard 008). The implementation is structurally faithful:
//
//  1. the input is absorbed into a 200-byte Keccak-1600 state,
//  2. an AES-keyed "explode" fills a large scratchpad (2 MB in the full
//     profile) from the state,
//  3. the main loop performs Iterations data-dependent read-modify-write
//     rounds over the scratchpad mixing AES, XOR and a 64×64→128 bit
//     multiply-add,
//  4. an AES-keyed "implode" folds the whole scratchpad back into the state,
//  5. the state is permuted once more and hashed to the final 32 bytes.
//
// Two deliberate substitutions versus the reference (documented in
// DESIGN.md): the single AES rounds are replaced by full AES-128 block
// encryptions (crypto/aes, hardware accelerated), and the final hash is
// always Keccak-256 instead of the 2-bit BLAKE/Grøstl/JH/Skein selector.
// Neither changes any property the paper's measurements rely on: the
// function remains deterministic, memory-hard, CPU-bound and verifiable,
// and the full profile lands in the same tens-of-hashes-per-second regime
// as the paper's 2013 MacBook (20 H/s) that calibrates Figure 4's top axis.
package cryptonight

import (
	"crypto/aes"
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/keccak"
)

// Variant selects a scratchpad/iteration profile. Profiles other than Full
// trade memory hardness for speed so that simulations of hundreds of
// thousands of web miners remain tractable; all profiles share every code
// path.
type Variant struct {
	Name           string
	ScratchpadSize int // bytes; must be a power of two and a multiple of 128
	Iterations     int
}

// Standard profiles.
var (
	// Full mirrors CryptoNight v0: 2 MB scratchpad, 2^19 iterations.
	Full = Variant{Name: "full", ScratchpadSize: 1 << 21, Iterations: 1 << 19}
	// Lite halves both parameters (the CryptoNight-Lite profile used by
	// some web miners to reduce page jank).
	Lite = Variant{Name: "lite", ScratchpadSize: 1 << 20, Iterations: 1 << 18}
	// Test is a reduced profile for unit tests and large-scale simulation.
	Test = Variant{Name: "test", ScratchpadSize: 1 << 16, Iterations: 1 << 12}
)

func (v Variant) validate() error {
	if v.ScratchpadSize <= 0 || v.ScratchpadSize&(v.ScratchpadSize-1) != 0 {
		return fmt.Errorf("cryptonight: scratchpad size %d not a power of two", v.ScratchpadSize)
	}
	if v.ScratchpadSize%128 != 0 {
		return fmt.Errorf("cryptonight: scratchpad size %d not a multiple of 128", v.ScratchpadSize)
	}
	if v.Iterations <= 0 {
		return fmt.Errorf("cryptonight: iterations %d not positive", v.Iterations)
	}
	return nil
}

// Hasher computes CryptoNight hashes, reusing its scratchpad across calls.
// It is not safe for concurrent use; mining code runs one Hasher per
// goroutine (exactly as the web miner runs one scratchpad per worker).
type Hasher struct {
	v   Variant
	pad []byte
}

// NewHasher allocates a Hasher for the given variant.
func NewHasher(v Variant) (*Hasher, error) {
	if err := v.validate(); err != nil {
		return nil, err
	}
	return &Hasher{v: v, pad: make([]byte, v.ScratchpadSize)}, nil
}

// Variant returns the profile this Hasher was built with.
func (h *Hasher) Variant() Variant { return h.v }

// Sum computes the CryptoNight hash of data.
func (h *Hasher) Sum(data []byte) [32]byte {
	state := keccak.State1600(data)

	key0, err := aes.NewCipher(state[0:32][:16])
	if err != nil {
		panic(err) // impossible: key size is fixed
	}
	key1, err := aes.NewCipher(state[32:64][:16])
	if err != nil {
		panic(err)
	}

	// Explode: expand state[64:192] into the scratchpad.
	var text [128]byte
	copy(text[:], state[64:192])
	pad := h.pad
	for off := 0; off < len(pad); off += 128 {
		for b := 0; b < 128; b += 16 {
			key0.Encrypt(text[b:b+16], text[b:b+16])
		}
		copy(pad[off:off+128], text[:])
	}

	// Main loop state: two 16-byte registers derived from the Keccak state.
	var a, b [2]uint64
	a[0] = binary.LittleEndian.Uint64(state[0:]) ^ binary.LittleEndian.Uint64(state[32:])
	a[1] = binary.LittleEndian.Uint64(state[8:]) ^ binary.LittleEndian.Uint64(state[40:])
	b[0] = binary.LittleEndian.Uint64(state[16:]) ^ binary.LittleEndian.Uint64(state[48:])
	b[1] = binary.LittleEndian.Uint64(state[24:]) ^ binary.LittleEndian.Uint64(state[56:])

	mask := uint64(len(pad)-1) &^ 0xF
	var akey, cbuf [16]byte
	var cx [2]uint64

	for i := 0; i < h.v.Iterations; i++ {
		// First half-round: one AES round on the a-addressed cache line,
		// keyed directly by register a (no key schedule — as in the
		// reference implementation).
		addr := a[0] & mask
		copy(cbuf[:], pad[addr:addr+16])
		binary.LittleEndian.PutUint64(akey[0:], a[0])
		binary.LittleEndian.PutUint64(akey[8:], a[1])
		aesRound(&cbuf, &cbuf, &akey)
		cx[0] = binary.LittleEndian.Uint64(cbuf[0:])
		cx[1] = binary.LittleEndian.Uint64(cbuf[8:])
		binary.LittleEndian.PutUint64(pad[addr:], b[0]^cx[0])
		binary.LittleEndian.PutUint64(pad[addr+8:], b[1]^cx[1])

		// Second half-round: multiply-add on the c-addressed cache line.
		addr2 := cx[0] & mask
		d0 := binary.LittleEndian.Uint64(pad[addr2:])
		d1 := binary.LittleEndian.Uint64(pad[addr2+8:])
		hi, lo := bits.Mul64(cx[0], d0)
		a[0] += hi
		a[1] += lo
		binary.LittleEndian.PutUint64(pad[addr2:], a[0])
		binary.LittleEndian.PutUint64(pad[addr2+8:], a[1])
		a[0] ^= d0
		a[1] ^= d1
		b = cx
	}

	// Implode: fold the scratchpad back into state[64:192].
	copy(text[:], state[64:192])
	for off := 0; off < len(pad); off += 128 {
		for i := 0; i < 128; i++ {
			text[i] ^= pad[off+i]
		}
		for b := 0; b < 128; b += 16 {
			key1.Encrypt(text[b:b+16], text[b:b+16])
		}
	}
	copy(state[64:192], text[:])

	// Final permutation and hash.
	var st [25]uint64
	for i := 0; i < 25; i++ {
		st[i] = binary.LittleEndian.Uint64(state[i*8:])
	}
	keccak.Permute(&st)
	var out [200]byte
	for i := 0; i < 25; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], st[i])
	}
	return keccak.Sum256(out[:])
}

// Sum is a convenience wrapper allocating a throwaway Hasher.
func Sum(data []byte, v Variant) [32]byte {
	h, err := NewHasher(v)
	if err != nil {
		panic(err)
	}
	return h.Sum(data)
}

// CheckDifficulty reports whether hash satisfies the given difficulty under
// the Monero consensus rule: hash (interpreted as a little-endian 256-bit
// integer) multiplied by difficulty must not overflow 256 bits.
func CheckDifficulty(hash [32]byte, difficulty uint64) bool {
	if difficulty == 0 {
		return true
	}
	var w [4]uint64
	for i := 0; i < 4; i++ {
		w[i] = binary.LittleEndian.Uint64(hash[i*8:])
	}
	// Cascade multiply hash × difficulty; the product's bits above 2^256
	// are the final carry. The block qualifies iff that carry is zero.
	var carry uint64
	for i := 0; i < 4; i++ {
		hi, lo := bits.Mul64(w[i], difficulty)
		_, c := bits.Add64(lo, carry, 0)
		carry, _ = bits.Add64(hi, 0, c)
	}
	return carry == 0
}

// DifficultyForTarget returns the pool-style 32-bit compact target encoding
// used by Coinhive-like job messages: target = floor(2^32 / difficulty).
// A share qualifies when the first 4 little-endian bytes of the hash,
// read as uint32, are below the target.
func DifficultyForTarget(difficulty uint64) uint32 {
	if difficulty == 0 {
		return ^uint32(0)
	}
	t := (uint64(1) << 32) / difficulty
	if t > uint64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(t)
}

// CheckCompactTarget reports whether hash meets a compact 32-bit pool target.
func CheckCompactTarget(hash [32]byte, target uint32) bool {
	// Pool convention (as in the Coinhive web miner): compare the hash's
	// trailing 4 bytes little-endian against the target.
	v := binary.LittleEndian.Uint32(hash[28:])
	return v < target
}
