package cryptonight

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestSboxKnownValues(t *testing.T) {
	// FIPS-197 appendix values.
	cases := map[byte]byte{0x00: 0x63, 0x01: 0x7c, 0x02: 0x77, 0x03: 0x7b, 0x10: 0xca, 0x53: 0xed, 0xff: 0x16}
	for in, want := range cases {
		if sbox[in] != want {
			t.Errorf("sbox[%#02x] = %#02x, want %#02x", in, sbox[in], want)
		}
	}
}

func TestSboxIsPermutation(t *testing.T) {
	var seen [256]bool
	for _, v := range sbox {
		if seen[v] {
			t.Fatalf("sbox value %#02x repeated", v)
		}
		seen[v] = true
	}
}

func TestAesRoundChangesStateAndIsDeterministic(t *testing.T) {
	var s, s2, k [16]byte
	for i := range s {
		s[i] = byte(i)
		k[i] = byte(0xA0 + i)
	}
	s2 = s
	var o1, o2 [16]byte
	aesRound(&o1, &s, &k)
	aesRound(&o2, &s2, &k)
	if o1 != o2 {
		t.Error("aesRound not deterministic")
	}
	if o1 == s {
		t.Error("aesRound is identity")
	}
	// In-place aliasing must give the same result.
	aesRound(&s, &s, &k)
	if s != o1 {
		t.Error("aliased aesRound differs from non-aliased")
	}
}

func TestSumDeterministicPerVariant(t *testing.T) {
	h1, err := NewHasher(Test)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHasher(Test)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("This is a test")
	a := h1.Sum(in)
	b := h2.Sum(in)
	if a != b {
		t.Fatalf("same input, same variant: %x != %x", a, b)
	}
	if c := h1.Sum(in); c != a {
		t.Fatalf("hasher reuse changed digest: %x != %x", c, a)
	}
}

func TestVariantsProduceDistinctDigests(t *testing.T) {
	in := []byte("variant separation")
	a := Sum(in, Test)
	b := Sum(in, Variant{Name: "test2", ScratchpadSize: 1 << 17, Iterations: 1 << 12})
	if a == b {
		t.Error("different scratchpad sizes produced identical digests")
	}
}

func TestAvalanche(t *testing.T) {
	h, _ := NewHasher(Test)
	base := h.Sum([]byte("nonce=0"))
	flip := h.Sum([]byte("nonce=1"))
	// Count differing bits; expect near 128 of 256, accept a broad window.
	diff := 0
	for i := range base {
		b := base[i] ^ flip[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff < 80 || diff > 176 {
		t.Errorf("avalanche bit-diff = %d, want ~128", diff)
	}
}

func TestVariantValidation(t *testing.T) {
	bad := []Variant{
		{Name: "zero"},
		{Name: "notpow2", ScratchpadSize: 3 << 16, Iterations: 100},
		{Name: "not128", ScratchpadSize: 64, Iterations: 100},
		{Name: "noiter", ScratchpadSize: 1 << 16, Iterations: 0},
	}
	for _, v := range bad {
		if _, err := NewHasher(v); err == nil {
			t.Errorf("NewHasher(%s) accepted invalid variant", v.Name)
		}
	}
}

func TestCheckDifficulty(t *testing.T) {
	var one [32]byte // hash = 0: passes any difficulty
	if !CheckDifficulty(one, ^uint64(0)) {
		t.Error("zero hash must satisfy max difficulty")
	}
	var max [32]byte
	for i := range max {
		max[i] = 0xff
	}
	if !CheckDifficulty(max, 1) {
		t.Error("difficulty 1 must accept any hash")
	}
	if CheckDifficulty(max, 2) {
		t.Error("all-ones hash cannot satisfy difficulty 2")
	}
	// hash = 2^255 exactly: ×2 = 2^256 overflows.
	var half [32]byte
	half[31] = 0x80
	if CheckDifficulty(half, 2) {
		t.Error("2^255 × 2 must overflow")
	}
	half[31] = 0x7f
	if !CheckDifficulty(half, 2) {
		t.Error("hash just below 2^255 must satisfy difficulty 2")
	}
}

func TestCheckDifficultyMatchesBigIntSemantics(t *testing.T) {
	// Cross-check the cascade multiply against a widening reference.
	f := func(w0, w1, w2, w3, d uint64) bool {
		var h [32]byte
		binary.LittleEndian.PutUint64(h[0:], w0)
		binary.LittleEndian.PutUint64(h[8:], w1)
		binary.LittleEndian.PutUint64(h[16:], w2)
		binary.LittleEndian.PutUint64(h[24:], w3)
		got := CheckDifficulty(h, d)
		want := refCheck(h, d)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// refCheck is an independent big.Int-free reference using 128-bit partials
// written differently from the production code.
func refCheck(h [32]byte, d uint64) bool {
	if d == 0 {
		return true
	}
	// Long multiplication, schoolbook, collecting into 5 limbs.
	var limbs [5]uint64
	for i := 0; i < 4; i++ {
		w := binary.LittleEndian.Uint64(h[i*8:])
		hi, lo := mul128(w, d)
		// add lo at limb i, hi at limb i+1 with carries
		c := add64(&limbs[i], lo, 0)
		c = add64(&limbs[i+1], hi, c)
		for j := i + 2; c != 0 && j < 5; j++ {
			c = add64(&limbs[j], 0, c)
		}
	}
	return limbs[4] == 0
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	c = t >> 32
	m := t & mask
	t = a0*b1 + m
	lo |= (t & mask) << 32
	hi = a1*b1 + c + t>>32
	return
}

func add64(dst *uint64, v, carry uint64) uint64 {
	s := *dst + v
	c1 := uint64(0)
	if s < *dst {
		c1 = 1
	}
	s2 := s + carry
	if s2 < s {
		c1 = 1
	}
	*dst = s2
	return c1
}

func TestCompactTarget(t *testing.T) {
	if DifficultyForTarget(0) != ^uint32(0) {
		t.Error("difficulty 0 must map to max target")
	}
	if DifficultyForTarget(1) != ^uint32(0) {
		t.Error("difficulty 1 must map to max target")
	}
	tgt := DifficultyForTarget(256)
	if tgt != 1<<24 {
		t.Errorf("target(256) = %#x, want %#x", tgt, 1<<24)
	}
	var h [32]byte
	binary.LittleEndian.PutUint32(h[28:], tgt-1)
	if !CheckCompactTarget(h, tgt) {
		t.Error("hash below target rejected")
	}
	binary.LittleEndian.PutUint32(h[28:], tgt)
	if CheckCompactTarget(h, tgt) {
		t.Error("hash equal to target accepted")
	}
}

func TestQuickCompactTargetConsistentWithDifficulty(t *testing.T) {
	// A hash accepted at compact target for difficulty d is, in expectation,
	// also accepted by the full check for ~d; we verify only the weaker
	// sound direction used by the pool: target monotonicity.
	f := func(d1, d2 uint64) bool {
		if d1 == 0 || d2 == 0 {
			return true
		}
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return DifficultyForTarget(d1) >= DifficultyForTarget(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSumTestVariant(b *testing.B) {
	h, _ := NewHasher(Test)
	in := []byte("benchmark input blob that is header-sized, 76 bytes total pad pad pad!!")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Sum(in)
	}
}

func BenchmarkSumFullVariant(b *testing.B) {
	if testing.Short() {
		b.Skip("full 2MB profile")
	}
	h, _ := NewHasher(Full)
	in := []byte("benchmark input blob that is header-sized, 76 bytes total pad pad pad!!")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Sum(in)
	}
}
