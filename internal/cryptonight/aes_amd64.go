//go:build amd64 && gc

package cryptonight

// hasAESNI gates the assembly kernel on CPUID.1:ECX bit 25 (AES-NI).
var hasAESNI = cpuidAsm(1)&(1<<25) != 0

//go:noescape
func cpuidAsm(leaf uint32) (ecx uint32)

//go:noescape
func encryptLanesAsm(rk *roundKeys, text *[16]uint64)

// encryptLanes encrypts the eight 16-byte blocks of the lane buffer in
// place, preferring the AES-NI kernel.
func encryptLanes(rk *roundKeys, text *[16]uint64) {
	if hasAESNI {
		encryptLanesAsm(rk, text)
		return
	}
	encryptLanesGo(rk, text)
}
