//go:build amd64 && gc

package cryptonight

import "testing"

// forceSoftAES routes encryptLanes through the software fallback for the
// duration of the test. Tests in this package run sequentially, so flipping
// the dispatch flag is safe.
func forceSoftAES(t *testing.T) {
	saved := hasAESNI
	hasAESNI = false
	t.Cleanup(func() { hasAESNI = saved })
}
