package cryptonight

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// ExampleCheckCompactTarget documents the Coinhive compact-target
// convention the way the code implements it: DifficultyForTarget encodes a
// difficulty as floor(2^32/difficulty), and a share qualifies when the
// hash's TRAILING four bytes — hash[28:32], the most significant word of
// the little-endian 256-bit hash value — read as a little-endian uint32
// are strictly below that target.
func ExampleCheckCompactTarget() {
	target := DifficultyForTarget(256) // 2^32/256 = 2^24

	var hash [32]byte
	binary.LittleEndian.PutUint32(hash[28:], 1<<24-1) // trailing word just below
	fmt.Println(target == 1<<24, CheckCompactTarget(hash, target))

	binary.LittleEndian.PutUint32(hash[28:], 1<<24) // equal: rejected
	fmt.Println(CheckCompactTarget(hash, target))

	// The leading bytes do not participate at all.
	binary.LittleEndian.PutUint32(hash[28:], 1<<24-1)
	for i := 0; i < 28; i++ {
		hash[i] = 0xFF
	}
	fmt.Println(CheckCompactTarget(hash, target))
	// Output:
	// true true
	// false
	// true
}

// TestCompactTargetReadsTrailingBytes pins the convention the package docs
// describe (and that DifficultyForTarget's comment used to contradict):
// only hash[28:32] matters, and it is the most significant little-endian
// word — so the compact check agrees with the full CheckDifficulty rule on
// hashes whose low 224 bits are zero.
func TestCompactTargetReadsTrailingBytes(t *testing.T) {
	var lowJunk [32]byte
	for i := 0; i < 28; i++ {
		lowJunk[i] = 0xFF // "first 4 little-endian bytes" would read 0xFFFFFFFF
	}
	binary.LittleEndian.PutUint32(lowJunk[28:], 1)
	if !CheckCompactTarget(lowJunk, 2) {
		t.Error("hash with trailing word 1 rejected at target 2: leading bytes leaked into the check")
	}
	var highJunk [32]byte
	binary.LittleEndian.PutUint32(highJunk[28:], 0xFFFFFFFF)
	if CheckCompactTarget(highJunk, ^uint32(0)) {
		t.Error("hash with max trailing word accepted: trailing bytes ignored")
	}

	// Agreement with CheckDifficulty when only the top word is set: for
	// difficulty d, the compact target floor(2^32/d) accepts top words w
	// with w < floor(2^32/d), and the consensus rule accepts w×2^224×d not
	// overflowing 2^256, i.e. w×d < 2^32 ⇔ w ≤ floor(2^32/d) − (d|2^32 ? 0 : …).
	// Exact equivalence holds whenever d divides 2^32; check those.
	for _, d := range []uint64{2, 4, 256, 1 << 16} {
		target := DifficultyForTarget(d)
		for _, w := range []uint32{0, 1, target - 1, target, target + 1} {
			var h [32]byte
			binary.LittleEndian.PutUint32(h[28:], w)
			compact := CheckCompactTarget(h, target)
			full := CheckDifficulty(h, d)
			if compact != full {
				t.Errorf("d=%d w=%#x: compact=%v full=%v", d, w, compact, full)
			}
		}
	}
}
