//go:build !amd64 || !gc

package cryptonight

// encryptLanes encrypts the eight 16-byte blocks of the lane buffer in
// place. Non-amd64 builds always take the T-table software path.
func encryptLanes(rk *roundKeys, text *[16]uint64) {
	encryptLanesGo(rk, text)
}
