//go:build !amd64 || !gc

package cryptonight

import "testing"

// forceSoftAES is a no-op on builds whose encryptLanes is already the
// software path.
func forceSoftAES(t *testing.T) {}
