// Package sharechain is the deterministic PPLNS share-chain that makes a
// federation of pool nodes converge on identical books. Every accepted
// share — local or gossiped in from a peer — becomes an Entry; the chain
// is the canonical linearization of the entry SET, ordered by (claimed
// height, entry ID). Because the order is a pure function of the entries
// themselves (never of arrival order, map iteration, or wall clocks), any
// two nodes holding the same set of entries hold bit-identical chains:
// same tip hash, same per-account credit, same PPLNS payout vector. That
// set-determinism is the whole convergence proof — gossip only has to
// deliver the set, not an ordering.
//
// A late-gossiped entry whose sort position precedes the current tip is a
// reorg: the canonical order says the branch containing it is better (it
// holds strictly more weight), so the rolling tip hashes after its
// insertion point are rebuilt and the PPLNS window credit is recomputed.
// No entry is ever orphaned — every valid share stays in the chain — which
// is what makes "zero lost credit" a structural property rather than an
// accounting promise.
//
// The package is a passive data structure: PoW verification is injected
// through Config.Verify (the pool wires its pooled CryptoNight hashers
// in), and nothing here reaches into the service layers — the layering
// lint pins sharechain to blockchain + metrics imports only.
package sharechain

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// DefaultWindow is the PPLNS window size in entries: payouts are split
// over the last N shares of the canonical chain, difficulty-weighted.
const DefaultWindow = 2048

// DefaultMaxHeightSkew bounds how far above the current tip height an
// entry may claim to sit. Claimed heights interleave naturally (each
// node mints at its own tip height + 1), so honest skew is the gossip
// concurrency — a handful. A hostile peer claiming far-future heights
// would otherwise pin its shares at the window's tail forever.
const DefaultMaxHeightSkew = 4096

// DefaultMaxBlobBytes bounds an entry's PoW blob. Hashing blobs in this
// repo are well under 128 bytes; anything larger is a hostile frame.
const DefaultMaxBlobBytes = 512

// MaxTokenLen bounds the miner-token string in an entry.
const MaxTokenLen = 128

// Validation errors.
var (
	ErrDuplicate  = errors.New("sharechain: entry already in chain")
	ErrBadEntry   = errors.New("sharechain: structurally invalid entry")
	ErrHeightSkew = errors.New("sharechain: claimed height too far ahead of tip")
	ErrBadPoW     = errors.New("sharechain: proof of work does not verify")
	ErrUnverified = errors.New("sharechain: no verifier configured for remote entries")
)

// Entry is one accepted share as a share-chain record. The Blob carries
// the full PoW input with the winning nonce already spliced, so any node
// can re-verify the work with nothing but the entry itself: Sum(Blob)
// must equal Result and Result must meet the Diff target. Identity is
// the SHA-256 of the canonical encoding — origin-independent, so the
// same record gossiped along different paths dedupes to one entry.
type Entry struct {
	// Height is the claimed chain height: the origin node's tip height
	// plus one at mint time. Concurrent mints at different nodes claim
	// the same height and tie-break by ID; the claim is part of the
	// entry's identity, so it cannot be re-written in flight.
	Height uint64
	// Token is the mining account credited for the share.
	Token string
	// Diff is the difficulty-weighted credit the share earned.
	Diff uint64
	// Nonce is the winning nonce (already spliced into Blob; carried
	// for observability and archive parity with the pool's share events).
	Nonce uint32
	// Blob is the complete hashing blob, nonce spliced.
	Blob []byte
	// Result is the claimed CryptoNight hash of Blob.
	Result [32]byte

	id    [32]byte // cached canonical ID
	hasID bool
}

// ID returns the entry's canonical identity: SHA-256 over the fixed
// fields and length-prefixed variable fields. Cached after first use.
func (e *Entry) ID() [32]byte {
	if e.hasID {
		return e.id
	}
	var hdr [8 + 8 + 4 + 2 + 2]byte
	binary.LittleEndian.PutUint64(hdr[0:], e.Height)
	binary.LittleEndian.PutUint64(hdr[8:], e.Diff)
	binary.LittleEndian.PutUint32(hdr[16:], e.Nonce)
	binary.LittleEndian.PutUint16(hdr[20:], uint16(len(e.Token)))
	binary.LittleEndian.PutUint16(hdr[22:], uint16(len(e.Blob)))
	h := sha256.New()
	h.Write(hdr[:])
	h.Write([]byte(e.Token))
	h.Write(e.Blob)
	h.Write(e.Result[:])
	h.Sum(e.id[:0])
	e.hasID = true
	return e.id
}

// less orders entries canonically: by claimed height, then by ID bytes
// (lexicographic). This is the deterministic tie-break the convergence
// proof rests on — never map iteration, never arrival order.
func less(aH uint64, aID [32]byte, bH uint64, bID [32]byte) bool {
	if aH != bH {
		return aH < bH
	}
	for i := 0; i < 32; i++ {
		if aID[i] != bID[i] {
			return aID[i] < bID[i]
		}
	}
	return false
}

// Verifier checks an entry's proof of work. The pool injects one backed
// by its pooled CryptoNight hashers; a nil verifier makes Insert of
// unverified (remote) entries an error, never a silent admission.
type Verifier func(*Entry) error

// Config parameterises a Chain.
type Config struct {
	// Window is the PPLNS window size in entries (DefaultWindow if 0).
	Window int
	// Verify validates the PoW of entries inserted with verified=false
	// (gossiped-in shares). Locally-accepted shares were already
	// verified by the pool and skip it.
	Verify Verifier
	// MaxHeightSkew bounds claimed heights (DefaultMaxHeightSkew if 0).
	MaxHeightSkew uint64
	// FeePercent is the pool cut applied by PayoutVector (30 if 0).
	FeePercent int
	// Metrics receives pool.sharechain_* instruments (nil: private).
	Metrics *metrics.Registry
}

// TokenWeight is one account's difficulty-weighted credit inside the
// PPLNS window, in sorted-token order.
type TokenWeight struct {
	Token  string
	Weight uint64
}

// Payout is one account's cut of a reward, in sorted-token order.
type Payout struct {
	Token  string
	Amount uint64
}

// Chain is the share-chain: a canonically-ordered entry set with rolling
// tip hashes, all-time credit and incrementally-maintained PPLNS window
// aggregates. All methods are safe for concurrent use.
type Chain struct {
	cfg Config

	mu      sync.RWMutex
	entries []*Entry
	ids     [][32]byte        // entry IDs by position (avoids pointer chase in sort)
	tips    [][32]byte        // rolling hash: tips[i] = SHA-256(tips[i-1] || ids[i])
	known   map[[32]byte]bool // dedupe set
	credit  map[string]uint64 // all-time difficulty-weighted credit per token
	window  map[string]uint64 // credit inside the PPLNS window
	winTot  uint64            // total window weight

	height   *metrics.Gauge
	reorgs   *metrics.Counter
	rebuilds *metrics.Counter
}

// New builds an empty chain.
func New(cfg Config) *Chain {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxHeightSkew == 0 {
		cfg.MaxHeightSkew = DefaultMaxHeightSkew
	}
	if cfg.FeePercent == 0 {
		cfg.FeePercent = 30
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &Chain{
		cfg:      cfg,
		known:    map[[32]byte]bool{},
		credit:   map[string]uint64{},
		window:   map[string]uint64{},
		height:   cfg.Metrics.Gauge("pool.sharechain_height"),
		reorgs:   cfg.Metrics.Counter("pool.sharechain_reorgs"),
		rebuilds: cfg.Metrics.Counter("pool.window_credit_rebuilds"),
	}
}

// Window returns the configured PPLNS window size.
func (c *Chain) Window() int { return c.cfg.Window }

// Len returns the number of entries in the chain.
func (c *Chain) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Tip returns the rolling tip hash and the entry count it covers. Two
// chains with equal tips hold identical entry sequences — the hash folds
// every ID in canonical order, so it is the convergence check.
func (c *Chain) Tip() ([32]byte, int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.tips) == 0 {
		return [32]byte{}, 0
	}
	return c.tips[len(c.tips)-1], len(c.tips)
}

// TipHeight returns the highest claimed height in the chain (0 when
// empty). Because entries are height-ordered, it is the last entry's.
func (c *Chain) TipHeight() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.entries) == 0 {
		return 0
	}
	return c.entries[len(c.entries)-1].Height
}

// NextHeight is the claimed height a locally-minted entry should carry:
// the current tip height plus one.
func (c *Chain) NextHeight() uint64 { return c.TipHeight() + 1 }

// Has reports whether the entry identified by id is already in the chain.
func (c *Chain) Has(id [32]byte) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.known[id]
}

// validate applies the structural checks shared by both insert paths.
func (c *Chain) validate(e *Entry) error {
	if e.Diff == 0 || e.Height == 0 || len(e.Token) == 0 ||
		len(e.Token) > MaxTokenLen || len(e.Blob) == 0 || len(e.Blob) > DefaultMaxBlobBytes {
		return ErrBadEntry
	}
	return nil
}

// Insert adds an entry to the chain. verified marks entries whose PoW the
// caller already checked (the local pool's accepted shares); unverified
// entries (gossip, sync) go through Config.Verify before admission — the
// CryptoNight walk runs outside the chain lock, so verification of
// concurrent gossip parallelises like the pool's submit path.
//
// Returns whether the insertion displaced existing order (a reorg): the
// entry's canonical position preceded existing entries, so the rolling
// hashes after it were rebuilt and the window credit recomputed.
func (c *Chain) Insert(e *Entry, verified bool) (reorged bool, err error) {
	if err := c.validate(e); err != nil {
		return false, err
	}
	id := e.ID()
	c.mu.RLock()
	dup := c.known[id]
	tipH := uint64(0)
	if len(c.entries) > 0 {
		tipH = c.entries[len(c.entries)-1].Height
	}
	c.mu.RUnlock()
	if dup {
		return false, ErrDuplicate
	}
	if e.Height > tipH+c.cfg.MaxHeightSkew {
		return false, ErrHeightSkew
	}
	if !verified {
		if c.cfg.Verify == nil {
			return false, ErrUnverified
		}
		if err := c.cfg.Verify(e); err != nil {
			return false, err
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.known[id] {
		return false, ErrDuplicate
	}
	// Re-check the skew bound against the tip as it stands now: the
	// pre-lock check ran against a stale snapshot.
	if n := len(c.entries); n > 0 && e.Height > c.entries[n-1].Height+c.cfg.MaxHeightSkew {
		return false, ErrHeightSkew
	}
	pos := sort.Search(len(c.entries), func(i int) bool {
		return less(e.Height, id, c.entries[i].Height, c.ids[i])
	})
	c.entries = append(c.entries, nil)
	c.ids = append(c.ids, [32]byte{})
	c.tips = append(c.tips, [32]byte{})
	copy(c.entries[pos+1:], c.entries[pos:])
	copy(c.ids[pos+1:], c.ids[pos:])
	c.entries[pos] = e
	c.ids[pos] = id
	c.known[id] = true
	c.credit[e.Token] += e.Diff

	reorged = pos != len(c.entries)-1
	c.rebuildTipsLocked(pos)
	if reorged {
		c.reorgs.Inc()
		c.rebuildWindowLocked()
	} else {
		c.advanceWindowLocked(e)
	}
	c.height.Set(int64(c.entries[len(c.entries)-1].Height))
	return reorged, nil
}

// rebuildTipsLocked recomputes rolling hashes from position pos on. An
// append recomputes exactly one; a reorg recomputes the displaced suffix.
func (c *Chain) rebuildTipsLocked(pos int) {
	var prev [32]byte
	if pos > 0 {
		prev = c.tips[pos-1]
	}
	h := sha256.New()
	var buf [32]byte
	for i := pos; i < len(c.tips); i++ {
		h.Reset()
		h.Write(prev[:])
		h.Write(c.ids[i][:])
		h.Sum(buf[:0])
		c.tips[i] = buf
		prev = buf
	}
}

// advanceWindowLocked slides the PPLNS window forward after an append:
// the new tail entry enters; the entry that fell off the head leaves.
func (c *Chain) advanceWindowLocked(e *Entry) {
	c.window[e.Token] += e.Diff
	c.winTot += e.Diff
	if n := len(c.entries); n > c.cfg.Window {
		old := c.entries[n-c.cfg.Window-1]
		c.window[old.Token] -= old.Diff
		c.winTot -= old.Diff
		if c.window[old.Token] == 0 {
			delete(c.window, old.Token)
		}
	}
}

// rebuildWindowLocked recomputes the window aggregates from scratch —
// the reorg path, counted so operators can see how often late gossip
// displaces order.
func (c *Chain) rebuildWindowLocked() {
	c.rebuilds.Inc()
	clear(c.window)
	c.winTot = 0
	start := 0
	if len(c.entries) > c.cfg.Window {
		start = len(c.entries) - c.cfg.Window
	}
	for _, e := range c.entries[start:] {
		c.window[e.Token] += e.Diff
		c.winTot += e.Diff
	}
}

// CreditSnapshot returns a copy of the all-time difficulty-weighted
// credit per token. Two converged nodes return equal maps.
func (c *Chain) CreditSnapshot() map[string]uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]uint64, len(c.credit))
	for t, v := range c.credit {
		out[t] = v
	}
	return out
}

// WindowWeights returns the PPLNS window's per-token weights in sorted
// token order, plus the total. The sort makes every consumer of the
// window — payout vectors, archives, federation settles — deterministic.
func (c *Chain) WindowWeights() ([]TokenWeight, uint64) {
	c.mu.RLock()
	tokens := make([]string, 0, len(c.window))
	for t := range c.window {
		tokens = append(tokens, t)
	}
	total := c.winTot
	weights := make([]TokenWeight, 0, len(tokens))
	sort.Strings(tokens)
	for _, t := range tokens {
		weights = append(weights, TokenWeight{Token: t, Weight: c.window[t]})
	}
	c.mu.RUnlock()
	return weights, total
}

// PayoutVector splits a block reward across the current PPLNS window:
// each account receives floor(reward × (100−fee)% × weight ⁄ total), in
// sorted-token order; rounding dust stays with the pool. It is a pure
// function of the window, so converged nodes produce identical vectors.
func (c *Chain) PayoutVector(reward uint64) []Payout {
	weights, total := c.WindowWeights()
	if total == 0 {
		return nil
	}
	userPart := reward * uint64(100-c.cfg.FeePercent) / 100
	out := make([]Payout, 0, len(weights))
	for _, w := range weights {
		out = append(out, Payout{Token: w.Token, Amount: userPart * w.Weight / total})
	}
	return out
}

// EntriesFrom returns up to max entries whose claimed height is ≥ from,
// in canonical order — the ranged catch-up sync primitive. The returned
// entries are the chain's own (immutable by convention).
func (c *Chain) EntriesFrom(from uint64, max int) []*Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pos := sort.Search(len(c.entries), func(i int) bool {
		return c.entries[i].Height >= from
	})
	n := len(c.entries) - pos
	if n > max {
		n = max
	}
	if n <= 0 {
		return nil
	}
	out := make([]*Entry, n)
	copy(out, c.entries[pos:pos+n])
	return out
}
