package sharechain

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/metrics"
)

// mkEntry builds a structurally valid test entry. The blob content is
// arbitrary — these tests insert with verified=true, exercising ordering
// and accounting, not PoW.
func mkEntry(height uint64, token string, diff uint64, salt byte) *Entry {
	blob := make([]byte, 76)
	blob[0] = salt
	blob[1] = byte(height)
	blob[2] = byte(diff)
	copy(blob[3:], token)
	return &Entry{Height: height, Token: token, Diff: diff, Nonce: uint32(salt), Blob: blob}
}

// TestInsertionOrderIndependence is the convergence property in miniature:
// any permutation of the same entry set yields bit-identical tip hashes,
// credit maps, window weights and payout vectors.
func TestInsertionOrderIndependence(t *testing.T) {
	var base []*Entry
	for i := 0; i < 200; i++ {
		// Heights interleave and collide on purpose: concurrent mints at
		// different nodes claim equal heights and must tie-break by ID.
		h := uint64(1 + i/3)
		base = append(base, mkEntry(h, fmt.Sprintf("tok%d", i%7), uint64(1+i%5), byte(i)))
	}
	build := func(perm []int) *Chain {
		c := New(Config{Window: 32})
		for _, i := range perm {
			e := *base[i] // fresh copy: cached IDs must not leak between chains
			e.hasID = false
			if _, err := c.Insert(&e, true); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
		return c
	}
	ref := build(rand.New(rand.NewSource(1)).Perm(len(base)))
	refTip, refN := ref.Tip()
	for seed := int64(2); seed < 6; seed++ {
		c := build(rand.New(rand.NewSource(seed)).Perm(len(base)))
		tip, n := c.Tip()
		if tip != refTip || n != refN {
			t.Fatalf("seed %d: tip diverged: %x/%d vs %x/%d", seed, tip, n, refTip, refN)
		}
		if !reflect.DeepEqual(c.CreditSnapshot(), ref.CreditSnapshot()) {
			t.Fatalf("seed %d: credit diverged", seed)
		}
		w1, t1 := c.WindowWeights()
		w2, t2 := ref.WindowWeights()
		if t1 != t2 || !reflect.DeepEqual(w1, w2) {
			t.Fatalf("seed %d: window diverged", seed)
		}
		if !reflect.DeepEqual(c.PayoutVector(1_000_000), ref.PayoutVector(1_000_000)) {
			t.Fatalf("seed %d: payout vector diverged", seed)
		}
	}
}

func TestAppendVsReorgAccounting(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{Window: 8, Metrics: reg})
	for h := uint64(1); h <= 5; h++ {
		reorged, err := c.Insert(mkEntry(h, "a", 2, byte(h)), true)
		if err != nil || reorged {
			t.Fatalf("append h=%d: reorged=%v err=%v", h, reorged, err)
		}
	}
	if got := reg.Counter("pool.sharechain_reorgs").Load(); got != 0 {
		t.Fatalf("reorgs after pure appends = %d", got)
	}
	// A late entry at height 2 lands mid-chain: reorg.
	reorged, err := c.Insert(mkEntry(2, "b", 3, 0xEE), true)
	if err != nil || !reorged {
		t.Fatalf("late insert: reorged=%v err=%v", reorged, err)
	}
	if got := reg.Counter("pool.sharechain_reorgs").Load(); got != 1 {
		t.Fatalf("reorgs = %d, want 1", got)
	}
	if got := reg.Counter("pool.window_credit_rebuilds").Load(); got != 1 {
		t.Fatalf("window rebuilds = %d, want 1", got)
	}
	// The displaced chain still holds every entry: zero lost credit.
	credit := c.CreditSnapshot()
	if credit["a"] != 10 || credit["b"] != 3 {
		t.Fatalf("credit after reorg: %v", credit)
	}
	if c.Len() != 6 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestWindowSlidesAndPayout(t *testing.T) {
	c := New(Config{Window: 3, FeePercent: 30})
	c.Insert(mkEntry(1, "old", 100, 1), true)
	c.Insert(mkEntry(2, "a", 10, 2), true)
	c.Insert(mkEntry(3, "b", 20, 3), true)
	c.Insert(mkEntry(4, "a", 30, 4), true)
	// Window = last 3 entries: a:10, b:20, a:30 → a:40, b:20, total 60.
	weights, total := c.WindowWeights()
	if total != 60 {
		t.Fatalf("window total = %d", total)
	}
	want := []TokenWeight{{"a", 40}, {"b", 20}}
	if !reflect.DeepEqual(weights, want) {
		t.Fatalf("weights = %v", weights)
	}
	// Reward 1000: user part 700, a: 700*40/60=466, b: 700*20/60=233.
	pay := c.PayoutVector(1000)
	wantPay := []Payout{{"a", 466}, {"b", 233}}
	if !reflect.DeepEqual(pay, wantPay) {
		t.Fatalf("payout = %v", pay)
	}
	// All-time credit still includes the slid-out entry.
	if c.CreditSnapshot()["old"] != 100 {
		t.Fatalf("all-time credit lost the window-expired entry")
	}
}

func TestDuplicateAndValidation(t *testing.T) {
	c := New(Config{Window: 4})
	e := mkEntry(1, "a", 5, 9)
	if _, err := c.Insert(e, true); err != nil {
		t.Fatal(err)
	}
	dup := *e
	dup.hasID = false
	if _, err := c.Insert(&dup, true); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup insert: %v", err)
	}
	bad := []*Entry{
		{Height: 1, Token: "a", Diff: 0, Blob: []byte{1}},          // zero diff
		{Height: 0, Token: "a", Diff: 1, Blob: []byte{1}},          // zero height
		{Height: 1, Token: "", Diff: 1, Blob: []byte{1}},           // empty token
		{Height: 1, Token: "a", Diff: 1, Blob: nil},                // empty blob
		{Height: 1, Token: "a", Diff: 1, Blob: make([]byte, 4096)}, // oversize blob
	}
	for i, b := range bad {
		if _, err := c.Insert(b, true); !errors.Is(err, ErrBadEntry) {
			t.Fatalf("bad[%d]: %v", i, err)
		}
	}
	if _, err := c.Insert(mkEntry(1+DefaultMaxHeightSkew+1, "a", 1, 7), true); !errors.Is(err, ErrHeightSkew) {
		t.Fatalf("skew: expected ErrHeightSkew")
	}
}

func TestVerifierGatesRemoteEntries(t *testing.T) {
	// No verifier: remote entries are refused outright.
	c := New(Config{Window: 4})
	if _, err := c.Insert(mkEntry(1, "a", 1, 1), false); !errors.Is(err, ErrUnverified) {
		t.Fatalf("nil verifier: %v", err)
	}
	// A verifier sees exactly the entry and its verdict is final.
	calls := 0
	c2 := New(Config{Window: 4, Verify: func(e *Entry) error {
		calls++
		if e.Token == "evil" {
			return ErrBadPoW
		}
		return nil
	}})
	if _, err := c2.Insert(mkEntry(1, "evil", 1, 2), false); !errors.Is(err, ErrBadPoW) {
		t.Fatalf("verifier reject: %v", err)
	}
	if _, err := c2.Insert(mkEntry(1, "good", 1, 3), false); err != nil {
		t.Fatalf("verifier accept: %v", err)
	}
	if calls != 2 {
		t.Fatalf("verifier calls = %d", calls)
	}
	// Local (verified) entries never touch the verifier.
	if _, err := c2.Insert(mkEntry(2, "evil", 1, 4), true); err != nil || calls != 2 {
		t.Fatalf("local insert hit the verifier: err=%v calls=%d", err, calls)
	}
}

func TestEntriesFromRanged(t *testing.T) {
	c := New(Config{Window: 16})
	for h := uint64(1); h <= 10; h++ {
		c.Insert(mkEntry(h, "a", 1, byte(h)), true)
	}
	got := c.EntriesFrom(4, 3)
	if len(got) != 3 || got[0].Height != 4 || got[2].Height != 6 {
		t.Fatalf("EntriesFrom(4,3): %v", got)
	}
	if got := c.EntriesFrom(11, 10); got != nil {
		t.Fatalf("past-end range returned entries")
	}
	if got := c.EntriesFrom(0, 1000); len(got) != 10 {
		t.Fatalf("full range = %d entries", len(got))
	}
}

func TestTipHeightAndNextHeight(t *testing.T) {
	c := New(Config{Window: 4})
	if c.TipHeight() != 0 || c.NextHeight() != 1 {
		t.Fatalf("empty chain heights wrong")
	}
	c.Insert(mkEntry(7, "a", 1, 1), true)
	if c.TipHeight() != 7 || c.NextHeight() != 8 {
		t.Fatalf("heights after insert: tip=%d", c.TipHeight())
	}
}
