package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestGaugePeak(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if got := g.Load(); got != 2 {
		t.Fatalf("Load = %d, want 2", got)
	}
	if got := g.Peak(); got != 7 {
		t.Fatalf("Peak = %d, want 7", got)
	}
	g.Set(100)
	g.Set(1)
	if got, peak := g.Load(), g.Peak(); got != 1 || peak != 100 {
		t.Fatalf("after Set: Load=%d Peak=%d, want 1/100", got, peak)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 99 fast observations, one slow outlier.
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(50 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Max != 50*time.Millisecond {
		t.Fatalf("Max = %s, want 50ms", s.Max)
	}
	// Log2 buckets: the reported quantile is the bucket upper bound, so it
	// must bracket the true value within a factor of 2.
	if s.P50 < 100*time.Microsecond || s.P50 > 200*time.Microsecond {
		t.Fatalf("P50 = %s, want within [100µs, 200µs]", s.P50)
	}
	if s.P99 < 100*time.Microsecond || s.P99 > 200*time.Microsecond {
		t.Fatalf("P99 = %s, want within [100µs, 200µs] (99th of 100 is still fast)", s.P99)
	}
	if mean := s.Mean(); mean < 500*time.Microsecond || mean > 700*time.Microsecond {
		t.Fatalf("Mean = %s, want ≈599µs", mean)
	}
}

func TestHistogramOutlierDominatesP99(t *testing.T) {
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 50; i++ {
		h.Observe(8 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.P99 < 8*time.Millisecond {
		t.Fatalf("P99 = %s, want ≥ 8ms", s.P99)
	}
	if s.P99 > s.Max {
		t.Fatalf("P99 = %s exceeds Max = %s", s.P99, s.Max)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 0 || s.Max != 0 || s.P99 != 0 {
		t.Fatalf("zero/negative snapshot = %+v", s)
	}
}

// TestRecordPathAllocs pins the whole record path at zero allocations —
// the property that lets the pool keep these instruments on its
// per-share path without showing up in its own benchmarks.
func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(100, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { g.Add(1); g.Add(-1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(123 * time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}

func TestRegistryIdempotentAndKindSafe(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge should panic")
		}
	}()
	r.Gauge("x")
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("pool.shares_ok").Add(7)
	r.Gauge("server.sessions").Add(3)
	r.Histogram("server.submit_ns").Observe(time.Millisecond)

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pool.shares_ok counter 7",
		"server.sessions gauge 3 peak=3",
		"server.submit_ns histogram count=1",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text exposition missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	if err := json.Unmarshal(js.Bytes(), &snaps); err != nil {
		t.Fatalf("JSON exposition does not parse: %v", err)
	}
	if len(snaps) != 3 || snaps[0].Name != "pool.shares_ok" || snaps[0].Value != 7 {
		t.Fatalf("JSON snapshots = %+v", snaps)
	}
	if snaps[2].Kind != "histogram" || snaps[2].Count != 1 || snaps[2].MaxNs != int64(time.Millisecond) {
		t.Fatalf("histogram snapshot = %+v", snaps[2])
	}
}

// TestConcurrentWriters exercises the instruments under the race
// detector; the count invariants double as a correctness check on a
// 1-CPU box where interleaving is scheduler-driven.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				g.Dec()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*per)
	}
}
