package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Registry is a named, ordered set of instruments. Registration takes a
// lock; the returned instrument pointers are then used lock-free, so the
// registry itself is never on a hot path. Registering a name twice
// returns the existing instrument (so independently-wired components can
// share a counter), but re-registering a name as a different kind panics:
// that is a wiring bug, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	order   []string
	entries map[string]*entry
}

type entry struct {
	name string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

func (e *entry) kind() string {
	switch {
	case e.c != nil:
		return "counter"
	case e.g != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

func (r *Registry) register(name string, make func() *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return e
	}
	e := make()
	e.name = name
	r.entries[name] = e
	r.order = append(r.order, name)
	return e
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	e := r.register(name, func() *entry { return &entry{c: &Counter{}} })
	if e.c == nil {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, e.kind()))
	}
	return e.c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	e := r.register(name, func() *entry { return &entry{g: &Gauge{}} })
	if e.g == nil {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, e.kind()))
	}
	return e.g
}

// Histogram returns the histogram registered under name, creating it if
// new.
func (r *Registry) Histogram(name string) *Histogram {
	e := r.register(name, func() *entry { return &entry{h: &Histogram{}} })
	if e.h == nil {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, e.kind()))
	}
	return e.h
}

// Snapshot is one instrument's state at exposition time. Exactly the
// fields for its kind are meaningful; the rest are zero and omitted from
// JSON.
type Snapshot struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value uint64 `json:"value,omitempty"` // counter

	Level int64 `json:"level,omitempty"` // gauge
	Peak  int64 `json:"peak,omitempty"`  // gauge high-water mark

	Count  uint64 `json:"count,omitempty"` // histogram
	SumNs  int64  `json:"sum_ns,omitempty"`
	MeanNs int64  `json:"mean_ns,omitempty"`
	P50Ns  int64  `json:"p50_ns,omitempty"`
	P99Ns  int64  `json:"p99_ns,omitempty"`
	MaxNs  int64  `json:"max_ns,omitempty"`
}

// Snapshots returns every instrument's state in registration order.
func (r *Registry) Snapshots() []Snapshot {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.order))
	for _, name := range r.order {
		entries = append(entries, r.entries[name])
	}
	r.mu.Unlock()
	out := make([]Snapshot, 0, len(entries))
	for _, e := range entries {
		s := Snapshot{Name: e.name, Kind: e.kind()}
		switch {
		case e.c != nil:
			s.Value = e.c.Load()
		case e.g != nil:
			s.Level = e.g.Load()
			s.Peak = e.g.Peak()
		case e.h != nil:
			hs := e.h.Snapshot()
			s.Count = hs.Count
			s.SumNs = int64(hs.Sum)
			s.MeanNs = int64(hs.Mean())
			s.P50Ns = int64(hs.P50)
			s.P99Ns = int64(hs.P99)
			s.MaxNs = int64(hs.Max)
		}
		out = append(out, s)
	}
	return out
}

// WriteText writes one line per instrument, human-first:
//
//	pool.shares_ok counter 1234
//	server.sessions gauge 980 peak=1000
//	server.submit_ns histogram count=1234 mean=180µs p50=128µs p99=2ms max=3.1ms
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshots() {
		var err error
		switch s.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%s counter %d\n", s.Name, s.Value)
		case "gauge":
			_, err = fmt.Fprintf(w, "%s gauge %d peak=%d\n", s.Name, s.Level, s.Peak)
		default:
			_, err = fmt.Fprintf(w, "%s histogram count=%d mean=%s p50=%s p99=%s max=%s\n",
				s.Name, s.Count, time.Duration(s.MeanNs), time.Duration(s.P50Ns),
				time.Duration(s.P99Ns), time.Duration(s.MaxNs))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the snapshots as a JSON array, machine-first.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshots())
}
