// Package metrics is the repo's measurement plane: atomic counters,
// gauges and log-bucketed latency histograms behind a named registry
// with text and JSON exposition.
//
// The paper's scale claims (§4: hundreds of thousands of concurrent
// miners on 32 endpoints) are only reproducible if the live service can
// be measured while under load, so the record path is designed to cost
// nothing worth measuring: every instrument is a fixed set of atomics,
// zero allocations per Add/Set/Observe (pinned by AllocsPerRun in the
// tests), and safe for any number of concurrent writers.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
//
//lint:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//lint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (live sessions, queue depth). It also
// tracks the high-water mark, which is what scale assertions care about:
// "N concurrent sessions" is a statement about the gauge's peak, not its
// value at snapshot time.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Add moves the gauge by delta and updates the peak.
//
//lint:hotpath
func (g *Gauge) Add(delta int64) int64 {
	now := g.v.Add(delta)
	for {
		p := g.peak.Load()
		if now <= p || g.peak.CompareAndSwap(p, now) {
			return now
		}
	}
}

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Set forces the gauge to v (peak still tracks).
//
//lint:hotpath
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Peak returns the highest level the gauge has reached.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// histBuckets is the number of log2 duration buckets: bucket i holds
// observations whose nanosecond count has bit-length i, covering the
// whole positive time.Duration range (1 ns up to ~292 years). Factor-2
// resolution is exactly what a latency trajectory needs: p99 moving from
// one bucket to the next is a real regression, anything finer is noise on
// a shared CI box.
const histBuckets = 64

// Histogram is a log-bucketed duration histogram.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
//
//lint:hotpath
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			break
		}
	}
	b := bits.Len64(ns)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// HistSnapshot is a consistent-enough view of a histogram: buckets are
// read one atomic at a time, so a snapshot taken during writes may be off
// by in-flight observations — fine for exposition, meaningless for audit.
type HistSnapshot struct {
	Count uint64
	Sum   time.Duration
	Max   time.Duration
	P50   time.Duration
	P99   time.Duration
}

// Mean returns the arithmetic mean of the recorded durations.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot computes count/sum/max and the quantiles from the buckets.
// Quantile values are the upper bound of the containing bucket (2^i ns),
// so reported percentiles are conservative: the true value is ≤ reported.
func (h *Histogram) Snapshot() HistSnapshot {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	if total == 0 {
		return s
	}
	s.P50 = bucketQuantile(&counts, total, 50)
	s.P99 = bucketQuantile(&counts, total, 99)
	if s.P99 > s.Max && s.Max > 0 {
		s.P99 = s.Max // upper-bound estimate cannot exceed the observed max
	}
	if s.P50 > s.P99 {
		s.P50 = s.P99
	}
	return s
}

// HistCursor marks a point in a histogram's life, so a caller can
// compute quantiles over just the observations recorded after it —
// per-phase percentiles from one cumulative instrument.
type HistCursor struct {
	count   uint64
	sum     uint64
	buckets [histBuckets]uint64
}

// Cursor captures the histogram's current state.
func (h *Histogram) Cursor() HistCursor {
	var c HistCursor
	c.count = h.count.Load()
	c.sum = h.sum.Load()
	for i := range c.buckets {
		c.buckets[i] = h.buckets[i].Load()
	}
	return c
}

// SnapshotSince computes a snapshot of the observations recorded after
// the cursor was captured from this same histogram. Max is not tracked
// per-interval, so the returned Max is zero; quantiles are the usual
// conservative bucket upper bounds.
func (h *Histogram) SnapshotSince(prev HistCursor) HistSnapshot {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load() - prev.buckets[i]
		total += counts[i]
	}
	s := HistSnapshot{
		Count: h.count.Load() - prev.count,
		Sum:   time.Duration(h.sum.Load() - prev.sum),
	}
	if total == 0 {
		return s
	}
	s.P50 = bucketQuantile(&counts, total, 50)
	s.P99 = bucketQuantile(&counts, total, 99)
	if s.P50 > s.P99 {
		s.P50 = s.P99
	}
	return s
}

// bucketQuantile returns the upper bound of the first bucket whose
// cumulative count reaches pct percent of total.
func bucketQuantile(counts *[histBuckets]uint64, total uint64, pct uint64) time.Duration {
	// rank is ceil(total*pct/100), at least 1.
	rank := (total*pct + 99) / 100
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			switch {
			case i == 0:
				return 0
			case i >= 63:
				// 1<<63 overflows int64; the caller clamps to the observed
				// max anyway.
				return time.Duration(math.MaxInt64)
			}
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return time.Duration(math.MaxInt64)
}
