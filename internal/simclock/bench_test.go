package simclock_test

import (
	"testing"

	"repro/internal/benchcore"
)

// BenchmarkSchedulePop measures one schedule/pop cycle on the de-boxed
// event heap. The body lives in internal/benchcore, shared with cmd/bench
// so BENCH_core.json measures the identical workload.
func BenchmarkSchedulePop(b *testing.B) { benchcore.SchedulePop(b) }
