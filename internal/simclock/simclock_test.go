package simclock

import (
	"testing"
	"time"
)

var t0 = time.Date(2018, 4, 26, 0, 0, 0, 0, time.UTC)

func TestEventsRunInTimestampOrder(t *testing.T) {
	s := New(t0)
	var got []int
	s.ScheduleAfter(3*time.Second, func() { got = append(got, 3) })
	s.ScheduleAfter(1*time.Second, func() { got = append(got, 1) })
	s.ScheduleAfter(2*time.Second, func() { got = append(got, 2) })
	if n := s.RunFor(10 * time.Second); n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	s := New(t0)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(t0.Add(time.Minute), func() { got = append(got, i) })
	}
	s.RunFor(2 * time.Minute)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	s := New(t0)
	var at time.Time
	s.ScheduleAfter(90*time.Second, func() { at = s.Now() })
	s.RunFor(5 * time.Minute)
	if !at.Equal(t0.Add(90 * time.Second)) {
		t.Errorf("handler saw Now = %v, want %v", at, t0.Add(90*time.Second))
	}
	if !s.Now().Equal(t0.Add(5 * time.Minute)) {
		t.Errorf("final Now = %v, want limit", s.Now())
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	s := New(t0)
	ran := false
	s.ScheduleAfter(time.Hour, func() { ran = true })
	s.RunFor(time.Minute)
	if ran {
		t.Error("event beyond limit was executed")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.RunFor(time.Hour)
	if !ran {
		t.Error("event not executed after advancing far enough")
	}
}

func TestHandlersMayScheduleMoreEvents(t *testing.T) {
	s := New(t0)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 10 {
			s.ScheduleAfter(time.Second, chain)
		}
	}
	s.ScheduleAfter(time.Second, chain)
	s.RunFor(time.Minute)
	if count != 10 {
		t.Errorf("chained events ran %d times, want 10", count)
	}
}

func TestEveryAndCancel(t *testing.T) {
	s := New(t0)
	n := 0
	cancel := s.Every(time.Minute, func() { n++ })
	s.RunFor(5*time.Minute + time.Second)
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	cancel()
	s.RunFor(10 * time.Minute)
	if n != 5 {
		t.Errorf("ticks after cancel = %d, want 5", n)
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	s := New(t0)
	s.RunFor(time.Hour)
	ran := false
	s.Schedule(t0, func() { ran = true }) // in the past now
	s.RunFor(0)
	if !ran {
		t.Error("past-scheduled event did not run immediately")
	}
}

// The de-boxed event heap must not allocate per event at steady state: a
// schedule/pop cycle with a prebuilt handler reuses the heap's backing
// array (the seed's container/heap version boxed every event).
func TestSchedulePopCycleAllocatesNothing(t *testing.T) {
	s := New(t0)
	fn := func() {}
	// Grow the backing array to steady-state capacity first.
	for i := 0; i < 64; i++ {
		s.ScheduleAfter(time.Duration(i)*time.Millisecond, fn)
	}
	s.RunFor(time.Second)
	avg := testing.AllocsPerRun(500, func() {
		s.ScheduleAfter(time.Millisecond, fn)
		s.RunFor(2 * time.Millisecond)
	})
	if avg != 0 {
		t.Errorf("schedule/pop cycle: %.1f allocs/op, want 0", avg)
	}
}

func TestRealClockTicks(t *testing.T) {
	c := Real()
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Error("real clock went backwards")
	}
}
