// Package simclock provides virtual time for the measurement experiments.
// The paper's longest measurement spans three months of wall time
// (Table 6); on the simulated clock those months elapse in milliseconds
// while preserving event ordering and inter-arrival statistics.
//
// Two abstractions are provided:
//
//   - Clock: the minimal read-only interface (Now) production code uses, with
//     Real() returning a wall-clock implementation.
//   - Sim: a deterministic discrete-event scheduler. Events are executed in
//     timestamp order (FIFO among equal timestamps); handlers may schedule
//     further events, including at the current instant.
//
// The event queue is a concrete binary heap of event values — no
// container/heap interface boxing — so scheduling and popping an event
// allocates nothing once the queue's backing array has grown to its
// steady-state size.
package simclock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Real returns a Clock backed by the system clock.
func Real() Clock { return realClock{} }

type event struct {
	at  time.Time
	seq uint64 // tie-breaker: preserves scheduling order at equal instants
	fn  func()
}

// before reports whether e must execute ahead of o.
func (e *event) before(o *event) bool {
	if e.at.Equal(o.at) {
		return e.seq < o.seq
	}
	return e.at.Before(o.at)
}

// Sim is a discrete-event simulation clock. The zero value is not usable;
// construct with New.
type Sim struct {
	mu   sync.Mutex
	now  time.Time
	seq  uint64
	evts []event // binary min-heap ordered by (at, seq)
}

// New returns a Sim starting at the given instant.
func New(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// pushLocked appends an event and restores the heap invariant (sift-up).
func (s *Sim) pushLocked(at time.Time, fn func()) {
	s.seq++
	s.evts = append(s.evts, event{at: at, seq: s.seq, fn: fn})
	i := len(s.evts) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.evts[i].before(&s.evts[parent]) {
			break
		}
		s.evts[i], s.evts[parent] = s.evts[parent], s.evts[i]
		i = parent
	}
}

// popLocked removes and returns the earliest event (sift-down).
func (s *Sim) popLocked() event {
	e := s.evts[0]
	n := len(s.evts) - 1
	s.evts[0] = s.evts[n]
	s.evts[n] = event{} // release the closure reference
	s.evts = s.evts[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		least := l
		if r < n && s.evts[r].before(&s.evts[l]) {
			least = r
		}
		if !s.evts[least].before(&s.evts[i]) {
			break
		}
		s.evts[i], s.evts[least] = s.evts[least], s.evts[i]
		i = least
	}
	return e
}

// Schedule runs fn at the given absolute virtual time. Times in the past are
// clamped to the current instant.
func (s *Sim) Schedule(at time.Time, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at.Before(s.now) {
		at = s.now
	}
	s.pushLocked(at, fn)
}

// ScheduleAfter runs fn d after the current virtual instant.
func (s *Sim) ScheduleAfter(d time.Duration, fn func()) {
	s.mu.Lock()
	s.pushLocked(s.now.Add(d), fn)
	s.mu.Unlock()
}

// Every schedules fn at the fixed interval d starting d from now, until
// the returned cancel function is called.
func (s *Sim) Every(d time.Duration, fn func()) (cancel func()) {
	stopped := false
	var mu sync.Mutex
	var tick func()
	tick = func() {
		mu.Lock()
		dead := stopped
		mu.Unlock()
		if dead {
			return
		}
		fn()
		s.ScheduleAfter(d, tick)
	}
	s.ScheduleAfter(d, tick)
	return func() {
		mu.Lock()
		stopped = true
		mu.Unlock()
	}
}

// pop removes the earliest event not after limit, with ok=false when the
// queue is exhausted or the next event lies beyond limit.
func (s *Sim) pop(limit time.Time) (event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.evts) == 0 {
		return event{}, false
	}
	if s.evts[0].at.After(limit) {
		return event{}, false
	}
	e := s.popLocked()
	s.now = e.at
	return e, true
}

// RunUntil processes events in order until the queue is exhausted or the
// next event lies beyond limit, then advances the clock to limit. It returns
// the number of events executed.
func (s *Sim) RunUntil(limit time.Time) int {
	n := 0
	for {
		e, ok := s.pop(limit)
		if !ok {
			break
		}
		e.fn()
		n++
	}
	s.mu.Lock()
	if s.now.Before(limit) {
		s.now = limit
	}
	s.mu.Unlock()
	return n
}

// RunFor advances the simulation by d. See RunUntil.
func (s *Sim) RunFor(d time.Duration) int {
	return s.RunUntil(s.Now().Add(d))
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.evts)
}
