// Package simclock provides virtual time for the measurement experiments.
// The paper's longest measurement spans three months of wall time
// (Table 6); on the simulated clock those months elapse in milliseconds
// while preserving event ordering and inter-arrival statistics.
//
// Two abstractions are provided:
//
//   - Clock: the minimal read-only interface (Now) production code uses, with
//     Real() returning a wall-clock implementation.
//   - Sim: a deterministic discrete-event scheduler. Events are executed in
//     timestamp order (FIFO among equal timestamps); handlers may schedule
//     further events, including at the current instant.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Real returns a Clock backed by the system clock.
func Real() Clock { return realClock{} }

type event struct {
	at  time.Time
	seq uint64 // tie-breaker: preserves scheduling order at equal instants
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulation clock. The zero value is not usable;
// construct with New.
type Sim struct {
	mu   sync.Mutex
	now  time.Time
	seq  uint64
	evts eventHeap
}

// New returns a Sim starting at the given instant.
func New(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Schedule runs fn at the given absolute virtual time. Times in the past are
// clamped to the current instant.
func (s *Sim) Schedule(at time.Time, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at.Before(s.now) {
		at = s.now
	}
	s.seq++
	heap.Push(&s.evts, &event{at: at, seq: s.seq, fn: fn})
}

// ScheduleAfter runs fn d after the current virtual instant.
func (s *Sim) ScheduleAfter(d time.Duration, fn func()) {
	s.mu.Lock()
	at := s.now.Add(d)
	s.seq++
	heap.Push(&s.evts, &event{at: at, seq: s.seq, fn: fn})
	s.mu.Unlock()
}

// Every schedules fn at the fixed interval d starting d from now, until
// the returned cancel function is called.
func (s *Sim) Every(d time.Duration, fn func()) (cancel func()) {
	stopped := false
	var mu sync.Mutex
	var tick func()
	tick = func() {
		mu.Lock()
		dead := stopped
		mu.Unlock()
		if dead {
			return
		}
		fn()
		s.ScheduleAfter(d, tick)
	}
	s.ScheduleAfter(d, tick)
	return func() {
		mu.Lock()
		stopped = true
		mu.Unlock()
	}
}

// pop removes the earliest event not after limit, or returns nil.
func (s *Sim) pop(limit time.Time) *event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.evts) == 0 {
		return nil
	}
	if s.evts[0].at.After(limit) {
		return nil
	}
	e := heap.Pop(&s.evts).(*event)
	s.now = e.at
	return e
}

// RunUntil processes events in order until the queue is exhausted or the
// next event lies beyond limit, then advances the clock to limit. It returns
// the number of events executed.
func (s *Sim) RunUntil(limit time.Time) int {
	n := 0
	for {
		e := s.pop(limit)
		if e == nil {
			break
		}
		e.fn()
		n++
	}
	s.mu.Lock()
	if s.now.Before(limit) {
		s.now = limit
	}
	s.mu.Unlock()
	return n
}

// RunFor advances the simulation by d. See RunUntil.
func (s *Sim) RunFor(d time.Duration) int {
	return s.RunUntil(s.Now().Add(d))
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.evts)
}
