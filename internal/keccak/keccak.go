// Package keccak implements the original (pre-NIST) Keccak hash family as
// used by Monero and CryptoNight: Keccak-f[1600] permutation, Keccak-256 and
// Keccak-512 with the legacy 0x01 domain-separation padding (NIST SHA-3 later
// changed this to 0x06, which is why SHA3-256 digests differ from Monero's).
//
// The package also exposes the raw 200-byte sponge state initialisation used
// by CryptoNight, which absorbs the input and returns the full state rather
// than a truncated digest.
//
// Sum256, Sum512 and State1600 are one-shot and allocation-free: the sponge
// lives on the stack and the digest is returned by value. The streaming
// hash.Hash wrappers (New256/New512) remain for incremental callers.
package keccak

import (
	"encoding/binary"
	"hash"
	"math/bits"
)

// StateSize is the size of the Keccak-f[1600] state in bytes.
const StateSize = 200

// roundConstants are the 24 iota round constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// Permute applies the full 24-round Keccak-f[1600] permutation in place.
// The state lives in registers for the whole permutation: theta, rho-pi and
// chi are fully flattened (as in x/crypto/sha3), so each round is straight-
// line code with no array indexing, loops or bounds checks.
//
//lint:hotpath
func Permute(a *[25]uint64) {
	a0, a1, a2, a3, a4 := a[0], a[1], a[2], a[3], a[4]
	a5, a6, a7, a8, a9 := a[5], a[6], a[7], a[8], a[9]
	a10, a11, a12, a13, a14 := a[10], a[11], a[12], a[13], a[14]
	a15, a16, a17, a18, a19 := a[15], a[16], a[17], a[18], a[19]
	a20, a21, a22, a23, a24 := a[20], a[21], a[22], a[23], a[24]

	for r := 0; r < 24; r++ {
		// Theta: column parities, then xor each lane with its neighbour mix.
		c0 := a0 ^ a5 ^ a10 ^ a15 ^ a20
		c1 := a1 ^ a6 ^ a11 ^ a16 ^ a21
		c2 := a2 ^ a7 ^ a12 ^ a17 ^ a22
		c3 := a3 ^ a8 ^ a13 ^ a18 ^ a23
		c4 := a4 ^ a9 ^ a14 ^ a19 ^ a24
		d0 := c4 ^ bits.RotateLeft64(c1, 1)
		d1 := c0 ^ bits.RotateLeft64(c2, 1)
		d2 := c1 ^ bits.RotateLeft64(c3, 1)
		d3 := c2 ^ bits.RotateLeft64(c4, 1)
		d4 := c3 ^ bits.RotateLeft64(c0, 1)
		a0 ^= d0
		a5 ^= d0
		a10 ^= d0
		a15 ^= d0
		a20 ^= d0
		a1 ^= d1
		a6 ^= d1
		a11 ^= d1
		a16 ^= d1
		a21 ^= d1
		a2 ^= d2
		a7 ^= d2
		a12 ^= d2
		a17 ^= d2
		a22 ^= d2
		a3 ^= d3
		a8 ^= d3
		a13 ^= d3
		a18 ^= d3
		a23 ^= d3
		a4 ^= d4
		a9 ^= d4
		a14 ^= d4
		a19 ^= d4
		a24 ^= d4

		// Rho and Pi: rotate each lane and move it to its chi position.
		b0 := a0
		b1 := bits.RotateLeft64(a6, 44)
		b2 := bits.RotateLeft64(a12, 43)
		b3 := bits.RotateLeft64(a18, 21)
		b4 := bits.RotateLeft64(a24, 14)
		b5 := bits.RotateLeft64(a3, 28)
		b6 := bits.RotateLeft64(a9, 20)
		b7 := bits.RotateLeft64(a10, 3)
		b8 := bits.RotateLeft64(a16, 45)
		b9 := bits.RotateLeft64(a22, 61)
		b10 := bits.RotateLeft64(a1, 1)
		b11 := bits.RotateLeft64(a7, 6)
		b12 := bits.RotateLeft64(a13, 25)
		b13 := bits.RotateLeft64(a19, 8)
		b14 := bits.RotateLeft64(a20, 18)
		b15 := bits.RotateLeft64(a4, 27)
		b16 := bits.RotateLeft64(a5, 36)
		b17 := bits.RotateLeft64(a11, 10)
		b18 := bits.RotateLeft64(a17, 15)
		b19 := bits.RotateLeft64(a23, 56)
		b20 := bits.RotateLeft64(a2, 62)
		b21 := bits.RotateLeft64(a8, 55)
		b22 := bits.RotateLeft64(a14, 39)
		b23 := bits.RotateLeft64(a15, 41)
		b24 := bits.RotateLeft64(a21, 2)

		// Chi per row, with iota folded into lane 0.
		a0 = b0 ^ (^b1 & b2) ^ roundConstants[r]
		a1 = b1 ^ (^b2 & b3)
		a2 = b2 ^ (^b3 & b4)
		a3 = b3 ^ (^b4 & b0)
		a4 = b4 ^ (^b0 & b1)
		a5 = b5 ^ (^b6 & b7)
		a6 = b6 ^ (^b7 & b8)
		a7 = b7 ^ (^b8 & b9)
		a8 = b8 ^ (^b9 & b5)
		a9 = b9 ^ (^b5 & b6)
		a10 = b10 ^ (^b11 & b12)
		a11 = b11 ^ (^b12 & b13)
		a12 = b12 ^ (^b13 & b14)
		a13 = b13 ^ (^b14 & b10)
		a14 = b14 ^ (^b10 & b11)
		a15 = b15 ^ (^b16 & b17)
		a16 = b16 ^ (^b17 & b18)
		a17 = b17 ^ (^b18 & b19)
		a18 = b18 ^ (^b19 & b15)
		a19 = b19 ^ (^b15 & b16)
		a20 = b20 ^ (^b21 & b22)
		a21 = b21 ^ (^b22 & b23)
		a22 = b22 ^ (^b23 & b24)
		a23 = b23 ^ (^b24 & b20)
		a24 = b24 ^ (^b20 & b21)
	}

	a[0], a[1], a[2], a[3], a[4] = a0, a1, a2, a3, a4
	a[5], a[6], a[7], a[8], a[9] = a5, a6, a7, a8, a9
	a[10], a[11], a[12], a[13], a[14] = a10, a11, a12, a13, a14
	a[15], a[16], a[17], a[18], a[19] = a15, a16, a17, a18, a19
	a[20], a[21], a[22], a[23], a[24] = a20, a21, a22, a23, a24
}

// absorb soaks data into the sponge at the given rate with the legacy 0x01
// padding, leaving the squeezed state in a. It writes the final padded block
// directly into the lanes, so no block buffer — and no allocation — is
// needed.
//
//lint:hotpath
func absorb(a *[25]uint64, data []byte, rate int) {
	for len(data) >= rate {
		for i := 0; i < rate/8; i++ {
			a[i] ^= binary.LittleEndian.Uint64(data[i*8:])
		}
		Permute(a)
		data = data[rate:]
	}
	// Final partial block: whole lanes first, then the byte tail and the
	// 0x01…0x80 domain padding xored straight into the state.
	i := 0
	for ; len(data) >= 8; i++ {
		a[i] ^= binary.LittleEndian.Uint64(data)
		data = data[8:]
	}
	var last uint64
	for j := 0; j < len(data); j++ {
		last |= uint64(data[j]) << (8 * uint(j))
	}
	last |= 0x01 << (8 * uint(len(data))) // legacy Keccak domain bits
	a[i] ^= last
	a[rate/8-1] ^= 0x80 << 56
	Permute(a)
}

// Sum256 computes the legacy Keccak-256 digest of data. One-shot: the
// sponge lives on the stack and nothing is heap-allocated.
//
//lint:hotpath
func Sum256(data []byte) (out [32]byte) {
	var a [25]uint64
	absorb(&a, data, 136)
	binary.LittleEndian.PutUint64(out[0:], a[0])
	binary.LittleEndian.PutUint64(out[8:], a[1])
	binary.LittleEndian.PutUint64(out[16:], a[2])
	binary.LittleEndian.PutUint64(out[24:], a[3])
	return out
}

// Sum512 computes the legacy Keccak-512 digest of data, allocation-free.
//
//lint:hotpath
func Sum512(data []byte) (out [64]byte) {
	var a [25]uint64
	absorb(&a, data, 72)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], a[i])
	}
	return out
}

// State1600 absorbs data with the Keccak-512 rate (72 bytes) and returns the
// entire 200-byte sponge state. CryptoNight uses this as its initial state.
//
//lint:hotpath
func State1600(data []byte) (out [StateSize]byte) {
	var a [25]uint64
	absorb(&a, data, 72)
	for i := 0; i < 25; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], a[i])
	}
	return out
}

// digest implements hash.Hash for legacy-padded Keccak.
type digest struct {
	a       [25]uint64 // sponge state
	buf     [StateSize]byte
	n       int // buffered bytes
	rate    int // sponge rate in bytes
	size    int // digest size in bytes
	squeeze bool
}

// New256 returns a hash.Hash computing legacy Keccak-256 (rate 136, 0x01 pad).
func New256() hash.Hash { return &digest{rate: 136, size: 32} }

// New512 returns a hash.Hash computing legacy Keccak-512 (rate 72, 0x01 pad).
func New512() hash.Hash { return &digest{rate: 72, size: 64} }

func (d *digest) Size() int      { return d.size }
func (d *digest) BlockSize() int { return d.rate }

func (d *digest) Reset() {
	d.a = [25]uint64{}
	d.n = 0
	d.squeeze = false
}

func (d *digest) Write(p []byte) (int, error) {
	if d.squeeze {
		panic("keccak: Write after Sum")
	}
	n := len(p)
	for len(p) > 0 {
		c := copy(d.buf[d.n:d.rate], p)
		d.n += c
		p = p[c:]
		if d.n == d.rate {
			d.absorbBuf()
		}
	}
	return n, nil
}

func (d *digest) absorbBuf() {
	for i := 0; i < d.rate/8; i++ {
		d.a[i] ^= binary.LittleEndian.Uint64(d.buf[i*8:])
	}
	Permute(&d.a)
	d.n = 0
}

// Sum appends the digest to b. The receiver state is copied so further
// writes remain possible, matching hash.Hash semantics.
func (d *digest) Sum(b []byte) []byte {
	dd := *d
	dd.pad()
	var out [64]byte
	for i := 0; i < dd.size/8; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], dd.a[i])
	}
	return append(b, out[:dd.size]...)
}

func (d *digest) pad() {
	for i := d.n; i < d.rate; i++ {
		d.buf[i] = 0
	}
	d.buf[d.n] = 0x01 // legacy Keccak domain bits
	d.buf[d.rate-1] |= 0x80
	d.absorbBuf()
	d.squeeze = true
}
