// Package keccak implements the original (pre-NIST) Keccak hash family as
// used by Monero and CryptoNight: Keccak-f[1600] permutation, Keccak-256 and
// Keccak-512 with the legacy 0x01 domain-separation padding (NIST SHA-3 later
// changed this to 0x06, which is why SHA3-256 digests differ from Monero's).
//
// The package also exposes the raw 200-byte sponge state initialisation used
// by CryptoNight, which absorbs the input and returns the full state rather
// than a truncated digest.
package keccak

import (
	"encoding/binary"
	"hash"
	"math/bits"
)

// StateSize is the size of the Keccak-f[1600] state in bytes.
const StateSize = 200

// roundConstants are the 24 iota round constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// Permute applies the full 24-round Keccak-f[1600] permutation in place.
func Permute(a *[25]uint64) {
	var bc [5]uint64
	var t uint64
	for round := 0; round < 24; round++ {
		// Theta.
		bc[0] = a[0] ^ a[5] ^ a[10] ^ a[15] ^ a[20]
		bc[1] = a[1] ^ a[6] ^ a[11] ^ a[16] ^ a[21]
		bc[2] = a[2] ^ a[7] ^ a[12] ^ a[17] ^ a[22]
		bc[3] = a[3] ^ a[8] ^ a[13] ^ a[18] ^ a[23]
		bc[4] = a[4] ^ a[9] ^ a[14] ^ a[19] ^ a[24]
		for i := 0; i < 5; i++ {
			t = bc[(i+4)%5] ^ bits.RotateLeft64(bc[(i+1)%5], 1)
			a[i] ^= t
			a[i+5] ^= t
			a[i+10] ^= t
			a[i+15] ^= t
			a[i+20] ^= t
		}
		// Rho and Pi.
		t = a[1]
		t, a[10] = a[10], bits.RotateLeft64(t, 1)
		t, a[7] = a[7], bits.RotateLeft64(t, 3)
		t, a[11] = a[11], bits.RotateLeft64(t, 6)
		t, a[17] = a[17], bits.RotateLeft64(t, 10)
		t, a[18] = a[18], bits.RotateLeft64(t, 15)
		t, a[3] = a[3], bits.RotateLeft64(t, 21)
		t, a[5] = a[5], bits.RotateLeft64(t, 28)
		t, a[16] = a[16], bits.RotateLeft64(t, 36)
		t, a[8] = a[8], bits.RotateLeft64(t, 45)
		t, a[21] = a[21], bits.RotateLeft64(t, 55)
		t, a[24] = a[24], bits.RotateLeft64(t, 2)
		t, a[4] = a[4], bits.RotateLeft64(t, 14)
		t, a[15] = a[15], bits.RotateLeft64(t, 27)
		t, a[23] = a[23], bits.RotateLeft64(t, 41)
		t, a[19] = a[19], bits.RotateLeft64(t, 56)
		t, a[13] = a[13], bits.RotateLeft64(t, 8)
		t, a[12] = a[12], bits.RotateLeft64(t, 25)
		t, a[2] = a[2], bits.RotateLeft64(t, 43)
		t, a[20] = a[20], bits.RotateLeft64(t, 62)
		t, a[14] = a[14], bits.RotateLeft64(t, 18)
		t, a[22] = a[22], bits.RotateLeft64(t, 39)
		t, a[9] = a[9], bits.RotateLeft64(t, 61)
		t, a[6] = a[6], bits.RotateLeft64(t, 20)
		_, a[1] = a[1], bits.RotateLeft64(t, 44)
		// Chi.
		for j := 0; j < 25; j += 5 {
			bc[0] = a[j]
			bc[1] = a[j+1]
			bc[2] = a[j+2]
			bc[3] = a[j+3]
			bc[4] = a[j+4]
			a[j] = bc[0] ^ (^bc[1] & bc[2])
			a[j+1] = bc[1] ^ (^bc[2] & bc[3])
			a[j+2] = bc[2] ^ (^bc[3] & bc[4])
			a[j+3] = bc[3] ^ (^bc[4] & bc[0])
			a[j+4] = bc[4] ^ (^bc[0] & bc[1])
		}
		// Iota.
		a[0] ^= roundConstants[round]
	}
}

// digest implements hash.Hash for legacy-padded Keccak.
type digest struct {
	a       [25]uint64 // sponge state
	buf     [StateSize]byte
	n       int // buffered bytes
	rate    int // sponge rate in bytes
	size    int // digest size in bytes
	squeeze bool
}

// New256 returns a hash.Hash computing legacy Keccak-256 (rate 136, 0x01 pad).
func New256() hash.Hash { return &digest{rate: 136, size: 32} }

// New512 returns a hash.Hash computing legacy Keccak-512 (rate 72, 0x01 pad).
func New512() hash.Hash { return &digest{rate: 72, size: 64} }

func (d *digest) Size() int      { return d.size }
func (d *digest) BlockSize() int { return d.rate }

func (d *digest) Reset() {
	d.a = [25]uint64{}
	d.n = 0
	d.squeeze = false
}

func (d *digest) Write(p []byte) (int, error) {
	if d.squeeze {
		panic("keccak: Write after Sum")
	}
	n := len(p)
	for len(p) > 0 {
		c := copy(d.buf[d.n:d.rate], p)
		d.n += c
		p = p[c:]
		if d.n == d.rate {
			d.absorbBuf()
		}
	}
	return n, nil
}

func (d *digest) absorbBuf() {
	for i := 0; i < d.rate/8; i++ {
		d.a[i] ^= binary.LittleEndian.Uint64(d.buf[i*8:])
	}
	Permute(&d.a)
	d.n = 0
}

// Sum appends the digest to b. The receiver state is copied so further
// writes remain possible, matching hash.Hash semantics.
func (d *digest) Sum(b []byte) []byte {
	dd := *d
	dd.pad()
	out := make([]byte, dd.size)
	for i := 0; i < dd.size/8; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], dd.a[i])
	}
	return append(b, out...)
}

func (d *digest) pad() {
	for i := d.n; i < d.rate; i++ {
		d.buf[i] = 0
	}
	d.buf[d.n] = 0x01 // legacy Keccak domain bits
	d.buf[d.rate-1] |= 0x80
	d.absorbBuf()
	d.squeeze = true
}

// Sum256 computes the legacy Keccak-256 digest of data.
func Sum256(data []byte) [32]byte {
	h := New256()
	h.Write(data)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Sum512 computes the legacy Keccak-512 digest of data.
func Sum512(data []byte) [64]byte {
	h := New512()
	h.Write(data)
	var out [64]byte
	copy(out[:], h.Sum(nil))
	return out
}

// State1600 absorbs data with the Keccak-512 rate (72 bytes) and returns the
// entire 200-byte sponge state. CryptoNight uses this as its initial state.
func State1600(data []byte) [StateSize]byte {
	var a [25]uint64
	const rate = 72
	var block [rate]byte
	for len(data) >= rate {
		for i := 0; i < rate/8; i++ {
			a[i] ^= binary.LittleEndian.Uint64(data[i*8:])
		}
		Permute(&a)
		data = data[rate:]
	}
	copy(block[:], data)
	for i := len(data); i < rate; i++ {
		block[i] = 0
	}
	block[len(data)] = 0x01
	block[rate-1] |= 0x80
	for i := 0; i < rate/8; i++ {
		a[i] ^= binary.LittleEndian.Uint64(block[i*8:])
	}
	Permute(&a)
	var out [StateSize]byte
	for i := 0; i < 25; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], a[i])
	}
	return out
}
