package keccak_test

import (
	"testing"

	"repro/internal/benchcore"
	"repro/internal/keccak"
)

// The permute and 76-byte Sum256 bodies live in internal/benchcore, shared
// with cmd/bench so BENCH_core.json measures exactly these workloads.

func BenchmarkKeccakPermute(b *testing.B) { benchcore.KeccakPermute(b) }

// BenchmarkSum256 hashes a 76-byte input — the size of a block hashing
// blob, the dominant call site in the simulation.
func BenchmarkSum256(b *testing.B) { benchcore.KeccakSum256(b) }

func BenchmarkSum256_1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		keccak.Sum256(data)
	}
}

func BenchmarkState1600(b *testing.B) {
	data := make([]byte, 76)
	b.SetBytes(76)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		keccak.State1600(data)
	}
}
