package keccak

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Known-answer vectors for legacy (pre-NIST, 0x01-padded) Keccak, the variant
// Monero uses. These match the original Keccak reference implementation.
var vectors256 = []struct {
	in  string
	out string
}{
	{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
	{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
	{"The quick brown fox jumps over the lazy dog", "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"},
}

var vectors512 = []struct {
	in  string
	out string
}{
	{"", "0eab42de4c3ceb9235fc91acffe746b29c29a8c366b7c60e4e67c466f36a4304c00fa9caf9d87976ba469bcbe06713b435f091ef2769fb160cdab33d3670680e"},
	{"abc", "18587dc2ea106b9a1563e32b3312421ca164c7f1f07bc922a9c83d77cea3a1e5d0c69910739025372dc14ac9642629379540c17e2a65b19d77aa511a9d00bb96"},
}

func TestSum256Vectors(t *testing.T) {
	for _, v := range vectors256 {
		got := Sum256([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.out {
			t.Errorf("Sum256(%q) = %x, want %s", v.in, got, v.out)
		}
	}
}

func TestSum512Vectors(t *testing.T) {
	for _, v := range vectors512 {
		got := Sum512([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.out {
			t.Errorf("Sum512(%q) = %x, want %s", v.in, got, v.out)
		}
	}
}

func TestIncrementalWriteMatchesOneShot(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	want := Sum256(data)
	h := New256()
	// Write in awkward chunk sizes crossing the 136-byte rate boundary.
	for i := 0; i < len(data); {
		n := 1 + (i*13)%47
		if i+n > len(data) {
			n = len(data) - i
		}
		h.Write(data[i : i+n])
		i += n
	}
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("incremental = %x, want %x", got, want)
	}
}

func TestSumDoesNotConsumeState(t *testing.T) {
	h := New256()
	h.Write([]byte("hello"))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Errorf("repeated Sum differs: %x vs %x", first, second)
	}
	h.Write([]byte(" world"))
	want := Sum256([]byte("hello world"))
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("Write after Sum = %x, want %x", got, want)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	h := New512()
	h.Write([]byte("garbage that must vanish"))
	h.Reset()
	h.Write([]byte("abc"))
	want := Sum512([]byte("abc"))
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("after Reset = %x, want %x", got, want)
	}
}

func TestState1600Deterministic(t *testing.T) {
	a := State1600([]byte("job blob"))
	b := State1600([]byte("job blob"))
	if a != b {
		t.Error("State1600 not deterministic")
	}
	c := State1600([]byte("job blot"))
	if a == c {
		t.Error("State1600 collision on different input")
	}
}

func TestState1600MultiBlock(t *testing.T) {
	// Inputs longer than the 72-byte rate must absorb multiple blocks and
	// still be deterministic and distinct from truncated variants.
	long := bytes.Repeat([]byte{0xAB}, 300)
	a := State1600(long)
	b := State1600(long[:299])
	if a == b {
		t.Error("State1600 ignored trailing byte of multi-block input")
	}
}

func TestState1600PrefixOfKeccak512(t *testing.T) {
	// For a single-block input, the first 64 bytes of the raw state equal the
	// Keccak-512 digest of the same input (same rate, same padding).
	in := []byte("cryptonight-init")
	st := State1600(in)
	d := Sum512(in)
	if !bytes.Equal(st[:64], d[:]) {
		t.Errorf("state prefix %x != keccak512 %x", st[:64], d)
	}
}

func TestQuickDistinctInputsDistinctDigests(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		x, y := Sum256(a), Sum256(b)
		return x != y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIncrementalEqualsOneShot(t *testing.T) {
	f := func(a, b, c []byte) bool {
		h := New256()
		h.Write(a)
		h.Write(b)
		h.Write(c)
		all := append(append(append([]byte{}, a...), b...), c...)
		want := Sum256(all)
		return bytes.Equal(h.Sum(nil), want[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The one-shot entry points are on the simulation's hot path; the 1-CPU CI
// box cannot demonstrate parallel speedups, so the perf contract is
// structural: zero heap allocations per hash.
func TestOneShotHashesAllocateNothing(t *testing.T) {
	data := make([]byte, 300) // multi-block: exercises the partial-tail path too
	if avg := testing.AllocsPerRun(200, func() { Sum256(data) }); avg != 0 {
		t.Errorf("Sum256: %.1f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { Sum512(data) }); avg != 0 {
		t.Errorf("Sum512: %.1f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { State1600(data) }); avg != 0 {
		t.Errorf("State1600: %.1f allocs/op, want 0", avg)
	}
}

// Benchmarks live in bench_test.go (external test package), delegating to
// internal/benchcore so cmd/bench measures the identical workloads.
