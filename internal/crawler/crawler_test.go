package crawler

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/nocoin"
	"repro/internal/webgen"
)

func TestCorpusFetcherHonoursTLSBreakage(t *testing.T) {
	cfg := webgen.DefaultConfig(webgen.TLDOrg, 2, 5)
	c := webgen.Generate(cfg)
	c.Sites[0].Load.TLSBroken = true
	c.Sites[1].Load.TLSBroken = false
	f := NewCorpusFetcher(c)
	if res := f.Fetch(c.Sites[0].Domain); res.OK {
		t.Error("TLS-broken site fetched")
	}
	if res := f.Fetch(c.Sites[1].Domain); !res.OK || len(res.Body) == 0 {
		t.Errorf("healthy site fetch = %+v", res)
	}
	if res := f.Fetch("nxdomain.example"); res.OK || res.Err != "NXDOMAIN" {
		t.Errorf("nxdomain fetch = %+v", res)
	}
}

func TestScanPageFindsMinerLoader(t *testing.T) {
	site := &webgen.Site{
		Domain: "m.org", Rank: 1, Categories: []string{"Gaming"},
		Miner: &webgen.MinerDeployment{
			Family: "coinhive", Token: "tok-x", OfficialLoader: true,
		},
	}
	body := webgen.RenderStaticHTML(site)
	matches := ScanPage(nocoin.Bundled(), body)
	if len(matches) == 0 {
		t.Fatal("static coinhive loader not matched")
	}
	if fam := FamilyOfMatch(matches[0]); fam != "coinhive" {
		t.Errorf("family = %q", fam)
	}
}

func TestFamilyOfMatchLabels(t *testing.T) {
	list := nocoin.Bundled()
	cases := map[string]string{
		"https://coinhive.com/lib/coinhive.min.js":     "coinhive",
		"https://authedmine.com/lib/authedmine.min.js": "authedmine",
		"https://www.wp-monero-miner.com/js/miner.js":  "wp-monero",
		"https://crypto-loot.com/lib/miner.js":         "cryptoloot",
		"https://cdn.cpmstar.com/cached/js/cpmstar.js": "cpmstar",
		"https://deepminer.net/lib/deepminer.min.js":   "other",
	}
	for url, want := range cases {
		m, ok := list.MatchURL(url)
		if !ok {
			t.Errorf("no rule for %s", url)
			continue
		}
		if got := FamilyOfMatch(nocoin.Match{Rule: m, Target: url}); got != want {
			t.Errorf("FamilyOfMatch(%s) = %q, want %q", url, got, want)
		}
	}
}

func TestScanCorpusEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus static scan")
	}
	cfg := webgen.DefaultConfig(webgen.TLDAlexa, 80_000, 17)
	c := webgen.Generate(cfg)
	rep := Scan(c, NewCorpusFetcher(c), nocoin.Bundled(), 4)
	if rep.Total != 80_000 {
		t.Fatalf("total = %d", rep.Total)
	}
	if rep.Fetched >= rep.Total {
		t.Error("TLS-broken population missing: everything fetched")
	}
	if len(rep.Hits) == 0 {
		t.Fatal("no NoCoin hits in an Alexa-calibrated corpus")
	}
	// Alexa hit rate ≈ 0.07–0.08% of probed sites.
	rate := rep.HitRate()
	if rate < 0.0003 || rate > 0.002 {
		t.Errorf("hit rate = %.5f, want ~0.001 of fetched", rate)
	}
	if rep.FamilyCounts["coinhive"] == 0 {
		t.Error("no coinhive hits")
	}
	if rep.FamilyCounts["cpmstar"] == 0 {
		t.Error("no cpmstar false positives")
	}
}

func TestHTTPFetcherTruncatesAtCap(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A page that never wants to stop.
		chunk := strings.Repeat("x", 64<<10)
		for i := 0; i < 10; i++ {
			fmt.Fprint(w, chunk)
		}
	}))
	defer srv.Close()
	f := &HTTPFetcher{BaseURL: srv.URL}
	res := f.Fetch("whatever.org")
	if !res.OK {
		t.Fatalf("fetch failed: %s", res.Err)
	}
	if len(res.Body) != MaxBody {
		t.Errorf("body len = %d, want %d", len(res.Body), MaxBody)
	}
}

func TestHTTPFetcherReportsErrors(t *testing.T) {
	f := &HTTPFetcher{BaseURL: "http://127.0.0.1:1"}
	if res := f.Fetch("x.org"); res.OK {
		t.Error("fetch against a closed port succeeded")
	}
}
