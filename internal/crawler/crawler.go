// Package crawler implements the paper's §3.1 measurement pipeline: fetch
// every domain's landing page www.-prefixed over TLS, keep only the first
// 256 kB, extract the script tags, and match them against the NoCoin
// filter list.
package crawler

import (
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/htmlx"
	"repro/internal/nocoin"
	"repro/internal/webgen"
)

// MaxBody is the 256 kB download cap: "a good tradeoff between capturing
// most content ... and having a point where to stop downloading when pages
// do not stop sending data."
const MaxBody = 256 << 10

// FetchResult is one landing-page download.
type FetchResult struct {
	Domain string
	Body   string
	OK     bool
	Err    string
}

// Fetcher retrieves a landing page for a domain.
type Fetcher interface {
	Fetch(domain string) FetchResult
}

// CorpusFetcher serves pages straight from a synthetic corpus, honouring
// the TLS-broken population (sites the zgrab pass cannot reach but the
// http://-prefixed browser crawl later can).
type CorpusFetcher struct {
	byDomain map[string]*webgen.Site
}

// NewCorpusFetcher indexes a corpus.
func NewCorpusFetcher(c *webgen.Corpus) *CorpusFetcher {
	f := &CorpusFetcher{byDomain: make(map[string]*webgen.Site, len(c.Sites))}
	for _, s := range c.Sites {
		f.byDomain[s.Domain] = s
	}
	return f
}

// Fetch renders the site's static HTML, truncated to MaxBody.
func (f *CorpusFetcher) Fetch(domain string) FetchResult {
	s, ok := f.byDomain[domain]
	if !ok {
		return FetchResult{Domain: domain, Err: "NXDOMAIN"}
	}
	if s.Load.TLSBroken {
		return FetchResult{Domain: domain, Err: "tls: handshake failure"}
	}
	body := webgen.RenderStaticHTML(s)
	if len(body) > MaxBody {
		body = body[:MaxBody]
	}
	return FetchResult{Domain: domain, Body: body, OK: true}
}

// HTTPFetcher downloads real pages over the network (tests point it at
// httptest servers; a production deployment would point it at the web).
type HTTPFetcher struct {
	Client *http.Client
	// BaseURL overrides scheme+host resolution; the domain is appended as
	// a path ("" means https://www.<domain>/ semantics).
	BaseURL string
}

// Fetch downloads the first MaxBody bytes of a landing page.
func (f *HTTPFetcher) Fetch(domain string) FetchResult {
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := f.BaseURL + "/" + domain
	if f.BaseURL == "" {
		url = "https://www." + domain + "/"
	}
	resp, err := client.Get(url)
	if err != nil {
		return FetchResult{Domain: domain, Err: err.Error()}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxBody))
	if err != nil {
		return FetchResult{Domain: domain, Err: err.Error()}
	}
	return FetchResult{Domain: domain, Body: string(body), OK: true}
}

// Hit is one NoCoin-flagged domain.
type Hit struct {
	Domain  string
	Family  string // family label inferred from the matched rule
	Matches []nocoin.Match
}

// Report aggregates a static scan.
type Report struct {
	TLD     webgen.TLD
	Total   int
	Fetched int
	Hits    []Hit
	// FamilyCounts tallies hits by inferred script family (Fig. 2 bars).
	FamilyCounts map[string]int
}

// HitRate returns hits per fetched domain.
func (r Report) HitRate() float64 {
	if r.Fetched == 0 {
		return 0
	}
	return float64(len(r.Hits)) / float64(r.Fetched)
}

// ScanPage applies the list to one page body.
func ScanPage(list *nocoin.List, body string) []nocoin.Match {
	scripts := htmlx.ExtractScripts(body)
	refs := make([]nocoin.ScriptRef, len(scripts))
	for i, s := range scripts {
		refs[i] = nocoin.ScriptRef{Src: s.Src, Inline: s.Inline}
	}
	return list.MatchScripts(refs)
}

// FamilyOfMatch maps a matched rule to the script-family label used in
// Figure 2's legend.
func FamilyOfMatch(m nocoin.Match) string {
	probe := strings.ToLower(m.Rule.Raw + " " + m.Target)
	switch {
	case strings.Contains(probe, "authedmine"):
		return "authedmine"
	case strings.Contains(probe, "coinhive") || strings.Contains(probe, "coin-hive") ||
		strings.Contains(probe, "coinhive.min.js"):
		return "coinhive"
	case strings.Contains(probe, "wp-monero"):
		return "wp-monero"
	case strings.Contains(probe, "crypto-loot") || strings.Contains(probe, "cryptaloot") ||
		strings.Contains(probe, "cryptoloot"):
		return "cryptoloot"
	case strings.Contains(probe, "cpmstar"):
		return "cpmstar"
	default:
		return "other"
	}
}

// Scan fetches and scans every domain of a corpus with the given worker
// parallelism, aggregating a Report.
func Scan(c *webgen.Corpus, f Fetcher, list *nocoin.List, workers int) Report {
	if workers <= 0 {
		workers = 8
	}
	rep := Report{TLD: c.Cfg.TLD, Total: len(c.Sites), FamilyCounts: map[string]int{}}
	jobs := make(chan *webgen.Site)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				res := f.Fetch(s.Domain)
				if !res.OK {
					continue
				}
				matches := ScanPage(list, res.Body)
				mu.Lock()
				rep.Fetched++
				if len(matches) > 0 {
					h := Hit{Domain: s.Domain, Matches: matches, Family: FamilyOfMatch(matches[0])}
					rep.Hits = append(rep.Hits, h)
					// A site can carry several matching scripts; Fig. 2
					// counts each matched family once per site.
					seen := map[string]bool{}
					for _, m := range matches {
						fam := FamilyOfMatch(m)
						if !seen[fam] {
							seen[fam] = true
							rep.FamilyCounts[fam]++
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, s := range c.Sites {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	return rep
}
