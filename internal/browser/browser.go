// Package browser simulates the paper's instrumented Chrome (§3.2): it
// "visits" a page with an http://www. prefix, executes its scripts
// (revealing dynamically injected miners), dumps every instantiated
// WebAssembly module, records Websocket endpoints, applies the paper's
// page-load heuristic, and saves the first 65 kB of the final HTML so the
// NoCoin list can be re-applied post-execution.
package browser

import (
	"sync"

	"repro/internal/fingerprint"
	"repro/internal/htmlx"
	"repro/internal/nocoin"
	"repro/internal/wasm"
	"repro/internal/webgen"
)

// Load-heuristic constants from the paper: "we wait for the page's load
// event and set a 2 s timer on every DOM change but wait no longer than
// additional 5 s ... In case of no load event, we wait no longer than 15 s".
const (
	DOMQuietMs    = 2000
	ExtraCapMs    = 5000
	HardTimeoutMs = 15000
	// FinalHTMLCap is the 65 kB of post-execution HTML the paper saved.
	FinalHTMLCap = 65 << 10
)

// Page is the instrumented result of one visit.
type Page struct {
	Domain    string
	FinalHTML string
	Wasm      [][]byte
	WSHosts   []string
	LoadMs    int
	TimedOut  bool
}

// LoadCompletion evaluates the paper's heuristic for a load profile,
// returning the completion time in ms and whether the visit timed out.
func LoadCompletion(p webgen.LoadProfile) (int, bool) {
	if !p.HasLoadEvent {
		return HardTimeoutMs, true
	}
	complete := p.LoadEventMs + DOMQuietMs
	cap := p.LoadEventMs + ExtraCapMs
	for _, d := range p.DOMChangeMs {
		at := p.LoadEventMs + d
		if at+DOMQuietMs > complete {
			complete = at + DOMQuietMs
		}
	}
	if complete > cap {
		complete = cap
	}
	if complete > HardTimeoutMs {
		return HardTimeoutMs, true
	}
	return complete, false
}

// Visit executes a synthetic site.
func Visit(s *webgen.Site) Page {
	loadMs, timedOut := LoadCompletion(s.Load)
	art := webgen.Execute(s)
	html := art.FinalHTML
	if len(html) > FinalHTMLCap {
		html = html[:FinalHTMLCap]
	}
	return Page{
		Domain:    s.Domain,
		FinalHTML: html,
		Wasm:      art.Wasm,
		WSHosts:   art.WSHosts,
		LoadMs:    loadMs,
		TimedOut:  timedOut,
	}
}

// SiteVerdict is the per-site outcome of the instrumented crawl.
type SiteVerdict struct {
	Domain     string
	HasWasm    bool
	MinerWasm  bool
	Family     string
	KnownSig   bool
	NoCoinHit  bool
	TimedOut   bool
	Categories []string // filled by the experiment layer
}

// Report aggregates an instrumented crawl — the numbers behind Tables 1
// and 2.
type Report struct {
	TLD      webgen.TLD
	Total    int
	TimedOut int
	// WasmSites counts sites that instantiated any Wasm ("Total
	// WebAssembly" row of Table 1).
	WasmSites int
	// MinerSites counts sites whose Wasm is mining code.
	MinerSites int
	// FamilyCounts tallies miner sites by attributed family (Table 1 rows).
	FamilyCounts map[string]int
	// NoCoinHits counts sites the list flags on post-execution HTML.
	NoCoinHits int
	// NoCoinHitsWithMinerWasm is Table 2's "having Wasm Miner" column.
	NoCoinHitsWithMinerWasm int
	// MinersBlockedByNoCoin / MinersMissedByNoCoin split the Wasm-detected
	// miners by block-list visibility (Table 2's right half).
	MinersBlockedByNoCoin int
	MinersMissedByNoCoin  int
	Verdicts              []SiteVerdict
}

// MissRate returns the fraction of Wasm-detected miners the block list
// missed (82% Alexa / 67% .org in the paper).
func (r Report) MissRate() float64 {
	if r.MinerSites == 0 {
		return 0
	}
	return float64(r.MinersMissedByNoCoin) / float64(r.MinerSites)
}

// Crawl visits every site of a corpus with the given parallelism,
// classifying Wasm against db and re-applying the NoCoin list to the final
// HTML.
func Crawl(c *webgen.Corpus, db *fingerprint.DB, list *nocoin.List, workers int) Report {
	if workers <= 0 {
		workers = 8
	}
	rep := Report{TLD: c.Cfg.TLD, Total: len(c.Sites), FamilyCounts: map[string]int{}}
	jobs := make(chan *webgen.Site)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				v := classify(s, db, list)
				mu.Lock()
				if v.TimedOut {
					rep.TimedOut++
				}
				if v.HasWasm {
					rep.WasmSites++
				}
				if v.MinerWasm {
					rep.MinerSites++
					rep.FamilyCounts[v.Family]++
					if v.NoCoinHit {
						rep.MinersBlockedByNoCoin++
					} else {
						rep.MinersMissedByNoCoin++
					}
				}
				if v.NoCoinHit {
					rep.NoCoinHits++
					if v.MinerWasm {
						rep.NoCoinHitsWithMinerWasm++
					}
				}
				if v.MinerWasm || v.NoCoinHit || v.HasWasm {
					rep.Verdicts = append(rep.Verdicts, v)
				}
				mu.Unlock()
			}
		}()
	}
	for _, s := range c.Sites {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	return rep
}

func classify(s *webgen.Site, db *fingerprint.DB, list *nocoin.List) SiteVerdict {
	page := Visit(s)
	v := SiteVerdict{Domain: s.Domain, TimedOut: page.TimedOut}

	// NoCoin over the post-execution HTML.
	scripts := htmlx.ExtractScripts(page.FinalHTML)
	refs := make([]nocoin.ScriptRef, len(scripts))
	for i, sc := range scripts {
		refs[i] = nocoin.ScriptRef{Src: sc.Src, Inline: sc.Inline}
	}
	v.NoCoinHit = len(list.MatchScripts(refs)) > 0

	// Wasm fingerprinting over every dumped module.
	for _, bin := range page.Wasm {
		m, err := wasm.Decode(bin)
		if err != nil {
			continue
		}
		v.HasWasm = true
		verdict := db.Classify(m, page.WSHosts)
		if verdict.Miner {
			v.MinerWasm = true
			v.Family = verdict.Family
			v.KnownSig = verdict.Known
		}
	}
	return v
}
