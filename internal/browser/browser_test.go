package browser

import (
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/nocoin"
	"repro/internal/webgen"
)

func TestLoadCompletionHeuristic(t *testing.T) {
	cases := []struct {
		name     string
		p        webgen.LoadProfile
		wantMs   int
		wantTOut bool
	}{
		{"no load event times out at 15s",
			webgen.LoadProfile{HasLoadEvent: false}, HardTimeoutMs, true},
		{"quiet page: load + 2s",
			webgen.LoadProfile{HasLoadEvent: true, LoadEventMs: 1000}, 3000, false},
		{"dom change restarts the 2s timer",
			webgen.LoadProfile{HasLoadEvent: true, LoadEventMs: 1000, DOMChangeMs: []int{1500}}, 4500, false},
		{"busy dom capped at load + 5s",
			webgen.LoadProfile{HasLoadEvent: true, LoadEventMs: 1000, DOMChangeMs: []int{1000, 2000, 3000, 4000, 4900}}, 6000, false},
		{"late load event capped by hard timeout",
			webgen.LoadProfile{HasLoadEvent: true, LoadEventMs: 14_500}, HardTimeoutMs, true},
	}
	for _, c := range cases {
		got, tout := LoadCompletion(c.p)
		if got != c.wantMs || tout != c.wantTOut {
			t.Errorf("%s: (%d, %v), want (%d, %v)", c.name, got, tout, c.wantMs, c.wantTOut)
		}
	}
}

func TestVisitCapturesArtifacts(t *testing.T) {
	site := &webgen.Site{
		Domain: "dyn.org", Rank: 3, TLD: webgen.TLDOrg,
		Categories: []string{"Business"},
		Miner: &webgen.MinerDeployment{
			Family: fingerprint.FamilyCoinhive, Version: 0,
			Token: "tok-dyn001", OfficialLoader: false,
		},
		Load: webgen.LoadProfile{HasLoadEvent: true, LoadEventMs: 500},
	}
	page := Visit(site)
	if len(page.Wasm) != 1 || len(page.WSHosts) != 1 {
		t.Fatalf("wasm=%d ws=%d", len(page.Wasm), len(page.WSHosts))
	}
	if page.TimedOut {
		t.Error("unexpected timeout")
	}
	if len(page.FinalHTML) == 0 || len(page.FinalHTML) > FinalHTMLCap {
		t.Errorf("final HTML len = %d", len(page.FinalHTML))
	}
}

func TestCrawlFindsDynamicMinersThatNoCoinMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus browser crawl")
	}
	cfg := webgen.DefaultConfig(webgen.TLDAlexa, 60_000, 42)
	corpus := webgen.Generate(cfg)
	db := fingerprint.ReferenceDB()
	rep := Crawl(corpus, db, nocoin.Bundled(), 4)

	if rep.MinerSites == 0 {
		t.Fatal("no miners found in a 60k Alexa corpus")
	}
	if rep.MinersMissedByNoCoin == 0 {
		t.Error("NoCoin missed nothing — dynamic injection is not working")
	}
	if rep.MissRate() < 0.6 || rep.MissRate() > 0.95 {
		t.Errorf("miss rate = %.2f, paper reports 0.82 for Alexa", rep.MissRate())
	}
	// Coinhive must dominate the family counts.
	top, topN := "", 0
	for f, n := range rep.FamilyCounts {
		if n > topN {
			top, topN = f, n
		}
	}
	if top != fingerprint.FamilyCoinhive {
		t.Errorf("top family = %s (%d), want coinhive; counts=%v", top, topN, rep.FamilyCounts)
	}
	// NoCoin flags more sites than actually carry mining Wasm (false
	// positives: the ad-network sites).
	if rep.NoCoinHits <= rep.NoCoinHitsWithMinerWasm {
		t.Errorf("NoCoin hits %d vs with-wasm %d: FP population missing",
			rep.NoCoinHits, rep.NoCoinHitsWithMinerWasm)
	}
	// Consistency identities.
	if rep.MinersBlockedByNoCoin+rep.MinersMissedByNoCoin != rep.MinerSites {
		t.Error("blocked+missed != miners")
	}
	if rep.WasmSites < rep.MinerSites {
		t.Error("wasm sites < miner sites")
	}
}

func TestCrawlTimeoutsAccounted(t *testing.T) {
	cfg := webgen.DefaultConfig(webgen.TLDOrg, 5_000, 9)
	cfg.TimeoutRate = 0.25
	corpus := webgen.Generate(cfg)
	rep := Crawl(corpus, fingerprint.ReferenceDB(), nocoin.Bundled(), 4)
	frac := float64(rep.TimedOut) / float64(rep.Total)
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("timeout fraction = %.3f, want ~0.25", frac)
	}
}
