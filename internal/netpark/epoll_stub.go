//go:build !linux

package netpark

import (
	"errors"
	"syscall"
)

// poller is unavailable off linux: real-socket parks fall back to the
// caller's dedicated goroutine (Park returns false). In-memory conns
// (ArmReadWaker) park everywhere.
type poller struct{}

func newPoller(*Parker) (*poller, error) { return nil, nil }

func (*poller) add(*entry, syscall.Conn) error {
	return errors.New("netpark: no poller on this platform")
}

func (*poller) drop(*entry) {}

func (*poller) close() {}
