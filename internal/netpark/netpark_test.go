package netpark

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memconn"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParkWakesOnMemconnData(t *testing.T) {
	p := New(2)
	defer p.Close()
	client, server := memconn.Pipe()
	var ready, timeout atomic.Int32
	if !p.Park(server, time.Now().Add(time.Minute),
		func() { ready.Add(1) }, func() { timeout.Add(1) }) {
		t.Fatal("memconn park refused")
	}
	if p.Parked() != 1 {
		t.Fatalf("Parked() = %d, want 1", p.Parked())
	}
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "onReady", func() bool { return ready.Load() == 1 })
	if timeout.Load() != 0 {
		t.Fatal("timeout fired alongside wake")
	}
	if p.Parked() != 0 {
		t.Fatalf("Parked() = %d after wake, want 0", p.Parked())
	}
}

func TestParkTimesOut(t *testing.T) {
	p := New(2)
	defer p.Close()
	_, server := memconn.Pipe()
	var ready, timeout atomic.Int32
	if !p.Park(server, time.Now().Add(50*time.Millisecond),
		func() { ready.Add(1) }, func() { timeout.Add(1) }) {
		t.Fatal("park refused")
	}
	waitFor(t, "onTimeout", func() bool { return timeout.Load() == 1 })
	if ready.Load() != 0 {
		t.Fatal("onReady fired alongside timeout")
	}
}

func TestParkWakesOnPeerClose(t *testing.T) {
	p := New(2)
	defer p.Close()
	client, server := memconn.Pipe()
	var ready atomic.Int32
	if !p.Park(server, time.Now().Add(time.Minute), func() { ready.Add(1) }, func() {}) {
		t.Fatal("park refused")
	}
	client.Close()
	waitFor(t, "onReady after close", func() bool { return ready.Load() == 1 })
}

func TestParkImmediatelyReadable(t *testing.T) {
	p := New(2)
	defer p.Close()
	client, server := memconn.Pipe()
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	var ready atomic.Int32
	if !p.Park(server, time.Now().Add(time.Minute), func() { ready.Add(1) }, func() {}) {
		t.Fatal("park refused")
	}
	waitFor(t, "onReady for buffered data", func() bool { return ready.Load() == 1 })
}

func TestParkTCP(t *testing.T) {
	p := New(2)
	defer p.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	var ready atomic.Int32
	ok := p.Park(server, time.Now().Add(time.Minute), func() { ready.Add(1) }, func() {})
	if runtime.GOOS != "linux" {
		if ok {
			t.Fatal("TCP park should refuse without a poller")
		}
		return
	}
	if !ok {
		t.Fatal("TCP park refused on linux")
	}
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "epoll wake", func() bool { return ready.Load() == 1 })

	// Re-park the same fd (oneshot re-arm path) and wake it again.
	buf := make([]byte, 16)
	if _, err := server.Read(buf); err != nil {
		t.Fatal(err)
	}
	if !p.Park(server, time.Now().Add(time.Minute), func() { ready.Add(1) }, func() {}) {
		t.Fatal("re-park refused")
	}
	if _, err := client.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second epoll wake", func() bool { return ready.Load() == 2 })
}

// TestParkStorm parks many conns and wakes them all at once — the shape a
// tip-change fan-out produces — checking claims stay exactly-once.
func TestParkStorm(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 500
	var ready atomic.Int32
	var timeouts atomic.Int32
	clients := make([]*memconn.Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		client, server := memconn.Pipe()
		clients[i] = client
		wg.Add(1)
		if !p.Park(server, time.Now().Add(time.Minute),
			func() { ready.Add(1); wg.Done() },
			func() { timeouts.Add(1); wg.Done() }) {
			t.Fatal("park refused")
		}
	}
	for _, c := range clients {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if ready.Load() != n || timeouts.Load() != 0 {
		t.Fatalf("ready=%d timeouts=%d, want %d/0", ready.Load(), timeouts.Load(), n)
	}
}

// TestGoroutineDiet pins the core claim: parked connections hold no
// goroutine. 1000 parked memconn sessions must not grow the goroutine
// count by more than the parker's own fixed overhead.
func TestGoroutineDiet(t *testing.T) {
	before := runtime.NumGoroutine()
	p := New(4)
	defer p.Close()
	const n = 1000
	for i := 0; i < n; i++ {
		_, server := memconn.Pipe()
		if !p.Park(server, time.Now().Add(time.Minute), func() {}, func() {}) {
			t.Fatal("park refused")
		}
	}
	if got := p.Parked(); got != n {
		t.Fatalf("Parked() = %d, want %d", got, n)
	}
	after := runtime.NumGoroutine()
	if grew := after - before; grew > 16 {
		t.Fatalf("parking %d conns grew goroutines by %d — parked conns must not hold goroutines", n, grew)
	}
}
