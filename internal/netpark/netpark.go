// Package netpark parks idle connections without a goroutine each. A
// server-clocked stratum session spends almost all of its life silent
// between keepalives; a blocked reader goroutine per live session means
// 50k sessions cost 50k stacks doing nothing. Parking instead registers
// the connection with a readiness source — epoll for real sockets,
// an ArmReadWaker hook for in-memory conns — plus a deadline min-heap,
// and resumes the session on a small worker pool when bytes arrive or
// the deadline (the keepalive window) expires. Goroutine count then
// scales with *active* sessions, not live ones.
package netpark

import (
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// readWaker is the fd-less readiness source (memconn implements it).
type readWaker interface {
	ArmReadWaker(func())
}

// entry is one parked connection. Single-use: a wake or timeout claims it
// exactly once (the atomic arbitrates between the readiness source and
// the deadline heap), and resuming re-parks with a fresh entry.
type entry struct {
	deadlineNs int64
	onReady    func()
	onTimeout  func()
	claimed    atomic.Bool
	// fd is the epoll-registered descriptor, negative otherwise. Atomic
	// because the poller registers it after the entry is already visible
	// to the deadline heap.
	fd atomic.Int32
}

// Parker parks connections until readability or a deadline.
type Parker struct {
	mu      sync.Mutex
	heap    []*entry // min-heap by deadlineNs, lazy removal of claimed entries
	readyq  []*entry
	rhead   int
	ready   sync.Cond
	stopped bool

	kick  chan struct{} // nudges the timer loop after an earlier deadline lands
	stopc chan struct{}

	poller *poller // epoll readiness for real sockets; nil when unavailable
	parked atomic.Int64
}

// New starts a parker with the given resume-worker count (<=0 picks a
// small default). Workers run the onReady callbacks, so their count
// bounds how many resumed sessions execute concurrently — the active-
// session ceiling, deliberately far below the parked-session count.
func New(workers int) *Parker {
	if workers <= 0 {
		workers = 8
	}
	p := &Parker{
		kick:  make(chan struct{}, 1),
		stopc: make(chan struct{}),
	}
	p.ready.L = &p.mu
	p.poller, _ = newPoller(p)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go p.timerLoop()
	return p
}

// Parked reports how many connections are currently parked.
func (p *Parker) Parked() int64 { return p.parked.Load() }

// Park registers nc until it becomes readable (onReady, run on a parker
// worker) or deadline passes (onTimeout, run on the timer goroutine —
// it must be cheap; closing a connection is). Exactly one of the two
// fires, once. It returns false when the connection offers no readiness
// source the parker can use — the caller then keeps its own goroutine.
//
// The caller must not touch the connection after a successful Park until
// its callback fires: the callback may run before Park even returns (data
// already buffered). Park's internal lock provides the happens-before
// between the caller's pre-Park writes and the callback's reads.
func (p *Parker) Park(nc net.Conn, deadline time.Time, onReady, onTimeout func()) bool {
	e := &entry{deadlineNs: deadline.UnixNano(), onReady: onReady, onTimeout: onTimeout}
	e.fd.Store(-1)
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return false
	}
	p.heapPush(e)
	front := p.heap[0] == e
	p.mu.Unlock()
	if front {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
	// Arm the readiness source only after releasing p.mu: a waker may fire
	// synchronously (data already buffered) and wake() re-enters the lock.
	if rw, ok := nc.(readWaker); ok {
		p.parked.Add(1)
		rw.ArmReadWaker(func() { p.wake(e) })
		return true
	}
	if p.poller != nil {
		if sc, ok := nc.(syscall.Conn); ok {
			p.parked.Add(1)
			if p.poller.add(e, sc) == nil {
				return true
			}
			p.parked.Add(-1)
		}
	}
	// No readiness source: withdraw the entry (the heap skips claimed
	// entries lazily) and let the caller keep its dedicated goroutine.
	e.claimed.Store(true)
	return false
}

// wake claims e and queues its onReady on the worker pool. Loses cleanly
// to a concurrent timeout claim.
func (p *Parker) wake(e *entry) {
	if !e.claimed.CompareAndSwap(false, true) {
		return
	}
	p.parked.Add(-1)
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		// Workers are gone; the resume must still happen so the session
		// observes its dead transport and tears down.
		go e.onReady()
		return
	}
	p.readyq = append(p.readyq, e)
	p.ready.Signal()
	p.mu.Unlock()
}

func (p *Parker) worker() {
	for {
		p.mu.Lock()
		for p.rhead == len(p.readyq) && !p.stopped {
			p.ready.Wait()
		}
		if p.rhead == len(p.readyq) {
			p.mu.Unlock()
			return
		}
		e := p.readyq[p.rhead]
		p.readyq[p.rhead] = nil
		p.rhead++
		if p.rhead == len(p.readyq) {
			p.readyq = p.readyq[:0]
			p.rhead = 0
		}
		p.mu.Unlock()
		e.onReady()
	}
}

func (p *Parker) timerLoop() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		now := time.Now().UnixNano()
		var due []*entry
		p.mu.Lock()
		for len(p.heap) > 0 {
			top := p.heap[0]
			if top.claimed.Load() {
				p.heapPop()
				continue
			}
			if top.deadlineNs > now {
				break
			}
			p.heapPop()
			if top.claimed.CompareAndSwap(false, true) {
				due = append(due, top)
			}
		}
		wait := time.Hour
		if len(p.heap) > 0 {
			wait = time.Duration(p.heap[0].deadlineNs - now)
		}
		p.mu.Unlock()
		for _, e := range due {
			p.parked.Add(-1)
			if p.poller != nil && e.fd.Load() >= 0 {
				p.poller.drop(e)
			}
			e.onTimeout()
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-p.kick:
		case <-p.stopc:
			return
		}
	}
}

// Close stops the parker: workers drain the ready queue and exit, the
// timer stops firing, the poller shuts down. Entries still parked never
// fire — callers shutting down are expected to tear their connections
// down directly.
func (p *Parker) Close() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.ready.Broadcast()
	p.mu.Unlock()
	close(p.stopc)
	if p.poller != nil {
		p.poller.close()
	}
}

// Min-heap by deadlineNs, hand-rolled to keep entries as typed pointers.

func (p *Parker) heapPush(e *entry) {
	p.heap = append(p.heap, e)
	i := len(p.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if p.heap[parent].deadlineNs <= p.heap[i].deadlineNs {
			break
		}
		p.heap[parent], p.heap[i] = p.heap[i], p.heap[parent]
		i = parent
	}
}

func (p *Parker) heapPop() *entry {
	h := p.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	p.heap = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && p.heap[l].deadlineNs < p.heap[small].deadlineNs {
			small = l
		}
		if r < last && p.heap[r].deadlineNs < p.heap[small].deadlineNs {
			small = r
		}
		if small == i {
			break
		}
		p.heap[i], p.heap[small] = p.heap[small], p.heap[i]
		i = small
	}
	return top
}
