//go:build linux

package netpark

import (
	"errors"
	"sync"
	"syscall"
)

// poller is the epoll readiness source for real sockets: one epoll fd,
// level-triggered EPOLLONESHOT registrations (one wake per park — the
// session re-parks explicitly), and a single wait goroutine dispatching
// wakes onto the parker's worker pool.
//
// Lifetime discipline: only the wait goroutine ever closes the epoll fd.
// If close() closed it directly, the loop's next EpollWait could land on
// a *reused* fd number — typically the next Parker's epoll instance —
// and silently steal its oneshot events, leaving sessions parked
// forever. Instead close() closes the wake pipe's write end; the loop
// sees the always-pending wake event, exits, and closes the fds it owns.
// add/drop guard their EpollCtl calls with the closed flag under mu for
// the same reason.
type poller struct {
	epfd  int
	wakeR int // pipe read end registered in epfd; EOF = shutdown

	mu     sync.Mutex
	byFd   map[int32]*entry
	closed bool

	wakeW int // pipe write end; closing it wakes the loop, guarded by mu
}

var errPollerClosed = errors.New("netpark: poller closed")

func newPoller(p *Parker) (*poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pipefds [2]int
	if err := syscall.Pipe2(pipefds[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		_ = syscall.Close(epfd)
		return nil, err
	}
	// Level-triggered, no oneshot: the shutdown event must stay pending
	// until the loop consumes it, however late it gets scheduled.
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(pipefds[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, pipefds[0], &ev); err != nil {
		_ = syscall.Close(epfd)
		_ = syscall.Close(pipefds[0])
		_ = syscall.Close(pipefds[1])
		return nil, err
	}
	pl := &poller{epfd: epfd, wakeR: pipefds[0], wakeW: pipefds[1], byFd: map[int32]*entry{}}
	go pl.loop(p)
	return pl, nil
}

// add registers e's connection for one readability wake. The byFd slot
// and the epoll_ctl happen under one lock so a wake racing the
// registration always finds its entry, and so no registration can land
// on an epfd the loop has already closed.
func (pl *poller) add(e *entry, sc syscall.Conn) error {
	rc, err := sc.SyscallConn()
	if err != nil {
		return err
	}
	ctlErr := errors.New("netpark: control not run")
	err = rc.Control(func(f uintptr) {
		fd := int32(f)
		e.fd.Store(fd)
		ev := syscall.EpollEvent{
			Events: uint32(syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT),
			Fd:     fd,
		}
		pl.mu.Lock()
		defer pl.mu.Unlock()
		if pl.closed {
			ctlErr = errPollerClosed
			return
		}
		pl.byFd[fd] = e
		ctlErr = syscall.EpollCtl(pl.epfd, syscall.EPOLL_CTL_ADD, int(f), &ev)
		if ctlErr == syscall.EEXIST {
			// The fd was parked before (oneshot leaves the registration
			// disarmed); re-arm it.
			ctlErr = syscall.EpollCtl(pl.epfd, syscall.EPOLL_CTL_MOD, int(f), &ev)
		}
		if ctlErr != nil {
			if pl.byFd[fd] == e {
				delete(pl.byFd, fd)
			}
		}
	})
	if err != nil {
		return err
	}
	return ctlErr
}

// drop forgets a timed-out entry's registration. The byFd identity check
// guards against fd reuse: if the connection closed while parked (the
// kernel then purged its registration) and the fd number was re-parked by
// a newer connection, the slot belongs to that entry and stays.
func (pl *poller) drop(e *entry) {
	fd := e.fd.Load()
	pl.mu.Lock()
	if pl.byFd[fd] == e {
		delete(pl.byFd, fd)
		if !pl.closed {
			var ev syscall.EpollEvent
			_ = syscall.EpollCtl(pl.epfd, syscall.EPOLL_CTL_DEL, int(fd), &ev)
		}
	}
	pl.mu.Unlock()
}

func (pl *poller) loop(p *Parker) {
	events := make([]syscall.EpollEvent, 128)
	for {
		n, err := syscall.EpollWait(pl.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			pl.shutdownFds()
			return
		}
		stop := false
		for i := 0; i < n; i++ {
			fd := events[i].Fd
			if fd == int32(pl.wakeR) {
				// Shutdown wake. Finish dispatching this batch first —
				// the conn events in it were consumed (oneshot) and
				// would otherwise be lost.
				stop = true
				continue
			}
			pl.mu.Lock()
			e := pl.byFd[fd]
			delete(pl.byFd, fd)
			pl.mu.Unlock()
			if e != nil {
				p.wake(e)
			}
		}
		if stop {
			pl.shutdownFds()
			return
		}
	}
}

// shutdownFds releases the fds the loop owns. Under mu so an in-flight
// add/drop that already passed its closed check finishes its EpollCtl
// before the epfd dies.
func (pl *poller) shutdownFds() {
	pl.mu.Lock()
	pl.closed = true // loop exit without close(): make add/drop stop either way
	_ = syscall.Close(pl.epfd)
	_ = syscall.Close(pl.wakeR)
	pl.mu.Unlock()
}

// close asks the loop to shut down: mark the poller closed so no new
// registration lands, then close the wake pipe's write end — EOF makes
// the read end readable, a level-triggered event the loop cannot miss no
// matter how late it runs. The loop closes the epoll fd itself, so its
// number cannot be reused out from under a pending EpollWait.
func (pl *poller) close() {
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return
	}
	pl.closed = true
	wakeW := pl.wakeW
	pl.wakeW = -1
	pl.mu.Unlock()
	_ = syscall.Close(wakeW)
}
