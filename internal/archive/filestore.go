package archive

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FileStore is the durable Store: a directory of numbered segment
// files (`archive-00000000.seg`, …), each a run of framed records.
// Appends go to the newest segment; when it exceeds SegmentBytes the
// store rotates to a fresh one and, if MaxSegments is set, unlinks the
// oldest. Durability is batched: Append only writes, Sync fsyncs.
//
// Crash recovery: segments are only ever appended to, so a crash can
// corrupt at most the tail of the newest segment. OpenFileStore scans
// that segment record-by-record and truncates the first torn record
// (short length prefix, short body or CRC mismatch) — everything
// fsynced before the crash survives, and the torn tail is dropped
// exactly once.
type FileStore struct {
	dir  string
	opts FileStoreOptions

	mu       sync.Mutex
	f        *os.File // newest segment, append handle
	firstSeg uint32
	lastSeg  uint32
	size     int64 // bytes in the newest segment
	dirty    bool  // unsynced writes pending
	buf      []byte
}

// FileStoreOptions tune segment rotation and retention.
type FileStoreOptions struct {
	// SegmentBytes rotates to a new segment once the current one
	// reaches this size (default 4 MiB).
	SegmentBytes int64
	// MaxSegments caps how many segments are kept; rotation unlinks
	// the oldest beyond the cap. 0 keeps everything.
	MaxSegments int
}

const (
	segPrefix          = "archive-"
	segSuffix          = ".seg"
	defaultSegmentSize = 4 << 20
)

func segName(n uint32) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix)
}

// OpenFileStore opens (creating if needed) the archive directory and
// recovers the newest segment's torn tail, if any.
func OpenFileStore(dir string, opts FileStoreOptions) (*FileStore, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	s := &FileStore{dir: dir, opts: opts}
	if len(segs) == 0 {
		s.firstSeg, s.lastSeg = 0, 0
	} else {
		s.firstSeg, s.lastSeg = segs[0], segs[len(segs)-1]
		if err := recoverSegment(filepath.Join(dir, segName(s.lastSeg))); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(s.lastSeg)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s.f, s.size = f, st.Size()
	return s, nil
}

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(dir string) ([]uint32, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint32
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		num, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 32)
		if err != nil {
			continue
		}
		segs = append(segs, uint32(num))
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// recoverSegment scans path record-by-record and truncates at the
// first torn record. A structurally impossible record mid-file (not a
// clean cut) is a hard error: that is bit rot, not a crash.
func recoverSegment(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	valid := int64(0)
	var ev Event
	for int(valid) < len(data) {
		n, err := decodeRecord(data[valid:], &ev)
		if errors.Is(err, errShortRecord) {
			break // torn tail: truncate here
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		valid += int64(n)
	}
	if int(valid) == len(data) {
		return nil
	}
	return os.Truncate(path, valid)
}

// Append encodes ev into the newest segment. The encode buffer is
// reused across calls, so steady-state appends stay allocation-free
// until rotation.
//
//lint:hotpath
func (s *FileStore) Append(ev *Event) error {
	s.mu.Lock()
	s.buf = AppendRecord(s.buf[:0], ev)
	n, err := s.f.Write(s.buf)
	s.size += int64(n)
	s.dirty = true
	if err == nil && s.size >= s.opts.SegmentBytes {
		err = s.rotateLocked()
	}
	s.mu.Unlock()
	return err
}

// rotateLocked syncs and closes the current segment, starts the next
// one and applies retention.
func (s *FileStore) rotateLocked() error {
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.dirty = false
	if err := s.f.Close(); err != nil {
		return err
	}
	s.lastSeg++
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.lastSeg)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.f, s.size = f, 0
	if s.opts.MaxSegments > 0 {
		for s.lastSeg-s.firstSeg+1 > uint32(s.opts.MaxSegments) {
			if err := os.Remove(filepath.Join(s.dir, segName(s.firstSeg))); err != nil && !os.IsNotExist(err) {
				return err
			}
			s.firstSeg++
		}
	}
	return nil
}

// Sync fsyncs the newest segment if anything was appended since the
// last Sync.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// Next reads up to len(out) events at cursor c. Cursors pointing into
// segments unlinked by retention are clamped forward to the oldest
// retained segment. Only iteration state is touched under the store
// mutex, so a slow reader delays the Recorder's drain goroutine at
// worst — never the submit path, which only enqueues.
func (s *FileStore) Next(c Cursor, out []Event) (int, Cursor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.Segment < s.firstSeg {
		c = Cursor{Segment: s.firstSeg}
	}
	n := 0
	for n < len(out) && c.Segment <= s.lastSeg {
		segSize := s.size
		if c.Segment != s.lastSeg {
			st, err := os.Stat(filepath.Join(s.dir, segName(c.Segment)))
			if os.IsNotExist(err) { // raced retention
				c = Cursor{Segment: c.Segment + 1}
				continue
			}
			if err != nil {
				return n, c, err
			}
			segSize = st.Size()
		}
		if c.Offset >= segSize {
			if c.Segment == s.lastSeg {
				break
			}
			c = Cursor{Segment: c.Segment + 1}
			continue
		}
		read, consumed, err := s.readSegment(c, segSize, out[n:])
		n += read
		c.Offset += consumed
		if err != nil {
			return n, c, err
		}
		if read == 0 {
			break // record spans past segSize: not yet visible
		}
	}
	return n, c, nil
}

// readSegment decodes records from one segment starting at c.Offset,
// stopping at segSize, len(out) events, or a torn tail (which is only
// legal transiently, while Append is mid-write on the newest segment).
func (s *FileStore) readSegment(c Cursor, segSize int64, out []Event) (int, int64, error) {
	f, err := os.Open(filepath.Join(s.dir, segName(c.Segment)))
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	data := make([]byte, segSize-c.Offset)
	if _, err := io.ReadFull(io.NewSectionReader(f, c.Offset, int64(len(data))), data); err != nil {
		return 0, 0, err
	}
	n := 0
	consumed := int64(0)
	for n < len(out) && int(consumed) < len(data) {
		rec, err := decodeRecord(data[consumed:], &out[n])
		if errors.Is(err, errShortRecord) {
			break
		}
		if err != nil {
			return n, consumed, err
		}
		consumed += int64(rec)
		n++
	}
	return n, consumed, nil
}

// Close syncs and closes the newest segment.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	syncErr := error(nil)
	if s.dirty {
		syncErr = s.f.Sync()
	}
	closeErr := s.f.Close()
	s.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
