package archive

// Replay re-derives the pool's attribution state — found blocks,
// per-account credited work and per-account paid balances — from the
// archived event stream alone. It is the durable-data twin of the live
// pool's FoundBlocks/AccountSnapshot surface: a live run and a replay
// of its archive must agree bit for bit, which the coinhive test suite
// asserts and `poolwatch -from-archive` exposes to operators.

// ReplayBlock mirrors one found block as archived.
type ReplayBlock struct {
	Height    uint64
	Timestamp uint64
	Backend   int
	Reward    uint64
}

// ReplayBan is one archived ban, for operator display.
type ReplayBan struct {
	TimeNs   int64
	Identity string
}

// ReplayResult aggregates an archive into attribution state.
type ReplayResult struct {
	Events uint64 // total events consumed

	SharesAccepted  uint64
	SharesStale     uint64
	SharesDuplicate uint64
	SharesRejected  uint64
	Retargets       uint64
	ChainHeight     uint64 // highest KindBlockAppend seen

	// SharesGossipedIn counts federation entries admitted from peers;
	// Reorgs counts share-chain order displacements. Gossiped-in credit
	// is deliberately NOT folded into Credit: that map mirrors the local
	// pool's AccountSnapshot surface, which federation does not touch —
	// federated credit converges in the share-chain, not the accounts.
	SharesGossipedIn uint64
	Reorgs           uint64

	Blocks []ReplayBlock
	Bans   []ReplayBan

	// Credit is total hashes credited per account token (the sum of
	// accepted-share difficulty); Paid is the payout sum per token.
	Credit map[string]uint64
	Paid   map[string]uint64
}

// Replay consumes the whole store from the start of retained history.
func Replay(store Store) (*ReplayResult, error) {
	res := &ReplayResult{
		Credit: map[string]uint64{},
		Paid:   map[string]uint64{},
	}
	var (
		c   Cursor
		buf [256]Event
	)
	for {
		n, next, err := store.Next(c, buf[:])
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return res, nil
		}
		c = next
		for i := 0; i < n; i++ {
			res.apply(&buf[i])
		}
	}
}

func (r *ReplayResult) apply(ev *Event) {
	r.Events++
	switch ev.Kind {
	case KindShareAccepted:
		r.SharesAccepted++
		r.Credit[ev.Actor] += ev.Amount
	case KindShareStale:
		r.SharesStale++
	case KindShareDuplicate:
		r.SharesDuplicate++
	case KindShareRejected:
		r.SharesRejected++
	case KindRetarget:
		r.Retargets++
	case KindBan:
		r.Bans = append(r.Bans, ReplayBan{TimeNs: ev.TimeNs, Identity: ev.Actor})
	case KindBlockAppend:
		if ev.Height > r.ChainHeight {
			r.ChainHeight = ev.Height
		}
	case KindBlockFound:
		r.Blocks = append(r.Blocks, ReplayBlock{
			Height:    ev.Height,
			Timestamp: ev.Aux,
			Backend:   int(ev.Aux2),
			Reward:    ev.Amount,
		})
	case KindPayout:
		r.Paid[ev.Actor] += ev.Amount
	case KindShareGossipIn:
		r.SharesGossipedIn++
	case KindReorg:
		r.Reorgs++
	}
}
